// Command mkrdisk initializes a disk image for block rearrangement and
// prints its layout — the analogue of the paper's modified
// label-writing utility (Section 4.1.1): it writes a disk label that
// hides the reserved cylinders from the file system, marks the disk as
// "rearranged", and installs an empty block table at the head of the
// reserved region.
//
// Usage:
//
//	mkrdisk [-disk toshiba|fujitsu] [-reserved N] [-o disk.img]
//
// Without -o the layout is printed but nothing is written; with -o the
// label sector and block table are written at their byte offsets into a
// sparse image file that tools and tests can inspect.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blocktable"
	"repro/internal/disk"
	"repro/internal/geom"
	"repro/internal/label"
)

func main() {
	diskName := flag.String("disk", "toshiba", "disk model: toshiba or fujitsu")
	reserved := flag.Int("reserved", 0, "reserved cylinders (0 = the paper's 48/80)")
	out := flag.String("o", "", "write the label and block table into this image file")
	flag.Parse()

	if err := run(*diskName, *reserved, *out); err != nil {
		fmt.Fprintln(os.Stderr, "mkrdisk:", err)
		os.Exit(1)
	}
}

func run(diskName string, reserved int, out string) error {
	var model disk.Model
	switch diskName {
	case "toshiba":
		model = disk.Toshiba()
		if reserved == 0 {
			reserved = 48
		}
	case "fujitsu":
		model = disk.Fujitsu()
		if reserved == 0 {
			reserved = 80
		}
	default:
		return fmt.Errorf("unknown disk %q", diskName)
	}
	firstCyl, err := label.AlignedFirstCyl(model.Geom, geom.Block8K.Sectors(),
		(model.Geom.Cylinders-reserved)/2)
	if err != nil {
		return err
	}
	lbl, err := label.NewRearrangedAt(model.Name, model.Geom, firstCyl, reserved)
	if err != nil {
		return err
	}
	bsec := int64(geom.Block8K.Sectors())
	start := bsec
	size := (lbl.VirtualSectors() - start) / bsec * bsec
	if _, err := lbl.AddPartition(start, size, label.TagFS); err != nil {
		return err
	}

	first, count := lbl.ReservedCyls()
	fmt.Printf("disk:              %s\n", model.Name)
	fmt.Printf("geometry:          %d cylinders, %d tracks/cyl, %d sectors/track\n",
		model.Geom.Cylinders, model.Geom.TracksPerCyl, model.Geom.SectorsPerTrack)
	fmt.Printf("capacity:          %d MB\n", model.Geom.Capacity()>>20)
	fmt.Printf("reserved region:   cylinders %d-%d (%d cylinders, %.1f MB, %.1f%% of disk)\n",
		first, first+count-1, count,
		float64(lbl.ReservedLen)*geom.SectorSize/(1<<20),
		100*float64(lbl.ReservedLen)/float64(model.Geom.TotalSectors()))
	fmt.Printf("virtual disk:      %d cylinders (%d sectors)\n",
		lbl.VirtualGeom().Cylinders, lbl.VirtualSectors())
	fmt.Printf("block slots:       %d 8K blocks fit in the reserved region\n",
		geom.Block8K.BlocksIn(lbl.ReservedLen))
	fmt.Printf("fs partition:      %d blocks\n", size/bsec)

	if out == "" {
		return nil
	}
	img, err := lbl.Encode()
	if err != nil {
		return err
	}
	bt := blocktable.New(geom.Block8K)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteAt(img, label.LabelSector*geom.SectorSize); err != nil {
		return err
	}
	if _, err := f.WriteAt(bt.Encode(), lbl.ReservedStart*geom.SectorSize); err != nil {
		return err
	}
	fmt.Printf("wrote label + empty block table to %s\n", out)
	return f.Close()
}
