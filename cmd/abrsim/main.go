// Command abrsim runs the paper's experiments and prints the
// corresponding tables and figures with the paper's own numbers
// alongside for comparison.
//
// Usage:
//
//	abrsim -exp table2 [-days N] [-hours H] [-seed S] [-jobs N] [-timeout D]
//
// Experiment ids come from the experiment registry; -h lists them all.
// Independent simulations (each disk, policy, and sweep configuration)
// fan out across -jobs workers, and the output is byte-identical for
// any worker count.
//
// The default window is the paper's full 7am-10pm day; use -hours to
// compress it for quick runs (shapes are stable down to about 1 hour).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/runner"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see the list below)")
	days := flag.Int("days", 0, "override days per run (0 = paper's counts)")
	hours := flag.Float64("hours", 0, "measured hours per day (0 = the paper's 15)")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	jobs := flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	flag.Usage = usage
	flag.Parse()

	o := experiment.Options{Days: *days, Seed: *seed, Jobs: *jobs}
	if *hours > 0 {
		o.WindowMS = *hours * workload.HourMS
	}
	if err := run(*exp, o, *jobs, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "abrsim:", err)
		os.Exit(1)
	}
}

// usage prints the flag help plus the registry's experiment ids, so the
// valid ids always match what is actually registered.
func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "usage: abrsim [flags]\n\nflags:\n")
	flag.PrintDefaults()
	fmt.Fprintf(out, "\nexperiment ids:\n")
	for _, s := range experiment.Specs() {
		fmt.Fprintf(out, "  %-14s %s\n", s.ID, s.Description)
	}
}

func run(exp string, o experiment.Options, jobs int, timeout time.Duration) error {
	if _, ok := experiment.Lookup(exp); !ok {
		// Fail before the banner; RunSpec renders the valid-id list.
		_, err := experiment.RunSpec(context.Background(), exp, o, runner.Config{})
		return err
	}
	workers := jobs
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "abrsim: running %q on %d worker(s)\n", exp, workers)

	start := time.Now()
	cfg := runner.Config{
		Workers: jobs,
		Timeout: timeout,
		OnProgress: func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "abrsim: %d/%d jobs, %.1f/%.0f sim-days, %.2f sim-days/sec\n",
				p.Done, p.Total, p.Units, p.TotalUnits, p.Rate())
		},
	}
	reports, err := experiment.RunSpec(context.Background(), exp, o, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "abrsim: done in %.1fs\n", time.Since(start).Seconds())
	for _, r := range reports {
		fmt.Println(r.Render())
	}
	return nil
}
