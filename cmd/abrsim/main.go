// Command abrsim runs the paper's experiments and prints the
// corresponding tables and figures with the paper's own numbers
// alongside for comparison.
//
// Usage:
//
//	abrsim -exp table2 [-days N] [-hours H] [-seed S] [-jobs N] [-timeout D]
//	       [-trace FILE] [-sample D [-telemetry FILE]]
//	       [-metrics FILE [-metrics-format json|prom]] [-pprof ADDR]
//	       [-fault-plan PLAN] [-fault-seed S] [-crash-after N]
//
// Experiment ids come from the experiment registry; -h lists them all.
// Independent simulations (each disk, policy, and sweep configuration)
// fan out across -jobs workers, and the output — including the trace,
// telemetry, and metrics files — is byte-identical for any worker
// count.
//
// The default window is the paper's full 7am-10pm day; use -hours to
// compress it for quick runs (shapes are stable down to about 1 hour).
//
// Observability: -trace streams one JSONL request span per completed
// disk request; -sample runs the telemetry sampler every D of sim time
// and writes the time series as CSV to -telemetry; -metrics records
// latency histograms and counters across the stack (driver, scheduler,
// caches, volume, file system, workload) and writes one snapshot per
// job as JSON — or Prometheus text with -metrics-format prom; -pprof
// serves net/http/pprof on the given address for profiling the harness
// itself.
//
// Fault injection: -fault-plan injects device faults per the plan
// grammar (e.g. "seed=3;twrite=1e-4;bad=40000-40015") into every
// simulation unit; -fault-seed and -crash-after are shorthands that
// override the plan's seed and power-loss point. Fault draws are keyed
// by (seed, operation index), so results stay byte-identical for any
// -jobs value. The registered "faults" and "crash" experiments use
// their own built-in plans, as does "volume-scale", whose matrix
// drives the workload over multi-disk logical volumes (striping,
// mirroring, per-member rearrangement, a mirror with one member
// killed mid-run); its per-member plans are part of the matrix, so
// -fault-plan does not apply to it.
//
// Tenant scale: the "tenant-scale" experiment puts the multi-tenant
// server front end (simulated network, per-tenant token buckets,
// admission control, circuit breaker) over the volume layer; -tenants
// pins the population, -net-lat/-net-bw shape the simulated link, and
// -qos forces admission control on or off across the matrix.
//
// Parity layouts: the "raid-rebuild" experiment drives the workload
// over rotating-parity RAID-5 and double-parity RAID-6 volumes —
// healthy, degraded after a member death, rebuilding onto a hot spare,
// scrubbing a planted latent sector error, and surviving a double
// fault. -layout collapses the matrix to one row ("raid5" or "raid6");
// -spare, -rebuild-rate, and -scrub-interval configure that row.
//
// Trace replay: the "trace-replay" experiment replays a captured block
// trace against a volume — rearrangement off and on, open and closed
// loop, optionally scaled to heavy traffic. By default it synthesizes
// the trace from the system workload (tracegen's capture flow);
// -trace-in replays a real trace file instead (native binary/text,
// SNIA MSR-Cambridge CSV, or blkparse text, auto-detected), and
// -replay-mode, -trace-scale, and -trace-shift configure the pacing and
// the multiplexed scaling of the resulting custom off/on pair.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/tracein"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (see the list below)")
	days := flag.Int("days", 0, "override days per run (0 = paper's counts)")
	hours := flag.Float64("hours", 0, "measured hours per day (0 = the paper's 15)")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	jobs := flag.Int("jobs", 0, "parallel simulation jobs (0 = GOMAXPROCS)")
	shard := flag.Int("shard", 0, "run volume members on private engine shards when > 1 (output is byte-identical to -shard=1)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	traceFile := flag.String("trace", "", "write request-lifecycle spans as JSONL to this file")
	sample := flag.Duration("sample", 0, "telemetry sampling period in sim time (0 = off)")
	teleFile := flag.String("telemetry", "", "write sampled time series as CSV to this file (default telemetry.csv when -sample is set)")
	metricsFile := flag.String("metrics", "", "record latency histograms and counters, one snapshot per job, to this file")
	metricsFormat := flag.String("metrics-format", "json", `metrics snapshot format: "json" or "prom"`)
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	faultPlan := flag.String("fault-plan", "", `inject device faults per this plan (e.g. "seed=3;twrite=1e-4;bad=40000-40015")`)
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault plan's seed (implies an empty plan if -fault-plan is unset)")
	crashAfter := flag.Int64("crash-after", 0, "power loss after this many device operations (adds to the fault plan)")
	tenants := flag.Int("tenants", 0, "tenant-scale: pin the tenant population (0 = the registered sweep)")
	netLat := flag.Float64("net-lat", 0, "tenant-scale: one-way network latency in ms (0 = default 0.2)")
	netBW := flag.Float64("net-bw", 0, "tenant-scale: network bandwidth in MB/s (0 = default 100, negative = unlimited)")
	qos := flag.String("qos", "", `tenant-scale: force admission control "on" or "off" ("" = per-row setting)`)
	traceIn := flag.String("trace-in", "", "trace-replay: replay this trace file (binary/text/msr/blkparse, auto-detected) instead of the synthesized workload")
	replayMode := flag.String("replay-mode", "", `trace-replay: replay pacing, "open" (timestamp-faithful) or "closed" (think-time) ("" = the registered matrix)`)
	traceScale := flag.Int("trace-scale", 0, "trace-replay: multiplex this many address-shifted copies with matching time compression (0 = the registered matrix)")
	traceShift := flag.Int64("trace-shift", 0, "trace-replay: per-copy address shift in blocks for -trace-scale (0 = spread copies evenly)")
	layout := flag.String("layout", "", `raid-rebuild: collapse the matrix to one row of this layout ("raid5" or "raid6")`)
	spare := flag.Int("spare", 0, "raid-rebuild: hot spares for the -layout row")
	rebuildRate := flag.Float64("rebuild-rate", 0, "raid-rebuild: rebuild/scrub throttle for the -layout row, member blocks per simulated second (0 = default 200)")
	scrubInterval := flag.Duration("scrub-interval", 0, "raid-rebuild: scrub period in sim time for the -layout row (0 = scrub off)")
	flag.Usage = usage
	flag.Parse()

	if *qos != "" && *qos != "on" && *qos != "off" {
		fmt.Fprintf(os.Stderr, "abrsim: unknown -qos %q (want on or off)\n", *qos)
		os.Exit(2)
	}
	if *layout != "" && *layout != "raid5" && *layout != "raid6" {
		fmt.Fprintf(os.Stderr, "abrsim: unknown -layout %q (want raid5 or raid6)\n", *layout)
		os.Exit(2)
	}
	if _, err := tracein.ParseMode(*replayMode); err != nil {
		fmt.Fprintln(os.Stderr, "abrsim:", err)
		os.Exit(2)
	}
	o := experiment.Options{
		Days: *days, Seed: *seed, Jobs: *jobs, Shards: *shard,
		Tenants: *tenants, NetLatencyMS: *netLat, NetBandwidthMBps: *netBW, QoS: *qos,
		RAIDLayout: *layout, RAIDSpare: *spare, RebuildRate: *rebuildRate,
		ScrubIntervalMS: scrubInterval.Seconds() * 1000,
		TraceIn:         *traceIn, ReplayMode: *replayMode,
		TraceScale: *traceScale, TraceShift: *traceShift,
	}
	plan, err := buildFaultPlan(*faultPlan, *faultSeed, *crashAfter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "abrsim:", err)
		os.Exit(2)
	}
	o.Fault = plan
	if *hours > 0 {
		o.WindowMS = *hours * workload.HourMS
	}
	// The collector itself is near-free when spans and sampling are
	// off, and it carries the per-job engine event counts for the
	// end-of-run summary, so it is always on.
	o.Telemetry = &telemetry.Options{
		Spans:          *traceFile != "",
		SamplePeriodMS: sample.Seconds() * 1000,
		Metrics:        *metricsFile != "",
	}
	if *teleFile == "" && *sample > 0 {
		*teleFile = "telemetry.csv"
	}
	if *metricsFormat != "json" && *metricsFormat != "prom" {
		fmt.Fprintf(os.Stderr, "abrsim: unknown -metrics-format %q (want json or prom)\n", *metricsFormat)
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "abrsim: pprof:", err)
			}
		}()
	}
	if err := run(*exp, o, *jobs, *timeout, *traceFile, *teleFile, *metricsFile, *metricsFormat); err != nil {
		fmt.Fprintln(os.Stderr, "abrsim:", err)
		os.Exit(1)
	}
}

// buildFaultPlan assembles the fault plan from the CLI flags: the plan
// grammar first, then the seed and crash-point shorthands on top. All
// flags unset returns nil — the zero-overhead path.
func buildFaultPlan(spec string, seed uint64, crashAfter int64) (*fault.Plan, error) {
	if spec == "" && seed == 0 && crashAfter == 0 {
		return nil, nil
	}
	plan := &fault.Plan{}
	if spec != "" {
		p, err := fault.ParsePlan(spec)
		if err != nil {
			return nil, err
		}
		plan = &p
	}
	if seed != 0 {
		plan.Seed = seed
	}
	if crashAfter != 0 {
		plan.CrashAfterOps = crashAfter
	}
	return plan, nil
}

// flagGroups orders the -h summary: every flag is registered once with
// the flag package and listed here under its section. usage appends
// any flag missing from the groups to a trailing "other flags"
// section, so adding a flag without updating the groups can never
// silently drop it from the help text.
var flagGroups = []struct {
	title string
	names []string
}{
	{"simulation", []string{"exp", "days", "hours", "seed", "jobs", "shard", "timeout"}},
	{"observability", []string{"trace", "sample", "telemetry", "metrics", "metrics-format", "pprof"}},
	{"fault injection", []string{"fault-plan", "fault-seed", "crash-after"}},
	{"tenant scale", []string{"tenants", "net-lat", "net-bw", "qos"}},
	{"parity layouts", []string{"layout", "spare", "rebuild-rate", "scrub-interval"}},
	{"trace replay", []string{"trace-in", "replay-mode", "trace-scale", "trace-shift"}},
}

// usage prints the grouped flag help plus the registry's experiment
// ids, so the valid ids always match what is actually registered.
func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "usage: abrsim [flags]\n")
	all := make(map[string]*flag.Flag)
	var order []string
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		all[f.Name] = f
		order = append(order, f.Name)
	})
	grouped := make(map[string]bool)
	for _, g := range flagGroups {
		fmt.Fprintf(out, "\n%s flags:\n", g.title)
		for _, name := range g.names {
			if f := all[name]; f != nil {
				printFlag(out, f)
			}
			grouped[name] = true
		}
	}
	first := true
	for _, name := range order {
		if grouped[name] {
			continue
		}
		if first {
			fmt.Fprintf(out, "\nother flags:\n")
			first = false
		}
		printFlag(out, all[name])
	}
	fmt.Fprintf(out, "\nexperiment ids:\n")
	for _, s := range experiment.Specs() {
		fmt.Fprintf(out, "  %-14s %s\n", s.ID, s.Description)
	}
}

// printFlag renders one flag in the style of flag.PrintDefaults.
func printFlag(out io.Writer, f *flag.Flag) {
	arg, usage := flag.UnquoteUsage(f)
	line := "  -" + f.Name
	if arg != "" {
		line += " " + arg
	}
	line += "\n    \t" + strings.ReplaceAll(usage, "\n", "\n    \t")
	switch f.DefValue {
	case "", "0", "false", "0s":
		// zero default: omit, as PrintDefaults does
	default:
		line += fmt.Sprintf(" (default %q)", f.DefValue)
	}
	fmt.Fprintln(out, line)
}

func run(exp string, o experiment.Options, jobs int, timeout time.Duration, traceFile, teleFile, metricsFile, metricsFormat string) error {
	if _, ok := experiment.Lookup(exp); !ok {
		// Fail before the banner; RunSpec renders the valid-id list.
		_, err := experiment.RunSpec(context.Background(), exp, o, runner.Config{})
		return err
	}
	workers := jobs
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "abrsim: running %q on %d worker(s)\n", exp, workers)

	start := time.Now()
	cfg := runner.Config{
		Workers: jobs,
		Timeout: timeout,
		OnProgress: func(p runner.Progress) {
			fmt.Fprintf(os.Stderr, "abrsim: %d/%d jobs, %.1f/%.0f sim-days, %.2f sim-days/sec\n",
				p.Done, p.Total, p.Units, p.TotalUnits, p.Rate())
		},
	}
	reports, rs, err := experiment.RunSpecFull(context.Background(), exp, o, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "abrsim: done in %.1fs\n", time.Since(start).Seconds())
	summarize(rs)
	if err := writeTelemetry(rs, traceFile, teleFile); err != nil {
		return err
	}
	if err := writeMetrics(rs, metricsFile, metricsFormat); err != nil {
		return err
	}
	for _, r := range reports {
		fmt.Println(r.Render())
	}
	return nil
}

// summarize prints the per-job harness metrics: wall clock, simulated
// days, throughput, engine events dispatched, and spans emitted.
func summarize(rs *experiment.ResultSet) {
	if len(rs.Metrics) == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "abrsim: %-24s %10s %9s %10s %12s %10s\n",
		"job", "wall", "sim-days", "days/sec", "events", "spans")
	for i, m := range rs.Metrics {
		var events, spans int64
		if i < len(rs.Collectors) && rs.Collectors[i] != nil {
			events = rs.Collectors[i].EngineEvents()
			spans = rs.Collectors[i].Events()
		}
		status := ""
		if m.Failed {
			status = "  FAILED"
		}
		fmt.Fprintf(os.Stderr, "abrsim: %-24s %10s %9.1f %10.2f %12d %10d%s\n",
			m.Name, m.Wall.Round(time.Millisecond), m.Units, m.Rate(), events, spans, status)
	}
}

// writeTelemetry writes the concatenated per-job trace and time-series
// files. Collectors are concatenated in job order, so both files are
// byte-identical for any -jobs value.
func writeTelemetry(rs *experiment.ResultSet, traceFile, teleFile string) error {
	write := func(path string, emit func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if traceFile != "" {
		if err := write(traceFile, func(f *os.File) error {
			return telemetry.WriteTrace(f, rs.Collectors)
		}); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "abrsim: wrote request spans to %s\n", traceFile)
	}
	if teleFile != "" {
		if err := write(teleFile, func(f *os.File) error {
			return telemetry.WriteCSV(f, rs.Collectors)
		}); err != nil {
			return fmt.Errorf("writing telemetry: %w", err)
		}
		fmt.Fprintf(os.Stderr, "abrsim: wrote telemetry samples to %s\n", teleFile)
	}
	return nil
}

// writeMetrics writes the per-job metrics snapshots, in job order —
// byte-identical for any -jobs or -shard value.
func writeMetrics(rs *experiment.ResultSet, path, format string) error {
	if path == "" {
		return nil
	}
	jobs := telemetry.MetricsSnapshots(rs.Collectors)
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	if format == "prom" {
		err = metrics.WritePrometheus(f, jobs)
	} else {
		err = metrics.WriteJSON(f, jobs)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("writing metrics: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	fmt.Fprintf(os.Stderr, "abrsim: wrote metrics snapshot to %s\n", path)
	return nil
}
