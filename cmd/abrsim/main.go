// Command abrsim runs the paper's experiments and prints the
// corresponding tables and figures with the paper's own numbers
// alongside for comparison.
//
// Usage:
//
//	abrsim -exp table2 [-days N] [-hours H] [-seed S]
//
// Experiment ids: table1..table10, fig4..fig8, all, onoff-system,
// onoff-users, policies, sweep, shared (the shared-disk extension).
//
// The default window is the paper's full 7am-10pm day; use -hours to
// compress it for quick runs (shapes are stable down to about 1 hour).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (table1..table10, fig4..fig8, onoff-system, onoff-users, policies, sweep, shared, all)")
	days := flag.Int("days", 0, "override days per run (0 = paper's counts)")
	hours := flag.Float64("hours", 0, "measured hours per day (0 = the paper's 15)")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	flag.Parse()

	o := experiment.Options{Days: *days, Seed: *seed}
	if *hours > 0 {
		o.WindowMS = *hours * workload.HourMS
	}
	if err := run(*exp, o); err != nil {
		fmt.Fprintln(os.Stderr, "abrsim:", err)
		os.Exit(1)
	}
}

func run(exp string, o experiment.Options) error {
	var sys, usr *experiment.OnOff
	var pol *experiment.Policies
	var err error

	needSys := map[string]bool{"table2": true, "table3": true, "table4": true,
		"fig4": true, "fig5": true, "onoff-system": true, "all": true}
	needUsr := map[string]bool{"table5": true, "table6": true,
		"fig6": true, "fig7": true, "onoff-users": true, "all": true}
	needPol := map[string]bool{"table7": true, "table8": true, "table9": true,
		"table10": true, "policies": true, "all": true}

	if needSys[exp] {
		fmt.Fprintln(os.Stderr, "running on/off experiment, system file system (both disks)...")
		if sys, err = experiment.RunOnOff("system", o); err != nil {
			return err
		}
	}
	if needUsr[exp] {
		fmt.Fprintln(os.Stderr, "running on/off experiment, users file system (both disks)...")
		if usr, err = experiment.RunOnOff("users", o); err != nil {
			return err
		}
	}
	if needPol[exp] {
		fmt.Fprintln(os.Stderr, "running placement policy experiments (3 policies x 2 disks)...")
		if pol, err = experiment.RunPolicies(o); err != nil {
			return err
		}
	}

	emit := func(id string, rep *experiment.Report) {
		if exp == "all" || exp == id ||
			(exp == "onoff-system" && sys != nil) ||
			(exp == "onoff-users" && usr != nil) ||
			(exp == "policies" && pol != nil) {
			fmt.Println(rep.Render())
		}
	}

	switch exp {
	case "table1":
		fmt.Println(experiment.Table1().Render())
		return nil
	case "shared":
		fmt.Fprintln(os.Stderr, "running shared-disk extension (both file systems, one reserved region)...")
		res, err := experiment.RunShared(o)
		if err != nil {
			return err
		}
		fmt.Println(experiment.SharedReport(res).Render())
		return nil
	case "fig8", "sweep":
		fmt.Fprintln(os.Stderr, "running block-count sweep (Toshiba, system fs)...")
		points, err := experiment.RunBlockSweep(o, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiment.Figure8(points).Render())
		fmt.Println(experiment.Figure8Chart(points).Render())
		return nil
	}

	if exp == "all" {
		fmt.Println(experiment.Table1().Render())
	}
	if sys != nil {
		emit("table2", experiment.Table2(sys))
		emit("table3", experiment.Table3(sys))
		emit("table4", experiment.Table4(sys))
		emit("fig4", experiment.Figure4(sys))
		if exp == "all" || exp == "fig4" {
			fmt.Println(experiment.Figure4Chart(sys).Render())
		}
		emit("fig5", experiment.Figure5(sys))
		if exp == "all" || exp == "fig5" {
			fmt.Println(experiment.Figure5Chart(sys).Render())
		}
	}
	if usr != nil {
		emit("table5", experiment.Table5(usr))
		emit("table6", experiment.Table6(usr))
		emit("fig6", experiment.Figure6(usr))
		if exp == "all" || exp == "fig6" {
			fmt.Println(experiment.Figure6Chart(usr).Render())
		}
		emit("fig7", experiment.Figure7(usr))
		if exp == "all" || exp == "fig7" {
			fmt.Println(experiment.Figure7Chart(usr).Render())
		}
	}
	if pol != nil {
		emit("table7", experiment.Table7(pol))
		emit("table8", experiment.Table8(pol))
		emit("table9", experiment.Table9(pol))
		emit("table10", experiment.Table10(pol))
	}
	if exp == "all" {
		fmt.Fprintln(os.Stderr, "running block-count sweep (Toshiba, system fs)...")
		points, err := experiment.RunBlockSweep(o, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiment.Figure8(points).Render())
		fmt.Println(experiment.Figure8Chart(points).Render())
	}

	known := exp == "all" || exp == "onoff-system" || exp == "onoff-users" || exp == "policies" ||
		needSys[exp] || needUsr[exp] || needPol[exp]
	if !known {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
