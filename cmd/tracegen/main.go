// Command tracegen generates a block-request trace by running one of
// the paper's file-server workloads against a simulated disk, capturing
// every driver request, and writing it to a file in the binary or text
// trace format.
//
// Usage:
//
//	tracegen -o day.trace [-fs system|users] [-disk toshiba|fujitsu]
//	         [-hours H] [-format binary|text] [-seed S]
//
// The resulting trace can be replayed with abrreport, or scaled and
// replayed against a volume with abrsim -exp trace-replay -trace-in.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/rig"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	out := flag.String("o", "", "output trace file (required)")
	fsName := flag.String("fs", "system", "workload: system or users")
	diskName := flag.String("disk", "toshiba", "disk model: toshiba or fujitsu")
	hours := flag.Float64("hours", 2, "hours of traffic to capture")
	format := flag.String("format", "binary", "trace format: binary or text")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	if err := run(*out, *fsName, *diskName, *hours, *format, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(out, fsName, diskName string, hours float64, format string, seed uint64) error {
	if out == "" {
		return fmt.Errorf("-o is required")
	}
	var model disk.Model
	reserved := 48
	switch diskName {
	case "toshiba":
		model = disk.Toshiba()
	case "fujitsu":
		model = disk.Fujitsu()
		reserved = 80
	default:
		return fmt.Errorf("unknown disk %q", diskName)
	}
	r, err := rig.New(rig.Options{Disk: model, ReservedCyls: reserved})
	if err != nil {
		return err
	}
	fsys, err := fs.Newfs(r.Eng, r.Driver, 0, fs.Params{
		Cache: cache.Config{CapacityBlocks: 512, PressurePeriodMS: 60_000, Seed: seed},
	})
	if err != nil {
		return err
	}
	r.Eng.Run()

	var w workload.Workload
	switch fsName {
	case "system":
		w = workload.NewSystem(r.Eng, fsys, workload.SystemConfig{
			WindowMS: hours * workload.HourMS, Seed: seed,
		})
	case "users":
		w = workload.NewUsers(r.Eng, fsys, workload.UsersConfig{
			WindowMS: hours * workload.HourMS, Seed: seed,
		})
	default:
		return fmt.Errorf("unknown workload %q", fsName)
	}

	populated := false
	var perr error
	w.Populate(func(err error) { perr, populated = err, true })
	r.Eng.RunUntil(workload.DayStartMS)
	if !populated {
		return fmt.Errorf("populate did not complete")
	}
	if perr != nil {
		return perr
	}

	cap := trace.NewCapture(r.Eng, r.Driver)
	dayDone := false
	var derr error
	w.RunDay(0, func(err error) { derr, dayDone = err, true })
	deadline := workload.DayStartMS + hours*workload.HourMS + workload.HourMS
	r.Eng.RunUntil(deadline)
	if !dayDone {
		return fmt.Errorf("workload did not complete by the deadline")
	}
	if derr != nil {
		return derr
	}
	cap.Close()

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	recs := cap.Records()
	switch format {
	case "binary":
		err = trace.WriteBinary(f, recs)
	case "text":
		err = trace.WriteText(f, recs)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d records to %s\n", len(recs), out)
	return f.Close()
}
