// Command abrbench measures the simulation harness's raw speed and
// records it durably, so performance changes are observable and
// regressions are caught in CI.
//
// Usage:
//
//	abrbench [-out BENCH_sim.json] [-baseline FILE] [-check] [-reps N] [-jobs N] [-shard N]
//	         [-metrics FILE]
//
// It runs a fixed subset of the experiment registry (the same
// simulations abrsim runs, compressed) through the parallel runner,
// takes the best of -reps repetitions of each benchmark, and writes the
// measurements as JSON:
//
//	{
//	  "schema": 1,
//	  "go": "go1.24.0",
//	  "benchmarks": [
//	    {
//	      "name": "table2",            benchmark name
//	      "shards": 4,                 engine shards per volume (sharded rows only)
//	      "sim_days": 4,               simulated days covered
//	      "wall_ns": 2947000000,       best wall clock for the whole run
//	      "ns_per_sim_day": 736750000, wall_ns / sim_days
//	      "events": 12345678,          engine events dispatched (deterministic)
//	      "events_per_sec": 4189000,   events / wall seconds
//	      "allocs": 2345,              heap allocations during the run
//	      "allocs_per_event": 0.0002,  allocs / events
//	      "bytes": 9876,               heap bytes allocated during the run
//	      "volume": [...]              volume-scale only: per-configuration
//	                                   {config, disks, requests, req_per_sim_sec}
//	    }, ...
//	  ]
//	}
//
// With -check it compares per benchmark against the baseline file and
// exits non-zero if any shared benchmark's events_per_sec regressed by
// more than -tolerance (default 10%), or its allocs_per_event grew
// beyond the baseline by more than 15% plus an absolute slack of 0.01
// — the guard that keeps the metrics-instrumented hot path
// allocation-free. The event counts themselves are deterministic; only
// the wall-clock derived fields vary between runs.
//
// Every run records with metrics histograms enabled, so the measured
// hot path is the instrumented one. With -metrics FILE the
// volume-scale benchmark's per-job metrics snapshot is written as
// JSON, readable by abrreport -metrics.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// bench is one fixed registry subset entry. The windows are compressed
// so the full battery runs in well under a CI minute while still
// dispatching tens of millions of events.
type bench struct {
	// name is the benchmark's stable identity in the JSON (what -check
	// matches against the baseline); id is the experiment registry id.
	name string
	id   string
	opts experiment.Options
}

func benches(shard int) []bench {
	return []bench{
		// The paper's core experiment: alternating off/on days of the
		// system workload on both disks.
		{name: "table2", id: "table2", opts: experiment.Options{Days: 2, WindowMS: 1 * workload.HourMS}},
		// The users file system: write-heavy, NFS write-through, daily
		// drift — the cache/fs write path dominates.
		{name: "table5", id: "table5", opts: experiment.Options{Days: 2, WindowMS: 1 * workload.HourMS}},
		// Fault-tolerant mode: retries, remaps and dual-slot table
		// writes on the hot path.
		{name: "faults", id: "faults", opts: experiment.Options{Days: 2, WindowMS: 30 * 60 * 1000}},
		// The multi-disk volume matrix: fan-out/fan-in across member
		// engines sharing one event queue, up to 8 spindles. Its
		// per-configuration throughputs ride along in the JSON so the
		// scale-out claim (4-disk stripe beats one disk) is recorded.
		{name: "volume-scale", id: "volume-scale", opts: experiment.Options{Days: 2, WindowMS: 15 * 60 * 1000}},
		// The same matrix with every volume member on a private engine
		// shard (sim.Coordinator), recording events/sec per shard count
		// next to the single-engine row above. Event counts are
		// identical between the two by the exact-merge contract.
		{name: "volume-scale-sharded", id: "volume-scale",
			opts: experiment.Options{Days: 2, WindowMS: 15 * 60 * 1000, Shards: shard}},
		// The multi-tenant server front end: network hops, token
		// buckets, admission control and the breaker layered on every
		// request, with 20k tenant buckets live. Tenants pinned so the
		// row measures one population, not the registered sweep.
		{name: "tenant-scale", id: "tenant-scale",
			opts: experiment.Options{WindowMS: 15 * 60 * 1000, Tenants: 20000}},
		// The parity matrix: every foreground write pays the RAID-5/6
		// read-modify-write, plus degraded reconstruction, a hot-spare
		// rebuild, and scrub sweeps interleaving with the workload.
		{name: "raid-rebuild", id: "raid-rebuild",
			opts: experiment.Options{Days: 2, WindowMS: 15 * 60 * 1000}},
		// Trace-driven replay: each row captures the system workload as
		// a block trace, scales it (the 4x rows multiplex address-shifted
		// copies), and replays it through tracein's pooled zero-alloc
		// replayer — open and closed loop, rearrangement off and on. The
		// per-row replay throughputs ride along like the volume rows.
		{name: "trace-replay", id: "trace-replay",
			opts: experiment.Options{WindowMS: 15 * 60 * 1000}},
	}
}

// Result is one benchmark measurement as serialized into the JSON file.
type Result struct {
	Name string `json:"name"`
	// Shards is the engine shard count per volume (0 = one shared
	// engine); recorded so the sharded rows are self-describing.
	Shards       int     `json:"shards,omitempty"`
	SimDays      float64 `json:"sim_days"`
	WallNS       int64   `json:"wall_ns"`
	NSPerSimDay  int64   `json:"ns_per_sim_day"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs"`
	AllocsPerEvt float64 `json:"allocs_per_event"`
	Bytes        uint64  `json:"bytes"`
	// Volume holds the volume-backed matrices' per-configuration
	// simulated throughputs (deterministic, unlike the wall-clock
	// fields): the volume-scale rows, the raid-rebuild parity rows, and
	// the trace-replay rows; empty for every other benchmark.
	Volume []VolBench `json:"volume,omitempty"`
}

// VolBench records one volume configuration's simulated throughput.
type VolBench struct {
	Config       string  `json:"config"`
	Disks        int     `json:"disks"`
	Requests     int64   `json:"requests"`
	ReqPerSimSec float64 `json:"req_per_sim_sec"`
}

// File is the schema of BENCH_sim.json.
type File struct {
	Schema     int      `json:"schema"`
	Go         string   `json:"go"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "write measurements to this file")
	baseline := flag.String("baseline", "", "baseline BENCH_sim.json to compare against")
	check := flag.Bool("check", false, "exit non-zero if events_per_sec regressed vs -baseline")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional events_per_sec regression before -check fails")
	reps := flag.Int("reps", 2, "repetitions per benchmark; the best is recorded")
	jobs := flag.Int("jobs", 0, "parallel simulation jobs per run (0 = GOMAXPROCS)")
	shard := flag.Int("shard", 4, "engine shards per volume in the sharded volume benchmark")
	metricsOut := flag.String("metrics", "", "write the volume-scale benchmark's metrics snapshot (JSON) to this file")
	flag.Parse()

	f := File{Schema: 1, Go: runtime.Version()}
	for _, b := range benches(*shard) {
		r, snaps, err := runBench(b, *reps, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "abrbench: %s: %v\n", b.id, err)
			os.Exit(1)
		}
		if *metricsOut != "" && b.name == "volume-scale" {
			if err := writeSnapshot(*metricsOut, snaps); err != nil {
				fmt.Fprintln(os.Stderr, "abrbench:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "abrbench: wrote metrics snapshot to %s\n", *metricsOut)
		}
		f.Benchmarks = append(f.Benchmarks, r)
		fmt.Fprintf(os.Stderr, "abrbench: %-8s %8.1f sim-days  %6.2fs wall  %11d events  %10.0f events/sec  %.4f allocs/event\n",
			r.Name, r.SimDays, float64(r.WallNS)/1e9, r.Events, r.EventsPerSec, r.AllocsPerEvt)
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "abrbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "abrbench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "abrbench: wrote %s\n", *out)

	if *baseline != "" {
		if err := compare(f, *baseline, *tolerance, *check); err != nil {
			fmt.Fprintln(os.Stderr, "abrbench:", err)
			os.Exit(1)
		}
	}
}

// runBench runs one benchmark reps times and keeps the fastest
// repetition, plus the per-job metrics snapshots (deterministic, so
// any repetition's are the same). The event count is deterministic
// across repetitions; the wall clock (and so events/sec) is what
// best-of smooths. Metrics histograms are always on, so the bench
// measures — and the alloc fields police — the instrumented hot path.
func runBench(b bench, reps, jobs int) (Result, []metrics.JobSnapshot, error) {
	best := Result{Name: b.name}
	var snaps []metrics.JobSnapshot
	for i := 0; i < reps; i++ {
		o := b.opts
		o.Jobs = jobs
		// Collectors carry engine event counts; Metrics turns on the
		// histogram recording whose cost the bench is guarding.
		o.Telemetry = &telemetry.Options{Metrics: true}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		_, rs, err := experiment.RunSpecFull(context.Background(), b.id, o, runner.Config{Workers: jobs})
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return Result{}, nil, err
		}
		snaps = telemetry.MetricsSnapshots(rs.Collectors)
		var events int64
		var simDays float64
		for _, c := range rs.Collectors {
			if c != nil {
				events += c.EngineEvents()
			}
		}
		for _, m := range rs.Metrics {
			simDays += m.Units
		}
		r := Result{
			Name:    b.name,
			Shards:  b.opts.Shards,
			SimDays: simDays,
			WallNS:  wall.Nanoseconds(),
			Events:  events,
			Allocs:  after.Mallocs - before.Mallocs,
			Bytes:   after.TotalAlloc - before.TotalAlloc,
		}
		if simDays > 0 {
			r.NSPerSimDay = int64(float64(r.WallNS) / simDays)
		}
		if wall > 0 {
			r.EventsPerSec = float64(events) / wall.Seconds()
		}
		if events > 0 {
			r.AllocsPerEvt = float64(r.Allocs) / float64(events)
		}
		for _, p := range append(rs.Volume, rs.RAID...) {
			r.Volume = append(r.Volume, VolBench{
				Config:       p.Config,
				Disks:        p.Disks,
				Requests:     p.Requests,
				ReqPerSimSec: p.Throughput,
			})
		}
		for _, p := range rs.Trace {
			r.Volume = append(r.Volume, VolBench{
				Config:       p.Config,
				Disks:        p.Disks,
				Requests:     int64(p.Records),
				ReqPerSimSec: p.Throughput,
			})
		}
		if best.WallNS == 0 || r.WallNS < best.WallNS {
			best = r
		}
	}
	return best, snaps, nil
}

// writeSnapshot writes per-job metrics snapshots as JSON.
func writeSnapshot(path string, snaps []metrics.JobSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := metrics.WriteJSON(f, snaps); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// compare reports per-benchmark events/sec against the baseline file.
// With check set it returns an error when any shared benchmark is more
// than tolerance slower; new or removed benchmarks only inform.
func compare(f File, path string, tolerance float64, check bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base File
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	old := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		old[r.Name] = r
	}
	var failed []string
	for _, r := range f.Benchmarks {
		b, ok := old[r.Name]
		if !ok || b.EventsPerSec <= 0 {
			fmt.Fprintf(os.Stderr, "abrbench: %-8s no baseline\n", r.Name)
			continue
		}
		ratio := r.EventsPerSec / b.EventsPerSec
		fmt.Fprintf(os.Stderr, "abrbench: %-8s %10.0f -> %10.0f events/sec (%+.1f%%)  %.4f -> %.4f allocs/event\n",
			r.Name, b.EventsPerSec, r.EventsPerSec, (ratio-1)*100, b.AllocsPerEvt, r.AllocsPerEvt)
		if check && ratio < 1-tolerance {
			failed = append(failed, fmt.Sprintf("%s regressed %.1f%%", r.Name, (1-ratio)*100))
		}
		// Allocation guard: the hot path must stay as allocation-free as
		// the baseline. 15% relative plus 0.01/event absolute slack
		// absorbs run-to-run noise in the harness's own setup allocations
		// without letting a per-event allocation (+1.0) through.
		if check && r.AllocsPerEvt > b.AllocsPerEvt*1.15+0.01 {
			failed = append(failed, fmt.Sprintf("%s allocs/event %.4f exceeds baseline %.4f",
				r.Name, r.AllocsPerEvt, b.AllocsPerEvt))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("regression vs baseline: %v", failed)
	}
	return nil
}
