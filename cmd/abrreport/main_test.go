package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// A two-section sampler CSV as abrsim -sample writes for a mixed run:
// a single-disk job sampling the aggregate fault counters, then a
// volume job whose fault-injected members sample per-disk counters
// (member 0 has no fault plan, so only disk1_* columns exist — the
// indices are not contiguous).
const mixedCSV = `job,t_ms,queue_depth,faults,retries,remaps,unrecovered
onoff/system/toshiba,1000,3,2,2,0,0
onoff/system/toshiba,2000,5,7,8,1,0
job,t_ms,queue_depth,disk0_qd,disk1_qd,disk1_faults,disk1_retries,disk1_remaps,disk1_unrecovered
volume/mirror-degraded,1000,4,2,2,1,1,0,0
volume/mirror-degraded,2000,6,3,3,9,11,2,1
`

func TestSummarizeTelemetryPerDiskCounters(t *testing.T) {
	var sb strings.Builder
	if err := summarizeTelemetry(&sb, strings.NewReader(mixedCSV), "mixed.csv"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Both jobs are summarized, each with its own counter lines from its
	// final sample.
	for _, want := range []string{
		"onoff/system/toshiba: queue depth over time",
		"  fault counters: 7 faults, 8 retries, 1 remaps, 0 unrecovered",
		"volume/mirror-degraded: queue depth over time",
		"  disk 1 fault counters: 9 faults, 11 retries, 2 remaps, 1 unrecovered",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n\n%s", want, out)
		}
	}
	// The volume job sampled no aggregate counters and member 0 no
	// per-disk ones: neither line may be fabricated for them.
	volPart := out[strings.Index(out, "volume/mirror-degraded"):]
	if strings.Contains(volPart, "  fault counters:") {
		t.Errorf("volume job got an aggregate fault line it never sampled\n\n%s", volPart)
	}
	if strings.Contains(out, "disk 0 fault counters") {
		t.Errorf("disk 0 has no fault plan but got a counter line\n\n%s", out)
	}
}

func TestSummarizeTelemetryNoFaultColumns(t *testing.T) {
	const plain = "job,t_ms,queue_depth\nonoff/system/toshiba,1000,3\n"
	var sb strings.Builder
	if err := summarizeTelemetry(&sb, strings.NewReader(plain), "plain.csv"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fault counters") {
		t.Errorf("fault lines printed for a file without fault columns\n\n%s", sb.String())
	}
}

// buildMetricsSnapshot builds a two-job snapshot the way a volume run
// would: a plain job with one histogram, and a volume job whose driver
// histograms carry per-member disk labels.
func buildMetricsSnapshot(t *testing.T) string {
	t.Helper()
	reg := metrics.NewRegistry()
	h := reg.Histogram("driver_service_ms", metrics.HistogramOpts{})
	for i := 1; i <= 1000; i++ {
		h.Record(float64(i))
	}
	reg.Counter("driver_requests").Add(1000)

	vreg := metrics.NewRegistry()
	hv := vreg.Histogram("driver_service_ms", metrics.HistogramOpts{},
		metrics.Label{Key: "disk", Value: "3"})
	hv.Record(12.5)
	vreg.Gauge("volume_dead_members").Set(1)

	jobs := []metrics.JobSnapshot{
		{Job: "onoff/system/toshiba", Metrics: reg.Snapshot().Metrics},
		{Job: "volume/mirror-degraded", Metrics: vreg.Snapshot().Metrics},
	}
	var sb strings.Builder
	if err := metrics.WriteJSON(&sb, jobs); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReportMetricsPercentileTable(t *testing.T) {
	path := buildMetricsSnapshot(t)
	var sb strings.Builder
	if err := reportMetrics(&sb, path); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"onoff/system/toshiba: metrics snapshot",
		"p99", "p999", // percentile columns present
		"driver_service_ms",
		"volume/mirror-degraded: metrics snapshot",
		`driver_service_ms{disk="3"}`, // per-member row keeps its label
		"counter = 1000",
		"gauge = 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n\n%s", want, out)
		}
	}
	// 1000 uniform values 1..1000: the log-linear buckets bound each
	// quantile within ~3.2%, so p50 lands near 500 and max is exact.
	line := ""
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "driver_service_ms") && !strings.Contains(l, "disk") {
			line = l
			break
		}
	}
	fields := strings.Fields(line)
	if len(fields) < 8 {
		t.Fatalf("malformed histogram row %q", line)
	}
	p50, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if p50 < 500 || p50 > 520 {
		t.Errorf("p50 = %v, want within [500, 520]", p50)
	}
	if max := fields[7]; max != "1000.000" {
		t.Errorf("max = %s, want 1000.000", max)
	}
}

func TestReportMetricsErrors(t *testing.T) {
	if err := reportMetrics(io.Discard, filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reportMetrics(io.Discard, bad); err == nil {
		t.Error("malformed file did not error")
	}
}

func TestConvertChrome(t *testing.T) {
	in := filepath.Join(t.TempDir(), "spans.jsonl")
	line := `{"k":"span","w":0,"int":0,"orig":1,"sec":100,"n":16,"qd":1,` +
		`"arr":1.0,"disp":2.0,"seek":1.5,"rot":2.0,"xfer":0.5,"done":9.5,` +
		`"dist":10,"redir":0,"bh":0}` + "\n"
	if err := os.WriteFile(in, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "chrome.json")
	if err := convertChrome(in, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("output is not a JSON array: %v", err)
	}
	found := false
	for _, e := range events {
		if e["ph"] == "X" && e["name"] == "read" {
			found = true
		}
	}
	if !found {
		t.Errorf("no complete read event in output\n%s", data)
	}
}
