package main

import (
	"strings"
	"testing"
)

// A two-section sampler CSV as abrsim -sample writes for a mixed run:
// a single-disk job sampling the aggregate fault counters, then a
// volume job whose fault-injected members sample per-disk counters
// (member 0 has no fault plan, so only disk1_* columns exist — the
// indices are not contiguous).
const mixedCSV = `job,t_ms,queue_depth,faults,retries,remaps,unrecovered
onoff/system/toshiba,1000,3,2,2,0,0
onoff/system/toshiba,2000,5,7,8,1,0
job,t_ms,queue_depth,disk0_qd,disk1_qd,disk1_faults,disk1_retries,disk1_remaps,disk1_unrecovered
volume/mirror-degraded,1000,4,2,2,1,1,0,0
volume/mirror-degraded,2000,6,3,3,9,11,2,1
`

func TestSummarizeTelemetryPerDiskCounters(t *testing.T) {
	var sb strings.Builder
	if err := summarizeTelemetry(&sb, strings.NewReader(mixedCSV), "mixed.csv"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Both jobs are summarized, each with its own counter lines from its
	// final sample.
	for _, want := range []string{
		"onoff/system/toshiba: queue depth over time",
		"  fault counters: 7 faults, 8 retries, 1 remaps, 0 unrecovered",
		"volume/mirror-degraded: queue depth over time",
		"  disk 1 fault counters: 9 faults, 11 retries, 2 remaps, 1 unrecovered",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n\n%s", want, out)
		}
	}
	// The volume job sampled no aggregate counters and member 0 no
	// per-disk ones: neither line may be fabricated for them.
	volPart := out[strings.Index(out, "volume/mirror-degraded"):]
	if strings.Contains(volPart, "  fault counters:") {
		t.Errorf("volume job got an aggregate fault line it never sampled\n\n%s", volPart)
	}
	if strings.Contains(out, "disk 0 fault counters") {
		t.Errorf("disk 0 has no fault plan but got a counter line\n\n%s", out)
	}
}

func TestSummarizeTelemetryNoFaultColumns(t *testing.T) {
	const plain = "job,t_ms,queue_depth\nonoff/system/toshiba,1000,3\n"
	var sb strings.Builder
	if err := summarizeTelemetry(&sb, strings.NewReader(plain), "plain.csv"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "fault counters") {
		t.Errorf("fault lines printed for a file without fault columns\n\n%s", sb.String())
	}
}
