// Command abrreport replays a block-request trace against a simulated
// adaptive disk and prints the driver's measurement tables — the
// trace-driven simulation path the paper's original study ([Akyurek 93])
// was built on.
//
// Usage:
//
//	abrreport -trace day.trace [-disk toshiba|fujitsu] [-sched scan]
//	          [-rearrange N] [-policy organ-pipe] [-telemetry FILE]
//	          [-metrics FILE] [-chrome IN [-chrome-out OUT]]
//
// With -rearrange N, the trace is replayed twice: once to learn the N
// hottest blocks, then again after rearranging them, and both
// measurements are reported.
//
// With -telemetry FILE, a time-series CSV written by abrsim -sample is
// summarized as a queue-depth-over-time table per job, plus the final
// fault-tolerance counters (faults, retries, remaps, unrecovered) when
// the run sampled them (abrsim -fault-plan). Volume runs sample those
// counters per member disk (disk0_faults, disk1_faults, ...); every
// sampled disk gets its own counter line, not just the first. Files
// without fault columns are summarized without the fault lines. The
// flag works alone or alongside -trace.
//
// With -metrics FILE, a metrics JSON snapshot written by abrsim
// -metrics is printed as one latency-percentile table per job: every
// histogram gets a row with its count, mean, p50, p90, p99, p999 and
// max (volume runs carry per-member rows, e.g.
// driver_service_ms{disk="3"}), followed by the job's counters and
// gauges.
//
// With -chrome IN, a JSONL span trace written by abrsim -trace is
// converted to Chrome trace-event JSON (load it in about://tracing or
// https://ui.perfetto.dev), written to -chrome-out or stdout. Each of
// these flags works alone or alongside the others.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "trace file to replay (required)")
	diskName := flag.String("disk", "toshiba", "disk model: toshiba or fujitsu")
	schedName := flag.String("sched", "scan", "head scheduling: scan, fcfs, cscan, sstf")
	rearrange := flag.Int("rearrange", 0, "rearrange the N hottest blocks between two replays")
	policy := flag.String("policy", "organ-pipe", "placement policy for -rearrange")
	format := flag.String("format", "binary", "trace format: binary or text")
	timeout := flag.Duration("timeout", 0, "abort the replay after this long (0 = no limit)")
	teleFile := flag.String("telemetry", "", "summarize a telemetry CSV written by abrsim -sample")
	metricsFile := flag.String("metrics", "", "print latency percentile tables from a metrics JSON snapshot written by abrsim -metrics")
	chromeIn := flag.String("chrome", "", "convert a JSONL span trace written by abrsim -trace to Chrome trace-event JSON")
	chromeOut := flag.String("chrome-out", "", "output file for -chrome (default stdout)")
	flag.Parse()

	summarized := false
	if *teleFile != "" {
		if err := reportTelemetry(os.Stdout, *teleFile); err != nil {
			fmt.Fprintln(os.Stderr, "abrreport:", err)
			os.Exit(1)
		}
		summarized = true
	}
	if *metricsFile != "" {
		if err := reportMetrics(os.Stdout, *metricsFile); err != nil {
			fmt.Fprintln(os.Stderr, "abrreport:", err)
			os.Exit(1)
		}
		summarized = true
	}
	if *chromeIn != "" {
		if err := convertChrome(*chromeIn, *chromeOut); err != nil {
			fmt.Fprintln(os.Stderr, "abrreport:", err)
			os.Exit(1)
		}
		summarized = true
	}
	if summarized && *traceFile == "" {
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *traceFile, *diskName, *schedName, *policy, *format, *rearrange); err != nil {
		fmt.Fprintln(os.Stderr, "abrreport:", err)
		os.Exit(1)
	}
}

// reportTelemetry reads a telemetry CSV and prints a queue-depth-over-
// time table per job: the sampling window is split into ten buckets and
// each row reports the bucket's sample count plus the mean and maximum
// observed queue depth. Malformed files produce an error, never a
// panic.
func reportTelemetry(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return summarizeTelemetry(w, f, path)
}

// summarizeTelemetry is reportTelemetry on an already-open CSV stream.
func summarizeTelemetry(w io.Writer, f io.Reader, path string) error {
	rows, err := telemetry.ReadCSV(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(rows) == 0 {
		return fmt.Errorf("%s: no samples", path)
	}

	// Group rows by job, preserving file order.
	var jobs []string
	byJob := map[string][]telemetry.SampleRow{}
	for _, r := range rows {
		if _, seen := byJob[r.Job]; !seen {
			jobs = append(jobs, r.Job)
		}
		byJob[r.Job] = append(byJob[r.Job], r)
	}

	for _, job := range jobs {
		rs := byJob[job]
		if _, ok := rs[0].Values["queue_depth"]; !ok {
			fmt.Fprintf(w, "%s: no queue_depth column in %d samples\n", job, len(rs))
			printFaultCounters(w, rs)
			fmt.Fprintln(w)
			continue
		}
		lo, hi := rs[0].TimeMS, rs[0].TimeMS
		for _, r := range rs {
			if r.TimeMS < lo {
				lo = r.TimeMS
			}
			if r.TimeMS > hi {
				hi = r.TimeMS
			}
		}
		const buckets = 10
		span := hi - lo
		if span <= 0 {
			span = 1
		}
		type agg struct {
			n   int
			sum float64
			max float64
		}
		bs := make([]agg, buckets)
		for _, r := range rs {
			i := int(float64(buckets) * (r.TimeMS - lo) / span)
			if i >= buckets {
				i = buckets - 1
			}
			qd := r.Values["queue_depth"]
			bs[i].n++
			bs[i].sum += qd
			if qd > bs[i].max {
				bs[i].max = qd
			}
		}
		fmt.Fprintf(w, "%s: queue depth over time (%d samples, sim %.1fh-%.1fh)\n",
			job, len(rs), lo/3_600_000, hi/3_600_000)
		fmt.Fprintf(w, "  %-16s %8s %10s %8s\n", "window", "samples", "mean qd", "max qd")
		for i, b := range bs {
			from := lo + span*float64(i)/buckets
			to := lo + span*float64(i+1)/buckets
			if b.n == 0 {
				fmt.Fprintf(w, "  %6.1fh-%6.1fh %8d %10s %8s\n",
					from/3_600_000, to/3_600_000, 0, "-", "-")
				continue
			}
			fmt.Fprintf(w, "  %6.1fh-%6.1fh %8d %10.2f %8.0f\n",
				from/3_600_000, to/3_600_000, b.n, b.sum/float64(b.n), b.max)
		}
		printFaultCounters(w, rs)
		fmt.Fprintln(w)
	}
	return nil
}

// printFaultCounters prints the job's final fault-tolerance counters.
// The columns exist only when the run sampled with an active fault plan
// (they are cumulative, so the last sample holds the totals); files
// without them are silently summarized without these lines. Volume runs
// tag the counters per member disk (disk<i>_faults, ...); one line is
// printed for every sampled disk — members without a fault plan are
// not sampled, so the indices need not be contiguous.
func printFaultCounters(w io.Writer, rs []telemetry.SampleRow) {
	last := rs[len(rs)-1].Values
	if _, ok := last["faults"]; ok {
		fmt.Fprintf(w, "  fault counters: %.0f faults, %.0f retries, %.0f remaps, %.0f unrecovered\n",
			last["faults"], last["retries"], last["remaps"], last["unrecovered"])
	}
	var disks []int
	for k := range last {
		rest, ok := strings.CutPrefix(k, "disk")
		if !ok {
			continue
		}
		num, ok := strings.CutSuffix(rest, "_faults")
		if !ok {
			continue
		}
		i, err := strconv.Atoi(num)
		if err != nil || i < 0 {
			continue
		}
		disks = append(disks, i)
	}
	sort.Ints(disks)
	for _, i := range disks {
		p := fmt.Sprintf("disk%d_", i)
		fmt.Fprintf(w, "  disk %d fault counters: %.0f faults, %.0f retries, %.0f remaps, %.0f unrecovered\n",
			i, last[p+"faults"], last[p+"retries"], last[p+"remaps"], last[p+"unrecovered"])
	}
}

// reportMetrics reads a metrics JSON snapshot and prints one latency-
// percentile table per job.
func reportMetrics(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	jobs, err := metrics.ReadJSON(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(jobs) == 0 {
		return fmt.Errorf("%s: no job snapshots", path)
	}
	return summarizeMetrics(w, jobs)
}

// summarizeMetrics prints every job's histograms as a percentile table
// (count, mean, p50, p90, p99, p999, max), then its counters and
// gauges. Metrics appear in snapshot order — registration order, so
// per-member rows of a volume run group by disk label.
func summarizeMetrics(w io.Writer, jobs []metrics.JobSnapshot) error {
	for _, j := range jobs {
		var hists, scalars []metrics.MetricSnap
		for _, m := range j.Metrics {
			if m.Hist != nil {
				hists = append(hists, m)
			} else {
				scalars = append(scalars, m)
			}
		}
		fmt.Fprintf(w, "%s: metrics snapshot\n", j.Job)
		if len(hists) > 0 {
			fmt.Fprintf(w, "  %-34s %10s %9s %9s %9s %9s %9s %9s\n",
				"histogram", "count", "mean", "p50", "p90", "p99", "p999", "max")
			for _, m := range hists {
				h := m.Hist
				if h.Count == 0 {
					fmt.Fprintf(w, "  %-34s %10d %9s %9s %9s %9s %9s %9s\n",
						m.Name, 0, "-", "-", "-", "-", "-", "-")
					continue
				}
				fmt.Fprintf(w, "  %-34s %10d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
					m.Name, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.9),
					h.Quantile(0.99), h.Quantile(0.999), h.Max)
			}
		}
		for _, m := range scalars {
			fmt.Fprintf(w, "  %-34s %s = %s\n", m.Name, m.Kind, formatScalar(m.Value))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// formatScalar renders a counter or gauge value without trailing
// zeros, keeping integral counters integral.
func formatScalar(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// convertChrome converts a JSONL span trace to Chrome trace-event JSON
// on outPath, or stdout when outPath is empty.
func convertChrome(inPath, outPath string) error {
	in, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer in.Close()
	if outPath == "" {
		return telemetry.WriteChromeTrace(os.Stdout, in)
	}
	out, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "abrreport: wrote Chrome trace to %s\n", outPath)
	return nil
}

func run(ctx context.Context, traceFile, diskName, schedName, policyName, format string, rearrange int) error {
	if traceFile == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	var recs []trace.Record
	switch format {
	case "binary":
		recs, err = trace.ReadBinary(f)
	case "text":
		recs, err = trace.ReadText(f)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("trace is empty")
	}

	var model disk.Model
	reserved := 48
	switch diskName {
	case "toshiba":
		model = disk.Toshiba()
	case "fujitsu":
		model = disk.Fujitsu()
		reserved = 80
	default:
		return fmt.Errorf("unknown disk %q", diskName)
	}
	schedPolicy, err := sched.New(schedName)
	if err != nil {
		return err
	}
	r, err := rig.New(rig.Options{
		Ctx:  ctx,
		Disk: model, ReservedCyls: reserved, Sched: schedPolicy,
		// The whole trace must fit the monitoring table so the learning
		// replay sees every request.
		RequestTableSize: len(recs) + 1024,
	})
	if err != nil {
		return err
	}

	replay := func(label string) (*driver.Side, error) {
		done := false
		var completed, errs int
		trace.Replay(r.Eng, r.Driver, recs, func(c, e int) { completed, errs, done = c, e, true })
		r.Eng.Run()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if !done {
			return nil, fmt.Errorf("replay stalled")
		}
		if errs > 0 {
			fmt.Fprintf(os.Stderr, "abrreport: %s: %d of %d requests failed\n", label, errs, completed+errs)
		}
		return r.Driver.ReadStats().All(), nil
	}

	report := func(label string, s *driver.Side) {
		fmt.Printf("%s:\n", label)
		fmt.Printf("  requests:             %d\n", s.Count())
		fmt.Printf("  FCFS mean seek dist:  %.0f cylinders (%.2f ms)\n",
			s.FCFSDist.MeanDist(), s.FCFSMeanSeekMS(model.Seek))
		fmt.Printf("  mean seek distance:   %.0f cylinders (%.2f ms)\n",
			s.SchedDist.MeanDist(), s.MeanSeekMS(model.Seek))
		fmt.Printf("  zero-length seeks:    %.0f%%\n", s.SchedDist.ZeroFrac()*100)
		fmt.Printf("  mean service time:    %.2f ms\n", s.MeanServiceMS())
		fmt.Printf("  mean waiting time:    %.2f ms\n", s.MeanQueueingMS())
	}

	side, err := replay("replay 1")
	if err != nil {
		return err
	}
	report("original layout ("+schedName+")", side)

	if rearrange > 0 {
		placement, err := core.NewPolicy(policyName)
		if err != nil {
			return err
		}
		rear, err := core.New(r.Eng, r.Driver, core.Config{Policy: placement, MaxBlocks: rearrange})
		if err != nil {
			return err
		}
		rear.Poll()
		rdone := false
		var installed int
		var rerr error
		rear.Rearrange(func(n int, err error) { installed, rerr, rdone = n, err, true })
		r.Eng.Run()
		if err := r.Err(); err != nil {
			return err
		}
		if !rdone {
			return fmt.Errorf("rearrangement stalled")
		}
		if rerr != nil {
			return rerr
		}
		fmt.Printf("\nrearranged %d blocks (%s placement)\n\n", installed, policyName)
		r.Driver.ReadStats() // discard movement-era stats
		side, err := replay("replay 2")
		if err != nil {
			return err
		}
		report("rearranged layout ("+schedName+")", side)
	}
	return nil
}
