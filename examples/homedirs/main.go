// Homedirs reproduces the paper's *users* file system experiment in
// miniature: read/write home directories of 10 (Toshiba) or 20
// (Fujitsu) users, run over alternating off/on days. Per Section 5.3,
// rearrangement helps here too, but much less than on the system file
// system: the stream is flatter and drifts day to day.
package main

import (
	"context"

	"flag"
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	days := flag.Int("days", 4, "days to simulate (alternating off/on)")
	hours := flag.Float64("hours", 1, "measured hours per day")
	flag.Parse()

	fmt.Printf("simulating %d days x %.1f h of the users file system on both disks...\n\n", *days, *hours)
	res, err := experiment.RunOnOff(context.Background(), "users", experiment.Options{
		Days:     *days,
		WindowMS: *hours * workload.HourMS,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiment.Table5(res).Render())
	fmt.Println(experiment.Table6(res).Render())
	fmt.Println(experiment.Figure7(res).Render())
}
