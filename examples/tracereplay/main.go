// Tracereplay demonstrates the trace-driven simulation workflow the
// original study ([Akyurek 93]) was built on: capture a workload's block
// requests once, then replay the identical trace against different
// configurations — here, every head-scheduling policy, with and without
// block rearrangement — for an apples-to-apples comparison no live
// system can give you.
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/rig"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// 1. Capture one hour of the system file-server workload.
	recs := capture()
	fmt.Printf("captured %d block requests (1 hour of the system workload)\n\n", len(recs))

	// 2. Replay it under each scheduler, original layout vs rearranged.
	fmt.Println("scheduler   layout      mean seek   zero-seeks   mean service")
	for _, s := range []string{"fcfs", "scan", "cscan", "sstf"} {
		for _, rearranged := range []bool{false, true} {
			seekMS, zeroPct, svcMS := replay(recs, s, rearranged)
			layout := "original  "
			if rearranged {
				layout = "rearranged"
			}
			fmt.Printf("%-10s  %s  %7.2f ms  %9.0f%%  %10.2f ms\n",
				s, layout, seekMS, zeroPct, svcMS)
		}
	}
	fmt.Println("\nrearrangement helps under every scheduler; SCAN + rearrangement")
	fmt.Println("compound (the synergy the paper describes in Section 5.2).")
}

// capture runs the system workload for an hour and records the driver's
// request stream.
func capture() []trace.Record {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		log.Fatal(err)
	}
	fsys, err := fs.Newfs(r.Eng, r.Driver, 0, fs.Params{
		Cache: cache.Config{CapacityBlocks: 512, PressurePeriodMS: 60_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Eng.Run()
	w := workload.NewSystem(r.Eng, fsys, workload.SystemConfig{
		WindowMS: workload.HourMS,
	})
	populated := false
	w.Populate(func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		populated = true
	})
	r.Eng.RunUntil(workload.DayStartMS)
	if !populated {
		log.Fatal("populate stalled")
	}
	cap := trace.NewCapture(r.Eng, r.Driver)
	done := false
	w.RunDay(0, func(err error) {
		if err != nil {
			log.Fatal(err)
		}
		done = true
	})
	r.Eng.RunUntil(workload.DayStartMS + 2*workload.HourMS)
	if !done {
		log.Fatal("workload stalled")
	}
	cap.Close()
	return cap.Records()
}

// replay runs the trace on a fresh disk with the given scheduler,
// optionally rearranging the 1018 hottest blocks first (learned from a
// prior replay of the same trace).
func replay(recs []trace.Record, schedName string, rearranged bool) (seekMS, zeroPct, svcMS float64) {
	policy, err := sched.New(schedName)
	if err != nil {
		log.Fatal(err)
	}
	r, err := rig.New(rig.Options{
		ReservedCyls:     48,
		Sched:            policy,
		RequestTableSize: len(recs) + 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	model := disk.Toshiba()

	if rearranged {
		// Learning pass: replay once to collect counts, rearrange, and
		// discard the learning statistics.
		runReplay(r, recs)
		rear, err := core.New(r.Eng, r.Driver, core.Config{MaxBlocks: 1018})
		if err != nil {
			log.Fatal(err)
		}
		rear.Poll()
		rear.Rearrange(func(_ int, err error) {
			if err != nil {
				log.Fatal(err)
			}
		})
		r.Eng.Run()
		r.Driver.ReadStats()
	}

	runReplay(r, recs)
	side := r.Driver.ReadStats().All()
	return side.MeanSeekMS(model.Seek), side.SchedDist.ZeroFrac() * 100, side.MeanServiceMS()
}

func runReplay(r *rig.Rig, recs []trace.Record) {
	done := false
	trace.Replay(r.Eng, r.Driver, recs, func(_, errs int) {
		if errs > 0 {
			log.Fatalf("%d replay errors", errs)
		}
		done = true
	})
	r.Eng.Run()
	if !done {
		log.Fatal("replay stalled")
	}
}
