// Fileserver reproduces the paper's headline experiment in miniature:
// the read-only *system* file system (executables and libraries served
// to 14 NFS clients) on both disks, run over alternating off/on days.
// It prints Tables 2 and 3 with the paper's numbers alongside.
//
// The full-length version of this experiment (complete 7am-10pm days)
// is run by `abrsim -exp table2`; this example compresses the day to
// one hour so it finishes in seconds.
package main

import (
	"context"

	"flag"
	"fmt"
	"log"

	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	days := flag.Int("days", 4, "days to simulate (alternating off/on)")
	hours := flag.Float64("hours", 1, "measured hours per day")
	flag.Parse()

	fmt.Printf("simulating %d days x %.1f h of the system file system on both disks...\n\n", *days, *hours)
	res, err := experiment.RunOnOff(context.Background(), "system", experiment.Options{
		Days:     *days,
		WindowMS: *hours * workload.HourMS,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(experiment.Table2(res).Render())
	fmt.Println(experiment.Table3(res).Render())
	fmt.Println(experiment.Figure5(res).Render())
}
