// Policies compares the three block placement policies of Section 4.2 —
// organ-pipe, interleaved, and serial — on the same workload, using the
// public facade directly (no experiment harness): it shows how to drive
// the analyzer and arranger by hand.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/fs"
	"repro/internal/seek"
	"repro/internal/sim"
)

// run builds a server with the given placement policy, trains it on one
// round of skewed traffic, rearranges, and measures a second round.
func run(policy string) (seekMS, zeroPct float64) {
	srv, err := repro.NewServer(repro.ServerConfig{
		DiskModel: "toshiba",
		Policy:    policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Sequentially-related files, so the interleaved policy's successor
	// chains have something to find.
	var handles []*fs.Handle
	for i := 0; i < 150; i++ {
		srv.FS.Create(fmt.Sprintf("/f%03d", i), func(ino fs.Ino, err error) {
			if err != nil {
				log.Fatal(err)
			}
			h, _ := srv.FS.OpenIno(ino)
			h.WriteAt(0, 6, nil)
			handles = append(handles, h)
		})
	}
	srv.RunFor(60_000)

	rnd := sim.NewRand(7)
	zipf := sim.NewZipf(len(handles), 1.5)
	round := func() {
		for i := 0; i < 4000; i++ {
			h := handles[zipf.Rank(rnd)]
			srv.Eng.After(float64(i)*60, func() {
				h.ReadAt(0, h.SizeBlocks(), nil)
			})
		}
		srv.RunFor(4000*60 + 60_000)
	}

	srv.StartMonitoring()
	round() // train
	srv.StopMonitoring()
	if _, err := srv.Rearrange(); err != nil {
		log.Fatal(err)
	}
	srv.Stats() // clear
	round()     // measure
	side := srv.Stats().All()
	return side.MeanSeekMS(seek.ToshibaMK156F), side.SchedDist.ZeroFrac() * 100
}

func main() {
	fmt.Println("placement policy comparison (Toshiba, skewed read workload)")
	fmt.Println("policy        mean seek (ms)   zero-length seeks")
	for _, p := range []string{"organ-pipe", "interleaved", "serial"} {
		s, z := run(p)
		fmt.Printf("%-12s  %14.2f   %16.0f%%\n", p, s, z)
	}
	fmt.Println("\npaper (Table 7): organ-pipe and interleaved comparable; serial worse.")
}
