// Quickstart: assemble an adaptive file server on the paper's Toshiba
// MK156F disk, generate a skewed workload, let the rearranger move the
// hot blocks to the reserved cylinders, and compare seek times before
// and after — the paper's core claim in ~80 lines.
package main

import (
	"fmt"
	"log"

	repro "repro"
	"repro/internal/fs"
	"repro/internal/seek"
	"repro/internal/sim"
)

func main() {
	srv, err := repro.NewServer(repro.ServerConfig{DiskModel: "toshiba"})
	if err != nil {
		log.Fatal(err)
	}

	// Create 200 files scattered across the disk.
	var handles []*fs.Handle
	for i := 0; i < 200; i++ {
		path := fmt.Sprintf("/f%03d", i)
		srv.FS.Create(path, func(ino fs.Ino, err error) {
			if err != nil {
				log.Fatal(err)
			}
			h, _ := srv.FS.OpenIno(ino)
			h.WriteAt(0, 4, nil)
			handles = append(handles, h)
		})
	}
	srv.RunFor(60_000)

	// A skewed reference stream: Zipf over the files.
	rnd := sim.NewRand(42)
	zipf := sim.NewZipf(len(handles), 1.4)
	day := func() {
		for i := 0; i < 5000; i++ {
			h := handles[zipf.Rank(rnd)]
			srv.Eng.After(float64(i)*50, func() {
				h.ReadAt(0, h.SizeBlocks(), nil)
			})
		}
		srv.RunFor(5000*50 + 60_000)
	}

	// Day 1: measure with the layout the file system chose.
	srv.StartMonitoring()
	srv.Stats() // clear
	day()
	srv.StopMonitoring()
	before := srv.Stats().All()

	// Overnight: move the hot blocks to the reserved middle cylinders.
	installed, err := srv.Rearrange()
	if err != nil {
		log.Fatal(err)
	}

	// Day 2: same traffic against the rearranged disk.
	day()
	after := srv.Stats().All()

	curve := seek.ToshibaMK156F
	fmt.Printf("rearranged blocks:      %d\n", installed)
	fmt.Printf("mean seek before:       %.2f ms (%.0f cylinders)\n",
		before.MeanSeekMS(curve), before.SchedDist.MeanDist())
	fmt.Printf("mean seek after:        %.2f ms (%.0f cylinders)\n",
		after.MeanSeekMS(curve), after.SchedDist.MeanDist())
	fmt.Printf("zero-length seeks:      %.0f%% -> %.0f%%\n",
		before.SchedDist.ZeroFrac()*100, after.SchedDist.ZeroFrac()*100)
	fmt.Printf("mean service time:      %.2f ms -> %.2f ms\n",
		before.MeanServiceMS(), after.MeanServiceMS())
}
