package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/seek"
)

func TestTimeHistMean(t *testing.T) {
	h := NewTimeHist(100)
	for _, v := range []float64{1.25, 2.75, 6.0} {
		h.Add(v)
	}
	if got := h.MeanMS(); math.Abs(got-10.0/3) > 1e-12 {
		t.Errorf("MeanMS = %v, want %v", got, 10.0/3)
	}
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
}

func TestTimeHistFullResolutionMean(t *testing.T) {
	// Bucketing is 1 ms but the mean must keep full resolution.
	h := NewTimeHist(10)
	h.Add(0.1)
	h.Add(0.9)
	if got := h.MeanMS(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("MeanMS = %v, want 0.5 (full resolution)", got)
	}
}

func TestTimeHistOverflow(t *testing.T) {
	h := NewTimeHist(10)
	h.Add(5)
	h.Add(500) // beyond range
	if h.Count() != 2 {
		t.Errorf("Count = %d, want 2 (overflow still counted)", h.Count())
	}
	if got := h.MeanMS(); math.Abs(got-252.5) > 1e-12 {
		t.Errorf("MeanMS = %v, want 252.5 (overflow contributes exactly)", got)
	}
}

func TestTimeHistNegativeClamped(t *testing.T) {
	h := NewTimeHist(10)
	h.Add(-3)
	if got := h.MeanMS(); got != 0 {
		t.Errorf("negative sample should clamp to 0, mean = %v", got)
	}
}

func TestFracBelow(t *testing.T) {
	h := NewTimeHist(100)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) * 10) // 0, 10, ..., 90
	}
	if got := h.FracBelow(20); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("FracBelow(20) = %v, want 0.2", got)
	}
	if got := h.FracBelow(1000); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("FracBelow(1000) = %v, want 1", got)
	}
	if got := NewTimeHist(10).FracBelow(5); got != 0 {
		t.Errorf("FracBelow on empty = %v", got)
	}
}

func TestCDF(t *testing.T) {
	h := NewTimeHist(100)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.7)
	h.Add(3.2)
	cdf := h.CDF()
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	last := cdf[len(cdf)-1]
	if last.Frac != 1 {
		t.Errorf("CDF does not reach 1: %v", last)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Frac < cdf[i-1].Frac {
			t.Errorf("CDF decreases at %d", i)
		}
	}
	if got := cdf[0]; got.X != 1 || math.Abs(got.Frac-0.25) > 1e-12 {
		t.Errorf("CDF[0] = %+v, want {1 0.25}", got)
	}
}

func TestQuantile(t *testing.T) {
	h := NewTimeHist(100)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i) - 0.5)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := h.Quantile(1.0); got != 100 {
		t.Errorf("p100 = %v, want 100", got)
	}
}

func TestTimeHistMergeAndReset(t *testing.T) {
	a, b := NewTimeHist(50), NewTimeHist(50)
	a.Add(10)
	b.Add(20)
	b.Add(30)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || math.Abs(a.MeanMS()-20) > 1e-12 {
		t.Errorf("after merge: count=%d mean=%v", a.Count(), a.MeanMS())
	}
	if err := a.Merge(NewTimeHist(99)); err == nil {
		t.Error("merging different ranges should error")
	}
	a.Reset()
	if a.Count() != 0 || a.MeanMS() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTimeHistMergeNil(t *testing.T) {
	a := NewTimeHist(10)
	if err := a.Merge(nil); err != nil {
		t.Errorf("Merge(nil) = %v", err)
	}
}

func TestDistHist(t *testing.T) {
	h := NewDistHist()
	h.Add(0)
	h.Add(0)
	h.Add(10)
	h.Add(-10) // abs
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.MeanDist(); math.Abs(got-5) > 1e-12 {
		t.Errorf("MeanDist = %v, want 5", got)
	}
	if got := h.ZeroFrac(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ZeroFrac = %v, want 0.5", got)
	}
}

func TestDistHistSeekTime(t *testing.T) {
	h := NewDistHist()
	h.Add(0)
	h.Add(100)
	l := seek.Linear{StartupMS: 2, PerCylMS: 0.01}
	// times: 0 and 3 -> mean 1.5
	if got := h.MeanSeekMS(l); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MeanSeekMS = %v, want 1.5", got)
	}
}

func TestDistHistMergeHistogram(t *testing.T) {
	a, b := NewDistHist(), NewDistHist()
	a.Add(1)
	b.Add(1)
	b.Add(2)
	a.Merge(b)
	hist := a.Histogram()
	if hist[1] != 2 || hist[2] != 1 {
		t.Errorf("merged histogram = %v", hist)
	}
	if a.Count() != 3 {
		t.Errorf("merged count = %d", a.Count())
	}
	// Histogram returns a copy.
	hist[1] = 99
	if a.Histogram()[1] != 2 {
		t.Error("Histogram exposed internal state")
	}
}

func TestDistHistEmpty(t *testing.T) {
	h := NewDistHist()
	if h.MeanDist() != 0 || h.ZeroFrac() != 0 {
		t.Error("empty DistHist should report zeros")
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 2} {
		s.Add(v)
	}
	if s.Min() != 1 || s.Max() != 3 || math.Abs(s.Avg()-2) > 1e-12 {
		t.Errorf("summary = %v/%v/%v", s.Min(), s.Avg(), s.Max())
	}
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.String(); got != "1.00/2.00/3.00" {
		t.Errorf("String = %q", got)
	}
	vals := s.Values()
	if len(vals) != 3 || vals[0] != 1 || vals[2] != 3 {
		t.Errorf("Values = %v", vals)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Min() != 0 || s.Max() != 0 || s.Avg() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestTimeHistMeanProperty(t *testing.T) {
	// Mean is always within [min, max] of the added samples.
	f := func(raw []uint16) bool {
		h := NewTimeHist(100)
		if len(raw) == 0 {
			return h.MeanMS() == 0
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			v := float64(r) / 16
			h.Add(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		m := h.MeanMS()
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistHistCountConsistency(t *testing.T) {
	f := func(ds []int16) bool {
		h := NewDistHist()
		for _, d := range ds {
			h.Add(int(d))
		}
		var n int64
		for _, c := range h.Histogram() {
			n += c
		}
		return n == h.Count() && h.Count() == int64(len(ds))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
