// Package stats implements the measurement machinery of the adaptive
// driver (Section 4.1.5 of "Adaptive Block Rearrangement Under UNIX").
//
// The driver in the paper records, separately for reads and writes:
//
//   - seek-distance distributions, both in arrival (FCFS) order and in
//     scheduled order;
//   - service-time and queueing-time distributions at one-millisecond
//     resolution;
//   - cumulative service and queueing times at the full (microsecond)
//     resolution of the underlying measurements.
//
// This package provides those histograms plus the summaries the paper's
// tables are built from (daily means, min/avg/max over days, CDFs).
package stats

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/seek"
)

// TimeHist is a distribution of times. Samples are bucketed at
// one-millisecond resolution, while the count and cumulative sum are kept
// at full resolution, exactly as in the paper's driver.
type TimeHist struct {
	buckets []int64 // buckets[i] counts samples with floor(ms) == i
	over    int64   // samples beyond the last bucket
	maxMS   int     // number of 1 ms buckets
	count   int64
	sumMS   float64 // full-resolution cumulative time
}

// NewTimeHist returns a TimeHist covering [0, maxMS) milliseconds at
// 1 ms resolution; samples at or beyond maxMS are counted in an overflow
// bucket (their exact values still contribute to the mean).
func NewTimeHist(maxMS int) *TimeHist {
	if maxMS <= 0 {
		maxMS = 1
	}
	return &TimeHist{buckets: make([]int64, maxMS), maxMS: maxMS}
}

// Add records one sample, in milliseconds.
func (h *TimeHist) Add(ms float64) {
	if ms < 0 {
		ms = 0
	}
	h.count++
	h.sumMS += ms
	i := int(ms)
	if i >= h.maxMS {
		h.over++
		return
	}
	h.buckets[i]++
}

// Count returns the number of samples recorded.
func (h *TimeHist) Count() int64 { return h.count }

// SumMS returns the full-resolution cumulative time in milliseconds.
func (h *TimeHist) SumMS() float64 { return h.sumMS }

// MeanMS returns the full-resolution mean in milliseconds, or 0 when the
// histogram is empty.
func (h *TimeHist) MeanMS() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sumMS / float64(h.count)
}

// FracBelow returns the fraction of samples strictly below ms
// (at bucket resolution).
func (h *TimeHist) FracBelow(ms float64) float64 {
	if h.count == 0 {
		return 0
	}
	limit := int(ms)
	if limit > h.maxMS {
		limit = h.maxMS
	}
	var n int64
	for i := 0; i < limit; i++ {
		n += h.buckets[i]
	}
	return float64(n) / float64(h.count)
}

// CDFPoint is one point of a cumulative distribution: the fraction of
// samples at or below X.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF returns the cumulative distribution at 1 ms resolution, up to and
// including the first bucket at which the cumulative fraction reaches 1
// (or the overflow boundary). The result is empty for an empty histogram.
func (h *TimeHist) CDF() []CDFPoint {
	if h.count == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, h.maxMS)
	var cum int64
	for i := 0; i < h.maxMS; i++ {
		cum += h.buckets[i]
		out = append(out, CDFPoint{X: float64(i + 1), Frac: float64(cum) / float64(h.count)})
		if cum == h.count {
			break
		}
	}
	return out
}

// Quantile returns the smallest millisecond bucket boundary at or below
// which at least fraction p of the samples fall. Overflow samples are
// reported as maxMS.
func (h *TimeHist) Quantile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	need := int64(math.Ceil(p * float64(h.count)))
	var cum int64
	for i := 0; i < h.maxMS; i++ {
		cum += h.buckets[i]
		if cum >= need {
			return float64(i + 1)
		}
	}
	return float64(h.maxMS)
}

// Merge adds all samples of other into h. The histograms must have the
// same bucket range.
func (h *TimeHist) Merge(other *TimeHist) error {
	if other == nil {
		return nil
	}
	if h.maxMS != other.maxMS {
		return fmt.Errorf("stats: merging TimeHists with different ranges (%d vs %d ms)", h.maxMS, other.maxMS)
	}
	for i, c := range other.buckets {
		h.buckets[i] += c
	}
	h.over += other.over
	h.count += other.count
	h.sumMS += other.sumMS
	return nil
}

// Reset clears the histogram.
func (h *TimeHist) Reset() {
	for i := range h.buckets {
		h.buckets[i] = 0
	}
	h.over, h.count, h.sumMS = 0, 0, 0
}

// DistHist is a seek-distance distribution: counts of seeks by distance
// in cylinders.
type DistHist struct {
	counts map[int]int64
	n      int64
	sum    int64
}

// NewDistHist returns an empty seek-distance histogram.
func NewDistHist() *DistHist {
	return &DistHist{counts: make(map[int]int64)}
}

// Add records one seek of distance d cylinders (|d| is used).
func (h *DistHist) Add(d int) {
	if d < 0 {
		d = -d
	}
	h.counts[d]++
	h.n++
	h.sum += int64(d)
}

// Count returns the number of seeks recorded.
func (h *DistHist) Count() int64 { return h.n }

// MeanDist returns the mean seek distance in cylinders.
func (h *DistHist) MeanDist() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// ZeroFrac returns the fraction of zero-length seeks.
func (h *DistHist) ZeroFrac() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.counts[0]) / float64(h.n)
}

// MeanSeekMS applies a seek-time curve to the distance distribution and
// returns the mean seek time in milliseconds. This is how the paper
// derives all of its reported seek times (Section 5.2).
func (h *DistHist) MeanSeekMS(c seek.Curve) float64 {
	return seek.MeanMS(c, h.counts)
}

// Histogram returns a copy of the raw distance counts.
func (h *DistHist) Histogram() map[int]int64 {
	out := make(map[int]int64, len(h.counts))
	for d, c := range h.counts {
		out[d] = c
	}
	return out
}

// Merge adds all seeks of other into h.
func (h *DistHist) Merge(other *DistHist) {
	if other == nil {
		return
	}
	for d, c := range other.counts {
		h.counts[d] += c
	}
	h.n += other.n
	h.sum += other.sum
}

// Reset clears the histogram.
func (h *DistHist) Reset() {
	h.counts = make(map[int]int64)
	h.n, h.sum = 0, 0
}

// Summary aggregates a series of per-day values into the min/avg/max
// triples reported in the paper's tables ("daily mean ...").
type Summary struct {
	vals []float64
}

// Add appends one daily value.
func (s *Summary) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the number of values added.
func (s *Summary) N() int { return len(s.vals) }

// Min returns the smallest value, or 0 when empty.
func (s *Summary) Min() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest value, or 0 when empty.
func (s *Summary) Max() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	m := s.vals[0]
	for _, v := range s.vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Avg returns the mean value, or 0 when empty.
func (s *Summary) Avg() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s.vals {
		sum += v
	}
	return sum / float64(len(s.vals))
}

// Values returns a sorted copy of the values.
func (s *Summary) Values() []float64 {
	out := append([]float64(nil), s.vals...)
	sort.Float64s(out)
	return out
}

// String renders the summary as "min/avg/max" with two decimals, the
// format of the paper's on/off tables.
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f/%.2f/%.2f", s.Min(), s.Avg(), s.Max())
}
