package experiment

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/fault/crashcheck"
	"repro/internal/runner"
)

// This file registers the fault-tolerance extension experiments — runs
// the paper never measures, but which the Section 4.1.2 crash argument
// and any real deployment of the driver imply:
//
//	"faults" — the system-fs workload re-run under increasing transient
//	device fault rates, measuring how retries and backoff degrade the
//	mean response time;
//	"crash"  — the crashcheck harness's scenario battery: scripted
//	rearrangement workloads cut down by a power loss at chosen points,
//	then recovered and checked against the crash invariants.

// DefaultFaultRates is the per-operation transient fault probability
// sweep of the "faults" experiment. Zero is the clean baseline.
var DefaultFaultRates = []float64{0, 1e-4, 1e-3, 5e-3, 2e-2}

// FaultPoint is the outcome of one run of the fault-rate sweep.
type FaultPoint struct {
	// Rate is the per-operation transient failure probability (both
	// directions).
	Rate float64
	// ServiceMS and WaitMS are the mean service and queueing times over
	// all measured days; service time includes retry backoff.
	ServiceMS float64
	WaitMS    float64
	// Faults..Unrecovered are the driver's lifetime fault counters.
	Faults      int64
	Retries     int64
	Remaps      int64
	Unrecovered int64
	// WorkloadErrors counts file operations that failed outright.
	WorkloadErrors int64
}

// faultUnits decomposes the fault-rate sweep into one independent run
// per rate. All runs share one workload seed and one fault seed, so the
// sweep isolates the rate.
func faultUnits(o Options) []unit {
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}
	var units []unit
	for _, rate := range DefaultFaultRates {
		rate := rate
		s := Setup{
			DiskName: "toshiba", FSName: "system",
			Days:      o.days(2),
			OnPattern: func(day int) bool { return day > 0 },
			WindowMS:  o.WindowMS, Seed: o.Seed, Shards: o.Shards,
			Fault: &fault.Plan{Seed: seed, TransientRead: rate, TransientWrite: rate},
		}
		units = append(units, unit{
			job: runner.Job{
				Name:  fmt.Sprintf("faults/%g", rate),
				Units: float64(s.Days),
				Run: func(ctx context.Context) (any, error) {
					run, err := Execute(ctx, s)
					if err != nil {
						return nil, fmt.Errorf("experiment: faults rate=%g: %w", rate, err)
					}
					sum := Summarize(run.Days, run.Curve, AllRequests)
					c := run.Counters
					return FaultPoint{
						Rate:           rate,
						ServiceMS:      sum.Service.Avg(),
						WaitMS:         sum.Wait.Avg(),
						Faults:         c.Faults,
						Retries:        c.Retries,
						Remaps:         c.Remaps,
						Unrecovered:    c.Unrecovered,
						WorkloadErrors: run.WorkloadErrors,
					}, nil
				},
			},
			apply: func(rs *ResultSet, v any) { rs.Faults = append(rs.Faults, v.(FaultPoint)) },
		})
	}
	return units
}

// FaultsReport renders the fault-rate sweep with the clean baseline's
// response times alongside for the degradation comparison.
func FaultsReport(points []FaultPoint) *Report {
	rep := &Report{
		ID:      "faults",
		Title:   "Extension: response time vs transient device fault rate (Toshiba, system FS)",
		Columns: []string{"Fault rate", "Faults", "Retries", "Unrecovered", "Service (ms)", "Wait (ms)", "FS errors"},
	}
	var base FaultPoint
	for _, p := range points {
		if p.Rate == 0 {
			base = p
		}
	}
	for _, p := range points {
		rep.AddRow(fmt.Sprintf("%g", p.Rate),
			fmt.Sprintf("%d", p.Faults), fmt.Sprintf("%d", p.Retries),
			fmt.Sprintf("%d", p.Unrecovered),
			f2(p.ServiceMS), f2(p.WaitMS), fmt.Sprintf("%d", p.WorkloadErrors))
	}
	if base.ServiceMS > 0 {
		worst := points[len(points)-1]
		rep.AddNote("service-time degradation at rate %g: %+.1f%% vs the clean baseline (retry backoff counts toward service time)",
			worst.Rate, (worst.ServiceMS/base.ServiceMS-1)*100)
	}
	rep.AddNote("transient faults are retried with exponential sim-time backoff (up to 3 attempts); the paper does not model faults — this validates the fault-tolerance extension")
	return rep
}

// CrashPoint is the outcome of one crash-recovery scenario.
type CrashPoint struct {
	// Scenario names the crash point.
	Scenario string
	// Plan is the fault plan's string form, reusable with -fault-plan.
	Plan string
	// Ops is the device-operation count at the power loss; Moves and
	// AckedWrites the committed rearrangements and acknowledged writes.
	Ops         int64
	Moves       int
	AckedWrites int
	// Entries is the recovered block-table size.
	Entries int
	// Err is empty when every crash invariant held after recovery.
	Err string
}

// crashScenarios is the scenario battery: a crash during each phase of
// the DKIOCBCOPY protocol, plus arbitrary-point crashes. Seed 350 is a
// searched-for seed whose table-write tear lands inside the encoded
// bytes, forcing recovery onto the other slot's previous generation.
var crashScenarios = []struct {
	name string
	plan fault.Plan
}{
	{"mid block-copy", fault.Plan{Seed: 11, CrashPhase: "bcopy-copy", CrashPhaseSkip: 2}},
	{"mid table-write (torn slot)", fault.Plan{Seed: 350, CrashPhase: "table-write", CrashPhaseSkip: 2}},
	{"after 29 device ops", fault.Plan{Seed: 29, CrashAfterOps: 29}},
	{"after 57 device ops", fault.Plan{Seed: 57, CrashAfterOps: 57}},
}

// crashUnits wraps each crash scenario as one independent job. An
// invariant violation is reported in the point, not as a job error, so
// one bad scenario does not mask the others' results.
func crashUnits() []unit {
	var units []unit
	for _, sc := range crashScenarios {
		sc := sc
		units = append(units, unit{
			job: runner.Job{
				Name:  "crash/" + sc.name,
				Units: 1,
				Run: func(ctx context.Context) (any, error) {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					p := CrashPoint{Scenario: sc.name, Plan: sc.plan.String()}
					res, err := crashcheck.Check(sc.plan)
					if err != nil {
						p.Err = err.Error()
						return p, nil
					}
					p.Ops, p.Moves, p.AckedWrites, p.Entries =
						res.Ops, res.Moves, res.AckedWrites, res.Entries
					return p, nil
				},
			},
			apply: func(rs *ResultSet, v any) { rs.Crash = append(rs.Crash, v.(CrashPoint)) },
		})
	}
	return units
}

// CrashReport renders the crash-recovery battery.
func CrashReport(points []CrashPoint) *Report {
	rep := &Report{
		ID:      "crash",
		Title:   "Extension: crash-recovery invariants after simulated power loss (Section 4.1.2)",
		Columns: []string{"Scenario", "Ops", "Moves", "Acked writes", "Entries recovered", "Verdict"},
	}
	for _, p := range points {
		verdict := "ok"
		if p.Err != "" {
			verdict = "VIOLATION: " + p.Err
		}
		rep.AddRow(p.Scenario, fmt.Sprintf("%d", p.Ops), fmt.Sprintf("%d", p.Moves),
			fmt.Sprintf("%d", p.AckedWrites), fmt.Sprintf("%d", p.Entries), verdict)
	}
	rep.AddNote("checked invariants: the block table decodes with every entry dirty, no block is lost or aliased, every block remains readable, and acknowledged writes read back exactly")
	return rep
}

// registerFaults registers the fault-tolerance extension experiments.
func registerFaults() {
	Register(Spec{
		ID: "faults", Description: "extension: response-time degradation under transient device faults",
		Needs: []Need{NeedFaults},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{FaultsReport(rs.Faults)}
		},
	})
	Register(Spec{
		ID: "crash", Description: "extension: crash-recovery invariant checks after power loss",
		Needs: []Need{NeedCrash},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{CrashReport(rs.Crash)}
		},
	})
}
