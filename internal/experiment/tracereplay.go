package experiment

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/tracein"
	"repro/internal/volume"
	"repro/internal/workload"
)

// This file registers the trace-replay extension: a captured block
// trace — loaded from a file in any tracein format, or synthesized
// deterministically from the system workload — scaled and replayed
// against a volume, with and without adaptive rearrangement, in open
// (timestamp-faithful) and closed (think-time) loop. It validates the
// paper's seek-savings claim on trace-driven load, the methodology the
// paper itself used, rather than on the harness's own synthetic
// clients.

// TraceSetup describes one trace-replay row.
type TraceSetup struct {
	// Config is the short row label ("open-1x", "open-4x-stripe4-rearr").
	Config string
	// TracePath, when non-empty, replays this trace file (any tracein
	// format, auto-detected unless TraceFormat is set). Empty
	// synthesizes a trace from the system workload over WindowMS.
	TracePath   string
	TraceFormat tracein.Format
	// Mode is the replay pacing (open or closed loop).
	Mode tracein.Mode
	// Copies and Compress scale the trace (tracein.Scale): Copies
	// address-shifted replicas at 1/Compress of the original spacing.
	// ShiftBlocks overrides the per-copy address shift; 0 spreads the
	// copies evenly over the target's address space.
	Copies      int
	Compress    float64
	ShiftBlocks int64
	// Rearrange runs a learning replay first, rearranges every member
	// from the measured counts, and then replays again measured — the
	// trace-driven equivalent of an on-day.
	Rearrange bool
	// Layout, Disks and StripeUnit configure the target volume.
	Layout     volume.Layout
	Disks      int
	StripeUnit int
	// WindowMS bounds the synthesized capture; Seed seeds the capture
	// workload and the closed-loop think times.
	WindowMS float64
	Seed     uint64
	// Shards above 1 runs each volume member on its own engine.
	Shards int
}

func (s TraceSetup) withDefaults() TraceSetup {
	if s.Layout == "" {
		s.Layout = volume.Concat
	}
	if s.Disks <= 0 {
		s.Disks = 1
	}
	if s.Copies < 1 {
		s.Copies = 1
	}
	if s.Compress <= 0 {
		s.Compress = 1
	}
	if s.WindowMS <= 0 {
		s.WindowMS = workload.DayEndMS - workload.DayStartMS
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Config == "" {
		s.Config = fmt.Sprintf("%s-%dx", s.Mode, s.Copies)
	}
	return s
}

// scale builds the tracein.Scale for the target's address space.
func (s TraceSetup) scale(targetBlocks int64) tracein.Scale {
	shift := s.ShiftBlocks
	if shift == 0 && s.Copies > 1 {
		shift = targetBlocks / int64(s.Copies)
	}
	return tracein.Scale{
		Compress:    s.Compress,
		Copies:      s.Copies,
		ShiftBlocks: shift,
		WrapBlocks:  targetBlocks,
	}
}

// TracePoint is the outcome of one trace-replay row.
type TracePoint struct {
	// Config through Rearrange echo the setup.
	Config    string
	Mode      string
	Scale     string
	Layout    string
	Disks     int
	Rearrange bool
	// Records is the scaled record count replayed in the measured pass;
	// Errors counts failed requests.
	Records int
	Errors  int
	// ElapsedMS is the simulated duration of the measured pass;
	// Throughput is completed requests per simulated second.
	ElapsedMS  float64
	Throughput float64
	// MeanRespMS and P99MS are the volume-level mean and the replayer's
	// per-request 99th-percentile response times.
	MeanRespMS float64
	P99MS      float64
	// FCFSSeekMS and SeekMS are the mean seek times of arrival order
	// versus scheduled order (with any rearrangement), merged across
	// members; SeekRedPct is the reduction, the paper's headline metric.
	FCFSSeekMS float64
	SeekMS     float64
	SeekRedPct float64
	// Installed sums the blocks installed by per-member rearrangements.
	Installed int
}

// captureTrace synthesizes a trace deterministically: the system
// workload runs for windowMS on a single Toshiba rig with every driver
// request captured — tracegen's flow as a library call. The same seed
// and window always produce byte-identical records, so every row (and
// every worker) replays the same trace without sharing state. The
// second return is the capture engine's dispatched event count, so the
// job's telemetry covers both engines it ran.
func captureTrace(ctx context.Context, windowMS float64, seed uint64) ([]trace.Record, int64, error) {
	r, err := rig.New(rig.Options{Ctx: ctx, Disk: disk.Toshiba(), ReservedCyls: 48})
	if err != nil {
		return nil, 0, err
	}
	fsys, err := fs.Newfs(r.Eng, r.Driver, 0, fs.Params{
		Cache: cache.Config{CapacityBlocks: 512, PressurePeriodMS: 60_000, Seed: seed},
	})
	if err != nil {
		return nil, 0, err
	}
	r.Eng.Run()
	w := workload.NewSystem(r.Eng, fsys, workload.SystemConfig{WindowMS: windowMS, Seed: seed})
	populated := false
	var perr error
	w.Populate(func(err error) { perr, populated = err, true })
	r.Eng.RunUntil(workload.DayStartMS)
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	if !populated || perr != nil {
		return nil, 0, fmt.Errorf("experiment: trace capture populate: done=%v err=%v", populated, perr)
	}
	cap := trace.NewCapture(r.Eng, r.Driver)
	defer cap.Close()
	dayDone := false
	var derr error
	w.RunDay(0, func(err error) { derr, dayDone = err, true })
	r.Eng.RunUntil(workload.DayStartMS + windowMS + workload.HourMS)
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	if !dayDone || derr != nil {
		return nil, 0, fmt.Errorf("experiment: trace capture day: done=%v err=%v", dayDone, derr)
	}
	return cap.Records(), r.Eng.Dispatched(), nil
}

// ExecuteTraceReplay runs one trace-replay row to completion. Like
// ExecuteVolume it builds a fully self-contained stack per call, so
// rows run concurrently on the parallel runner.
func ExecuteTraceReplay(ctx context.Context, s TraceSetup) (*TracePoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s = s.withDefaults()
	col := telemetry.FromContext(ctx)

	var recs []trace.Record
	var capEvents int64
	var err error
	if s.TracePath != "" {
		recs, _, err = tracein.ReadFile(s.TracePath, s.TraceFormat, tracein.Options{})
	} else {
		recs, capEvents, err = captureTrace(ctx, s.WindowMS, s.Seed)
	}
	if err != nil {
		return nil, fmt.Errorf("experiment: trace %s: %w", s.Config, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("experiment: trace %s: empty trace", s.Config)
	}

	vopts := volume.Options{
		Ctx:          ctx,
		Layout:       s.Layout,
		Disks:        s.Disks,
		StripeUnit:   s.StripeUnit,
		ReservedCyls: 48,
		Telemetry:    col,
		Shards:       s.Shards,
	}
	if s.Rearrange {
		// The learning pass must observe every request: size each
		// member's monitoring table for the whole scaled trace.
		vopts.RequestTableSize = len(recs)*s.Copies + 1
	}
	v, err := volume.New(vopts)
	if err != nil {
		return nil, err
	}
	defer v.Close()
	v.Run() // volume format completes before the replay starts

	p0, err := v.Label().Partition(0)
	if err != nil {
		return nil, err
	}
	blocks := p0.Size / int64(v.BlockSize().Sectors())
	scaled := s.scale(blocks).Apply(recs)
	// An external trace (or a capture from a slightly different
	// geometry) may address past the target partition; fold it in
	// deterministically rather than failing mid-matrix.
	for i := range scaled {
		if scaled[i].Part != 0 || scaled[i].Block >= blocks {
			scaled[i].Part = 0
			scaled[i].Block %= blocks
		}
	}
	// Horizon for the await loops: the open-loop span is known from the
	// timestamps; closed loop is paced by the device, so give it a
	// service-time budget per record and let awaitVolume extend.
	span := scaled[len(scaled)-1].TimeMS - scaled[0].TimeMS
	horizon := span + 30*60*1000
	if s.Mode == tracein.ClosedLoop {
		if h := float64(len(scaled)) * 10; h > horizon {
			horizon = h
		}
	}
	ropts := tracein.ReplayOptions{Mode: s.Mode, Seed: int64(s.Seed)}

	pt := &TracePoint{
		Config:    s.Config,
		Mode:      s.Mode.String(),
		Scale:     s.scale(blocks).String(),
		Layout:    string(s.Layout),
		Disks:     s.Disks,
		Rearrange: s.Rearrange,
		Records:   len(scaled),
	}

	if s.Rearrange {
		// Learning pass: replay once with monitoring on, then rearrange
		// every member overnight-style from its own counts.
		var rears []*core.Rearranger
		for i, m := range v.Members {
			rear, rerr := core.New(v.Eng, m.Driver, core.Config{MaxBlocks: 1018})
			if rerr != nil {
				return nil, fmt.Errorf("experiment: trace %s member %d rearranger: %w", s.Config, i, rerr)
			}
			rears = append(rears, rear)
		}
		learn, lerr := tracein.NewReplayer(v.Eng, v, scaled, ropts)
		if lerr != nil {
			return nil, fmt.Errorf("experiment: trace %s learning replayer: %w", s.Config, lerr)
		}
		for _, rear := range rears {
			rear.StartMonitoring()
		}
		if err := awaitVolume(v, "learning replay", v.Now()+horizon, func(done func(error)) {
			learn.Start(func(tracein.Result) { done(nil) })
		}); err != nil {
			return nil, err
		}
		for _, rear := range rears {
			rear.StopMonitoring()
		}
		for i, rear := range rears {
			var installed int
			if err := awaitVolume(v, fmt.Sprintf("rearrange member %d", i),
				v.Now()+2*workload.HourMS, func(done func(error)) {
					rear.Rearrange(func(n int, err error) {
						installed = n
						done(err)
					})
				}); err != nil {
				return nil, err
			}
			pt.Installed += installed
		}
	}

	// Discard everything measured so far — populate-analogue traffic,
	// the learning pass, the rearrangement moves — so the measured pass
	// starts from clean statistics on every member.
	v.ResetStats()
	for _, m := range v.Members {
		m.Driver.ReadStats()
	}

	rep, err := tracein.NewReplayer(v.Eng, v, scaled, ropts)
	if err != nil {
		return nil, fmt.Errorf("experiment: trace %s replayer: %w", s.Config, err)
	}
	// The replayer always gets a latency histogram (P99 is a report
	// column); when the job carries a metrics collector the instruments
	// land there instead, alongside the volume's and per-member
	// drivers', exactly as in ExecuteVolume.
	var memberRegs []*metrics.Registry
	if col != nil && col.MetricsEnabled() {
		reg := col.Metrics()
		v.BindMetrics(reg)
		rep.BindMetrics(reg)
		for i, m := range v.Members {
			mreg := metrics.NewRegistry()
			m.Driver.BindMetrics(mreg, metrics.Label{Key: "disk", Value: strconv.Itoa(i)})
			memberRegs = append(memberRegs, mreg)
		}
	} else {
		rep.BindMetrics(metrics.NewRegistry())
	}
	if col != nil && col.SamplePeriodMS() > 0 {
		registerVolumeProbes(col, v)
		col.StartSampler(v.Eng)
	}

	var res tracein.Result
	if err := awaitVolume(v, "measured replay", v.Now()+horizon, func(done func(error)) {
		rep.Start(func(r tracein.Result) {
			res = r
			done(nil)
		})
	}); err != nil {
		return nil, err
	}

	st := v.Stats()
	pt.Errors = res.Errors
	pt.ElapsedMS = res.ElapsedMS
	if res.ElapsedMS > 0 {
		pt.Throughput = float64(res.Completed) / (res.ElapsedMS / 1000)
	}
	if st.Requests > 0 {
		pt.MeanRespMS = st.RespMSSum / float64(st.Requests)
	}
	pt.P99MS = rep.Latency().Quantile(0.99)

	// Seek metrics: merge every member's arrival-order and
	// scheduled-order distance distributions (reads and writes), then
	// price both through the member disks' seek curve — the members are
	// homogeneous Toshibas, so one curve serves the volume.
	fcfs, sched := stats.NewDistHist(), stats.NewDistHist()
	for _, m := range v.Members {
		mst := m.Driver.ReadStats()
		for _, side := range []*stats.DistHist{mst.ReadSide.FCFSDist, mst.WriteSide.FCFSDist} {
			fcfs.Merge(side)
		}
		for _, side := range []*stats.DistHist{mst.ReadSide.SchedDist, mst.WriteSide.SchedDist} {
			sched.Merge(side)
		}
	}
	curve := disk.Toshiba().Seek
	pt.FCFSSeekMS = fcfs.MeanSeekMS(curve)
	pt.SeekMS = sched.MeanSeekMS(curve)
	if pt.FCFSSeekMS > 0 {
		pt.SeekRedPct = (1 - pt.SeekMS/pt.FCFSSeekMS) * 100
	}

	if col != nil {
		col.SetEngineEvents(capEvents + v.Dispatched())
	}
	for i, mreg := range memberRegs {
		if err := col.Metrics().Merge(mreg); err != nil {
			return nil, fmt.Errorf("experiment: trace %s merging member %d metrics: %w", s.Config, i, err)
		}
	}
	return pt, nil
}

// traceConfigs is the trace-replay configuration matrix. The replay
// flags (-trace-in, -replay-mode, -trace-scale, -trace-shift) collapse
// it to one custom on/off pair; with all four unset they are ignored,
// so the committed matrix (and its golden) is untouched by the flags'
// zero values.
func traceConfigs(o Options) []TraceSetup {
	base := func(cfg string, mode tracein.Mode, rearr bool) TraceSetup {
		return TraceSetup{
			Config: cfg, Mode: mode, Rearrange: rearr,
			WindowMS: o.WindowMS, Seed: o.Seed, Shards: o.Shards,
		}
	}
	if o.TraceIn != "" || o.ReplayMode != "" || o.TraceScale > 0 || o.TraceShift != 0 {
		mode, err := tracein.ParseMode(o.ReplayMode)
		if err != nil {
			mode = tracein.OpenLoop
		}
		copies := o.TraceScale
		if copies < 1 {
			copies = 1
		}
		mk := func(cfg string, rearr bool) TraceSetup {
			s := base(cfg, mode, rearr)
			s.TracePath = o.TraceIn
			s.Copies = copies
			s.Compress = float64(copies)
			s.ShiftBlocks = o.TraceShift
			if copies > 1 {
				s.Layout, s.Disks, s.StripeUnit = volume.Stripe, 4, 16
			}
			return s
		}
		return []TraceSetup{mk("custom", false), mk("custom-rearr", true)}
	}
	scaled := func(cfg string, rearr bool) TraceSetup {
		s := base(cfg, tracein.OpenLoop, rearr)
		s.Copies, s.Compress = 4, 4
		s.Layout, s.Disks, s.StripeUnit = volume.Stripe, 4, 16
		return s
	}
	return []TraceSetup{
		base("open-1x", tracein.OpenLoop, false),
		base("open-1x-rearr", tracein.OpenLoop, true),
		base("closed-1x", tracein.ClosedLoop, false),
		base("closed-1x-rearr", tracein.ClosedLoop, true),
		scaled("open-4x-stripe4", false),
		scaled("open-4x-stripe4-rearr", true),
	}
}

// traceUnits decomposes the trace-replay matrix into one independent
// run per row. Every row re-synthesizes (or re-reads) the source trace
// itself — deterministic, so all rows replay identical records with no
// shared state across the pool.
func traceUnits(o Options) []unit {
	var units []unit
	for _, s := range traceConfigs(o) {
		s := s
		units = append(units, unit{
			job: runner.Job{
				Name:  "trace/" + s.Config,
				Units: 1,
				Run: func(ctx context.Context) (any, error) {
					pt, err := ExecuteTraceReplay(ctx, s)
					if err != nil {
						return nil, fmt.Errorf("experiment: trace %s: %w", s.Config, err)
					}
					return pt, nil
				},
			},
			apply: func(rs *ResultSet, v any) {
				rs.Trace = append(rs.Trace, *v.(*TracePoint))
			},
		})
	}
	return units
}

// TraceReport renders the trace-replay matrix.
func TraceReport(points []TracePoint) *Report {
	rep := &Report{
		ID:    "trace-replay",
		Title: "Extension: trace-driven replay — captured workload, scaled and multiplexed, rearrangement off/on",
		Columns: []string{"Config", "Mode", "Scale", "Layout", "Disks", "Rearr", "Records",
			"Req/s", "Resp (ms)", "P99 (ms)", "FCFS seek (ms)", "Seek (ms)", "Red %", "Installed", "Errors"},
	}
	for _, p := range points {
		rearr := "off"
		if p.Rearrange {
			rearr = "on"
		}
		rep.AddRow(p.Config, p.Mode, p.Scale, p.Layout, fmt.Sprintf("%d", p.Disks), rearr,
			fmt.Sprintf("%d", p.Records), f1(p.Throughput), f2(p.MeanRespMS), f2(p.P99MS),
			f2(p.FCFSSeekMS), f2(p.SeekMS), f1(p.SeekRedPct),
			fmt.Sprintf("%d", p.Installed), fmt.Sprintf("%d", p.Errors))
	}
	// Pair off/on rows by config prefix and call out the rearrangement
	// delta — the number the paper's claim rides on.
	byConfig := make(map[string]TracePoint, len(points))
	for _, p := range points {
		byConfig[p.Config] = p
	}
	for _, p := range points {
		if !p.Rearrange {
			continue
		}
		off, ok := byConfig[trimRearrSuffix(p.Config)]
		if !ok {
			continue
		}
		rep.AddNote("%s: rearrangement moved %d blocks and cut the mean seek from %.2f to %.2f ms (%.1f%% vs %.1f%% reduction off FCFS); p99 %.2f -> %.2f ms",
			off.Config, p.Installed, off.SeekMS, p.SeekMS, off.SeekRedPct, p.SeekRedPct, off.P99MS, p.P99MS)
	}
	rep.AddNote("source trace: the system workload captured once per row (tracegen's flow), or the -trace-in file; scaled rows multiplex address-shifted copies with matching time compression")
	return rep
}

// trimRearrSuffix maps an on-row config to its off pair.
func trimRearrSuffix(cfg string) string {
	const suffix = "-rearr"
	if len(cfg) > len(suffix) && cfg[len(cfg)-len(suffix):] == suffix {
		return cfg[:len(cfg)-len(suffix)]
	}
	return cfg
}

// registerTraceReplay registers the trace-replay extension experiment.
func registerTraceReplay() {
	Register(Spec{
		ID: "trace-replay", Description: "extension: real-trace ingestion and scaled deterministic replay (tracein)",
		Needs: []Need{NeedTrace},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{TraceReport(rs.Trace)}
		},
	})
}
