// Package experiment reproduces the measurement study of "Adaptive Block
// Rearrangement Under UNIX": every table (2–10) and figure (4–8) of
// Section 5, as multi-day simulations of the file server "Sakarya".
//
// Each experiment assembles the full stack — disk model, adaptive
// driver, FFS-like file system, file-server workload, and the
// rearrangement system — and runs it over simulated days. Reference
// counts measured during one day are used at the end of the day to
// rearrange blocks for the next day's requests, exactly as in the paper;
// the reported seek times are computed from the measured seek-distance
// distributions and the Table 1 curves, also as in the paper.
package experiment

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/hotlist"
	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/sched"
	"repro/internal/seek"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Setup describes one multi-day experiment.
type Setup struct {
	// DiskName selects the drive: "toshiba" or "fujitsu".
	DiskName string
	// FSName selects the workload: "system" or "users".
	FSName string
	// Policy is the placement policy; empty selects organ-pipe.
	Policy string
	// Sched is the head-scheduling policy; empty selects SCAN.
	Sched string
	// Blocks is the number of blocks rearranged per cycle; zero selects
	// the paper's configuration (1018 on the Toshiba, 3500 on the
	// Fujitsu).
	Blocks int
	// Days is the number of measured days; zero selects 10.
	Days int
	// OnPattern reports whether rearrangement is applied for the given
	// day. nil selects the paper's alternation (off, on, off, on, ...).
	// Day 0 is always effectively off: no counts exist before it.
	OnPattern func(day int) bool
	// WindowMS is the measured window per day; zero selects the paper's
	// full 7am–10pm (15 h). Tests use shorter windows.
	WindowMS float64
	// Seed makes the whole experiment deterministic; zero selects 1.
	Seed uint64
	// CacheBlocks sizes the data buffer cache; zero selects the
	// calibrated 512 (4 MB of Sakarya's 32 MB): large enough that hot
	// reads are mostly absorbed in memory — which is what makes the
	// disk-level stream write-heavy and metadata-concentrated, as the
	// paper's tables imply — yet small enough that cold reads still
	// reach the disk.
	CacheBlocks int
	// MetaCacheBlocks sizes the metadata cache; zero selects 512.
	MetaCacheBlocks int
	// MetaSyncPeriodMS is the update-policy period for metadata; zero
	// selects 5 s (SunOS trickled inode updates out more eagerly than
	// the 30 s data sync; shorter bursts match the paper's off-day
	// scheduled seek distances).
	MetaSyncPeriodMS float64
	// PressurePeriodMS and PressureFrac model VM pressure on the data
	// cache (random page steals), which keeps hot blocks re-missing and
	// the disk's read stream skewed. Zeros select 60 s and 0.10.
	PressurePeriodMS float64
	PressureFrac     float64
	// ReservedCyls overrides the reserved-region size; zero selects the
	// paper's 48 (Toshiba) or 80 (Fujitsu).
	ReservedCyls int
	// Users overrides the users-workload population; zero selects the
	// paper's 10 (Toshiba) or 20 (Fujitsu).
	Users int
	// Files overrides the system-workload file count; zero selects 600.
	Files int
	// HotlistSize bounds the analyzer's reference list; zero selects an
	// exact (unbounded) counter, as the paper's analyzer effectively
	// had ("several thousand reference counts").
	HotlistSize int
	// PollPeriodMS overrides the analyzer's request-table polling
	// period; zero selects the paper's two minutes.
	PollPeriodMS float64
	// ReservedFirstCyl places the reserved region at this first cylinder
	// instead of the disk's center (the reserved-location ablation).
	ReservedFirstCyl int
	// Fault, when non-nil and active, injects device faults per the plan:
	// the rig wires a deterministic injector into the disk and driver, so
	// the run exercises retries, bad-block remapping, and crash-safe
	// table writes. nil (the default) is the zero-overhead path.
	Fault *fault.Plan
	// Shards is accepted for harness symmetry with VolumeSetup (abrsim
	// -shard threads it through every experiment): a single-disk stack
	// is one member on one engine, so there is nothing to shard and any
	// value runs the identical single-engine simulation.
	Shards int
}

func (s Setup) withDefaults() (Setup, error) {
	switch s.DiskName {
	case "", "toshiba":
		s.DiskName = "toshiba"
		if s.Blocks == 0 {
			s.Blocks = 1018
		}
		if s.ReservedCyls == 0 {
			s.ReservedCyls = 48
		}
		if s.Users == 0 {
			s.Users = 10
		}
	case "fujitsu":
		if s.Blocks == 0 {
			s.Blocks = 3500
		}
		if s.ReservedCyls == 0 {
			s.ReservedCyls = 80
		}
		if s.Users == 0 {
			s.Users = 20
		}
	default:
		return s, fmt.Errorf("experiment: unknown disk %q", s.DiskName)
	}
	switch s.FSName {
	case "", "system":
		s.FSName = "system"
	case "users":
	default:
		return s, fmt.Errorf("experiment: unknown file system %q", s.FSName)
	}
	if s.Policy == "" {
		s.Policy = "organ-pipe"
	}
	if s.Sched == "" {
		s.Sched = "scan"
	}
	if s.Days <= 0 {
		s.Days = 10
	}
	if s.OnPattern == nil {
		s.OnPattern = func(day int) bool { return day%2 == 1 }
	}
	if s.WindowMS <= 0 {
		s.WindowMS = workload.DayEndMS - workload.DayStartMS
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.CacheBlocks <= 0 {
		s.CacheBlocks = 512
	}
	if s.MetaCacheBlocks <= 0 {
		s.MetaCacheBlocks = 512
	}
	if s.MetaSyncPeriodMS <= 0 {
		s.MetaSyncPeriodMS = 5_000
	}
	if s.PressurePeriodMS <= 0 {
		s.PressurePeriodMS = 60_000
	}
	if s.PressureFrac <= 0 {
		s.PressureFrac = 0.10
	}
	return s, nil
}

// DayResult is one measured day.
type DayResult struct {
	Day int
	// On reports whether the disk was rearranged for this day.
	On bool
	// Stats is the driver's full measurement snapshot for the day.
	Stats *driver.Stats
	// AccessDist is the day's block-access distribution over all
	// requests (hottest first) and ReadDist the distribution over read
	// requests only — the raw material of Figures 5 and 7.
	AccessDist []hotlist.BlockCount
	ReadDist   []hotlist.BlockCount
}

// Run is a completed experiment.
type Run struct {
	Setup Setup
	// Curve is the disk's seek-time function, used to derive seek times
	// from distance distributions.
	Curve seek.Curve
	// Days holds one entry per measured day.
	Days []DayResult
	// WorkloadErrors counts failed file operations (0 in a healthy run).
	WorkloadErrors int64
	// Installed records how many blocks each rearrangement installed.
	Installed []int
	// Counters is the driver's lifetime counter snapshot at the end of
	// the run; its fault fields (Faults, Retries, Remaps, Unrecovered)
	// are nonzero only under an active fault plan.
	Counters driver.Counters
}

// OnDays returns the measured on-days.
func (r *Run) OnDays() []DayResult { return r.filter(true) }

// OffDays returns the measured off-days.
func (r *Run) OffDays() []DayResult { return r.filter(false) }

func (r *Run) filter(on bool) []DayResult {
	var out []DayResult
	for _, d := range r.Days {
		if d.On == on {
			out = append(out, d)
		}
	}
	return out
}

// Execute runs the experiment to completion. The context cancels the
// run: the engine's event loop is interrupted and Execute returns the
// context's error. Each call builds a fully self-contained stack (its
// own engine, disk, file system, and workload), so concurrent Execute
// calls never share mutable state — the property the parallel runner
// relies on.
func Execute(ctx context.Context, s Setup) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	var model disk.Model
	if s.DiskName == "toshiba" {
		model = disk.Toshiba()
	} else {
		model = disk.Fujitsu()
	}
	schedPolicy, err := sched.New(s.Sched)
	if err != nil {
		return nil, err
	}
	// A collector in the context (injected per job by the harness)
	// turns on telemetry for this run; nil leaves every hook on its
	// zero-cost path.
	col := telemetry.FromContext(ctx)
	var schedCount *sched.Counting
	if col != nil && (col.SamplePeriodMS() > 0 || col.MetricsEnabled()) {
		schedCount = sched.NewCounting(schedPolicy)
		schedPolicy = schedCount
	}
	r, err := rig.New(rig.Options{
		Ctx:              ctx,
		Disk:             model,
		ReservedCyls:     s.ReservedCyls,
		ReservedFirstCyl: s.ReservedFirstCyl,
		Sched:            schedPolicy,
		Telemetry:        col,
		Fault:            s.Fault,
	})
	if err != nil {
		return nil, err
	}
	fsys, err := fs.Newfs(r.Eng, r.Driver, 0, fs.Params{
		SyncData: s.FSName == "users",
		Cache: cache.Config{
			CapacityBlocks:   s.CacheBlocks,
			PressurePeriodMS: s.PressurePeriodMS,
			PressureFrac:     s.PressureFrac,
			Seed:             s.Seed,
		},
		MetaCache: cache.Config{CapacityBlocks: s.MetaCacheBlocks, SyncPeriodMS: s.MetaSyncPeriodMS},
	})
	if err != nil {
		return nil, err
	}
	r.Eng.Run() // format completes before any daemon exists
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	var w workload.Workload
	var errorsOf func() int64
	if s.FSName == "system" {
		sw := workload.NewSystem(r.Eng, fsys, workload.SystemConfig{
			Files:    s.Files,
			WindowMS: s.WindowMS,
			Seed:     s.Seed,
		})
		w, errorsOf = sw, sw.Errors
	} else {
		uw := workload.NewUsers(r.Eng, fsys, workload.UsersConfig{
			Users:    s.Users,
			WindowMS: s.WindowMS,
			Seed:     s.Seed,
		})
		w, errorsOf = uw, uw.Errors
	}

	var policy core.Policy
	if s.Policy == "cylinder" {
		policy = core.NewCylinderOrganPipe(model.Geom.SectorsPerCyl())
	} else {
		policy, err = core.NewPolicy(s.Policy)
		if err != nil {
			return nil, err
		}
	}
	var counter hotlist.Counter
	if s.HotlistSize > 0 {
		counter = hotlist.NewBounded(s.HotlistSize, hotlist.ReplaceMin)
	}
	rear, err := core.New(r.Eng, r.Driver, core.Config{
		Policy:       policy,
		Counter:      counter,
		MaxBlocks:    s.Blocks,
		PollPeriodMS: s.PollPeriodMS,
	})
	if err != nil {
		return nil, err
	}

	if err := await(r, "populate", workload.DayStartMS, func(done func(error)) {
		w.Populate(done)
	}); err != nil {
		return nil, err
	}

	// The per-day access distributions consume the same event stream
	// telemetry does; compose the counting sink with the collector so
	// both see every request.
	allCnt, readCnt := hotlist.NewExact(), hotlist.NewExact()
	countSink := telemetry.SinkFunc(func(e *telemetry.Event) {
		if e.Kind != telemetry.KindRequest {
			return
		}
		allCnt.Observe(e.Block)
		if !e.Write {
			readCnt.Observe(e.Block)
		}
	})
	if col != nil && col.SpansEnabled() {
		r.Driver.SetSink(telemetry.Multi(countSink, col))
	} else {
		r.Driver.SetSink(countSink)
	}
	if col != nil && col.SamplePeriodMS() > 0 {
		registerStackProbes(col, r, schedCount)
		registerCacheProbes(col, "cache", fsys.Cache())
		registerCacheProbes(col, "meta", fsys.MetaCache())
		registerRearrangerProbes(col, rear)
		registerFaultProbes(col, r)
		col.StartSampler(r.Eng)
	}
	if col != nil && col.MetricsEnabled() {
		// Bind after populate so the distributions cover only measured
		// traffic, like ReadStats discarding populate noise below.
		reg := col.Metrics()
		r.Driver.BindMetrics(reg)
		schedCount.BindMetrics(reg)
		fsys.BindMetrics(reg)
		if b, ok := w.(interface{ BindMetrics(*metrics.Registry) }); ok {
			b.BindMetrics(reg)
		}
	}

	run := &Run{Setup: s, Curve: model.Seek}
	for day := 0; day < s.Days; day++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dayStart := float64(day)*workload.DayMS + workload.DayStartMS
		dayEnd := dayStart + s.WindowMS
		r.Eng.RunUntil(dayStart)
		r.Driver.ReadStats() // discard overnight / populate noise
		allCnt.Reset()
		readCnt.Reset()
		rear.StartMonitoring()

		if err := await(r, fmt.Sprintf("day %d", day), dayEnd+30*60*1000, func(done func(error)) {
			w.RunDay(day, done)
		}); err != nil {
			return nil, err
		}
		rear.StopMonitoring()

		dr := DayResult{
			Day:        day,
			On:         s.OnPattern(day) && day > 0,
			Stats:      r.Driver.ReadStats(),
			AccessDist: allCnt.Distribution(),
			ReadDist:   readCnt.Distribution(),
		}
		allCnt.Reset()
		readCnt.Reset()
		run.Days = append(run.Days, dr)

		// Overnight: rearrange (or clean) for the next day using the
		// counts measured today.
		if day+1 < s.Days {
			if s.OnPattern(day + 1) {
				var installed int
				if err := await(r, fmt.Sprintf("rearrange after day %d", day),
					r.Eng.Now()+2*workload.HourMS, func(done func(error)) {
						rear.Rearrange(func(n int, err error) {
							installed = n
							done(err)
						})
					}); err != nil {
					return nil, err
				}
				run.Installed = append(run.Installed, installed)
			} else {
				if err := await(r, fmt.Sprintf("clean after day %d", day),
					r.Eng.Now()+2*workload.HourMS, func(done func(error)) {
						rear.CleanOnly(done)
					}); err != nil {
					return nil, err
				}
			}
		}
		rear.ResetCounts()
	}
	run.WorkloadErrors = errorsOf()
	run.Counters = r.Driver.Counters()
	if col != nil {
		col.SetEngineEvents(r.Eng.Dispatched())
	}
	return run, nil
}

// await drives the engine until an async operation signals completion,
// extending the horizon in bounded increments so periodic daemons cannot
// stall it, and failing if the operation takes absurdly long. A
// cancelled rig surfaces as the context's error rather than a stall.
func await(r *rig.Rig, what string, horizon float64, op func(done func(error))) error {
	var opErr error
	finished := false
	op(func(err error) {
		opErr = err
		finished = true
	})
	r.Eng.RunUntil(horizon)
	for ext := 0; !finished && r.Err() == nil && ext < 200; ext++ {
		r.Eng.RunUntil(r.Eng.Now() + 10*60*1000)
	}
	if err := r.Err(); err != nil {
		return err
	}
	if !finished {
		return fmt.Errorf("experiment: %s did not complete by t=%.0f ms", what, r.Eng.Now())
	}
	return opErr
}
