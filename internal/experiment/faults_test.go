package experiment

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// TestFaultSweepParallelDeterminism is the determinism contract for
// fault injection: with a fixed fault seed, the fault-rate sweep must
// render byte-identical reports for 1 and 8 workers. Per-operation
// fault draws are keyed by (seed, op index), not by wall-clock or
// worker scheduling, so this must hold exactly.
func TestFaultSweepParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat runs in -short mode")
	}
	render := func(workers int) string {
		reports, err := RunSpec(context.Background(), "faults",
			Options{Days: 1, WindowMS: 5 * 60 * 1000, Seed: 7},
			runner.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range reports {
			sb.WriteString(r.Render())
		}
		return sb.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("fault sweep differs between 1 and 8 workers:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "Fault rate") {
		t.Errorf("faults report missing header:\n%s", seq)
	}
}

// The sweep's nonzero rates must actually inject faults, and the clean
// baseline must see none.
func TestFaultSweepInjectsFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	rs, err := Gather(context.Background(), []Need{NeedFaults},
		Options{Days: 1, WindowMS: 5 * 60 * 1000}, runner.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Faults) != len(DefaultFaultRates) {
		t.Fatalf("%d fault points, want %d", len(rs.Faults), len(DefaultFaultRates))
	}
	for i, p := range rs.Faults {
		if p.Rate != DefaultFaultRates[i] {
			t.Errorf("point %d: rate %g, want %g (job-order assembly broken)", i, p.Rate, DefaultFaultRates[i])
		}
		if p.Rate == 0 && p.Faults != 0 {
			t.Errorf("clean baseline recorded %d faults", p.Faults)
		}
		if p.Rate >= 1e-3 && p.Faults == 0 {
			t.Errorf("rate %g injected no faults", p.Rate)
		}
		if p.ServiceMS <= 0 {
			t.Errorf("rate %g: no service time measured", p.Rate)
		}
	}
}

// TestCrashSpecRecoversEveryScenario runs the registered crash battery
// and requires every scenario to recover with its invariants intact.
func TestCrashSpecRecoversEveryScenario(t *testing.T) {
	rs, err := Gather(context.Background(), []Need{NeedCrash},
		Options{}, runner.Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Crash) != len(crashScenarios) {
		t.Fatalf("%d crash points, want %d", len(rs.Crash), len(crashScenarios))
	}
	for _, p := range rs.Crash {
		if p.Err != "" {
			t.Errorf("%s: %s", p.Scenario, p.Err)
		}
		if p.Ops == 0 {
			t.Errorf("%s: no operations before the crash", p.Scenario)
		}
	}
	spec, ok := Lookup("crash")
	if !ok {
		t.Fatal("crash not registered")
	}
	out := spec.Report(rs)[0].Render()
	if !strings.Contains(out, "mid block-copy") || strings.Contains(out, "VIOLATION") {
		t.Errorf("crash report:\n%s", out)
	}
}

// A fault-injecting run with sampling telemetry gains the fault counter
// columns; a fault-free run must keep the exact baseline column set.
func TestFaultProbesGatedOnInjector(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	run := func(plan *fault.Plan) string {
		col := telemetry.NewCollector("probe-test", telemetry.Options{SamplePeriodMS: 60 * 1000})
		s := Setup{Days: 1, WindowMS: 5 * 60 * 1000, Fault: plan}
		if _, err := Execute(telemetry.NewContext(context.Background(), col), s); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := telemetry.WriteCSV(&buf, []*telemetry.Collector{col}); err != nil {
			t.Fatal(err)
		}
		header, _, _ := strings.Cut(buf.String(), "\n")
		return header
	}
	clean := run(nil)
	faulty := run(&fault.Plan{Seed: 3, TransientWrite: 1e-3})
	if strings.Contains(clean, "faults") {
		t.Errorf("fault columns present without an injector: %s", clean)
	}
	for _, want := range []string{"faults", "retries", "remaps", "unrecovered"} {
		if !strings.Contains(faulty, want) {
			t.Errorf("fault run missing %q column: %s", want, faulty)
		}
	}
	if !strings.HasPrefix(faulty, clean) {
		t.Errorf("fault columns must extend, not reorder, the baseline set:\nclean:  %s\nfaulty: %s", clean, faulty)
	}
}
