package experiment

import (
	"context"
	"testing"

	"repro/internal/runner"
	"repro/internal/volume"
)

// TestRAIDRebuildEvidence runs the parity matrix once and asserts the
// three demonstrations the experiment exists to make: a degraded
// RAID-5 keeps serving reads after a member death, a throttled rebuild
// completes onto the hot spare while foreground load runs, and the
// scrub daemon repairs a planted latent sector error. The double-fault
// row additionally proves the P+Q budget: two dead members, zero
// failed file operations.
func TestRAIDRebuildEvidence(t *testing.T) {
	if testing.Short() {
		t.Skip("parity matrix simulation in -short mode")
	}
	// One day at a 15-minute window: every demonstration completes
	// inside day 0, and the matrix is six full-fan-out volume runs, so
	// this is the cheapest configuration that still proves all three.
	rs, err := Gather(context.Background(), []Need{NeedRAID},
		Options{Days: 1, WindowMS: 15 * 60 * 1000}, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	byCfg := make(map[string]VolumePoint, len(rs.RAID))
	for _, p := range rs.RAID {
		byCfg[p.Config] = p
	}
	get := func(cfg string) VolumePoint {
		p, ok := byCfg[cfg]
		if !ok {
			t.Fatalf("matrix has no %q row (got %d rows)", cfg, len(rs.RAID))
		}
		return p
	}

	// Healthy baseline: every foreground write paid for parity.
	if h := get("raid5-4"); h.RAID.ParityRecomputes == 0 {
		t.Errorf("raid5-4: ParityRecomputes = 0, want > 0")
	}

	// Degraded service: the member died, reads were reconstructed from
	// survivors + parity, and no file operation failed.
	d := get("raid5-degraded")
	if d.DeadMembers != 1 {
		t.Errorf("raid5-degraded: DeadMembers = %d, want 1", d.DeadMembers)
	}
	if d.RAID.DegradedReads == 0 {
		t.Errorf("raid5-degraded: DegradedReads = 0, want > 0")
	}
	if d.WorkloadErrors != 0 {
		t.Errorf("raid5-degraded: WorkloadErrors = %d, want 0", d.WorkloadErrors)
	}

	// Rebuild: the throttled copy finished onto the spare (consuming
	// it) while the foreground workload kept running.
	r := get("raid5-rebuild")
	if r.RAID.RebuildsDone < 1 {
		t.Errorf("raid5-rebuild: RebuildsDone = %d, want >= 1", r.RAID.RebuildsDone)
	}
	if r.RAID.RebuiltBlocks == 0 || r.RAID.RebuildMS <= 0 {
		t.Errorf("raid5-rebuild: RebuiltBlocks = %d, RebuildMS = %v, want both > 0",
			r.RAID.RebuiltBlocks, r.RAID.RebuildMS)
	}
	if r.SparesLeft != 0 {
		t.Errorf("raid5-rebuild: SparesLeft = %d, want 0 (spare consumed)", r.SparesLeft)
	}
	if r.Requests == 0 || r.WorkloadErrors != 0 {
		t.Errorf("raid5-rebuild: Requests = %d, WorkloadErrors = %d, want load and no errors",
			r.Requests, r.WorkloadErrors)
	}

	// Scrub: a pass found the planted latent sector error and rewrote
	// the block; the foreground never saw it (no degraded reads).
	s := get("raid5-scrub")
	if s.RAID.ScrubPasses == 0 {
		t.Errorf("raid5-scrub: ScrubPasses = 0, want > 0")
	}
	if s.RAID.ScrubRepairs == 0 {
		t.Errorf("raid5-scrub: ScrubRepairs = 0, want > 0 (planted latent error not repaired)")
	}
	if s.RAID.DegradedReads != 0 || s.WorkloadErrors != 0 {
		t.Errorf("raid5-scrub: DegradedReads = %d, WorkloadErrors = %d, want 0 (scrub should beat the foreground to the error)",
			s.RAID.DegradedReads, s.WorkloadErrors)
	}

	// Double fault: P+Q absorbs two member deaths with no data loss.
	db := get("raid6-double")
	if db.DeadMembers != 2 {
		t.Errorf("raid6-double: DeadMembers = %d, want 2", db.DeadMembers)
	}
	if db.WorkloadErrors != 0 || db.RAID.Unrecoverable != 0 {
		t.Errorf("raid6-double: WorkloadErrors = %d, Unrecoverable = %d, want 0",
			db.WorkloadErrors, db.RAID.Unrecoverable)
	}
}

// TestRAIDConfigsCustomRow pins the -layout collapse: RAIDLayout
// reduces the matrix to a single custom row carrying the CLI's spare,
// rebuild-rate, and scrub-interval settings, while the unset flag
// reproduces the committed six-row matrix with those fields ignored.
func TestRAIDConfigsCustomRow(t *testing.T) {
	o := equivOptions()
	if got := raidConfigs(o); len(got) != 6 {
		t.Fatalf("default matrix: %d rows, want 6", len(got))
	}

	o.RAIDLayout = "raid6"
	o.RAIDSpare = 2
	o.RebuildRate = 5000
	o.ScrubIntervalMS = 1000
	rows := raidConfigs(o)
	if len(rows) != 1 {
		t.Fatalf("-layout matrix: %d rows, want 1", len(rows))
	}
	s := rows[0]
	if s.Layout != volume.RAID6 || s.Disks != 5 {
		t.Errorf("custom row: layout %v disks %d, want raid6/5", s.Layout, s.Disks)
	}
	if s.Spare != 2 || s.RebuildRate != 5000 || s.ScrubIntervalMS != 1000 {
		t.Errorf("custom row dropped CLI settings: %+v", s)
	}
	if len(s.Faults) != s.Disks+s.Spare || s.Faults[1] == nil || s.Faults[1].CrashAfterOps == 0 {
		t.Errorf("custom row: want a member-1 kill plan over %d rigs, got %v", s.Disks+s.Spare, s.Faults)
	}
}

// TestLatentBadRange pins the scout's output shape: one block-sized
// physical range on member 0, inside the scrubbed region.
func TestLatentBadRange(t *testing.T) {
	bad := latentBadRange(volume.RAID5, 4, 16)
	if len(bad) != 1 {
		t.Fatalf("len = %d, want 1", len(bad))
	}
	if n := bad[0].End - bad[0].Start; n != 16 {
		t.Errorf("range spans %d sectors, want 16 (one block)", n)
	}
	if bad[0].Start <= 0 {
		t.Errorf("Start = %d, want > 0 (physical, past the label)", bad[0].Start)
	}
}
