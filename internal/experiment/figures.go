package experiment

import (
	"context"
	"fmt"

	"repro/internal/hotlist"
	"repro/internal/plot"
	"repro/internal/runner"
)

// cdfTable renders a service-time CDF comparison (Figures 4 and 6): the
// fraction of requests completing within t milliseconds on an off day
// and an on day of the Fujitsu run.
func cdfTable(id, title string, run *Run) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Columns: []string{"Service time (ms)", "Off day (frac <=)", "On day (frac <=)"},
	}
	off, on := detailDays(run)
	if off.Stats == nil || on.Stats == nil {
		rep.AddNote("insufficient days to plot")
		return rep
	}
	offSvc := off.Stats.All().Service
	onSvc := on.Stats.All().Service
	for _, ms := range []float64{5, 10, 15, 20, 25, 30, 40, 50, 60, 80, 100} {
		rep.AddRow(f0(ms), fmt.Sprintf("%.3f", offSvc.FracBelow(ms)), fmt.Sprintf("%.3f", onSvc.FracBelow(ms)))
	}
	return rep
}

// Figure4 renders Figure 4: service-time distributions for the system
// file system on the Fujitsu disk. The paper's anchor: without
// rearrangement ~50% of requests complete within 20 ms; with it, ~85%.
func Figure4(res *OnOff) *Report {
	rep := cdfTable("fig4", "Service time distribution, system fs, Fujitsu (on vs off day)", res.Fujitsu)
	rep.AddNote("paper anchor at 20 ms: off ~0.50, on ~0.85")
	return rep
}

// Figure6 renders Figure 6: service-time distributions for the users
// file system on the Fujitsu disk (a smaller on/off separation than
// Figure 4).
func Figure6(res *OnOff) *Report {
	rep := cdfTable("fig6", "Service time distribution, users fs, Fujitsu (on vs off day)", res.Fujitsu)
	rep.AddNote("paper shape: rearrangement still helps, but less than for the system fs")
	return rep
}

// cumShare returns the fraction of references absorbed by the k hottest
// blocks of a distribution.
func cumShare(dist []hotlist.BlockCount, k int) float64 {
	var total, top int64
	for i, bc := range dist {
		total += bc.Count
		if i < k {
			top += bc.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(top) / float64(total)
}

// accessDistTable renders a block-access distribution (Figures 5 and 7):
// the cumulative fraction of requests absorbed by the N hottest blocks,
// for all requests and for reads, on each disk. It uses a representative
// off day (the distribution itself is layout-independent).
func accessDistTable(id, title string, res *OnOff) *Report {
	rep := &Report{
		ID:    id,
		Title: title,
		Columns: []string{"Hottest N blocks",
			"Tosh all", "Tosh reads", "Fuji all", "Fuji reads"},
	}
	tOff, _ := detailDays(res.Toshiba)
	fOff, _ := detailDays(res.Fujitsu)
	for _, k := range []int{1, 10, 50, 100, 200, 500, 1000, 2000, 5000} {
		rep.AddRow(fmt.Sprint(k),
			fmt.Sprintf("%.3f", cumShare(tOff.AccessDist, k)),
			fmt.Sprintf("%.3f", cumShare(tOff.ReadDist, k)),
			fmt.Sprintf("%.3f", cumShare(fOff.AccessDist, k)),
			fmt.Sprintf("%.3f", cumShare(fOff.ReadDist, k)))
	}
	rep.AddRow("distinct blocks",
		fmt.Sprint(len(tOff.AccessDist)), fmt.Sprint(len(tOff.ReadDist)),
		fmt.Sprint(len(fOff.AccessDist)), fmt.Sprint(len(fOff.ReadDist)))
	return rep
}

// Figure5 renders Figure 5: the block-access distribution of the system
// file system. The paper's anchors: the 100 hottest blocks absorb ~90%
// of requests and fewer than 2000 blocks absorb all of them.
func Figure5(res *OnOff) *Report {
	rep := accessDistTable("fig5", "Distribution of block accesses, system file system", res)
	rep.AddNote("paper anchors: top-100 ~0.90 of all requests; <2000 distinct blocks; reads slightly less skewed than all requests")
	return rep
}

// Figure7 renders Figure 7: the users file system's much flatter
// distribution.
func Figure7(res *OnOff) *Report {
	rep := accessDistTable("fig7", "Distribution of block accesses, users file system", res)
	rep.AddNote("paper shape: markedly less skewed than the system fs (Figure 5)")
	return rep
}

// SweepPoint is one point of the Figure 8 sweep.
type SweepPoint struct {
	Blocks int
	// DistRedPct and TimeRedPct are the reductions in daily mean seek
	// distance and seek time over all requests; the Read variants cover
	// read requests only. All are relative to FCFS arrival order with
	// no rearrangement, as in the paper.
	DistRedPct     float64
	TimeRedPct     float64
	ReadDistRedPct float64
	ReadTimeRedPct float64
}

// DefaultSweepBlocks are the Figure 8 sweep sizes (the Toshiba reserved
// region holds at most 1018 blocks).
var DefaultSweepBlocks = []int{25, 50, 100, 200, 400, 600, 800, 1018}

// RunBlockSweep executes the Figure 8 experiment — the system file
// system on the Toshiba disk with a varying number of rearranged blocks
// — running the per-count configurations in parallel on the job runner
// (o.Jobs workers). Points come back in the order of counts regardless
// of scheduling.
func RunBlockSweep(ctx context.Context, o Options, counts []int) ([]SweepPoint, error) {
	rs, err := runUnits(ctx, sweepUnits(o, counts), o, runner.Config{Workers: o.Jobs})
	if err != nil {
		return nil, err
	}
	return rs.Sweep, nil
}

// Figure8 renders Figure 8: percentage reduction in daily mean seek
// distance and time as a function of the number of rearranged blocks
// (Toshiba, system fs).
func Figure8(points []SweepPoint) *Report {
	rep := &Report{
		ID:    "fig8",
		Title: "Seek reduction vs number of rearranged blocks (Toshiba, system fs)",
		Columns: []string{"Blocks",
			"Dist red % (all)", "Time red % (all)",
			"Dist red % (reads)", "Time red % (reads)"},
	}
	for _, p := range points {
		rep.AddRow(fmt.Sprint(p.Blocks),
			f1(p.DistRedPct), f1(p.TimeRedPct),
			f1(p.ReadDistRedPct), f1(p.ReadTimeRedPct))
	}
	rep.AddNote("paper shape: steep knee - the marginal benefit beyond ~100 blocks is small (the 100 hottest blocks absorb ~90 percent of requests)")
	return rep
}

// Figure4Chart renders the Figure 4 service-time CDFs as an ASCII chart.
func Figure4Chart(res *OnOff) plot.Chart {
	return cdfChart("Figure 4: service time CDF, system fs, Fujitsu", res.Fujitsu)
}

// Figure6Chart renders the Figure 6 users-fs CDFs.
func Figure6Chart(res *OnOff) plot.Chart {
	return cdfChart("Figure 6: service time CDF, users fs, Fujitsu", res.Fujitsu)
}

func cdfChart(title string, run *Run) plot.Chart {
	off, on := detailDays(run)
	mk := func(d DayResult) ([]float64, []float64) {
		var xs, ys []float64
		if d.Stats == nil {
			return xs, ys
		}
		for _, pt := range d.Stats.All().Service.CDF() {
			if pt.X > 60 {
				break
			}
			xs = append(xs, pt.X)
			ys = append(ys, pt.Frac)
		}
		return xs, ys
	}
	offX, offY := mk(off)
	onX, onY := mk(on)
	return plot.Chart{
		Title:  title,
		XLabel: "service time (ms)",
		YLabel: "fraction of requests",
		YMin:   0, YMax: 1,
		Series: []plot.Series{
			{Name: "off day", X: offX, Y: offY, Mark: 'o'},
			{Name: "on day", X: onX, Y: onY, Mark: '*'},
		},
	}
}

// Figure5Chart renders the Figure 5 block-access distribution (log-x).
func Figure5Chart(res *OnOff) plot.Chart {
	return accessChart("Figure 5: block access distribution, system fs (Toshiba)", res.Toshiba)
}

// Figure7Chart renders the Figure 7 users-fs distribution.
func Figure7Chart(res *OnOff) plot.Chart {
	return accessChart("Figure 7: block access distribution, users fs (Toshiba)", res.Toshiba)
}

func accessChart(title string, run *Run) plot.Chart {
	off, _ := detailDays(run)
	mk := func(dist []hotlist.BlockCount) ([]float64, []float64) {
		var xs, ys []float64
		var total, cum int64
		for _, bc := range dist {
			total += bc.Count
		}
		if total == 0 {
			return xs, ys
		}
		for i, bc := range dist {
			cum += bc.Count
			// Sample ranks logarithmically to keep point counts sane.
			if i < 10 || (i+1)%max1(len(dist)/128) == 0 {
				xs = append(xs, float64(i+1))
				ys = append(ys, float64(cum)/float64(total))
			}
		}
		return xs, ys
	}
	allX, allY := mk(off.AccessDist)
	rdX, rdY := mk(off.ReadDist)
	return plot.Chart{
		Title:  title,
		XLabel: "hottest N blocks (log scale)",
		YLabel: "cumulative fraction of requests",
		LogX:   true,
		YMin:   0, YMax: 1,
		Series: []plot.Series{
			{Name: "all requests", X: allX, Y: allY, Mark: '*'},
			{Name: "reads", X: rdX, Y: rdY, Mark: 'o'},
		},
	}
}

// Figure8Chart renders the Figure 8 sweep curves.
func Figure8Chart(points []SweepPoint) plot.Chart {
	var xs, all, reads []float64
	for _, p := range points {
		xs = append(xs, float64(p.Blocks))
		all = append(all, p.TimeRedPct)
		reads = append(reads, p.ReadTimeRedPct)
	}
	return plot.Chart{
		Title:  "Figure 8: seek time reduction vs rearranged blocks (Toshiba)",
		XLabel: "rearranged blocks",
		YLabel: "seek time reduction (%)",
		YMin:   0, YMax: 100,
		Series: []plot.Series{
			{Name: "all requests", X: xs, Y: all, Mark: '*'},
			{Name: "reads", X: xs, Y: reads, Mark: 'o'},
		},
	}
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// registerFigures registers the paper's figures with the experiment
// registry. Each figure id emits its table form followed by its ASCII
// chart.
func registerFigures() {
	Register(Spec{
		ID: "fig4", Description: "service-time CDF, system fs, Fujitsu",
		Needs: []Need{NeedSystem},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{Figure4(rs.System), Figure4Chart(rs.System)}
		},
	})
	Register(Spec{
		ID: "fig5", Description: "block-access distribution, system fs",
		Needs: []Need{NeedSystem},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{Figure5(rs.System), Figure5Chart(rs.System)}
		},
	})
	Register(Spec{
		ID: "fig6", Description: "service-time CDF, users fs, Fujitsu",
		Needs: []Need{NeedUsers},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{Figure6(rs.Users), Figure6Chart(rs.Users)}
		},
	})
	Register(Spec{
		ID: "fig7", Description: "block-access distribution, users fs",
		Needs: []Need{NeedUsers},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{Figure7(rs.Users), Figure7Chart(rs.Users)}
		},
	})
	Register(Spec{
		ID: "fig8", Description: "seek reduction vs rearranged blocks (Toshiba)",
		Needs: []Need{NeedSweep},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{Figure8(rs.Sweep), Figure8Chart(rs.Sweep)}
		},
	})
}
