package experiment

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

func TestRegistryHasAllIDs(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"table6", "table7", "table8", "table9", "table10",
		"fig4", "fig5", "fig6", "fig7", "fig8",
		"shared", "faults", "crash", "volume-scale", "tenant-scale",
		"raid-rebuild", "trace-replay",
		"onoff-system", "onoff-users", "policies", "sweep", "all",
	}
	ids := IDs()
	have := make(map[string]bool, len(ids))
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("id %q not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("%d ids registered, want %d: %v", len(ids), len(want), ids)
	}
	for _, s := range Specs() {
		if s.Description == "" {
			t.Errorf("%s: no description", s.ID)
		}
	}
}

func TestRunSpecUnknownID(t *testing.T) {
	_, err := RunSpec(context.Background(), "table99", Options{}, runner.Config{})
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), "table99") || !strings.Contains(err.Error(), "table2") {
		t.Errorf("error should name the bad id and list valid ones: %v", err)
	}
}

func TestGroupNeedsUnion(t *testing.T) {
	all, ok := Lookup("all")
	if !ok {
		t.Fatal("all not registered")
	}
	wantNeeds := map[Need]bool{NeedSystem: true, NeedUsers: true, NeedPolicies: true, NeedSweep: true}
	if len(all.Needs) != len(wantNeeds) {
		t.Fatalf("all.Needs = %v", all.Needs)
	}
	for _, n := range all.Needs {
		if !wantNeeds[n] {
			t.Errorf("all has unexpected need %v", n)
		}
	}
	if sh, _ := Lookup("shared"); len(sh.Needs) != 1 || sh.Needs[0] != NeedShared {
		t.Errorf("shared.Needs = %v", sh.Needs)
	}
}

func TestGatherDedupsNeeds(t *testing.T) {
	// Requesting the same need twice must not simulate it twice.
	var total int
	_, err := Gather(context.Background(),
		[]Need{NeedSystem, NeedSystem},
		Options{Days: 1, WindowMS: 5 * 60 * 1000},
		runner.Config{Workers: 2, OnProgress: func(p runner.Progress) { total = p.Total }})
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 {
		t.Errorf("%d jobs for a duplicated need, want 2 (one per disk)", total)
	}
}

func TestExecuteCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Execute(ctx, Setup{}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunSpecTimeoutWindsDownPromptly(t *testing.T) {
	// A timeout far shorter than the simulation must interrupt the
	// engines mid-run and surface context.DeadlineExceeded quickly.
	start := time.Now()
	_, err := RunSpec(context.Background(), "table2",
		Options{Days: 4, WindowMS: FullWindowMS},
		runner.Config{Workers: 2, Timeout: 100 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("wind-down took %v", d)
	}
}

// TestParallelMatchesSequential is the determinism regression test for
// the runner's ordering contract: the same experiment gathered with 1
// worker and with 8 workers must render byte-identical reports.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat runs in -short mode")
	}
	render := func(workers int) string {
		reports, err := RunSpec(context.Background(), "onoff-system",
			Options{Days: 2, WindowMS: 30 * 60 * 1000},
			runner.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range reports {
			sb.WriteString(r.Render())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("parallel output differs from sequential:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "table2") || !strings.Contains(seq, "fig5") {
		t.Errorf("onoff-system output missing expected reports:\n%s", seq)
	}
}
