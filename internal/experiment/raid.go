package experiment

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/volume"
	"repro/internal/workload"
)

// This file registers the parity-layout extension: the system workload
// driven over RAID-5 and RAID-6 volumes, measuring the parity layouts
// end to end — healthy small-write cost, degraded operation after
// member death, throttled hot-spare rebuild under foreground load, the
// double-fault budget of P+Q, and the scrub daemon repairing a planted
// latent sector error. The rows reuse the VolumeSetup/ExecuteVolume
// machinery; only the configurations differ.

// killPlan builds an n-member fault list whose member m crashes after
// ops device operations.
func killPlan(n, m int, ops int64) []*fault.Plan {
	plans := make([]*fault.Plan, n)
	plans[m] = &fault.Plan{Seed: 7, CrashAfterOps: ops}
	return plans
}

// latentBadRange computes a physical sector range on member 0 holding
// one high member block: the planted latent sector error the scrub row
// repairs. A scout volume with the row's geometry provides the label
// mapping; the block sits at the top of the scrubbed range, far above
// anything the day's files reach, so only the scrub pass ever touches
// it.
func latentBadRange(layout volume.Layout, disks, unit int) []fault.SectorRange {
	v, err := volume.New(volume.Options{Layout: layout, Disks: disks, StripeUnit: unit, ReservedCyls: 48})
	if err != nil {
		panic("experiment: latent-error scout volume: " + err.Error())
	}
	defer v.Close()
	drv := v.Members[0].Driver
	p, err := drv.Label().Partition(0)
	if err != nil {
		panic("experiment: latent-error scout partition: " + err.Error())
	}
	bsec := int64(v.BlockSize().Sectors())
	per := (p.Size / bsec) / int64(unit) * int64(unit) // member blocks the layout uses
	mb := per - 7
	start := drv.Label().MapVirtual(p.Start + mb*bsec)
	return []fault.SectorRange{{Start: start, End: start + bsec}}
}

// raidConfigs is the parity-layout configuration matrix. -layout
// collapses it to one custom row built from the RAID* option fields;
// with the flag unset those fields are ignored, so the committed
// matrix (and its golden) is untouched by the flags' zero values.
func raidConfigs(o Options) []VolumeSetup {
	// One day per row: unlike volume-scale there is no rearrangement in
	// the matrix (nothing needs an on-day after a baseline day), and
	// every demonstration — the kill, the rebuild, the scrub passes —
	// completes inside day 0, so a second day would only double the
	// battery's wall clock.
	days := o.days(1)
	base := func(cfg string, layout volume.Layout, disks int) VolumeSetup {
		return VolumeSetup{
			Config: cfg, Layout: layout, Disks: disks, StripeUnit: 16,
			Days: days, WindowMS: o.WindowMS, Seed: o.Seed, Shards: o.Shards,
		}
	}
	if o.RAIDLayout != "" {
		layout := volume.Layout(o.RAIDLayout)
		disks := 4
		if layout == volume.RAID6 {
			disks = 5
		}
		s := base("custom-"+o.RAIDLayout, layout, disks)
		s.Spare = o.RAIDSpare
		s.RebuildRate = o.RebuildRate
		s.ScrubIntervalMS = o.ScrubIntervalMS
		// Member 1 dies a few thousand operations into day 0, so the
		// custom row always demonstrates degraded service — and, when a
		// spare was requested, the rebuild.
		s.Faults = killPlan(disks+s.Spare, 1, 4000)
		return []VolumeSetup{s}
	}
	degraded := base("raid5-degraded", volume.RAID5, 4)
	degraded.Faults = killPlan(4, 1, 4000)
	rebuild := base("raid5-rebuild", volume.RAID5, 4)
	rebuild.Spare = 1
	rebuild.RebuildRate = 2000
	rebuild.Faults = killPlan(5, 1, 4000)
	scrub := base("raid5-scrub", volume.RAID5, 4)
	scrub.RebuildRate = 2000
	scrub.ScrubIntervalMS = 6 * workload.HourMS
	scrub.Faults = []*fault.Plan{{Seed: 11, Bad: latentBadRange(volume.RAID5, 4, 16)}}
	double := base("raid6-double", volume.RAID6, 5)
	double.Faults = killPlan(5, 1, 4000)
	double.Faults[2] = &fault.Plan{Seed: 7, CrashAfterOps: 9000}
	return []VolumeSetup{
		base("raid5-4", volume.RAID5, 4),
		degraded,
		rebuild,
		scrub,
		base("raid6-6", volume.RAID6, 6),
		double,
	}
}

// raidUnits decomposes the parity matrix into one independent run per
// configuration.
func raidUnits(o Options) []unit {
	var units []unit
	for _, s := range raidConfigs(o) {
		s := s
		units = append(units, unit{
			job: runner.Job{
				Name:  "raid/" + s.Config,
				Units: float64(s.Days),
				Run: func(ctx context.Context) (any, error) {
					pt, err := ExecuteVolume(ctx, s)
					if err != nil {
						return nil, fmt.Errorf("experiment: raid %s: %w", s.Config, err)
					}
					return pt, nil
				},
			},
			apply: func(rs *ResultSet, v any) {
				rs.RAID = append(rs.RAID, *v.(*VolumePoint))
			},
		})
	}
	return units
}

// RAIDReport renders the parity-layout matrix.
func RAIDReport(points []VolumePoint) *Report {
	rep := &Report{
		ID:    "raid-rebuild",
		Title: "Extension: RAID-5/6 parity layouts — degraded reads, hot-spare rebuild, latent-error scrub",
		Columns: []string{"Config", "Layout", "Disks", "Spare", "Requests", "Req/s", "Resp (ms)",
			"Degr reads", "Parity RW", "Rebuilt", "Rebuild (s)", "Scrub fix", "Dead", "FS errors"},
	}
	for _, p := range points {
		rep.AddRow(p.Config, p.Layout, fmt.Sprintf("%d", p.Disks), fmt.Sprintf("%d", p.SparesLeft),
			fmt.Sprintf("%d", p.Requests), f1(p.Throughput), f2(p.MeanRespMS),
			fmt.Sprintf("%d", p.RAID.DegradedReads), fmt.Sprintf("%d", p.RAID.ParityRecomputes),
			fmt.Sprintf("%d", p.RAID.RebuiltBlocks), f1(p.RAID.RebuildMS/1000),
			fmt.Sprintf("%d", p.RAID.ScrubRepairs),
			fmt.Sprintf("%d", p.DeadMembers), fmt.Sprintf("%d", p.WorkloadErrors))
	}
	for _, p := range points {
		if p.RAID.RebuildsDone > 0 {
			rep.AddNote("%s: %d member death(s) absorbed — rebuild copied %d blocks onto the hot spare in %.0f s of simulated time while the workload kept running",
				p.Config, p.DeadMembers, p.RAID.RebuiltBlocks, p.RAID.RebuildMS/1000)
		}
		if p.RAID.ScrubRepairs > 0 {
			rep.AddNote("%s: scrub completed %d pass(es) and repaired %d latent sector error(s) before any foreground read hit them",
				p.Config, p.RAID.ScrubPasses, p.RAID.ScrubRepairs)
		}
		if p.RAID.Unrecoverable > 0 {
			rep.AddNote("%s: %d block(s) were unrecoverable (losses exceeded the parity budget)",
				p.Config, p.RAID.Unrecoverable)
		}
	}
	rep.AddNote("every write pays the parity read-modify-write; degraded reads reconstruct from the survivors, so a dead member costs latency but no data")
	return rep
}

// registerRAID registers the parity-layout extension experiment.
func registerRAID() {
	Register(Spec{
		ID: "raid-rebuild", Description: "extension: RAID-5/6 parity layouts (degraded reads, hot-spare rebuild, scrub)",
		Needs: []Need{NeedRAID},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{RAIDReport(rs.RAID)}
		},
	})
}
