package experiment

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Report is a rendered experiment artifact: a table or figure series in
// the paper's format, with the paper's own numbers alongside for
// comparison.
type Report struct {
	// ID is the experiment identifier ("table2", "fig8", ...).
	ID string
	// Title matches the paper's caption.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the body cells.
	Rows [][]string
	// Notes carry caveats and shape checks.
	Notes []string
}

// Render formats the report as aligned text.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %s\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Columns, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// AddRow appends a body row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a note line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
