package experiment

import (
	"context"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/telemetry"
)

// This file is the engine-equivalence lock: the golden files under
// testdata/equiv were rendered before the sim engine's event queue was
// rewritten (PR 4), and every simulation result the harness emits must
// stay byte-identical across that rewrite. The specs cover the two
// experiment families whose numbers the paper's tables quote (table2:
// on/off, table7: placement policies), the two fault-tolerance
// extensions ("faults", "crash"), whose retry/backoff timing is the
// most sensitive to event-ordering changes, the multi-disk volume
// matrix ("volume-scale"), whose fan-out/fan-in ordering across member
// disks sharing one engine is locked here, the multi-tenant server
// matrix ("tenant-scale"), which layers the network, QoS, and breaker
// event traffic on top of the volume fan-in, and the parity matrix
// ("raid-rebuild"), whose degraded reconstruction, background rebuild,
// and scrub traffic interleave with foreground requests through the
// row locks.
//
// Regenerate with UPDATE_EQUIV_GOLDEN=1 go test ./internal/experiment
// -run TestEngineEquivalenceGolden — but only when an intentional
// simulation-semantics change is being made; a diff here means the
// engine no longer fires events in the committed order.

// equivOptions is the compressed fixed configuration the goldens were
// generated with: 2 days at a 30-minute window keeps the whole battery
// fast while still exercising rearrangement (day 1 is an on-day).
func equivOptions() Options {
	return Options{Days: 2, WindowMS: 30 * 60 * 1000}
}

// equivSpecs lists the locked experiment ids. "table7" and
// "volume-scale" are skipped in -short mode (they simulate the 3x2
// policy matrix and the 10-configuration volume matrix); the other
// three always run, including under -race in CI.
var equivSpecs = []struct {
	id    string
	short bool // runs in -short mode too
	days  int  // override equivOptions().Days when > 0
}{
	{id: "table2", short: true},
	{id: "faults", short: true},
	{id: "crash", short: true},
	{id: "table7"},
	{id: "volume-scale"},
	{id: "tenant-scale"},
	// One day, not two: the parity matrix has no rearrangement (nothing
	// distinguishes day 1 from day 0) and six rows at full fan-out, so
	// the second day would only double the battery's wall clock.
	{id: "raid-rebuild", days: 1},
	// The trace-replay matrix is day-free (capture once, replay once or
	// twice); it locks the tracein capture → scale → replay pipeline,
	// whose open-loop arrival batching and pooled completion order are
	// new event-ordering surface. Not in -short: each row re-captures
	// the source trace, and the race step's time budget is spent on the
	// tracein package's own battery instead.
	{id: "trace-replay"},
}

// renderSpec gathers one spec on the given worker count and renders its
// reports exactly as abrsim prints them. days > 0 overrides the fixed
// day count.
func renderSpec(t *testing.T, id string, days, workers int) string {
	t.Helper()
	o := equivOptions()
	if days > 0 {
		o.Days = days
	}
	return renderSpecOpts(t, id, o, workers)
}

// renderSpecOpts is renderSpec with explicit options, for the sharded
// variants below.
func renderSpecOpts(t *testing.T, id string, o Options, workers int) string {
	t.Helper()
	reports, err := RunSpec(context.Background(), id, o,
		runner.Config{Workers: workers})
	if err != nil {
		t.Fatalf("%s (jobs=%d): %v", id, workers, err)
	}
	var sb strings.Builder
	for _, r := range reports {
		sb.WriteString(r.Render())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestEngineEquivalenceGolden(t *testing.T) {
	for _, spec := range equivSpecs {
		spec := spec
		t.Run(spec.id, func(t *testing.T) {
			if testing.Short() && !spec.short {
				t.Skip("policy matrix simulation in -short mode")
			}
			got := renderSpec(t, spec.id, spec.days, 1)
			path := filepath.Join("testdata", "equiv", spec.id+".golden")
			if os.Getenv("UPDATE_EQUIV_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (generate with UPDATE_EQUIV_GOLDEN=1): %v", err)
			}
			if got != string(want) {
				gotPath := path + ".got"
				_ = os.WriteFile(gotPath, []byte(got), 0o644)
				t.Errorf("%s output differs from pre-rewrite golden %s; observed bytes written to %s",
					spec.id, path, gotPath)
			}
			// The parallel gather must agree byte-for-byte with the
			// sequential one — the runner's ordering contract, re-checked
			// here because the pooled engine must stay job-private.
			if par := renderSpec(t, spec.id, spec.days, 8); par != got {
				t.Errorf("%s: jobs=8 output differs from jobs=1", spec.id)
			}
		})
	}
}

// TestShardedVolumeEquivalence pins the shard coordinator's exact-merge
// contract end to end: running every volume member on a private engine
// shard (Options.Shards > 1, what abrsim -shard requests) must leave
// each experiment's rendered reports byte-identical to the
// shared-engine run — and the shared-engine run is itself locked to
// the committed goldens above, so the sharded render is compared
// straight against the golden bytes. volume-scale is the real subject,
// fanning requests out over concat/stripe/mirror volumes of up to 8
// members; table2 and faults are single-disk experiments for which
// Shards is a documented no-op, locked here so the flag can never
// perturb them.
func TestShardedVolumeEquivalence(t *testing.T) {
	shards := runtime.NumCPU()
	if shards < 2 {
		// The contract is about merge order, not parallel hardware: a
		// single-core box still runs real shard goroutines in lockstep.
		shards = 4
	}
	for _, spec := range []struct {
		id    string
		short bool // runs in -short mode too
		days  int  // override equivOptions().Days when > 0 (must match equivSpecs)
	}{
		{id: "table2", short: true},
		{id: "faults", short: true},
		{id: "volume-scale"},
		{id: "tenant-scale"},
		{id: "raid-rebuild", days: 1},
		{id: "trace-replay"},
	} {
		spec := spec
		t.Run(spec.id, func(t *testing.T) {
			if testing.Short() && !spec.short {
				t.Skip("volume matrix simulation in -short mode")
			}
			path := filepath.Join("testdata", "equiv", spec.id+".golden")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading golden (generate with UPDATE_EQUIV_GOLDEN=1): %v", err)
			}
			o := equivOptions()
			if spec.days > 0 {
				o.Days = spec.days
			}
			o.Shards = shards
			got := renderSpecOpts(t, spec.id, o, 1)
			if got != string(want) {
				gotPath := path + ".sharded-got"
				_ = os.WriteFile(gotPath, []byte(got), 0o644)
				t.Errorf("%s: shards=%d output differs from shared-engine golden %s; observed bytes written to %s",
					spec.id, shards, path, gotPath)
			}
		})
	}
}

// metricsJSON runs one spec with metrics histograms enabled and
// returns the per-job snapshot document as abrsim -metrics writes it.
func metricsJSON(t *testing.T, id string, o Options, workers int) string {
	t.Helper()
	o.Telemetry = &telemetry.Options{Metrics: true}
	_, rs, err := RunSpecFull(context.Background(), id, o,
		runner.Config{Workers: workers})
	if err != nil {
		t.Fatalf("%s (jobs=%d): %v", id, workers, err)
	}
	jobs := telemetry.MetricsSnapshots(rs.Collectors)
	if len(jobs) == 0 {
		t.Fatalf("%s: no metrics snapshots collected", id)
	}
	var sb strings.Builder
	if err := metrics.WriteJSON(&sb, jobs); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestMetricsDeterminism pins the metrics core's determinism contract
// end to end: the JSON snapshot — every bucket count, sum, and
// quantile input — must be byte-identical for any harness worker
// count and, for volume experiments, for any engine shard count. The
// per-shard-member registries merge in member index order, so the
// sharded run must reproduce the shared-engine snapshot exactly.
// The cheap specs pin the jobs axis on its own; volume-scale (a
// 10-configuration matrix, the expensive spec) turns jobs=8 and
// sharding on together, so one comparison covers both axes.
func TestMetricsDeterminism(t *testing.T) {
	shards := runtime.NumCPU()
	if shards < 2 {
		shards = 4
	}
	for _, spec := range []struct {
		id    string
		short bool // runs in -short mode too
		shard bool // volume-backed: exercise engine shards too
	}{
		{"table2", true, false},
		{"faults", true, false},
		{"volume-scale", false, true},
		{"tenant-scale", false, true},
		{"trace-replay", false, true},
	} {
		spec := spec
		t.Run(spec.id, func(t *testing.T) {
			if testing.Short() && !spec.short {
				t.Skip("volume matrix simulation in -short mode")
			}
			base := metricsJSON(t, spec.id, equivOptions(), 1)
			o := equivOptions()
			if spec.shard {
				o.Shards = shards // sharding only applies to volume-backed specs
			}
			if got := metricsJSON(t, spec.id, o, 8); got != base {
				t.Errorf("%s: jobs=8 shards=%d metrics snapshot differs from jobs=1 shards=1",
					spec.id, o.Shards)
			}
		})
	}
}
