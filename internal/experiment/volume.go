package experiment

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/volume"
	"repro/internal/workload"
)

// This file registers the multi-disk scale-out extension: the system
// workload driven over a logical volume of 1–8 member disks, measuring
// how throughput and response time scale with spindle count, stripe
// unit, mirror read policy, per-member adaptive rearrangement, and
// degraded (one-member-dead) operation. The paper evaluates one
// spindle; its own deployment — two file systems serving ~40 users —
// already implies the scale-out question this answers.

// VolumeSetup describes one multi-day volume experiment.
type VolumeSetup struct {
	// Config is the short row label ("disks-4", "mirror-sq", ...).
	Config string
	// Layout, Disks, StripeUnit and ReadPolicy configure the volume.
	Layout     volume.Layout
	Disks      int
	StripeUnit int
	ReadPolicy volume.ReadPolicy
	// Spare, RebuildRate and ScrubIntervalMS configure the parity
	// layouts' hot spares, rebuild throttle, and scrub daemon
	// (volume.Options); zeros keep the volume defaults (no spare, 200
	// blocks/s, no scrub).
	Spare           int
	RebuildRate     float64
	ScrubIntervalMS float64
	// Rearrange runs a per-member adaptive rearranger, rearranging
	// every member overnight (after day 0) from its own monitoring
	// table.
	Rearrange bool
	// Faults lists per-member fault plans (volume.Options.Faults).
	Faults []*fault.Plan
	// Days, WindowMS and Seed are as in Setup; zeros select 2 days,
	// the full 7am–10pm window, and seed 1.
	Days     int
	WindowMS float64
	Seed     uint64
	// Clients and ThinkMeanMS configure the closed-loop client pool.
	// The defaults (48 clients thinking 250 ms) are deliberately much
	// heavier than the paper's 14 clients / 15 s: a think-time-limited
	// load would hide the spindle count, and the point of this
	// experiment is to saturate one disk so the scaling is visible.
	Clients     int
	ThinkMeanMS float64
	// Shards above 1 runs each member disk on its own engine and
	// goroutine (volume.Options.Shards); output is byte-identical to
	// the single-engine run.
	Shards int
}

func (s VolumeSetup) withDefaults() VolumeSetup {
	if s.Disks <= 0 {
		s.Disks = 1
	}
	if s.Layout == "" {
		s.Layout = volume.Stripe
	}
	if s.Days <= 0 {
		s.Days = 2
	}
	if s.WindowMS <= 0 {
		s.WindowMS = workload.DayEndMS - workload.DayStartMS
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Clients <= 0 {
		s.Clients = 48
	}
	if s.ThinkMeanMS <= 0 {
		s.ThinkMeanMS = 250
	}
	if s.Config == "" {
		s.Config = fmt.Sprintf("%s-%d", s.Layout, s.Disks)
	}
	return s
}

// VolumePoint is the outcome of one volume configuration's run.
type VolumePoint struct {
	// Config through Rearrange echo the setup.
	Config     string
	Layout     string
	Disks      int
	StripeUnit int
	Policy     string
	Rearrange  bool
	// Requests counts volume-level block requests over the measured
	// windows; Throughput is requests per simulated second.
	Requests   int64
	Throughput float64
	// MeanRespMS is the volume-level mean response time (request entry
	// to fan-in completion).
	MeanRespMS float64
	// PerDisk counts member operations by disk index.
	PerDisk []int64
	// Degraded counts redundant requests served with a member missing;
	// DeadMembers is how many members had died by the end of the run.
	Degraded    int64
	DeadMembers int
	// RAID carries the parity layouts' cumulative counters (degraded
	// reads, parity recomputes, rebuild and scrub progress); zero for
	// the non-parity layouts. SparesLeft is how many hot spares remain
	// unconsumed at the end of the run.
	RAID       volume.RAIDStats
	SparesLeft int
	// Installed sums the blocks installed by per-member rearrangements.
	Installed int
	// WorkloadErrors counts failed file operations.
	WorkloadErrors int64
}

// ExecuteVolume runs one volume configuration to completion. Like
// Execute it builds a fully self-contained stack per call, so the
// parallel runner can execute configurations concurrently.
func ExecuteVolume(ctx context.Context, s VolumeSetup) (*VolumePoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s = s.withDefaults()
	col := telemetry.FromContext(ctx)
	v, err := volume.New(volume.Options{
		Ctx:        ctx,
		Layout:     s.Layout,
		Disks:      s.Disks,
		StripeUnit: s.StripeUnit,
		ReadPolicy: s.ReadPolicy,
		// Members always carry the Toshiba reserved region so layouts
		// are geometry-identical whether or not rearrangement runs.
		ReservedCyls:    48,
		Spare:           s.Spare,
		RebuildRate:     s.RebuildRate,
		ScrubIntervalMS: s.ScrubIntervalMS,
		Faults:          s.Faults,
		Telemetry:       col,
		Shards:          s.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer v.Close()
	// The volume matrix is a throughput benchmark: mount noatime (else
	// the heavy client pool spends the run re-encoding inode blocks for
	// atime bookkeeping) and keep the data cache small so most reads
	// miss and the member disks stay the bottleneck under test.
	fsys, err := fs.Newfs(v.Eng, v, 0, fs.Params{
		NoAtime: true,
		Cache: cache.Config{
			CapacityBlocks:   128,
			PressurePeriodMS: 60_000,
			PressureFrac:     0.10,
			Seed:             s.Seed,
		},
		MetaCache: cache.Config{CapacityBlocks: 256, SyncPeriodMS: 5_000},
	})
	if err != nil {
		return nil, err
	}
	v.Run() // format completes before any daemon exists
	v.StartScrub()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	w := workload.NewSystem(v.Eng, fsys, workload.SystemConfig{
		Clients:     s.Clients,
		ThinkMeanMS: s.ThinkMeanMS,
		WindowMS:    s.WindowMS,
		Seed:        s.Seed,
	})

	// One rearranger per member: each learns from its own monitoring
	// table and rearranges its own reserved region, exactly as N
	// independent single-disk deployments would.
	var rears []*core.Rearranger
	if s.Rearrange {
		for i, m := range v.Members {
			rear, err := core.New(v.Eng, m.Driver, core.Config{MaxBlocks: 1018})
			if err != nil {
				return nil, fmt.Errorf("experiment: volume member %d rearranger: %w", i, err)
			}
			rears = append(rears, rear)
		}
	}

	if err := awaitVolume(v, "populate", workload.DayStartMS, func(done func(error)) {
		w.Populate(done)
	}); err != nil {
		return nil, err
	}

	if col != nil && col.SamplePeriodMS() > 0 {
		registerVolumeProbes(col, v)
		col.StartSampler(v.Eng)
	}
	// Each member driver gets a private registry labeled with its disk
	// index, merged into the collector's after the run — the same
	// shard-then-fan-in shape as the event engine. Binding happens here,
	// between coordinator windows, so member goroutines observe the
	// bound histograms before the next window starts.
	var memberRegs []*metrics.Registry
	if col != nil && col.MetricsEnabled() {
		reg := col.Metrics()
		v.BindMetrics(reg)
		fsys.BindMetrics(reg)
		w.BindMetrics(reg)
		for i, m := range v.Members {
			mreg := metrics.NewRegistry()
			m.Driver.BindMetrics(mreg, metrics.Label{Key: "disk", Value: strconv.Itoa(i)})
			memberRegs = append(memberRegs, mreg)
		}
	}

	pt := &VolumePoint{
		Config:     s.Config,
		Layout:     string(s.Layout),
		Disks:      s.Disks,
		StripeUnit: s.StripeUnit,
		Policy:     string(s.ReadPolicy),
		Rearrange:  s.Rearrange,
		PerDisk:    make([]int64, s.Disks+s.Spare), // spare rigs count too
	}
	for day := 0; day < s.Days; day++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dayStart := float64(day)*workload.DayMS + workload.DayStartMS
		dayEnd := dayStart + s.WindowMS
		v.RunUntil(dayStart)
		v.ResetStats() // discard overnight / populate traffic
		for _, rear := range rears {
			rear.StartMonitoring()
		}
		if err := awaitVolume(v, fmt.Sprintf("day %d", day), dayEnd+30*60*1000, func(done func(error)) {
			w.RunDay(day, done)
		}); err != nil {
			return nil, err
		}
		for _, rear := range rears {
			rear.StopMonitoring()
		}
		st := v.Stats()
		pt.Requests += st.Requests
		pt.MeanRespMS += st.RespMSSum // normalized after the loop
		pt.Degraded += st.Degraded
		for i, n := range st.PerDisk {
			pt.PerDisk[i] += n
		}
		// Overnight: every member rearranges for the next day using the
		// counts it measured today.
		if day+1 < s.Days {
			for i, rear := range rears {
				var installed int
				if err := awaitVolume(v, fmt.Sprintf("rearrange member %d after day %d", i, day),
					v.Now()+2*workload.HourMS, func(done func(error)) {
						rear.Rearrange(func(n int, err error) {
							installed = n
							done(err)
						})
					}); err != nil {
					return nil, err
				}
				pt.Installed += installed
			}
		}
		for _, rear := range rears {
			rear.ResetCounts()
		}
	}
	if pt.Requests > 0 {
		pt.MeanRespMS /= float64(pt.Requests)
	}
	simSec := float64(s.Days) * s.WindowMS / 1000
	if simSec > 0 {
		pt.Throughput = float64(pt.Requests) / simSec
	}
	pt.DeadMembers = v.DeadMembers()
	pt.RAID = v.RAID()
	pt.SparesLeft = v.Spares()
	pt.WorkloadErrors = w.Errors()
	if col != nil {
		col.SetEngineEvents(v.Dispatched())
	}
	// Fan the per-member registries into the collector's, in member
	// index order: names carry disk labels, so every member's metrics
	// land as distinct entries in a deterministic order.
	for i, mreg := range memberRegs {
		if err := col.Metrics().Merge(mreg); err != nil {
			return nil, fmt.Errorf("experiment: merging member %d metrics: %w", i, err)
		}
	}
	return pt, nil
}

// awaitVolume is await for a volume-backed stack: it drives the
// volume (the shared engine, or the shard coordinator when sharded)
// until the operation signals completion, in bounded horizon
// increments so periodic daemons cannot stall it.
func awaitVolume(v *volume.Volume, what string, horizon float64, op func(done func(error))) error {
	var opErr error
	finished := false
	op(func(err error) {
		opErr = err
		finished = true
	})
	v.RunUntil(horizon)
	for ext := 0; !finished && v.Err() == nil && ext < 200; ext++ {
		v.RunUntil(v.Now() + 10*60*1000)
	}
	if err := v.Err(); err != nil {
		return err
	}
	if !finished {
		return fmt.Errorf("experiment: volume %s did not complete by t=%.0f ms", what, v.Now())
	}
	return opErr
}

// registerVolumeProbes registers the volume stack's sampler columns:
// aggregate queue state, then per-member queue depth and — on members
// with a fault injector — per-disk fault counters, the columns
// abrreport -telemetry reports per disk.
func registerVolumeProbes(col *telemetry.Collector, v *volume.Volume) {
	col.AddProbe("queue_depth", func() float64 {
		var n int
		for _, m := range v.Members {
			n += m.Driver.QueueLen()
		}
		return float64(n)
	})
	col.AddProbe("outstanding", func() float64 {
		var n int
		for _, m := range v.Members {
			n += m.Driver.Outstanding()
		}
		return float64(n)
	})
	for i, m := range v.Members {
		drv := m.Driver
		col.AddProbe(fmt.Sprintf("disk%d_qd", i), func() float64 {
			return float64(drv.QueueLen())
		})
		if m.Faults == nil {
			continue
		}
		col.AddProbe(fmt.Sprintf("disk%d_faults", i), func() float64 {
			return float64(drv.Counters().Faults)
		})
		col.AddProbe(fmt.Sprintf("disk%d_retries", i), func() float64 {
			return float64(drv.Counters().Retries)
		})
		col.AddProbe(fmt.Sprintf("disk%d_remaps", i), func() float64 {
			return float64(drv.Counters().Remaps)
		})
		col.AddProbe(fmt.Sprintf("disk%d_unrecovered", i), func() float64 {
			return float64(drv.Counters().Unrecovered)
		})
	}
}

// volumeConfigs is the volume-scale configuration matrix: disk-count
// scaling, the stripe-unit sweep, the mirror read-policy comparison,
// per-member rearrangement, and degraded-mirror operation.
func volumeConfigs(o Options) []VolumeSetup {
	days := o.days(2)
	base := func(cfg string) VolumeSetup {
		return VolumeSetup{Config: cfg, Days: days, WindowMS: o.WindowMS, Seed: o.Seed, Shards: o.Shards}
	}
	stripe := func(cfg string, disks, unit int) VolumeSetup {
		s := base(cfg)
		s.Layout, s.Disks, s.StripeUnit = volume.Stripe, disks, unit
		return s
	}
	mirror := func(cfg string, policy volume.ReadPolicy) VolumeSetup {
		s := base(cfg)
		s.Layout, s.Disks, s.ReadPolicy = volume.Mirror, 2, policy
		return s
	}
	rearr := stripe("disks-4-rearr", 4, 16)
	rearr.Rearrange = true
	degraded := mirror("mirror-degraded", volume.RoundRobin)
	// Member 1 dies a few thousand device operations into day 0; the
	// mirror must finish the run on member 0 alone.
	degraded.Faults = []*fault.Plan{nil, {Seed: 7, CrashAfterOps: 4000}}
	return []VolumeSetup{
		stripe("disks-1", 1, 16),
		stripe("disks-2", 2, 16),
		stripe("disks-4", 4, 16),
		stripe("disks-8", 8, 16),
		stripe("unit-4", 4, 4),
		stripe("unit-64", 4, 64),
		mirror("mirror-rr", volume.RoundRobin),
		mirror("mirror-sq", volume.ShortestQueue),
		rearr,
		degraded,
	}
}

// volumeUnits decomposes the volume-scale matrix into one independent
// run per configuration.
func volumeUnits(o Options) []unit {
	var units []unit
	for _, s := range volumeConfigs(o) {
		s := s
		units = append(units, unit{
			job: runner.Job{
				Name:  "volume/" + s.Config,
				Units: float64(s.Days),
				Run: func(ctx context.Context) (any, error) {
					pt, err := ExecuteVolume(ctx, s)
					if err != nil {
						return nil, fmt.Errorf("experiment: volume %s: %w", s.Config, err)
					}
					return pt, nil
				},
			},
			apply: func(rs *ResultSet, v any) {
				rs.Volume = append(rs.Volume, *v.(*VolumePoint))
			},
		})
	}
	return units
}

// VolumeReport renders the volume-scale matrix.
func VolumeReport(points []VolumePoint) *Report {
	rep := &Report{
		ID:      "volume-scale",
		Title:   "Extension: scale-out across disks (system workload on a logical volume, Toshiba members)",
		Columns: []string{"Config", "Layout", "Disks", "Unit", "Read policy", "Rearr", "Requests", "Req/s", "Resp (ms)", "Degraded", "Dead", "FS errors"},
	}
	var single, quad VolumePoint
	for _, p := range points {
		unit, policy, rearr := "-", "-", "off"
		if p.Layout == string(volume.Stripe) {
			unit = fmt.Sprintf("%d", p.StripeUnit)
		}
		if p.Layout == string(volume.Mirror) {
			policy = p.Policy
		}
		if p.Rearrange {
			rearr = "on"
		}
		rep.AddRow(p.Config, p.Layout, fmt.Sprintf("%d", p.Disks), unit, policy, rearr,
			fmt.Sprintf("%d", p.Requests), f1(p.Throughput), f2(p.MeanRespMS),
			fmt.Sprintf("%d", p.Degraded), fmt.Sprintf("%d", p.DeadMembers),
			fmt.Sprintf("%d", p.WorkloadErrors))
		switch p.Config {
		case "disks-1":
			single = p
		case "disks-4":
			quad = p
		}
	}
	if single.Throughput > 0 && quad.Throughput > 0 {
		rep.AddNote("4-disk stripe sustains %.2fx the single-disk throughput at %.0f%% of its response time (closed-loop clients: gains appear as both higher throughput and lower latency)",
			quad.Throughput/single.Throughput, 100*quad.MeanRespMS/single.MeanRespMS)
	}
	for _, p := range points {
		if p.DeadMembers > 0 {
			rep.AddNote("%s finished with %d dead member(s): %d requests served degraded, %d file operations failed",
				p.Config, p.DeadMembers, p.Degraded, p.WorkloadErrors)
		}
	}
	rep.AddNote("clients are deliberately heavier than the paper's (48 clients, 250 ms think) so a single member saturates and spindle count is the bottleneck under test")
	return rep
}

// registerVolume registers the volume-scale extension experiment.
func registerVolume() {
	Register(Spec{
		ID: "volume-scale", Description: "extension: throughput and response time scaling across multi-disk volumes",
		Needs: []Need{NeedVolume},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{VolumeReport(rs.Volume)}
		},
	})
}
