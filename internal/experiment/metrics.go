package experiment

import (
	"repro/internal/driver"
	"repro/internal/seek"
	"repro/internal/stats"
)

// Metrics is the set of per-day quantities the paper's tables report.
// Times are milliseconds, distances cylinders.
type Metrics struct {
	Count int64
	// FCFSDist is the mean seek distance had requests been served in
	// arrival order with no rearrangement; Dist is the mean distance
	// actually observed (SCAN order, with any rearrangement).
	FCFSDist float64
	Dist     float64
	// ZeroSeekPct is the percentage of zero-length seeks.
	ZeroSeekPct float64
	// FCFSSeekMS and SeekMS are the corresponding mean seek times,
	// computed from the distance distributions and the disk's seek
	// curve, as the paper does.
	FCFSSeekMS float64
	SeekMS     float64
	// ServiceMS and WaitMS are the measured mean service and queueing
	// times.
	ServiceMS float64
	WaitMS    float64
	// RotTransferMS is the measured mean rotational latency plus
	// transfer time (Table 10's metric).
	RotTransferMS float64
}

// sideMetrics derives Metrics from one direction's statistics.
func sideMetrics(s *driver.Side, curve seek.Curve) Metrics {
	return Metrics{
		Count:         s.Count(),
		FCFSDist:      s.FCFSDist.MeanDist(),
		Dist:          s.SchedDist.MeanDist(),
		ZeroSeekPct:   s.SchedDist.ZeroFrac() * 100,
		FCFSSeekMS:    s.FCFSMeanSeekMS(curve),
		SeekMS:        s.MeanSeekMS(curve),
		ServiceMS:     s.MeanServiceMS(),
		WaitMS:        s.MeanQueueingMS(),
		RotTransferMS: s.MeanRotTransferMS(),
	}
}

// Side selects a direction of a day's statistics.
type Side func(*driver.Stats) *driver.Side

// Side selectors for the tables.
var (
	AllRequests Side = func(s *driver.Stats) *driver.Side { return s.All() }
	ReadsOnly   Side = func(s *driver.Stats) *driver.Side { return s.ReadSide }
	WritesOnly  Side = func(s *driver.Stats) *driver.Side { return s.WriteSide }
)

// Metrics derives the day's metrics for the selected side.
func (d DayResult) Metrics(curve seek.Curve, side Side) Metrics {
	return sideMetrics(side(d.Stats), curve)
}

// OnOffSummary aggregates the daily mean seek, service, and waiting
// times of a set of days into the min/avg/max triples of the paper's
// on/off tables (2, 4, 5, 6).
type OnOffSummary struct {
	Seek, Service, Wait stats.Summary
	Days                int
}

// Summarize builds an OnOffSummary over days for the selected side.
func Summarize(days []DayResult, curve seek.Curve, side Side) OnOffSummary {
	var out OnOffSummary
	for _, d := range days {
		m := d.Metrics(curve, side)
		if m.Count == 0 {
			continue
		}
		out.Seek.Add(m.SeekMS)
		out.Service.Add(m.ServiceMS)
		out.Wait.Add(m.WaitMS)
		out.Days++
	}
	return out
}

// SeekReductionPct returns the percentage reduction of a day's mean seek
// time relative to FCFS arrival order with no rearrangement — the metric
// of Table 7 and Figure 8.
func SeekReductionPct(m Metrics) float64 {
	if m.FCFSSeekMS == 0 {
		return 0
	}
	return (1 - m.SeekMS/m.FCFSSeekMS) * 100
}

// DistReductionPct is the corresponding seek-distance reduction.
func DistReductionPct(m Metrics) float64 {
	if m.FCFSDist == 0 {
		return 0
	}
	return (1 - m.Dist/m.FCFSDist) * 100
}
