package experiment

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/workload"
)

// Shared compressed runs: the shape assertions all reuse these, so the
// expensive simulations execute once per test binary.
var (
	onceSys sync.Once
	resSys  *OnOff
	errSys  error

	onceUsr sync.Once
	resUsr  *OnOff
	errUsr  error
)

func testOpts() Options {
	return Options{Days: 4, WindowMS: 1 * workload.HourMS}
}

func systemRuns(t *testing.T) *OnOff {
	t.Helper()
	onceSys.Do(func() { resSys, errSys = RunOnOff(context.Background(), "system", testOpts()) })
	if errSys != nil {
		t.Fatal(errSys)
	}
	return resSys
}

func usersRuns(t *testing.T) *OnOff {
	t.Helper()
	onceUsr.Do(func() { resUsr, errUsr = RunOnOff(context.Background(), "users", testOpts()) })
	if errUsr != nil {
		t.Fatal(errUsr)
	}
	return resUsr
}

func TestExecuteValidation(t *testing.T) {
	if _, err := Execute(context.Background(), Setup{DiskName: "ibm"}); err == nil {
		t.Error("unknown disk accepted")
	}
	if _, err := Execute(context.Background(), Setup{FSName: "scratch"}); err == nil {
		t.Error("unknown fs accepted")
	}
	if _, err := Execute(context.Background(), Setup{Policy: "random"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Execute(context.Background(), Setup{Sched: "elevator"}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestExecuteBasics(t *testing.T) {
	res := systemRuns(t)
	for _, run := range []*Run{res.Toshiba, res.Fujitsu} {
		if len(run.Days) != 4 {
			t.Fatalf("%s: %d days", run.Setup.DiskName, len(run.Days))
		}
		if run.WorkloadErrors != 0 {
			t.Errorf("%s: %d workload errors", run.Setup.DiskName, run.WorkloadErrors)
		}
		// Alternation: day 0 off, day 1 on, ...
		for i, d := range run.Days {
			if d.On != (i%2 == 1) {
				t.Errorf("%s day %d: on=%v", run.Setup.DiskName, i, d.On)
			}
			if d.Stats.All().Count() == 0 {
				t.Errorf("%s day %d: no requests measured", run.Setup.DiskName, i)
			}
			if len(d.AccessDist) == 0 || len(d.ReadDist) == 0 {
				t.Errorf("%s day %d: missing access distributions", run.Setup.DiskName, i)
			}
		}
		// Rearrangements installed blocks on each on-day.
		if len(run.Installed) == 0 {
			t.Fatalf("%s: no rearrangements recorded", run.Setup.DiskName)
		}
		for _, n := range run.Installed {
			if n < 500 {
				t.Errorf("%s: only %d blocks installed", run.Setup.DiskName, n)
			}
		}
	}
}

func TestSystemSeekReduction(t *testing.T) {
	// The headline result (Table 2): rearrangement cuts seek times
	// heavily on both disks — the paper measures ~90%; we require >=60%
	// under the compressed test window.
	res := systemRuns(t)
	for _, run := range []*Run{res.Toshiba, res.Fujitsu} {
		off := Summarize(run.OffDays(), run.Curve, AllRequests)
		on := Summarize(run.OnDays(), run.Curve, AllRequests)
		if on.Seek.Avg() >= 0.4*off.Seek.Avg() {
			t.Errorf("%s: seek %.2f -> %.2f ms, want >=60%% reduction",
				run.Setup.DiskName, off.Seek.Avg(), on.Seek.Avg())
		}
		if on.Service.Avg() >= off.Service.Avg() {
			t.Errorf("%s: service did not improve (%.2f -> %.2f ms)",
				run.Setup.DiskName, off.Service.Avg(), on.Service.Avg())
		}
		if on.Wait.Avg() >= off.Wait.Avg() {
			t.Errorf("%s: waiting did not improve (%.2f -> %.2f ms)",
				run.Setup.DiskName, off.Wait.Avg(), on.Wait.Avg())
		}
	}
}

func TestZeroSeekFractionJumps(t *testing.T) {
	// Table 3: rearrangement dramatically increases zero-length seeks.
	res := systemRuns(t)
	for _, run := range []*Run{res.Toshiba, res.Fujitsu} {
		off, on := detailDays(run)
		offM := off.Metrics(run.Curve, AllRequests)
		onM := on.Metrics(run.Curve, AllRequests)
		if onM.ZeroSeekPct < offM.ZeroSeekPct+20 {
			t.Errorf("%s: zero-seeks %.0f%% -> %.0f%%, want a large jump",
				run.Setup.DiskName, offM.ZeroSeekPct, onM.ZeroSeekPct)
		}
	}
}

func TestSCANBeatsFCFSOnOffDays(t *testing.T) {
	// Table 3's highlighted rows: even without rearrangement, SCAN's
	// scheduled distances are below arrival-order distances.
	res := systemRuns(t)
	off, _ := detailDays(res.Toshiba)
	m := off.Metrics(res.Toshiba.Curve, AllRequests)
	if m.Dist >= m.FCFSDist {
		t.Errorf("scheduled dist %.0f >= FCFS dist %.0f", m.Dist, m.FCFSDist)
	}
}

func TestSystemAccessDistributionShape(t *testing.T) {
	// Figure 5: heavy skew, bounded footprint.
	res := systemRuns(t)
	off, _ := detailDays(res.Toshiba)
	if got := cumShare(off.AccessDist, 100); got < 0.75 {
		t.Errorf("top-100 share = %.2f, want >= 0.75 (paper ~0.90)", got)
	}
	if len(off.AccessDist) > 3000 {
		t.Errorf("%d distinct blocks, want < 3000 (paper < 2000)", len(off.AccessDist))
	}
}

func TestUsersImproveLessThanSystem(t *testing.T) {
	// Section 5.3: the users file system benefits from rearrangement,
	// but much less than the system file system.
	sys := systemRuns(t)
	usr := usersRuns(t)
	reduction := func(run *Run) float64 {
		offSum := Summarize(run.OffDays(), run.Curve, AllRequests)
		onSum := Summarize(run.OnDays(), run.Curve, AllRequests)
		off, on := offSum.Seek.Avg(), onSum.Seek.Avg()
		if off == 0 {
			return 0
		}
		return 1 - on/off
	}
	sysRed := reduction(sys.Toshiba)
	usrRed := reduction(usr.Toshiba)
	if usrRed >= sysRed {
		t.Errorf("users reduction %.2f >= system reduction %.2f", usrRed, sysRed)
	}
}

func TestUsersFlatterDistribution(t *testing.T) {
	// Figure 7 vs Figure 5.
	sys := systemRuns(t)
	usr := usersRuns(t)
	sOff, _ := detailDays(sys.Toshiba)
	uOff, _ := detailDays(usr.Toshiba)
	if s, u := cumShare(sOff.AccessDist, 100), cumShare(uOff.AccessDist, 100); u >= s {
		t.Errorf("users top-100 share %.2f not flatter than system %.2f", u, s)
	}
}

func TestServiceCDFOnDominatesOff(t *testing.T) {
	// Figure 4: the rearranged day's service-time CDF dominates at the
	// 20 ms anchor.
	res := systemRuns(t)
	off, on := detailDays(res.Fujitsu)
	offAt20 := off.Stats.All().Service.FracBelow(20)
	onAt20 := on.Stats.All().Service.FracBelow(20)
	if onAt20 <= offAt20 {
		t.Errorf("CDF at 20ms: on %.2f <= off %.2f", onAt20, offAt20)
	}
	if onAt20 < 0.75 {
		t.Errorf("on-day CDF at 20ms = %.2f, paper ~0.85", onAt20)
	}
}

func TestReportsRender(t *testing.T) {
	sys := systemRuns(t)
	usr := usersRuns(t)
	reports := []*Report{
		Table1(), Table2(sys), Table3(sys), Table4(sys),
		Table5(usr), Table6(usr),
		Figure4(sys), Figure5(sys), Figure6(usr), Figure7(usr),
	}
	for _, rep := range reports {
		out := rep.Render()
		if out == "" {
			t.Errorf("%s: empty render", rep.ID)
		}
		if !strings.Contains(out, rep.ID) {
			t.Errorf("%s: render lacks id", rep.ID)
		}
		if len(rep.Rows) == 0 {
			t.Errorf("%s: no rows", rep.ID)
		}
	}
}

func TestTable1MatchesPaperSpecs(t *testing.T) {
	rep := Table1()
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows", len(rep.Rows))
	}
	if rep.Rows[0][2] != "815" || rep.Rows[1][2] != "1658" {
		t.Errorf("cylinder counts = %s, %s", rep.Rows[0][2], rep.Rows[1][2])
	}
}

func TestSeekReductionPct(t *testing.T) {
	m := Metrics{FCFSSeekMS: 20, SeekMS: 2}
	if got := SeekReductionPct(m); got != 90 {
		t.Errorf("SeekReductionPct = %v", got)
	}
	if got := SeekReductionPct(Metrics{}); got != 0 {
		t.Errorf("zero FCFS: %v", got)
	}
	m = Metrics{FCFSDist: 200, Dist: 50}
	if got := DistReductionPct(m); got != 75 {
		t.Errorf("DistReductionPct = %v", got)
	}
}

func TestCumShare(t *testing.T) {
	res := systemRuns(t)
	off, _ := detailDays(res.Toshiba)
	full := cumShare(off.AccessDist, len(off.AccessDist))
	if full < 0.999 {
		t.Errorf("full share = %v", full)
	}
	if cumShare(nil, 10) != 0 {
		t.Error("empty distribution share != 0")
	}
}

func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("repeat run in -short mode")
	}
	run1, err := Execute(context.Background(), Setup{Days: 2, WindowMS: 30 * 60 * 1000})
	if err != nil {
		t.Fatal(err)
	}
	run2, err := Execute(context.Background(), Setup{Days: 2, WindowMS: 30 * 60 * 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range run1.Days {
		a := run1.Days[i].Metrics(run1.Curve, AllRequests)
		b := run2.Days[i].Metrics(run2.Curve, AllRequests)
		if a != b {
			t.Fatalf("day %d metrics differ: %+v vs %+v", i, a, b)
		}
	}
}

func TestBoundedHotlistStillWorks(t *testing.T) {
	if testing.Short() {
		t.Skip("extra run in -short mode")
	}
	run, err := Execute(context.Background(), Setup{
		Days: 2, WindowMS: 30 * 60 * 1000, HotlistSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, on := detailDays(run)
	m := on.Metrics(run.Curve, AllRequests)
	off := run.Days[0].Metrics(run.Curve, AllRequests)
	if m.SeekMS >= off.SeekMS {
		t.Errorf("bounded hot list: seek %.2f -> %.2f, no improvement", off.SeekMS, m.SeekMS)
	}
}

func TestCylinderPolicyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("extra run in -short mode")
	}
	run, err := Execute(context.Background(), Setup{
		Days: 2, WindowMS: 30 * 60 * 1000, Policy: "cylinder",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Installed) == 0 || run.Installed[0] == 0 {
		t.Fatal("cylinder policy installed nothing")
	}
}

func TestSerialPolicyWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("extra runs in -short mode")
	}
	// Table 7's ordering on a single disk: serial placement leaves far
	// more seek time on the table than organ-pipe.
	seekOf := func(policy string) float64 {
		run, err := Execute(context.Background(), Setup{
			Policy: policy, Days: 2, WindowMS: 45 * 60 * 1000,
			OnPattern: func(day int) bool { return day > 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		_, on := detailDays(run)
		return on.Metrics(run.Curve, AllRequests).SeekMS
	}
	organ := seekOf("organ-pipe")
	serial := seekOf("serial")
	if serial <= organ*1.5 {
		t.Errorf("serial seek %.2f ms not clearly worse than organ-pipe %.2f ms", serial, organ)
	}
}

func TestCylinderGranularityWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("extra runs in -short mode")
	}
	// The paper's granularity argument (§1.1): whole-cylinder
	// rearrangement at the same data volume beats nothing but loses to
	// block granularity.
	seekOf := func(policy string) (on, off float64) {
		run, err := Execute(context.Background(), Setup{
			Policy: policy, Days: 2, WindowMS: 45 * 60 * 1000,
			OnPattern: func(day int) bool { return day > 0 },
		})
		if err != nil {
			t.Fatal(err)
		}
		offDay, onDay := detailDays(run)
		return onDay.Metrics(run.Curve, AllRequests).SeekMS,
			offDay.Metrics(run.Curve, AllRequests).SeekMS
	}
	blockOn, _ := seekOf("organ-pipe")
	cylOn, cylOff := seekOf("cylinder")
	if cylOn >= cylOff {
		t.Errorf("cylinder granularity did not help at all: %.2f -> %.2f", cylOff, cylOn)
	}
	if blockOn >= cylOn {
		t.Errorf("block granularity (%.2f ms) not better than cylinder granularity (%.2f ms)",
			blockOn, cylOn)
	}
}

func TestSharedDiskExtension(t *testing.T) {
	if testing.Short() {
		t.Skip("extra runs in -short mode")
	}
	res, err := RunShared(context.Background(), Options{Days: 4, WindowMS: 45 * 60 * 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.SystemErrors != 0 || res.UsersErrors != 0 {
		t.Errorf("workload errors: sys=%d usr=%d", res.SystemErrors, res.UsersErrors)
	}
	run := res.Run
	if len(run.Days) != 4 {
		t.Fatalf("%d days", len(run.Days))
	}
	off := Summarize(run.OffDays(), run.Curve, AllRequests)
	on := Summarize(run.OnDays(), run.Curve, AllRequests)
	if on.Seek.Avg() >= off.Seek.Avg() {
		t.Errorf("shared disk: seek %.2f -> %.2f ms, no improvement", off.Seek.Avg(), on.Seek.Avg())
	}
	if len(run.Installed) == 0 || run.Installed[0] < 500 {
		t.Errorf("installed = %v", run.Installed)
	}
	if rep := SharedReport(res); len(rep.Rows) != 3 {
		t.Errorf("report rows = %d", len(rep.Rows))
	}
}
