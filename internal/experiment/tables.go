package experiment

import (
	"context"
	"fmt"

	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Options scales a reproduction run. The zero value reproduces the
// paper's configuration (full 7am–10pm days, the paper's day counts);
// tests and quick runs compress the window.
type Options struct {
	// Days overrides the number of days of each underlying run.
	Days int
	// WindowMS compresses the measured window per day.
	WindowMS float64
	// Seed changes the workload seed.
	Seed uint64
	// Jobs is the worker count used when this Options value drives the
	// parallel runner directly (RunOnOff, RunPolicies, RunBlockSweep);
	// 0 selects GOMAXPROCS. Results are identical for any value.
	Jobs int
	// Telemetry, when non-nil, gives every simulation job a private
	// telemetry collector: span capture and/or periodic sampling per
	// the options. The collectors land in ResultSet.Collectors in job
	// order, so concatenated output is byte-identical for any Jobs
	// value. nil (the default) is the zero-cost path.
	Telemetry *telemetry.Options
	// Fault, when non-nil and active, injects device faults per the
	// plan into every simulation unit (abrsim -fault-plan). The fault
	// experiments ("faults", "crash") ignore it: they define their own
	// plans. nil (the default) changes nothing.
	Fault *fault.Plan
	// Shards above 1 runs every member disk of a volume-backed
	// experiment on its own engine and goroutine (abrsim -shard; see
	// volume.Options.Shards). Single-disk experiments have one member
	// and ignore it. Results are byte-identical for any value.
	Shards int
	// Tenants above 0 collapses the tenant-scale population sweep to
	// this single tenant count and resizes the scenario rows (abrsim
	// -tenants). Other experiments ignore it.
	Tenants int
	// NetLatencyMS and NetBandwidthMBps override the tenant-scale
	// simulated link (abrsim -net-lat, -net-bw); zeros keep the server
	// defaults (0.2 ms, 100 MB/s).
	NetLatencyMS     float64
	NetBandwidthMBps float64
	// QoS forces tenant-scale admission control "on" or "off" across
	// the matrix (abrsim -qos); "" keeps each row's own setting.
	QoS string
	// RAIDLayout collapses the raid-rebuild matrix to one custom row of
	// the given layout ("raid5" or "raid6"; abrsim -layout); "" keeps
	// the full matrix. RAIDSpare, RebuildRate, and ScrubIntervalMS
	// configure that custom row (abrsim -spare, -rebuild-rate,
	// -scrub-interval); they are ignored when RAIDLayout is unset, so
	// zero values reproduce the committed matrix exactly.
	RAIDLayout      string
	RAIDSpare       int
	RebuildRate     float64
	ScrubIntervalMS float64
	// TraceIn replays this trace file (any tracein format,
	// auto-detected) instead of the trace-replay matrix's synthesized
	// workload, collapsing the matrix to one custom off/on pair (abrsim
	// -trace-in). ReplayMode ("open" or "closed"; abrsim -replay-mode),
	// TraceScale (copies multiplexed with matching time compression;
	// abrsim -trace-scale), and TraceShift (per-copy address shift in
	// blocks, 0 = spread evenly; abrsim -trace-shift) configure that
	// pair; with all four unset, the committed matrix runs unchanged.
	TraceIn    string
	ReplayMode string
	TraceScale int
	TraceShift int64
}

func (o Options) days(def int) int {
	if o.Days > 0 {
		return o.Days
	}
	return def
}

// OnOff holds the paired on/off runs of one file system on both disks —
// the experiments behind Tables 2, 3, 4 (system) and 5, 6 (users) and
// Figures 4–7.
type OnOff struct {
	FSName  string
	Toshiba *Run
	Fujitsu *Run
}

// RunOnOff executes the alternating-days experiment for one file system
// on both disks, running the two per-disk simulations in parallel on
// the job runner (o.Jobs workers).
func RunOnOff(ctx context.Context, fsname string, o Options) (*OnOff, error) {
	rs, err := runUnits(ctx, onOffUnits(fsname, o), o, runner.Config{Workers: o.Jobs})
	if err != nil {
		return nil, err
	}
	return ensureOnOff(rs, fsname), nil
}

// paperOnOff holds one paper row of an on/off summary table:
// {seek, service, wait} × {min, avg, max}.
type paperOnOff struct {
	seek, service, wait [3]float64
}

// Paper values for Tables 2, 4, 5 and 6, keyed by "<disk>/<on|off>".
var (
	paperTable2 = map[string]paperOnOff{
		"toshiba/off": {[3]float64{18.70, 19.46, 21.51}, [3]float64{38.41, 39.78, 41.71}, [3]float64{65.39, 82.73, 94.52}},
		"toshiba/on":  {[3]float64{0.98, 1.17, 1.55}, [3]float64{22.61, 22.88, 23.34}, [3]float64{40.39, 46.43, 51.13}},
		"fujitsu/off": {[3]float64{7.80, 8.14, 8.67}, [3]float64{21.26, 21.60, 22.04}, [3]float64{61.35, 66.57, 72.69}},
		"fujitsu/on":  {[3]float64{0.70, 0.91, 1.16}, [3]float64{13.83, 14.18, 14.41}, [3]float64{35.65, 45.31, 52.52}},
	}
	paperTable4 = map[string]paperOnOff{
		"toshiba/off": {[3]float64{12.46, 14.31, 16.60}, [3]float64{30.50, 32.80, 35.32}, [3]float64{4.48, 5.80, 6.86}},
		"toshiba/on":  {[3]float64{3.54, 3.89, 4.49}, [3]float64{22.57, 23.59, 24.03}, [3]float64{4.46, 4.97, 5.47}},
		"fujitsu/off": {[3]float64{7.52, 7.79, 8.02}, [3]float64{19.69, 20.29, 21.48}, [3]float64{3.21, 4.72, 7.59}},
		"fujitsu/on":  {[3]float64{1.32, 1.58, 1.89}, [3]float64{12.34, 12.87, 13.41}, [3]float64{2.54, 2.98, 3.32}},
	}
	paperTable5 = map[string]paperOnOff{
		"toshiba/off": {[3]float64{11.06, 13.10, 15.45}, [3]float64{28.83, 31.14, 34.06}, [3]float64{8.32, 16.86, 31.93}},
		"toshiba/on":  {[3]float64{8.10, 8.90, 10.78}, [3]float64{26.08, 27.32, 29.54}, [3]float64{4.74, 10.18, 18.63}},
		"fujitsu/off": {[3]float64{3.27, 4.27, 4.79}, [3]float64{16.23, 17.00, 17.37}, [3]float64{4.33, 15.19, 48.96}},
		"fujitsu/on":  {[3]float64{1.76, 2.73, 3.92}, [3]float64{14.04, 15.12, 16.13}, [3]float64{3.53, 5.83, 8.75}},
	}
	paperTable6 = map[string]paperOnOff{
		"toshiba/off": {[3]float64{11.97, 15.38, 17.73}, [3]float64{30.03, 32.90, 35.29}, [3]float64{1.18, 5.16, 16.87}},
		"toshiba/on":  {[3]float64{6.67, 8.40, 9.64}, [3]float64{25.35, 26.48, 27.79}, [3]float64{0.73, 2.48, 4.19}},
		"fujitsu/off": {[3]float64{4.95, 5.98, 7.13}, [3]float64{16.62, 17.59, 18.00}, [3]float64{1.30, 3.01, 7.21}},
		"fujitsu/on":  {[3]float64{2.05, 2.44, 2.74}, [3]float64{13.12, 13.84, 14.51}, [3]float64{0.99, 2.04, 4.05}},
	}
)

// onOffTable renders an on/off summary table in the paper's layout,
// interleaving the measured rows with the paper's rows.
func onOffTable(id, title string, res *OnOff, side Side, paper map[string]paperOnOff) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Columns: []string{"Disk", "On/Off", "Source", "Seek min/avg/max", "Service min/avg/max", "Waiting min/avg/max"},
	}
	for _, dr := range []struct {
		name string
		run  *Run
	}{{"toshiba", res.Toshiba}, {"fujitsu", res.Fujitsu}} {
		for _, on := range []bool{false, true} {
			days := dr.run.OffDays()
			label := "Off"
			if on {
				days = dr.run.OnDays()
				label = "On"
			}
			sum := Summarize(days, dr.run.Curve, side)
			rep.AddRow(dr.name, label, "measured", sum.Seek.String(), sum.Service.String(), sum.Wait.String())
			if p, ok := paper[dr.name+"/"+key(on)]; ok {
				rep.AddRow(dr.name, label, "paper", triple(p.seek), triple(p.service), triple(p.wait))
			}
		}
	}
	rep.AddNote("seek times computed from measured seek-distance distributions and the Table 1 curves, as in the paper")
	return rep
}

func key(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

func triple(v [3]float64) string { return fmt.Sprintf("%.2f/%.2f/%.2f", v[0], v[1], v[2]) }

// Table2 renders Table 2: on/off daily means for the system file system.
func Table2(res *OnOff) *Report {
	return onOffTable("table2", "Summary of Results of On/Off Experiments (system file system)",
		res, AllRequests, paperTable2)
}

// Table4 renders Table 4: the same experiment, read requests only.
func Table4(res *OnOff) *Report {
	return onOffTable("table4", "Summary of Results of On/Off Experiments (system fs, read requests only)",
		res, ReadsOnly, paperTable4)
}

// Table5 renders Table 5: on/off daily means for the users file system.
func Table5(res *OnOff) *Report {
	return onOffTable("table5", "Summary of Results of On/Off Experiments (users file system)",
		res, AllRequests, paperTable5)
}

// Table6 renders Table 6: the users experiment, read requests only.
func Table6(res *OnOff) *Report {
	return onOffTable("table6", "Summary of Results of On/Off Experiments (users fs, read requests only)",
		res, ReadsOnly, paperTable6)
}

// detailDays picks the representative consecutive off/on pair used by
// the day-detail tables: the last off day and the last on day.
func detailDays(run *Run) (off, on DayResult) {
	offs, ons := run.OffDays(), run.OnDays()
	if len(offs) > 0 {
		off = offs[len(offs)-1]
	}
	if len(ons) > 0 {
		on = ons[len(ons)-1]
	}
	return off, on
}

// paperTable3 holds Table 3's columns for each disk/day:
// FCFS dist, dist, zero%, FCFS seek, seek, service, waiting.
var paperTable3 = map[string][7]float64{
	"toshiba/off": {220, 173, 23, 20.92, 18.21, 38.41, 87.30},
	"toshiba/on":  {225, 8, 88, 21.46, 1.55, 22.95, 50.03},
	"fujitsu/off": {435, 315, 27, 10.31, 8.01, 21.15, 69.98},
	"fujitsu/on":  {413, 27, 76, 9.73, 1.16, 14.08, 35.65},
}

// Table3 renders Table 3: detailed results from an off day and an on day
// of the system file system experiment on each disk.
func Table3(res *OnOff) *Report {
	rep := &Report{
		ID:    "table3",
		Title: "Experimental results for system file system (off day vs on day)",
		Columns: []string{"Metric",
			"Tosh off", "Tosh off (paper)", "Tosh on", "Tosh on (paper)",
			"Fuji off", "Fuji off (paper)", "Fuji on", "Fuji on (paper)"},
	}
	tOff, tOn := detailDays(res.Toshiba)
	fOff, fOn := detailDays(res.Fujitsu)
	ms := []Metrics{
		tOff.Metrics(res.Toshiba.Curve, AllRequests),
		tOn.Metrics(res.Toshiba.Curve, AllRequests),
		fOff.Metrics(res.Fujitsu.Curve, AllRequests),
		fOn.Metrics(res.Fujitsu.Curve, AllRequests),
	}
	papers := [][7]float64{
		paperTable3["toshiba/off"], paperTable3["toshiba/on"],
		paperTable3["fujitsu/off"], paperTable3["fujitsu/on"],
	}
	rows := []struct {
		name string
		get  func(Metrics) float64
		fmt  func(float64) string
	}{
		{"FCFS Mean Seek Dist (cyln)", func(m Metrics) float64 { return m.FCFSDist }, f0},
		{"Mean Seek Distance (cyln)", func(m Metrics) float64 { return m.Dist }, f0},
		{"Zero-length Seeks (%)", func(m Metrics) float64 { return m.ZeroSeekPct }, f0},
		{"FCFS Mean Seek Time (ms)", func(m Metrics) float64 { return m.FCFSSeekMS }, f2},
		{"Mean Seek Time (ms)", func(m Metrics) float64 { return m.SeekMS }, f2},
		{"Mean Service Time (ms)", func(m Metrics) float64 { return m.ServiceMS }, f2},
		{"Mean Waiting Time (ms)", func(m Metrics) float64 { return m.WaitMS }, f2},
	}
	for ri, row := range rows {
		cells := []string{row.name}
		for i := range ms {
			cells = append(cells, row.fmt(row.get(ms[i])), row.fmt(papers[i][ri]))
		}
		rep.AddRow(cells...)
	}
	return rep
}

// Policies holds the placement-policy runs behind Tables 7–10, keyed
// [disk][policy].
type Policies struct {
	Runs map[string]map[string]*Run
}

// PolicyNames lists the three placement policies in the paper's order.
var PolicyNames = []string{"organ-pipe", "interleaved", "serial"}

// RunPolicies executes the placement-policy experiments — the system
// file system on each disk under each policy, with rearrangement
// applied every day after a warm-up day — running the six independent
// configurations in parallel on the job runner (o.Jobs workers).
func RunPolicies(ctx context.Context, o Options) (*Policies, error) {
	rs, err := runUnits(ctx, policiesUnits(o), o, runner.Config{Workers: o.Jobs})
	if err != nil {
		return nil, err
	}
	return rs.Policies, nil
}

// paperTable7 holds Table 7's percentages: [disk][policy]{all, reads}.
var paperTable7 = map[string]map[string][2]float64{
	"toshiba": {"organ-pipe": {95, 76}, "interleaved": {87, 62}, "serial": {58, 40}},
	"fujitsu": {"organ-pipe": {90, 78}, "interleaved": {88, 77}, "serial": {76, 65}},
}

// Table7 renders Table 7: percentage reduction in daily mean seek time
// versus FCFS arrival order with no rearrangement, per placement policy.
func Table7(res *Policies) *Report {
	rep := &Report{
		ID:    "table7",
		Title: "Summary of results of placement policy experiments (system file system)",
		Columns: []string{"Disk", "Requests", "Source",
			"Organ-Pipe", "Interleaved", "Serial"},
	}
	for _, d := range []string{"toshiba", "fujitsu"} {
		for _, side := range []struct {
			name string
			sel  Side
			idx  int
		}{{"all", AllRequests, 0}, {"reads", ReadsOnly, 1}} {
			cells := []string{d, side.name, "measured"}
			paperCells := []string{d, side.name, "paper"}
			for _, p := range PolicyNames {
				run := res.Runs[d][p]
				var sum float64
				ons := run.OnDays()
				for _, day := range ons {
					sum += SeekReductionPct(day.Metrics(run.Curve, side.sel))
				}
				if len(ons) > 0 {
					sum /= float64(len(ons))
				}
				cells = append(cells, f0(sum))
				paperCells = append(paperCells, f0(paperTable7[d][p][side.idx]))
			}
			rep.AddRow(cells...)
			rep.AddRow(paperCells...)
		}
	}
	return rep
}

// paperTable89 holds Tables 8 and 9: [disk][policy][all|reads] rows of
// {FCFS dist, dist, zero%, FCFS seek, seek, service, wait}.
var paperTable89 = map[string]map[string]map[string][7]float64{
	"toshiba": {
		"organ-pipe":  {"all": {225, 8, 88, 21.46, 1.55, 22.95, 50.03}, "reads": {165, 23, 67, 16.14, 4.49, 24.18, 5.47}},
		"interleaved": {"all": {208, 15, 83, 20.02, 2.50, 23.71, 46.85}, "reads": {144, 24, 61, 14.39, 5.86, 24.31, 5.14}},
		"serial":      {"all": {208, 22, 26, 20.02, 8.50, 28.53, 61.32}, "reads": {142, 39, 39, 14.23, 8.57, 27.80, 6.32}},
	},
	"fujitsu": {
		"organ-pipe":  {"all": {408, 22, 74, 9.62, 1.10, 13.83, 44.52}, "reads": {311, 35, 59, 7.63, 1.74, 13.03, 3.23}},
		"interleaved": {"all": {400, 26, 77, 9.79, 1.12, 14.35, 51.33}, "reads": {305, 44, 62, 7.78, 1.92, 13.74, 3.25}},
		"serial":      {"all": {440, 26, 35, 10.36, 2.49, 15.47, 46.16}, "reads": {321, 41, 35, 8.02, 2.82, 14.51, 2.73}},
	},
}

// policyDetailTable renders Table 8 (Toshiba) or Table 9 (Fujitsu).
func policyDetailTable(id, title, diskName string, res *Policies) *Report {
	rep := &Report{
		ID:      id,
		Title:   title,
		Columns: []string{"Metric"},
	}
	type col struct {
		policy, side string
		sel          Side
	}
	var cols []col
	for _, p := range PolicyNames {
		cols = append(cols, col{p, "all", AllRequests}, col{p, "reads", ReadsOnly})
	}
	for _, c := range cols {
		rep.Columns = append(rep.Columns, c.policy+"/"+c.side, "(paper)")
	}
	rows := []struct {
		name string
		get  func(Metrics) float64
		fmt  func(float64) string
	}{
		{"FCFS Mean Seek Dist (cyln)", func(m Metrics) float64 { return m.FCFSDist }, f0},
		{"Mean Seek Distance (cyln)", func(m Metrics) float64 { return m.Dist }, f0},
		{"Zero-length Seeks (%)", func(m Metrics) float64 { return m.ZeroSeekPct }, f0},
		{"FCFS Mean Seek Time (ms)", func(m Metrics) float64 { return m.FCFSSeekMS }, f2},
		{"Mean Seek Time (ms)", func(m Metrics) float64 { return m.SeekMS }, f2},
		{"Mean Service Time (ms)", func(m Metrics) float64 { return m.ServiceMS }, f2},
		{"Mean Waiting Time (ms)", func(m Metrics) float64 { return m.WaitMS }, f2},
	}
	for ri, row := range rows {
		cells := []string{row.name}
		for _, c := range cols {
			run := res.Runs[diskName][c.policy]
			_, on := detailDays(run)
			m := on.Metrics(run.Curve, c.sel)
			cells = append(cells, row.fmt(row.get(m)),
				row.fmt(paperTable89[diskName][c.policy][c.side][ri]))
		}
		rep.AddRow(cells...)
	}
	return rep
}

// Table8 renders Table 8: placement policies on the Toshiba disk.
func Table8(res *Policies) *Report {
	return policyDetailTable("table8", "Experiments with placement policies on Toshiba disk", "toshiba", res)
}

// Table9 renders Table 9: placement policies on the Fujitsu disk.
func Table9(res *Policies) *Report {
	return policyDetailTable("table9", "Experiments with placement policies on Fuji disk", "fujitsu", res)
}

// paperTable10 holds Table 10: mean rotational latency + transfer time
// (ms) for reads on the Toshiba disk.
var paperTable10 = map[string]float64{
	"none":        18.58,
	"organ-pipe":  19.42,
	"serial":      19.29,
	"interleaved": 18.47,
}

// Table10 renders Table 10: effects of placement policies on rotational
// delays (Toshiba, read requests). "none" uses the warm-up (off) day of
// the organ-pipe run.
func Table10(res *Policies) *Report {
	rep := &Report{
		ID:      "table10",
		Title:   "Effects of placement policies on rotational delays (Toshiba, reads)",
		Columns: []string{"Placement", "Rot+Transfer (ms)", "Paper (ms)"},
	}
	orgRun := res.Runs["toshiba"]["organ-pipe"]
	off, _ := detailDays(orgRun)
	rep.AddRow("Without Rearrangement",
		f2(off.Metrics(orgRun.Curve, ReadsOnly).RotTransferMS), f2(paperTable10["none"]))
	for _, p := range []string{"organ-pipe", "serial", "interleaved"} {
		run := res.Runs["toshiba"][p]
		_, on := detailDays(run)
		rep.AddRow(p, f2(on.Metrics(run.Curve, ReadsOnly).RotTransferMS), f2(paperTable10[p]))
	}
	rep.AddNote("measured directly from the disk model's rotational and transfer components; the paper infers the same quantity as service - seek time")
	return rep
}

// Table1 renders Table 1: the disk specifications and seek curves —
// model validation rather than an experiment.
func Table1() *Report {
	rep := &Report{
		ID:      "table1",
		Title:   "Specifications of the disks",
		Columns: []string{"Disk", "Capacity (MB)", "Cylinders", "Tracks/Cyl", "Sectors/Track", "RPM", "seek(1) ms", "seek(max) ms"},
	}
	for _, m := range []disk.Model{disk.Toshiba(), disk.Fujitsu()} {
		rep.AddRow(m.Name,
			f0(float64(m.Geom.Capacity()>>20)),
			fmt.Sprint(m.Geom.Cylinders), fmt.Sprint(m.Geom.TracksPerCyl),
			fmt.Sprint(m.Geom.SectorsPerTrack), fmt.Sprint(m.Geom.RPM),
			f2(m.Seek.SeekMS(1)), f2(m.Seek.SeekMS(m.Geom.Cylinders-1)))
	}
	rep.AddNote("paper: Toshiba 135 MB / 815 cyl; Fujitsu 1 GB / 1658 cyl; both 3600 RPM")
	return rep
}

// FullWindowMS is the paper's measured window length (7am–10pm).
const FullWindowMS = workload.DayEndMS - workload.DayStartMS

// registerTables registers the paper's tables with the experiment
// registry.
func registerTables() {
	one := func(r Renderable) []Renderable { return []Renderable{r} }
	Register(Spec{
		ID: "table1", Description: "specifications of the disks (model validation)",
		Report: func(*ResultSet) []Renderable { return one(Table1()) },
	})
	Register(Spec{
		ID: "table2", Description: "on/off summary, system file system",
		Needs:  []Need{NeedSystem},
		Report: func(rs *ResultSet) []Renderable { return one(Table2(rs.System)) },
	})
	Register(Spec{
		ID: "table3", Description: "off day vs on day detail, system file system",
		Needs:  []Need{NeedSystem},
		Report: func(rs *ResultSet) []Renderable { return one(Table3(rs.System)) },
	})
	Register(Spec{
		ID: "table4", Description: "on/off summary, system fs, reads only",
		Needs:  []Need{NeedSystem},
		Report: func(rs *ResultSet) []Renderable { return one(Table4(rs.System)) },
	})
	Register(Spec{
		ID: "table5", Description: "on/off summary, users file system",
		Needs:  []Need{NeedUsers},
		Report: func(rs *ResultSet) []Renderable { return one(Table5(rs.Users)) },
	})
	Register(Spec{
		ID: "table6", Description: "on/off summary, users fs, reads only",
		Needs:  []Need{NeedUsers},
		Report: func(rs *ResultSet) []Renderable { return one(Table6(rs.Users)) },
	})
	Register(Spec{
		ID: "table7", Description: "seek-time reduction per placement policy",
		Needs:  []Need{NeedPolicies},
		Report: func(rs *ResultSet) []Renderable { return one(Table7(rs.Policies)) },
	})
	Register(Spec{
		ID: "table8", Description: "placement policies on the Toshiba disk",
		Needs:  []Need{NeedPolicies},
		Report: func(rs *ResultSet) []Renderable { return one(Table8(rs.Policies)) },
	})
	Register(Spec{
		ID: "table9", Description: "placement policies on the Fujitsu disk",
		Needs:  []Need{NeedPolicies},
		Report: func(rs *ResultSet) []Renderable { return one(Table9(rs.Policies)) },
	})
	Register(Spec{
		ID: "table10", Description: "placement policies vs rotational delays",
		Needs:  []Need{NeedPolicies},
		Report: func(rs *ResultSet) []Renderable { return one(Table10(rs.Policies)) },
	})
}
