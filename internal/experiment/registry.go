package experiment

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/runner"
)

// Renderable is anything an experiment emits: a *Report table or a
// plot.Chart.
type Renderable interface{ Render() string }

// Spec is one registered experiment id: what it needs simulated and how
// it reports from the assembled results. Group ids ("all",
// "onoff-system", ...) are specs too — they union their members' needs
// and concatenate their members' reports.
type Spec struct {
	// ID is the experiment identifier ("table2", "fig8", "all", ...).
	ID string
	// Description is the one-line summary shown by abrsim -h.
	Description string
	// Needs lists the simulation products the report consumes. The
	// harness gathers the union of needs across requested specs, so
	// shared products are simulated once.
	Needs []Need
	// Report renders the experiment from the gathered results. It must
	// be pure: same ResultSet, same output.
	Report func(rs *ResultSet) []Renderable
}

var (
	specOrder []string
	specByID  = map[string]Spec{}
)

// Register adds a spec to the registry. Experiments register themselves
// at package initialisation; registering a duplicate or malformed spec
// is a programming error and panics.
func Register(s Spec) {
	if s.ID == "" || s.Report == nil {
		panic("experiment: Register: spec needs an ID and a Report")
	}
	if _, dup := specByID[s.ID]; dup {
		panic("experiment: Register: duplicate id " + s.ID)
	}
	specByID[s.ID] = s
	specOrder = append(specOrder, s.ID)
}

// Lookup returns the spec registered under id.
func Lookup(id string) (Spec, bool) {
	s, ok := specByID[id]
	return s, ok
}

// Specs returns all registered specs in registration order: the paper's
// tables, then figures, then the extensions and groups.
func Specs() []Spec {
	out := make([]Spec, len(specOrder))
	for i, id := range specOrder {
		out[i] = specByID[id]
	}
	return out
}

// IDs returns all registered ids in registration order.
func IDs() []string { return append([]string(nil), specOrder...) }

// RunSpec executes one registered experiment end to end: it gathers the
// spec's needs on the parallel runner and returns the rendered reports.
// An unknown id fails with the list of valid ids.
func RunSpec(ctx context.Context, id string, o Options, cfg runner.Config) ([]Renderable, error) {
	reports, _, err := RunSpecFull(ctx, id, o, cfg)
	return reports, err
}

// RunSpecFull is RunSpec, additionally returning the gathered
// ResultSet so callers can reach the per-job telemetry collectors and
// runner metrics alongside the rendered reports.
func RunSpecFull(ctx context.Context, id string, o Options, cfg runner.Config) ([]Renderable, *ResultSet, error) {
	s, ok := Lookup(id)
	if !ok {
		return nil, nil, fmt.Errorf("unknown experiment %q (valid: %s)", id, strings.Join(IDs(), ", "))
	}
	rs, err := Gather(ctx, s.Needs, o, cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.Report(rs), rs, nil
}

// reportsFor concatenates the output of other registered ids, in the
// order given — the body of every group spec.
func reportsFor(rs *ResultSet, ids ...string) []Renderable {
	var out []Renderable
	for _, id := range ids {
		s, ok := specByID[id]
		if !ok {
			panic("experiment: group references unregistered id " + id)
		}
		out = append(out, s.Report(rs)...)
	}
	return out
}

// needsFor unions the needs of registered ids into canonical order.
func needsFor(ids ...string) []Need {
	seen := map[Need]bool{}
	for _, id := range ids {
		s, ok := specByID[id]
		if !ok {
			panic("experiment: group references unregistered id " + id)
		}
		for _, n := range s.Needs {
			seen[n] = true
		}
	}
	var out []Need
	for n := range seen {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// group builds a spec that runs the listed member ids together. The
// members must already be registered.
func group(id, desc string, members ...string) Spec {
	return Spec{
		ID:          id,
		Description: desc,
		Needs:       needsFor(members...),
		Report: func(rs *ResultSet) []Renderable {
			return reportsFor(rs, members...)
		},
	}
}

// init wires the whole registry up in display order: each experiment
// family registers its own specs, then the groups that compose them.
func init() {
	registerTables()
	registerFigures()
	registerShared()
	registerFaults()
	registerVolume()
	registerTenants()
	registerRAID()
	registerTraceReplay()
	registerGroups()
}

// registerGroups registers the composite ids. "all" reproduces the
// paper's full sequence (Tables 1–10, Figures 4–8); the on/off, policy,
// and sweep groups slice it by experiment family.
func registerGroups() {
	Register(group("onoff-system",
		"on/off experiment, system file system (Tables 2-4, Figures 4-5)",
		"table2", "table3", "table4", "fig4", "fig5"))
	Register(group("onoff-users",
		"on/off experiment, users file system (Tables 5-6, Figures 6-7)",
		"table5", "table6", "fig6", "fig7"))
	Register(group("policies",
		"placement policy experiments (Tables 7-10)",
		"table7", "table8", "table9", "table10"))
	Register(group("sweep",
		"block-count sweep (Figure 8)",
		"fig8"))
	Register(group("all",
		"every table and figure of the paper",
		"table1", "table2", "table3", "table4", "fig4", "fig5",
		"table5", "table6", "fig6", "fig7",
		"table7", "table8", "table9", "table10", "fig8"))
}
