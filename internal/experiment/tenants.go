package experiment

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/volume"
	"repro/internal/workload"
)

// This file registers the tenant-scale extension: the multi-tenant
// server front end (internal/server) driven by the open-loop
// heavy-tailed tenant workload over a single disk or a mirror. The
// matrix sweeps the tenant population 1k→1M, contrasts QoS admission on
// and off under a noisy neighbor, and kills a mirror member mid-run to
// exercise the circuit breaker. There is no file system in this stack:
// tenants issue block-level requests, the way a disaggregated-storage
// front end sees them.

// TenantSetup describes one tenant-scale run.
type TenantSetup struct {
	// Config is the short row label ("tenants-100k", "noisy-qos", ...).
	Config string
	// Tenants is the tenant population.
	Tenants int
	// Layout and Disks configure the backend volume; zeros select a
	// single-disk concat.
	Layout volume.Layout
	Disks  int
	// QoSOff disables per-tenant token buckets.
	QoSOff bool
	// Noisy floods from tenant 2 (class bronze) at NoisyRate req/s.
	Noisy     bool
	NoisyRate float64
	// Faults lists per-member fault plans (volume.Options.Faults).
	Faults []*fault.Plan
	// DurationMS is the traffic window; zero selects one simulated
	// hour. RatePerSec is the aggregate arrival rate; zero selects 20.
	DurationMS float64
	RatePerSec float64
	// ReadFrac overrides the read fraction (zero = workload default).
	ReadFrac float64
	// NetLatencyMS and NetBandwidthMBps override the link model
	// (zeros = server defaults: 0.2 ms, 100 MB/s).
	NetLatencyMS     float64
	NetBandwidthMBps float64
	// Seed, Shards as in VolumeSetup.
	Seed   uint64
	Shards int
}

func (s TenantSetup) withDefaults() TenantSetup {
	if s.Tenants <= 0 {
		s.Tenants = 10_000
	}
	if s.Layout == "" {
		s.Layout = volume.Concat
	}
	if s.Disks <= 0 {
		s.Disks = 1
	}
	if s.NoisyRate <= 0 {
		s.NoisyRate = 200
	}
	if s.DurationMS <= 0 {
		s.DurationMS = workload.HourMS
	}
	if s.RatePerSec <= 0 {
		s.RatePerSec = 20
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Config == "" {
		s.Config = fmt.Sprintf("tenants-%d", s.Tenants)
	}
	return s
}

// TenantPoint is the outcome of one tenant-scale run.
type TenantPoint struct {
	// Config through Noisy echo the setup.
	Config  string
	Tenants int
	Layout  string
	Disks   int
	QoS     bool
	Noisy   bool
	// Issued and Failed are the client's view: requests put on the
	// wire and responses carrying any error.
	Issued int64
	Failed int64
	// Server holds the server's lifetime counters; Breaker its
	// transition counts; Classes the per-class outcome summaries.
	Server  server.Counters
	Breaker server.BreakerCounts
	Classes []server.ClassStat
	// Degraded and DeadMembers are the backend volume's view.
	Degraded    int64
	DeadMembers int
}

// ExecuteTenants runs one tenant-scale configuration to completion.
// Like ExecuteVolume it builds a fully self-contained stack per call.
func ExecuteTenants(ctx context.Context, s TenantSetup) (*TenantPoint, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s = s.withDefaults()
	col := telemetry.FromContext(ctx)
	v, err := volume.New(volume.Options{
		Ctx:    ctx,
		Layout: s.Layout,
		Disks:  s.Disks,
		// Members carry the usual reserved region so their geometry
		// matches the volume experiments, though nothing rearranges here.
		ReservedCyls: 48,
		Faults:       s.Faults,
		Telemetry:    col,
		Shards:       s.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer v.Close()
	v.Run() // member formatting completes before any traffic
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	srv, err := server.New(v.Eng, v, server.Config{
		Tenants: s.Tenants,
		Net:     server.LinkConfig{LatencyMS: s.NetLatencyMS, BandwidthMBps: s.NetBandwidthMBps},
		QoSOff:  s.QoSOff,
	})
	if err != nil {
		return nil, err
	}
	w, err := workload.NewTenants(v.Eng, srv, v.Blocks(), workload.TenantConfig{
		Tenants:         s.Tenants,
		Classes:         3,
		RatePerSec:      s.RatePerSec,
		ReadFrac:        s.ReadFrac,
		Noisy:           s.Noisy,
		NoisyTenant:     2, // class bronze: the victims' classes stay clean
		NoisyRatePerSec: s.NoisyRate,
		Seed:            s.Seed,
	})
	if err != nil {
		return nil, err
	}

	if col != nil && col.SamplePeriodMS() > 0 {
		registerTenantProbes(col, v, srv)
		col.StartSampler(v.Eng)
	}
	// Server and volume metrics live on the fan-in side; each member
	// driver gets a private registry labeled with its disk index, merged
	// in member order at the end — the volume experiments' shape.
	var memberRegs []*metrics.Registry
	if col != nil && col.MetricsEnabled() {
		reg := col.Metrics()
		srv.BindMetrics(reg)
		v.BindMetrics(reg)
		for i, m := range v.Members {
			mreg := metrics.NewRegistry()
			m.Driver.BindMetrics(mreg, metrics.Label{Key: "disk", Value: strconv.Itoa(i)})
			memberRegs = append(memberRegs, mreg)
		}
	}

	// Traffic starts at the paper's day start — long after formatting —
	// purely so every configuration shares one well-known clock origin.
	start := workload.DayStartMS
	end := start + s.DurationMS
	if err := awaitVolume(v, "tenant traffic", end+60_000, func(done func(error)) {
		w.Run(start, end, done)
	}); err != nil {
		return nil, err
	}

	vst := v.Stats()
	pt := &TenantPoint{
		Config:      s.Config,
		Tenants:     s.Tenants,
		Layout:      string(s.Layout),
		Disks:       s.Disks,
		QoS:         !s.QoSOff,
		Noisy:       s.Noisy,
		Issued:      w.Issued(),
		Failed:      w.Failed(),
		Server:      srv.Counters(),
		Breaker:     srv.Breaker().Counts(),
		Classes:     srv.ClassStats(),
		Degraded:    vst.Degraded,
		DeadMembers: v.DeadMembers(),
	}
	if col != nil {
		col.SetEngineEvents(v.Dispatched())
	}
	for i, mreg := range memberRegs {
		if err := col.Metrics().Merge(mreg); err != nil {
			return nil, fmt.Errorf("experiment: merging member %d metrics: %w", i, err)
		}
	}
	return pt, nil
}

// registerTenantProbes registers the sampler columns of the server
// stack: accept-queue state, breaker position, and shed counts.
func registerTenantProbes(col *telemetry.Collector, v *volume.Volume, srv *server.Server) {
	col.AddProbe("accept_queue", func() float64 { return float64(srv.QueueLen()) })
	col.AddProbe("inflight", func() float64 { return float64(srv.InFlight()) })
	col.AddProbe("breaker_state", func() float64 { return float64(srv.Breaker().State(v.Now())) })
	col.AddProbe("throttled", func() float64 { return float64(srv.Counters().Throttled) })
	col.AddProbe("shed", func() float64 {
		c := srv.Counters()
		return float64(c.Overloaded + c.BreakerRejects)
	})
	col.AddProbe("deadline_miss", func() float64 {
		c := srv.Counters()
		return float64(c.DeadlineMiss + c.Expired)
	})
	for i, m := range v.Members {
		drv := m.Driver
		col.AddProbe(fmt.Sprintf("disk%d_qd", i), func() float64 {
			return float64(drv.QueueLen())
		})
	}
}

// tenantConfigs is the tenant-scale matrix: the population sweep, the
// noisy-neighbor pair, and the mirror-member-death breaker scenario.
// Options.Tenants collapses the sweep to one population (abrsim
// -tenants) and resizes the other rows; -net-lat/-net-bw/-qos override
// every row's link and admission settings.
func tenantConfigs(o Options) []TenantSetup {
	finish := func(s TenantSetup) TenantSetup {
		if o.Tenants > 0 {
			s.Tenants = o.Tenants
		}
		s.NetLatencyMS = o.NetLatencyMS
		s.NetBandwidthMBps = o.NetBandwidthMBps
		switch o.QoS {
		case "on":
			s.QoSOff = false
		case "off":
			s.QoSOff = true
		}
		if o.WindowMS > 0 {
			s.DurationMS = o.WindowMS
		}
		s.Seed = o.Seed
		s.Shards = o.Shards
		// Resolve defaults here too so the runner job names carry the
		// final row labels.
		return s.withDefaults()
	}
	var out []TenantSetup
	counts := []int{1_000, 10_000, 100_000, 1_000_000}
	if o.Tenants > 0 {
		counts = counts[:1] // finish pins the population anyway
	}
	for _, n := range counts {
		out = append(out, finish(TenantSetup{Tenants: n}))
	}
	noisy := TenantSetup{Config: "noisy-qos", Tenants: 10_000, Noisy: true}
	out = append(out, finish(noisy))
	open := noisy
	open.Config, open.QoSOff = "noisy-open", true
	s := finish(open)
	if o.QoS != "on" {
		s.QoSOff = true // -qos=off must not collapse the pair's contrast
	}
	out = append(out, s)
	// The breaker scenario: a two-member mirror loses member 1 early in
	// the run. The arrival rate is set above a single member's service
	// capacity, so after the death the survivor's queue grows without
	// bound, deadlines start missing, and the breaker cycles
	// open/half-open/closed while admission sheds the excess.
	death := TenantSetup{
		Config: "mirror-death", Tenants: 100_000,
		Layout: volume.Mirror, Disks: 2,
		RatePerSec: 60, ReadFrac: 0.9,
		Faults: []*fault.Plan{nil, {Seed: 7, CrashAfterOps: 2000}},
	}
	out = append(out, finish(death))
	return out
}

// tenantUnits decomposes the matrix into one independent run per
// configuration.
func tenantUnits(o Options) []unit {
	var units []unit
	for _, s := range tenantConfigs(o) {
		s := s
		units = append(units, unit{
			job: runner.Job{
				Name:  "tenants/" + s.Config,
				Units: s.DurationMS / workload.DayMS,
				Run: func(ctx context.Context) (any, error) {
					pt, err := ExecuteTenants(ctx, s)
					if err != nil {
						return nil, fmt.Errorf("experiment: tenants %s: %w", s.Config, err)
					}
					return pt, nil
				},
			},
			apply: func(rs *ResultSet, v any) {
				rs.Tenants = append(rs.Tenants, *v.(*TenantPoint))
			},
		})
	}
	return units
}

// TenantReport renders the tenant-scale matrix: the per-configuration
// summary, then the per-class breakdown whose p99/p999 columns are the
// experiment's QoS evidence.
func TenantReport(points []TenantPoint) []Renderable {
	rep := &Report{
		ID:      "tenant-scale",
		Title:   "Extension: multi-tenant server front end (open-loop tenants over a simulated network)",
		Columns: []string{"Config", "Tenants", "Backend", "QoS", "Issued", "OK", "Thr", "Shed", "Exp", "Miss", "Retry", "Brk o/h/c", "Degr", "Dead"},
	}
	var nQoS, nOpen TenantPoint
	for _, p := range points {
		qos := "on"
		if !p.QoS {
			qos = "off"
		}
		backend := p.Layout
		if p.Layout != string(volume.Mirror) {
			backend = fmt.Sprintf("%s-%d", p.Layout, p.Disks)
		}
		c := p.Server
		rep.AddRow(p.Config, fmt.Sprintf("%d", p.Tenants), backend, qos,
			fmt.Sprintf("%d", p.Issued), fmt.Sprintf("%d", c.Completed),
			fmt.Sprintf("%d", c.Throttled), fmt.Sprintf("%d", c.Overloaded+c.BreakerRejects),
			fmt.Sprintf("%d", c.Expired), fmt.Sprintf("%d", c.DeadlineMiss),
			fmt.Sprintf("%d", c.Retries),
			fmt.Sprintf("%d/%d/%d", p.Breaker.Opened, p.Breaker.HalfOpened, p.Breaker.Closed),
			fmt.Sprintf("%d", p.Degraded), fmt.Sprintf("%d", p.DeadMembers))
		switch p.Config {
		case "noisy-qos":
			nQoS = p
		case "noisy-open":
			nOpen = p
		}
		if p.Breaker.Opened > 0 {
			rep.AddNote("%s: breaker opened %d time(s), half-opened %d, closed %d while %d member(s) died",
				p.Config, p.Breaker.Opened, p.Breaker.HalfOpened, p.Breaker.Closed, p.DeadMembers)
		}
	}
	if g, o := classByName(nQoS.Classes, "gold"), classByName(nOpen.Classes, "gold"); g.Submitted > 0 && o.Submitted > 0 {
		rep.AddNote("noisy neighbor: with QoS the flooding tenant is throttled and gold p99 is %.1f ms; without it gold p99 is %.1f ms",
			g.P99, o.P99)
	}
	rep.AddNote("open-loop arrivals: load does not slow down when the server queues, so overload shows up as shed/expired requests, not longer think times")

	cls := &Report{
		ID:      "tenant-scale",
		Title:   "Per-class outcomes (end-to-end latency over answered admitted requests)",
		Columns: []string{"Config", "Class", "Submitted", "Throttled", "OK", "p50 (ms)", "p99 (ms)", "p999 (ms)"},
	}
	for _, p := range points {
		for _, st := range p.Classes {
			cls.AddRow(p.Config, st.Name, fmt.Sprintf("%d", st.Submitted),
				fmt.Sprintf("%d", st.Throttled), fmt.Sprintf("%d", st.Completed),
				f2(st.P50), f2(st.P99), f2(st.P999))
		}
	}
	return []Renderable{rep, cls}
}

// classByName finds a class summary by name (zero value if absent).
func classByName(stats []server.ClassStat, name string) server.ClassStat {
	for _, st := range stats {
		if st.Name == name {
			return st
		}
	}
	return server.ClassStat{}
}

// registerTenants registers the tenant-scale extension experiment.
func registerTenants() {
	Register(Spec{
		ID: "tenant-scale", Description: "extension: multi-tenant server front end — QoS, admission control, circuit breaker",
		Needs: []Need{NeedTenants},
		Report: func(rs *ResultSet) []Renderable {
			return TenantReport(rs.Tenants)
		},
	})
}
