package experiment

import (
	"context"
	"fmt"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

// Need identifies one shared simulation product that registered
// experiments consume. Several experiments share one product (Tables
// 2–4 and Figures 4–5 all read the system-fs on/off runs), so the
// harness unions the needs of the requested experiments, simulates each
// product's independent units once on the parallel runner, and hands
// every report the same assembled ResultSet.
type Need int

const (
	// NeedSystem is the on/off experiment on the system file system
	// (one run per disk).
	NeedSystem Need = iota
	// NeedUsers is the on/off experiment on the users file system.
	NeedUsers
	// NeedPolicies is the placement-policy matrix (3 policies × 2 disks).
	NeedPolicies
	// NeedSweep is the Figure 8 block-count sweep.
	NeedSweep
	// NeedShared is the shared-disk extension (one combined run).
	NeedShared
	// NeedFaults is the fault-injection sweep: one run per transient
	// fault rate, measuring response-time degradation.
	NeedFaults
	// NeedCrash is the crash-recovery scenario battery on the
	// crashcheck harness.
	NeedCrash
	// NeedVolume is the multi-disk volume scale-out matrix: one run per
	// volume configuration (disk count, stripe unit, mirror policy,
	// rearrangement, degraded mirror).
	NeedVolume
	// NeedTenants is the multi-tenant server front-end matrix: one run
	// per tenant-scale configuration (population sweep, noisy-neighbor
	// QoS pair, mirror-member-death breaker scenario).
	NeedTenants
	// NeedRAID is the parity-layout matrix: one run per RAID-5/6
	// configuration (healthy, degraded, hot-spare rebuild, latent-error
	// scrub, double fault).
	NeedRAID
	// NeedTrace is the trace-replay matrix: one run per replay
	// configuration (open/closed loop, scale factor, rearrangement
	// off/on).
	NeedTrace
	needCount
)

// String names the need for errors and job labels.
func (n Need) String() string {
	switch n {
	case NeedSystem:
		return "onoff-system"
	case NeedUsers:
		return "onoff-users"
	case NeedPolicies:
		return "policies"
	case NeedSweep:
		return "sweep"
	case NeedShared:
		return "shared"
	case NeedFaults:
		return "faults"
	case NeedCrash:
		return "crash"
	case NeedVolume:
		return "volume"
	case NeedTenants:
		return "tenants"
	case NeedRAID:
		return "raid"
	case NeedTrace:
		return "trace"
	}
	return fmt.Sprintf("need(%d)", int(n))
}

// ResultSet holds the assembled simulation products the registered
// experiments report from. Only the fields for gathered needs are
// populated.
type ResultSet struct {
	System   *OnOff
	Users    *OnOff
	Policies *Policies
	Sweep    []SweepPoint
	Shared   *SharedResult
	Faults   []FaultPoint
	Crash    []CrashPoint
	Volume   []VolumePoint
	Tenants  []TenantPoint
	RAID     []VolumePoint
	Trace    []TracePoint

	// Collectors holds each simulation job's telemetry collector in
	// job order when Options.Telemetry was set; nil otherwise.
	// Concatenating their buffers in this order (telemetry.WriteTrace,
	// telemetry.WriteCSV) yields byte-identical output for any worker
	// count.
	Collectors []*telemetry.Collector
	// Metrics holds the runner's per-job measurements (name,
	// wall-clock, units) in job order.
	Metrics []runner.Metric
}

// unit pairs one independent simulation job with the step that installs
// its result into a ResultSet. Apply steps run sequentially in job
// order after every job has finished, so assembly is single-threaded
// and the set's contents cannot depend on the pool's scheduling.
type unit struct {
	job   runner.Job
	apply func(rs *ResultSet, v any)
}

// onOffUnits decomposes one file system's on/off experiment into its
// two independent per-disk runs. The paper ran 10 days (5 on, 5 off)
// for the system file system, and 12 (Toshiba) / 10 (Fujitsu) days for
// the users file system.
func onOffUnits(fsname string, o Options) []unit {
	daysTosh, daysFuji := 10, 10
	if fsname == "users" {
		daysTosh = 12
	}
	mk := func(diskName string, days int) unit {
		s := Setup{
			DiskName: diskName, FSName: fsname,
			Days: o.days(days), WindowMS: o.WindowMS, Seed: o.Seed,
			Fault: o.Fault, Shards: o.Shards,
		}
		return unit{
			job: runner.Job{
				Name:  "onoff/" + fsname + "/" + diskName,
				Units: float64(s.Days),
				Run:   func(ctx context.Context) (any, error) { return Execute(ctx, s) },
			},
			apply: func(rs *ResultSet, v any) {
				res := ensureOnOff(rs, fsname)
				if diskName == "toshiba" {
					res.Toshiba = v.(*Run)
				} else {
					res.Fujitsu = v.(*Run)
				}
			},
		}
	}
	return []unit{mk("toshiba", daysTosh), mk("fujitsu", daysFuji)}
}

func ensureOnOff(rs *ResultSet, fsname string) *OnOff {
	slot := &rs.System
	if fsname == "users" {
		slot = &rs.Users
	}
	if *slot == nil {
		*slot = &OnOff{FSName: fsname}
	}
	return *slot
}

// policiesUnits decomposes the placement-policy experiments into their
// six independent runs (system file system, each disk × each policy,
// rearrangement applied every day after a warm-up day).
func policiesUnits(o Options) []unit {
	var units []unit
	for _, d := range []string{"toshiba", "fujitsu"} {
		for _, p := range PolicyNames {
			d, p := d, p
			s := Setup{
				DiskName: d, FSName: "system", Policy: p,
				Days:      o.days(4),
				OnPattern: func(day int) bool { return day > 0 },
				WindowMS:  o.WindowMS, Seed: o.Seed,
				Fault: o.Fault, Shards: o.Shards,
			}
			units = append(units, unit{
				job: runner.Job{
					Name:  "policies/" + d + "/" + p,
					Units: float64(s.Days),
					Run: func(ctx context.Context) (any, error) {
						run, err := Execute(ctx, s)
						if err != nil {
							return nil, fmt.Errorf("experiment: policies %s/%s: %w", d, p, err)
						}
						return run, nil
					},
				},
				apply: func(rs *ResultSet, v any) {
					if rs.Policies == nil {
						rs.Policies = &Policies{Runs: make(map[string]map[string]*Run)}
					}
					if rs.Policies.Runs[d] == nil {
						rs.Policies.Runs[d] = make(map[string]*Run)
					}
					rs.Policies.Runs[d][p] = v.(*Run)
				},
			})
		}
	}
	return units
}

// sweepUnits decomposes the Figure 8 sweep into one independent run per
// block count. Each job computes its SweepPoint; apply steps append in
// job order, so the sweep comes out sorted as given.
func sweepUnits(o Options, counts []int) []unit {
	if len(counts) == 0 {
		counts = DefaultSweepBlocks
	}
	var units []unit
	for _, n := range counts {
		n := n
		s := Setup{
			DiskName: "toshiba", FSName: "system",
			Blocks:    n,
			Days:      o.days(2),
			OnPattern: func(day int) bool { return day > 0 },
			WindowMS:  o.WindowMS, Seed: o.Seed,
			Fault: o.Fault, Shards: o.Shards,
		}
		units = append(units, unit{
			job: runner.Job{
				Name:  fmt.Sprintf("sweep/%d", n),
				Units: float64(s.Days),
				Run: func(ctx context.Context) (any, error) {
					run, err := Execute(ctx, s)
					if err != nil {
						return nil, fmt.Errorf("experiment: sweep n=%d: %w", n, err)
					}
					_, on := detailDays(run)
					all := on.Metrics(run.Curve, AllRequests)
					reads := on.Metrics(run.Curve, ReadsOnly)
					return SweepPoint{
						Blocks:         n,
						DistRedPct:     DistReductionPct(all),
						TimeRedPct:     SeekReductionPct(all),
						ReadDistRedPct: DistReductionPct(reads),
						ReadTimeRedPct: SeekReductionPct(reads),
					}, nil
				},
			},
			apply: func(rs *ResultSet, v any) {
				rs.Sweep = append(rs.Sweep, v.(SweepPoint))
			},
		})
	}
	return units
}

// sharedUnit wraps the shared-disk extension. Its two workloads drive
// one rig and one engine, so it is a single job.
func sharedUnit(o Options) unit {
	return unit{
		job: runner.Job{
			Name:  "shared",
			Units: float64(o.days(4)),
			Run:   func(ctx context.Context) (any, error) { return RunShared(ctx, o) },
		},
		apply: func(rs *ResultSet, v any) { rs.Shared = v.(*SharedResult) },
	}
}

// needUnits expands one need into its independent simulation units.
func needUnits(n Need, o Options) []unit {
	switch n {
	case NeedSystem:
		return onOffUnits("system", o)
	case NeedUsers:
		return onOffUnits("users", o)
	case NeedPolicies:
		return policiesUnits(o)
	case NeedSweep:
		return sweepUnits(o, nil)
	case NeedShared:
		return []unit{sharedUnit(o)}
	case NeedFaults:
		return faultUnits(o)
	case NeedCrash:
		return crashUnits()
	case NeedVolume:
		return volumeUnits(o)
	case NeedTenants:
		return tenantUnits(o)
	case NeedRAID:
		return raidUnits(o)
	case NeedTrace:
		return traceUnits(o)
	}
	panic(fmt.Sprintf("experiment: unknown need %d", int(n)))
}

// Gather simulates the given needs on the parallel runner and assembles
// the results. Needs are deduplicated and expanded in canonical order,
// and results are installed in job order, so the assembled set — and
// everything rendered from it — is identical for any worker count.
func Gather(ctx context.Context, needs []Need, o Options, cfg runner.Config) (*ResultSet, error) {
	requested := make([]bool, needCount)
	for _, n := range needs {
		if n < 0 || n >= needCount {
			return nil, fmt.Errorf("experiment: unknown need %d", int(n))
		}
		requested[n] = true
	}
	var units []unit
	for n := Need(0); n < needCount; n++ {
		if requested[n] {
			units = append(units, needUnits(n, o)...)
		}
	}
	return runUnits(ctx, units, o, cfg)
}

// runUnits runs units' jobs on the pool and applies results in order.
// When telemetry is requested, each job gets a private collector,
// injected through the job's context so simulation code can pick it up
// with telemetry.FromContext; collectors are assembled in job order.
func runUnits(ctx context.Context, units []unit, o Options, cfg runner.Config) (*ResultSet, error) {
	jobs := make([]runner.Job, len(units))
	var cols []*telemetry.Collector
	if o.Telemetry != nil {
		cols = make([]*telemetry.Collector, len(units))
	}
	for i, u := range units {
		jobs[i] = u.job
		if o.Telemetry != nil {
			col := telemetry.NewCollector(u.job.Name, *o.Telemetry)
			cols[i] = col
			inner := u.job.Run
			jobs[i].Run = func(ctx context.Context) (any, error) {
				return inner(telemetry.NewContext(ctx, col))
			}
		}
	}
	results, metrics, err := runner.RunWithMetrics(ctx, jobs, cfg)
	if err != nil {
		return nil, err
	}
	rs := &ResultSet{Collectors: cols, Metrics: metrics}
	for i, u := range units {
		u.apply(rs, results[i])
	}
	return rs, nil
}
