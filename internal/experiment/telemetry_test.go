package experiment

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/runner"
	"repro/internal/telemetry"
)

// TestTelemetryParallelDeterminism is the determinism contract for the
// observability layer: the concatenated trace and time-series output of
// a telemetry-enabled gather must be byte-identical for 1 and 8
// workers. It deliberately runs even under -short so the CI race step
// exercises concurrent per-job collectors.
func TestTelemetryParallelDeterminism(t *testing.T) {
	gather := func(workers int) (trace, csv []byte) {
		o := Options{
			Days:     1,
			WindowMS: 5 * 60 * 1000,
			Telemetry: &telemetry.Options{
				Spans:          true,
				SamplePeriodMS: 60 * 1000,
			},
		}
		rs, err := Gather(context.Background(),
			[]Need{NeedSystem, NeedShared}, o, runner.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var tb, cb bytes.Buffer
		if err := telemetry.WriteTrace(&tb, rs.Collectors); err != nil {
			t.Fatal(err)
		}
		if err := telemetry.WriteCSV(&cb, rs.Collectors); err != nil {
			t.Fatal(err)
		}
		if len(rs.Metrics) != len(rs.Collectors) {
			t.Fatalf("%d metrics for %d collectors", len(rs.Metrics), len(rs.Collectors))
		}
		for i, c := range rs.Collectors {
			if c.Events() == 0 {
				t.Errorf("job %d (%s): no events captured", i, c.Name())
			}
			if c.EngineEvents() == 0 {
				t.Errorf("job %d (%s): no engine event count", i, c.Name())
			}
			if rs.Metrics[i].Wall <= 0 || rs.Metrics[i].Failed {
				t.Errorf("job %d (%s): bad metric %+v", i, c.Name(), rs.Metrics[i])
			}
		}
		return tb.Bytes(), cb.Bytes()
	}

	seqTrace, seqCSV := gather(1)
	parTrace, parCSV := gather(8)
	if len(seqTrace) == 0 || len(seqCSV) == 0 {
		t.Fatalf("empty telemetry output: %d trace bytes, %d csv bytes", len(seqTrace), len(seqCSV))
	}
	if !bytes.Equal(seqTrace, parTrace) {
		t.Errorf("trace differs between 1 and 8 workers (%d vs %d bytes)", len(seqTrace), len(parTrace))
	}
	if !bytes.Equal(seqCSV, parCSV) {
		t.Errorf("time series differs between 1 and 8 workers (%d vs %d bytes)", len(seqCSV), len(parCSV))
	}
}

// Telemetry off must leave the result set's collectors nil and record
// nothing — the zero-overhead default path.
func TestTelemetryOffByDefault(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation run in -short mode")
	}
	rs, err := Gather(context.Background(), []Need{NeedShared},
		Options{Days: 1, WindowMS: 5 * 60 * 1000}, runner.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Collectors != nil {
		t.Errorf("collectors allocated without Options.Telemetry")
	}
	if len(rs.Metrics) != 1 || rs.Metrics[0].Wall <= 0 {
		t.Errorf("harness metrics missing: %+v", rs.Metrics)
	}
}
