package experiment

import (
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/rig"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

// This file wires the telemetry sampler's standard probe set into an
// experiment's model stack. Probes are registered in a fixed order —
// the CSV column order — and read only deterministic model state, so
// the time series is byte-identical for any worker count.

// registerStackProbes registers the probes shared by every experiment:
// driver queue state, lifetime request counters, block-table occupancy,
// rearrangement I/O, cumulative head travel, and scheduler queue
// pressure.
func registerStackProbes(col *telemetry.Collector, r *rig.Rig, sc *sched.Counting) {
	drv := r.Driver
	dsk := r.Disk
	col.AddProbe("queue_depth", func() float64 { return float64(drv.QueueLen()) })
	col.AddProbe("outstanding", func() float64 { return float64(drv.Outstanding()) })
	col.AddProbe("completed", func() float64 { return float64(drv.Counters().Requests) })
	col.AddProbe("redirected", func() float64 { return float64(drv.Counters().Redirected) })
	col.AddProbe("rearrange_io", func() float64 { return float64(drv.Counters().InternalIO) })
	col.AddProbe("bt_len", func() float64 { return float64(drv.BlockTableLen()) })
	col.AddProbe("seek_cyls", func() float64 { return float64(dsk.SeekCylinders()) })
	if sc != nil {
		col.AddProbe("sched_mean_qlen", sc.MeanQueue)
	}
}

// registerCacheProbes registers hit-rate probes for one buffer cache
// under the given column prefix ("cache", "meta", "sys_cache", ...).
func registerCacheProbes(col *telemetry.Collector, prefix string, c *cache.Cache) {
	col.AddProbe(prefix+"_hit_rate", func() float64 {
		hits, misses, _ := c.Stats()
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	})
}

// registerFaultProbes registers fault-tolerance counters as sampler
// columns: injected faults, transient retries, bad-block remaps, and
// unrecovered failures. It is a no-op on a rig without a fault injector,
// so fault-free runs keep their exact column set (and golden output).
func registerFaultProbes(col *telemetry.Collector, r *rig.Rig) {
	if r.Faults == nil {
		return
	}
	drv := r.Driver
	col.AddProbe("faults", func() float64 { return float64(drv.Counters().Faults) })
	col.AddProbe("retries", func() float64 { return float64(drv.Counters().Retries) })
	col.AddProbe("remaps", func() float64 { return float64(drv.Counters().Remaps) })
	col.AddProbe("unrecovered", func() float64 { return float64(drv.Counters().Unrecovered) })
}

// registerRearrangerProbes registers hot-list probes: how many blocks
// the analyzer tracks and how much the hot set churned since the last
// sample — the paper's Figure 5 convergence signal at sampler
// resolution.
func registerRearrangerProbes(col *telemetry.Collector, rear *core.Rearranger) {
	col.AddProbe("hot_tracked", func() float64 { return float64(rear.Counter().Len()) })
	// Churn compares the current top-64 hot blocks against the
	// previous sample's; the closure keeps the prior set.
	const topK = 64
	prev := map[int64]bool{}
	col.AddProbe("hot_churn", func() float64 {
		top := rear.Counter().Top(topK)
		next := make(map[int64]bool, len(top))
		churn := 0
		for _, bc := range top {
			next[bc.Block] = true
			if !prev[bc.Block] {
				churn++
			}
		}
		prev = next
		return float64(churn)
	})
}
