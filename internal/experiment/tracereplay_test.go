package experiment

import (
	"context"
	"testing"

	"repro/internal/runner"
	"repro/internal/tracein"
	"repro/internal/volume"
)

// TestTraceReplayEvidence runs the trace-replay matrix once and asserts
// what the experiment exists to show: the captured trace replays to
// completion in both loop modes, the scaled rows multiply the load, and
// rearrangement moves blocks and cuts the mean seek on the replayed
// trace.
func TestTraceReplayEvidence(t *testing.T) {
	if testing.Short() {
		t.Skip("trace-replay matrix simulation in -short mode")
	}
	rs, err := Gather(context.Background(), []Need{NeedTrace},
		Options{WindowMS: 15 * 60 * 1000}, runner.Config{})
	if err != nil {
		t.Fatal(err)
	}
	byCfg := make(map[string]TracePoint, len(rs.Trace))
	for _, p := range rs.Trace {
		byCfg[p.Config] = p
	}
	get := func(cfg string) TracePoint {
		p, ok := byCfg[cfg]
		if !ok {
			t.Fatalf("matrix has no %q row (got %d rows)", cfg, len(rs.Trace))
		}
		return p
	}

	base := get("open-1x")
	if base.Records == 0 || base.Errors != 0 {
		t.Fatalf("open-1x: Records = %d, Errors = %d, want load and no errors", base.Records, base.Errors)
	}
	if base.P99MS <= 0 || base.FCFSSeekMS <= 0 {
		t.Errorf("open-1x: P99MS = %v, FCFSSeekMS = %v, want both > 0", base.P99MS, base.FCFSSeekMS)
	}

	// Closed loop replays the same records paced by think time.
	if cl := get("closed-1x"); cl.Records != base.Records || cl.Errors != 0 {
		t.Errorf("closed-1x: Records = %d, Errors = %d, want %d and 0", cl.Records, cl.Errors, base.Records)
	}

	// The scaled row multiplexes 4 copies over a 4-disk stripe.
	sc := get("open-4x-stripe4")
	if sc.Records != 4*base.Records {
		t.Errorf("open-4x-stripe4: Records = %d, want %d (4 copies)", sc.Records, 4*base.Records)
	}
	if sc.Disks != 4 {
		t.Errorf("open-4x-stripe4: Disks = %d, want 4", sc.Disks)
	}

	// Rearrangement on the replayed trace: blocks moved, seeks cut —
	// the paper's claim, demonstrated on trace-driven load.
	for _, cfg := range []string{"open-1x", "open-4x-stripe4"} {
		off, on := get(cfg), get(cfg+"-rearr")
		if on.Installed == 0 {
			t.Errorf("%s-rearr: Installed = 0, want > 0", cfg)
		}
		if on.SeekMS >= off.SeekMS {
			t.Errorf("%s: rearranged seek %.3f ms, want < baseline %.3f ms", cfg, on.SeekMS, off.SeekMS)
		}
		if on.SeekRedPct <= off.SeekRedPct {
			t.Errorf("%s: rearranged reduction %.1f%%, want > baseline %.1f%%", cfg, on.SeekRedPct, off.SeekRedPct)
		}
	}
}

// TestTraceConfigsCustomRow pins the flag collapse: any of the replay
// flags reduces the matrix to one custom off/on pair carrying the CLI
// settings, while all-unset reproduces the committed six-row matrix.
func TestTraceConfigsCustomRow(t *testing.T) {
	o := equivOptions()
	if got := traceConfigs(o); len(got) != 6 {
		t.Fatalf("default matrix: %d rows, want 6", len(got))
	}

	o.TraceIn = "testdata/some.trace"
	o.ReplayMode = "closed"
	o.TraceScale = 4
	o.TraceShift = 1000
	rows := traceConfigs(o)
	if len(rows) != 2 {
		t.Fatalf("flag matrix: %d rows, want 2", len(rows))
	}
	off, on := rows[0], rows[1]
	if off.Rearrange || !on.Rearrange {
		t.Errorf("want an off/on pair, got %v/%v", off.Rearrange, on.Rearrange)
	}
	for _, s := range rows {
		if s.TracePath != o.TraceIn || s.Mode != tracein.ClosedLoop {
			t.Errorf("custom row dropped -trace-in/-replay-mode: %+v", s)
		}
		if s.Copies != 4 || s.Compress != 4 || s.ShiftBlocks != 1000 {
			t.Errorf("custom row dropped -trace-scale/-trace-shift: %+v", s)
		}
		if s.Layout != volume.Stripe || s.Disks != 4 {
			t.Errorf("scaled custom row: layout %v disks %d, want stripe/4", s.Layout, s.Disks)
		}
	}

	// A bare -replay-mode still collapses, on a single disk.
	o = equivOptions()
	o.ReplayMode = "closed"
	rows = traceConfigs(o)
	if len(rows) != 2 {
		t.Fatalf("bare -replay-mode: %d rows, want 2", len(rows))
	}
	if s := rows[0].withDefaults(); s.Disks != 1 || s.Layout != volume.Concat {
		t.Fatalf("bare -replay-mode: want a concat-1 pair, got %+v", s)
	}
}

func TestTrimRearrSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"open-1x-rearr": "open-1x",
		"open-1x":       "open-1x",
		"-rearr":        "-rearr",
	} {
		if got := trimRearrSuffix(in); got != want {
			t.Errorf("trimRearrSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
