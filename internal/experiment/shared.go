package experiment

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/fs"
	"repro/internal/rig"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// SharedResult is the outcome of the shared-disk extension experiment.
type SharedResult struct {
	Run *Run
	// SystemErrors and UsersErrors count failed operations per workload.
	SystemErrors, UsersErrors int64
}

// RunShared executes the configuration Section 4.1.1 describes but the
// paper never measures: both file systems as two partitions of a single
// disk, sharing one reserved region. Block rearrangement is per physical
// device, so the single block table holds hot blocks from both file
// systems at once; the hot list naturally interleaves the system file
// system's metadata blocks with the users' working set.
//
// Both workloads drive one rig and one engine, so the run is a single
// job on the parallel runner; the context cancels it.
func RunShared(ctx context.Context, o Options) (*SharedResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	days := o.days(4)
	windowMS := o.WindowMS
	if windowMS <= 0 {
		windowMS = workload.DayEndMS - workload.DayStartMS
	}
	seed := o.Seed
	if seed == 0 {
		seed = 1
	}

	model := disk.Toshiba()
	// Split the virtual disk ~60/40 between the two file systems.
	totalBlocks := (model.Geom.TotalSectors() - 48*int64(model.Geom.SectorsPerCyl())) / 16
	sysBlocks := totalBlocks * 6 / 10
	usrBlocks := totalBlocks - sysBlocks - 16
	col := telemetry.FromContext(ctx)
	r, err := rig.New(rig.Options{
		Ctx:             ctx,
		Disk:            model,
		ReservedCyls:    48,
		PartitionBlocks: []int64{sysBlocks, usrBlocks},
		Telemetry:       col,
		Fault:           o.Fault,
	})
	if err != nil {
		return nil, err
	}
	mkfs := func(part int, syncData bool) (*fs.FS, error) {
		return fs.Newfs(r.Eng, r.Driver, part, fs.Params{
			SyncData: syncData,
			Cache: cache.Config{
				CapacityBlocks:   512,
				PressurePeriodMS: 60_000,
				PressureFrac:     0.10,
				Seed:             seed,
			},
			MetaCache: cache.Config{CapacityBlocks: 512, SyncPeriodMS: 5_000},
		})
	}
	sysFS, err := mkfs(0, false)
	if err != nil {
		return nil, err
	}
	usrFS, err := mkfs(1, true)
	if err != nil {
		return nil, err
	}
	r.Eng.Run()

	sysW := workload.NewSystem(r.Eng, sysFS, workload.SystemConfig{
		WindowMS: windowMS, Seed: seed,
	})
	usrW := workload.NewUsers(r.Eng, usrFS, workload.UsersConfig{
		WindowMS: windowMS, Seed: seed + 1,
	})
	rear, err := core.New(r.Eng, r.Driver, core.Config{MaxBlocks: 1018})
	if err != nil {
		return nil, err
	}
	if col != nil && col.SamplePeriodMS() > 0 {
		registerStackProbes(col, r, nil)
		registerCacheProbes(col, "sys_cache", sysFS.Cache())
		registerCacheProbes(col, "usr_cache", usrFS.Cache())
		registerRearrangerProbes(col, rear)
		registerFaultProbes(col, r)
		col.StartSampler(r.Eng)
	}

	if err := await(r, "populate system", workload.DayStartMS/2, func(done func(error)) {
		sysW.Populate(done)
	}); err != nil {
		return nil, err
	}
	if err := await(r, "populate users", workload.DayStartMS, func(done func(error)) {
		usrW.Populate(done)
	}); err != nil {
		return nil, err
	}

	run := &Run{
		Setup: Setup{DiskName: "toshiba", FSName: "shared", Days: days},
		Curve: model.Seek,
	}
	on := func(day int) bool { return day%2 == 1 }
	for day := 0; day < days; day++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		dayStart := float64(day)*workload.DayMS + workload.DayStartMS
		dayEnd := dayStart + windowMS
		r.Eng.RunUntil(dayStart)
		r.Driver.ReadStats()
		rear.StartMonitoring()

		// Both workloads run concurrently over the same window.
		remaining := 2
		var firstErr error
		bothDone := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
		}
		sysW.RunDay(day, bothDone)
		usrW.RunDay(day, bothDone)
		r.Eng.RunUntil(dayEnd + 30*60*1000)
		for ext := 0; remaining > 0 && r.Err() == nil && ext < 200; ext++ {
			r.Eng.RunUntil(r.Eng.Now() + 10*60*1000)
		}
		if err := r.Err(); err != nil {
			return nil, err
		}
		if remaining > 0 {
			return nil, fmt.Errorf("experiment shared: day %d did not complete", day)
		}
		if firstErr != nil {
			return nil, firstErr
		}
		rear.StopMonitoring()
		run.Days = append(run.Days, DayResult{
			Day: day, On: on(day) && day > 0, Stats: r.Driver.ReadStats(),
		})

		if day+1 < days {
			if on(day + 1) {
				var installed int
				if err := await(r, "shared rearrange", r.Eng.Now()+2*workload.HourMS,
					func(done func(error)) {
						rear.Rearrange(func(n int, err error) { installed = n; done(err) })
					}); err != nil {
					return nil, err
				}
				run.Installed = append(run.Installed, installed)
			} else {
				if err := await(r, "shared clean", r.Eng.Now()+2*workload.HourMS,
					func(done func(error)) { rear.CleanOnly(done) }); err != nil {
					return nil, err
				}
			}
		}
		rear.ResetCounts()
	}
	if col != nil {
		col.SetEngineEvents(r.Eng.Dispatched())
	}
	return &SharedResult{
		Run:          run,
		SystemErrors: sysW.Errors(),
		UsersErrors:  usrW.Errors(),
	}, nil
}

// SharedReport renders the extension experiment's summary.
func SharedReport(res *SharedResult) *Report {
	rep := &Report{
		ID:      "shared",
		Title:   "Extension: both file systems sharing one disk and one reserved region (Toshiba)",
		Columns: []string{"Metric", "Off days", "On days"},
	}
	run := res.Run
	off := Summarize(run.OffDays(), run.Curve, AllRequests)
	on := Summarize(run.OnDays(), run.Curve, AllRequests)
	rep.AddRow("Mean seek time (ms)", f2(off.Seek.Avg()), f2(on.Seek.Avg()))
	rep.AddRow("Mean service time (ms)", f2(off.Service.Avg()), f2(on.Service.Avg()))
	rep.AddRow("Mean waiting time (ms)", f2(off.Wait.Avg()), f2(on.Wait.Avg()))
	rep.AddNote("the paper never measures this configuration, but Section 4.1.1 supports it: rearrangement is per physical device and the block table mixes blocks from both file systems")
	return rep
}

// registerShared registers the shared-disk extension with the
// experiment registry.
func registerShared() {
	Register(Spec{
		ID: "shared", Description: "extension: both file systems sharing one disk",
		Needs: []Need{NeedShared},
		Report: func(rs *ResultSet) []Renderable {
			return []Renderable{SharedReport(rs.Shared)}
		},
	})
}
