package sim

import (
	"math"
	"sort"
)

// Rand is a deterministic pseudo-random number generator (xorshift64*).
// Simulations must draw all randomness from a seeded Rand so that every
// experiment is exactly reproducible.
type Rand struct {
	state uint64
	// cached second normal variate from Box-Muller
	haveGauss bool
	gauss     float64
}

// NewRand returns a generator seeded with seed (0 is remapped to a fixed
// non-zero value, since xorshift requires non-zero state).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform variate in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponential variate with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normal variate with the given mean and standard
// deviation (Box-Muller).
func (r *Rand) Norm(mean, stddev float64) float64 {
	if r.haveGauss {
		r.haveGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.haveGauss = true
	return mean + stddev*u*f
}

// LogNormal returns a log-normal variate whose underlying normal has the
// given mu and sigma.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Split returns a new independent generator derived from this one, for
// giving each simulation component its own stream.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xA5A5A5A5DEADBEEF)
}

// Zipf samples ranks 1..N with probability proportional to 1/rank^theta.
// theta > 1 gives the heavy skew typical of block reference streams; the
// paper's system file system needs roughly "top 100 blocks absorb 90% of
// requests" (Figure 5), which corresponds to theta well above 1.
type Zipf struct {
	cum []float64 // cumulative probabilities, cum[i] for rank i+1
}

// NewZipf precomputes a Zipf(θ) distribution over ranks 1..n.
func NewZipf(n int, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf with non-positive n")
	}
	cum := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	cum[n-1] = 1 // guard against rounding
	return &Zipf{cum: cum}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cum) }

// Rank draws a rank in [0, N) (0 is the most popular).
func (z *Zipf) Rank(r *Rand) int {
	u := r.Float64()
	return sort.SearchFloat64s(z.cum, u)
}

// Prob returns the probability of rank i (0-based).
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cum[0]
	}
	return z.cum[i] - z.cum[i-1]
}
