package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(10, func() {
		times = append(times, e.Now())
		e.After(5, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Errorf("times = %v", times)
	}
}

func TestSchedulingInPastRunsNow(t *testing.T) {
	e := NewEngine()
	var fired float64 = -1
	e.At(10, func() {
		e.At(3, func() { fired = e.Now() }) // in the past
	})
	e.Run()
	if fired != 10 {
		t.Errorf("past event fired at %v, want 10", fired)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, tm := range []float64{5, 15, 25} {
		tm := tm
		e.At(tm, func() { fired = append(fired, tm) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Errorf("fired = %v, want 2 events", fired)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Run()
	if len(fired) != 3 || e.Now() != 25 {
		t.Errorf("after Run: fired=%v now=%v", fired, e.Now())
	}
}

func TestEveryFiresPeriodically(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Every(10, func() { times = append(times, e.Now()) })
	e.RunUntil(35)
	if len(times) != 3 || times[0] != 10 || times[1] != 20 || times[2] != 30 {
		t.Errorf("times = %v, want [10 20 30]", times)
	}
	// The t=40 tick is already scheduled past the horizon.
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want the next tick queued", e.Pending())
	}
	if e.Now() != 35 {
		t.Errorf("Now = %v, want 35", e.Now())
	}
	e.RunUntil(40)
	if len(times) != 4 || times[3] != 40 {
		t.Errorf("times = %v, want a 4th fire at 40", times)
	}
}

func TestEveryCancelBeforeFirstFire(t *testing.T) {
	e := NewEngine()
	fires := 0
	cancel := e.Every(10, func() { fires++ })
	cancel()
	e.RunUntil(100)
	if fires != 0 {
		t.Errorf("cancelled ticker fired %d times", fires)
	}
	// The already-scheduled first tick fires as a no-op without
	// rescheduling, so the queue drains and a bare Run returns.
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after the dead tick, want 0", e.Pending())
	}
	if e.Now() != 100 {
		t.Errorf("Now = %v, want the full horizon 100", e.Now())
	}
	e.Run() // must return immediately: nothing left to do
}

func TestEveryCancelInsideCallback(t *testing.T) {
	e := NewEngine()
	fires := 0
	var cancel func()
	cancel = e.Every(10, func() {
		fires++
		if fires == 3 {
			cancel()
		}
	})
	e.RunUntil(1000)
	if fires != 3 {
		t.Errorf("fired %d times, want exactly 3 (cancelled inside the 3rd)", fires)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d, want a drained queue", e.Pending())
	}
}

func TestEveryCancelInsideCallbackDropsRearm(t *testing.T) {
	// Cancelling from inside the callback must drop the pending re-arm
	// immediately: right after the cancelling tick fires, the queue
	// holds no dead ticker event (it used to re-arm once and fire a
	// no-op one period later).
	e := NewEngine()
	fires := 0
	var cancel func()
	cancel = e.Every(10, func() {
		fires++
		if fires == 3 {
			cancel()
		}
	})
	e.RunUntil(30) // exactly the 3rd fire
	if fires != 3 {
		t.Fatalf("fired %d times, want 3", fires)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d immediately after cancel-inside-callback, want 0 (no re-arm)", e.Pending())
	}
	cancel() // double-cancel after the ticker is gone must be harmless
	e.RunUntil(100)
	if fires != 3 {
		t.Errorf("fired %d times after double-cancel, want still 3", fires)
	}
}

func TestEveryCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	fires := 0
	cancel := e.Every(5, func() { fires++ })
	e.RunUntil(12)
	cancel()
	cancel() // double-cancel must be harmless
	e.RunUntil(100)
	if fires != 2 {
		t.Errorf("fired %d times, want 2 (at 5 and 10)", fires)
	}
}

func TestTwoTickersCancelIndependently(t *testing.T) {
	e := NewEngine()
	var a, b int
	cancelA := e.Every(10, func() { a++ })
	e.Every(10, func() { b++ })
	e.RunUntil(25)
	cancelA()
	e.RunUntil(55)
	if a != 2 {
		t.Errorf("cancelled ticker fired %d times, want 2", a)
	}
	if b != 5 {
		t.Errorf("surviving ticker fired %d times, want 5", b)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	var count int
	for i := 0; i < 10; i++ {
		e.At(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Errorf("after resume count = %d", count)
	}
}

func TestStopDuringRunUntil(t *testing.T) {
	// Stop from inside an event halts RunUntil immediately: later events
	// stay queued, and the clock stays at the stopping event instead of
	// advancing to the horizon, so a paused engine can resume where it
	// left off.
	e := NewEngine()
	var fired []float64
	for _, tm := range []float64{5, 10, 15, 20} {
		tm := tm
		e.At(tm, func() {
			fired = append(fired, tm)
			if tm == 10 {
				e.Stop()
			}
		})
	}
	e.RunUntil(100)
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want events at 5 and 10", fired)
	}
	if e.Now() != 10 {
		t.Errorf("Now = %v, want 10 (clock must not jump to the horizon)", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2 retained events", e.Pending())
	}
	// A fresh RunUntil resumes exactly where the stop left off.
	e.RunUntil(100)
	if len(fired) != 4 || e.Now() != 100 {
		t.Errorf("after resume: fired=%v now=%v", fired, e.Now())
	}
}

func TestPastSchedulingInsideRunUntil(t *testing.T) {
	// An event that schedules into the past during RunUntil fires at the
	// current time, within the same RunUntil pass.
	e := NewEngine()
	var fired float64 = -1
	e.At(10, func() {
		e.At(3, func() { fired = e.Now() })
	})
	e.RunUntil(20)
	if fired != 10 {
		t.Errorf("past event fired at %v, want 10", fired)
	}
	if e.Now() != 20 {
		t.Errorf("Now = %v, want 20", e.Now())
	}
}

func TestPastSchedulingAtHorizon(t *testing.T) {
	// Scheduling into the past from an event exactly at the horizon
	// still fires before RunUntil returns: the clamped event lands at
	// the horizon, not beyond it.
	e := NewEngine()
	var fired bool
	e.At(20, func() {
		e.At(1, func() { fired = true })
	})
	e.RunUntil(20)
	if !fired {
		t.Error("event scheduled into the past at the horizon did not fire")
	}
}

func TestPendingAfterStop(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		i := i
		e.At(float64(i), func() {
			if i == 1 {
				e.Stop()
			}
		})
	}
	e.Run()
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d after stop, want 3", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after resume, want 0", e.Pending())
	}
}

func TestInterruptHaltsRun(t *testing.T) {
	// The interrupt hook is polled every few thousand events; a run
	// whose hook trips must halt long before draining a large queue,
	// with the remaining events retained.
	e := NewEngine()
	stop := false
	e.SetInterrupt(func() bool { return stop })
	const n = 3 * interruptStride
	count := 0
	for i := 0; i < n; i++ {
		e.At(float64(i), func() {
			count++
			if count == interruptStride/2 {
				stop = true
			}
		})
	}
	e.Run()
	if count >= n {
		t.Fatal("interrupt did not halt the run")
	}
	if e.Pending() != n-count {
		t.Errorf("Pending = %d, want %d", e.Pending(), n-count)
	}
	// Clearing the condition lets the run resume and finish.
	stop = false
	e.Run()
	if count != n || e.Pending() != 0 {
		t.Errorf("after resume: count=%d pending=%d", count, e.Pending())
	}
}

func TestInterruptHaltsRunUntil(t *testing.T) {
	e := NewEngine()
	stop := false
	e.SetInterrupt(func() bool { return stop })
	const n = 2 * interruptStride
	count := 0
	for i := 0; i < n; i++ {
		e.At(float64(i), func() {
			count++
			if count == 10 {
				stop = true
			}
		})
	}
	e.RunUntil(float64(n))
	if count >= n {
		t.Fatal("interrupt did not halt RunUntil")
	}
	if e.Now() >= float64(n) {
		t.Errorf("Now = %v advanced to the horizon despite the interrupt", e.Now())
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / float64(n)
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Exp(5) sample mean = %v", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(13)
	var sum, sumSq float64
	n := 200000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stddev = %v", math.Sqrt(variance))
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRand(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, x := range xs {
		seen[x] = true
	}
	if len(seen) != 10 {
		t.Errorf("shuffle lost elements: %v", xs)
	}
}

func TestSplitIndependent(t *testing.T) {
	r := NewRand(23)
	a := r.Split()
	b := r.Split()
	same := true
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("split streams identical")
	}
}

func TestZipfRanksInRange(t *testing.T) {
	z := NewZipf(100, 1.2)
	r := NewRand(3)
	f := func(_ uint8) bool {
		k := z.Rank(r)
		return k >= 0 && k < 100
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.4)
	r := NewRand(5)
	counts := make([]int, 1000)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Rank(r)]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Errorf("Zipf not skewed: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
	// Rank 0 should carry a large share under heavy skew.
	if frac := float64(counts[0]) / float64(n); frac < 0.05 {
		t.Errorf("rank-0 share = %v, want noticeable mass", frac)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(50, 0.9)
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(0) did not panic")
		}
	}()
	NewZipf(0, 1)
}
