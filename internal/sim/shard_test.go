package sim

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"testing"
)

// toyDev is a minimal queued device for exercising the coordinator: a
// FIFO server whose completions optionally hop through internal
// member-side events before crossing back to the caller. It mirrors
// the structure of the real driver (public entry wrapped at the shard
// boundary, completion chains member-side) without any disk modeling.
type toyDev struct {
	eng   *Engine
	shard *Shard
	idx   int
	busy  bool
	queue []toyReq
}

type toyReq struct {
	svc  float64
	hops int
	done func([]byte, error)
}

// request is the public entry: called from the fan-in side, wrapped at
// the shard boundary exactly like the driver's ReadBlock.
func (d *toyDev) request(svc float64, hops int, done func([]byte, error)) {
	if s := d.shard; s != nil {
		s.Enter()
		defer s.Exit()
		done = s.WrapDone(done)
	}
	d.queue = append(d.queue, toyReq{svc: svc, hops: hops, done: done})
	if !d.busy {
		d.start()
	}
}

func (d *toyDev) start() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	r := d.queue[0]
	d.queue = d.queue[1:]
	d.eng.After(r.svc, func() { d.hop(r, r.hops) })
}

// hop runs member-internal continuation events. Hop delays are on the
// same 0.5ms grid for every device, so internal events of different
// members collide in time constantly; exact-merge must still replay
// the single-engine order.
func (d *toyDev) hop(r toyReq, hops int) {
	if hops > 0 {
		d.eng.After(0.5, func() { d.hop(r, hops-1) })
		return
	}
	r.done(nil, nil)
	d.start()
}

// toyRun executes one randomized closed-loop program over ndev devices
// and nclients clients and returns its full completion log plus final
// clock and event count. sharded selects the coordinator path; both
// paths run the byte-identical program.
func toyRun(seed uint64, ndev, nclients, perClient int, sharded bool) string {
	main := NewEngine()
	var co *Coordinator
	devs := make([]*toyDev, ndev)
	if sharded {
		co = NewCoordinator(main, ndev)
		for i := range devs {
			devs[i] = &toyDev{eng: co.Shard(i).Engine(), shard: co.Shard(i), idx: i}
		}
		defer co.Close()
	} else {
		for i := range devs {
			devs[i] = &toyDev{eng: main, idx: i}
		}
	}

	var log strings.Builder
	rnd := NewRand(seed)
	ticks := 0
	cancel := main.Every(7, func() { ticks++ })

	var issue func(c, left int)
	issue = func(c, left int) {
		if left == 0 {
			return
		}
		svc := float64(rnd.Intn(5) + 1) // integer service: force ties
		hops := rnd.Intn(3)
		if rnd.Intn(8) == 0 {
			// Broadcast: same-time fan-out to every device, like a
			// mirror write; completions tie exactly and must commit in
			// issue order.
			pending := ndev
			for i := range devs {
				i := i
				devs[i].request(svc, hops, func(_ []byte, _ error) {
					fmt.Fprintf(&log, "b %d %d %d %.6f\n", c, i, left, main.Now())
					pending--
					if pending == 0 {
						issue(c, left-1)
					}
				})
			}
			return
		}
		i := rnd.Intn(ndev)
		devs[i].request(svc, hops, func(_ []byte, _ error) {
			fmt.Fprintf(&log, "r %d %d %d %.6f\n", c, i, left, main.Now())
			issue(c, left-1)
		})
	}
	for c := 0; c < nclients; c++ {
		issue(c, perClient)
	}

	// Drive in horizon slices, then to quiescence, exercising both
	// RunUntil and Run merge semantics.
	for _, h := range []float64{3, 17, 50} {
		if sharded {
			co.RunUntil(h)
		} else {
			main.RunUntil(h)
		}
		fmt.Fprintf(&log, "t %.6f\n", main.Now())
	}
	cancel()
	if sharded {
		co.Run()
	} else {
		main.Run()
	}
	disp := main.Dispatched()
	if sharded {
		disp = co.Dispatched()
	}
	fmt.Fprintf(&log, "end %.6f %d %d\n", main.Now(), disp, ticks)
	return log.String()
}

// TestShardEquivalence runs randomized closed-loop programs on the
// coordinator and on a single shared engine and requires byte-identical
// completion logs, clocks, and event counts.
func TestShardEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		ndev := 1 + int(seed%4)
		nclients := 1 + int(seed%5)
		per := 8 + int(seed%7)
		want := toyRun(seed, ndev, nclients, per, false)
		got := toyRun(seed, ndev, nclients, per, true)
		if got != want {
			t.Fatalf("seed %d (%d devs, %d clients): sharded log diverges\nsingle:\n%s\nsharded:\n%s",
				seed, ndev, nclients, want, got)
		}
	}
}

// TestShardCloseParked verifies Close unwinds workers parked
// mid-delivery (the cancellation path) without running their callbacks.
func TestShardCloseParked(t *testing.T) {
	main := NewEngine()
	co := NewCoordinator(main, 2)
	dev := &toyDev{eng: co.Shard(0).Engine(), shard: co.Shard(0)}
	fired := false
	dev.request(5, 0, func(_ []byte, _ error) { fired = true })
	// Stop before the completion can commit: the worker parks at the
	// delivery when the horizon admits the completion event but main
	// is interrupted first.
	co.RunUntil(1)
	co.Close()
	co.Close() // idempotent
	if fired {
		t.Fatal("callback ran after Close")
	}
	co.RunUntil(100) // closed coordinator: no-op, no hang
}

func TestRunBound(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(float64(i), func() { got = append(got, i) })
	}
	b := Bound{Time: 2, Seq: math.MaxInt64}
	if !e.RunBound(&b) {
		t.Fatal("RunBound stopped early")
	}
	if len(got) != 3 {
		t.Fatalf("RunBound fired %d events, want 3", len(got))
	}
	if e.Now() != 2 {
		t.Fatalf("clock advanced to %g, want 2 (last fired event)", e.Now())
	}
	if tm, _, ok := e.Peek(); !ok || tm != 3 {
		t.Fatalf("Peek = %v, %v, want 3", tm, ok)
	}
	e.AdvanceTo(10)
	if e.Now() != 10 {
		t.Fatalf("AdvanceTo: clock %g, want 10", e.Now())
	}
	e.AdvanceTo(5) // past: no-op
	if e.Now() != 10 {
		t.Fatalf("AdvanceTo backward moved clock to %g", e.Now())
	}
}

// TestRunBoundSeqLimit checks the bound is exclusive in (time, seq):
// events at the bound time fire only while their seq is below it.
func TestRunBoundSeqLimit(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 4; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	// Events got seqs 1..4 in scheduling order.
	b := Bound{Time: 1, Seq: 3}
	e.RunBound(&b)
	if len(got) != 2 {
		t.Fatalf("fired %d events below (1,3), want 2", len(got))
	}
}

func TestShareSeq(t *testing.T) {
	var src atomic.Int64
	a, b := NewEngine(), NewEngine()
	a.At(0, func() {}) // consume seq 1 locally before sharing
	a.ShareSeq(&src)
	b.ShareSeq(&src)
	if src.Load() != 1 {
		t.Fatalf("ShareSeq folded local seq %d, want 1", src.Load())
	}
	a.At(1, func() {})
	b.At(1, func() {})
	_, sa, _ := a.Peek()
	_, _, _ = b.Peek()
	if sa != 1 {
		t.Fatalf("pre-share event seq %d, want 1", sa)
	}
	a.Run()
	bt, bs, _ := b.Peek()
	if bt != 1 || bs < 2 {
		t.Fatalf("shared seqs not monotone across engines: (%g, %d)", bt, bs)
	}
}
