// Shard coordinator: conservative parallel discrete-event simulation
// over one fan-in ("main") engine and N member engines, each member
// running on its own goroutine, with completions merged back onto the
// main goroutine in global (time, seq) order.
//
// The determinism contract is exact-merge: every engine draws event
// sequence numbers from one shared counter (ShareSeq), and the
// coordinator executes the union of all event streams in strict
// (time, seq) order, so a sharded run fires the same callbacks in the
// same order — and performs every schedule call, and therefore every
// sequence-number draw, in the same order — as the same program on a
// single shared engine. Output is unconditionally byte-identical,
// including runs whose event times tie across members.
//
// Exactness dictates the synchronization. Each side runs only while
// its pending range lies strictly below every other engine's earliest
// candidate (head event or parked delivery):
//
//   - Main must not run past any member's earliest event — an arrival
//     must observe the member state those events produce — so main
//     batches run under a dynamic bound covering every member's head
//     key, tightened live as main-side events schedule new member
//     work (Exit folds fresh heads into the bound mid-batch).
//   - A member must not run past main's head, any parked delivery, or
//     any other member's head. Zero lookahead forces the last clause:
//     any member event may complete a request at its own firing time,
//     and the completion callback (fan-in, then possibly a new
//     request fanned out to a different member) does not commute with
//     other members' pending events. A device model with a service
//     floor could promise a delivery-free window and widen these
//     bounds; see the package notes in DESIGN.md.
//   - Deliveries commit on the main goroutine in global key order,
//     with the main clock advanced to the completion time first.
//
// The consequence on one core is lockstep: at any instant exactly one
// engine fires events, handing off through the worker channels. The
// structure still buys per-member heap locality and bounded batches
// (a member runs its whole sub-bound range — completion, After(0)
// chains, queue dispatch — per handoff, not one event per handoff),
// and is the substrate for real overlap once member models export
// lookahead.
//
// Boundary mechanics: member-side completion callbacks are wrapped
// (WrapDone/WrapErr) so that firing one parks the member goroutine
// and hands a delivery record to the coordinator instead of running
// the callback in place; main-side code calls into members only
// through driver entry points bracketed by Enter/Exit. Member engines
// never schedule onto each other or onto main.
package sim

import (
	"math"
	"sync"
	"sync/atomic"
)

// Coordinator synchronizes one main engine with per-member shard
// engines. All exported methods must be called from the goroutine that
// owns the main engine; the coordinator runs member engines on its own
// worker goroutines and guarantees that at most one side executes
// events at any instant a shared structure could be observed.
type Coordinator struct {
	main   *Engine
	shards []*Shard
	seqSrc atomic.Int64
	dead   atomic.Bool
	wg     sync.WaitGroup

	// pbBound, when non-nil, is the bound of the main RunBound batch in
	// progress; Shard.Exit folds freshly scheduled member events into
	// it so main never outruns them.
	pbBound *Bound
}

// shardState is the coordinator-side view of a worker goroutine.
type shardState int

const (
	// stateIdle: the worker is blocked receiving on cmd; its engine is
	// quiescent and its candidate key is the engine's head event.
	stateIdle shardState = iota
	// stateDelivery: the worker is parked mid-event inside a wrapped
	// completion callback, blocked receiving on resume; its candidate
	// key is the parked delivery's (time, seq).
	stateDelivery
)

// Shard is one member engine plus its worker goroutine and the
// coordinator-side bookkeeping for it.
type Shard struct {
	co  *Coordinator
	eng *Engine
	idx int

	cmd    chan struct{} // coordinator -> worker: run up to b
	parked chan parkMsg  // worker -> coordinator: parked
	resume chan struct{} // coordinator -> worker: delivery committed

	// b is the worker's execution bound. The coordinator writes it only
	// while the worker is parked; the channel operations order the
	// accesses.
	b Bound

	// Coordinator-side state, touched only from the main goroutine.
	state shardState
	park  parkMsg  // last park message (valid in stateDelivery)
	saved float64  // member clock saved by Enter
	free  *wrapRec // pooled wrapper records (main-side only)

	// entered is true between Enter and Exit, i.e. while the main
	// goroutine is inside one of this member's entry points. A wrapped
	// callback firing then is a degenerate inline completion and must
	// run in place rather than park (workers are guaranteed parked, so
	// the flag is never read and written concurrently; atomic for the
	// detector's benefit).
	entered atomic.Bool
}

// parkMsg reports why a worker stopped executing events.
type parkMsg struct {
	// delivery is true when the worker parked mid-event inside a
	// wrapped boundary callback; time/seq are the firing event's key
	// and rec holds the callback and its results. delivery=false means
	// the worker ran up to its bound and went idle.
	delivery bool
	time     float64
	seq      int64
	rec      *wrapRec
}

// wrapRec carries one boundary-crossing callback and its results from
// the member goroutine to the commit on main. Records are pooled per
// shard with prebuilt closures; the pool is touched only from the main
// goroutine (WrapDone/WrapErr run under Enter, release happens at
// commit), so it needs no lock.
type wrapRec struct {
	shard *Shard
	next  *wrapRec

	done  func([]byte, error)
	edone func(error)
	data  []byte
	err   error
	isErr bool // true: edone-style record

	wrapDone func([]byte, error)
	wrapErr  func(error)
}

// NewCoordinator builds a coordinator over main with n member shards,
// each with a fresh engine, wires every engine to one shared sequence
// counter, and starts the worker goroutines. It must be called before
// any engine has scheduled events whose order matters across engines
// (in practice: immediately after creating main).
func NewCoordinator(main *Engine, n int) *Coordinator {
	c := &Coordinator{main: main}
	main.ShareSeq(&c.seqSrc)
	for i := 0; i < n; i++ {
		s := &Shard{
			co:     c,
			eng:    NewEngine(),
			idx:    i,
			cmd:    make(chan struct{}),
			parked: make(chan parkMsg),
			resume: make(chan struct{}),
		}
		s.eng.ShareSeq(&c.seqSrc)
		c.shards = append(c.shards, s)
		c.wg.Add(1)
		go s.loop()
	}
	return c
}

// Shard returns member shard i.
func (c *Coordinator) Shard(i int) *Shard { return c.shards[i] }

// Engine returns the shard's private engine, for building the member
// stack on.
func (s *Shard) Engine() *Engine { return s.eng }

// loop is the worker goroutine: run the engine up to the bound the
// coordinator set, report the park, repeat. Deliveries park from
// inside RunBound via deliverRec and do not pass through here.
func (s *Shard) loop() {
	defer s.co.wg.Done()
	for range s.cmd {
		s.eng.RunBound(&s.b)
		s.parked <- parkMsg{}
	}
}

// deliverRec runs on the worker goroutine, from inside a wrapped
// boundary callback: park the delivery with the coordinator and block
// until it has been committed on main. After a shutdown the record is
// dropped and the engine stopped so RunBound unwinds promptly.
func (s *Shard) deliverRec(r *wrapRec) {
	if s.entered.Load() {
		// Fired synchronously inside the issuing entry point, on the
		// main goroutine (a degenerate chain that completes inline,
		// e.g. cleaning an empty block table): run the callback in
		// place, exactly as the single-engine path would.
		done, edone, data, err, isErr := r.done, r.edone, r.data, r.err, r.isErr
		r.done, r.edone, r.data, r.err = nil, nil, nil, nil
		r.next = s.free
		s.free = r
		if isErr {
			if edone != nil {
				edone(err)
			}
		} else if done != nil {
			done(data, err)
		}
		return
	}
	if s.co.dead.Load() {
		s.eng.Stop()
		return
	}
	s.parked <- parkMsg{delivery: true, time: s.eng.now, seq: s.eng.curSeq, rec: r}
	<-s.resume
	if s.co.dead.Load() {
		s.eng.Stop()
	}
}

// getRec pops a pooled wrapper record, building one (with its reusable
// boundary closures) on first use.
func (s *Shard) getRec() *wrapRec {
	r := s.free
	if r == nil {
		r = &wrapRec{shard: s}
		r.wrapDone = func(data []byte, err error) {
			r.data, r.err = data, err
			r.shard.deliverRec(r)
		}
		r.wrapErr = func(err error) {
			r.err = err
			r.shard.deliverRec(r)
		}
	} else {
		s.free = r.next
		r.next = nil
	}
	return r
}

// Enter brackets a main-side call into the member stack: the member
// clock is set to main's so the member code observes the caller's
// present (the member may be parked mid-delivery with its clock ahead
// of main). Exit restores the member clock and folds any freshly
// scheduled member events into the bound of a main batch in progress.
// Enter/Exit pairs do not nest per shard.
func (s *Shard) Enter() {
	s.saved = s.eng.now
	s.eng.now = s.co.main.now
	s.entered.Store(true)
}

// Exit ends an Enter bracket.
func (s *Shard) Exit() {
	s.entered.Store(false)
	s.eng.now = s.saved
	if pb := s.co.pbBound; pb != nil {
		if t, q, ok := s.eng.Peek(); ok && pb.before(t, q) {
			pb.Time, pb.Seq = t, q
		}
	}
}

// WrapDone wraps a data-carrying completion callback so that firing it
// on the member engine parks the worker and defers the callback to the
// coordinator's commit on the main goroutine. Must be called under
// Enter. The signature converts implicitly to driver.DoneFunc without
// importing the driver package here.
func (s *Shard) WrapDone(done func([]byte, error)) func([]byte, error) {
	r := s.getRec()
	r.done = done
	r.isErr = false
	return r.wrapDone
}

// WrapErr is WrapDone for error-only callbacks (ioctl-style entries).
func (s *Shard) WrapErr(done func(error)) func(error) {
	r := s.getRec()
	r.edone = done
	r.isErr = true
	return r.wrapErr
}

// commit runs a parked delivery on the main goroutine: advance main's
// clock to the completion time, fire the real callback, recycle the
// record.
func (c *Coordinator) commit(s *Shard) {
	msg := s.park
	s.park = parkMsg{}
	c.main.AdvanceTo(msg.time)
	r := msg.rec
	done, edone, data, err, isErr := r.done, r.edone, r.data, r.err, r.isErr
	r.done, r.edone, r.data, r.err = nil, nil, nil, nil
	r.next = s.free
	s.free = r
	if isErr {
		if edone != nil {
			edone(err)
		}
	} else if done != nil {
		done(data, err)
	}
}

// memberBound computes the conservative execution bound for member s:
// the minimum over the horizon, main's head event, and every other
// shard's candidate (parked delivery or head event). Events of s
// strictly below this key are, by construction, exactly the events a
// single shared engine would execute next, in the same order.
func (c *Coordinator) memberBound(s *Shard, hB *Bound) Bound {
	b := *hB
	if t, q, ok := c.main.Peek(); ok && b.before(t, q) {
		b = Bound{Time: t, Seq: q}
	}
	for _, o := range c.shards {
		if o == s {
			continue
		}
		if k, ok := o.candidate(); ok && k.beforeBound(&b) {
			b = k
		}
	}
	return b
}

// candidate returns the shard's earliest pending key: the parked
// delivery's key, or the engine's head event, or ok=false when the
// shard is fully quiescent.
func (s *Shard) candidate() (Bound, bool) {
	if s.state == stateDelivery {
		return Bound{Time: s.park.time, Seq: s.park.seq}, true
	}
	if t, q, ok := s.eng.Peek(); ok {
		return Bound{Time: t, Seq: q}, true
	}
	return Bound{}, false
}

// Run executes the merged simulation until every engine is quiescent
// (the sharded analogue of Engine.Run on the main engine).
func (c *Coordinator) Run() { c.merge(math.Inf(1), false) }

// RunUntil executes the merged simulation through time t inclusive,
// then advances the main clock to t, like Engine.RunUntil. Events
// beyond t — including member completions already in flight — stay
// pending for the next call.
func (c *Coordinator) RunUntil(t float64) { c.merge(t, true) }

// interruptStrideMerge is how many merge-loop iterations pass between
// polls of the main engine's interrupt hook, covering stretches where
// the members churn (overnight rearrangement) while main is idle and
// Engine-level polling would never trigger.
const interruptStrideMerge = 1024

// merge is the coordinator's scheduler loop. Invariants at the top of
// every iteration: main is quiescent on this goroutine, and every
// worker is parked (idle or mid-delivery).
func (c *Coordinator) merge(horizon float64, advance bool) {
	hB := Bound{Time: horizon, Seq: math.MaxInt64}
	inf := Bound{Time: math.Inf(1), Seq: math.MaxInt64}
	for iter := 0; ; iter++ {
		if c.dead.Load() {
			return
		}
		if iter%interruptStrideMerge == interruptStrideMerge-1 &&
			c.main.interrupt != nil && c.main.interrupt() {
			return
		}

		// Collect candidates: main's head, each shard's head or parked
		// delivery, and the earliest pending delivery on its own.
		mainKey := inf
		if t, q, ok := c.main.Peek(); ok {
			mainKey = Bound{Time: t, Seq: q}
		}
		best := hB
		var bestShard *Shard
		minDeliv := inf
		for _, s := range c.shards {
			k, ok := s.candidate()
			if !ok {
				continue
			}
			if s.state == stateDelivery && k.beforeBound(&minDeliv) {
				minDeliv = k
			}
			if k.beforeBound(&best) {
				best, bestShard = k, s
			}
		}

		switch {
		case mainKey.beforeBound(&best):
			// Main holds the globally earliest event: run a main batch
			// bounded by everything else, tightening the bound live as
			// main-side events schedule new member work (Exit folds).
			pb := best
			if minDeliv.beforeBound(&pb) {
				pb = minDeliv
			}
			for _, s := range c.shards {
				if s.state != stateIdle {
					continue
				}
				if t, q, ok := s.eng.Peek(); ok && pb.before(t, q) {
					pb = Bound{Time: t, Seq: q}
				}
			}
			c.pbBound = &pb
			ok := c.main.RunBound(&pb)
			c.pbBound = nil
			if !ok {
				return
			}
		case bestShard == nil:
			// Nothing below the horizon anywhere: done.
			if advance {
				c.main.AdvanceTo(horizon)
			}
			return
		case bestShard.state == stateDelivery:
			// The globally earliest pending work is a parked member
			// completion: commit it on main, then let that member run
			// on (it finishes the parked event — dispatching its next
			// queued request — and continues up to a fresh conservative
			// bound) while this goroutine waits. The bound is computed
			// after the commit: the callback may have scheduled new
			// events anywhere, and the member may only run while its
			// range is below all of them.
			s := bestShard
			c.commit(s)
			b := c.memberBound(s, &hB)
			s.b = b
			s.state = stateIdle
			s.resume <- struct{}{}
			msg := <-s.parked
			if msg.delivery {
				s.state = stateDelivery
				s.park = msg
			}
		default:
			// The globally earliest event is member-internal: run that
			// member up to the next candidate anywhere else. Only the
			// globally minimal member can run — any other member's head
			// event may complete a request whose callback (on main)
			// reaches back into further members, so running past it
			// would let state diverge from the single-engine order.
			s := bestShard
			s.b = c.memberBound(s, &hB)
			s.cmd <- struct{}{}
			msg := <-s.parked
			if msg.delivery {
				s.state = stateDelivery
				s.park = msg
			}
		}
	}
}

// Dispatched returns the total number of events fired across the main
// and member engines — the same count a single shared engine would
// report for the same program.
func (c *Coordinator) Dispatched() int64 {
	n := c.main.Dispatched()
	for _, s := range c.shards {
		n += s.eng.Dispatched()
	}
	return n
}

// Close shuts the coordinator down: parked deliveries are dropped,
// workers unwound and joined. The volume calls it when an experiment
// ends (including cancellation); a closed coordinator's Run/RunUntil
// return immediately.
func (c *Coordinator) Close() {
	if c.dead.Swap(true) {
		return
	}
	for _, s := range c.shards {
		if s.state == stateDelivery {
			s.resume <- struct{}{}
			<-s.parked
			s.state = stateIdle
		}
		close(s.cmd)
	}
	c.wg.Wait()
}
