package sim

import (
	"fmt"
	"strings"
	"testing"
)

// This file checks the production engine against a deliberately naive
// reference implementation: a sorted-slice queue whose correctness is
// obvious by inspection. Randomly generated event programs — At/After
// scheduling (with deliberate ties on time), Every tickers, cancels
// (before the first fire, inside the callback, and doubled), Stop, and
// the interrupt hook — run on both engines; the full dispatch trace
// (which event fired at which clock reading, plus queue depth and
// dispatch count at every observation point) must match byte for byte.
// A failing seed is logged so the exact program can be replayed.

// engineAPI is the surface both implementations expose to a program.
type engineAPI interface {
	Now() float64
	At(t float64, fn func())
	After(d float64, fn func())
	Every(period float64, fn func()) (cancel func())
	Stop()
	SetInterrupt(fn func() bool)
	Run()
	RunUntil(t float64)
	Pending() int
	Dispatched() int64
}

var _ engineAPI = (*Engine)(nil)
var _ engineAPI = (*refEngine)(nil)

// refEngine is the reference: events live in a slice kept sorted by
// (time, seq) with a stable insertion, and pop is "take element 0".
// Everything about it favours obviousness over speed.
type refEngine struct {
	now       float64
	seq       int64
	events    []refEvent
	stopped   bool
	interrupt func() bool
	dispatch  int64
}

type refEvent struct {
	time float64
	seq  int64
	fn   func()
}

func newRefEngine() *refEngine { return &refEngine{} }

func (e *refEngine) Now() float64 { return e.now }

func (e *refEngine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := refEvent{time: t, seq: e.seq, fn: fn}
	// Insert before the first strictly-later event: equal times keep
	// scheduling order because the new event has the largest seq.
	i := len(e.events)
	for i > 0 {
		p := e.events[i-1]
		if p.time < ev.time || (p.time == ev.time && p.seq < ev.seq) {
			break
		}
		i--
	}
	e.events = append(e.events, refEvent{})
	copy(e.events[i+1:], e.events[i:])
	e.events[i] = ev
}

func (e *refEngine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// refTicker mirrors the production ticker's cancel semantics: cancel is
// effective immediately, including from inside fn (no re-arm), and an
// already-queued tick fires as a no-op.
type refTicker struct {
	eng     *refEngine
	period  float64
	fn      func()
	stopped bool
}

func (t *refTicker) tick() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped {
		return
	}
	t.eng.After(t.period, t.tick)
}

func (e *refEngine) Every(period float64, fn func()) (cancel func()) {
	t := &refTicker{eng: e, period: period, fn: fn}
	e.After(period, t.tick)
	return func() { t.stopped = true }
}

func (e *refEngine) Stop() { e.stopped = true }

func (e *refEngine) SetInterrupt(fn func() bool) { e.interrupt = fn }

func (e *refEngine) Pending() int { return len(e.events) }

func (e *refEngine) Dispatched() int64 { return e.dispatch }

// interrupted matches the production engine's polling contract: the
// hook is consulted every interruptStride dispatches, not on each one.
func (e *refEngine) interrupted() bool {
	e.dispatch++
	return e.dispatch%interruptStride == 0 && e.interrupt != nil && e.interrupt()
}

func (e *refEngine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		e.events = e.events[1:]
		e.now = ev.time
		ev.fn()
		if e.interrupted() {
			break
		}
	}
}

func (e *refEngine) RunUntil(t float64) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].time > t {
			break
		}
		ev := e.events[0]
		e.events = e.events[1:]
		e.now = ev.time
		ev.fn()
		if e.interrupted() {
			return
		}
	}
	if e.stopped {
		return
	}
	if e.now < t {
		e.now = t
	}
}

// script interprets one randomly generated event program against an
// engine, appending every observable (fires, clock readings, queue
// depths, dispatch counts) to a trace. Identical engine behaviour means
// identical RNG draw order, which means identical traces; the first
// divergence in firing order snowballs into a trace mismatch.
type script struct {
	rnd    *Rand
	trace  strings.Builder
	nextID int
	budget int // scheduling decisions left; bounds the program
	lives  []func()
}

func (s *script) id() int { s.nextID++; return s.nextID }

// fire records one event dispatch and then lets the program react —
// events scheduling further events is where ordering bugs live.
func (s *script) fire(e engineAPI, id int) {
	fmt.Fprintf(&s.trace, "%d@%g;", id, e.Now())
	s.act(e)
}

// act makes one random scheduling decision from inside a callback.
func (s *script) act(e engineAPI) {
	if s.budget <= 0 {
		return
	}
	s.budget--
	switch s.rnd.Intn(8) {
	case 0, 1: // At, on a coarse grid so ties are common
		id := s.id()
		t := e.Now() + float64(s.rnd.Intn(6))
		e.At(t, func() { s.fire(e, id) })
	case 2, 3: // After, including zero delay (fires "now", after peers)
		id := s.id()
		e.After(float64(s.rnd.Intn(5)), func() { s.fire(e, id) })
	case 4: // start a ticker; keep its cancel for later
		id := s.id()
		cancel := e.Every(1+float64(s.rnd.Intn(4)), func() { s.fire(e, id) })
		s.lives = append(s.lives, cancel)
	case 5: // cancel a live ticker, sometimes twice (double-cancel)
		if len(s.lives) > 0 {
			i := s.rnd.Intn(len(s.lives))
			s.lives[i]()
			if s.rnd.Bool(0.3) {
				s.lives[i]()
			}
		}
	case 6: // halt the current run segment mid-flight
		if s.rnd.Bool(0.2) {
			e.Stop()
		}
	case 7: // nothing
	}
}

// runProgram executes the program for the given seed and returns its
// trace.
func runProgram(e engineAPI, seed uint64) string {
	s := &script{rnd: NewRand(seed), budget: 120}
	// Seed the queue: a burst of events on a coarse time grid (ties
	// guaranteed) plus a couple of tickers, one cancelled before its
	// first fire.
	n := 4 + s.rnd.Intn(8)
	for i := 0; i < n; i++ {
		id := s.id()
		e.At(float64(s.rnd.Intn(8)), func() { s.fire(e, id) })
	}
	for i := 0; i < 2; i++ {
		id := s.id()
		cancel := e.Every(1+float64(s.rnd.Intn(4)), func() { s.fire(e, id) })
		s.lives = append(s.lives, cancel)
	}
	if s.rnd.Bool(0.5) {
		s.lives[0]() // cancel before first fire: the queued tick no-ops
	}
	// Drive the program in segments, observing the clock and queue
	// between them; a Stop inside a segment leaves the remainder for
	// the next RunUntil, which both engines must agree on.
	for seg := 0; seg < 5; seg++ {
		horizon := e.Now() + float64(1+s.rnd.Intn(25))
		e.RunUntil(horizon)
		fmt.Fprintf(&s.trace, "|%g:now=%g,pend=%d,disp=%d;",
			horizon, e.Now(), e.Pending(), e.Dispatched())
		if len(s.lives) > 0 && s.rnd.Bool(0.4) {
			s.lives[s.rnd.Intn(len(s.lives))]()
		}
	}
	// Cancel everything recurring, stop the program making new ones,
	// and drain. (Without both, a ticker started during the drain
	// itself would re-arm forever and Run would never return.)
	s.budget = 0
	for _, cancel := range s.lives {
		cancel()
	}
	e.Run()
	fmt.Fprintf(&s.trace, "|end:now=%g,pend=%d,disp=%d", e.Now(), e.Pending(), e.Dispatched())
	return s.trace.String()
}

func TestEngineMatchesReference(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	const base = uint64(0x9e3779b97f4a7c15)
	for i := 0; i < iters; i++ {
		seed := base + uint64(i)*0xbf58476d1ce4e5b9
		got := runProgram(NewEngine(), seed)
		want := runProgram(newRefEngine(), seed)
		if got != want {
			t.Fatalf("seed %#x: engine trace diverges from reference\nengine:    %s\nreference: %s",
				seed, got, want)
		}
	}
}

// TestEngineMatchesReferenceInterrupt exercises the interrupt hook,
// which both implementations poll every interruptStride dispatches: a
// program big enough to cross several stride boundaries, with a hook
// that trips partway through, must leave both engines at the same
// clock, dispatch count, and queue depth.
func TestEngineMatchesReferenceInterrupt(t *testing.T) {
	run := func(e engineAPI) string {
		var trace strings.Builder
		fired := 0
		var chain func()
		chain = func() {
			fired++
			if fired < 3*interruptStride {
				e.After(1, chain)
			}
		}
		// A self-extending chain plus a standing burst, so the queue is
		// never empty when the hook trips.
		e.After(1, chain)
		for i := 0; i < 100; i++ {
			e.At(float64(4*interruptStride+i), func() {})
		}
		e.SetInterrupt(func() bool { return e.Dispatched() >= interruptStride })
		e.Run()
		fmt.Fprintf(&trace, "stop:now=%g,pend=%d,disp=%d;", e.Now(), e.Pending(), e.Dispatched())
		// Clearing the hook and resuming drains the rest.
		e.SetInterrupt(nil)
		e.Run()
		fmt.Fprintf(&trace, "end:now=%g,pend=%d,disp=%d", e.Now(), e.Pending(), e.Dispatched())
		return trace.String()
	}
	got := run(NewEngine())
	want := run(newRefEngine())
	if got != want {
		t.Fatalf("interrupt trace diverges\nengine:    %s\nreference: %s", got, want)
	}
}
