package sim

import "testing"

// Allocation regression tests: the whole point of the inlined heap and
// the Caller variant is that steady-state scheduling stays off the
// garbage collector's books. These assertions keep container/heap-style
// interface boxing from silently returning.

// warmEngine returns an engine whose heap backing array has already
// grown past what the test will push, so append never reallocates.
func warmEngine() *Engine {
	e := NewEngine()
	for i := 0; i < 256; i++ {
		e.After(1, func() {})
	}
	e.Run()
	return e
}

func TestAfterSteadyStateZeroAllocs(t *testing.T) {
	e := warmEngine()
	fn := func() {}
	if n := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.RunUntil(e.Now() + 2)
	}); n != 0 {
		t.Errorf("steady-state After: %v allocs per event, want 0", n)
	}
}

func TestAtSteadyStateZeroAllocs(t *testing.T) {
	e := warmEngine()
	fn := func() {}
	if n := testing.AllocsPerRun(1000, func() {
		e.At(e.Now()+1, fn)
		e.RunUntil(e.Now() + 2)
	}); n != 0 {
		t.Errorf("steady-state At: %v allocs per event, want 0", n)
	}
}

// callCounter is a minimal long-lived Caller, standing in for a pooled
// request record.
type callCounter struct{ n int }

func (c *callCounter) Call() { c.n++ }

func TestAfterCallSteadyStateZeroAllocs(t *testing.T) {
	e := warmEngine()
	c := &callCounter{}
	if n := testing.AllocsPerRun(1000, func() {
		e.AfterCall(1, c)
		e.RunUntil(e.Now() + 2)
	}); n != 0 {
		t.Errorf("steady-state AfterCall: %v allocs per event, want 0", n)
	}
	if c.n == 0 {
		t.Fatal("Caller never fired")
	}
}

func TestEverySteadyStateZeroAllocs(t *testing.T) {
	e := warmEngine()
	ticks := 0
	cancel := e.Every(1, func() { ticks++ })
	defer cancel()
	e.RunUntil(e.Now() + 10) // past the first re-arm
	if n := testing.AllocsPerRun(1000, func() {
		e.RunUntil(e.Now() + 1)
	}); n != 0 {
		t.Errorf("steady-state Every tick: %v allocs per tick, want 0", n)
	}
	if ticks < 10 {
		t.Fatalf("ticker only fired %d times", ticks)
	}
}

func BenchmarkAfterRunUntil(b *testing.B) {
	e := warmEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.RunUntil(e.Now() + 2)
	}
}

// BenchmarkHeapChurn measures raw queue throughput: a standing
// population of events each rescheduling themselves, the shape the
// driver's phase chains and workload arrivals produce.
func BenchmarkHeapChurn(b *testing.B) {
	e := NewEngine()
	const population = 1024
	rnd := NewRand(1)
	var self func()
	n := 0
	self = func() {
		n++
		if n < b.N {
			e.After(rnd.Exp(5), self)
		}
	}
	for i := 0; i < population; i++ {
		e.After(rnd.Exp(5), self)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
