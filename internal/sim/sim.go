// Package sim provides the discrete-event simulation core used to drive
// the disk, driver, file system and workload models: an event queue with
// a simulated clock, and a deterministic pseudo-random number generator
// with the variate generators the workloads need.
//
// All simulated times are float64 milliseconds, matching the units of
// the paper's measurements.
//
// The event queue is engineered for the hot path: an inlined 4-ary
// min-heap over a reusable backing slice (no container/heap, so no
// per-Push boxing of events into interface values), and a Caller-based
// scheduling variant (AtCall/AfterCall) that lets long-lived request
// records schedule their own completion without allocating a closure
// per event. Steady-state scheduling performs zero allocations.
package sim

import "sync/atomic"

// Caller is a pre-allocated event callback: scheduling a Caller with
// AtCall/AfterCall stores only its interface value in the queue, so a
// long-lived object (a pooled request record, a ticker) can schedule
// events with no per-event allocation, where an equivalent closure
// would allocate on every schedule.
type Caller interface {
	// Call runs the event.
	Call()
}

// event is one queued entry. Exactly one of fn and call is set; events
// with equal times fire in scheduling (seq) order, which is what makes
// simulations deterministic and byte-for-bit reproducible.
type event struct {
	time float64
	seq  int64
	fn   func()
	call Caller
}

// Engine is a discrete-event simulator. Events scheduled at the same
// time fire in scheduling order.
type Engine struct {
	now       float64
	seq       int64
	curSeq    int64
	seqSrc    *atomic.Int64 // non-nil: draw seqs from a shared counter
	heap      []event       // 4-ary min-heap ordered by (time, seq)
	stopped   bool
	interrupt func() bool
	dispatch  int64
}

// interruptStride is how many events fire between interrupt polls: large
// enough that polling cost is negligible, small enough that a cancelled
// run stops within a fraction of a simulated day.
const interruptStride = 4096

// heapArity is the fan-out of the event heap. A 4-ary heap does ~half
// the levels of a binary heap on sift-down (the pop-heavy operation
// here), and keeps siblings in adjacent cache lines.
const heapArity = 4

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// push inserts ev into the heap, sifting it up to its position. The
// backing slice is reused across pops, so steady-state pushes do not
// allocate.
func (e *Engine) push(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !less(&h[i], &h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// pop removes and returns the earliest event.
func (e *Engine) pop() event {
	h := e.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release fn/call for the GC
	h = h[:n]
	e.heap = h
	// Sift the relocated root down.
	i := 0
	for {
		first := i*heapArity + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(&h[c], &h[min]) {
				min = c
			}
		}
		if !less(&h[min], &h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// less orders events by time, breaking ties by scheduling order.
func less(a, b *event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// schedule clamps t to the present, stamps the event, and enqueues it.
func (e *Engine) schedule(t float64, fn func(), call Caller) {
	if t < e.now {
		t = e.now
	}
	var s int64
	if e.seqSrc != nil {
		s = e.seqSrc.Add(1)
	} else {
		e.seq++
		s = e.seq
	}
	e.push(event{time: t, seq: s, fn: fn, call: call})
}

// ShareSeq switches the engine to draw event sequence numbers from src,
// a counter shared with other engines. Executing the merged event
// streams of the sharing engines in (time, seq) order then reproduces
// the scheduling order a single engine would have produced, which is
// what makes sharded simulations byte-identical to unsharded ones. Any
// sequence numbers the engine already consumed locally are folded into
// src so numbers never repeat. A nil seqSrc (the default) keeps the
// private counter with no atomic on the scheduling hot path.
func (e *Engine) ShareSeq(src *atomic.Int64) {
	for {
		cur := src.Load()
		if e.seq <= cur || src.CompareAndSwap(cur, e.seq) {
			break
		}
	}
	e.seqSrc = src
}

// Peek returns the (time, seq) key of the earliest queued event without
// firing it, and ok=false when the queue is empty. The shard
// coordinator uses it to compute conservative execution bounds.
func (e *Engine) Peek() (t float64, seq int64, ok bool) {
	if len(e.heap) == 0 {
		return 0, 0, false
	}
	return e.heap[0].time, e.heap[0].seq, true
}

// FiringSeq returns the sequence number of the event currently being
// fired (valid only from inside an event callback). Cross-engine
// deliveries are stamped with it so the merged execution order
// preserves the (time, seq) order of a single engine.
func (e *Engine) FiringSeq() int64 { return e.curSeq }

// AdvanceTo moves the clock forward to t without firing any events; a
// t in the past is a no-op. The shard coordinator uses it to keep the
// fan-in engine's clock on the merged timeline as member completions
// commit.
func (e *Engine) AdvanceTo(t float64) {
	if t > e.now {
		e.now = t
	}
}

// Bound is an exclusive execution limit for RunBound, ordered like
// events: an event fires only while its (time, seq) key is strictly
// below the bound. {T, math.MaxInt64} therefore admits every event
// with time ≤ T, matching RunUntil's inclusive horizon.
type Bound struct {
	Time float64
	Seq  int64
}

// before reports whether key (t, s) is strictly below the bound.
func (b *Bound) before(t float64, s int64) bool {
	if t != b.Time {
		return t < b.Time
	}
	return s < b.Seq
}

// beforeBound reports whether bound a is strictly below bound b.
func (a *Bound) beforeBound(b *Bound) bool { return b.before(a.Time, a.Seq) }

// RunBound executes events whose (time, seq) key is strictly below *b,
// re-reading the bound before every event so a callback (or code it
// calls synchronously) may tighten it mid-run. Unlike RunUntil it never
// advances the clock beyond the last fired event: the caller owns the
// final clock position. It returns false when a Stop or interrupt
// halted the run early.
func (e *Engine) RunBound(b *Bound) bool {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if !b.before(e.heap[0].time, e.heap[0].seq) {
			break
		}
		ev := e.pop()
		e.now = ev.time
		e.curSeq = ev.seq
		ev.fire()
		if e.interrupted() {
			return false
		}
	}
	return !e.stopped
}

// At schedules fn to run at absolute time t. Scheduling in the past runs
// the event at the current time.
func (e *Engine) At(t float64, fn func()) { e.schedule(t, fn, nil) }

// After schedules fn to run d milliseconds from now.
func (e *Engine) After(d float64, fn func()) { e.schedule(e.now+d, fn, nil) }

// AtCall schedules c.Call to run at absolute time t. It is the
// allocation-free variant of At: the queue stores c's interface value
// directly, so callers holding a long-lived record (a pooled request, a
// daemon) schedule with zero allocations.
func (e *Engine) AtCall(t float64, c Caller) { e.schedule(t, nil, c) }

// AfterCall schedules c.Call to run d milliseconds from now.
func (e *Engine) AfterCall(d float64, c Caller) { e.schedule(e.now+d, nil, c) }

// Every schedules fn to run every period milliseconds, first at
// now+period, until the returned cancel function is called. Periodic
// observers (the telemetry sampler, daemons in tests) use it; the
// recurring event keeps the queue non-empty, so drive the engine with
// RunUntil horizons rather than a bare Run.
//
// Cancel is effective immediately, wherever it is called from: a ticker
// cancelled from inside its own callback does not re-arm, so the queue
// holds no dead tick afterwards.
func (e *Engine) Every(period float64, fn func()) (cancel func()) {
	t := &ticker{eng: e, period: period, fn: fn}
	e.AfterCall(period, t)
	return t.stop
}

// ticker is the reusable event record behind Every: one allocation per
// ticker, zero per tick.
type ticker struct {
	eng     *Engine
	period  float64
	fn      func()
	stopped bool
}

// Call implements Caller: run the callback, then re-arm — unless the
// ticker was cancelled, including by the callback itself (the re-check
// after fn is what drops the pending re-arm on cancel-inside-callback).
func (t *ticker) Call() {
	if t.stopped {
		return
	}
	t.fn()
	if t.stopped {
		return
	}
	t.eng.AfterCall(t.period, t)
}

func (t *ticker) stop() { t.stopped = true }

// Dispatched returns the number of events fired since the engine was
// created — the per-job event counter surfaced by harness telemetry.
func (e *Engine) Dispatched() int64 { return e.dispatch }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.heap) }

// SetInterrupt installs fn, polled periodically during Run and RunUntil
// (every few thousand events). When fn returns true the running loop
// halts as if Stop had been called: the clock stays at the last fired
// event and queued events are retained, so the caller can observe a
// cancelled simulation's partial state. A nil fn removes the hook.
func (e *Engine) SetInterrupt(fn func() bool) { e.interrupt = fn }

// interrupted polls the interrupt hook at interruptStride boundaries.
func (e *Engine) interrupted() bool {
	e.dispatch++
	return e.dispatch%interruptStride == 0 && e.interrupt != nil && e.interrupt()
}

// fire dispatches one popped event.
func (ev *event) fire() {
	if ev.call != nil {
		ev.call.Call()
		return
	}
	ev.fn()
}

// Run executes events until the queue is empty, Stop is called, or the
// interrupt hook fires.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		ev := e.pop()
		e.now = ev.time
		e.curSeq = ev.seq
		ev.fire()
		if e.interrupted() {
			break
		}
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled beyond t remain queued. A Stop or interrupt leaves
// the clock at the last fired event rather than advancing it to t.
func (e *Engine) RunUntil(t float64) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].time > t {
			break
		}
		ev := e.pop()
		e.now = ev.time
		e.curSeq = ev.seq
		ev.fire()
		if e.interrupted() {
			return
		}
	}
	if e.stopped {
		return
	}
	if e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event completes. Queued
// events are retained.
func (e *Engine) Stop() { e.stopped = true }
