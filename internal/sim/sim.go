// Package sim provides the discrete-event simulation core used to drive
// the disk, driver, file system and workload models: an event queue with
// a simulated clock, and a deterministic pseudo-random number generator
// with the variate generators the workloads need.
//
// All simulated times are float64 milliseconds, matching the units of
// the paper's measurements.
package sim

import "container/heap"

// Engine is a discrete-event simulator. Events scheduled at the same
// time fire in scheduling order.
type Engine struct {
	now       float64
	seq       int64
	events    eventHeap
	stopped   bool
	interrupt func() bool
	dispatch  int64
}

// interruptStride is how many events fire between interrupt polls: large
// enough that polling cost is negligible, small enough that a cancelled
// run stops within a fraction of a simulated day.
const interruptStride = 4096

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// At schedules fn to run at absolute time t. Scheduling in the past runs
// the event at the current time.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.events, event{time: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d milliseconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Every schedules fn to run every period milliseconds, first at
// now+period, until the returned cancel function is called. Periodic
// observers (the telemetry sampler, daemons in tests) use it; the
// recurring event keeps the queue non-empty, so drive the engine with
// RunUntil horizons rather than a bare Run.
func (e *Engine) Every(period float64, fn func()) (cancel func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		e.After(period, tick)
	}
	e.After(period, tick)
	return func() { stopped = true }
}

// Dispatched returns the number of events fired since the engine was
// created — the per-job event counter surfaced by harness telemetry.
func (e *Engine) Dispatched() int64 { return e.dispatch }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return e.events.Len() }

// SetInterrupt installs fn, polled periodically during Run and RunUntil
// (every few thousand events). When fn returns true the running loop
// halts as if Stop had been called: the clock stays at the last fired
// event and queued events are retained, so the caller can observe a
// cancelled simulation's partial state. A nil fn removes the hook.
func (e *Engine) SetInterrupt(fn func() bool) { e.interrupt = fn }

// interrupted polls the interrupt hook at interruptStride boundaries.
func (e *Engine) interrupted() bool {
	e.dispatch++
	return e.dispatch%interruptStride == 0 && e.interrupt != nil && e.interrupt()
}

// Run executes events until the queue is empty, Stop is called, or the
// interrupt hook fires.
func (e *Engine) Run() {
	e.stopped = false
	for e.events.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.time
		ev.fn()
		if e.interrupted() {
			break
		}
	}
}

// RunUntil executes events with time ≤ t, then advances the clock to t.
// Events scheduled beyond t remain queued. A Stop or interrupt leaves
// the clock at the last fired event rather than advancing it to t.
func (e *Engine) RunUntil(t float64) {
	e.stopped = false
	for e.events.Len() > 0 && !e.stopped {
		if e.events[0].time > t {
			break
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.time
		ev.fn()
		if e.interrupted() {
			return
		}
	}
	if e.stopped {
		return
	}
	if e.now < t {
		e.now = t
	}
}

// Stop halts Run/RunUntil after the current event completes. Queued
// events are retained.
func (e *Engine) Stop() { e.stopped = true }

type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
