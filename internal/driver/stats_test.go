package driver

import (
	"math"
	"testing"

	"repro/internal/disk"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/seek"
	"repro/internal/sim"
)

// TestFCFSDistUsesOriginalAddresses checks the key measurement property
// behind Table 3's highlighted rows: the arrival-order distribution must
// reflect the seeks FCFS service would have produced *without* block
// rearrangement, so it barely changes when blocks are rearranged, while
// the scheduled-order distribution collapses.
func TestFCFSDistUsesOriginalAddresses(t *testing.T) {
	eng, _, drv := newRig(t)
	// Two far-apart hot blocks, alternating.
	measure := func() (fcfs, sched float64) {
		drv.ReadStats()
		for i := 0; i < 200; i++ {
			blk := int64(100)
			if i%2 == 1 {
				blk = 15000
			}
			drv.ReadBlock(0, blk, nil)
		}
		eng.Run()
		st := drv.ReadStats().All()
		return st.FCFSDist.MeanDist(), st.SchedDist.MeanDist()
	}
	fcfsBefore, _ := measure()

	// Rearrange both blocks into the reserved region.
	p, _ := drv.Label().Partition(0)
	slots := drv.ReservedSlots()
	for i, blk := range []int64{100, 15000} {
		orig := drv.Label().MapVirtual(p.Start + blk*16)
		var cerr error
		drv.BCopy(orig, slots[0][i], func(err error) { cerr = err })
		eng.Run()
		if cerr != nil {
			t.Fatal(cerr)
		}
	}
	fcfsAfter, schedAfter := measure()

	if math.Abs(fcfsAfter-fcfsBefore) > 1 {
		t.Errorf("FCFS distance changed with rearrangement: %.1f -> %.1f", fcfsBefore, fcfsAfter)
	}
	if schedAfter > 1 {
		t.Errorf("scheduled distance %.1f after rearranging both blocks onto one cylinder", schedAfter)
	}
}

// TestSeekTimeFromDistribution verifies the paper's methodology: the
// reported seek time equals the seek curve applied to the measured
// distance distribution.
func TestSeekTimeFromDistribution(t *testing.T) {
	eng, _, drv := newRig(t)
	for i := 0; i < 50; i++ {
		drv.ReadBlock(0, int64(i%7)*2000, nil)
	}
	eng.Run()
	side := drv.ReadStats().All()
	curve := seek.ToshibaMK156F
	want := seek.MeanMS(curve, side.SchedDist.Histogram())
	if got := side.MeanSeekMS(curve); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanSeekMS = %v, want %v", got, want)
	}
}

// TestRotTransferAccounting checks Table 10's metric: cumulative
// rotational + transfer time divided by request count.
func TestRotTransferAccounting(t *testing.T) {
	eng, _, drv := newRig(t)
	for i := int64(0); i < 30; i++ {
		drv.ReadBlock(0, i*321, nil)
	}
	eng.Run()
	side := drv.ReadStats().All()
	rt := side.MeanRotTransferMS()
	// 8K at 34 sectors/track: transfer alone is ~7.8 ms; rotation adds
	// up to one revolution (16.67 ms).
	if rt < 7 || rt > 27 {
		t.Errorf("mean rot+transfer = %.2f ms, implausible", rt)
	}
	// Empty side reports zero.
	if (&Side{Service: drv.PeekStats().ReadSide.Service}).MeanRotTransferMS() != 0 {
		t.Error("empty side should report 0")
	}
}

// TestBufferHitsCounted verifies the Fujitsu track buffer shows up in
// the driver statistics.
func TestBufferHitsCounted(t *testing.T) {
	eng := sim.NewEngine()
	dsk := disk.MustNew(disk.Fujitsu())
	firstCyl, err := label.AlignedFirstCyl(dsk.Geom(), 16, (dsk.Geom().Cylinders-80)/2)
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := label.NewRearrangedAt("fuji", dsk.Geom(), firstCyl, 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lbl.AddPartition(16, 1600000, label.TagFS); err != nil {
		t.Fatal(err)
	}
	if err := InitDisk(dsk, lbl, geom.Block8K); err != nil {
		t.Fatal(err)
	}
	drv, err := Attach(eng, dsk, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential reads with idle gaps: read-ahead hits.
	var issue func(blk int64)
	issue = func(blk int64) {
		if blk == 20 {
			return
		}
		drv.ReadBlock(0, blk, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("read %d: %v", blk, err)
			}
			eng.After(30, func() { issue(blk + 1) })
		})
	}
	issue(0)
	eng.Run()
	st := drv.ReadStats()
	if st.ReadSide.BufferHits == 0 {
		t.Error("no buffer hits recorded for sequential reads on the Fujitsu")
	}
	if st.ReadSide.BufferHits >= st.ReadSide.Count() {
		t.Error("every read was a buffer hit, including the first")
	}
}

// TestRedirectedCounter verifies the redirect statistics used by the
// experiment diagnostics.
func TestRedirectedCounter(t *testing.T) {
	eng, _, drv := newRig(t)
	p, _ := drv.Label().Partition(0)
	drv.WriteBlock(0, 10, blockOf(1), nil)
	eng.Run()
	orig := drv.Label().MapVirtual(p.Start + 10*16)
	drv.BCopy(orig, drv.ReservedSlots()[0][0], nil)
	eng.Run()
	drv.ReadStats()

	drv.ReadBlock(0, 10, nil) // redirected
	drv.ReadBlock(0, 20, nil) // not
	drv.WriteBlock(0, 10, blockOf(2), nil)
	eng.Run()
	st := drv.ReadStats()
	if st.ReadSide.Redirected != 1 {
		t.Errorf("read redirects = %d", st.ReadSide.Redirected)
	}
	if st.WriteSide.Redirected != 1 {
		t.Errorf("write redirects = %d", st.WriteSide.Redirected)
	}
	if st.All().Redirected != 2 {
		t.Errorf("total redirects = %d", st.All().Redirected)
	}
}

// TestQueueingVsServiceWindows verifies the paper's definitions: the
// queueing time is arrival to dispatch; the service time is dispatch to
// completion; both are recorded per request.
func TestQueueingVsServiceWindows(t *testing.T) {
	eng, _, drv := newRig(t)
	// Two simultaneous requests: the first has zero queueing; the second
	// queues for exactly the first one's service time.
	var svc1, wait2 float64
	start := eng.Now()
	drv.ReadBlock(0, 1000, func(_ []byte, err error) { svc1 = eng.Now() - start })
	drv.ReadBlock(0, 15000, nil)
	eng.Run()
	st := drv.ReadStats()
	if st.ReadSide.Count() != 2 {
		t.Fatalf("%d requests", st.ReadSide.Count())
	}
	wait2 = st.ReadSide.Queueing.SumMS() // first waited 0
	if math.Abs(wait2-svc1) > 1e-6 {
		t.Errorf("second request waited %.3f ms, want first's service %.3f ms", wait2, svc1)
	}
}

// TestStatsHistogramResolution verifies the 1 ms bucketing with
// full-resolution means of Section 4.1.5.
func TestStatsHistogramResolution(t *testing.T) {
	eng, _, drv := newRig(t)
	for i := int64(0); i < 10; i++ {
		drv.ReadBlock(0, i*137, nil)
	}
	eng.Run()
	svc := drv.ReadStats().ReadSide.Service
	cdf := svc.CDF()
	if len(cdf) == 0 {
		t.Fatal("no CDF")
	}
	// Bucket boundaries are integral milliseconds.
	for _, pt := range cdf[:3] {
		if pt.X != math.Trunc(pt.X) {
			t.Errorf("bucket boundary %v not integral", pt.X)
		}
	}
}
