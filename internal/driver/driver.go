// Package driver implements the modified SCSI disk driver of Sections 3.2
// and 4.1 of "Adaptive Block Rearrangement Under UNIX".
//
// The driver sits between the file system and the disk model. Its
// strategy routine converts logical (partition-relative) block addresses
// to physical sector addresses, applies the virtual-disk mapping that
// hides the reserved cylinders, consults the block table to redirect
// requests for rearranged blocks, and enqueues the operation on the
// device queue. Queued operations are dispatched by a head-scheduling
// policy (SCAN by default, as in SunOS) and serviced one at a time by
// the disk model; completions fire in simulated time.
//
// The driver also provides the kernel entry points of Section 4.1.3–4.1.5:
//
//   - BCopy and Clean, the DKIOCBCOPY/DKIOCCLEAN ioctls used by the
//     user-level block arranger to move blocks into and out of the
//     reserved region;
//   - a request-monitoring table that records the original address and
//     size of every request, drained periodically by the reference
//     stream analyzer;
//   - performance monitoring: seek-distance distributions in arrival
//     and scheduled order, and service- and queueing-time distributions,
//     kept separately for reads and writes.
package driver

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/blocktable"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Config carries driver tunables.
type Config struct {
	// Sched is the head-scheduling policy; nil selects SCAN.
	Sched sched.Scheduler
	// BlockSize is the file system block size; zero selects 8 KB.
	BlockSize geom.BlockSize
	// RequestTableSize caps the request-monitoring table; when the table
	// fills before being read, recording is suspended (Section 4.1.4).
	// Zero selects 65536 entries.
	RequestTableSize int
	// HistMaxMS is the bucket range of the time histograms in
	// milliseconds; zero selects 4000.
	HistMaxMS int
	// Faults, when non-nil, is the fault injector shared with the disk.
	// Attaching it switches the driver into fault-tolerant mode: retries
	// with backoff, bad-block remapping, and crash-safe dual-slot block
	// table writes.
	Faults *fault.Injector
	// MaxRetries bounds re-issues of a transiently failing operation;
	// zero selects 3.
	MaxRetries int
	// RetryBaseMS is the first retry backoff in simulated milliseconds;
	// each further attempt doubles it. Zero selects 2 ms.
	RetryBaseMS float64
}

func (c Config) withDefaults() Config {
	if c.Sched == nil {
		c.Sched = sched.NewSCAN()
	}
	if c.BlockSize == 0 {
		c.BlockSize = geom.Block8K
	}
	if c.RequestTableSize == 0 {
		c.RequestTableSize = 65536
	}
	if c.HistMaxMS == 0 {
		c.HistMaxMS = 4000
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBaseMS == 0 {
		c.RetryBaseMS = 2.0
	}
	return c
}

// Errors returned by driver entry points.
var (
	ErrNotRearranged = errors.New("driver: disk is not initialized for rearrangement")
	ErrBadBlock      = errors.New("driver: block address out of range")
	ErrNotAligned    = errors.New("driver: address not block-aligned")
)

// ErrDead is delivered to requests issued after the simulated power
// loss. It unwraps to fault.ErrCrash.
var ErrDead = fmt.Errorf("driver: device is dead: %w", fault.ErrCrash)

// DoneFunc is the completion callback of an asynchronous request. For
// reads, data holds the returned bytes; for writes data is nil.
type DoneFunc func(data []byte, err error)

// ioreq is one queued device operation. Records are pooled: the
// completion path returns them to the driver's free list, so the
// per-request strategy path allocates nothing in steady state. An ioreq
// is also its own completion event (sim.Caller), replacing the closure
// the driver used to allocate per service attempt.
type ioreq struct {
	d          *Driver // owner; set at enqueue, used by Call
	write      bool
	internal   bool  // driver-generated (block movement, table writes)
	redirected bool  // sent to the reserved region by the block table
	orig       int64 // pre-redirect physical sector (monitoring identity)
	sector     int64 // post-redirect physical target sector
	count      int   // sectors
	qdepth     int   // operations ahead of this one at queue entry
	attempt    int   // service attempts so far (fault retries)
	phase      string
	data       []byte
	arriveMS   float64
	dispatchMS float64 // first queue exit; retries keep the original
	cyl        int
	done       DoneFunc

	// Completion-interrupt payload, filled by issue for Call.
	rdata  []byte
	timing disk.Timing
}

// Cylinder implements sched.Cylindered.
func (r *ioreq) Cylinder() int { return r.cyl }

// Call implements sim.Caller: the completion interrupt of the in-flight
// service attempt recorded by issue.
func (r *ioreq) Call() { r.d.interrupt(r, r.rdata, r.timing, r.dispatchMS) }

// Driver is one device instance. It is single-threaded: all entry points
// must be called from the simulation goroutine, exactly as a real
// driver's top half is serialized by the kernel.
type Driver struct {
	eng *sim.Engine
	dsk *disk.Disk
	lbl *label.Label
	bt  *blocktable.Table
	cfg Config

	// shard, when non-nil, marks the driver as running on a member
	// shard of a sim.Coordinator: public entry points are bracketed
	// with Enter/Exit and their completion callbacks wrapped so they
	// fire on the coordinator's fan-in side in global (time, seq)
	// order. nil (the default) is the single-engine path with zero
	// overhead.
	shard *sim.Shard

	queue []*ioreq
	busy  bool

	// Hot-path scratch: completed ioreqs are recycled through reqFree,
	// and start reuses cands for the scheduler's candidate view instead
	// of allocating a slice per dispatch.
	reqFree []*ioreq
	cands   []sched.Cylindered

	// tableBuf is the reusable encoding buffer for block-table writes
	// (see writeTable); tableBufUsed tracks how much of it the previous
	// image occupied, and tableBufBusy guards the window where a queued
	// table write still references it.
	tableBuf     []byte
	tableBufUsed int
	tableBufBusy bool

	// Blocks currently being moved by BCopy/Clean; requests targeting
	// them are delayed until movement completes (Section 4.1.3).
	moving  map[int64][]*pendingStrategy
	tableAt int64 // physical sector of the on-disk block table

	mon   *monitor
	stats *Stats
	sink  telemetry.Sink
	ev    telemetry.Event // scratch event, reused across emissions
	cum   Counters
	mx    *driverMetrics // nil until BindMetrics; one comparison per interrupt

	// Fault handling state. inj is the injector shared with the disk
	// (nil when fault injection is off); dead is set by a simulated
	// power loss and fails every subsequent request; remaps is the
	// bad-block remap table mapping a failed physical block to its
	// spare; spares marks reserved slots consumed as spares; spareCursor
	// is the next spare candidate, allocated downward from the top of
	// the reserved region.
	inj         *fault.Injector
	dead        bool
	remaps      map[int64]int64
	spares      map[int64]bool
	spareCursor int64

	// fcfsCyl tracks the cylinder of the previous arrival (in original,
	// unrearranged coordinates) for the arrival-order seek-distance
	// distribution.
	fcfsCyl      int
	haveFCFSPrev bool
}

// pendingStrategy is a request delayed behind an in-flight block move.
type pendingStrategy struct {
	write bool
	vsec  int64
	count int
	data  []byte
	done  DoneFunc
}

// Attach initializes a driver for the given disk, reading the disk label
// and, for a rearranged disk, the on-disk block table — exactly what the
// paper's modified attach routine does at system start-up. recover
// selects the conservative crash-recovery path that marks all block
// table entries dirty.
func Attach(eng *sim.Engine, dsk *disk.Disk, cfg Config, recover bool) (*Driver, error) {
	cfg = cfg.withDefaults()
	lblBuf := dsk.PeekData(label.LabelSector, 1)
	lbl, err := label.Decode(lblBuf)
	if err != nil {
		return nil, fmt.Errorf("driver attach: %w", err)
	}
	d := &Driver{
		eng:    eng,
		dsk:    dsk,
		lbl:    lbl,
		cfg:    cfg,
		moving: make(map[int64][]*pendingStrategy),
		mon:    newMonitor(cfg.RequestTableSize),
		stats:  newStats(cfg.HistMaxMS),
		inj:    cfg.Faults,
		remaps: make(map[int64]int64),
		spares: make(map[int64]bool),
	}
	if err := lbl.CheckBlockAligned(cfg.BlockSize.Sectors()); err != nil {
		return nil, fmt.Errorf("driver attach: %w", err)
	}
	if lbl.Rearranged {
		d.tableAt = lbl.ReservedStart
		img := dsk.PeekData(d.tableAt, tableSectors(cfg.BlockSize))
		bt, err := decodeTableImage(img, recover)
		if err != nil {
			return nil, fmt.Errorf("driver attach: reading block table: %w", err)
		}
		if bt.BlockSectors() != cfg.BlockSize.Sectors() {
			return nil, fmt.Errorf("driver attach: block table block size %d sectors, driver uses %d",
				bt.BlockSectors(), cfg.BlockSize.Sectors())
		}
		d.bt = bt
	}
	return d, nil
}

// tableAllocEntries sizes the fixed on-disk block table allocation at
// the start of the reserved region: room for 16k entries.
const tableAllocEntries = 16384

// tableSectors is the fixed on-disk allocation for the block table.
func tableSectors(bs geom.BlockSize) int {
	return blocktable.EncodedSectors(tableAllocEntries)
}

// slotSectors is the size of one of the two table-write slots inside
// the fixed allocation. Fault-tolerant mode alternates committed table
// writes between the slots so a crash can tear at most the slot being
// written; the other still holds the previous generation intact.
func slotSectors(bs geom.BlockSize) int {
	return tableSectors(bs) / 2
}

// maxTableEntries bounds the number of rearranged blocks to what one
// dual-write slot can hold (8190 for 8 KB blocks) — still more than
// twice the paper's largest configuration (3500 blocks).
var maxTableEntries = blocktable.MaxEntriesIn(slotSectors(geom.Block8K))

// decodeTableImage parses the on-disk table allocation, choosing the
// newest valid copy: each of the two write slots is decoded
// independently and the one with the higher generation wins. Legacy
// full-prefix writes leave slot B zeroed (never valid), so they decode
// through slot A unchanged. recover selects the conservative path that
// marks every entry dirty (Section 4.1.2).
func decodeTableImage(img []byte, recover bool) (*blocktable.Table, error) {
	ss := slotSectors(geom.Block8K) * geom.SectorSize
	a, errA := blocktable.Decode(img[:ss])
	b, errB := blocktable.Decode(img[ss : 2*ss])
	var t *blocktable.Table
	switch {
	case errA == nil && errB == nil:
		t = a
		if b.Gen > a.Gen {
			t = b
		}
	case errA == nil:
		t = a
	case errB == nil:
		t = b
	default:
		return nil, errA
	}
	if recover {
		t.MarkAllDirty()
	}
	return t, nil
}

// TableSectors reports the reserved-area prefix (in sectors) occupied by
// the on-disk block table. Placement policies must not allocate reserved
// slots inside this prefix.
func TableSectors(bs geom.BlockSize) int { return tableSectors(bs) }

// Label returns the decoded disk label.
func (d *Driver) Label() *label.Label { return d.lbl }

// Disk returns the underlying disk model.
func (d *Driver) Disk() *disk.Disk { return d.dsk }

// BlockSize returns the configured file system block size.
func (d *Driver) BlockSize() geom.BlockSize { return d.cfg.BlockSize }

// Rearranged reports whether the attached disk has a reserved region.
func (d *Driver) Rearranged() bool { return d.lbl.Rearranged }

// BlockTableLen returns the number of currently rearranged blocks.
func (d *Driver) BlockTableLen() int {
	if d.bt == nil {
		return 0
	}
	return d.bt.Len()
}

// BlockTable returns a copy of the current block table entries, sorted
// by original address. Incremental rearrangement diffs against it.
func (d *Driver) BlockTable() []blocktable.Entry {
	if d.bt == nil {
		return nil
	}
	return d.bt.Entries()
}

// QueueLen returns the number of requests waiting in the device queue
// (not counting the one being serviced).
func (d *Driver) QueueLen() int { return len(d.queue) }

// BindShard attaches the driver to a coordinator shard: from now on
// the driver's engine is the shard's private engine and every public
// entry point is a coordinator boundary. The volume binds each member
// driver to its shard right after building the member rig; everything
// below the entry points (strategy, the queue, retries, block-copy
// chains) is untouched and runs member-side.
func (d *Driver) BindShard(s *sim.Shard) { d.shard = s }

// ReadBlock issues a read of one file system block: partition-relative
// block number blk on partition part. done fires at completion in
// simulated time.
func (d *Driver) ReadBlock(part int, blk int64, done DoneFunc) {
	if s := d.shard; s != nil {
		s.Enter()
		defer s.Exit()
		done = s.WrapDone(done)
	}
	d.blockIO(false, part, blk, nil, done)
}

// WriteBlock issues a write of one file system block. data must be one
// block long.
func (d *Driver) WriteBlock(part int, blk int64, data []byte, done DoneFunc) {
	if s := d.shard; s != nil {
		s.Enter()
		defer s.Exit()
		done = s.WrapDone(done)
	}
	if len(data) != d.cfg.BlockSize.Bytes() {
		d.fail(done, fmt.Errorf("driver: write of %d bytes, block size is %d", len(data), d.cfg.BlockSize.Bytes()))
		return
	}
	d.blockIO(true, part, blk, data, done)
}

// blockIO validates a file system block request and passes it to
// strategy. The file system requests at most one block per call, so a
// request can never be partially rearranged (Section 4.1.2).
func (d *Driver) blockIO(write bool, part int, blk int64, data []byte, done DoneFunc) {
	p, err := d.lbl.Partition(part)
	if err != nil {
		d.fail(done, err)
		return
	}
	bsec := int64(d.cfg.BlockSize.Sectors())
	if blk < 0 || (blk+1)*bsec > p.Size {
		d.fail(done, fmt.Errorf("%w: block %d of partition %d (%d sectors)", ErrBadBlock, blk, part, p.Size))
		return
	}
	if d.sink != nil {
		d.ev = telemetry.Event{
			Kind:   telemetry.KindRequest,
			TimeMS: d.eng.Now(),
			Write:  write,
			Part:   part,
			Block:  blk,
		}
		d.sink.Event(&d.ev)
	}
	vsec := p.Start + blk*bsec
	d.strategy(write, vsec, int(bsec), data, done)
}

// SetSink attaches a telemetry sink to the driver's event stream: one
// KindRequest event per file system block request (partition-relative
// address, before any translation) and one KindSpan event per
// completed device operation. Pass nil to detach; a nil sink costs a
// single comparison per request. The driver reuses one Event value, so
// sinks must copy what they retain.
func (d *Driver) SetSink(s telemetry.Sink) { d.sink = s }

// Counters are lifetime observability counters. Unlike Stats they are
// never cleared by ReadStats, so time-series probes can track
// cumulative progress across measurement windows.
type Counters struct {
	// Requests counts completed file system and raw requests.
	Requests int64
	// Redirected counts requests sent to the reserved region.
	Redirected int64
	// InternalIO counts completed driver-generated operations: block
	// movement reads/writes and block table writes — the cumulative
	// I/O cost of rearrangement.
	InternalIO int64
	// Faults counts device errors reported by the fault injector;
	// Retries counts re-issues of transiently failing operations;
	// Remaps counts bad blocks remapped into spare reserved slots;
	// Unrecovered counts operations that failed after exhausting
	// retries and remapping.
	Faults      int64
	Retries     int64
	Remaps      int64
	Unrecovered int64
	// BackoffMS accumulates the simulated time spent waiting between
	// retry re-issues — how long the retry ladder actually cost, where
	// Retries only says how often it ran.
	BackoffMS float64
}

// Counters returns the driver's lifetime counters.
func (d *Driver) Counters() Counters { return d.cum }

// driverMetrics are the driver's hot-path histograms, recorded in
// interrupt behind one nil check so an unbound driver pays a single
// comparison per completion.
type driverMetrics struct {
	service  *metrics.Histogram
	queueing *metrics.Histogram
	seek     *metrics.Histogram
	qdepth   *metrics.Histogram
}

// BindMetrics registers the driver's metrics in reg, all carrying the
// given labels (a volume labels each member disk="i"): per-request
// service/queue/seek-time and queue-depth histograms, recorded from the
// moment of binding, plus func-backed counters over the lifetime
// Counters, resolved at snapshot time. Bind after populate so the
// distributions cover only the measured window. Like every driver entry
// point, call it from the goroutine driving the simulation — for a
// sharded member, between coordinator windows, which is exactly when
// the experiment harness runs.
func (d *Driver) BindMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	d.mx = &driverMetrics{
		service:  reg.Histogram("driver_service_ms", metrics.HistogramOpts{}, labels...),
		queueing: reg.Histogram("driver_queue_ms", metrics.HistogramOpts{}, labels...),
		seek:     reg.Histogram("driver_seek_ms", metrics.HistogramOpts{}, labels...),
		qdepth:   reg.Histogram("driver_queue_depth", metrics.HistogramOpts{MinExp: -1, MaxExp: 20}, labels...),
	}
	reg.CounterFunc("driver_requests", func() int64 { return d.cum.Requests }, labels...)
	reg.CounterFunc("driver_redirected", func() int64 { return d.cum.Redirected }, labels...)
	reg.CounterFunc("driver_internal_io", func() int64 { return d.cum.InternalIO }, labels...)
	reg.CounterFunc("driver_faults", func() int64 { return d.cum.Faults }, labels...)
	reg.CounterFunc("driver_retries", func() int64 { return d.cum.Retries }, labels...)
	reg.CounterFunc("driver_remaps", func() int64 { return d.cum.Remaps }, labels...)
	reg.CounterFunc("driver_unrecovered", func() int64 { return d.cum.Unrecovered }, labels...)
	reg.GaugeFunc("driver_backoff_ms", func() float64 { return d.cum.BackoffMS }, labels...)
}

// Outstanding returns the number of requests in the driver: queued
// plus the one in service.
func (d *Driver) Outstanding() int {
	n := len(d.queue)
	if d.busy {
		n++
	}
	return n
}

// Physio issues a raw-interface request addressed in virtual-disk
// sectors. Large requests are broken into block-sized subrequests so
// that a request can never straddle a rearranged/unrearranged boundary
// (Section 4.1.2); done fires once, after the last subrequest, with the
// concatenated data for reads.
func (d *Driver) Physio(write bool, vsector int64, count int, data []byte, done DoneFunc) {
	if s := d.shard; s != nil {
		s.Enter()
		defer s.Exit()
		done = s.WrapDone(done)
	}
	if count <= 0 || vsector < 0 || vsector+int64(count) > d.lbl.VirtualSectors() {
		d.fail(done, fmt.Errorf("%w: raw range [%d, %d)", ErrBadBlock, vsector, vsector+int64(count)))
		return
	}
	if write && len(data) != count*geom.SectorSize {
		d.fail(done, fmt.Errorf("driver: raw write of %d sectors with %d bytes", count, len(data)))
		return
	}
	bsec := int64(d.cfg.BlockSize.Sectors())
	type piece struct {
		vsec  int64
		count int
	}
	var pieces []piece
	for s := vsector; s < vsector+int64(count); {
		// Split at block boundaries of the virtual disk.
		next := (s/bsec + 1) * bsec
		if end := vsector + int64(count); next > end {
			next = end
		}
		pieces = append(pieces, piece{vsec: s, count: int(next - s)})
		s = next
	}
	out := make([]byte, count*geom.SectorSize)
	remaining := len(pieces)
	var firstErr error
	off := 0
	for _, pc := range pieces {
		pc := pc
		pcOff := off
		var wdata []byte
		if write {
			wdata = data[pcOff : pcOff+pc.count*geom.SectorSize]
		}
		d.strategy(write, pc.vsec, pc.count, wdata, func(rdata []byte, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			if !write && err == nil {
				copy(out[pcOff:], rdata)
			}
			remaining--
			if remaining == 0 && done != nil {
				if write {
					done(nil, firstErr)
				} else {
					done(out, firstErr)
				}
			}
		})
		off += pc.count * geom.SectorSize
	}
}

// strategy is the heart of the driver (Section 4.1.2): it maps the
// virtual address to a physical address, redirects through the block
// table, records the request in the monitoring table, and enqueues it.
func (d *Driver) strategy(write bool, vsec int64, count int, data []byte, done DoneFunc) {
	psec := d.lbl.MapVirtual(vsec)

	// Identify the containing block in original physical coordinates;
	// this is the identity used by monitoring and the block table.
	bsec := int64(d.cfg.BlockSize.Sectors())
	blockStart := psec - psec%bsec

	// Requests for a block that is being moved are delayed temporarily
	// (Section 4.1.3) and re-run when the move completes.
	if waiters, ok := d.moving[blockStart]; ok {
		d.moving[blockStart] = append(waiters, &pendingStrategy{
			write: write, vsec: vsec, count: count, data: data, done: done,
		})
		return
	}

	target := psec
	redirected := false
	if d.bt != nil {
		if newStart, ok := d.bt.Lookup(blockStart); ok {
			target = newStart + (psec - blockStart)
			redirected = true
			if write {
				d.bt.MarkDirty(blockStart)
			}
		}
	}
	if redirected {
		d.stats.side(write).Redirected++
		d.cum.Redirected++
	}

	d.mon.record(blockStart, count, write)
	d.recordArrival(blockStart, write)
	r := d.getReq()
	r.write = write
	r.redirected = redirected
	r.orig = blockStart
	r.sector = target
	r.count = count
	r.data = data
	r.arriveMS = d.eng.Now()
	r.cyl = d.dsk.Geom().CylinderOf(target)
	r.done = done
	d.enqueue(r)
}

// getReq takes a zeroed request record from the free list, or allocates
// one the first times through.
func (d *Driver) getReq() *ioreq {
	if n := len(d.reqFree); n > 0 {
		r := d.reqFree[n-1]
		d.reqFree[n-1] = nil
		d.reqFree = d.reqFree[:n-1]
		return r
	}
	return &ioreq{d: d}
}

// putReq recycles a completed request. Callers must not touch r again;
// every field (including buffer and callback references) is cleared so
// the pool does not pin completed requests' data.
func (d *Driver) putReq(r *ioreq) {
	*r = ioreq{d: d}
	d.reqFree = append(d.reqFree, r)
}

// recordArrival updates the arrival-order (FCFS, unrearranged) seek
// distance distribution: the distances that would have been observed had
// requests been served in arrival order with no block rearrangement
// (Table 3's highlighted rows).
func (d *Driver) recordArrival(origSector int64, write bool) {
	cyl := d.dsk.Geom().CylinderOf(origSector)
	if d.haveFCFSPrev {
		d.stats.side(write).FCFSDist.Add(cyl - d.fcfsCyl)
	}
	d.fcfsCyl = cyl
	d.haveFCFSPrev = true
}

// Dead reports whether the device has suffered a simulated power loss.
// A dead driver fails every request; re-attaching a fresh Driver to the
// disk models the reboot.
func (d *Driver) Dead() bool { return d.dead }

// Remap records one bad-block remapping: requests addressed to the
// block at Orig are serviced by the spare reserved slot at Spare.
type Remap struct {
	Orig, Spare int64
}

// RemapTable returns the bad-block remap table sorted by original
// address — the analogue of an ioctl exposing the remap state to
// diagnostic tools.
func (d *Driver) RemapTable() []Remap {
	out := make([]Remap, 0, len(d.remaps))
	for o, s := range d.remaps {
		out = append(out, Remap{Orig: o, Spare: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Orig < out[j].Orig })
	return out
}

// applyRemap retargets a request whose physical destination block has
// been remapped to a spare. Remaps are block-granular, so only requests
// contained in a single block can follow one; the multi-block table
// write never does (the table's home is fixed).
func (d *Driver) applyRemap(r *ioreq) {
	if len(d.remaps) == 0 {
		return
	}
	bsec := int64(d.cfg.BlockSize.Sectors())
	blockStart := r.sector - r.sector%bsec
	if r.sector+int64(r.count) > blockStart+bsec {
		return
	}
	moved := false
	for {
		spare, ok := d.remaps[blockStart]
		if !ok {
			break
		}
		r.sector = spare + (r.sector - blockStart)
		blockStart = spare
		moved = true
	}
	if moved {
		r.cyl = d.dsk.Geom().CylinderOf(r.sector)
	}
}

// enqueue adds a request to the device queue and starts the device if it
// is idle, mirroring the strategy/start split of the SunOS driver.
func (d *Driver) enqueue(r *ioreq) {
	if d.dead {
		d.fail(r.done, ErrDead)
		return
	}
	r.d = d
	d.applyRemap(r)
	r.qdepth = d.Outstanding()
	d.queue = append(d.queue, r)
	if !d.busy {
		d.start()
	}
}

// start dispatches the next request chosen by the scheduling policy.
func (d *Driver) start() {
	if len(d.queue) == 0 || d.dead {
		d.busy = false
		return
	}
	d.busy = true
	cands := d.cands[:0]
	for _, r := range d.queue {
		cands = append(cands, r)
	}
	d.cands = cands
	idx := d.cfg.Sched.Pick(d.dsk.HeadCylinder(), cands)
	r := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	r.dispatchMS = d.eng.Now()
	d.issue(r)
}

// issue performs one service attempt of a dispatched request and
// schedules its completion interrupt. Retries re-enter here with the
// device still busy, so a request being retried blocks the queue just
// as a device held by its own error recovery would; its service time
// accumulates the backoff delays.
func (d *Driver) issue(r *ioreq) {
	d.inj.SetPhase(r.phase)
	now := d.eng.Now()
	var t disk.Timing
	var rdata []byte
	var err error
	if r.write {
		t, err = d.dsk.Write(now, r.sector, r.count, r.data)
	} else {
		rdata, t, err = d.dsk.Read(now, r.sector, r.count)
	}
	if err != nil {
		d.handleError(r, err)
		return
	}
	r.rdata = rdata
	r.timing = t
	d.eng.AfterCall(t.TotalMS(), r)
}

// handleError classifies a device error and drives recovery: transient
// errors are retried with exponential backoff, permanent media errors
// on writes are remapped to a spare reserved slot, and a simulated
// power loss kills the device, failing everything in flight and queued.
// Errors that are not injected faults (address validation) fail the
// request immediately and leave the device usable.
func (d *Driver) handleError(r *ioreq, err error) {
	var fe *fault.Error
	if !errors.As(err, &fe) {
		d.eng.After(0, func() {
			if r.done != nil {
				r.done(nil, err)
			}
			d.start()
		})
		return
	}
	d.cum.Faults++
	switch fe.Class {
	case fault.Crash:
		d.dead = true
		d.emitFault(r, fe, "crash")
		failed := append([]*ioreq{r}, d.queue...)
		d.queue = nil
		d.busy = false
		d.eng.After(0, func() {
			for _, q := range failed {
				if q.done != nil {
					q.done(nil, err)
				}
			}
		})
	case fault.Transient:
		if r.attempt < d.cfg.MaxRetries {
			r.attempt++
			d.cum.Retries++
			d.emitFault(r, fe, "retry")
			backoff := d.cfg.RetryBaseMS * float64(int64(1)<<(r.attempt-1))
			d.cum.BackoffMS += backoff
			d.eng.After(backoff, func() { d.issue(r) })
			return
		}
		d.unrecoverable(r, fe, err)
	default: // fault.Media
		if d.tryRemap(r, fe) {
			return
		}
		d.unrecoverable(r, fe, err)
	}
}

// tryRemap moves a write that hit a permanent media error to a freshly
// allocated spare block in the reserved region and re-issues it there.
// Reads cannot be remapped (the data is gone), nor can operations that
// span more than one block.
func (d *Driver) tryRemap(r *ioreq, fe *fault.Error) bool {
	if !r.write || d.bt == nil {
		return false
	}
	bsec := int64(d.cfg.BlockSize.Sectors())
	blockStart := r.sector - r.sector%bsec
	if r.sector+int64(r.count) > blockStart+bsec {
		return false
	}
	spare := d.allocSpare()
	if spare < 0 {
		return false
	}
	d.remaps[blockStart] = spare
	d.spares[spare] = true
	d.cum.Remaps++
	d.emitFault(r, fe, "remap")
	r.sector = spare + (r.sector - blockStart)
	r.cyl = d.dsk.Geom().CylinderOf(r.sector)
	d.issue(r)
	return true
}

// allocSpare returns the next unused block-aligned spare slot,
// allocated downward from the top of the reserved region so spares stay
// clear of the organ-pipe slots the arranger fills from the middle out.
// It returns -1 when the region is exhausted.
func (d *Driver) allocSpare() int64 {
	bsec := int64(d.cfg.BlockSize.Sectors())
	tableEnd := d.tableAt + int64(tableSectors(d.cfg.BlockSize))
	if d.spareCursor == 0 {
		resEnd := d.lbl.ReservedStart + d.lbl.ReservedLen
		d.spareCursor = (resEnd - bsec) / bsec * bsec
	}
	for s := d.spareCursor; s >= tableEnd; s -= bsec {
		d.spareCursor = s - bsec
		if d.spares[s] {
			continue
		}
		if _, ok := d.bt.ReverseLookup(s); ok {
			continue
		}
		if _, ok := d.remaps[s]; ok {
			continue
		}
		return s
	}
	return -1
}

// unrecoverable propagates a fault that recovery could not mask.
func (d *Driver) unrecoverable(r *ioreq, fe *fault.Error, err error) {
	d.cum.Unrecovered++
	d.emitFault(r, fe, "fail")
	d.eng.After(0, func() {
		if r.done != nil {
			r.done(nil, err)
		}
		d.start()
	})
}

// emitFault reports one fault-handling action to the telemetry sink.
func (d *Driver) emitFault(r *ioreq, fe *fault.Error, action string) {
	if d.sink == nil {
		return
	}
	d.ev = telemetry.Event{
		Kind:    telemetry.KindFault,
		TimeMS:  d.eng.Now(),
		Write:   r.write,
		Sector:  r.sector,
		Count:   r.count,
		Class:   fe.Class.String(),
		Action:  action,
		Attempt: r.attempt,
	}
	d.sink.Event(&d.ev)
}

// interrupt is the completion handler: it records statistics, completes
// the request, and starts the next queued operation.
func (d *Driver) interrupt(r *ioreq, rdata []byte, t disk.Timing, startMS float64) {
	if !r.internal {
		now := d.eng.Now()
		side := d.stats.side(r.write)
		side.SchedDist.Add(t.SeekDist)
		side.SeekMS += t.SeekMS
		side.RotMS += t.RotMS
		side.TransferMS += t.TransferMS
		side.Service.Add(now - startMS)
		side.Queueing.Add(startMS - r.arriveMS)
		if t.BufferHit {
			side.BufferHits++
		}
		if mx := d.mx; mx != nil {
			mx.service.Record(now - startMS)
			mx.queueing.Record(startMS - r.arriveMS)
			mx.seek.Record(t.SeekMS)
			mx.qdepth.Record(float64(r.qdepth))
		}
		d.cum.Requests++
	} else {
		d.cum.InternalIO++
	}
	if d.sink != nil {
		d.ev = telemetry.Event{
			Kind:       telemetry.KindSpan,
			Write:      r.write,
			Internal:   r.internal,
			Redirected: r.redirected,
			BufferHit:  t.BufferHit,
			Orig:       r.orig,
			Sector:     r.sector,
			Count:      r.count,
			QueueDepth: r.qdepth,
			SeekDist:   t.SeekDist,
			ArriveMS:   r.arriveMS,
			DispatchMS: startMS,
			SeekMS:     t.SeekMS,
			RotMS:      t.RotMS,
			TransferMS: t.TransferMS,
			CompleteMS: d.eng.Now(),
		}
		d.sink.Event(&d.ev)
	}
	if r.done != nil {
		if r.write {
			r.done(nil, nil)
		} else {
			r.done(rdata, nil)
		}
	}
	d.start()
	// The request is fully retired (error paths never reach here);
	// recycle the record.
	d.putReq(r)
}

// fail delivers an immediate asynchronous error.
func (d *Driver) fail(done DoneFunc, err error) {
	d.eng.After(0, func() {
		if done != nil {
			done(nil, err)
		}
	})
}
