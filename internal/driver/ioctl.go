package driver

import (
	"fmt"

	"repro/internal/blocktable"
	"repro/internal/geom"
	"repro/internal/label"
)

// This file implements the driver's special-purpose entry points — the
// analogues of the ioctl calls of Sections 4.1.3 and 4.1.4:
//
//	DKIOCBCOPY  -> (*Driver).BCopy
//	DKIOCCLEAN  -> (*Driver).Clean
//	request-table read/clear -> (*Driver).ReadRequestTable
//	statistics read/clear    -> (*Driver).ReadStats
//
// and the disk initialization performed by the paper's modified
// label-writing utility (InitDisk).

// ErrFunc is the completion callback of an asynchronous control
// operation.
type ErrFunc func(err error)

// BCopy copies the block whose original physical address is orig into
// the reserved region at physical address dst, enters it in the block
// table, and forces the block table to disk — the DKIOCBCOPY ioctl.
// Copying a block requires three I/O operations (read original, write
// reserved copy, write table); they go through the ordinary device queue
// and interleave with other traffic. Requests for the block are delayed
// until the move completes.
func (d *Driver) BCopy(orig, dst int64, done ErrFunc) {
	if s := d.shard; s != nil {
		s.Enter()
		defer s.Exit()
		done = s.WrapErr(done)
	}
	if err := d.checkMove(orig, dst); err != nil {
		d.failCtl(done, err)
		return
	}
	d.moving[orig] = nil
	bsec := d.cfg.BlockSize.Sectors()
	finish := func(err error) {
		waiters := d.moving[orig]
		delete(d.moving, orig)
		for _, w := range waiters {
			d.strategy(w.write, w.vsec, w.count, w.data, w.done)
		}
		if done != nil {
			done(err)
		}
	}
	// 1: read the block from its original location.
	d.enqueue(&ioreq{internal: true, phase: "bcopy-read", orig: orig, sector: orig, count: bsec, arriveMS: d.eng.Now(),
		cyl: d.dsk.Geom().CylinderOf(orig),
		done: func(data []byte, err error) {
			if err != nil {
				finish(fmt.Errorf("driver bcopy: reading original: %w", err))
				return
			}
			// 2: write it to the reserved slot.
			d.enqueue(&ioreq{internal: true, write: true, phase: "bcopy-copy", orig: orig, sector: dst, count: bsec, data: data,
				arriveMS: d.eng.Now(), cyl: d.dsk.Geom().CylinderOf(dst),
				done: func(_ []byte, err error) {
					if err != nil {
						finish(fmt.Errorf("driver bcopy: writing reserved copy: %w", err))
						return
					}
					if err := d.bt.Add(orig, dst); err != nil {
						finish(err)
						return
					}
					// 3: force the updated block table to disk.
					d.writeTable(func(err error) { finish(err) })
				}})
		}})
}

// checkMove validates a BCopy address pair.
func (d *Driver) checkMove(orig, dst int64) error {
	if d.bt == nil {
		return ErrNotRearranged
	}
	bsec := int64(d.cfg.BlockSize.Sectors())
	if orig%bsec != 0 || dst%bsec != 0 {
		return fmt.Errorf("%w: bcopy %d -> %d", ErrNotAligned, orig, dst)
	}
	if orig < 0 || orig+bsec > d.dsk.Geom().TotalSectors() {
		return fmt.Errorf("%w: original %d", ErrBadBlock, orig)
	}
	if d.lbl.InReserved(orig) {
		return fmt.Errorf("driver bcopy: original address %d lies in the reserved region", orig)
	}
	resEnd := d.lbl.ReservedStart + d.lbl.ReservedLen
	tableEnd := d.tableAt + int64(tableSectors(d.cfg.BlockSize))
	if dst < tableEnd || dst+bsec > resEnd {
		return fmt.Errorf("driver bcopy: destination %d outside usable reserved region [%d, %d)",
			dst, tableEnd, resEnd)
	}
	if _, ok := d.bt.Lookup(orig); ok {
		return fmt.Errorf("driver bcopy: block at %d is already rearranged", orig)
	}
	if _, ok := d.bt.ReverseLookup(dst); ok {
		return fmt.Errorf("driver bcopy: reserved slot %d is occupied", dst)
	}
	if d.spares[dst] {
		return fmt.Errorf("driver bcopy: reserved slot %d is in use as a bad-block spare", dst)
	}
	if d.bt.Len() >= maxTableEntries {
		return fmt.Errorf("driver bcopy: block table full (%d entries)", maxTableEntries)
	}
	return nil
}

// Clean removes every block from the reserved region — the DKIOCCLEAN
// ioctl. Dirty blocks are first copied back to their original locations;
// after each block is moved out the block table is updated and rewritten
// to disk. Moving a clean block out costs one I/O (the table write);
// a dirty block costs two more.
func (d *Driver) Clean(done ErrFunc) {
	if s := d.shard; s != nil {
		s.Enter()
		defer s.Exit()
		done = s.WrapErr(done)
	}
	if d.bt == nil {
		d.failCtl(done, ErrNotRearranged)
		return
	}
	entries := d.bt.Entries()
	d.cleanNext(entries, 0, done)
}

// BClean removes a single block from the reserved region, copying it
// back to its original location first if dirty — the per-block variant
// of DKIOCCLEAN that incremental rearrangement uses. It is a no-op if
// the block is not rearranged.
func (d *Driver) BClean(orig int64, done ErrFunc) {
	if s := d.shard; s != nil {
		s.Enter()
		defer s.Exit()
		done = s.WrapErr(done)
	}
	if d.bt == nil {
		d.failCtl(done, ErrNotRearranged)
		return
	}
	dst, ok := d.bt.Lookup(orig)
	if !ok {
		d.failCtl(done, nil)
		return
	}
	entry := blocktable.Entry{Orig: orig, New: dst, Dirty: d.bt.IsDirty(orig)}
	d.cleanNext([]blocktable.Entry{entry}, 0, done)
}

// cleanNext removes entries[i:] one at a time, asynchronously.
func (d *Driver) cleanNext(entries []blocktable.Entry, i int, done ErrFunc) {
	if i >= len(entries) {
		if done != nil {
			done(nil)
		}
		return
	}
	e := entries[i]
	d.moving[e.Orig] = nil
	bsec := d.cfg.BlockSize.Sectors()
	step := func(err error) {
		waiters := d.moving[e.Orig]
		delete(d.moving, e.Orig)
		for _, w := range waiters {
			d.strategy(w.write, w.vsec, w.count, w.data, w.done)
		}
		if err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		d.cleanNext(entries, i+1, done)
	}
	remove := func() {
		d.bt.Remove(e.Orig)
		d.writeTable(step)
	}
	if !d.bt.IsDirty(e.Orig) {
		// The original copy is still current; just drop the mapping.
		remove()
		return
	}
	// Copy the reserved copy back to the original location first.
	d.enqueue(&ioreq{internal: true, phase: "clean-read", orig: e.Orig, sector: e.New, count: bsec, arriveMS: d.eng.Now(),
		cyl: d.dsk.Geom().CylinderOf(e.New),
		done: func(data []byte, err error) {
			if err != nil {
				step(fmt.Errorf("driver clean: reading reserved copy: %w", err))
				return
			}
			d.enqueue(&ioreq{internal: true, write: true, phase: "clean-write", orig: e.Orig, sector: e.Orig, count: bsec, data: data,
				arriveMS: d.eng.Now(), cyl: d.dsk.Geom().CylinderOf(e.Orig),
				done: func(_ []byte, err error) {
					if err != nil {
						step(fmt.Errorf("driver clean: restoring original: %w", err))
						return
					}
					remove()
				}})
		}})
}

// writeTable forces the current block table image to its home at the
// start of the reserved region. In fault-tolerant mode the write is
// crash-safe: the generation stamp is bumped and the image goes to the
// slot the previous committed write did not use, so a power loss can
// tear at most the slot being written while the other slot still
// decodes to the previous generation.
func (d *Driver) writeTable(done ErrFunc) {
	at := d.tableAt
	sectors := tableSectors(d.cfg.BlockSize)
	if d.inj != nil {
		d.bt.Gen++
		sectors = slotSectors(d.cfg.BlockSize)
		at += int64(d.bt.Gen%2) * int64(sectors)
	}
	// The write covers the whole slot so stale tails are overwritten.
	// The image is encoded into a per-driver scratch buffer: table
	// writes serialize through their completion chains, so the scratch
	// is almost always free; if a second write does overlap the first
	// (tableBufBusy), it falls back to a fresh allocation. The disk
	// model copies the data when the request is dispatched, and the
	// busy flag is held until completion, which covers that window.
	size := sectors * geom.SectorSize
	var full []byte
	usedScratch := false
	if !d.tableBufBusy {
		if cap(d.tableBuf) < size {
			d.tableBuf = make([]byte, size)
			d.tableBufUsed = 0
		}
		img := d.bt.EncodeTo(d.tableBuf[:0])
		// The buffer beyond the previous image is still zero; clear
		// only the stale bytes a shrinking table leaves behind.
		if d.tableBufUsed > len(img) {
			clear(d.tableBuf[len(img):d.tableBufUsed])
		}
		d.tableBufUsed = len(img)
		d.tableBufBusy = true
		usedScratch = true
		full = d.tableBuf[:size]
	} else {
		full = make([]byte, size)
		copy(full, d.bt.Encode())
	}
	d.enqueue(&ioreq{internal: true, write: true, phase: "table-write", orig: at, sector: at,
		count: size / geom.SectorSize, data: full,
		arriveMS: d.eng.Now(), cyl: d.dsk.Geom().CylinderOf(at),
		done: func(_ []byte, err error) {
			if usedScratch {
				d.tableBufBusy = false
			}
			if done != nil {
				done(err)
			}
		}})
}

// ReservedSlots returns the physical sector addresses of all reserved-
// region block slots available for rearranged data (excluding the block
// table prefix), grouped per cylinder in organ-pipe cylinder order: the
// slots of the middle reserved cylinder come first, then those of the
// cylinders on alternating sides. The block arranger fills slots in this
// order (Section 2).
func (d *Driver) ReservedSlots() [][]int64 {
	if !d.lbl.Rearranged {
		return nil
	}
	g := d.dsk.Geom()
	first, count := d.lbl.ReservedCyls()
	bsec := int64(d.cfg.BlockSize.Sectors())
	tableEnd := d.tableAt + int64(tableSectors(d.cfg.BlockSize))
	// Round the first usable slot up to a block boundary.
	usable := (tableEnd + bsec - 1) / bsec * bsec
	var out [][]int64
	for _, cyl := range geom.OrganPipeCylinders(first, count) {
		lo := g.FirstSectorOfCyl(cyl)
		hi := lo + int64(g.SectorsPerCyl())
		var slots []int64
		for s := (lo + bsec - 1) / bsec * bsec; s+bsec <= hi; s += bsec {
			if s < usable || d.spares[s] {
				continue
			}
			slots = append(slots, s)
		}
		if len(slots) > 0 {
			out = append(out, slots)
		}
	}
	return out
}

// failCtl delivers an immediate asynchronous control error.
func (d *Driver) failCtl(done ErrFunc, err error) {
	d.eng.After(0, func() {
		if done != nil {
			done(err)
		}
	})
}

// InitDisk writes a label (and, for rearranged labels, an empty block
// table) onto a fresh disk, without timing effects. It performs the role
// of the paper's modified disk-initialization utility (Section 4.1.1).
func InitDisk(dsk interface {
	PokeData(sector int64, data []byte) error
}, lbl *label.Label, bs geom.BlockSize) error {
	img, err := lbl.Encode()
	if err != nil {
		return err
	}
	if err := dsk.PokeData(label.LabelSector, img); err != nil {
		return err
	}
	if lbl.Rearranged {
		bt := blocktable.New(bs)
		full := make([]byte, tableSectors(bs)*geom.SectorSize)
		copy(full, bt.Encode())
		if err := dsk.PokeData(lbl.ReservedStart, full); err != nil {
			return err
		}
	}
	return nil
}
