package driver

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/blocktable"
	"repro/internal/disk"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// newFaultRig is newRig with a fault plan wired into both the disk and
// the driver, which switches the driver into fault-tolerant mode.
func newFaultRig(t *testing.T, plan fault.Plan) (*sim.Engine, *disk.Disk, *Driver) {
	t.Helper()
	eng := sim.NewEngine()
	dsk := disk.MustNew(disk.Toshiba())
	firstCyl, err := label.AlignedFirstCyl(dsk.Geom(), 16, (dsk.Geom().Cylinders-48)/2)
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := label.NewRearrangedAt("test0", dsk.Geom(), firstCyl, 48)
	if err != nil {
		t.Fatal(err)
	}
	start := int64(256)
	size := (lbl.VirtualSectors() - start) / 16 * 16
	if _, err := lbl.AddPartition(start, size, label.TagFS); err != nil {
		t.Fatal(err)
	}
	if err := InitDisk(dsk, lbl, geom.Block8K); err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(plan)
	dsk.SetFaults(inj)
	drv, err := Attach(eng, dsk, Config{Faults: inj}, false)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dsk, drv
}

// physBlock returns the physical sector of partition block blk.
func physBlock(drv *Driver, blk int64) int64 {
	p, _ := drv.Label().Partition(0)
	return drv.Label().MapVirtual(p.Start + blk*16)
}

func TestTransientErrorsRetryAndRecover(t *testing.T) {
	// At p=0.2 with 3 retries, an operation fails outright only if four
	// consecutive draws fail (p=0.0016); with this seed none do.
	eng, _, drv := newFaultRig(t, fault.Plan{Seed: 5, TransientWrite: 0.2, TransientRead: 0.2})
	ring := telemetry.NewRing(256)
	drv.SetSink(ring)
	var failed int
	for b := int64(0); b < 30; b++ {
		drv.WriteBlock(0, b*40, blockOf(byte(b)), func(_ []byte, err error) {
			if err != nil {
				failed++
			}
		})
	}
	eng.Run()
	if failed != 0 {
		t.Fatalf("%d writes failed despite retries", failed)
	}
	c := drv.Counters()
	if c.Retries == 0 || c.Faults != c.Retries {
		t.Errorf("counters: %+v", c)
	}
	if c.Unrecovered != 0 {
		t.Errorf("unrecovered = %d", c.Unrecovered)
	}
	// Every retry waits at least RetryBaseMS, so the cumulative backoff
	// is bounded below by one base delay per retry.
	if min := float64(c.Retries) * drv.cfg.RetryBaseMS; c.BackoffMS < min {
		t.Errorf("BackoffMS = %v, want >= %v for %d retries", c.BackoffMS, min, c.Retries)
	}
	var retryEvents int
	for _, e := range ring.Events() {
		if e.Kind == telemetry.KindFault {
			if e.Class != "transient" || e.Action != "retry" {
				t.Errorf("fault event %+v", e)
			}
			retryEvents++
		}
	}
	if int64(retryEvents) != c.Retries {
		t.Errorf("%d retry events, %d retries counted", retryEvents, c.Retries)
	}
	if drv.Outstanding() != 0 {
		t.Errorf("Outstanding = %d", drv.Outstanding())
	}
	// The retry ladder's totals must surface in a metrics snapshot: the
	// func-backed counters resolve at snapshot time, so binding after
	// the run still exposes the lifetime values.
	reg := metrics.NewRegistry()
	drv.BindMetrics(reg)
	got := map[string]float64{}
	for _, m := range reg.Snapshot().Metrics {
		got[m.Name] = m.Value
	}
	if got["driver_retries"] != float64(c.Retries) {
		t.Errorf("driver_retries = %v, want %d", got["driver_retries"], c.Retries)
	}
	if got["driver_faults"] != float64(c.Faults) {
		t.Errorf("driver_faults = %v, want %d", got["driver_faults"], c.Faults)
	}
	if got["driver_backoff_ms"] != c.BackoffMS {
		t.Errorf("driver_backoff_ms = %v, want %v", got["driver_backoff_ms"], c.BackoffMS)
	}
}

func TestTransientBackoffAddsSimTime(t *testing.T) {
	// Every write attempt fails until retries are exhausted, so the
	// request's completion must lag by the full backoff ladder
	// (2 + 4 + 8 ms with the default base) with no mechanical time.
	eng, _, drv := newFaultRig(t, fault.Plan{Seed: 1, TransientWrite: 1})
	var doneAt float64 = -1
	var gotErr error
	drv.WriteBlock(0, 0, blockOf(1), func(_ []byte, err error) {
		doneAt, gotErr = eng.Now(), err
	})
	eng.Run()
	var fe *fault.Error
	if !errors.As(gotErr, &fe) || fe.Class != fault.Transient {
		t.Fatalf("error = %v", gotErr)
	}
	if doneAt != 2+4+8 {
		t.Errorf("failed at %v ms, want 14 (sum of backoffs)", doneAt)
	}
	if c := drv.Counters(); c.Retries != 3 || c.Unrecovered != 1 {
		t.Errorf("counters: %+v", c)
	}
}

func TestMediaWriteErrorRemaps(t *testing.T) {
	// Plan the bad range over a known data block: writes to it must be
	// remapped into a spare reserved slot, and reads must follow.
	//
	// The physical address is computed from an identical throwaway rig
	// so the plan can be set before the real one is built.
	_, _, scout := newFaultRig(t, fault.Plan{})
	badBlock := physBlock(scout, 1000)

	eng, dsk, drv := newFaultRig(t, fault.Plan{
		Bad: []fault.SectorRange{{Start: badBlock, End: badBlock + 16}},
	})
	want := blockOf(0x7A)
	var wErr error
	drv.WriteBlock(0, 1000, want, func(_ []byte, err error) { wErr = err })
	eng.Run()
	if wErr != nil {
		t.Fatalf("remapped write failed: %v", wErr)
	}
	rt := drv.RemapTable()
	if len(rt) != 1 || rt[0].Orig != badBlock {
		t.Fatalf("remap table %+v", rt)
	}
	if !drv.Label().InReserved(rt[0].Spare) {
		t.Errorf("spare %d outside the reserved region", rt[0].Spare)
	}
	if c := drv.Counters(); c.Remaps != 1 || c.Unrecovered != 0 {
		t.Errorf("counters: %+v", c)
	}
	// The data lives in the spare, and reads are redirected to it.
	if got := dsk.PeekData(rt[0].Spare, 16); !bytes.Equal(got, want) {
		t.Error("spare slot does not hold the written data")
	}
	var got []byte
	drv.ReadBlock(0, 1000, func(data []byte, err error) { got = data })
	eng.Run()
	if !bytes.Equal(got, want) {
		t.Error("read of remapped block returned wrong data")
	}
	// The arranger must not be offered the consumed spare.
	for _, cylSlots := range drv.ReservedSlots() {
		for _, s := range cylSlots {
			if s == rt[0].Spare {
				t.Fatal("spare slot still offered to the arranger")
			}
		}
	}
}

func TestMediaReadErrorPropagates(t *testing.T) {
	_, _, scout := newFaultRig(t, fault.Plan{})
	badBlock := physBlock(scout, 2000)

	eng, _, drv := newFaultRig(t, fault.Plan{
		Bad: []fault.SectorRange{{Start: badBlock, End: badBlock + 16}},
	})
	var calls int
	var gotErr error
	drv.ReadBlock(0, 2000, func(_ []byte, err error) { calls++; gotErr = err })
	eng.Run()
	var fe *fault.Error
	if calls != 1 || !errors.As(gotErr, &fe) || fe.Class != fault.Media {
		t.Fatalf("calls=%d err=%v", calls, gotErr)
	}
	if c := drv.Counters(); c.Unrecovered != 1 {
		t.Errorf("counters: %+v", c)
	}
	// The device survives: other blocks still work.
	var okErr error
	drv.ReadBlock(0, 3000, func(_ []byte, err error) { okErr = err })
	eng.Run()
	if okErr != nil {
		t.Errorf("read of healthy block after media error: %v", okErr)
	}
	if drv.Outstanding() != 0 {
		t.Errorf("Outstanding = %d", drv.Outstanding())
	}
}

func TestCrashKillsDeviceAndDrainsQueue(t *testing.T) {
	eng, _, drv := newFaultRig(t, fault.Plan{CrashAfterOps: 3})
	var errs []error
	for b := int64(0); b < 5; b++ {
		drv.WriteBlock(0, b*10, blockOf(byte(b)), func(_ []byte, err error) {
			errs = append(errs, err)
		})
	}
	eng.Run()
	if len(errs) != 5 {
		t.Fatalf("%d completions, want 5", len(errs))
	}
	var crashed int
	for _, err := range errs {
		if errors.Is(err, fault.ErrCrash) {
			crashed++
		}
	}
	if crashed != 3 {
		t.Errorf("%d of 5 requests crashed, want 3 (op 3 plus 2 queued)", crashed)
	}
	if !drv.Dead() {
		t.Fatal("driver not dead after power loss")
	}
	if drv.Outstanding() != 0 {
		t.Errorf("Outstanding = %d", drv.Outstanding())
	}
	// Requests issued after the crash fail immediately with ErrDead.
	var lateErr error
	drv.ReadBlock(0, 0, func(_ []byte, err error) { lateErr = err })
	eng.Run()
	if !errors.Is(lateErr, fault.ErrCrash) {
		t.Errorf("post-crash request: %v", lateErr)
	}
}

func TestDualSlotTableWritesAlternate(t *testing.T) {
	eng, dsk, drv := newFaultRig(t, fault.Plan{})
	slots := drv.ReservedSlots()
	var moveErr error
	drv.BCopy(physBlock(drv, 100), slots[0][0], func(err error) { moveErr = err })
	eng.Run()
	if moveErr != nil {
		t.Fatal(moveErr)
	}
	resStart := drv.Label().ReservedStart
	ss := slotSectors(geom.Block8K)
	slotA := dsk.PeekData(resStart, ss)
	slotB := dsk.PeekData(resStart+int64(ss), ss)
	// Generation 1 went to slot B; slot A still holds the initial
	// generation-0 empty table.
	a, errA := bt1(slotA)
	b, errB := bt1(slotB)
	if errA != nil || a != 0 {
		t.Errorf("slot A: gen=%d err=%v", a, errA)
	}
	if errB != nil || b != 1 {
		t.Errorf("slot B: gen=%d err=%v", b, errB)
	}
	drv.BCopy(physBlock(drv, 200), slots[0][1], func(err error) { moveErr = err })
	eng.Run()
	if moveErr != nil {
		t.Fatal(moveErr)
	}
	if a, errA = bt1(dsk.PeekData(resStart, ss)); errA != nil || a != 2 {
		t.Errorf("slot A after second move: gen=%d err=%v", a, errA)
	}
	// A fresh attach picks the highest-generation slot.
	drv2, err := Attach(sim.NewEngine(), dsk, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if drv2.BlockTableLen() != 2 {
		t.Errorf("re-attached table has %d entries, want 2", drv2.BlockTableLen())
	}
}

// bt1 decodes a table slot image and returns its generation.
func bt1(img []byte) (uint64, error) {
	tbl, err := blocktable.Decode(img)
	if err != nil {
		return 0, err
	}
	return tbl.Gen, nil
}

func TestLegacyModeStillWritesFullPrefix(t *testing.T) {
	// Without an injector the driver must keep the original single-image
	// table write, so zero-fault runs stay byte- and timing-identical.
	eng, dsk, drv := newRig(t)
	slots := drv.ReservedSlots()
	var moveErr error
	drv.BCopy(physBlock(drv, 100), slots[0][0], func(err error) { moveErr = err })
	eng.Run()
	if moveErr != nil {
		t.Fatal(moveErr)
	}
	tbl, err := blocktable.Decode(dsk.PeekData(drv.Label().ReservedStart, slotSectors(geom.Block8K)))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Gen != 0 || tbl.Len() != 1 {
		t.Errorf("legacy table: gen=%d len=%d", tbl.Gen, tbl.Len())
	}
}

// TestDoneExactlyOnceOnFailure exercises the error delivery contract of
// every failing entry point: done fires exactly once, with the error,
// and the driver returns to idle.
func TestDoneExactlyOnceOnFailure(t *testing.T) {
	_, _, scout := newFaultRig(t, fault.Plan{})
	badBlock := physBlock(scout, 500)

	eng, _, drv := newFaultRig(t, fault.Plan{
		Bad: []fault.SectorRange{{Start: badBlock, End: badBlock + 16}},
	})
	count := func(n *int, e *error) DoneFunc {
		return func(_ []byte, err error) { *n++; *e = err }
	}

	// Validation failure in blockIO.
	var nBad int
	var errBad error
	drv.ReadBlock(7, 0, count(&nBad, &errBad))
	// Validation failure in Physio.
	var nRaw int
	var errRaw error
	drv.Physio(false, -1, 16, nil, count(&nRaw, &errRaw))
	// Device failure inside a multi-piece Physio: the raw read spans
	// three blocks, the middle one bad.
	p, _ := drv.Label().Partition(0)
	vbad := p.Start + 500*16
	var nDev int
	var errDev error
	drv.Physio(false, vbad-16, 48, nil, count(&nDev, &errDev))
	eng.Run()

	if nBad != 1 || errBad == nil {
		t.Errorf("blockIO validation: %d calls, err=%v", nBad, errBad)
	}
	if nRaw != 1 || errRaw == nil {
		t.Errorf("Physio validation: %d calls, err=%v", nRaw, errRaw)
	}
	var fe *fault.Error
	if nDev != 1 || !errors.As(errDev, &fe) {
		t.Errorf("Physio device error: %d calls, err=%v", nDev, errDev)
	}
	if drv.Outstanding() != 0 {
		t.Errorf("Outstanding = %d", drv.Outstanding())
	}
}
