package driver

import (
	"bytes"
	"testing"

	"repro/internal/disk"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/sim"
)

// newRig builds a rearranged Toshiba disk with one file system partition
// covering the whole virtual disk, attaches a driver, and returns both.
func newRig(t *testing.T) (*sim.Engine, *disk.Disk, *Driver) {
	t.Helper()
	eng := sim.NewEngine()
	dsk := disk.MustNew(disk.Toshiba())
	firstCyl, err := label.AlignedFirstCyl(dsk.Geom(), 16, (dsk.Geom().Cylinders-48)/2)
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := label.NewRearrangedAt("test0", dsk.Geom(), firstCyl, 48)
	if err != nil {
		t.Fatal(err)
	}
	// Partition starts at block 16 (sector 256) to keep the label sector
	// out of block 0's way; size is the rest of the virtual disk,
	// rounded down to whole blocks.
	start := int64(256)
	size := (lbl.VirtualSectors() - start) / 16 * 16
	if _, err := lbl.AddPartition(start, size, label.TagFS); err != nil {
		t.Fatal(err)
	}
	if err := InitDisk(dsk, lbl, geom.Block8K); err != nil {
		t.Fatal(err)
	}
	drv, err := Attach(eng, dsk, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dsk, drv
}

func blockOf(b byte) []byte { return bytes.Repeat([]byte{b}, geom.Block8K.Bytes()) }

func TestAttachReadsLabel(t *testing.T) {
	_, _, drv := newRig(t)
	if !drv.Rearranged() {
		t.Fatal("driver did not detect rearranged disk")
	}
	if drv.BlockTableLen() != 0 {
		t.Errorf("fresh disk has %d rearranged blocks", drv.BlockTableLen())
	}
	first, count := drv.Label().ReservedCyls()
	// 380 is the largest block-aligned first cylinder at or below the
	// exact center (383).
	if count != 48 || first != 380 {
		t.Errorf("reserved cylinders = (%d, %d)", first, count)
	}
}

func TestAttachRejectsUnlabeledDisk(t *testing.T) {
	eng := sim.NewEngine()
	dsk := disk.MustNew(disk.Toshiba())
	if _, err := Attach(eng, dsk, Config{}, false); err == nil {
		t.Fatal("attach to unlabeled disk succeeded")
	}
}

func TestBlockReadWrite(t *testing.T) {
	eng, _, drv := newRig(t)
	want := blockOf(0x42)
	var wroteErr, readErr error
	var got []byte
	drv.WriteBlock(0, 100, want, func(_ []byte, err error) { wroteErr = err })
	eng.Run()
	drv.ReadBlock(0, 100, func(data []byte, err error) { got, readErr = data, err })
	eng.Run()
	if wroteErr != nil || readErr != nil {
		t.Fatalf("errors: write=%v read=%v", wroteErr, readErr)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read returned different data")
	}
}

func TestBlockAddressValidation(t *testing.T) {
	eng, _, drv := newRig(t)
	var errs []error
	collect := func(_ []byte, err error) { errs = append(errs, err) }
	drv.ReadBlock(5, 0, collect)             // no such partition
	drv.ReadBlock(0, -1, collect)            // negative block
	drv.ReadBlock(0, 1<<40, collect)         // beyond partition
	drv.WriteBlock(0, 0, []byte{1}, collect) // short data
	eng.Run()
	if len(errs) != 4 {
		t.Fatalf("got %d completions, want 4", len(errs))
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestVirtualMappingAvoidsReserved(t *testing.T) {
	eng, dsk, drv := newRig(t)
	lbl := drv.Label()
	// Write every 500th block of the partition; verify no write landed
	// in the reserved region by checking the reserved sectors stay zero.
	p, _ := lbl.Partition(0)
	nblocks := p.Size / 16
	for b := int64(0); b < nblocks; b += 500 {
		drv.WriteBlock(0, b, blockOf(0xEE), nil)
	}
	eng.Run()
	res := dsk.PeekData(lbl.ReservedStart+int64(TableSectors(geom.Block8K)), 64)
	for _, by := range res {
		if by != 0 {
			t.Fatal("file system write landed in the reserved region")
		}
	}
}

func TestBCopyRedirectsRequests(t *testing.T) {
	eng, dsk, drv := newRig(t)
	lbl := drv.Label()
	p, _ := lbl.Partition(0)

	// Write a marker block through the fs interface.
	drv.WriteBlock(0, 10, blockOf(0xAB), nil)
	eng.Run()

	orig := lbl.MapVirtual(p.Start + 10*16)
	slots := drv.ReservedSlots()
	dst := slots[0][0]
	var cpErr error
	drv.BCopy(orig, dst, func(err error) { cpErr = err })
	eng.Run()
	if cpErr != nil {
		t.Fatal(cpErr)
	}
	if drv.BlockTableLen() != 1 {
		t.Fatalf("table has %d entries", drv.BlockTableLen())
	}
	// The reserved slot now holds the data.
	if got := dsk.PeekData(dst, 16); got[0] != 0xAB {
		t.Fatal("reserved copy does not hold block data")
	}
	// A write through the fs goes to the reserved copy, not the original.
	drv.WriteBlock(0, 10, blockOf(0xCD), nil)
	eng.Run()
	if got := dsk.PeekData(dst, 16); got[0] != 0xCD {
		t.Fatal("write was not redirected to the reserved copy")
	}
	if got := dsk.PeekData(orig, 16); got[0] != 0xAB {
		t.Fatal("write modified the original location")
	}
	// Reads see the new data.
	var read []byte
	drv.ReadBlock(0, 10, func(data []byte, err error) { read = data })
	eng.Run()
	if read[0] != 0xCD {
		t.Fatal("read did not return redirected data")
	}
}

func TestBCopyValidation(t *testing.T) {
	eng, _, drv := newRig(t)
	lbl := drv.Label()
	slots := drv.ReservedSlots()
	dst := slots[0][0]
	check := func(name string, orig, d int64) {
		t.Helper()
		var got error
		drv.BCopy(orig, d, func(err error) { got = err })
		eng.Run()
		if got == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	check("misaligned orig", 7, dst)
	check("misaligned dst", 160, dst+1)
	check("orig in reserved", lbl.ReservedStart+int64(TableSectors(geom.Block8K)), dst)
	check("dst outside reserved", 160, 320)
	check("dst inside table prefix", 160, lbl.ReservedStart)
	// A valid copy, then a duplicate.
	var err1 error
	drv.BCopy(160, dst, func(err error) { err1 = err })
	eng.Run()
	if err1 != nil {
		t.Fatalf("valid copy failed: %v", err1)
	}
	check("duplicate orig", 160, slots[0][1])
	check("occupied dst", 320, dst)
}

func TestCleanRestoresDirtyBlocks(t *testing.T) {
	eng, dsk, drv := newRig(t)
	lbl := drv.Label()
	p, _ := lbl.Partition(0)

	drv.WriteBlock(0, 10, blockOf(0x11), nil)
	drv.WriteBlock(0, 20, blockOf(0x22), nil)
	eng.Run()
	orig10 := lbl.MapVirtual(p.Start + 10*16)
	orig20 := lbl.MapVirtual(p.Start + 20*16)
	slots := drv.ReservedSlots()
	drv.BCopy(orig10, slots[0][0], nil)
	drv.BCopy(orig20, slots[0][1], nil)
	eng.Run()

	// Dirty block 10 through the driver; leave block 20 clean.
	drv.WriteBlock(0, 10, blockOf(0x99), nil)
	eng.Run()

	var cleanErr error
	drv.Clean(func(err error) { cleanErr = err })
	eng.Run()
	if cleanErr != nil {
		t.Fatal(cleanErr)
	}
	if drv.BlockTableLen() != 0 {
		t.Fatalf("table still has %d entries after clean", drv.BlockTableLen())
	}
	// Dirty data copied back to the original location.
	if got := dsk.PeekData(orig10, 16); got[0] != 0x99 {
		t.Fatal("dirty block not restored to original location")
	}
	if got := dsk.PeekData(orig20, 16); got[0] != 0x22 {
		t.Fatal("clean block's original location corrupted")
	}
	// Reads now come from the original locations.
	var read []byte
	drv.ReadBlock(0, 10, func(data []byte, err error) { read = data })
	eng.Run()
	if read[0] != 0x99 {
		t.Fatal("post-clean read returned stale data")
	}
}

func TestBlockTableSurvivesReattach(t *testing.T) {
	eng, dsk, drv := newRig(t)
	lbl := drv.Label()
	p, _ := lbl.Partition(0)
	drv.WriteBlock(0, 10, blockOf(0x77), nil)
	eng.Run()
	orig := lbl.MapVirtual(p.Start + 10*16)
	drv.BCopy(orig, drv.ReservedSlots()[0][0], nil)
	eng.Run()

	// "Reboot": attach a fresh driver to the same disk.
	drv2, err := Attach(sim.NewEngine(), dsk, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if drv2.BlockTableLen() != 1 {
		t.Fatalf("reattached driver sees %d entries", drv2.BlockTableLen())
	}
}

func TestCrashRecoveryMarksDirty(t *testing.T) {
	eng, dsk, drv := newRig(t)
	lbl := drv.Label()
	p, _ := lbl.Partition(0)
	drv.WriteBlock(0, 10, blockOf(0x55), nil)
	eng.Run()
	orig := lbl.MapVirtual(p.Start + 10*16)
	dst := drv.ReservedSlots()[0][0]
	drv.BCopy(orig, dst, nil)
	eng.Run()

	// Write to the rearranged block; the in-memory dirty bit is set but
	// the on-disk table still says clean. Then "crash".
	drv.WriteBlock(0, 10, blockOf(0x66), nil)
	eng.Run()

	eng2 := sim.NewEngine()
	drv2, err := Attach(eng2, dsk, Config{}, true) // recovery path
	if err != nil {
		t.Fatal(err)
	}
	var cleanErr error
	drv2.Clean(func(err error) { cleanErr = err })
	eng2.Run()
	if cleanErr != nil {
		t.Fatal(cleanErr)
	}
	// Because recovery marked the block dirty, the update must have been
	// copied back.
	if got := dsk.PeekData(orig, 16); got[0] != 0x66 {
		t.Fatal("update to repositioned block lost after crash recovery")
	}
}

func TestNonRecoveryAttachWouldLoseUpdate(t *testing.T) {
	// Companion to the recovery test: without the conservative path, the
	// stale on-disk clean bit loses the update — demonstrating why the
	// paper's driver marks everything dirty after a failure.
	eng, dsk, drv := newRig(t)
	lbl := drv.Label()
	p, _ := lbl.Partition(0)
	drv.WriteBlock(0, 10, blockOf(0x55), nil)
	eng.Run()
	orig := lbl.MapVirtual(p.Start + 10*16)
	drv.BCopy(orig, drv.ReservedSlots()[0][0], nil)
	eng.Run()
	drv.WriteBlock(0, 10, blockOf(0x66), nil)
	eng.Run()

	eng2 := sim.NewEngine()
	drv2, err := Attach(eng2, dsk, Config{}, false)
	if err != nil {
		t.Fatal(err)
	}
	drv2.Clean(nil)
	eng2.Run()
	if got := dsk.PeekData(orig, 16); got[0] == 0x66 {
		t.Skip("update survived; disk layout changed — recovery test covers the invariant")
	}
}

func TestPhysioSplitsAndReassembles(t *testing.T) {
	eng, _, drv := newRig(t)
	lbl := drv.Label()
	p, _ := lbl.Partition(0)

	// Rearrange block 10 so a large raw read straddles a rearranged and
	// a plain block.
	drv.WriteBlock(0, 10, blockOf(0xAA), nil)
	drv.WriteBlock(0, 11, blockOf(0xBB), nil)
	eng.Run()
	orig := lbl.MapVirtual(p.Start + 10*16)
	drv.BCopy(orig, drv.ReservedSlots()[0][0], nil)
	eng.Run()

	// Raw read spanning blocks 10 and 11, starting mid-block.
	start := p.Start + 10*16 + 8
	var got []byte
	drv.Physio(false, start, 16, nil, func(data []byte, err error) {
		if err != nil {
			t.Errorf("physio: %v", err)
		}
		got = data
	})
	eng.Run()
	if len(got) != 16*geom.SectorSize {
		t.Fatalf("physio returned %d bytes", len(got))
	}
	// First 8 sectors from block 10 (0xAA), next 8 from block 11 (0xBB).
	if got[0] != 0xAA || got[8*geom.SectorSize] != 0xBB {
		t.Fatalf("physio data wrong: %x %x", got[0], got[8*geom.SectorSize])
	}
}

func TestPhysioWrite(t *testing.T) {
	eng, _, drv := newRig(t)
	p, _ := drv.Label().Partition(0)
	data := bytes.Repeat([]byte{0x3C}, 40*geom.SectorSize)
	var werr error
	drv.Physio(true, p.Start+100*16, 40, data, func(_ []byte, err error) { werr = err })
	eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	var got []byte
	drv.Physio(false, p.Start+100*16, 40, nil, func(d []byte, err error) { got = d })
	eng.Run()
	if !bytes.Equal(got, data) {
		t.Fatal("physio write/read mismatch")
	}
}

func TestPhysioValidation(t *testing.T) {
	eng, _, drv := newRig(t)
	var errs []error
	collect := func(_ []byte, err error) { errs = append(errs, err) }
	drv.Physio(false, -1, 16, nil, collect)
	drv.Physio(false, 0, 0, nil, collect)
	drv.Physio(false, drv.Label().VirtualSectors(), 16, nil, collect)
	drv.Physio(true, 0, 16, []byte{1, 2}, collect)
	eng.Run()
	if len(errs) != 4 {
		t.Fatalf("%d completions, want 4", len(errs))
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRequestsDelayedDuringMove(t *testing.T) {
	eng, _, drv := newRig(t)
	lbl := drv.Label()
	p, _ := lbl.Partition(0)
	drv.WriteBlock(0, 10, blockOf(0x10), nil)
	eng.Run()
	orig := lbl.MapVirtual(p.Start + 10*16)

	// Start a copy and immediately issue a read for the same block; the
	// read must complete after the copy and return consistent data.
	var copyDone, readDone float64
	var read []byte
	drv.BCopy(orig, drv.ReservedSlots()[0][0], func(err error) {
		if err != nil {
			t.Errorf("bcopy: %v", err)
		}
		copyDone = eng.Now()
	})
	drv.ReadBlock(0, 10, func(data []byte, err error) {
		read = data
		readDone = eng.Now()
	})
	eng.Run()
	if readDone < copyDone {
		t.Errorf("read (t=%v) completed before move (t=%v)", readDone, copyDone)
	}
	if read[0] != 0x10 {
		t.Error("delayed read returned wrong data")
	}
}

func TestRequestMonitoring(t *testing.T) {
	eng, _, drv := newRig(t)
	drv.ReadBlock(0, 5, nil)
	drv.WriteBlock(0, 6, blockOf(1), nil)
	eng.Run()
	recs, missed := drv.ReadRequestTable()
	if missed != 0 {
		t.Errorf("missed = %d", missed)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Write || !recs[1].Write {
		t.Error("read/write flags wrong")
	}
	if recs[0].Sectors != 16 {
		t.Errorf("record size = %d sectors", recs[0].Sectors)
	}
	// Table is cleared by the read.
	recs, _ = drv.ReadRequestTable()
	if len(recs) != 0 {
		t.Error("table not cleared")
	}
}

func TestRequestMonitoringSuspendsWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	dsk := disk.MustNew(disk.Toshiba())
	firstCyl, err := label.AlignedFirstCyl(dsk.Geom(), 16, (dsk.Geom().Cylinders-48)/2)
	if err != nil {
		t.Fatal(err)
	}
	lbl, err := label.NewRearrangedAt("t", dsk.Geom(), firstCyl, 48)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lbl.AddPartition(256, 160000, label.TagFS); err != nil {
		t.Fatal(err)
	}
	if err := InitDisk(dsk, lbl, geom.Block8K); err != nil {
		t.Fatal(err)
	}
	drv, err := Attach(eng, dsk, Config{RequestTableSize: 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		drv.ReadBlock(0, i, nil)
	}
	eng.Run()
	recs, missed := drv.ReadRequestTable()
	if len(recs) != 4 {
		t.Errorf("recorded %d, want 4", len(recs))
	}
	if missed != 6 {
		t.Errorf("missed = %d, want 6", missed)
	}
}

func TestStatsRecorded(t *testing.T) {
	eng, _, drv := newRig(t)
	for i := int64(0); i < 20; i++ {
		drv.ReadBlock(0, i*137, nil)
	}
	drv.WriteBlock(0, 3000, blockOf(9), nil)
	eng.Run()
	st := drv.ReadStats()
	if st.ReadSide.Count() != 20 {
		t.Errorf("read count = %d", st.ReadSide.Count())
	}
	if st.WriteSide.Count() != 1 {
		t.Errorf("write count = %d", st.WriteSide.Count())
	}
	if st.ReadSide.MeanServiceMS() <= 0 {
		t.Error("no service time recorded")
	}
	if st.ReadSide.SchedDist.Count() != 20 {
		t.Errorf("sched dist count = %d", st.ReadSide.SchedDist.Count())
	}
	// FCFS distances: one per arrival after the first (the write's
	// arrival consumes one gap in its own side).
	all := st.All()
	if got := all.FCFSDist.Count(); got != 20 {
		t.Errorf("total FCFS gaps = %d, want 20", got)
	}
	// Clearing works.
	if drv.PeekStats().ReadSide.Count() != 0 {
		t.Error("ReadStats did not clear")
	}
}

func TestInternalOpsNotCounted(t *testing.T) {
	eng, _, drv := newRig(t)
	drv.WriteBlock(0, 10, blockOf(1), nil)
	eng.Run()
	orig := drv.Label().MapVirtual(256 + 10*16)
	drv.ReadStats()        // clear fs traffic
	drv.ReadRequestTable() // and the monitoring table
	drv.BCopy(orig, drv.ReservedSlots()[0][0], nil)
	eng.Run()
	st := drv.PeekStats()
	if n := st.All().Count(); n != 0 {
		t.Errorf("block movement recorded %d requests in stats", n)
	}
	if recs, _ := drv.ReadRequestTable(); len(recs) != 0 {
		t.Errorf("block movement recorded %d requests in monitor", len(recs))
	}
}

func TestQueueingUnderBurst(t *testing.T) {
	eng, _, drv := newRig(t)
	// Issue a burst of 50 requests at t=0; later arrivals must wait.
	for i := int64(0); i < 50; i++ {
		drv.ReadBlock(0, i*211, nil)
	}
	eng.Run()
	st := drv.ReadStats()
	if st.ReadSide.MeanQueueingMS() <= 0 {
		t.Error("burst produced no queueing time")
	}
	if st.ReadSide.Queueing.MeanMS() < st.ReadSide.Service.MeanMS() {
		t.Error("burst queueing should exceed single service time on average")
	}
}

func TestSCANReordersBurst(t *testing.T) {
	// With SCAN, total seek distance over a burst must not exceed FCFS.
	eng, _, drv := newRig(t)
	for i := int64(0); i < 100; i++ {
		// Alternate far-apart cylinders so FCFS is terrible.
		blk := (i % 2) * 30000
		drv.ReadBlock(0, blk+i, nil)
	}
	eng.Run()
	st := drv.ReadStats()
	sched := st.ReadSide.SchedDist.MeanDist()
	fcfs := st.ReadSide.FCFSDist.MeanDist()
	if sched >= fcfs {
		t.Errorf("SCAN mean dist %v >= FCFS %v", sched, fcfs)
	}
}

func TestAttachRejectsMisalignedReservedRegion(t *testing.T) {
	// Regression test: cylinder 383 × 340 sectors = 130220 is not 8K
	// aligned, so a virtual file system block would straddle the
	// reserved region's start — overlapping the on-disk block table.
	// Attach must refuse such a label rather than corrupt data.
	eng := sim.NewEngine()
	dsk := disk.MustNew(disk.Toshiba())
	lbl, err := label.NewRearrangedAt("bad", dsk.Geom(), 383, 48)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lbl.AddPartition(16, 160000, label.TagFS); err != nil {
		t.Fatal(err)
	}
	if err := InitDisk(dsk, lbl, geom.Block8K); err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(eng, dsk, Config{}, false); err == nil {
		t.Fatal("attach accepted a misaligned reserved region")
	}
}

func TestBoundaryBlocksDoNotTouchBlockTable(t *testing.T) {
	// With an aligned region, writing every block around the mapping
	// discontinuity must leave the on-disk block table intact across a
	// re-attach.
	eng, _, drv := newRig(t)
	lbl := drv.Label()
	bsec := int64(16)
	boundaryBlock := lbl.ReservedStart / bsec // virtual block just below the region
	p, _ := lbl.Partition(0)
	for b := boundaryBlock - 3; b <= boundaryBlock+3; b++ {
		blk := b - p.Start/bsec
		if blk < 0 || (blk+1)*bsec > p.Size {
			continue
		}
		var werr error
		drv.WriteBlock(0, blk, blockOf(0xDD), func(_ []byte, err error) { werr = err })
		eng.Run()
		if werr != nil {
			t.Fatalf("block %d: %v", blk, werr)
		}
	}
	// Install one mapping so the table is non-trivial, then re-attach.
	drv.BCopy(160, drv.ReservedSlots()[0][0], nil)
	eng.Run()
	drv2, err := Attach(sim.NewEngine(), drv.Disk(), Config{}, false)
	if err != nil {
		t.Fatalf("re-attach after boundary writes: %v", err)
	}
	if drv2.BlockTableLen() != 1 {
		t.Errorf("block table lost entries: %d", drv2.BlockTableLen())
	}
}
