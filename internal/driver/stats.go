package driver

import (
	"repro/internal/seek"
	"repro/internal/stats"
)

// This file implements the driver's monitoring functions (Sections 4.1.4
// and 4.1.5): the request table read by the reference stream analyzer
// and the performance statistics used for evaluation.

// ReqRecord is one entry of the request-monitoring table: the original
// physical address of the block a request targeted (before any
// redirect), the request size in sectors, and the direction.
type ReqRecord struct {
	Sector  int64
	Sectors int
	Write   bool
}

// monitor is the fixed-size request table. When it fills before being
// read, recording is suspended until the next read clears it.
type monitor struct {
	records   []ReqRecord
	capacity  int
	suspended int64 // requests missed while the table was full
}

func newMonitor(capacity int) *monitor {
	return &monitor{capacity: capacity}
}

func (m *monitor) record(sector int64, sectors int, write bool) {
	if len(m.records) >= m.capacity {
		m.suspended++
		return
	}
	m.records = append(m.records, ReqRecord{Sector: sector, Sectors: sectors, Write: write})
}

// ReadRequestTable returns the request table contents and the number of
// requests missed because the table was full, then clears the table and
// resumes recording — the monitoring ioctl of Section 4.1.4.
func (d *Driver) ReadRequestTable() ([]ReqRecord, int64) {
	recs := d.mon.records
	missed := d.mon.suspended
	d.mon.records = nil
	d.mon.suspended = 0
	return recs, missed
}

// Side holds the statistics for one request direction (reads or writes).
type Side struct {
	// FCFSDist is the seek-distance distribution in arrival order, over
	// original (unrearranged) block addresses: what FCFS service without
	// rearrangement would have seen.
	FCFSDist *stats.DistHist
	// SchedDist is the seek-distance distribution in scheduled order:
	// the head movements that actually occurred.
	SchedDist *stats.DistHist
	// Service and Queueing are the time distributions, at 1 ms bucket
	// resolution with full-resolution cumulative sums.
	Service  *stats.TimeHist
	Queueing *stats.TimeHist
	// SeekMS, RotMS and TransferMS are full-resolution cumulative
	// components of the measured service times.
	SeekMS     float64
	RotMS      float64
	TransferMS float64
	// BufferHits counts reads satisfied by the drive's read-ahead buffer.
	BufferHits int64
	// Redirected counts requests that were redirected into the reserved
	// region by the block table.
	Redirected int64
}

func newSide(histMaxMS int) *Side {
	return &Side{
		FCFSDist:  stats.NewDistHist(),
		SchedDist: stats.NewDistHist(),
		Service:   stats.NewTimeHist(histMaxMS),
		Queueing:  stats.NewTimeHist(histMaxMS),
	}
}

// Count returns the number of completed requests on this side.
func (s *Side) Count() int64 { return s.Service.Count() }

// MeanServiceMS returns the mean measured service time.
func (s *Side) MeanServiceMS() float64 { return s.Service.MeanMS() }

// MeanQueueingMS returns the mean measured queueing (waiting) time.
func (s *Side) MeanQueueingMS() float64 { return s.Queueing.MeanMS() }

// MeanSeekMS computes the mean seek time from the scheduled-order
// distance distribution and a seek curve, as the paper's tables do.
func (s *Side) MeanSeekMS(c seek.Curve) float64 { return s.SchedDist.MeanSeekMS(c) }

// FCFSMeanSeekMS computes the mean seek time the arrival-order
// distances would have produced.
func (s *Side) FCFSMeanSeekMS(c seek.Curve) float64 { return s.FCFSDist.MeanSeekMS(c) }

// MeanRotTransferMS returns the mean rotational latency plus transfer
// time per request (Table 10's metric).
func (s *Side) MeanRotTransferMS() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return (s.RotMS + s.TransferMS) / float64(n)
}

// merge adds other's samples into s.
func (s *Side) merge(other *Side) {
	s.FCFSDist.Merge(other.FCFSDist)
	s.SchedDist.Merge(other.SchedDist)
	// Histograms share a bucket range within one driver; a mismatch is a
	// programming error surfaced by Merge's error (ignored: same config).
	_ = s.Service.Merge(other.Service)
	_ = s.Queueing.Merge(other.Queueing)
	s.SeekMS += other.SeekMS
	s.RotMS += other.RotMS
	s.TransferMS += other.TransferMS
	s.BufferHits += other.BufferHits
	s.Redirected += other.Redirected
}

// Stats is the driver's performance-statistics table, kept separately
// for reads and writes as in Section 4.1.5.
type Stats struct {
	ReadSide  *Side
	WriteSide *Side
	histMaxMS int
}

func newStats(histMaxMS int) *Stats {
	return &Stats{
		ReadSide:  newSide(histMaxMS),
		WriteSide: newSide(histMaxMS),
		histMaxMS: histMaxMS,
	}
}

func (s *Stats) side(write bool) *Side {
	if write {
		return s.WriteSide
	}
	return s.ReadSide
}

// All returns a merged view of both directions. The result is a fresh
// copy; mutating it does not affect the driver.
func (s *Stats) All() *Side {
	out := newSide(s.histMaxMS)
	out.merge(s.ReadSide)
	out.merge(s.WriteSide)
	return out
}

// ReadStats returns a snapshot of the statistics and clears them — the
// performance-monitoring ioctl, which also clears the table.
func (d *Driver) ReadStats() *Stats {
	out := d.stats
	d.stats = newStats(d.cfg.HistMaxMS)
	// Arrival-order tracking restarts with the new window.
	d.haveFCFSPrev = false
	return out
}

// PeekStats returns the live statistics without clearing them. Intended
// for tests and progress displays.
func (d *Driver) PeekStats() *Stats { return d.stats }
