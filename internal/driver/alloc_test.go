package driver

import "testing"

// Allocation regression tests for the request round trip. The budget:
//
//   - writes: 0 allocations — the ioreq comes from the driver's pool,
//     the completion event is the ioreq itself (sim.Caller), the
//     scheduler candidates and device queue reuse their backing arrays,
//     and the disk stores into already-allocated pages;
//   - reads: 1 allocation — the disk model materializes the returned
//     data as a fresh buffer, which the completion hands to the caller
//     (ownership transfer; the driver cannot reuse it).
//
// These bounds keep per-event closures and container/heap-style boxing
// from silently returning to the hot path.

func TestWriteRoundTripZeroAllocs(t *testing.T) {
	eng, _, drv := newRig(t)
	data := blockOf(0x5a)
	done := func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: grows the request pool, queue, heap backing array, the
	// histogram buckets this access pattern touches, and the disk pages
	// backing the block.
	for i := 0; i < 64; i++ {
		drv.WriteBlock(0, 100, data, done)
		eng.Run()
	}
	if n := testing.AllocsPerRun(500, func() {
		drv.WriteBlock(0, 100, data, done)
		eng.Run()
	}); n != 0 {
		t.Errorf("write round trip: %v allocs, want 0", n)
	}
}

func TestReadRoundTripOneAlloc(t *testing.T) {
	eng, _, drv := newRig(t)
	data := blockOf(0x5a)
	werr := error(nil)
	drv.WriteBlock(0, 100, data, func(_ []byte, err error) { werr = err })
	eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	done := func(got []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatal("read returned no data")
		}
	}
	for i := 0; i < 64; i++ {
		drv.ReadBlock(0, 100, done)
		eng.Run()
	}
	if n := testing.AllocsPerRun(500, func() {
		drv.ReadBlock(0, 100, done)
		eng.Run()
	}); n > 1 {
		t.Errorf("read round trip: %v allocs, want at most 1 (the returned data buffer)", n)
	}
}
