// Package devtest exercises implementations of driver.BlockDevice
// against the interface's contract, in the style of testing/fstest: an
// implementation package builds a Harness around its device and calls
// TestDevice to run the battery of conformance subtests.
//
// The battery pins the parts of the contract that are easy to violate
// from inside a new implementation and hard to debug from above it:
//
//   - geometry: BlockSize is positive, the label exists, and partition
//     0 covers every addressable block;
//   - data: writes of exactly one block are durable and read back
//     byte-identical, blocks do not alias one another, and reads
//     deliver exactly one block of data;
//   - bounds: out-of-range blocks fail with driver.ErrBadBlock, bad
//     partitions fail, and neither is delivered synchronously;
//   - write sizing: any length other than exactly one block fails;
//   - asynchrony: no completion callback — success or error — ever
//     runs inside the issuing call;
//   - death: after the harness's Kill hook, requests either fail with
//     driver.ErrDead (unwrapping to fault.ErrCrash) or, for redundant
//     devices, keep succeeding with the data intact; and once the
//     Overwhelm hook pushes losses beyond the redundancy budget, a
//     redundant device fails requests with the same ErrDead taxonomy.
package devtest

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/driver"
	"repro/internal/fault"
)

// Harness is one device under test plus the hooks devtest needs to
// drive it. Builders return a fresh harness per subtest, so subtests
// are independent and destructive hooks cannot leak state.
type Harness struct {
	// Dev is the device under test.
	Dev driver.BlockDevice
	// Run drives the device's simulation until quiescence; every
	// completion callback of previously issued requests has fired when
	// it returns.
	Run func()
	// Blocks is the number of addressable blocks of partition 0.
	Blocks int64
	// Kill, when non-nil, makes part of the device dead: the whole
	// device for a single disk, one member for a volume. It is called
	// only when the harness was built with kill=true, and may issue
	// (and discard) sacrificial requests to trip a fault plan. A nil
	// Kill skips the death subtests.
	Kill func()
	// DeadBlock is a block whose requests reach the part Kill killed.
	DeadBlock int64
	// DeadIsFatal reports the device's death semantics: true when
	// requests to DeadBlock must fail with driver.ErrDead after Kill
	// (single disk, concat, stripe), false when the device must keep
	// serving them (mirror, RAID-5/6 within the parity budget).
	DeadIsFatal bool
	// Overwhelm, when non-nil on a redundant harness, kills enough
	// additional members to exceed the redundancy budget (the mirror's
	// last replica, one more member than a parity layout covers). After
	// it runs, requests to DeadBlock must fail with driver.ErrDead
	// unwrapping to fault.ErrCrash, like any fatal device.
	Overwhelm func()
}

// Builder constructs a fresh device harness. kill is true when the
// subtest will invoke the Kill hook, so builders only wire destructive
// fault plans into harnesses whose other behavior no subtest depends
// on.
type Builder func(t *testing.T, kill bool) *Harness

// TestDevice runs the conformance battery against the devices build
// produces.
func TestDevice(t *testing.T, build Builder) {
	t.Run("geometry", func(t *testing.T) { testGeometry(t, build(t, false)) })
	t.Run("readback", func(t *testing.T) { testReadback(t, build(t, false)) })
	t.Run("write-sizing", func(t *testing.T) { testWriteSizing(t, build(t, false)) })
	t.Run("bounds", func(t *testing.T) { testBounds(t, build(t, false)) })
	t.Run("async-completion", func(t *testing.T) { testAsync(t, build(t, false)) })
	t.Run("dead", func(t *testing.T) {
		h := build(t, true)
		if h.Kill == nil {
			t.Skip("harness has no kill hook")
		}
		testDead(t, h)
	})
}

// write issues one block write and drives the simulation to its
// completion.
func (h *Harness) write(t *testing.T, blk int64, data []byte) error {
	t.Helper()
	var res error
	fired := false
	h.Dev.WriteBlock(0, blk, data, func(_ []byte, err error) { res, fired = err, true })
	h.Run()
	if !fired {
		t.Fatalf("write of block %d never completed", blk)
	}
	return res
}

// read issues one block read and drives the simulation to its
// completion.
func (h *Harness) read(t *testing.T, blk int64) ([]byte, error) {
	t.Helper()
	var data []byte
	var res error
	fired := false
	h.Dev.ReadBlock(0, blk, func(d []byte, err error) { data, res, fired = d, err, true })
	h.Run()
	if !fired {
		t.Fatalf("read of block %d never completed", blk)
	}
	return data, res
}

// block builds one block-sized buffer filled with b.
func (h *Harness) block(b byte) []byte {
	return bytes.Repeat([]byte{b}, h.Dev.BlockSize().Bytes())
}

func testGeometry(t *testing.T, h *Harness) {
	bs := h.Dev.BlockSize()
	if bs.Bytes() <= 0 || bs.Sectors() <= 0 {
		t.Fatalf("BlockSize %v has non-positive size", bs)
	}
	if h.Blocks <= 0 {
		t.Fatalf("harness reports %d addressable blocks", h.Blocks)
	}
	lbl := h.Dev.Label()
	if lbl == nil {
		t.Fatal("Label() = nil")
	}
	p, err := lbl.Partition(0)
	if err != nil {
		t.Fatalf("no partition 0: %v", err)
	}
	if want := h.Blocks * int64(bs.Sectors()); p.Size < want {
		t.Fatalf("partition 0 holds %d sectors, need %d for %d blocks",
			p.Size, want, h.Blocks)
	}
}

func testReadback(t *testing.T, h *Harness) {
	// Three spread-out blocks with distinct patterns: aliasing between
	// members (a bad locate) or between neighbor blocks (a bad sector
	// translation) surfaces as cross-contamination.
	blks := []int64{0, h.Blocks / 2, h.Blocks - 1}
	for i, blk := range blks {
		if err := h.write(t, blk, h.block(byte(0xA0+i))); err != nil {
			t.Fatalf("write block %d: %v", blk, err)
		}
	}
	for i, blk := range blks {
		got, err := h.read(t, blk)
		if err != nil {
			t.Fatalf("read block %d: %v", blk, err)
		}
		if len(got) != h.Dev.BlockSize().Bytes() {
			t.Fatalf("read block %d delivered %d bytes, want one block (%d)",
				blk, len(got), h.Dev.BlockSize().Bytes())
		}
		if want := h.block(byte(0xA0 + i)); !bytes.Equal(got, want) {
			t.Fatalf("read block %d: data differs from what was written (got %#x... want %#x...)",
				blk, got[0], want[0])
		}
	}
}

func testWriteSizing(t *testing.T, h *Harness) {
	short := h.block(1)[:h.Dev.BlockSize().Bytes()-1]
	if err := h.write(t, 0, short); err == nil {
		t.Error("short write accepted")
	}
	long := append(h.block(1), 0)
	if err := h.write(t, 0, long); err == nil {
		t.Error("long write accepted")
	}
	if err := h.write(t, 0, nil); err == nil {
		t.Error("nil-buffer write accepted")
	}
	// Sizing errors must not corrupt the device or wedge the queue.
	if err := h.write(t, 0, h.block(2)); err != nil {
		t.Fatalf("valid write after sizing errors: %v", err)
	}
}

func testBounds(t *testing.T, h *Harness) {
	for _, blk := range []int64{-1, h.Blocks} {
		if _, err := h.read(t, blk); !errors.Is(err, driver.ErrBadBlock) {
			t.Errorf("read of block %d: err = %v, want ErrBadBlock", blk, err)
		}
		if err := h.write(t, blk, h.block(3)); !errors.Is(err, driver.ErrBadBlock) {
			t.Errorf("write of block %d: err = %v, want ErrBadBlock", blk, err)
		}
	}
	var res error
	fired := false
	h.Dev.ReadBlock(97, 0, func(_ []byte, err error) { res, fired = err, true })
	h.Run()
	if !fired || res == nil {
		t.Errorf("read of partition 97: err = %v (fired=%v), want an error", res, fired)
	}
}

func testAsync(t *testing.T, h *Harness) {
	// The interface contract: done fires at completion in simulated
	// time, never inside the issuing call — layered code (the cache's
	// readNext chains) re-enters the device from its callbacks and
	// would otherwise recurse on its own locks. Error deliveries are
	// the easy ones to get wrong.
	cases := []struct {
		name  string
		issue func(fired *bool)
	}{
		{"read", func(fired *bool) {
			h.Dev.ReadBlock(0, 0, func([]byte, error) { *fired = true })
		}},
		{"write", func(fired *bool) {
			h.Dev.WriteBlock(0, 0, h.block(4), func([]byte, error) { *fired = true })
		}},
		{"read out of range", func(fired *bool) {
			h.Dev.ReadBlock(0, -1, func([]byte, error) { *fired = true })
		}},
		{"write bad length", func(fired *bool) {
			h.Dev.WriteBlock(0, 0, nil, func([]byte, error) { *fired = true })
		}},
		{"read bad partition", func(fired *bool) {
			h.Dev.ReadBlock(97, 0, func([]byte, error) { *fired = true })
		}},
	}
	for _, c := range cases {
		fired := false
		c.issue(&fired)
		if fired {
			t.Errorf("%s: completion callback ran inside the issuing call", c.name)
		}
		h.Run()
		if !fired {
			t.Errorf("%s: completion callback never ran", c.name)
		}
	}
}

func testDead(t *testing.T, h *Harness) {
	seed := h.block(0x5A)
	if !h.DeadIsFatal {
		// Redundant device: seed data before the kill so the surviving
		// replica can prove it still has it.
		if err := h.write(t, h.DeadBlock, seed); err != nil {
			t.Fatalf("seeding write: %v", err)
		}
	}
	h.Kill()
	if h.DeadIsFatal {
		if _, err := h.read(t, h.DeadBlock); !errors.Is(err, driver.ErrDead) {
			t.Errorf("read after kill: err = %v, want ErrDead", err)
		}
		if err := h.write(t, h.DeadBlock, seed); !errors.Is(err, driver.ErrDead) {
			t.Errorf("write after kill: err = %v, want ErrDead", err)
		}
		// The taxonomy: device death is a crash underneath, so layers
		// keying on the cause (the degraded-mirror accounting, crash
		// recovery) can unwrap it uniformly.
		if _, err := h.read(t, h.DeadBlock); !errors.Is(err, fault.ErrCrash) {
			t.Errorf("read after kill: err = %v does not unwrap to fault.ErrCrash", err)
		}
		return
	}
	got, err := h.read(t, h.DeadBlock)
	if err != nil {
		t.Fatalf("read after member kill: %v", err)
	}
	if !bytes.Equal(got, seed) {
		t.Fatal("read after member kill returned wrong data")
	}
	if err := h.write(t, h.DeadBlock, h.block(0x77)); err != nil {
		t.Fatalf("write after member kill: %v", err)
	}
	if got, err := h.read(t, h.DeadBlock); err != nil || !bytes.Equal(got, h.block(0x77)) {
		t.Fatalf("readback after degraded write: err=%v", err)
	}
	if h.Overwhelm == nil {
		return
	}
	// Beyond the redundancy budget the device converges on the fatal
	// taxonomy: ErrDead, unwrapping to the crash underneath.
	h.Overwhelm()
	if _, err := h.read(t, h.DeadBlock); !errors.Is(err, driver.ErrDead) {
		t.Errorf("read beyond redundancy budget: err = %v, want ErrDead", err)
	} else if !errors.Is(err, fault.ErrCrash) {
		t.Errorf("read beyond redundancy budget: err = %v does not unwrap to fault.ErrCrash", err)
	}
	if err := h.write(t, h.DeadBlock, h.block(0x78)); !errors.Is(err, driver.ErrDead) {
		t.Errorf("write beyond redundancy budget: err = %v, want ErrDead", err)
	}
}
