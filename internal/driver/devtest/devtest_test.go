// The conformance battery applied to every BlockDevice in the tree:
// the single-disk driver and all five volume layouts, the volumes in
// both execution modes (shared engine and coordinator shards).
package devtest

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/rig"
	"repro/internal/volume"
)

// driverHarness builds the single-disk device: a full rig with a
// centered reserved region, like the paper's deployment.
func driverHarness(t *testing.T, kill bool) *Harness {
	t.Helper()
	opts := rig.Options{ReservedCyls: 48}
	if kill {
		opts.Fault = &fault.Plan{CrashAfterOps: 1}
	}
	r, err := rig.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Driver.Label().Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	h := &Harness{
		Dev:         r.Driver,
		Run:         r.Eng.Run,
		Blocks:      p.Size / int64(r.Driver.BlockSize().Sectors()),
		DeadIsFatal: true,
	}
	if kill {
		h.Kill = func() {
			// The first device operation trips the power loss; the
			// sacrificial request's own error is the crash, not ErrDead.
			r.Driver.WriteBlock(0, 0, make([]byte, r.Driver.BlockSize().Bytes()), nil)
			r.Eng.Run()
			if !r.Driver.Dead() {
				t.Fatal("kill hook did not kill the driver")
			}
		}
	}
	return h
}

// volumeHarness builds a volume device harness. The kill plan crashes
// member 1 on its first device operation; deadBlk locates a block that
// member serves. overwhelm lists additional members the Overwhelm hook
// kills to push losses beyond a redundant layout's budget; they get
// lazier crash plans the normal battery traffic cannot trip.
func volumeHarness(t *testing.T, opts volume.Options, kill bool, deadBlk func(v *volume.Volume) int64, overwhelm ...int) *Harness {
	t.Helper()
	if kill {
		opts.Faults = make([]*fault.Plan, opts.Disks)
		opts.Faults[1] = &fault.Plan{CrashAfterOps: 1}
		for _, m := range overwhelm {
			opts.Faults[m] = &fault.Plan{CrashAfterOps: 64}
		}
	}
	v, err := volume.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(v.Close)
	redundant := opts.Layout == volume.Mirror ||
		opts.Layout == volume.RAID5 || opts.Layout == volume.RAID6
	h := &Harness{
		Dev:         v,
		Run:         v.Run,
		Blocks:      v.Blocks(),
		DeadIsFatal: !redundant,
	}
	if kill {
		h.DeadBlock = deadBlk(v)
		h.Kill = func() {
			// Sacrificial writes until the fault plan has tripped; on a
			// mirror the fan-out reaches the doomed member on the first
			// write even when DeadBlock data was seeded beforehand.
			for i := 0; i < 4 && !v.Members[1].Driver.Dead(); i++ {
				v.WriteBlock(0, h.DeadBlock, make([]byte, v.BlockSize().Bytes()), nil)
				v.Run()
			}
			if !v.Members[1].Driver.Dead() {
				t.Fatal("kill hook did not kill member 1")
			}
		}
		if len(overwhelm) > 0 {
			h.Overwhelm = func() {
				// Raw member traffic trips each lazy plan without going
				// through the (still redundant) volume.
				for _, m := range overwhelm {
					drv := v.Members[m].Driver
					for i := 0; i < 128 && !drv.Dead(); i++ {
						drv.ReadBlock(0, 0, nil)
						v.Run()
					}
					if !drv.Dead() {
						t.Fatalf("overwhelm hook did not kill member %d", m)
					}
				}
			}
		}
	}
	return h
}

func TestDriverConformance(t *testing.T) {
	TestDevice(t, driverHarness)
}

func TestConcatConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.Concat, Disks: 2}, kill,
			func(v *volume.Volume) int64 { return v.Blocks() - 1 })
	})
}

func TestStripeConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.Stripe, Disks: 2, StripeUnit: 1}, kill,
			func(v *volume.Volume) int64 { return 1 })
	})
}

func TestMirrorConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.Mirror, Disks: 2}, kill,
			func(v *volume.Volume) int64 { return 0 }, 0)
	})
}

// RAID-5 on 3 members, one-block stripe units. Block 1 lands on data
// slot 1 of row 0 (parity rotates onto slot 2 there), so killing
// member 1 forces reconstruction for that block; killing member 0 as
// well exceeds the single-parity budget.
func TestRAID5Conformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.RAID5, Disks: 3, StripeUnit: 1}, kill,
			func(v *volume.Volume) int64 { return 1 }, 0)
	})
}

// RAID-6 on 4 members: row 0 puts P on slot 3, Q on slot 0, data
// columns on slots 1 and 2. Block 0 lives on member 1; with member 1
// dead the layout still covers another loss, so overwhelming takes
// two more members (2 and 3).
func TestRAID6Conformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.RAID6, Disks: 4, StripeUnit: 1}, kill,
			func(v *volume.Volume) int64 { return 0 }, 2, 3)
	})
}

// The sharded variants run the identical battery with every member on
// a private engine shard: the conformance surface must be mode-blind,
// including death semantics delivered across the shard boundary.
func TestConcatShardedConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.Concat, Disks: 2, Shards: 2}, kill,
			func(v *volume.Volume) int64 { return v.Blocks() - 1 })
	})
}

func TestStripeShardedConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.Stripe, Disks: 2, StripeUnit: 1, Shards: 2}, kill,
			func(v *volume.Volume) int64 { return 1 })
	})
}

func TestMirrorShardedConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.Mirror, Disks: 2, Shards: 2}, kill,
			func(v *volume.Volume) int64 { return 0 }, 0)
	})
}

func TestRAID5ShardedConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.RAID5, Disks: 3, StripeUnit: 1, Shards: 2}, kill,
			func(v *volume.Volume) int64 { return 1 }, 0)
	})
}

func TestRAID6ShardedConformance(t *testing.T) {
	TestDevice(t, func(t *testing.T, kill bool) *Harness {
		return volumeHarness(t, volume.Options{Layout: volume.RAID6, Disks: 4, StripeUnit: 1, Shards: 2}, kill,
			func(v *volume.Volume) int64 { return 0 }, 2, 3)
	})
}
