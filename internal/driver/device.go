package driver

import (
	"repro/internal/geom"
	"repro/internal/label"
)

// BlockDevice is the block-device interface the file system and buffer
// cache consume: partition-relative block I/O plus the label that
// describes the partitions. *Driver implements it for a single disk;
// volume.Volume implements it for a logical volume composed of several
// disks, so the layers above are indifferent to how many spindles sit
// underneath.
type BlockDevice interface {
	// ReadBlock issues a read of one file system block of the given
	// partition; done fires at completion in simulated time.
	ReadBlock(part int, blk int64, done DoneFunc)
	// WriteBlock issues a write of one file system block. data must be
	// exactly one block long.
	WriteBlock(part int, blk int64, data []byte, done DoneFunc)
	// BlockSize returns the device's file system block size.
	BlockSize() geom.BlockSize
	// Label returns the label describing the device's partitions and
	// the geometry presented to the file system.
	Label() *label.Label
}

// *Driver is the single-disk BlockDevice.
var _ BlockDevice = (*Driver)(nil)
