package disk

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/geom"
)

func sectorFill(b byte, sectors int) []byte {
	out := make([]byte, sectors*geom.SectorSize)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestMediaErrorFailsWithoutSideEffects(t *testing.T) {
	d := MustNew(Toshiba())
	d.SetFaults(fault.NewInjector(fault.Plan{Bad: []fault.SectorRange{{Start: 340, End: 356}}}))

	if _, err := d.Write(0, 340, 16, sectorFill(0xAA, 16)); err == nil {
		t.Fatal("write to bad range succeeded")
	}
	if got := d.PeekData(340, 16); !bytes.Equal(got, make([]byte, 16*geom.SectorSize)) {
		t.Error("failed write stored data")
	}
	var fe *fault.Error
	_, _, err := d.Read(0, 340, 16)
	if !errors.As(err, &fe) || fe.Class != fault.Media {
		t.Fatalf("read of bad range: %v", err)
	}
	reads, writes, _ := d.Counters()
	if reads != 0 || writes != 0 {
		t.Errorf("faulted ops counted as serviced: reads=%d writes=%d", reads, writes)
	}
	// Neighbouring sectors still work.
	if _, err := d.Write(0, 356, 16, sectorFill(0xBB, 16)); err != nil {
		t.Fatalf("adjacent write: %v", err)
	}
}

func TestCrashTearsInFlightWrite(t *testing.T) {
	d := MustNew(Toshiba())
	if err := d.PokeData(0, sectorFill(0x11, 16)); err != nil {
		t.Fatal(err)
	}
	d.SetFaults(fault.NewInjector(fault.Plan{Seed: 9, CrashAfterOps: 1}))

	_, err := d.Write(0, 0, 16, sectorFill(0x22, 16))
	if !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("crashing write returned %v", err)
	}
	torn := d.faults.TornBytes(16 * geom.SectorSize)
	got := d.PeekData(0, 16)
	for i, b := range got {
		want := byte(0x11)
		if i < torn {
			want = 0x22
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x (torn at %d)", i, b, want, torn)
		}
	}
	// The device is dead: every subsequent op fails.
	if _, _, err := d.Read(0, 512, 1); !errors.Is(err, fault.ErrCrash) {
		t.Errorf("post-crash read: %v", err)
	}
	// Re-attach cleanly: detach the injector and the data is readable.
	d.SetFaults(nil)
	if _, _, err := d.Read(0, 0, 16); err != nil {
		t.Errorf("read after recovery: %v", err)
	}
}

func TestInertPlanLeavesTimingUntouched(t *testing.T) {
	plain := MustNew(Fujitsu())
	faulty := MustNew(Fujitsu())
	faulty.SetFaults(fault.NewInjector(fault.Plan{Seed: 1}))

	now := 0.0
	for i := 0; i < 50; i++ {
		sector := int64(i*137) % 10000
		_, ta, err := plain.Read(now, sector, 8)
		if err != nil {
			t.Fatal(err)
		}
		_, tb, err := faulty.Read(now, sector, 8)
		if err != nil {
			t.Fatal(err)
		}
		if ta != tb {
			t.Fatalf("op %d: timing diverged %+v vs %+v", i, ta, tb)
		}
		now += ta.TotalMS()
	}
}
