// Package disk implements a discrete-event model of a SCSI disk drive.
//
// It substitutes for the two physical disks used in the paper's
// experiments (Table 1 of "Adaptive Block Rearrangement Under UNIX"):
// the Toshiba MK156F (135 MB) and the Fujitsu M2266 (1 GB). A disk
// services one request at a time; each service is broken down into
// controller overhead, seek (using the measured curves of Table 1),
// rotational latency (from a deterministic rotational-position model at
// 3600 RPM), and media transfer time. The Fujitsu model additionally
// implements the drive's 256 KB track buffer with read-ahead: reads that
// hit the buffer complete at SCSI bus speed with no mechanical delay
// (Section 5 of the paper).
//
// The model stores real data (sparsely), so higher layers — the file
// system, the block table, block copying — operate on actual bytes and
// can be checked for correctness, not just timing.
package disk

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/seek"
)

// Model describes a disk drive type: geometry, seek behaviour, and
// controller characteristics.
type Model struct {
	// Name identifies the drive, e.g. "Toshiba MK156F".
	Name string
	// Geom is the physical geometry.
	Geom geom.Geometry
	// Seek maps seek distance in cylinders to seek time in ms.
	Seek seek.Curve
	// OverheadMS is fixed per-request controller + bus arbitration
	// overhead in milliseconds.
	OverheadMS float64
	// HeadSwitchMS is the cost of switching heads between tracks of the
	// same cylinder during a transfer.
	HeadSwitchMS float64
	// TrackBufferKB is the size of the drive's read-ahead buffer in
	// kilobytes; 0 disables the buffer.
	TrackBufferKB int
	// BusMBps is the host transfer rate in MB/s, used for buffer hits.
	BusMBps float64
}

// Toshiba returns the model of the Toshiba MK156F 135 MB SCSI disk
// (Table 1): 815 cylinders, 10 tracks/cylinder, 34 sectors/track,
// 3600 RPM, no track buffer.
func Toshiba() Model {
	return Model{
		Name: "Toshiba MK156F",
		Geom: geom.Geometry{
			Cylinders: 815, TracksPerCyl: 10, SectorsPerTrack: 34, RPM: 3600,
		},
		Seek:         seek.ToshibaMK156F,
		OverheadMS:   2.0,
		HeadSwitchMS: 1.0,
	}
}

// Fujitsu returns the model of the Fujitsu M2266 1 GB SCSI disk
// (Table 1): 1658 cylinders, 15 tracks/cylinder, 85 sectors/track,
// 3600 RPM, with a 256 KB read-ahead track buffer.
func Fujitsu() Model {
	return Model{
		Name: "Fujitsu M2266",
		Geom: geom.Geometry{
			Cylinders: 1658, TracksPerCyl: 15, SectorsPerTrack: 85, RPM: 3600,
		},
		Seek:          seek.FujitsuM2266,
		OverheadMS:    2.0,
		HeadSwitchMS:  1.0,
		TrackBufferKB: 256,
		BusMBps:       4.0,
	}
}

// Timing is the per-request service-time breakdown, all in milliseconds.
type Timing struct {
	OverheadMS float64
	SeekMS     float64
	RotMS      float64
	TransferMS float64
	// SeekDist is the head movement in cylinders (0 for buffer hits).
	SeekDist int
	// BufferHit reports whether a read was satisfied entirely from the
	// drive's read-ahead buffer.
	BufferHit bool
}

// TotalMS returns the total service time of the request.
func (t Timing) TotalMS() float64 {
	return t.OverheadMS + t.SeekMS + t.RotMS + t.TransferMS
}

// pageShift sizes the sparse store pages: 16 sectors = 8 KB per page.
const pageSectors = 16

// Disk is a single disk drive instance with mechanical state (head
// position, rotation) and sparse data storage.
type Disk struct {
	model   Model
	headCyl int

	// seekMS is the model's seek curve memoized over every distance the
	// geometry allows, plus the cached single-cylinder time used for
	// cylinder switches mid-transfer. Lookups are bit-identical to the
	// curve (see seek.NewTable), just without the transcendental math on
	// every request.
	seekMS   *seek.Table
	oneCylMS float64

	pages map[int64][]byte // sparse sector storage, keyed by sector/pageSectors

	// Read-ahead buffer state: the half-open sector range currently held
	// in the drive buffer, and the time at which read-ahead stopped
	// advancing (it advances between requests while the drive is idle).
	bufValid      bool
	bufStart      int64
	bufFrontier   int64   // exclusive end at time bufAsOfMS
	bufAsOfMS     float64 // time the frontier was computed
	bufLimit      int64   // read-ahead never passes this sector (cylinder end)
	bufCapSectors int64

	// Counters.
	nReads, nWrites, nBufferHits int64
	cumSeekCyls                  int64

	// faults, when non-nil, is consulted before every device operation
	// and may fail it (media/transient errors) or kill the device
	// (simulated power loss, leaving an in-flight write torn).
	faults *fault.Injector
}

// New returns an initialized disk for the given model with the head
// parked at cylinder 0.
func New(m Model) (*Disk, error) {
	if err := m.Geom.Validate(); err != nil {
		return nil, err
	}
	if m.Seek == nil {
		return nil, fmt.Errorf("disk: model %q has no seek curve", m.Name)
	}
	d := &Disk{
		model: m,
		pages: make(map[int64][]byte),
	}
	d.seekMS = seek.NewTable(m.Seek, m.Geom.Cylinders-1)
	d.oneCylMS = d.seekMS.SeekMS(1)
	if m.TrackBufferKB > 0 {
		d.bufCapSectors = int64(m.TrackBufferKB) * 1024 / geom.SectorSize
	}
	return d, nil
}

// MustNew is New, panicking on error. Intended for the package-level
// models, whose geometry is known to be valid.
func MustNew(m Model) *Disk {
	d, err := New(m)
	if err != nil {
		panic(err)
	}
	return d
}

// Model returns the disk's model description.
func (d *Disk) Model() Model { return d.model }

// Geom returns the disk's geometry.
func (d *Disk) Geom() geom.Geometry { return d.model.Geom }

// HeadCylinder returns the cylinder the head is currently positioned at.
func (d *Disk) HeadCylinder() int { return d.headCyl }

// Counters returns the number of read requests, write requests, and
// read-buffer hits serviced so far.
func (d *Disk) Counters() (reads, writes, bufferHits int64) {
	return d.nReads, d.nWrites, d.nBufferHits
}

// SeekCylinders returns the cumulative head movement in cylinders over
// the disk's lifetime — a convergence signal for telemetry probes: as
// rearrangement takes hold, its growth rate falls.
func (d *Disk) SeekCylinders() int64 { return d.cumSeekCyls }

// sectorTimeMS returns the time to pass one sector under the head.
func (d *Disk) sectorTimeMS() float64 {
	return d.model.Geom.RevolutionMS() / float64(d.model.Geom.SectorsPerTrack)
}

// angleAt returns the rotational position at time nowMS as a fraction of
// a revolution in [0, 1).
func (d *Disk) angleAt(nowMS float64) float64 {
	rev := d.model.Geom.RevolutionMS()
	frac := nowMS / rev
	return frac - float64(int64(frac))
}

// rotationalDelayMS returns the time from nowMS until the start of the
// given sector passes under the head.
func (d *Disk) rotationalDelayMS(nowMS float64, sector int64) float64 {
	g := d.model.Geom
	target := float64(g.SectorInTrack(sector)) / float64(g.SectorsPerTrack)
	cur := d.angleAt(nowMS)
	delta := target - cur
	if delta < 0 {
		delta++
	}
	return delta * g.RevolutionMS()
}

// transferMS returns the media transfer time for count sectors starting
// at sector, including head switches between tracks and single-cylinder
// seeks when the transfer crosses a cylinder boundary.
func (d *Disk) transferMS(sector int64, count int) float64 {
	g := d.model.Geom
	t := float64(count) * d.sectorTimeMS()
	first, last := sector, sector+int64(count)-1
	trackSwitches := (last / int64(g.SectorsPerTrack)) - (first / int64(g.SectorsPerTrack))
	cylSwitches := int64(g.CylinderOf(last)) - int64(g.CylinderOf(first))
	trackSwitches -= cylSwitches
	if trackSwitches > 0 {
		t += float64(trackSwitches) * d.model.HeadSwitchMS
	}
	if cylSwitches > 0 {
		t += float64(cylSwitches) * d.oneCylMS
	}
	return t
}

// validateRange checks the request range against the disk size.
func (d *Disk) validateRange(sector int64, count int) error {
	if count <= 0 {
		return fmt.Errorf("disk: request for %d sectors", count)
	}
	if sector < 0 || sector+int64(count) > d.model.Geom.TotalSectors() {
		return fmt.Errorf("disk: sector range [%d, %d) outside disk of %d sectors",
			sector, sector+int64(count), d.model.Geom.TotalSectors())
	}
	return nil
}

// advanceBuffer brings the read-ahead frontier forward to time nowMS:
// while the drive was idle it kept reading sectors into its buffer, up
// to buffer capacity and never past the end of the cylinder it was on.
func (d *Disk) advanceBuffer(nowMS float64) {
	if !d.bufValid || nowMS <= d.bufAsOfMS {
		return
	}
	gain := int64((nowMS - d.bufAsOfMS) / d.sectorTimeMS())
	frontier := d.bufFrontier + gain
	if max := d.bufStart + d.bufCapSectors; frontier > max {
		frontier = max
	}
	if frontier > d.bufLimit {
		frontier = d.bufLimit
	}
	d.bufFrontier = frontier
	d.bufAsOfMS = nowMS
}

// bufferCovers reports whether [sector, sector+count) is entirely inside
// the valid buffered range at time nowMS.
func (d *Disk) bufferCovers(nowMS float64, sector int64, count int) bool {
	if !d.bufValid {
		return false
	}
	d.advanceBuffer(nowMS)
	return sector >= d.bufStart && sector+int64(count) <= d.bufFrontier
}

// resetBufferAfterRead primes the read-ahead buffer after a media read
// that covered [sector, sector+count) and completed at endMS.
func (d *Disk) resetBufferAfterRead(sector int64, count int, endMS float64) {
	if d.bufCapSectors == 0 {
		return
	}
	g := d.model.Geom
	endCyl := g.CylinderOf(sector + int64(count) - 1)
	d.bufValid = true
	d.bufStart = sector
	d.bufFrontier = sector + int64(count)
	d.bufAsOfMS = endMS
	d.bufLimit = g.FirstSectorOfCyl(endCyl) + int64(g.SectorsPerCyl())
}

// invalidateBufferRange drops the buffer if a write overlaps it (the
// drive must not serve stale data) and stops read-ahead.
func (d *Disk) invalidateBufferRange(sector int64, count int) {
	if !d.bufValid {
		return
	}
	if sector < d.bufStart+d.bufCapSectors && sector+int64(count) > d.bufStart {
		d.bufValid = false
	}
}

// Read services a read of count sectors starting at sector, beginning at
// time nowMS. It returns the data and the service-time breakdown, and
// updates the head position and buffer state.
func (d *Disk) Read(nowMS float64, sector int64, count int) ([]byte, Timing, error) {
	if err := d.validateRange(sector, count); err != nil {
		return nil, Timing{}, err
	}
	if fe := d.faults.BeginOp(false, sector, count); fe != nil {
		return nil, Timing{}, fe
	}
	d.nReads++
	if d.bufferCovers(nowMS, sector, count) {
		d.nBufferHits++
		t := Timing{
			OverheadMS: d.model.OverheadMS,
			TransferMS: float64(count*geom.SectorSize) / (d.model.BusMBps * 1024 * 1024) * 1000,
			BufferHit:  true,
		}
		// The mechanism keeps reading ahead during the bus transfer.
		d.advanceBuffer(nowMS + t.TotalMS())
		return d.readData(sector, count), t, nil
	}
	t := d.mechanicalService(nowMS, sector, count)
	d.resetBufferAfterRead(sector, count, nowMS+t.TotalMS())
	return d.readData(sector, count), t, nil
}

// Write services a write of data (len(data) must be count*SectorSize)
// starting at sector, beginning at time nowMS.
func (d *Disk) Write(nowMS float64, sector int64, count int, data []byte) (Timing, error) {
	if err := d.validateRange(sector, count); err != nil {
		return Timing{}, err
	}
	if len(data) != count*geom.SectorSize {
		return Timing{}, fmt.Errorf("disk: write of %d sectors with %d bytes of data", count, len(data))
	}
	if fe := d.faults.BeginOp(true, sector, count); fe != nil {
		if fe.Class == fault.Crash {
			// Power died with the write in flight: a deterministic
			// prefix of the data reached the media.
			d.tearWrite(sector, data)
		}
		return Timing{}, fe
	}
	d.nWrites++
	d.invalidateBufferRange(sector, count)
	t := d.mechanicalService(nowMS, sector, count)
	d.writeData(sector, data)
	return t, nil
}

// mechanicalService computes seek + rotation + transfer for a media
// access and moves the head.
func (d *Disk) mechanicalService(nowMS float64, sector int64, count int) Timing {
	g := d.model.Geom
	targetCyl := g.CylinderOf(sector)
	dist := targetCyl - d.headCyl
	if dist < 0 {
		dist = -dist
	}
	t := Timing{OverheadMS: d.model.OverheadMS, SeekDist: dist}
	d.cumSeekCyls += int64(dist)
	t.SeekMS = d.seekMS.SeekMS(dist)
	seekEnd := nowMS + t.OverheadMS + t.SeekMS
	t.RotMS = d.rotationalDelayMS(seekEnd, sector)
	t.TransferMS = d.transferMS(sector, count)
	d.headCyl = g.CylinderOf(sector + int64(count) - 1)
	return t
}

// readData copies count sectors of stored data starting at sector.
// Unwritten sectors read as zeros.
func (d *Disk) readData(sector int64, count int) []byte {
	out := make([]byte, count*geom.SectorSize)
	for i := 0; i < count; i++ {
		s := sector + int64(i)
		page, ok := d.pages[s/pageSectors]
		if !ok {
			continue
		}
		off := (s % pageSectors) * geom.SectorSize
		copy(out[i*geom.SectorSize:(i+1)*geom.SectorSize], page[off:off+geom.SectorSize])
	}
	return out
}

// writeData stores data starting at sector, allocating pages as
// needed. Writing zeros to a sector whose page was never materialized
// is a no-op: the store is sparse and unwritten sectors already read
// as zeros, so a whole-device pass (a RAID rebuild copying a mostly
// empty member onto a spare) does not materialize the empty regions.
func (d *Disk) writeData(sector int64, data []byte) {
	count := len(data) / geom.SectorSize
	for i := 0; i < count; i++ {
		s := sector + int64(i)
		key := s / pageSectors
		chunk := data[i*geom.SectorSize : (i+1)*geom.SectorSize]
		page, ok := d.pages[key]
		if !ok {
			if allZero(chunk) {
				continue
			}
			page = make([]byte, pageSectors*geom.SectorSize)
			d.pages[key] = page
		}
		off := (s % pageSectors) * geom.SectorSize
		copy(page[off:off+geom.SectorSize], chunk)
	}
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// PeekData returns the stored contents of a sector range without
// advancing the mechanical model. It is intended for tests and tools.
func (d *Disk) PeekData(sector int64, count int) []byte {
	return d.readData(sector, count)
}

// PokeData stores data at the given sector without any timing effects.
// It is intended for initialization (e.g. writing a label from a tool)
// and tests.
func (d *Disk) PokeData(sector int64, data []byte) error {
	if len(data)%geom.SectorSize != 0 {
		return fmt.Errorf("disk: poke of %d bytes is not sector-aligned", len(data))
	}
	count := len(data) / geom.SectorSize
	if err := d.validateRange(sector, count); err != nil {
		return err
	}
	d.writeData(sector, data)
	d.invalidateBufferRange(sector, count)
	return nil
}

// SetFaults attaches a fault injector to the disk. Passing nil detaches
// it (used by recovery harnesses to re-attach a crashed disk cleanly).
// Fault checks happen before any mechanical service, so a plan that
// injects nothing leaves service times untouched.
func (d *Disk) SetFaults(in *fault.Injector) { d.faults = in }

// Faults returns the attached injector, or nil.
func (d *Disk) Faults() *fault.Injector { return d.faults }

// tearWrite applies the prefix of data that made it to the media before
// power was lost: a run of complete sectors plus a partial overlay of
// the next sector, with the split point drawn deterministically from
// the fault plan.
func (d *Disk) tearWrite(sector int64, data []byte) {
	n := d.faults.TornBytes(len(data))
	full := n / geom.SectorSize
	if full > 0 {
		d.writeData(sector, data[:full*geom.SectorSize])
	}
	if rem := n % geom.SectorSize; rem > 0 {
		s := sector + int64(full)
		old := d.readData(s, 1)
		copy(old[:rem], data[full*geom.SectorSize:full*geom.SectorSize+rem])
		d.writeData(s, old)
	}
	d.invalidateBufferRange(sector, len(data)/geom.SectorSize)
}

// ParkHead moves the head to the given cylinder with no timing effects.
// Intended for tests and for establishing initial conditions.
func (d *Disk) ParkHead(cyl int) {
	if cyl < 0 {
		cyl = 0
	}
	if cyl >= d.model.Geom.Cylinders {
		cyl = d.model.Geom.Cylinders - 1
	}
	d.headCyl = cyl
}
