package disk

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/seek"
)

func TestModelsMatchTable1(t *testing.T) {
	tosh := Toshiba()
	if tosh.Geom.Cylinders != 815 || tosh.Geom.TracksPerCyl != 10 ||
		tosh.Geom.SectorsPerTrack != 34 || tosh.Geom.RPM != 3600 {
		t.Errorf("Toshiba geometry = %+v", tosh.Geom)
	}
	if tosh.TrackBufferKB != 0 {
		t.Error("Toshiba should have no track buffer")
	}
	fuji := Fujitsu()
	if fuji.Geom.Cylinders != 1658 || fuji.Geom.TracksPerCyl != 15 ||
		fuji.Geom.SectorsPerTrack != 85 || fuji.Geom.RPM != 3600 {
		t.Errorf("Fujitsu geometry = %+v", fuji.Geom)
	}
	if fuji.TrackBufferKB != 256 {
		t.Errorf("Fujitsu track buffer = %d KB, want 256", fuji.TrackBufferKB)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Model{Name: "bad"}); err == nil {
		t.Error("model without geometry accepted")
	}
	m := Toshiba()
	m.Seek = nil
	if _, err := New(m); err == nil {
		t.Error("model without seek curve accepted")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := MustNew(Toshiba())
	data := make([]byte, 16*geom.SectorSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := d.Write(0, 1000, 16, data); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Read(100, 1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read data differs from written data")
	}
}

func TestUnwrittenSectorsReadZero(t *testing.T) {
	d := MustNew(Toshiba())
	got, _, err := d.Read(0, 5000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten sector returned non-zero data")
		}
	}
}

func TestPartialOverwrite(t *testing.T) {
	d := MustNew(Toshiba())
	a := bytes.Repeat([]byte{0xAA}, 4*geom.SectorSize)
	b := bytes.Repeat([]byte{0xBB}, 2*geom.SectorSize)
	if _, err := d.Write(0, 100, 4, a); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(10, 101, 2, b); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Read(20, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAA || got[geom.SectorSize] != 0xBB ||
		got[2*geom.SectorSize] != 0xBB || got[3*geom.SectorSize] != 0xAA {
		t.Error("partial overwrite corrupted neighbouring sectors")
	}
}

func TestRangeValidation(t *testing.T) {
	d := MustNew(Toshiba())
	total := d.Geom().TotalSectors()
	if _, _, err := d.Read(0, total-1, 2); err == nil {
		t.Error("read past end accepted")
	}
	if _, _, err := d.Read(0, -1, 1); err == nil {
		t.Error("negative sector accepted")
	}
	if _, _, err := d.Read(0, 0, 0); err == nil {
		t.Error("zero-length read accepted")
	}
	if _, err := d.Write(0, 0, 2, make([]byte, geom.SectorSize)); err == nil {
		t.Error("write with short data accepted")
	}
}

func TestSeekTimingMatchesCurve(t *testing.T) {
	d := MustNew(Toshiba())
	d.ParkHead(0)
	targetCyl := 400
	sector := d.Geom().FirstSectorOfCyl(targetCyl)
	_, tm, err := d.Read(0, sector, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tm.SeekDist != 400 {
		t.Errorf("SeekDist = %d, want 400", tm.SeekDist)
	}
	want := seek.ToshibaMK156F.SeekMS(400)
	if math.Abs(tm.SeekMS-want) > 1e-9 {
		t.Errorf("SeekMS = %v, want %v", tm.SeekMS, want)
	}
	if d.HeadCylinder() != 400 {
		t.Errorf("head at %d after read", d.HeadCylinder())
	}
}

func TestZeroSeekOnSameCylinder(t *testing.T) {
	d := MustNew(Toshiba())
	sector := d.Geom().FirstSectorOfCyl(100)
	if _, _, err := d.Read(0, sector, 16); err != nil {
		t.Fatal(err)
	}
	_, tm, err := d.Read(50, sector+32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tm.SeekDist != 0 || tm.SeekMS != 0 {
		t.Errorf("same-cylinder read: dist=%d seek=%v", tm.SeekDist, tm.SeekMS)
	}
}

func TestRotationalDelayBounded(t *testing.T) {
	d := MustNew(Toshiba())
	rev := d.Geom().RevolutionMS()
	for i := 0; i < 50; i++ {
		_, tm, err := d.Read(float64(i)*7.3, int64(i)*1111, 16)
		if err != nil {
			t.Fatal(err)
		}
		if tm.RotMS < 0 || tm.RotMS >= rev {
			t.Errorf("rotational delay %v outside [0, %v)", tm.RotMS, rev)
		}
	}
}

func TestRotationalPositionDeterministic(t *testing.T) {
	// Reading the same sector exactly one revolution apart must see the
	// same rotational delay.
	d1 := MustNew(Toshiba())
	d2 := MustNew(Toshiba())
	rev := d1.Geom().RevolutionMS()
	_, t1, err := d1.Read(5, 1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := d2.Read(5+rev, 1000, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t1.RotMS-t2.RotMS) > 1e-6 {
		t.Errorf("rotational delays differ across one revolution: %v vs %v", t1.RotMS, t2.RotMS)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	d := MustNew(Toshiba())
	_, t1, err := d.Read(0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2 := MustNew(Toshiba())
	_, t16, err := d2.Read(0, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t16.TransferMS <= t1.TransferMS {
		t.Errorf("16-sector transfer (%v) not longer than 1-sector (%v)", t16.TransferMS, t1.TransferMS)
	}
	// One 8K block at 34 sectors/track: 16/34 of a revolution ≈ 7.8 ms,
	// possibly plus a head switch.
	want := 16.0 / 34.0 * d.Geom().RevolutionMS()
	if t16.TransferMS < want-1e-9 || t16.TransferMS > want+Toshiba().HeadSwitchMS+1e-9 {
		t.Errorf("8K transfer = %v ms, want about %v", t16.TransferMS, want)
	}
}

func TestServiceTimePlausible(t *testing.T) {
	// Mean service for random 8K requests should land in the ballpark
	// of the paper's no-rearrangement numbers (Toshiba: ~38 ms).
	d := MustNew(Toshiba())
	now := 0.0
	var sum float64
	n := 2000
	st := uint64(12345)
	for i := 0; i < n; i++ {
		st = st*6364136223846793005 + 1442695040888963407
		blk := int64(st>>33) % (d.Geom().TotalSectors() / 16)
		_, tm, err := d.Read(now, blk*16, 16)
		if err != nil {
			t.Fatal(err)
		}
		now += tm.TotalMS()
		sum += tm.TotalMS()
	}
	mean := sum / float64(n)
	if mean < 25 || mean > 50 {
		t.Errorf("random 8K read mean service = %v ms, want ~38", mean)
	}
}

func TestTrackBufferHit(t *testing.T) {
	d := MustNew(Fujitsu())
	// Sequential read: second block should be satisfied by read-ahead.
	_, t1, err := d.Read(0, 1700, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t1.BufferHit {
		t.Fatal("first read cannot hit the buffer")
	}
	end := t1.TotalMS()
	_, t2, err := d.Read(end+20, 1716, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !t2.BufferHit {
		t.Fatal("sequential read after idle gap did not hit the read-ahead buffer")
	}
	if t2.SeekMS != 0 || t2.RotMS != 0 || t2.SeekDist != 0 {
		t.Errorf("buffer hit has mechanical delays: %+v", t2)
	}
	if t2.TotalMS() >= t1.TotalMS() {
		t.Errorf("buffer hit (%v) not faster than media read (%v)", t2.TotalMS(), t1.TotalMS())
	}
}

func TestTrackBufferNeedsIdleTime(t *testing.T) {
	d := MustNew(Fujitsu())
	_, t1, err := d.Read(0, 1700, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Immediately after completion, read-ahead has had no time to fetch
	// a whole extra block.
	_, t2, err := d.Read(t1.TotalMS(), 1716, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t2.BufferHit {
		t.Error("buffer hit with zero idle time")
	}
}

func TestTrackBufferInvalidatedByWrite(t *testing.T) {
	d := MustNew(Fujitsu())
	_, t1, err := d.Read(0, 1700, 16)
	if err != nil {
		t.Fatal(err)
	}
	end := t1.TotalMS() + 50
	if _, err := d.Write(end, 1716, 16, make([]byte, 16*geom.SectorSize)); err != nil {
		t.Fatal(err)
	}
	_, t2, err := d.Read(end+100, 1716, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t2.BufferHit {
		t.Error("read hit a buffer that a write should have invalidated")
	}
}

func TestTrackBufferStopsAtCylinderEnd(t *testing.T) {
	d := MustNew(Fujitsu())
	g := d.Geom()
	// Read the last block of cylinder 10.
	cylEnd := g.FirstSectorOfCyl(11)
	start := cylEnd - 16
	_, t1, err := d.Read(0, start, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Even after a long idle period, the first block of cylinder 11 is
	// not buffered (read-ahead stops at the cylinder boundary).
	_, t2, err := d.Read(t1.TotalMS()+10000, cylEnd, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t2.BufferHit {
		t.Error("read-ahead crossed a cylinder boundary")
	}
}

func TestToshibaHasNoBuffer(t *testing.T) {
	d := MustNew(Toshiba())
	_, t1, err := d.Read(0, 1700, 16)
	if err != nil {
		t.Fatal(err)
	}
	_, t2, err := d.Read(t1.TotalMS()+1000, 1716, 16)
	if err != nil {
		t.Fatal(err)
	}
	if t2.BufferHit {
		t.Error("Toshiba model reported a buffer hit")
	}
}

func TestCounters(t *testing.T) {
	d := MustNew(Fujitsu())
	if _, _, err := d.Read(0, 0, 16); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(50, 160, 16, make([]byte, 16*geom.SectorSize)); err != nil {
		t.Fatal(err)
	}
	r, w, _ := d.Counters()
	if r != 1 || w != 1 {
		t.Errorf("counters = (%d, %d)", r, w)
	}
}

func TestPokePeek(t *testing.T) {
	d := MustNew(Toshiba())
	data := bytes.Repeat([]byte{0x5A}, geom.SectorSize)
	if err := d.PokeData(77, data); err != nil {
		t.Fatal(err)
	}
	if got := d.PeekData(77, 1); !bytes.Equal(got, data) {
		t.Error("PeekData differs from PokeData")
	}
	if err := d.PokeData(0, make([]byte, 100)); err == nil {
		t.Error("unaligned poke accepted")
	}
	if d.HeadCylinder() != 0 {
		t.Error("PokeData moved the head")
	}
}

func TestParkHeadClamps(t *testing.T) {
	d := MustNew(Toshiba())
	d.ParkHead(-5)
	if d.HeadCylinder() != 0 {
		t.Errorf("ParkHead(-5) -> %d", d.HeadCylinder())
	}
	d.ParkHead(100000)
	if d.HeadCylinder() != 814 {
		t.Errorf("ParkHead(huge) -> %d", d.HeadCylinder())
	}
}

func TestDataIntegrityProperty(t *testing.T) {
	d := MustNew(Toshiba())
	now := 0.0
	f := func(sRaw uint32, val byte, count8 uint8) bool {
		count := int(count8)%16 + 1
		s := int64(sRaw) % (d.Geom().TotalSectors() - int64(count))
		data := bytes.Repeat([]byte{val}, count*geom.SectorSize)
		tm, err := d.Write(now, s, count, data)
		if err != nil {
			return false
		}
		now += tm.TotalMS()
		got, tm2, err := d.Read(now, s, count)
		if err != nil {
			return false
		}
		now += tm2.TotalMS()
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTimingAlwaysNonNegative(t *testing.T) {
	d := MustNew(Fujitsu())
	now := 0.0
	f := func(sRaw uint32, gap uint16) bool {
		s := int64(sRaw) % (d.Geom().TotalSectors() - 16)
		s -= s % 16
		now += float64(gap) / 100
		got, tm, err := d.Read(now, s, 16)
		if err != nil || got == nil {
			return false
		}
		now += tm.TotalMS()
		return tm.SeekMS >= 0 && tm.RotMS >= 0 && tm.TransferMS > 0 && tm.OverheadMS > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
