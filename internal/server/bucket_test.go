package server

import (
	"testing"

	"repro/internal/sim"
)

func TestTokenBucketStartsFullAndRefills(t *testing.T) {
	b := NewTokenBucket(10, 5, 0) // 10 tokens/s, burst 5
	for i := 0; i < 5; i++ {
		if !b.Take(0) {
			t.Fatalf("take %d from a full burst-5 bucket failed", i)
		}
	}
	if b.Take(0) {
		t.Fatal("take from an empty bucket succeeded")
	}
	// 10/s refills one token per 100 ms; at 99 ms there is still none.
	if b.Take(99) {
		t.Fatal("token available before refill interval elapsed")
	}
	if !b.Take(100) {
		t.Fatal("no token 100 ms after draining a 10/s bucket")
	}
	// A long idle stretch caps at the burst, not the elapsed time.
	if got := b.Tokens(1e9); got != 5 {
		t.Fatalf("Tokens after long idle = %v, want burst 5", got)
	}
}

func TestTokenBucketClockNeverRunsBackwards(t *testing.T) {
	b := NewTokenBucket(1000, 1, 0)
	if !b.Take(10) {
		t.Fatal("take at t=10 failed")
	}
	// An earlier timestamp (out-of-order observation) must not mint
	// tokens or move the clock backwards.
	if b.Take(5) {
		t.Fatal("earlier timestamp minted a token")
	}
	if !b.Take(11) {
		t.Fatal("refill after 1 ms at 1000/s failed")
	}
}

// TestTokenBucketDeterminism replays a random admission schedule twice
// and requires identical decisions — the property the server's
// byte-identical output contract rests on.
func TestTokenBucketDeterminism(t *testing.T) {
	const seed = 0xB0C4
	t.Logf("seed=%#x", seed)
	run := func() []bool {
		rnd := sim.NewRand(seed)
		b := NewTokenBucket(4, 8, 0)
		var out []bool
		now := 0.0
		for i := 0; i < 5000; i++ {
			now += rnd.Exp(50)
			out = append(out, b.Take(now))
		}
		return out
	}
	a, c := run(), run()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("decision %d differs between identical replays", i)
		}
	}
	// Long-run admission cannot exceed rate*time + burst.
	granted := 0
	for _, ok := range a {
		if ok {
			granted++
		}
	}
	if max := 4*(5000*50.0/1000) + 8; float64(granted) > max {
		t.Errorf("granted %d tokens, rate bound allows at most %.0f", granted, max)
	}
}
