package server

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed admits every request; outcomes feed the trip window.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a bounded number of probe requests; all
	// probes succeeding closes the breaker, any probe failing reopens it.
	BreakerHalfOpen
)

// String names the state for gauges and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig parameterizes the per-backend circuit breaker.
type BreakerConfig struct {
	// Window is the rolling sample window, in completed requests, the
	// trip rates are computed over; zero selects 64.
	Window int
	// MinSamples is how many outcomes the window must hold before the
	// breaker may trip; zero selects Window/2.
	MinSamples int
	// ErrorRate and MissRate are the trip thresholds: the breaker opens
	// when the windowed fraction of failed requests reaches ErrorRate,
	// or the fraction of deadline-missing requests reaches MissRate.
	// Zeros select 0.5 each; a negative value disables that trigger.
	ErrorRate float64
	MissRate  float64
	// CooldownMS is how long an open breaker rejects before probing,
	// in simulated milliseconds; zero selects 5000.
	CooldownMS float64
	// HalfOpenProbes is how many probe requests a half-open breaker
	// admits; zero selects 5.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
	}
	if c.ErrorRate == 0 {
		c.ErrorRate = 0.5
	}
	if c.MissRate == 0 {
		c.MissRate = 0.5
	}
	if c.CooldownMS <= 0 {
		c.CooldownMS = 5000
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 5
	}
	return c
}

// BreakerCounts are the breaker's lifetime transition counters.
type BreakerCounts struct {
	// Opened counts closed→open trips and half-open→open reopenings;
	// HalfOpened counts open→half-open cooldown expiries; Closed counts
	// half-open→closed recoveries; Rejected counts requests refused
	// while open (or half-open with all probe slots taken).
	Opened     int64
	HalfOpened int64
	Closed     int64
	Rejected   int64
}

// outcome bits of one windowed sample.
const (
	outcomeErr  = 1 << 0
	outcomeMiss = 1 << 1
)

// Breaker is a closed/open/half-open circuit breaker driven entirely by
// simulated time: the caller passes the engine's now to Allow and
// Record, so two runs observing the same request outcomes at the same
// simulated times transition identically. It is not safe for concurrent
// use; like the rest of the stack it lives on one engine goroutine.
type Breaker struct {
	cfg   BreakerConfig
	state BreakerState

	// window is a ring of outcome bitmasks; errs/misses track the
	// current window sums incrementally.
	window []uint8
	pos    int
	filled int
	errs   int
	misses int

	// reopenAt is when an open breaker may probe again.
	reopenAt float64
	// probes counts half-open probe admissions in flight or completed;
	// probeOK counts probe successes.
	probes  int
	probeOK int

	counts BreakerCounts
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: make([]uint8, cfg.Window)}
}

// State returns the breaker's position as of now, applying a pending
// open→half-open cooldown expiry first.
func (b *Breaker) State(now float64) BreakerState {
	if b.state == BreakerOpen && now >= b.reopenAt {
		b.state = BreakerHalfOpen
		b.probes, b.probeOK = 0, 0
		b.counts.HalfOpened++
	}
	return b.state
}

// Counts returns the lifetime transition counters.
func (b *Breaker) Counts() BreakerCounts { return b.counts }

// Allow reports whether a request arriving at simulated time now may
// proceed to the backend. probe is true when the admission is a
// half-open probe, whose outcome the caller must mark in Record.
func (b *Breaker) Allow(now float64) (ok, probe bool) {
	switch b.State(now) {
	case BreakerClosed:
		return true, false
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true, true
		}
	}
	b.counts.Rejected++
	return false, false
}

// ProbeAborted returns a half-open probe slot whose request was
// rejected downstream of Allow (rate limit, queue overflow) before any
// backend attempt: the admission produced no evidence about the
// backend, so the slot must be reusable or the breaker would idle in
// half-open forever waiting on outcomes that can never arrive.
func (b *Breaker) ProbeAborted() {
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// Record feeds one completed request's outcome into the breaker at
// simulated time now: failed marks a backend error, missed a deadline
// miss, probe an admission Allow marked as a half-open probe. Closed,
// the outcome joins the rolling window and may trip the breaker open;
// half-open, a probe failure reopens it and the final probe success
// closes it. Outcomes of requests admitted before a transition (probe
// false while not closed) are discarded — the window restarts clean.
func (b *Breaker) Record(now float64, failed, missed, probe bool) {
	switch b.State(now) {
	case BreakerClosed:
		b.push(failed, missed)
		if b.filled >= b.cfg.MinSamples && (b.rateTripped(b.errs, b.cfg.ErrorRate) ||
			b.rateTripped(b.misses, b.cfg.MissRate)) {
			b.trip(now)
		}
	case BreakerHalfOpen:
		if !probe {
			return
		}
		if failed || missed {
			b.trip(now)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.reset()
			b.counts.Closed++
		}
	case BreakerOpen:
		// A straggler completing after a trip: the window was reset, so
		// its outcome is not evidence about the post-trip backend.
	}
}

// rateTripped reports whether count/filled has reached threshold.
func (b *Breaker) rateTripped(count int, threshold float64) bool {
	if threshold < 0 {
		return false
	}
	return float64(count) >= threshold*float64(b.filled)
}

// push adds one outcome to the rolling window, evicting the oldest.
func (b *Breaker) push(failed, missed bool) {
	old := b.window[b.pos]
	b.errs -= int(old & outcomeErr)
	b.misses -= int(old&outcomeMiss) >> 1
	var bits uint8
	if failed {
		bits |= outcomeErr
		b.errs++
	}
	if missed {
		bits |= outcomeMiss
		b.misses++
	}
	b.window[b.pos] = bits
	b.pos = (b.pos + 1) % len(b.window)
	if b.filled < len(b.window) {
		b.filled++
	}
}

// trip opens the breaker at now and restarts the evidence window.
func (b *Breaker) trip(now float64) {
	b.state = BreakerOpen
	b.reopenAt = now + b.cfg.CooldownMS
	b.reset()
	b.counts.Opened++
}

// reset clears the rolling window and probe bookkeeping.
func (b *Breaker) reset() {
	for i := range b.window {
		b.window[i] = 0
	}
	b.pos, b.filled, b.errs, b.misses = 0, 0, 0, 0
	b.probes, b.probeOK = 0, 0
}
