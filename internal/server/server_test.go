package server

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/driver"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// fakeDev is a scripted backend: every request completes after
// serviceMS, failing while failUntil operations remain. It runs on the
// same engine as the server, like a real driver would.
type fakeDev struct {
	eng       *sim.Engine
	serviceMS float64
	failUntil int    // fail the first failUntil operations
	ops       int    // operations issued
	reads     int64  // read attempts
	writes    int64  // write attempts
	order     []byte // arrival order at the backend: 'r' / 'w'
}

var errBackend = errors.New("fakedev: injected failure")

func (d *fakeDev) complete(done driver.DoneFunc, data []byte) {
	d.ops++
	fail := d.ops <= d.failUntil
	d.eng.After(d.serviceMS, func() {
		if fail {
			done(nil, errBackend)
			return
		}
		done(data, nil)
	})
}

func (d *fakeDev) ReadBlock(part int, blk int64, done driver.DoneFunc) {
	d.reads++
	d.order = append(d.order, 'r')
	d.complete(done, make([]byte, d.BlockSize().Bytes()))
}

func (d *fakeDev) WriteBlock(part int, blk int64, data []byte, done driver.DoneFunc) {
	d.writes++
	d.order = append(d.order, 'w')
	d.complete(done, nil)
}

func (d *fakeDev) BlockSize() geom.BlockSize { return geom.Block8K }

// Label implements driver.BlockDevice; the server never consults it.
func (d *fakeDev) Label() *label.Label { return nil }

// newTestServer builds an engine, a fake device, and a server over it.
func newTestServer(t *testing.T, dev *fakeDev, cfg Config) (*sim.Engine, *fakeDev, *Server) {
	t.Helper()
	eng := sim.NewEngine()
	if dev == nil {
		dev = &fakeDev{serviceMS: 10}
	}
	dev.eng = eng
	srv, err := New(eng, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev, srv
}

func TestServerReadWriteRoundTrip(t *testing.T) {
	eng, dev, srv := newTestServer(t, nil, Config{Tenants: 2})
	var gotData []byte
	var gotErr error
	srv.Read(0, 0, 7, func(data []byte, err error) { gotData, gotErr = data, err })
	var wroteErr error
	srv.Write(1, 2, 9, func(_ []byte, err error) { wroteErr = err })
	eng.Run()
	if gotErr != nil || wroteErr != nil {
		t.Fatalf("read err = %v, write err = %v", gotErr, wroteErr)
	}
	if len(gotData) != geom.Block8K.Bytes() {
		t.Fatalf("read returned %d bytes, want %d", len(gotData), geom.Block8K.Bytes())
	}
	if dev.reads != 1 || dev.writes != 1 {
		t.Fatalf("backend saw %d reads, %d writes", dev.reads, dev.writes)
	}
	c := srv.Counters()
	if c.Submitted != 2 || c.Accepted != 2 || c.Completed != 2 || c.Failed != 0 {
		t.Errorf("counters: %+v", c)
	}
	// End-to-end latency = request link + service + response link; with
	// the default 0.2 ms propagation it must exceed the bare service
	// time, and the class histogram must have recorded it.
	st := srv.ClassStats()
	if st[0].Completed != 1 || st[0].P50 < dev.serviceMS {
		t.Errorf("class gold stats: %+v", st[0])
	}
	if srv.InFlight() != 0 || srv.QueueLen() != 0 {
		t.Errorf("idle server holds inflight=%d queue=%d", srv.InFlight(), srv.QueueLen())
	}
}

func TestServerNetworkDelayOrdersArrival(t *testing.T) {
	// With serialization enabled, a write's request message (header +
	// 8K payload) takes longer to cross the link than a read's bare
	// header, so a read submitted second still reaches the backend
	// first.
	eng, dev, srv := newTestServer(t, &fakeDev{serviceMS: 0},
		Config{Tenants: 1, Net: LinkConfig{LatencyMS: 1, BandwidthMBps: 1}})
	srv.Write(0, 0, 1, func(_ []byte, err error) {})
	srv.Read(0, 0, 2, func(_ []byte, err error) {})
	eng.Run()
	if string(dev.order) != "rw" {
		t.Fatalf("backend arrival order = %q, want %q", dev.order, "rw")
	}
}

func TestServerThrottlesFloodingTenant(t *testing.T) {
	eng, _, srv := newTestServer(t, nil, Config{Tenants: 2})
	// Bronze allows burst 4 + a trickle of refill; 100 simultaneous
	// requests from one tenant must mostly throttle.
	var throttled, okCount int
	for i := 0; i < 100; i++ {
		srv.Read(1, 2, int64(i), func(_ []byte, err error) {
			switch {
			case errors.Is(err, ErrThrottled):
				throttled++
			case err == nil:
				okCount++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		})
	}
	eng.Run()
	if okCount != 4 || throttled != 96 {
		t.Fatalf("ok = %d, throttled = %d; want 4 and 96", okCount, throttled)
	}
	c := srv.Counters()
	if c.Throttled != 96 {
		t.Errorf("Counters.Throttled = %d", c.Throttled)
	}
	if st := srv.ClassStats()[2]; st.Throttled != 96 || st.Submitted != 100 {
		t.Errorf("bronze stats: %+v", st)
	}
}

func TestServerQoSOffDisablesThrottling(t *testing.T) {
	eng, _, srv := newTestServer(t, nil, Config{Tenants: 1, QoSOff: true, MaxInFlight: 128, QueueCap: 128})
	var failed int
	for i := 0; i < 100; i++ {
		srv.Read(0, 2, int64(i), func(_ []byte, err error) {
			if err != nil {
				failed++
			}
		})
	}
	eng.Run()
	if failed != 0 {
		t.Fatalf("%d requests failed with QoS off and ample admission room", failed)
	}
	if c := srv.Counters(); c.Throttled != 0 || c.Completed != 100 {
		t.Errorf("counters: %+v", c)
	}
}

func TestServerShedsBeyondQueueCap(t *testing.T) {
	eng, _, srv := newTestServer(t, &fakeDev{serviceMS: 1},
		Config{Tenants: 1, QoSOff: true, MaxInFlight: 1, QueueCap: 2})
	var overloaded, okCount int
	for i := 0; i < 10; i++ {
		srv.Read(0, 0, int64(i), func(_ []byte, err error) {
			switch {
			case errors.Is(err, ErrOverload):
				overloaded++
			case err == nil:
				okCount++
			}
		})
	}
	eng.Run()
	// 1 in flight + 2 queued admitted; 7 shed. All arrive before any
	// completion because service (1 ms) exceeds the link delay.
	if okCount != 3 || overloaded != 7 {
		t.Fatalf("ok = %d, overloaded = %d; want 3 and 7", okCount, overloaded)
	}
	if c := srv.Counters(); c.Overloaded != 7 || c.Accepted != 3 {
		t.Errorf("counters: %+v", c)
	}
}

func TestServerDeadlineMissAndQueueExpiry(t *testing.T) {
	// Service time far beyond the gold deadline: the in-flight request
	// completes late (DeadlineMiss), the queued one expires without a
	// second backend operation (Expired).
	classes := []ClassConfig{{Name: "gold", TokenRate: 8, TokenBurst: 16, DeadlineMS: 50}}
	eng, dev, srv := newTestServer(t, &fakeDev{serviceMS: 500},
		Config{Tenants: 1, Classes: classes, MaxInFlight: 1, QueueCap: 4})
	var errs []error
	for i := 0; i < 2; i++ {
		srv.Read(0, 0, int64(i), func(_ []byte, err error) { errs = append(errs, err) })
	}
	eng.Run()
	if len(errs) != 2 || !errors.Is(errs[0], ErrDeadline) || !errors.Is(errs[1], ErrDeadline) {
		t.Fatalf("errs = %v, want two ErrDeadline", errs)
	}
	c := srv.Counters()
	if c.DeadlineMiss != 1 || c.Expired != 1 || c.Completed != 0 || c.Failed != 0 {
		t.Errorf("counters: %+v", c)
	}
	if dev.reads != 1 {
		t.Errorf("backend saw %d reads; the expired request must not issue", dev.reads)
	}
}

func TestServerRetriesTransientBackendErrors(t *testing.T) {
	// Two failures then success: the request must succeed on the third
	// attempt, with backoff 2 + 4 ms accounted.
	eng, dev, srv := newTestServer(t, &fakeDev{serviceMS: 1, failUntil: 2}, Config{Tenants: 1})
	var gotErr error
	srv.Read(0, 0, 1, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if gotErr != nil {
		t.Fatalf("err = %v after retries", gotErr)
	}
	c := srv.Counters()
	if c.Retries != 2 || c.Completed != 1 || c.Failed != 0 {
		t.Errorf("counters: %+v", c)
	}
	if want := 2.0 + 4.0; c.BackoffMS != want {
		t.Errorf("BackoffMS = %v, want %v", c.BackoffMS, want)
	}
	if dev.reads != 3 {
		t.Errorf("backend saw %d attempts, want 3", dev.reads)
	}
}

func TestServerFailsAfterRetryBudget(t *testing.T) {
	eng, dev, srv := newTestServer(t, &fakeDev{serviceMS: 1, failUntil: 1 << 30}, Config{Tenants: 1})
	var gotErr error
	srv.Read(0, 0, 1, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, errBackend) {
		t.Fatalf("err = %v, want the backend error", gotErr)
	}
	c := srv.Counters()
	if c.Retries != 3 || c.Failed != 1 || c.Completed != 0 {
		t.Errorf("counters: %+v", c)
	}
	if dev.reads != 4 {
		t.Errorf("backend saw %d attempts, want 1 + 3 retries", dev.reads)
	}
}

func TestServerRetriesStopAtDeadline(t *testing.T) {
	// A 5 ms deadline leaves no room for the 2 ms first backoff after a
	// ~4.4 ms first attempt (two 0.2 ms link hops + 4 ms service): the
	// failure is final and only one backend attempt happens.
	classes := []ClassConfig{{Name: "gold", TokenRate: 8, TokenBurst: 16, DeadlineMS: 5}}
	eng, dev, srv := newTestServer(t, &fakeDev{serviceMS: 4, failUntil: 1 << 30},
		Config{Tenants: 1, Classes: classes})
	var gotErr error
	srv.Read(0, 0, 1, func(_ []byte, err error) { gotErr = err })
	eng.Run()
	if !errors.Is(gotErr, errBackend) {
		t.Fatalf("err = %v, want the backend error", gotErr)
	}
	if c := srv.Counters(); c.Retries != 0 {
		t.Errorf("retried past the deadline: %+v", c)
	}
	if dev.reads != 1 {
		t.Errorf("backend saw %d attempts, want 1", dev.reads)
	}
}

func TestServerBreakerTripsAndRecovers(t *testing.T) {
	// A backend whose first 30 operations fail: the breaker must trip,
	// shed arrivals while open, then recover through half-open probes
	// once the backend heals — and the healed traffic completes. The
	// budget is spent slowly once tripped (one probe per cooldown
	// cycle), so it must be small enough to exhaust mid-run.
	dev := &fakeDev{serviceMS: 1, failUntil: 30}
	eng, _, srv := newTestServer(t, dev, Config{
		Tenants: 1, QoSOff: true, MaxRetries: -1,
		Breaker: BreakerConfig{Window: 16, MinSamples: 8, ErrorRate: 0.5, CooldownMS: 50, HalfOpenProbes: 3},
	})
	var rejected, completed, failed int
	var tick func(i int)
	tick = func(i int) {
		if i >= 600 {
			return
		}
		srv.Read(0, 0, int64(i), func(_ []byte, err error) {
			switch {
			case errors.Is(err, ErrCircuitOpen):
				rejected++
			case err == nil:
				completed++
			default:
				failed++
			}
		})
		eng.After(5, func() { tick(i + 1) })
	}
	tick(0)
	eng.Run()
	bc := srv.Breaker().Counts()
	if bc.Opened == 0 || bc.HalfOpened == 0 || bc.Closed == 0 {
		t.Fatalf("breaker never cycled: %+v", bc)
	}
	if rejected == 0 {
		t.Error("no arrivals were shed while open")
	}
	if completed == 0 {
		t.Error("no traffic completed after recovery")
	}
	// ErrCircuitOpen is an overload by taxonomy.
	if !errors.Is(ErrCircuitOpen, ErrOverload) {
		t.Error("ErrCircuitOpen does not unwrap to ErrOverload")
	}
	c := srv.Counters()
	if c.BreakerRejects != int64(rejected) {
		t.Errorf("BreakerRejects = %d, clients saw %d", c.BreakerRejects, rejected)
	}
	if got := c.Completed + c.Failed + c.DeadlineMiss + c.Expired; got != c.Accepted {
		t.Errorf("accounting: accepted %d, answered %d", c.Accepted, got)
	}
}

func TestServerBindMetrics(t *testing.T) {
	eng, _, srv := newTestServer(t, &fakeDev{serviceMS: 1, failUntil: 1}, Config{Tenants: 2})
	reg := metrics.NewRegistry()
	srv.BindMetrics(reg)
	for i := 0; i < 20; i++ {
		srv.Read(i%2, i%3, int64(i), func(_ []byte, _ error) {})
	}
	eng.Run()
	snap := reg.Snapshot()
	got := map[string]*metrics.MetricSnap{}
	for i := range snap.Metrics {
		got[snap.Metrics[i].Name] = &snap.Metrics[i]
	}
	c := srv.Counters()
	checks := map[string]float64{
		`server_submitted`:                     float64(c.Submitted),
		`server_accepted`:                      float64(c.Accepted),
		`server_throttled`:                     float64(c.Throttled),
		`server_overloaded`:                    float64(c.Overloaded),
		`server_breaker_rejects`:               float64(c.BreakerRejects),
		`server_expired`:                       float64(c.Expired),
		`server_deadline_miss`:                 float64(c.DeadlineMiss),
		`server_retries`:                       float64(c.Retries),
		`server_backoff_ms`:                    c.BackoffMS,
		`server_completed`:                     float64(c.Completed),
		`server_failed`:                        float64(c.Failed),
		`server_breaker_opened`:                0,
		`server_breaker_half_opened`:           0,
		`server_breaker_closed`:                0,
		`server_breaker_state`:                 0,
		`server_class_submitted{class="gold"}`: float64(srv.ClassStats()[0].Submitted),
	}
	if c.Retries == 0 || c.BackoffMS == 0 {
		t.Errorf("scenario exercised no retries: %+v", c)
	}
	for name, want := range checks {
		m := got[name]
		if m == nil {
			t.Errorf("metric %s missing from snapshot", name)
			continue
		}
		if m.Value != want {
			t.Errorf("%s = %v, want %v", name, m.Value, want)
		}
	}
	h := got[`server_req_ms{class="gold"}`]
	if h == nil || h.Hist == nil || h.Hist.Count != srv.ClassStats()[0].Completed {
		t.Errorf("per-class latency histogram missing or miscounted: %+v", h)
	}
}

func TestServerDeterminism(t *testing.T) {
	const seed = 0x5E1D
	t.Logf("seed=%#x", seed)
	run := func() (Counters, []ClassStat, BreakerCounts) {
		eng := sim.NewEngine()
		dev := &fakeDev{eng: eng, serviceMS: 3, failUntil: 40}
		srv, err := New(eng, dev, Config{
			Tenants: 50, MaxInFlight: 4, QueueCap: 8,
			Breaker: BreakerConfig{Window: 16, MinSamples: 8, ErrorRate: 0.5, CooldownMS: 40, HalfOpenProbes: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		rnd := sim.NewRand(seed)
		var tick func(i int)
		tick = func(i int) {
			if i >= 3000 {
				return
			}
			tenant := rnd.Intn(50)
			if rnd.Bool(0.7) {
				srv.Read(tenant, tenant%3, int64(i), func(_ []byte, _ error) {})
			} else {
				srv.Write(tenant, tenant%3, int64(i), func(_ []byte, _ error) {})
			}
			eng.After(rnd.Exp(2), func() { tick(i + 1) })
		}
		tick(0)
		eng.Run()
		return srv.Counters(), srv.ClassStats(), srv.Breaker().Counts()
	}
	c1, s1, b1 := run()
	c2, s2, b2 := run()
	if c1 != c2 {
		t.Errorf("counters differ between identical replays:\n%+v\n%+v", c1, c2)
	}
	if b1 != b2 {
		t.Errorf("breaker counts differ: %+v vs %+v", b1, b2)
	}
	if fmt.Sprint(s1) != fmt.Sprint(s2) {
		t.Errorf("class stats differ:\n%v\n%v", s1, s2)
	}
	if c1.Throttled == 0 || c1.Retries == 0 {
		t.Errorf("scenario too tame to pin determinism: %+v", c1)
	}
}

func TestServerConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	dev := &fakeDev{eng: eng, serviceMS: 1}
	bad := []Config{
		{Classes: []ClassConfig{{Name: "", TokenRate: 1, TokenBurst: 1, DeadlineMS: 1}}},
		{Classes: []ClassConfig{{Name: "x", TokenRate: 0, TokenBurst: 1, DeadlineMS: 1}}},
		{Classes: []ClassConfig{{Name: "x", TokenRate: 1, TokenBurst: 0.5, DeadlineMS: 1}}},
		{Classes: []ClassConfig{{Name: "x", TokenRate: 1, TokenBurst: 1, DeadlineMS: 0}}},
	}
	for i, cfg := range bad {
		if _, err := New(eng, dev, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := New(eng, dev, Config{Classes: []ClassConfig{}}); err != nil {
		// Empty (non-nil) slice means "no classes": also invalid.
		t.Log(err)
	} else {
		t.Error("empty class table accepted")
	}
}

func TestServerPanicsOnBadIndices(t *testing.T) {
	eng, _, srv := newTestServer(t, nil, Config{Tenants: 1})
	_ = eng
	for _, fn := range []func(){
		func() { srv.Read(-1, 0, 0, nil) },
		func() { srv.Read(1, 0, 0, nil) },
		func() { srv.Read(0, -1, 0, nil) },
		func() { srv.Read(0, 3, 0, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range index did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestLinkConfigDelay(t *testing.T) {
	l := LinkConfig{LatencyMS: 1, BandwidthMBps: 8}.withDefaults()
	// 8 MB/s = 8000 bytes/ms: 16000 bytes serialize in 2 ms.
	if got := l.DelayMS(16000); got != 3 {
		t.Errorf("DelayMS(16000) = %v, want 3", got)
	}
	unlimited := LinkConfig{LatencyMS: 1, BandwidthMBps: -1}
	if got := unlimited.DelayMS(1 << 30); got != 1 {
		t.Errorf("negative bandwidth should disable serialization, got %v", got)
	}
	def := LinkConfig{}.withDefaults()
	if def.LatencyMS != 0.2 || def.BandwidthMBps != 100 {
		t.Errorf("defaults = %+v", def)
	}
}
