package server

// TokenBucket is a simulated-time token bucket: tokens accrue at Rate
// per simulated second up to Burst, and each admitted request spends
// one. Refill is computed lazily from the simulated clock the caller
// passes in, so a bucket costs nothing between requests and two runs
// presenting the same request times make identical decisions. The
// server keeps one per tenant — the slice of buckets for a million
// tenants is a few dozen megabytes and no timers.
type TokenBucket struct {
	// Rate is the refill rate in tokens per simulated second; Burst is
	// the bucket capacity.
	Rate  float64
	Burst float64

	tokens float64
	last   float64
}

// NewTokenBucket returns a full bucket whose clock starts at now.
func NewTokenBucket(rate, burst, now float64) TokenBucket {
	return TokenBucket{Rate: rate, Burst: burst, tokens: burst, last: now}
}

// refill accrues tokens up to simulated time now (milliseconds).
func (b *TokenBucket) refill(now float64) {
	if now > b.last {
		b.tokens += (now - b.last) / 1000 * b.Rate
		if b.tokens > b.Burst {
			b.tokens = b.Burst
		}
		b.last = now
	}
}

// Take spends one token at simulated time now, reporting whether one
// was available.
func (b *TokenBucket) Take(now float64) bool {
	b.refill(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens returns the level at simulated time now, for tests and gauges.
func (b *TokenBucket) Tokens(now float64) float64 {
	b.refill(now)
	return b.tokens
}
