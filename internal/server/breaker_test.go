package server

import (
	"testing"

	"repro/internal/sim"
)

// fill feeds n outcomes into a closed breaker at time now.
func fill(b *Breaker, now float64, n int, failed, missed bool) {
	for i := 0; i < n; i++ {
		b.Record(now, failed, missed, false)
	}
}

func TestBreakerTripsOnErrorRate(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 4, ErrorRate: 0.5})
	fill(b, 0, 3, true, false)
	if b.State(0) != BreakerClosed {
		t.Fatal("tripped below MinSamples")
	}
	b.Record(0, true, false, false)
	if b.State(0) != BreakerOpen {
		t.Fatal("4 failures in 4 samples at ErrorRate 0.5 did not trip")
	}
	if c := b.Counts(); c.Opened != 1 {
		t.Errorf("Opened = %d, want 1", c.Opened)
	}
	if ok, _ := b.Allow(1); ok {
		t.Error("open breaker admitted a request")
	}
	if c := b.Counts(); c.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", c.Rejected)
	}
}

func TestBreakerTripsOnMissRate(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 4, MissRate: 0.5, ErrorRate: -1})
	fill(b, 0, 8, false, true)
	if b.State(0) != BreakerOpen {
		t.Fatal("all-miss window did not trip on MissRate")
	}
}

func TestBreakerDisabledTriggers(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 4, ErrorRate: -1, MissRate: -1})
	fill(b, 0, 100, true, true)
	if b.State(0) != BreakerClosed {
		t.Fatal("breaker tripped with both triggers disabled")
	}
}

func TestBreakerRollingWindowEvicts(t *testing.T) {
	// Errors older than the window must stop counting. Six failures
	// total would trip at ErrorRate 0.6 (6/8 = 0.75) if they counted
	// forever; with the ring, the successes in between evict the first
	// burst and the breaker stays closed.
	b := NewBreaker(BreakerConfig{Window: 8, MinSamples: 8, ErrorRate: 0.6})
	fill(b, 0, 4, true, false)
	fill(b, 0, 5, false, false)
	fill(b, 0, 2, true, false)
	if b.State(0) != BreakerClosed {
		t.Fatal("evicted failures still tripped the breaker")
	}
	// A dense burst inside one window does trip: 5 of the last 8
	// outcomes failed (0.625 >= 0.6).
	fill(b, 0, 3, true, false)
	if b.State(0) != BreakerOpen {
		t.Fatal("5 failures inside one window did not trip at ErrorRate 0.6")
	}
}

func TestBreakerRecoveryCycle(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinSamples: 4, ErrorRate: 0.5, CooldownMS: 100, HalfOpenProbes: 2}
	b := NewBreaker(cfg)
	fill(b, 0, 4, true, false)
	if b.State(0) != BreakerOpen {
		t.Fatal("did not trip")
	}
	if b.State(99) != BreakerOpen {
		t.Fatal("half-opened before the cooldown elapsed")
	}
	if b.State(100) != BreakerHalfOpen {
		t.Fatal("did not half-open after the cooldown")
	}
	if c := b.Counts(); c.HalfOpened != 1 {
		t.Errorf("HalfOpened = %d, want 1", c.HalfOpened)
	}
	// Exactly HalfOpenProbes admissions, all flagged as probes.
	for i := 0; i < 2; i++ {
		ok, probe := b.Allow(101)
		if !ok || !probe {
			t.Fatalf("probe %d: ok=%v probe=%v", i, ok, probe)
		}
	}
	if ok, _ := b.Allow(101); ok {
		t.Fatal("half-open admitted beyond its probe budget")
	}
	// A straggler from before the trip is discarded half-open.
	b.Record(102, true, true, false)
	if b.State(102) != BreakerHalfOpen {
		t.Fatal("non-probe outcome moved a half-open breaker")
	}
	// Both probes succeed: closed, with a clean window.
	b.Record(103, false, false, true)
	b.Record(103, false, false, true)
	if b.State(103) != BreakerClosed {
		t.Fatal("all probes succeeding did not close the breaker")
	}
	if c := b.Counts(); c.Closed != 1 {
		t.Errorf("Closed = %d, want 1", c.Closed)
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinSamples: 4, ErrorRate: 0.5, CooldownMS: 100, HalfOpenProbes: 2}
	b := NewBreaker(cfg)
	fill(b, 0, 4, true, false)
	if _, probe := b.Allow(100); !probe {
		t.Fatal("expected a probe admission")
	}
	b.Record(101, true, false, true)
	if b.State(101) != BreakerOpen {
		t.Fatal("probe failure did not reopen the breaker")
	}
	if c := b.Counts(); c.Opened != 2 {
		t.Errorf("Opened = %d, want 2 (trip + reopen)", c.Opened)
	}
	// The cooldown restarts from the reopen.
	if b.State(200) != BreakerOpen {
		t.Fatal("cooldown did not restart on reopen")
	}
	if b.State(201) != BreakerHalfOpen {
		t.Fatal("did not half-open after the restarted cooldown")
	}
}

func TestBreakerProbeAbortedFreesSlot(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinSamples: 4, ErrorRate: 0.5, CooldownMS: 100, HalfOpenProbes: 1}
	b := NewBreaker(cfg)
	fill(b, 0, 4, true, false)
	if _, probe := b.Allow(100); !probe {
		t.Fatal("expected a probe admission")
	}
	if ok, _ := b.Allow(100); ok {
		t.Fatal("second admission with one probe slot")
	}
	// The probe was rejected downstream (throttle/queue) and never
	// reached the backend: the slot must come back, or recovery would
	// deadlock waiting on an outcome that cannot arrive.
	b.ProbeAborted()
	ok, probe := b.Allow(100)
	if !ok || !probe {
		t.Fatal("aborted probe slot was not reusable")
	}
	b.Record(101, false, false, true)
	if b.State(101) != BreakerClosed {
		t.Fatal("reissued probe's success did not close the breaker")
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open", BreakerState(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}

// TestBreakerDeterminism replays a random outcome schedule twice and
// requires the transition history to match exactly.
func TestBreakerDeterminism(t *testing.T) {
	const seed = 0xC1AC
	t.Logf("seed=%#x", seed)
	run := func() ([]BreakerState, BreakerCounts) {
		rnd := sim.NewRand(seed)
		b := NewBreaker(BreakerConfig{Window: 16, MinSamples: 8, ErrorRate: 0.4, MissRate: 0.4, CooldownMS: 200, HalfOpenProbes: 3})
		var states []BreakerState
		now := 0.0
		for i := 0; i < 20000; i++ {
			now += rnd.Exp(20)
			ok, probe := b.Allow(now)
			if ok {
				// Failures come in bursts so the breaker actually cycles.
				burst := int(now/5000)%2 == 0
				b.Record(now, burst && rnd.Bool(0.7), burst && rnd.Bool(0.5), probe)
			}
			states = append(states, b.State(now))
		}
		return states, b.Counts()
	}
	s1, c1 := run()
	s2, c2 := run()
	if c1 != c2 {
		t.Fatalf("counts differ between identical replays: %+v vs %+v", c1, c2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("state %d differs between identical replays", i)
		}
	}
	if c1.Opened == 0 || c1.HalfOpened == 0 || c1.Closed == 0 {
		t.Errorf("schedule did not exercise the full cycle: %+v", c1)
	}
}
