// Package server simulates a multi-tenant storage server front end in
// front of any driver.BlockDevice (a single disk driver or a logical
// volume). Tenants submit block requests over a simulated network link
// — a fixed propagation latency plus a serialization delay proportional
// to the bytes moved — and the server applies, in order:
//
//   - a per-backend circuit breaker (closed/open/half-open, tripping on
//     windowed error or deadline-miss rates), so a dying backend sheds
//     load instead of accumulating an unbounded queue;
//   - per-tenant token-bucket rate limiting, the QoS isolation that
//     keeps one noisy tenant from starving the rest;
//   - admission control: a bounded number of in-flight backend
//     requests, a bounded FIFO accept queue behind them, and load
//     shedding beyond that.
//
// Admitted requests carry a per-class deadline. Backend errors are
// retried with bounded exponential simulated-time backoff — the same
// retry shape the device driver uses one layer down — but never past
// the request's deadline; a request that completes late is answered
// with ErrDeadline, and one that expires while still queued is failed
// without touching the backend. Rejections are typed: ErrThrottled
// (rate limit), ErrOverload (queue full or breaker open, which wraps
// ErrOverload), ErrDeadline — alongside the driver's ErrDead/ErrCrash
// surfacing from the backend.
//
// Everything is scheduled on the caller's sim.Engine and all state
// lives on that engine's goroutine, so a run is deterministic: for the
// same configuration and request stream the server makes byte-identical
// decisions for any harness worker count or engine shard count.
package server

import (
	"errors"
	"fmt"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Typed rejection taxonomy. ErrCircuitOpen wraps ErrOverload so
// errors.Is(err, ErrOverload) covers both shedding causes.
var (
	// ErrThrottled rejects a request that exceeded its tenant's token
	// bucket.
	ErrThrottled = errors.New("server: tenant throttled")
	// ErrOverload rejects a request the accept queue had no room for.
	ErrOverload = errors.New("server: overloaded")
	// ErrCircuitOpen rejects a request while the backend's circuit
	// breaker is open.
	ErrCircuitOpen = fmt.Errorf("server: circuit open: %w", ErrOverload)
	// ErrDeadline fails a request whose deadline passed before a
	// response could be delivered.
	ErrDeadline = errors.New("server: deadline exceeded")
)

// LinkConfig models one network direction: a fixed propagation latency
// plus serialization at a bandwidth.
type LinkConfig struct {
	// LatencyMS is the one-way propagation delay in simulated ms; zero
	// selects 0.2 (a datacenter hop).
	LatencyMS float64
	// BandwidthMBps is the link bandwidth in MB/s; zero selects 100
	// (gigabit-class). Negative disables serialization delay.
	BandwidthMBps float64
}

func (l LinkConfig) withDefaults() LinkConfig {
	if l.LatencyMS == 0 {
		l.LatencyMS = 0.2
	}
	if l.BandwidthMBps == 0 {
		l.BandwidthMBps = 100
	}
	return l
}

// DelayMS returns the one-way transfer time of a message, in simulated
// milliseconds: propagation plus serialization.
func (l LinkConfig) DelayMS(bytes int) float64 {
	d := l.LatencyMS
	if l.BandwidthMBps > 0 {
		d += float64(bytes) / (l.BandwidthMBps * 1e6) * 1000
	}
	return d
}

// ClassConfig is one tenant class's QoS contract.
type ClassConfig struct {
	// Name labels the class in metrics and reports.
	Name string
	// TokenRate and TokenBurst parameterize each tenant's bucket, in
	// requests per simulated second and requests.
	TokenRate  float64
	TokenBurst float64
	// DeadlineMS is the end-to-end request deadline, measured from
	// client submission.
	DeadlineMS float64
}

// DefaultClasses returns the three-tier class ladder the tenant-scale
// experiment uses: per-tenant rates sized far above a tenant's fair
// share of aggregate load (so normal traffic never throttles) but far
// below a flooding tenant's rate.
func DefaultClasses() []ClassConfig {
	return []ClassConfig{
		{Name: "gold", TokenRate: 8, TokenBurst: 16, DeadlineMS: 600},
		{Name: "silver", TokenRate: 4, TokenBurst: 8, DeadlineMS: 1200},
		{Name: "bronze", TokenRate: 2, TokenBurst: 4, DeadlineMS: 2400},
	}
}

// Config parameterizes a Server.
type Config struct {
	// Tenants is the tenant population; each tenant owns one token
	// bucket. Zero selects 1.
	Tenants int
	// Classes lists the tenant classes; Read/Write take a class index
	// into it. Nil selects DefaultClasses.
	Classes []ClassConfig
	// Net is the client↔server link model, applied symmetrically.
	Net LinkConfig
	// QoSOff disables per-tenant token buckets — the noisy-neighbor
	// baseline. Admission control and the breaker stay on.
	QoSOff bool
	// MaxInFlight bounds concurrent backend requests; zero selects 32.
	MaxInFlight int
	// QueueCap bounds the accept queue behind the in-flight window;
	// requests beyond it are shed with ErrOverload. Zero selects 256.
	QueueCap int
	// MaxRetries and RetryBaseMS shape the RPC-layer retry ladder,
	// mirroring the driver's: up to MaxRetries re-issues with backoff
	// RetryBaseMS * 2^(attempt-1). Zeros select 3 and 2.0; negative
	// MaxRetries disables retries.
	MaxRetries  int
	RetryBaseMS float64
	// Breaker parameterizes the backend circuit breaker.
	Breaker BreakerConfig
	// HeaderBytes is the request/response envelope size put on the
	// wire in addition to block payloads; zero selects 128.
	HeaderBytes int
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Classes == nil {
		c.Classes = DefaultClasses()
	}
	c.Net = c.Net.withDefaults()
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 32
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBaseMS <= 0 {
		c.RetryBaseMS = 2.0
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 128
	}
	return c
}

// Counters are the server's lifetime counters, in request units unless
// noted. Accepted + Throttled + Overloaded + BreakerRejects = arrivals;
// Completed + Failed + Expired + DeadlineMiss = accepted requests that
// have been answered.
type Counters struct {
	// Submitted counts client submissions; Accepted counts those that
	// passed admission (breaker, token bucket, queue bound).
	Submitted int64
	Accepted  int64
	// Throttled, Overloaded and BreakerRejects count rejections by
	// cause: token bucket, full accept queue, open breaker.
	Throttled      int64
	Overloaded     int64
	BreakerRejects int64
	// Expired counts requests whose deadline passed while still queued
	// (failed without backend I/O); DeadlineMiss counts requests whose
	// backend completion came back after the deadline.
	Expired      int64
	DeadlineMiss int64
	// Retries counts backend re-issues; BackoffMS accumulates the
	// simulated time spent waiting between them.
	Retries   int64
	BackoffMS float64
	// Completed counts requests answered successfully; Failed counts
	// requests answered with a backend error after retries.
	Completed int64
	Failed    int64
}

// ClassStat is one tenant class's outcome summary.
type ClassStat struct {
	Name string
	// Submitted and Throttled count arrivals and rate-limit rejections;
	// Completed counts successful responses.
	Submitted int64
	Throttled int64
	Completed int64
	// P50/P99/P999 are end-to-end latency quantiles (submission to
	// response arrival, simulated ms) over answered admitted requests.
	P50, P99, P999 float64
}

// classState is the per-class hot state.
type classState struct {
	cfg       ClassConfig
	submitted int64
	throttled int64
	completed int64
	hist      *metrics.Histogram // always on: feeds ClassStats
	mx        *metrics.Histogram // registry copy, nil until BindMetrics
}

// call adapts a closure to sim.Caller so pooled records can schedule
// events allocation-free.
type call struct{ fn func() }

func (c *call) Call() { c.fn() }

// Server is the simulated front end. All methods must run on the
// engine's goroutine; the server is event-driven and lock-free.
type Server struct {
	eng *sim.Engine
	dev driver.BlockDevice
	cfg Config

	buckets []TokenBucket
	breaker *Breaker
	classes []classState

	inflight int
	qhead    *sreq
	qtail    *sreq
	qlen     int

	free *sreq
	wbuf []byte // shared write payload; content is never read back

	cnt Counters
}

// New builds a server fronting dev on eng. The configuration is
// validated eagerly: an invalid class table is a construction error,
// not a per-request one.
func New(eng *sim.Engine, dev driver.BlockDevice, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Classes) == 0 {
		return nil, errors.New("server: no tenant classes")
	}
	for i, c := range cfg.Classes {
		if c.Name == "" || c.TokenRate <= 0 || c.TokenBurst < 1 || c.DeadlineMS <= 0 {
			return nil, fmt.Errorf("server: class %d (%q) needs a name, positive rate/deadline and burst >= 1", i, c.Name)
		}
	}
	s := &Server{
		eng:     eng,
		dev:     dev,
		cfg:     cfg,
		breaker: NewBreaker(cfg.Breaker),
		classes: make([]classState, len(cfg.Classes)),
		wbuf:    make([]byte, dev.BlockSize().Bytes()),
	}
	for i, c := range cfg.Classes {
		s.classes[i] = classState{cfg: c, hist: metrics.NewHistogram(metrics.HistogramOpts{})}
	}
	if !cfg.QoSOff {
		s.buckets = make([]TokenBucket, cfg.Tenants)
		now := eng.Now()
		for i := range s.buckets {
			// Every tenant starts with a full bucket; the class is only
			// known per request, so rate/burst are stamped lazily there.
			s.buckets[i] = TokenBucket{tokens: -1, last: now}
		}
	}
	return s, nil
}

// Counters returns the lifetime counters.
func (s *Server) Counters() Counters { return s.cnt }

// Breaker returns the backend circuit breaker, for probes and tests.
func (s *Server) Breaker() *Breaker { return s.breaker }

// InFlight returns the number of backend requests outstanding.
func (s *Server) InFlight() int { return s.inflight }

// QueueLen returns the accept queue's depth.
func (s *Server) QueueLen() int { return s.qlen }

// ClassStats summarizes every class from the always-on histograms.
func (s *Server) ClassStats() []ClassStat {
	out := make([]ClassStat, len(s.classes))
	for i := range s.classes {
		c := &s.classes[i]
		st := ClassStat{
			Name:      c.cfg.Name,
			Submitted: c.submitted,
			Throttled: c.throttled,
			Completed: c.completed,
		}
		if c.hist.Count() > 0 {
			st.P50 = c.hist.Quantile(0.5)
			st.P99 = c.hist.Quantile(0.99)
			st.P999 = c.hist.Quantile(0.999)
		}
		out[i] = st
	}
	return out
}

// BindMetrics registers the server's instruments in reg under the given
// labels: one end-to-end latency histogram per tenant class
// (server_req_ms{class="..."}, recorded for answered admitted requests
// from the moment of binding), per-class arrival/throttle counters, the
// admission/deadline/retry counters, and the breaker's state gauge and
// transition counters.
func (s *Server) BindMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	for i := range s.classes {
		c := &s.classes[i]
		cl := append(append([]metrics.Label(nil), labels...), metrics.Label{Key: "class", Value: c.cfg.Name})
		c.mx = reg.Histogram("server_req_ms", metrics.HistogramOpts{}, cl...)
		reg.CounterFunc("server_class_submitted", func() int64 { return c.submitted }, cl...)
		reg.CounterFunc("server_class_throttled", func() int64 { return c.throttled }, cl...)
	}
	reg.CounterFunc("server_submitted", func() int64 { return s.cnt.Submitted }, labels...)
	reg.CounterFunc("server_accepted", func() int64 { return s.cnt.Accepted }, labels...)
	reg.CounterFunc("server_throttled", func() int64 { return s.cnt.Throttled }, labels...)
	reg.CounterFunc("server_overloaded", func() int64 { return s.cnt.Overloaded }, labels...)
	reg.CounterFunc("server_breaker_rejects", func() int64 { return s.cnt.BreakerRejects }, labels...)
	reg.CounterFunc("server_expired", func() int64 { return s.cnt.Expired }, labels...)
	reg.CounterFunc("server_deadline_miss", func() int64 { return s.cnt.DeadlineMiss }, labels...)
	reg.CounterFunc("server_retries", func() int64 { return s.cnt.Retries }, labels...)
	reg.GaugeFunc("server_backoff_ms", func() float64 { return s.cnt.BackoffMS }, labels...)
	reg.CounterFunc("server_completed", func() int64 { return s.cnt.Completed }, labels...)
	reg.CounterFunc("server_failed", func() int64 { return s.cnt.Failed }, labels...)
	reg.CounterFunc("server_breaker_opened", func() int64 { return s.breaker.counts.Opened }, labels...)
	reg.CounterFunc("server_breaker_half_opened", func() int64 { return s.breaker.counts.HalfOpened }, labels...)
	reg.CounterFunc("server_breaker_closed", func() int64 { return s.breaker.counts.Closed }, labels...)
	reg.GaugeFunc("server_breaker_state", func() float64 { return float64(s.breaker.state) }, labels...)
}

// Read submits one tenant block read. done fires on the client side of
// the link — after the response has crossed the network — with the
// block data or a typed error.
func (s *Server) Read(tenant, class int, blk int64, done driver.DoneFunc) {
	s.submit(tenant, class, false, blk, done)
}

// Write submits one tenant block write. The payload is synthesized by
// the server (content is never read back in this simulation); its wire
// size still pays serialization delay on the request path.
func (s *Server) Write(tenant, class int, blk int64, done driver.DoneFunc) {
	s.submit(tenant, class, true, blk, done)
}

// submit puts one request on the wire at the current simulated time.
func (s *Server) submit(tenant, class int, write bool, blk int64, done driver.DoneFunc) {
	if tenant < 0 || tenant >= s.cfg.Tenants {
		panic(fmt.Sprintf("server: tenant %d out of range [0, %d)", tenant, s.cfg.Tenants))
	}
	if class < 0 || class >= len(s.classes) {
		panic(fmt.Sprintf("server: class %d out of range [0, %d)", class, len(s.classes)))
	}
	s.cnt.Submitted++
	s.classes[class].submitted++
	r := s.getReq()
	r.tenant, r.class, r.write, r.blk = tenant, class, write, blk
	r.submitMS = s.eng.Now()
	r.done = done
	bytes := s.cfg.HeaderBytes
	if write {
		bytes += len(s.wbuf)
	}
	s.eng.AfterCall(s.cfg.Net.DelayMS(bytes), &r.arriveC)
}

// arrive runs admission when the request reaches the server: breaker,
// token bucket, then the in-flight window and accept queue.
func (s *Server) arrive(r *sreq) {
	now := s.eng.Now()
	ok, probe := s.breaker.Allow(now)
	if !ok {
		s.cnt.BreakerRejects++
		s.respond(r, nil, ErrCircuitOpen)
		return
	}
	r.probe = probe
	if s.buckets != nil {
		b := &s.buckets[r.tenant]
		if b.tokens < 0 {
			// First sight of this tenant: stamp its class contract. A
			// tenant's bucket keeps the contract of its first request's
			// class (tenants do not change class mid-run).
			c := s.classes[r.class].cfg
			b.Rate, b.Burst, b.tokens = c.TokenRate, c.TokenBurst, c.TokenBurst
		}
		if !b.Take(now) {
			if r.probe {
				// The probe never reached the backend: free its slot so
				// the breaker's recovery cannot deadlock on it.
				s.breaker.ProbeAborted()
				r.probe = false
			}
			s.cnt.Throttled++
			s.classes[r.class].throttled++
			s.respond(r, nil, ErrThrottled)
			return
		}
	}
	r.deadlineMS = r.submitMS + s.classes[r.class].cfg.DeadlineMS
	if s.inflight < s.cfg.MaxInFlight {
		s.cnt.Accepted++
		s.inflight++
		s.issue(r)
		return
	}
	if s.qlen >= s.cfg.QueueCap {
		if r.probe {
			s.breaker.ProbeAborted()
			r.probe = false
		}
		s.cnt.Overloaded++
		s.respond(r, nil, ErrOverload)
		return
	}
	s.cnt.Accepted++
	r.qnext = nil
	if s.qtail == nil {
		s.qhead = r
	} else {
		s.qtail.qnext = r
	}
	s.qtail = r
	s.qlen++
}

// issue performs one backend attempt.
func (s *Server) issue(r *sreq) {
	if r.write {
		s.dev.WriteBlock(0, r.blk, s.wbuf, r.backendCB)
	} else {
		s.dev.ReadBlock(0, r.blk, r.backendCB)
	}
}

// backendDone handles a backend completion: retry transiently within
// the deadline, otherwise feed the breaker and answer the client.
func (s *Server) backendDone(r *sreq, data []byte, err error) {
	now := s.eng.Now()
	if err != nil && r.attempt < s.cfg.MaxRetries {
		backoff := s.cfg.RetryBaseMS * float64(int64(1)<<r.attempt)
		if now+backoff < r.deadlineMS {
			r.attempt++
			s.cnt.Retries++
			s.cnt.BackoffMS += backoff
			s.eng.AfterCall(backoff, &r.issueC)
			return
		}
	}
	missed := now > r.deadlineMS
	s.breaker.Record(now, err != nil, missed, r.probe)
	if missed {
		s.cnt.DeadlineMiss++
		if err == nil {
			// The backend answered, but the client has given up: the
			// response is discarded and the request fails late.
			data, err = nil, ErrDeadline
		}
	}
	s.inflight--
	s.drain()
	s.finish(r, data, err, missed)
}

// drain dispatches queued requests into freed in-flight slots,
// expiring entries whose deadline already passed — their client has
// given up, so issuing backend I/O for them would only add load.
func (s *Server) drain() {
	now := s.eng.Now()
	for s.inflight < s.cfg.MaxInFlight && s.qhead != nil {
		r := s.qhead
		s.qhead = r.qnext
		if s.qhead == nil {
			s.qtail = nil
		}
		s.qlen--
		r.qnext = nil
		if now >= r.deadlineMS {
			s.cnt.Expired++
			// Queue expiry is congestion evidence: feed it to the
			// breaker as a deadline miss even though no backend attempt
			// was made.
			s.breaker.Record(now, false, true, r.probe)
			s.finish(r, nil, ErrDeadline, true)
			continue
		}
		s.inflight++
		s.issue(r)
	}
}

// finish accounts one answered admitted request and sends the response
// back over the link.
func (s *Server) finish(r *sreq, data []byte, err error, missed bool) {
	if err == nil {
		s.cnt.Completed++
		s.classes[r.class].completed++
	} else if !missed {
		s.cnt.Failed++
	}
	r.record = true
	s.respond(r, data, err)
}

// respond schedules the client-side delivery of a response (or
// rejection). Read payloads pay serialization delay on the way back.
func (s *Server) respond(r *sreq, data []byte, err error) {
	r.data, r.err = data, err
	bytes := s.cfg.HeaderBytes + len(data)
	s.eng.AfterCall(s.cfg.Net.DelayMS(bytes), &r.respondC)
}

// deliver runs on the client side: record latency for answered
// admitted requests, then hand the result to the caller's done.
func (s *Server) deliver(r *sreq) {
	if r.record {
		c := &s.classes[r.class]
		lat := s.eng.Now() - r.submitMS
		c.hist.Record(lat)
		if c.mx != nil {
			c.mx.Record(lat)
		}
	}
	done, data, err := r.done, r.data, r.err
	s.putReq(r)
	if done != nil {
		done(data, err)
	}
}

// sreq is the pooled per-request record. Its schedulable continuations
// (arrival, retry re-issue, response delivery) and its backend
// completion callback are built once per record, so a steady-state
// request allocates nothing at the server layer. Records live on the
// engine goroutine only; the pool needs no lock.
type sreq struct {
	s     *Server
	next  *sreq // pool link
	qnext *sreq // accept-queue link

	tenant, class int
	write         bool
	blk           int64
	submitMS      float64
	deadlineMS    float64
	attempt       int
	probe         bool
	record        bool // answered admitted request: record latency

	data []byte
	err  error
	done driver.DoneFunc

	arriveC   call
	issueC    call
	respondC  call
	backendCB driver.DoneFunc
}

// getReq pops a pooled record, building one — with its reusable
// continuations — on first use.
func (s *Server) getReq() *sreq {
	r := s.free
	if r == nil {
		r = &sreq{s: s}
		r.arriveC = call{fn: func() { r.s.arrive(r) }}
		r.issueC = call{fn: func() { r.s.issue(r) }}
		r.respondC = call{fn: func() { r.s.deliver(r) }}
		r.backendCB = func(data []byte, err error) { r.s.backendDone(r, data, err) }
		return r
	}
	s.free = r.next
	r.next = nil
	return r
}

// putReq recycles a finished record, dropping references the pool must
// not pin.
func (s *Server) putReq(r *sreq) {
	r.done, r.data, r.err = nil, nil, nil
	r.qnext = nil
	r.attempt = 0
	r.probe, r.record = false, false
	r.next = s.free
	s.free = r
}
