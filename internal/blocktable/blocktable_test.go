package blocktable

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestAddLookup(t *testing.T) {
	bt := New(geom.Block8K)
	if err := bt.Add(160, 64000); err != nil {
		t.Fatal(err)
	}
	got, ok := bt.Lookup(160)
	if !ok || got != 64000 {
		t.Errorf("Lookup = (%d, %v)", got, ok)
	}
	orig, ok := bt.ReverseLookup(64000)
	if !ok || orig != 160 {
		t.Errorf("ReverseLookup = (%d, %v)", orig, ok)
	}
	if _, ok := bt.Lookup(176); ok {
		t.Error("absent block found")
	}
	if bt.Len() != 1 {
		t.Errorf("Len = %d", bt.Len())
	}
}

func TestAddRejectsMisaligned(t *testing.T) {
	bt := New(geom.Block8K)
	if err := bt.Add(7, 64000); err == nil {
		t.Error("misaligned orig accepted")
	}
	if err := bt.Add(160, 64001); err == nil {
		t.Error("misaligned dst accepted")
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	bt := New(geom.Block8K)
	if err := bt.Add(160, 64000); err != nil {
		t.Fatal(err)
	}
	if err := bt.Add(160, 64016); err == nil {
		t.Error("duplicate orig accepted")
	}
	if err := bt.Add(320, 64000); err == nil {
		t.Error("duplicate dst accepted")
	}
}

func TestRemove(t *testing.T) {
	bt := New(geom.Block8K)
	if err := bt.Add(160, 64000); err != nil {
		t.Fatal(err)
	}
	e, ok := bt.Remove(160)
	if !ok || e.Orig != 160 || e.New != 64000 {
		t.Errorf("Remove = (%+v, %v)", e, ok)
	}
	if _, ok := bt.Lookup(160); ok {
		t.Error("removed block still found")
	}
	if _, ok := bt.ReverseLookup(64000); ok {
		t.Error("removed slot still occupied")
	}
	if _, ok := bt.Remove(160); ok {
		t.Error("double remove succeeded")
	}
}

func TestDirtyBits(t *testing.T) {
	bt := New(geom.Block8K)
	if err := bt.Add(160, 64000); err != nil {
		t.Fatal(err)
	}
	if bt.IsDirty(160) {
		t.Error("new entry is dirty")
	}
	if !bt.MarkDirty(160) {
		t.Error("MarkDirty of present block returned false")
	}
	if !bt.IsDirty(160) {
		t.Error("dirty bit not set")
	}
	if bt.MarkDirty(999984) {
		t.Error("MarkDirty of absent block returned true")
	}
}

func TestMarkAllDirty(t *testing.T) {
	bt := New(geom.Block8K)
	for i := int64(0); i < 5; i++ {
		if err := bt.Add(i*16, 64000+i*16); err != nil {
			t.Fatal(err)
		}
	}
	bt.MarkAllDirty()
	for _, e := range bt.Entries() {
		if !e.Dirty {
			t.Errorf("entry %d not dirty after MarkAllDirty", e.Orig)
		}
	}
}

func TestEntriesSorted(t *testing.T) {
	bt := New(geom.Block8K)
	for _, orig := range []int64{480, 160, 320} {
		if err := bt.Add(orig, 64000+orig); err != nil {
			t.Fatal(err)
		}
	}
	es := bt.Entries()
	if len(es) != 3 || es[0].Orig != 160 || es[1].Orig != 320 || es[2].Orig != 480 {
		t.Errorf("Entries = %+v", es)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	bt := New(geom.Block8K)
	for i := int64(0); i < 100; i++ {
		if err := bt.Add(i*16*7, 640000+i*16); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			bt.MarkDirty(i * 16 * 7)
		}
	}
	img := bt.Encode()
	if len(img)%geom.SectorSize != 0 {
		t.Errorf("image not sector-aligned: %d bytes", len(img))
	}
	got, err := Decode(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != bt.Len() {
		t.Fatalf("decoded %d entries, want %d", got.Len(), bt.Len())
	}
	for _, e := range bt.Entries() {
		ne, ok := got.Lookup(e.Orig)
		if !ok || ne != e.New {
			t.Errorf("entry %d: got (%d, %v)", e.Orig, ne, ok)
		}
		if got.IsDirty(e.Orig) != e.Dirty {
			t.Errorf("entry %d: dirty bit lost", e.Orig)
		}
	}
}

func TestGenerationRoundTrip(t *testing.T) {
	bt := New(geom.Block8K)
	if err := bt.Add(160, 64000); err != nil {
		t.Fatal(err)
	}
	bt.Gen = 41
	got, err := Decode(bt.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 41 {
		t.Errorf("Gen = %d, want 41", got.Gen)
	}
	// A torn generation field (fresh header bytes over stale ones) must
	// not decode as valid: the checksum covers the stamp.
	img := bt.Encode()
	img[offHdrGen+7] ^= 0x01
	if _, err := Decode(img); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt generation decoded: %v", err)
	}
}

func TestDecodeEmptyTable(t *testing.T) {
	bt := New(geom.Block8K)
	got, err := Decode(bt.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("decoded empty table has %d entries", got.Len())
	}
	if got.BlockSectors() != 16 {
		t.Errorf("BlockSectors = %d", got.BlockSectors())
	}
}

func TestDecodeWithTrailingPadding(t *testing.T) {
	// The driver reads the whole fixed table allocation; decoding must
	// tolerate trailing padding.
	bt := New(geom.Block8K)
	if err := bt.Add(160, 64000); err != nil {
		t.Fatal(err)
	}
	img := bt.Encode()
	padded := make([]byte, len(img)+4*geom.SectorSize)
	copy(padded, img)
	got, err := Decode(padded)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Errorf("decoded %d entries", got.Len())
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	bt := New(geom.Block8K)
	if err := bt.Add(160, 64000); err != nil {
		t.Fatal(err)
	}
	img := bt.Encode()

	bad := append([]byte(nil), img...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	bad = append([]byte(nil), img...)
	bad[headerSize] ^= 0x01 // flip an entry byte
	if _, err := Decode(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt entry: %v", err)
	}
	if _, err := Decode(img[:4]); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestRecoverDecodeMarksAllDirty(t *testing.T) {
	// Section 4.1.2: after a crash the dirty bits on disk may be stale,
	// so recovery must conservatively treat every block as dirty.
	bt := New(geom.Block8K)
	for i := int64(0); i < 10; i++ {
		if err := bt.Add(i*32, 64000+i*16); err != nil {
			t.Fatal(err)
		}
	}
	got, err := RecoverDecode(bt.Encode())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got.Entries() {
		if !e.Dirty {
			t.Errorf("entry %d not dirty after recovery", e.Orig)
		}
	}
}

func TestEncodedSectors(t *testing.T) {
	if got := EncodedSectors(0); got != 1 {
		t.Errorf("EncodedSectors(0) = %d", got)
	}
	// 24 + 27*18 = 510 <= 512; 28 entries need 528 -> 2 sectors.
	if got := EncodedSectors(27); got != 1 {
		t.Errorf("EncodedSectors(27) = %d", got)
	}
	if got := EncodedSectors(28); got != 2 {
		t.Errorf("EncodedSectors(28) = %d", got)
	}
}

func TestMaxEntriesIn(t *testing.T) {
	if got := MaxEntriesIn(1); got != 27 {
		t.Errorf("MaxEntriesIn(1) = %d", got)
	}
	if got := MaxEntriesIn(0); got != 0 {
		t.Errorf("MaxEntriesIn(0) = %d", got)
	}
	// Inverse-ish relation.
	for s := 1; s < 40; s++ {
		n := MaxEntriesIn(s)
		if EncodedSectors(n) > s {
			t.Errorf("EncodedSectors(MaxEntriesIn(%d)=%d) = %d > %d", s, n, EncodedSectors(n), s)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(pairs []uint16, dirt []bool) bool {
		bt := New(geom.Block8K)
		for i, p := range pairs {
			orig := int64(p) * 16
			dst := int64(1<<20) + int64(i)*16
			if err := bt.Add(orig, dst); err != nil {
				continue // duplicate orig: fine
			}
			if i < len(dirt) && dirt[i] {
				bt.MarkDirty(orig)
			}
		}
		got, err := Decode(bt.Encode())
		if err != nil {
			return false
		}
		if got.Len() != bt.Len() {
			return false
		}
		for _, e := range bt.Entries() {
			ne, ok := got.Lookup(e.Orig)
			if !ok || ne != e.New || got.IsDirty(e.Orig) != e.Dirty {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
