package blocktable

import (
	"bytes"
	"testing"

	"repro/internal/geom"
)

// fuzzSeeds builds the seed corpus both fuzz targets share: valid
// encodings of several table shapes plus truncated and bit-flipped
// variants — the images a torn table write or a failing sector could
// hand to recovery.
func fuzzSeeds(f *testing.F) {
	f.Helper()
	empty := New(geom.Block8K)
	f.Add(empty.Encode())

	small := New(geom.Block8K)
	for i := int64(0); i < 5; i++ {
		if err := small.Add(i*160, 640000+i*16); err != nil {
			f.Fatal(err)
		}
	}
	small.MarkDirty(0)
	small.Gen = 3
	img := small.Encode()
	f.Add(img)

	big := New(geom.Block4K)
	for i := int64(0); i < 100; i++ {
		if err := big.Add(i*80, 800000+i*8); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(big.Encode())

	// Truncations: inside the header, at the header boundary, and
	// mid-entry — what a torn write leaves behind.
	for _, n := range []int{0, 4, headerSize - 1, headerSize, headerSize + entrySize/2, len(img) - 1} {
		if n <= len(img) {
			f.Add(append([]byte(nil), img[:n]...))
		}
	}
	// Bit flips in every header field and in an entry.
	for _, off := range []int{offHdrMagic, offHdrVersion, offHdrBlkSec, offHdrCount, offHdrCksum, offHdrGen, headerSize + 3} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x80
		f.Add(bad)
	}
	// A hostile count with everything else intact.
	huge := append([]byte(nil), img...)
	huge[offHdrCount] = 0xFF
	huge[offHdrCount+1] = 0xFF
	f.Add(huge)
}

// FuzzDecode asserts Decode never panics: any input either decodes to
// a consistent table that re-encodes and round-trips, or returns an
// error.
func FuzzDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must be internally consistent and
		// re-encodable.
		entries := tbl.Entries()
		if len(entries) != tbl.Len() {
			t.Fatalf("Entries() returned %d of %d", len(entries), tbl.Len())
		}
		again, err := Decode(tbl.Encode())
		if err != nil {
			t.Fatalf("re-decoding a valid table: %v", err)
		}
		if !bytes.Equal(again.Encode(), tbl.Encode()) {
			t.Fatal("encode/decode/encode not stable")
		}
	})
}

// FuzzRecoverDecode asserts the conservative recovery path never
// panics and that every entry of a recovered table is dirty.
func FuzzRecoverDecode(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := RecoverDecode(data)
		if err != nil {
			return
		}
		for _, e := range tbl.Entries() {
			if !e.Dirty {
				t.Fatalf("entry %d not dirty after recovery", e.Orig)
			}
		}
	})
}
