package blocktable

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// TestEntriesSortedUnderChurn drives a random Add/Remove/MarkDirty
// sequence and checks the incrementally maintained order against a
// from-scratch sort after every mutation — the invariant Encode and the
// arranger's diffing rely on.
func TestEntriesSortedUnderChurn(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	tab := New(geom.Block8K)
	bsec := int64(geom.Block8K.Sectors())
	live := map[int64]int64{}
	check := func() {
		t.Helper()
		got := tab.Entries()
		want := make([]Entry, 0, len(live))
		for o, n := range live {
			want = append(want, Entry{Orig: o, New: n, Dirty: tab.IsDirty(o)})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].Orig < want[j].Orig })
		if len(got) != len(want) {
			t.Fatalf("Entries() has %d entries, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Entries()[%d] = %+v, want %+v", i, got[i], want[i])
			}
		}
	}
	for i := 0; i < 2000; i++ {
		switch rnd.Intn(3) {
		case 0, 1:
			orig := int64(rnd.Intn(500)) * bsec
			new := (1000 + int64(rnd.Intn(500))) * bsec
			if _, ok := live[orig]; ok {
				break
			}
			if _, ok := tab.ReverseLookup(new); ok {
				break
			}
			if err := tab.Add(orig, new); err != nil {
				t.Fatal(err)
			}
			live[orig] = new
			if rnd.Intn(2) == 0 {
				tab.MarkDirty(orig)
			}
		case 2:
			for o := range live {
				tab.Remove(o)
				delete(live, o)
				break
			}
		}
		check()
	}
}

// TestEncodeToReusesAndMatchesEncode checks that EncodeTo into a dirty,
// oversized scratch buffer produces byte-identical images to a fresh
// Encode as the table grows and shrinks — including the zeroed padding
// a shrinking table leaves behind.
func TestEncodeToReusesAndMatchesEncode(t *testing.T) {
	tab := New(geom.Block8K)
	bsec := int64(geom.Block8K.Sectors())
	scratch := make([]byte, 0, 64*1024)
	for i := range scratch[:cap(scratch)] {
		scratch[:cap(scratch)][i] = 0xAA // poison: stale bytes must not leak
	}
	sizes := []int{0, 1, 7, 300, 50, 3, 0, 120}
	present := map[int64]bool{}
	n := int64(0)
	for _, size := range sizes {
		for int(n) < size {
			if err := tab.Add(n*bsec, (10000+n)*bsec); err != nil {
				t.Fatal(err)
			}
			present[n] = true
			n++
		}
		for int(n) > size {
			n--
			tab.Remove(n * bsec)
		}
		got := tab.EncodeTo(scratch[:0])
		want := tab.Encode()
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: EncodeTo differs from Encode", size)
		}
		if dec, err := Decode(got); err != nil || dec.Len() != size {
			t.Fatalf("size %d: reused image does not decode cleanly: %v", size, err)
		}
	}
}

// TestCrcMatchesPerByteReference pins the run-batched checksum to the
// original per-byte definition across sizes that straddle the deferred
// modulo window.
func TestCrcMatchesPerByteReference(t *testing.T) {
	ref := func(data []byte) uint32 {
		var a, b uint32 = 1, 0
		for _, c := range data {
			a = (a + uint32(c)) % 65521
			b = (b + a) % 65521
		}
		return b<<16 | a
	}
	rnd := rand.New(rand.NewSource(11))
	for _, size := range []int{0, 1, 100, 5551, 5552, 5553, 11104, 70000} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(rnd.Intn(256))
		}
		if got, want := crc(data), ref(data); got != want {
			t.Errorf("crc over %d bytes = %#x, reference gives %#x", size, got, want)
		}
	}
}
