// Package blocktable implements the driver's block table (Section 4.1.2
// of "Adaptive Block Rearrangement Under UNIX").
//
// When a block is copied into the reserved region, its old and new
// physical addresses are entered into the block table. The strategy
// routine consults the table on every request to decide whether to
// redirect the request to the reserved region. Each entry carries a
// dirty bit recording whether the reserved copy has been written since
// it was installed; a dirty block must be copied back to its original
// location when it is cleaned out.
//
// A copy of the table is stored at the beginning of the reserved region
// for use at start-up and for recovery. The on-disk copy always
// correctly lists the rearranged blocks and their positions, but the
// dirty bits may be stale; after a crash, recovery conservatively marks
// every entry dirty so that no update to a repositioned block can be
// lost (RecoverDecode).
package blocktable

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/geom"
)

// Magic identifies an encoded block table ("BTBL").
const Magic uint32 = 0x4254424C

// Version is the current encoding version. Version 2 added the
// generation stamp that crash-safe dual-slot table writes order
// themselves by.
const Version uint16 = 2

// Errors returned by Decode.
var (
	ErrBadMagic    = errors.New("blocktable: bad magic")
	ErrBadChecksum = errors.New("blocktable: bad checksum")
)

// Entry maps one rearranged block. Addresses are the first physical
// sector of the block at its original location and in the reserved
// region.
type Entry struct {
	Orig  int64
	New   int64
	Dirty bool
}

// Table is the in-memory block table. It is not safe for concurrent use;
// the driver serializes access as the kernel would.
type Table struct {
	blockSectors int
	byOrig       map[int64]*Entry
	byNew        map[int64]*Entry

	// order holds the entries sorted by original address, maintained
	// incrementally by Add/Remove. The driver serializes (and the
	// arranger diffs) the table once per block movement, so keeping the
	// order sorted at mutation time turns every Entries/Encode call from
	// an O(n log n) reflection sort into a straight copy.
	order []*Entry

	// Gen is the table's generation stamp. The driver increments it on
	// every committed table write; recovery picks the on-disk slot with
	// the highest generation among those that decode. It rides through
	// Encode/Decode and has no meaning to the table itself.
	Gen uint64
}

// New returns an empty table for blocks of the given size.
func New(bs geom.BlockSize) *Table {
	return &Table{
		blockSectors: bs.Sectors(),
		byOrig:       make(map[int64]*Entry),
		byNew:        make(map[int64]*Entry),
	}
}

// BlockSectors returns the number of sectors per block.
func (t *Table) BlockSectors() int { return t.blockSectors }

// Len returns the number of rearranged blocks.
func (t *Table) Len() int { return len(t.byOrig) }

// Add installs a mapping from the block at orig to the reserved-region
// position new. Both addresses must be block-aligned and not already in
// use.
func (t *Table) Add(orig, new int64) error {
	if orig%int64(t.blockSectors) != 0 || new%int64(t.blockSectors) != 0 {
		return fmt.Errorf("blocktable: addresses %d -> %d not aligned to %d-sector blocks",
			orig, new, t.blockSectors)
	}
	if _, ok := t.byOrig[orig]; ok {
		return fmt.Errorf("blocktable: block at %d is already rearranged", orig)
	}
	if _, ok := t.byNew[new]; ok {
		return fmt.Errorf("blocktable: reserved slot %d is already occupied", new)
	}
	e := &Entry{Orig: orig, New: new}
	t.byOrig[orig] = e
	t.byNew[new] = e
	// Insert into the sorted order: binary search for the position.
	lo, hi := 0, len(t.order)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.order[mid].Orig < orig {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	t.order = append(t.order, nil)
	copy(t.order[lo+1:], t.order[lo:])
	t.order[lo] = e
	return nil
}

// Remove deletes the mapping for the block at orig. It returns the
// removed entry and whether it existed.
func (t *Table) Remove(orig int64) (Entry, bool) {
	e, ok := t.byOrig[orig]
	if !ok {
		return Entry{}, false
	}
	delete(t.byOrig, orig)
	delete(t.byNew, e.New)
	lo, hi := 0, len(t.order)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.order[mid].Orig < orig {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(t.order[lo:], t.order[lo+1:])
	t.order[len(t.order)-1] = nil
	t.order = t.order[:len(t.order)-1]
	return *e, true
}

// Lookup returns the reserved-region address of the block at orig, if it
// has been rearranged.
func (t *Table) Lookup(orig int64) (int64, bool) {
	e, ok := t.byOrig[orig]
	if !ok {
		return 0, false
	}
	return e.New, true
}

// ReverseLookup returns the original address of the block occupying the
// reserved slot new, if any.
func (t *Table) ReverseLookup(new int64) (int64, bool) {
	e, ok := t.byNew[new]
	if !ok {
		return 0, false
	}
	return e.Orig, true
}

// MarkDirty sets the dirty bit of the block at orig. It reports whether
// the block is in the table.
func (t *Table) MarkDirty(orig int64) bool {
	e, ok := t.byOrig[orig]
	if ok {
		e.Dirty = true
	}
	return ok
}

// IsDirty reports the dirty bit of the block at orig.
func (t *Table) IsDirty(orig int64) bool {
	e, ok := t.byOrig[orig]
	return ok && e.Dirty
}

// MarkAllDirty sets every entry's dirty bit. Recovery uses this so that
// updates to repositioned blocks survive a crash even if the on-disk
// dirty bits were stale.
func (t *Table) MarkAllDirty() {
	for _, e := range t.byOrig {
		e.Dirty = true
	}
}

// Entries returns the table contents sorted by original address.
func (t *Table) Entries() []Entry {
	out := make([]Entry, len(t.order))
	for i, e := range t.order {
		out[i] = *e
	}
	return out
}

// Encoding layout: a header followed by fixed-size entries, padded to a
// whole number of sectors.
//
//	header:  magic u32 | version u16 | blockSectors u16 | count u32 |
//	         checksum u32 (over generation + entries) | generation u64
//	entry:   orig u64 | new u64 | flags u16
//
// The checksum covers the generation stamp and the entry bytes, so a
// torn write that mixes a fresh header with stale entries (or tears
// the generation field itself) cannot decode as valid.
const (
	headerSize    = 24
	entrySize     = 18
	flagDirty     = 1 << 0
	offHdrMagic   = 0
	offHdrVersion = 4
	offHdrBlkSec  = 6
	offHdrCount   = 8
	offHdrCksum   = 12
	offHdrGen     = 16
)

// EncodedSectors returns the number of sectors needed to store a table
// of n entries.
func EncodedSectors(n int) int {
	bytes := headerSize + n*entrySize
	return (bytes + geom.SectorSize - 1) / geom.SectorSize
}

// MaxEntriesIn returns the largest entry count that fits in the given
// number of sectors.
func MaxEntriesIn(sectors int) int {
	bytes := sectors*geom.SectorSize - headerSize
	if bytes < 0 {
		return 0
	}
	return bytes / entrySize
}

// Encode serializes the table into a sector-aligned image.
func (t *Table) Encode() []byte { return t.EncodeTo(nil) }

// EncodeTo serializes the table into dst's storage when it is large
// enough (allocating otherwise) and returns the sector-aligned image.
// dst may hold bytes from a previous encoding; every byte of the
// returned image is written, including the sector padding. The driver
// reuses one scratch buffer across its block-table writes, which would
// otherwise allocate and zero tens of KB per block movement.
func (t *Table) EncodeTo(dst []byte) []byte {
	entries := t.order
	used := headerSize + len(entries)*entrySize
	n := EncodedSectors(len(entries)) * geom.SectorSize
	var buf []byte
	if cap(dst) >= n {
		buf = dst[:n]
		// Zero the padding tail; the header and entries overwrite the
		// rest below.
		clear(buf[used:])
	} else {
		buf = make([]byte, n)
	}
	be := binary.BigEndian
	be.PutUint32(buf[offHdrMagic:], Magic)
	be.PutUint16(buf[offHdrVersion:], Version)
	be.PutUint16(buf[offHdrBlkSec:], uint16(t.blockSectors))
	be.PutUint32(buf[offHdrCount:], uint32(len(entries)))
	be.PutUint64(buf[offHdrGen:], t.Gen)
	for i, e := range entries {
		o := headerSize + i*entrySize
		be.PutUint64(buf[o:], uint64(e.Orig))
		be.PutUint64(buf[o+8:], uint64(e.New))
		var flags uint16
		if e.Dirty {
			flags |= flagDirty
		}
		be.PutUint16(buf[o+16:], flags)
	}
	be.PutUint32(buf[offHdrCksum:], crc(buf[offHdrGen:used]))
	return buf
}

// Decode parses an encoded table image. The image may be longer than the
// encoded table (e.g. a whole reserved-area prefix read off disk).
func Decode(buf []byte) (*Table, error) {
	if len(buf) < headerSize {
		return nil, fmt.Errorf("blocktable: image of %d bytes is too small", len(buf))
	}
	be := binary.BigEndian
	if be.Uint32(buf[offHdrMagic:]) != Magic {
		return nil, ErrBadMagic
	}
	if v := be.Uint16(buf[offHdrVersion:]); v != Version {
		return nil, fmt.Errorf("blocktable: unsupported version %d", v)
	}
	blkSec := int(be.Uint16(buf[offHdrBlkSec:]))
	if blkSec <= 0 {
		return nil, fmt.Errorf("blocktable: invalid block size %d sectors", blkSec)
	}
	count := int(be.Uint32(buf[offHdrCount:]))
	// Validate the count against the image length in 64-bit arithmetic
	// so a hostile count cannot overflow the size computation.
	if int64(count)*entrySize > int64(len(buf))-headerSize {
		return nil, fmt.Errorf("blocktable: image of %d bytes holds fewer than %d entries", len(buf), count)
	}
	need := headerSize + count*entrySize
	if crc(buf[offHdrGen:need]) != be.Uint32(buf[offHdrCksum:]) {
		return nil, ErrBadChecksum
	}
	t := New(geom.BlockSize(blkSec * geom.SectorSize))
	t.Gen = be.Uint64(buf[offHdrGen:])
	for i := 0; i < count; i++ {
		o := headerSize + i*entrySize
		orig := int64(be.Uint64(buf[o:]))
		new := int64(be.Uint64(buf[o+8:]))
		if err := t.Add(orig, new); err != nil {
			return nil, err
		}
		if be.Uint16(buf[o+16:])&flagDirty != 0 {
			t.MarkDirty(orig)
		}
	}
	return t, nil
}

// RecoverDecode decodes a table image as Decode does, then marks every
// entry dirty. This is the conservative start-up path used after an
// unclean shutdown (Section 4.1.2).
func RecoverDecode(buf []byte) (*Table, error) {
	t, err := Decode(buf)
	if err != nil {
		return nil, err
	}
	t.MarkAllDirty()
	return t, nil
}

// crc is a simple 32-bit checksum (Fletcher-style) over the entry bytes.
// The modulo is deferred across runs of up to 5552 bytes — the largest
// run for which the b accumulator provably cannot overflow uint32 (the
// same bound Adler-32 uses) — which produces the exact residues of the
// per-byte form at a fraction of the cost. The driver checksums the
// whole table image once per block movement, so this is warm code.
func crc(data []byte) uint32 {
	var a, b uint32 = 1, 0
	for len(data) > 0 {
		run := data
		if len(run) > 5552 {
			run = run[:5552]
		}
		for _, c := range run {
			a += uint32(c)
			b += a
		}
		a %= 65521
		b %= 65521
		data = data[len(run):]
	}
	return b<<16 | a
}
