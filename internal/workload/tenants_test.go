package workload

import (
	"fmt"
	"testing"

	"repro/internal/driver"
	"repro/internal/sim"
)

// recordingServer captures every request the tenant workload issues and
// answers it after a fixed delay.
type recordingServer struct {
	eng     *sim.Engine
	delayMS float64
	failN   int // fail the first failN requests
	n       int
	tenants []int
	classes []int
	blocks  []int64
	writes  int
}

func (s *recordingServer) submit(tenant, class int, blk int64, done driver.DoneFunc) {
	s.n++
	s.tenants = append(s.tenants, tenant)
	s.classes = append(s.classes, class)
	s.blocks = append(s.blocks, blk)
	fail := s.n <= s.failN
	s.eng.After(s.delayMS, func() {
		if fail {
			done(nil, fmt.Errorf("recordingServer: injected failure"))
			return
		}
		done(nil, nil)
	})
}

func (s *recordingServer) Read(tenant, class int, blk int64, done driver.DoneFunc) {
	s.submit(tenant, class, blk, done)
}

func (s *recordingServer) Write(tenant, class int, blk int64, done driver.DoneFunc) {
	s.writes++
	s.submit(tenant, class, blk, done)
}

func runTenants(t *testing.T, cfg TenantConfig, blocks int64, durMS float64) (*Tenants, *recordingServer) {
	t.Helper()
	eng := sim.NewEngine()
	srv := &recordingServer{eng: eng, delayMS: 5}
	w, err := NewTenants(eng, srv, blocks, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var finished bool
	w.Run(0, durMS, func(err error) {
		if err != nil {
			t.Errorf("workload finished with %v", err)
		}
		finished = true
	})
	eng.Run()
	if !finished {
		t.Fatal("workload never signalled completion")
	}
	return w, srv
}

func TestTenantsIssueShape(t *testing.T) {
	const blocks = 10_000
	w, srv := runTenants(t, TenantConfig{Tenants: 100, Classes: 3, RatePerSec: 200, Seed: 11}, blocks, 60_000)
	if w.Issued() == 0 || w.Issued() != w.Responded() {
		t.Fatalf("issued %d, responded %d", w.Issued(), w.Responded())
	}
	if w.Failed() != 0 {
		t.Errorf("failed = %d with a healthy server", w.Failed())
	}
	if int64(srv.n) != w.Issued() {
		t.Fatalf("server saw %d requests, workload issued %d", srv.n, w.Issued())
	}
	// ~200/s over a minute: the Poisson stream must land near its rate.
	if srv.n < 9000 || srv.n > 15000 {
		t.Errorf("%d requests for 60 s at 200/s", srv.n)
	}
	if srv.writes == 0 || srv.writes > srv.n/2 {
		t.Errorf("%d writes of %d requests at ReadFrac 0.8", srv.writes, srv.n)
	}
	counts := map[int]int{}
	for i, tenant := range srv.tenants {
		if tenant < 0 || tenant >= 100 {
			t.Fatalf("tenant %d out of range", tenant)
		}
		if srv.classes[i] != tenant%3 {
			t.Fatalf("tenant %d issued class %d, want %d", tenant, srv.classes[i], tenant%3)
		}
		if srv.blocks[i] < 0 || srv.blocks[i] >= blocks {
			t.Fatalf("block %d out of range", srv.blocks[i])
		}
		counts[tenant]++
	}
	// Popularity is Zipf by tenant id: rank 0 must dominate the tail.
	if counts[0] <= counts[99] {
		t.Errorf("tenant 0 issued %d, tenant 99 issued %d; want heavy head", counts[0], counts[99])
	}
}

func TestTenantsNoisyNeighbor(t *testing.T) {
	cfg := TenantConfig{Tenants: 50, RatePerSec: 20, Noisy: true, NoisyTenant: 7, NoisyRatePerSec: 400, Seed: 3}
	w, srv := runTenants(t, cfg, 1000, 30_000)
	var noisy int
	for _, tenant := range srv.tenants {
		if tenant == 7 {
			noisy++
		}
	}
	if frac := float64(noisy) / float64(srv.n); frac < 0.9 {
		t.Errorf("noisy tenant issued %.0f%% of %d requests, want the vast majority", frac*100, srv.n)
	}
	if w.Failed() != 0 {
		t.Errorf("failed = %d", w.Failed())
	}
}

func TestTenantsCountsFailures(t *testing.T) {
	eng := sim.NewEngine()
	srv := &recordingServer{eng: eng, delayMS: 1, failN: 1 << 30}
	w, err := NewTenants(eng, srv, 100, TenantConfig{Tenants: 5, RatePerSec: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(0, 5_000, func(error) {})
	eng.Run()
	if w.Issued() == 0 || w.Failed() != w.Issued() {
		t.Errorf("issued %d, failed %d with an always-failing server", w.Issued(), w.Failed())
	}
}

func TestTenantsValidation(t *testing.T) {
	eng := sim.NewEngine()
	srv := &recordingServer{eng: eng}
	if _, err := NewTenants(eng, srv, 0, TenantConfig{}); err == nil {
		t.Error("zero-block device accepted")
	}
	if _, err := NewTenants(eng, srv, 100, TenantConfig{Tenants: 5, Noisy: true, NoisyTenant: 5}); err == nil {
		t.Error("out-of-range noisy tenant accepted")
	}
	if _, err := NewTenants(eng, srv, 100, TenantConfig{Tenants: 5, Noisy: true, NoisyTenant: -1}); err == nil {
		t.Error("negative noisy tenant accepted")
	}
}

// TestTenantsDeterminism replays the workload twice and requires the
// identical request sequence — tenant, class, block, and count.
func TestTenantsDeterminism(t *testing.T) {
	const seed = 0x7EA7
	t.Logf("seed=%#x", seed)
	run := func() *recordingServer {
		eng := sim.NewEngine()
		srv := &recordingServer{eng: eng, delayMS: 2}
		w, err := NewTenants(eng, srv, 5000, TenantConfig{
			Tenants: 1000, RatePerSec: 100, Noisy: true, NoisyTenant: 2, NoisyRatePerSec: 50, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		w.Run(0, 30_000, func(error) {})
		eng.Run()
		return srv
	}
	a, b := run(), run()
	if a.n != b.n || a.writes != b.writes {
		t.Fatalf("replay sizes differ: %d/%d vs %d/%d", a.n, a.writes, b.n, b.writes)
	}
	for i := range a.tenants {
		if a.tenants[i] != b.tenants[i] || a.classes[i] != b.classes[i] || a.blocks[i] != b.blocks[i] {
			t.Fatalf("request %d differs between identical replays", i)
		}
	}
	if a.n == 0 {
		t.Fatal("no requests issued")
	}
}
