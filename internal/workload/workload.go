// Package workload synthesizes the two file-server workloads of the
// paper's evaluation (Section 5):
//
//   - the *system* file system: executables and libraries, mounted
//     read-only over NFS by 14 client workstations serving ~40 users.
//     Its reference stream is highly skewed (Figure 5: the 100 hottest
//     blocks absorb ~90% of requests) and stable from day to day; its
//     write traffic is pure bookkeeping (inode access-time updates)
//     concentrated on a few metadata blocks.
//
//   - the *users* file system: home directories of 10–20 users, mounted
//     read/write. Its stream is less skewed (Figure 7), includes file
//     creation and growth whose writes go to fresh blocks, and drifts
//     day to day as users change what they work on.
//
// The paper measured real users for weeks; those traces are not
// available, so these generators reproduce the *generating mechanisms*
// the paper names — process launches pulling shared libraries, cache
// write-back bursts, per-user working sets with daily drift — seeded and
// fully deterministic.
package workload

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Clock constants, in simulated milliseconds.
const (
	HourMS = 3_600_000.0
	DayMS  = 24 * HourMS
	// DayStartMS is the start of the measurement window: 7am, as in the
	// paper (reference counts were measured 7am–10pm).
	DayStartMS = 7 * HourMS
	// DayEndMS is the end of the measurement window: 10pm.
	DayEndMS = 22 * HourMS
)

// Workload is a multi-day file-server load bound to a file system.
type Workload interface {
	// Name identifies the workload ("system" or "users").
	Name() string
	// Populate creates the file tree. Run the engine afterwards; it
	// completes asynchronously before day 0.
	Populate(done func(error))
	// RunDay schedules one day's traffic (day 0 is the first). done
	// fires when the last client finishes; run the engine to execute.
	RunDay(day int, done func(error))
}

// fileRef identifies one populated file.
type fileRef struct {
	ino    fs.Ino
	blocks int64
	path   string
}

// clientPool runs n concurrent closed-loop clients over a day's window,
// each executing jobs produced by job() separated by exponential think
// times.
type clientPool struct {
	eng   *sim.Engine
	rnd   *sim.Rand
	n     int
	think float64
	// job runs one client operation and calls next when it completes.
	job func(client int, next func())
	// hist, when non-nil, receives one end-to-end job latency (submit
	// to completion, in simulated ms) per finished job.
	hist *metrics.Histogram
}

// run schedules the pool over [start, end) and calls done when every
// client has stopped.
func (p *clientPool) run(start, end float64, done func(error)) {
	active := p.n
	for c := 0; c < p.n; c++ {
		c := c
		var loop func()
		var begin float64
		// One think-then-loop continuation per client, not one per job:
		// the pool schedules millions of jobs per simulated day, and the
		// continuation closure was the generator's last steady-state
		// allocation.
		finish := func() {
			if p.hist != nil {
				p.hist.Record(p.eng.Now() - begin)
			}
			p.eng.After(p.rnd.Exp(p.think), loop)
		}
		loop = func() {
			if p.eng.Now() >= end {
				active--
				if active == 0 && done != nil {
					done(nil)
				}
				return
			}
			if p.hist != nil {
				begin = p.eng.Now()
			}
			p.job(c, finish)
		}
		p.eng.At(start+p.rnd.Exp(p.think), loop)
	}
}

// readWhole reads an entire file sequentially via its handle and calls
// next (errors are counted by the caller via errf).
func readWhole(f *fs.FS, ref fileRef, errf func(error), next func()) {
	h, err := f.OpenIno(ref.ino)
	if err != nil {
		errf(err)
		next()
		return
	}
	n := h.SizeBlocks()
	if n == 0 {
		next()
		return
	}
	h.ReadAt(0, n, func(_ [][]byte, err error) {
		if err != nil {
			errf(err)
		}
		next()
	})
}

// readPair reads two files with their block reads interleaved, the way
// a tool reading a source file and an include (or make touching two
// targets) does.
func readPair(f *fs.FS, a, b fileRef, errf func(error), next func()) {
	ha, errA := f.OpenIno(a.ino)
	hb, errB := f.OpenIno(b.ino)
	if errA != nil || errB != nil {
		if errA != nil {
			errf(errA)
		}
		if errB != nil {
			errf(errB)
		}
		next()
		return
	}
	na, nb := ha.SizeBlocks(), hb.SizeBlocks()
	var pa, pb int64
	var step func()
	step = func() {
		switch {
		case pa < na && (pa <= pb || pb >= nb):
			p := pa
			pa++
			ha.ReadAt(p, 1, func(_ [][]byte, err error) {
				if err != nil {
					errf(err)
				}
				step()
			})
		case pb < nb:
			p := pb
			pb++
			hb.ReadAt(p, 1, func(_ [][]byte, err error) {
				if err != nil {
					errf(err)
				}
				step()
			})
		default:
			next()
		}
	}
	step()
}

// permute returns the identity permutation of n elements.
func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// drift perturbs a popularity permutation in place: each adjacent pair
// swaps with probability p. Small p models the paper's slowly-changing
// access patterns; large p models the users file system's heavier
// day-to-day variation.
func drift(rnd *sim.Rand, perm []int, p float64) {
	for i := 0; i+1 < len(perm); i++ {
		if rnd.Bool(p) {
			perm[i], perm[i+1] = perm[i+1], perm[i]
		}
	}
}

// jump relocates a few random elements to random positions, modelling a
// user abruptly switching projects.
func jump(rnd *sim.Rand, perm []int, moves int) {
	for m := 0; m < moves && len(perm) > 1; m++ {
		i, j := rnd.Intn(len(perm)), rnd.Intn(len(perm))
		perm[i], perm[j] = perm[j], perm[i]
	}
}

// sizeBlocks draws a lognormal file size in blocks, clamped to
// [1, max].
func sizeBlocks(rnd *sim.Rand, mu, sigma float64, max int64) int64 {
	n := int64(rnd.LogNormal(mu, sigma)) + 1
	if n > max {
		n = max
	}
	return n
}

func nameOf(prefix string, i int) string {
	return fmt.Sprintf("%s%04d", prefix, i)
}
