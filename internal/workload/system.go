package workload

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// SystemConfig parameterizes the system file system workload.
type SystemConfig struct {
	// Files is the number of executables and libraries; zero selects
	// 600.
	Files int
	// Dirs is the number of top-level directories (/bin, /lib,
	// /local/bin, man page directories, ...); zero selects 24, which
	// spreads the tree — and its per-group inode blocks — across the
	// disk as a grown installation would.
	Dirs int
	// Clients is the number of NFS client workstations issuing jobs;
	// zero selects the paper's 14.
	Clients int
	// ThinkMeanMS is a client's mean pause between job launches; zero
	// selects 15 s.
	ThinkMeanMS float64
	// Theta is the Zipf skew of file popularity; zero selects 1.9
	// (calibrated, together with a deliberately small server buffer
	// cache, so the 100 hottest blocks absorb ~85-90% of disk requests
	// and fewer than ~2000 distinct blocks are touched — Figure 5).
	Theta float64
	// Libs is the number of shared-library files drawn on every job
	// launch in addition to the executable; zero selects 3.
	Libs int
	// Parallel is the number of outstanding block reads a job keeps in
	// flight (the NFS client's biod daemons can issue concurrent
	// requests). Zero selects 1: serial demand paging, which matches
	// the paper's low read waiting times.
	Parallel int
	// SizeMu, SizeSigma parameterize the lognormal file size in blocks;
	// zeros select (1.1, 0.8): median ~3 blocks, tail to dozens.
	SizeMu, SizeSigma float64
	// DriftProb is the per-day probability of adjacent popularity-rank
	// swaps; zero selects 0.05 (slowly changing, per the paper).
	DriftProb float64
	// CronPeriodMS is the period of the housekeeping sweep (the hourly
	// cron find/updatedb pass every 1990s UNIX server ran): it lists
	// every directory and reads a sample of cold files, generating the
	// long-seek reads and metadata write bursts of real servers. Zero
	// selects one hour; negative disables the sweep.
	CronPeriodMS float64
	// WindowMS shortens the active window for tests; zero selects the
	// full 7am–10pm window.
	WindowMS float64
	// Seed seeds the workload's private generator.
	Seed uint64
}

func (c SystemConfig) withDefaults() SystemConfig {
	if c.Files <= 0 {
		c.Files = 600
	}
	if c.Dirs <= 0 {
		c.Dirs = 24
	}
	if c.Clients <= 0 {
		c.Clients = 14
	}
	if c.ThinkMeanMS <= 0 {
		c.ThinkMeanMS = 15_000
	}
	if c.Theta == 0 {
		c.Theta = 1.9
	}
	if c.Libs <= 0 {
		c.Libs = 3
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.SizeMu == 0 {
		c.SizeMu = 1.1
	}
	if c.SizeSigma == 0 {
		c.SizeSigma = 0.8
	}
	if c.DriftProb == 0 {
		c.DriftProb = 0.05
	}
	if c.CronPeriodMS == 0 {
		c.CronPeriodMS = HourMS
	}
	if c.WindowMS <= 0 {
		c.WindowMS = DayEndMS - DayStartMS
	}
	if c.Seed == 0 {
		c.Seed = 0x5E51
	}
	return c
}

// System is the read-only executables-and-libraries workload.
type System struct {
	eng  *sim.Engine
	f    *fs.FS
	cfg  SystemConfig
	rnd  *sim.Rand
	zipf *sim.Zipf

	files []fileRef
	dirs  []string
	perm  []int // popularity rank -> file index
	day   int

	errs int64
	hist *metrics.Histogram
}

// NewSystem returns a system workload over the given file system.
func NewSystem(eng *sim.Engine, f *fs.FS, cfg SystemConfig) *System {
	cfg = cfg.withDefaults()
	return &System{
		eng:  eng,
		f:    f,
		cfg:  cfg,
		rnd:  sim.NewRand(cfg.Seed),
		zipf: sim.NewZipf(cfg.Files, cfg.Theta),
	}
}

// Name implements Workload.
func (w *System) Name() string { return "system" }

// Errors returns the number of failed operations (0 in a healthy run).
func (w *System) Errors() int64 { return w.errs }

// BindMetrics registers the end-to-end job latency distribution
// (submit to completion per client operation, in simulated ms) in reg.
// Only days run after binding are observed.
func (w *System) BindMetrics(reg *metrics.Registry) {
	w.hist = reg.Histogram("workload_job_ms", metrics.HistogramOpts{})
}

// Files returns the number of populated files.
func (w *System) Files() int { return len(w.files) }

// Populate builds the directory tree and writes every file, then sets
// the file system read-only and starts the update daemon — the state of
// a freshly-installed NFS server.
func (w *System) Populate(done func(error)) {
	dirs := make([]string, w.cfg.Dirs)
	for i := range dirs {
		dirs[i] = "/" + nameOf("dir", i)
	}
	w.dirs = dirs
	var mkdirs func(i int)
	mkdirs = func(i int) {
		if i == len(dirs) {
			w.populateFiles(dirs, 0, done)
			return
		}
		w.f.Mkdir(dirs[i], func(_ fs.Ino, err error) {
			if err != nil {
				done(fmt.Errorf("workload system: %w", err))
				return
			}
			mkdirs(i + 1)
		})
	}
	mkdirs(0)
}

func (w *System) populateFiles(dirs []string, i int, done func(error)) {
	if i == w.cfg.Files {
		w.perm = identity(len(w.files))
		// Popularity is unrelated to creation order.
		w.rnd.Shuffle(len(w.perm), func(a, b int) { w.perm[a], w.perm[b] = w.perm[b], w.perm[a] })
		w.f.Sync(func(err error) {
			if err != nil {
				done(err)
				return
			}
			w.f.SetReadOnly(true)
			w.f.StartSyncDaemon()
			done(nil)
		})
		return
	}
	path := dirs[i%len(dirs)] + "/" + nameOf("f", i)
	blocks := sizeBlocks(w.rnd, w.cfg.SizeMu, w.cfg.SizeSigma, w.f.MaxFileBlocks())
	w.f.Create(path, func(ino fs.Ino, err error) {
		if err != nil {
			done(fmt.Errorf("workload system: creating %s: %w", path, err))
			return
		}
		h, _ := w.f.OpenIno(ino)
		h.WriteAt(0, blocks, func(err error) {
			if err != nil {
				done(fmt.Errorf("workload system: writing %s: %w", path, err))
				return
			}
			w.files = append(w.files, fileRef{ino: ino, blocks: blocks})
			w.populateFiles(dirs, i+1, done)
		})
	})
}

// pick draws a file by popularity. topFrac > 0 restricts the draw to the
// most popular fraction (shared libraries live at the top of the
// popularity order).
func (w *System) pick(topFrac float64) fileRef {
	rank := w.zipf.Rank(w.rnd)
	if topFrac > 0 {
		limit := int(float64(len(w.perm)) * topFrac)
		if limit < 1 {
			limit = 1
		}
		rank %= limit
	}
	return w.files[w.perm[rank]]
}

// RunDay implements Workload: each client repeatedly "launches a job" —
// reading one executable and a few shared libraries in quick succession,
// the interleaved multi-file read pattern that scatters hot blocks
// across the request stream (Section 1.1).
func (w *System) RunDay(day int, done func(error)) {
	for w.day < day {
		drift(w.rnd, w.perm, w.cfg.DriftProb)
		w.day++
	}
	start := float64(day)*DayMS + DayStartMS
	end := start + w.cfg.WindowMS
	if w.cfg.CronPeriodMS > 0 {
		for t := start + w.cfg.CronPeriodMS/2; t < end; t += w.cfg.CronPeriodMS {
			t := t
			w.eng.At(t, func() { w.cronSweep() })
		}
	}
	pool := &clientPool{
		eng:   w.eng,
		rnd:   w.rnd.Split(),
		n:     w.cfg.Clients,
		think: w.cfg.ThinkMeanMS,
		hist:  w.hist,
		job: func(_ int, next func()) {
			// One job: the executable plus Libs shared libraries. The
			// process demand-pages them together, so the block reads of
			// the different files interleave — which is exactly how hot
			// blocks of different files come to alternate in the disk's
			// request stream (Section 1.1 of the paper).
			exec := w.pick(0)
			refs := []fileRef{exec}
			for l := 0; l < w.cfg.Libs; l++ {
				refs = append(refs, w.pick(0.1))
			}
			// The exec itself is found by a path walk (dirtying
			// directory access times); the libraries are reached via
			// the client's cached handles.
			w.f.Open(exec.path, func(_ *fs.Handle, err error) {
				if err != nil {
					w.errs++
				}
				w.runJob(refs, next)
			})
		},
	}
	pool.run(start, end, done)
}

// runJob demand-pages a set of files concurrently: single-block reads
// round-robin across the files, keeping up to cfg.Parallel requests in
// flight (the NFS client's biod daemons), until every file is fully
// read.
func (w *System) runJob(refs []fileRef, next func()) {
	type cursor struct {
		h    *fs.Handle
		pos  int64
		size int64
	}
	var cur []*cursor
	for _, ref := range refs {
		h, err := w.f.OpenIno(ref.ino)
		if err != nil {
			w.errs++
			continue
		}
		if n := h.SizeBlocks(); n > 0 {
			cur = append(cur, &cursor{h: h, size: n})
		}
	}
	if len(cur) == 0 {
		next()
		return
	}
	i := 0
	inflight := 0
	finished := false
	var fill func()
	// One completion callback for every read of the job: it captures no
	// per-read state, so allocating it per ReadAt (tens per job) would
	// only make garbage.
	onRead := func(_ [][]byte, err error) {
		if err != nil {
			w.errs++
		}
		inflight--
		fill()
	}
	fill = func() {
		for inflight < w.cfg.Parallel {
			// Find the next file with blocks remaining, round-robin.
			var c *cursor
			for n := 0; n < len(cur); n++ {
				cand := cur[(i+n)%len(cur)]
				if cand.pos < cand.size {
					c = cand
					i = (i + n + 1) % len(cur)
					break
				}
			}
			if c == nil {
				if inflight == 0 && !finished {
					finished = true
					next()
				}
				return
			}
			pos := c.pos
			c.pos++
			inflight++
			c.h.ReadAt(pos, 1, onRead)
		}
	}
	fill()
}

// cronSweep is one housekeeping pass: it lists every directory and reads
// a couple of randomly-chosen (usually cold) files per directory — the
// hourly cron/find activity of a period UNIX server. Its directory
// access-time updates dirty metadata across the whole disk, so the next
// update-policy flush is a long write burst.
func (w *System) cronSweep() {
	var dirIdx int
	var sweepDir func()
	sweepDir = func() {
		if dirIdx == len(w.dirs) {
			return
		}
		dir := w.dirs[dirIdx]
		dirIdx++
		w.f.ReadDir(dir, func(names []string, err error) {
			if err != nil {
				w.errs++
				sweepDir()
				return
			}
			// Visit the directory by path (dirtying its atime), then
			// read two random files in full.
			w.f.Lookup(dir, func(_ fs.Ino, err error) {
				if err != nil {
					w.errs++
				}
				ref1 := w.files[w.rnd.Intn(len(w.files))]
				ref2 := w.files[w.rnd.Intn(len(w.files))]
				readWhole(w.f, ref1, func(error) { w.errs++ }, func() {
					readWhole(w.f, ref2, func(error) { w.errs++ }, sweepDir)
				})
			})
		})
	}
	sweepDir()
}
