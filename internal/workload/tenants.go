package workload

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/sim"
)

// BlockServer is the front end the tenant workload drives: block-level
// reads and writes attributed to a (tenant, class) pair. The server
// package's Server satisfies it; tests can substitute a stub.
type BlockServer interface {
	Read(tenant, class int, blk int64, done driver.DoneFunc)
	Write(tenant, class int, blk int64, done driver.DoneFunc)
}

// TenantConfig parameterizes the multi-tenant open-loop workload.
//
// Unlike the paper's closed-loop client pools (a fixed population that
// waits for each response), tenants arrive open-loop: requests are a
// Poisson process at an aggregate rate, each attributed to a tenant
// drawn from a heavy-tailed (Zipf) popularity order — the large-scale
// shape TraceTracker observes, where the host count is huge but a small
// fraction of tenants generates most of the traffic. Open-loop arrivals
// do not slow down when the server queues, which is what makes
// admission control worth studying.
type TenantConfig struct {
	// Tenants is the tenant population. Popularity rank equals tenant
	// id (tenant 0 is the hottest).
	Tenants int
	// Classes is the number of tenant classes; a tenant's class is its
	// id modulo Classes, decoupling class from popularity. Zero selects
	// 3 (the server's default ladder).
	Classes int
	// RatePerSec is the aggregate arrival rate over all tenants, in
	// requests per simulated second; zero selects 20 — about 60% of a
	// simulated disk's random-I/O capacity, so the healthy baseline
	// stays clearly below saturation.
	RatePerSec float64
	// Theta is the Zipf skew of tenant popularity; zero selects 1.1
	// (heavy-tailed but not degenerate: the top tenant takes a few
	// percent of the traffic).
	Theta float64
	// ReadFrac is the fraction of requests that are reads; zero
	// selects 0.8.
	ReadFrac float64
	// FootprintBlocks is each tenant's working-set span; requests pick
	// a block within the tenant's own region, itself Zipf-skewed. Zero
	// selects 128.
	FootprintBlocks int64
	// Noisy adds a flooding stream from tenant NoisyTenant at
	// NoisyRatePerSec, in addition to the aggregate stream — the
	// noisy-neighbor scenario. NoisyRatePerSec zero selects 200.
	Noisy           bool
	NoisyTenant     int
	NoisyRatePerSec float64
	// Seed seeds the workload's private generator.
	Seed uint64
}

func (c TenantConfig) withDefaults() TenantConfig {
	if c.Tenants <= 0 {
		c.Tenants = 1
	}
	if c.Classes <= 0 {
		c.Classes = 3
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 20
	}
	if c.Theta == 0 {
		c.Theta = 1.1
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.8
	}
	if c.FootprintBlocks <= 0 {
		c.FootprintBlocks = 128
	}
	if c.NoisyRatePerSec <= 0 {
		c.NoisyRatePerSec = 200
	}
	if c.Seed == 0 {
		c.Seed = 0x7E4A
	}
	return c
}

// Tenants drives a BlockServer with the open-loop multi-tenant stream.
type Tenants struct {
	eng    *sim.Engine
	srv    BlockServer
	blocks int64
	cfg    TenantConfig
	rnd    *sim.Rand
	nrnd   *sim.Rand // noisy stream's private generator
	zipf   *sim.Zipf // tenant popularity
	fzipf  *sim.Zipf // block popularity within a tenant's footprint

	end         float64
	streams     int // arrival streams still scheduling
	outstanding int
	finished    func(error)

	issued    int64
	responded int64
	failed    int64
	onDone    driver.DoneFunc // one shared completion for every request
}

// NewTenants builds the workload over a server whose backing device
// holds blocks logical blocks.
func NewTenants(eng *sim.Engine, srv BlockServer, blocks int64, cfg TenantConfig) (*Tenants, error) {
	cfg = cfg.withDefaults()
	if blocks <= 0 {
		return nil, fmt.Errorf("workload tenants: device has no blocks")
	}
	if cfg.Noisy && (cfg.NoisyTenant < 0 || cfg.NoisyTenant >= cfg.Tenants) {
		return nil, fmt.Errorf("workload tenants: noisy tenant %d out of range [0, %d)", cfg.NoisyTenant, cfg.Tenants)
	}
	rnd := sim.NewRand(cfg.Seed)
	w := &Tenants{
		eng:    eng,
		srv:    srv,
		blocks: blocks,
		cfg:    cfg,
		rnd:    rnd,
		nrnd:   rnd.Split(),
		zipf:   sim.NewZipf(cfg.Tenants, cfg.Theta),
		fzipf:  sim.NewZipf(int(cfg.FootprintBlocks), 1.2),
	}
	w.onDone = func(_ []byte, err error) {
		w.responded++
		if err != nil {
			w.failed++
		}
		w.outstanding--
		w.checkDone()
	}
	return w, nil
}

// Name identifies the workload.
func (w *Tenants) Name() string { return "tenants" }

// Issued, Responded and Failed count requests put on the wire,
// responses received (every request gets exactly one), and responses
// carrying an error of any kind — rejections, deadline failures, and
// backend errors alike.
func (w *Tenants) Issued() int64    { return w.issued }
func (w *Tenants) Responded() int64 { return w.responded }
func (w *Tenants) Failed() int64    { return w.failed }

// Run schedules the arrival streams over [start, end) and calls done
// once the last stream has stopped and every outstanding response has
// arrived. Drive the engine afterwards.
func (w *Tenants) Run(start, end float64, done func(error)) {
	w.end = end
	w.finished = done
	w.streams = 1
	w.startStream(w.rnd, start, w.cfg.RatePerSec, -1)
	if w.cfg.Noisy {
		w.streams++
		w.startStream(w.nrnd, start, w.cfg.NoisyRatePerSec, w.cfg.NoisyTenant)
	}
}

// startStream schedules one self-rescheduling Poisson arrival stream.
// tenant >= 0 pins every arrival to that tenant (the noisy neighbor);
// otherwise each arrival draws a tenant by popularity.
func (w *Tenants) startStream(rnd *sim.Rand, start, ratePerSec float64, tenant int) {
	interMS := 1000 / ratePerSec
	var tick func()
	tick = func() {
		if w.eng.Now() >= w.end {
			w.streams--
			w.checkDone()
			return
		}
		t := tenant
		if t < 0 {
			t = w.zipf.Rank(rnd)
		}
		w.issue(rnd, t)
		w.eng.After(rnd.Exp(interMS), tick)
	}
	w.eng.At(start+rnd.Exp(interMS), tick)
}

// issue submits one request for tenant t.
func (w *Tenants) issue(rnd *sim.Rand, t int) {
	class := t % w.cfg.Classes
	// The tenant's region starts at a hash-scattered base so tenant
	// footprints spread over the whole device rather than packing the
	// low addresses.
	base := int64(uint64(t) * 0x9E3779B97F4A7C15 % uint64(w.blocks))
	blk := (base + int64(w.fzipf.Rank(rnd))) % w.blocks
	w.issued++
	w.outstanding++
	if rnd.Bool(w.cfg.ReadFrac) {
		w.srv.Read(t, class, blk, w.onDone)
	} else {
		w.srv.Write(t, class, blk, w.onDone)
	}
}

// checkDone fires the completion callback once all streams have
// stopped and no response is outstanding.
func (w *Tenants) checkDone() {
	if w.streams == 0 && w.outstanding == 0 && w.finished != nil {
		done := w.finished
		w.finished = nil
		done(nil)
	}
}
