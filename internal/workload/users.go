package workload

import (
	"fmt"

	"repro/internal/fs"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// UsersConfig parameterizes the users (home directories) workload.
type UsersConfig struct {
	// Users is the number of home directories; zero selects 10 (the
	// paper's Toshiba configuration; 20 on the Fujitsu).
	Users int
	// FilesPerUser is the initial file count per home directory; zero
	// selects 40.
	FilesPerUser int
	// SubdirsPerUser is the number of project subdirectories in each
	// home directory; zero selects 4. FFS spreads directories across
	// cylinder groups, so a user's files span several disk regions, as
	// grown home directories do.
	SubdirsPerUser int
	// ThinkMeanMS is a user's mean pause between operations; zero
	// selects 90 s (the users disk is much more lightly loaded than
	// the system disk — Table 5's waiting times are small).
	ThinkMeanMS float64
	// Theta is the Zipf skew of a user's file popularity; zero selects
	// 1.25 — a user works mostly in a current project's files, but the
	// aggregate stream is still much flatter than the system file
	// system's (Figure 7).
	Theta float64
	// ActiveProb is the probability a user is active on a given day;
	// zero selects 0.7.
	ActiveProb float64
	// DriftProb and Jumps control day-to-day drift: adjacent-rank swap
	// probability and random rank relocations per user per day. Zeros
	// select 0.10 and 2 — heavier drift than the system workload (whose
	// predictions the paper found more reliable, Section 5.3), but slow
	// enough that one day still predicts the next usefully.
	DriftProb float64
	Jumps     int
	// SizeMu, SizeSigma parameterize the lognormal file size; zeros
	// select (0.9, 0.7).
	SizeMu, SizeSigma float64
	// WindowMS shortens the active window for tests; zero selects the
	// full 7am–10pm window.
	WindowMS float64
	// Seed seeds the workload's private generator.
	Seed uint64
}

func (c UsersConfig) withDefaults() UsersConfig {
	if c.Users <= 0 {
		c.Users = 10
	}
	if c.FilesPerUser <= 0 {
		c.FilesPerUser = 40
	}
	if c.SubdirsPerUser <= 0 {
		c.SubdirsPerUser = 4
	}
	if c.ThinkMeanMS <= 0 {
		c.ThinkMeanMS = 90_000
	}
	if c.Theta == 0 {
		c.Theta = 1.25
	}
	if c.ActiveProb == 0 {
		c.ActiveProb = 0.7
	}
	if c.DriftProb == 0 {
		c.DriftProb = 0.10
	}
	if c.Jumps == 0 {
		c.Jumps = 2
	}
	if c.SizeMu == 0 {
		c.SizeMu = 0.9
	}
	if c.SizeSigma == 0 {
		c.SizeSigma = 0.7
	}
	if c.WindowMS <= 0 {
		c.WindowMS = DayEndMS - DayStartMS
	}
	if c.Seed == 0 {
		c.Seed = 0x0DD5
	}
	return c
}

// user is one home directory's state.
type user struct {
	dir     string
	subdirs []string
	files   []fileRef
	perm    []int
	created int // counter for unique names
	active  bool
}

// Users is the read/write home-directory workload.
type Users struct {
	eng  *sim.Engine
	f    *fs.FS
	cfg  UsersConfig
	rnd  *sim.Rand
	zipf *sim.Zipf

	users []*user
	day   int
	errs  int64
	hist  *metrics.Histogram
}

// NewUsers returns a users workload over the given file system.
func NewUsers(eng *sim.Engine, f *fs.FS, cfg UsersConfig) *Users {
	cfg = cfg.withDefaults()
	return &Users{
		eng:  eng,
		f:    f,
		cfg:  cfg,
		rnd:  sim.NewRand(cfg.Seed),
		zipf: sim.NewZipf(cfg.FilesPerUser, cfg.Theta),
	}
}

// Name implements Workload.
func (w *Users) Name() string { return "users" }

// Errors returns the number of failed operations.
func (w *Users) Errors() int64 { return w.errs }

// BindMetrics registers the end-to-end job latency distribution
// (submit to completion per user session, in simulated ms) in reg.
// Only days run after binding are observed.
func (w *Users) BindMetrics(reg *metrics.Registry) {
	w.hist = reg.Histogram("workload_job_ms", metrics.HistogramOpts{})
}

// Populate creates each user's home directory and initial files, then
// starts the update daemon. The mount stays read/write.
func (w *Users) Populate(done func(error)) {
	var mkUser func(u int)
	mkUser = func(u int) {
		if u == w.cfg.Users {
			w.f.Sync(func(err error) {
				if err != nil {
					done(err)
					return
				}
				w.f.StartSyncDaemon()
				done(nil)
			})
			return
		}
		usr := &user{dir: "/" + nameOf("u", u)}
		w.users = append(w.users, usr)
		w.f.Mkdir(usr.dir, func(_ fs.Ino, err error) {
			if err != nil {
				done(fmt.Errorf("workload users: %w", err))
				return
			}
			w.populateSubdirs(usr, 0, done, func() {
				w.populateUserFiles(usr, 0, func(err error) {
					if err != nil {
						done(err)
						return
					}
					usr.perm = identity(len(usr.files))
					w.rnd.Shuffle(len(usr.perm), func(a, b int) {
						usr.perm[a], usr.perm[b] = usr.perm[b], usr.perm[a]
					})
					mkUser(u + 1)
				})
			})
		})
	}
	mkUser(0)
}

// populateSubdirs creates a user's project subdirectories.
func (w *Users) populateSubdirs(usr *user, i int, done func(error), next func()) {
	if i == w.cfg.SubdirsPerUser {
		next()
		return
	}
	path := usr.dir + "/" + nameOf("p", i)
	w.f.Mkdir(path, func(_ fs.Ino, err error) {
		if err != nil {
			done(fmt.Errorf("workload users: %w", err))
			return
		}
		usr.subdirs = append(usr.subdirs, path)
		w.populateSubdirs(usr, i+1, done, next)
	})
}

func (w *Users) populateUserFiles(usr *user, i int, done func(error)) {
	if i == w.cfg.FilesPerUser {
		done(nil)
		return
	}
	path := usr.subdirs[i%len(usr.subdirs)] + "/" + nameOf("f", i)
	blocks := sizeBlocks(w.rnd, w.cfg.SizeMu, w.cfg.SizeSigma, w.f.MaxFileBlocks())
	w.f.Create(path, func(ino fs.Ino, err error) {
		if err != nil {
			done(fmt.Errorf("workload users: creating %s: %w", path, err))
			return
		}
		h, _ := w.f.OpenIno(ino)
		h.WriteAt(0, blocks, func(err error) {
			if err != nil {
				done(err)
				return
			}
			usr.files = append(usr.files, fileRef{ino: ino, blocks: blocks, path: path})
			w.populateUserFiles(usr, i+1, done)
		})
	})
}

// pickFile draws one of a user's files by that user's popularity order.
func (w *Users) pickFile(usr *user) fileRef {
	rank := w.zipf.Rank(w.rnd) % len(usr.perm)
	return usr.files[usr.perm[rank]]
}

// RunDay implements Workload. Each active user runs a closed loop of
// sessions: mostly reads, some edits (read + overwrite + growth), file
// creations, and occasional deletions — the mix that gives the users
// file system its flatter, faster-drifting reference stream.
func (w *Users) RunDay(day int, done func(error)) {
	for w.day < day {
		for _, usr := range w.users {
			drift(w.rnd, usr.perm, w.cfg.DriftProb)
			jump(w.rnd, usr.perm, w.cfg.Jumps)
		}
		w.day++
	}
	var actives []*user
	for _, usr := range w.users {
		usr.active = w.rnd.Bool(w.cfg.ActiveProb)
		if usr.active {
			actives = append(actives, usr)
		}
	}
	if len(actives) == 0 {
		actives = w.users[:1]
	}
	start := float64(day)*DayMS + DayStartMS
	end := start + w.cfg.WindowMS
	pool := &clientPool{
		eng:   w.eng,
		rnd:   w.rnd.Split(),
		n:     len(actives),
		think: w.cfg.ThinkMeanMS,
		hist:  w.hist,
		job: func(c int, next func()) {
			w.session(actives[c], next)
		},
	}
	pool.run(start, end, done)
}

// session performs one user operation.
func (w *Users) session(usr *user, next func()) {
	errf := func(err error) {
		if err != nil {
			w.errs++
		}
	}
	switch p := w.rnd.Float64(); {
	case p < 0.50: // read session: two files, interleaved (grep, make)
		a := w.pickFile(usr)
		if w.rnd.Bool(0.2) {
			readWhole(w.f, a, errf, next)
			return
		}
		b := w.pickFile(usr)
		readPair(w.f, a, b, errf, next)
	case p < 0.80: // edit: read (with an include), overwrite, maybe grow
		ref := w.pickFile(usr)
		h, err := w.f.OpenIno(ref.ino)
		if err != nil {
			errf(err)
			next()
			return
		}
		n := h.SizeBlocks()
		if n == 0 {
			next()
			return
		}
		other := w.pickFile(usr)
		readPair(w.f, ref, other, errf, func() {
			span := int64(w.rnd.Intn(int(n))) + 1
			at := int64(0)
			if span < n {
				at = w.rnd.Int63n(n - span + 1)
			}
			h.WriteAt(at, span, func(err error) {
				errf(err)
				if w.rnd.Bool(0.3) && n < w.f.MaxFileBlocks()-2 {
					h.Append(1+int64(w.rnd.Intn(2)), func(err error) {
						errf(err)
						next()
					})
					return
				}
				next()
			})
		})
	case p < 0.95: // create a new file and write it
		usr.created++
		path := usr.subdirs[w.rnd.Intn(len(usr.subdirs))] + "/" + nameOf("n", usr.created)
		blocks := sizeBlocks(w.rnd, w.cfg.SizeMu, w.cfg.SizeSigma, w.f.MaxFileBlocks())
		w.f.Create(path, func(ino fs.Ino, err error) {
			if err != nil {
				errf(err)
				next()
				return
			}
			h, _ := w.f.OpenIno(ino)
			h.WriteAt(0, blocks, func(err error) {
				errf(err)
				usr.files = append(usr.files, fileRef{ino: ino, blocks: blocks, path: path})
				usr.perm = append(usr.perm, len(usr.files)-1)
				next()
			})
		})
	default: // delete the least popular file (keep a floor)
		if len(usr.files) <= w.cfg.FilesPerUser/2 {
			next()
			return
		}
		victimRank := len(usr.perm) - 1
		victimIdx := usr.perm[victimRank]
		ref := usr.files[victimIdx]
		w.f.Remove(ref.path, func(err error) {
			errf(err)
			// Drop the victim from the index structures.
			usr.perm = append(usr.perm[:victimRank], usr.perm[victimRank+1:]...)
			last := len(usr.files) - 1
			if victimIdx != last {
				usr.files[victimIdx] = usr.files[last]
				for r, idx := range usr.perm {
					if idx == last {
						usr.perm[r] = victimIdx
					}
				}
			}
			usr.files = usr.files[:last]
			next()
		})
	}
}
