package workload

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/fs"
	"repro/internal/hotlist"
	"repro/internal/rig"
	"repro/internal/trace"
)

// buildSystem assembles a rig + fs + system workload with a short test
// window and the calibrated small server cache.
func buildSystem(t *testing.T, seed uint64) (*rig.Rig, *fs.FS, *System) {
	t.Helper()
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Newfs(r.Eng, r.Driver, 0, fs.Params{
		Cache: cache.Config{CapacityBlocks: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	w := NewSystem(r.Eng, f, SystemConfig{
		Files:    300,
		WindowMS: 1 * HourMS,
		Seed:     seed,
	})
	return r, f, w
}

func populate(t *testing.T, r *rig.Rig, w Workload) {
	t.Helper()
	var perr error
	done := false
	w.Populate(func(err error) { perr, done = err, true })
	r.Eng.RunUntil(2 * HourMS)
	if !done {
		t.Fatal("populate did not complete")
	}
	if perr != nil {
		t.Fatalf("populate: %v", perr)
	}
}

func runDay(t *testing.T, r *rig.Rig, w Workload, day int, windowMS float64) {
	t.Helper()
	var derr error
	done := false
	w.RunDay(day, func(err error) { derr, done = err, true })
	r.Eng.RunUntil(float64(day)*DayMS + DayStartMS + windowMS + 30*60*1000)
	if !done {
		t.Fatal("day did not complete")
	}
	if derr != nil {
		t.Fatalf("day: %v", derr)
	}
}

func TestSystemPopulate(t *testing.T) {
	r, f, w := buildSystem(t, 1)
	populate(t, r, w)
	if w.Files() != 300 {
		t.Errorf("populated %d files", w.Files())
	}
	if !f.ReadOnly() {
		t.Error("system fs not mounted read-only")
	}
	if f.FreeBlocks() >= f.TotalBlocks() {
		t.Error("populate allocated nothing")
	}
}

func TestSystemDayGeneratesSkewedTraffic(t *testing.T) {
	r, _, w := buildSystem(t, 2)
	populate(t, r, w)
	cap := trace.NewCapture(r.Eng, r.Driver)
	runDay(t, r, w, 0, 1*HourMS)
	cap.Close()
	if w.Errors() != 0 {
		t.Errorf("workload errors: %d", w.Errors())
	}
	recs := cap.Records()
	if len(recs) < 5000 {
		t.Fatalf("only %d disk requests in an hour", len(recs))
	}
	cnt := hotlist.NewExact()
	var writes int
	for _, rec := range recs {
		cnt.Observe(rec.Block)
		if rec.Write {
			writes++
		}
	}
	// Read-only mount still writes (inode bookkeeping, Section 3.1).
	if writes == 0 {
		t.Error("no bookkeeping writes on read-only fs")
	}
	if frac := float64(writes) / float64(len(recs)); frac > 0.5 {
		t.Errorf("write fraction %.2f too high for a read-only fs", frac)
	}
	// Figure 5 shape: heavy skew, bounded footprint.
	dist := cnt.Distribution()
	var top100 int64
	for i := 0; i < 100 && i < len(dist); i++ {
		top100 += dist[i].Count
	}
	if frac := float64(top100) / float64(cnt.Total()); frac < 0.70 {
		t.Errorf("top-100 blocks absorb %.2f of requests, want >= 0.70", frac)
	}
	if len(dist) > 3000 {
		t.Errorf("%d distinct blocks touched, want < 3000", len(dist))
	}
}

func TestSystemDeterminism(t *testing.T) {
	capture := func() []trace.Record {
		r, _, w := buildSystem(t, 7)
		populate(t, r, w)
		cap := trace.NewCapture(r.Eng, r.Driver)
		runDay(t, r, w, 0, 1*HourMS)
		cap.Close()
		return cap.Records()
	}
	a, b := capture(), capture()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSystemDriftIsSlow(t *testing.T) {
	r, _, w := buildSystem(t, 3)
	populate(t, r, w)
	before := append([]int(nil), w.perm...)
	runDay(t, r, w, 0, 1*HourMS)
	runDay(t, r, w, 1, 1*HourMS)
	same := 0
	for i := range before {
		if w.perm[i] == before[i] {
			same++
		}
	}
	if frac := float64(same) / float64(len(before)); frac < 0.8 {
		t.Errorf("only %.2f of popularity ranks stable across a day", frac)
	}
}

func buildUsers(t *testing.T, seed uint64) (*rig.Rig, *fs.FS, *Users) {
	t.Helper()
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Newfs(r.Eng, r.Driver, 0, fs.Params{
		Cache: cache.Config{CapacityBlocks: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	w := NewUsers(r.Eng, f, UsersConfig{
		Users:        10,
		FilesPerUser: 30,
		WindowMS:     1 * HourMS,
		Seed:         seed,
	})
	return r, f, w
}

func TestUsersPopulate(t *testing.T) {
	r, f, w := buildUsers(t, 1)
	populate(t, r, w)
	if len(w.users) != 10 {
		t.Errorf("%d users", len(w.users))
	}
	if f.ReadOnly() {
		t.Error("users fs must be read/write")
	}
	var names []string
	f.ReadDir("/", func(ns []string, err error) { names = ns })
	r.Eng.RunUntil(r.Eng.Now() + HourMS)
	if len(names) != 10 {
		t.Errorf("%d home directories", len(names))
	}
}

func TestUsersDayMixedTraffic(t *testing.T) {
	r, _, w := buildUsers(t, 2)
	populate(t, r, w)
	cap := trace.NewCapture(r.Eng, r.Driver)
	runDay(t, r, w, 0, 1*HourMS)
	cap.Close()
	if w.Errors() != 0 {
		t.Errorf("workload errors: %d", w.Errors())
	}
	var reads, writes int
	for _, rec := range cap.Records() {
		if rec.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("reads=%d writes=%d", reads, writes)
	}
	// Users workload writes real data, not just bookkeeping.
	if frac := float64(writes) / float64(reads+writes); frac < 0.1 {
		t.Errorf("write fraction %.2f too low for home directories", frac)
	}
}

func TestUsersFlatterThanSystem(t *testing.T) {
	// Figure 5 vs Figure 7: the users stream is much less skewed.
	top100 := func(recs []trace.Record) float64 {
		cnt := hotlist.NewExact()
		for _, rec := range recs {
			cnt.Observe(rec.Block)
		}
		dist := cnt.Distribution()
		var top int64
		for i := 0; i < 100 && i < len(dist); i++ {
			top += dist[i].Count
		}
		return float64(top) / float64(cnt.Total())
	}
	rs, _, ws := buildSystem(t, 5)
	populate(t, rs, ws)
	capS := trace.NewCapture(rs.Eng, rs.Driver)
	runDay(t, rs, ws, 0, 1*HourMS)
	capS.Close()

	ru, _, wu := buildUsers(t, 5)
	populate(t, ru, wu)
	capU := trace.NewCapture(ru.Eng, ru.Driver)
	runDay(t, ru, wu, 0, 1*HourMS)
	capU.Close()

	s, u := top100(capS.Records()), top100(capU.Records())
	if u >= s {
		t.Errorf("users top-100 share %.2f not flatter than system %.2f", u, s)
	}
}

func TestUsersDriftAndCreationGrowFilePopulation(t *testing.T) {
	r, _, w := buildUsers(t, 3)
	populate(t, r, w)
	before := 0
	for _, u := range w.users {
		before += len(u.files)
	}
	for d := 0; d < 3; d++ {
		runDay(t, r, w, d, 1*HourMS)
	}
	after := 0
	for _, u := range w.users {
		after += len(u.files)
	}
	if after == before {
		t.Error("no file creation over three days")
	}
	if w.Errors() != 0 {
		t.Errorf("errors: %d", w.Errors())
	}
}

func TestUsersInactiveDays(t *testing.T) {
	r, _, w := buildUsers(t, 11)
	populate(t, r, w)
	runDay(t, r, w, 0, 1*HourMS)
	active := 0
	for _, u := range w.users {
		if u.active {
			active++
		}
	}
	if active == 0 || active == len(w.users) {
		t.Errorf("active users = %d of %d; expected a strict subset on most seeds", active, len(w.users))
	}
}
