package fs

import (
	"testing"
	"testing/quick"
)

func TestDescriptorRoundTrip(t *testing.T) {
	_, f := newFS(t)
	g := f.groups[3]
	// Perturb the bitmaps.
	g.inodeUsed[5] = true
	g.dataUsed[0] = true
	g.dataUsed[17] = true
	g.freeIno--
	g.freeData -= 2

	buf := f.encodeDescriptor(3)
	// Decode into a sibling FS skeleton.
	r2, f2 := newFS(t)
	_ = r2
	if err := f2.decodeDescriptor(3, buf); err != nil {
		t.Fatal(err)
	}
	g2 := f2.groups[3]
	for i := range g.inodeUsed {
		if g.inodeUsed[i] != g2.inodeUsed[i] {
			t.Fatalf("inode bitmap bit %d lost", i)
		}
	}
	for i := range g.dataUsed {
		if g.dataUsed[i] != g2.dataUsed[i] {
			t.Fatalf("data bitmap bit %d lost", i)
		}
	}
	if g2.freeIno != g.freeIno || g2.freeData != g.freeData {
		t.Errorf("free counts: (%d,%d) vs (%d,%d)", g2.freeIno, g2.freeData, g.freeIno, g.freeData)
	}
}

func TestDescriptorRejectsWrongGroup(t *testing.T) {
	_, f := newFS(t)
	buf := f.encodeDescriptor(3)
	if err := f.decodeDescriptor(4, buf); err == nil {
		t.Error("descriptor accepted for the wrong group")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xFF
	if err := f.decodeDescriptor(3, bad); err == nil {
		t.Error("corrupt magic accepted")
	}
}

func TestDecodeSuper(t *testing.T) {
	_, f := newFS(t)
	buf := f.encodeDescriptor(0)
	blockBytes, prm, total, err := decodeSuper(buf)
	if err != nil {
		t.Fatal(err)
	}
	if blockBytes != f.blockBytes {
		t.Errorf("blockBytes = %d", blockBytes)
	}
	if prm.CylsPerGroup != f.prm.CylsPerGroup || prm.Stride != f.prm.Stride ||
		prm.InodeBlocksPerGroup != f.prm.InodeBlocksPerGroup {
		t.Errorf("params = %+v", prm)
	}
	if total != f.totalBlocks {
		t.Errorf("totalBlocks = %d, want %d", total, f.totalBlocks)
	}
	if _, _, _, err := decodeSuper(make([]byte, 64)); err == nil {
		t.Error("zero buffer accepted as superblock")
	}
}

func TestInodeSlotRoundTrip(t *testing.T) {
	r, f := newFS(t)
	ino := mustCreate(t, r, f, "/roundtrip")
	h := mustOpen(t, r, f, "/roundtrip")
	mustWrite(t, r, h, 0, NDirect+3)

	nd := f.inodes[ino]
	blk := f.inodeBlockOf(ino)
	buf := f.encodeInodeBlock(blk)
	slot := int(ino) % f.inosPerBlk
	// The slot index within the block depends on the inode's position in
	// its group's table.
	perGroup := len(f.groups[0].inodeUsed)
	idx := int(ino) % perGroup
	slot = idx % f.inosPerBlk

	got, err := decodeInodeSlot(buf, slot, ino)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("used slot decoded as empty")
	}
	if got.dir != nd.dir || got.size != nd.size || got.indirect != nd.indirect {
		t.Errorf("decoded inode = %+v, want %+v", got, nd)
	}
	for i := range nd.direct {
		if got.direct[i] != nd.direct[i] {
			t.Errorf("direct[%d] = %d, want %d", i, got.direct[i], nd.direct[i])
		}
	}
}

func TestInodeSlotEmptyDecodesNil(t *testing.T) {
	_, f := newFS(t)
	buf := make([]byte, f.blockBytes)
	got, err := decodeInodeSlot(buf, 0, 1)
	if err != nil || got != nil {
		t.Errorf("empty slot = (%v, %v)", got, err)
	}
}

func TestIndirectRoundTrip(t *testing.T) {
	_, f := newFS(t)
	ptrs := []int64{100, 200, -1, 400}
	buf := f.encodeIndirect(ptrs)
	got := f.decodeIndirect(buf)
	if len(got) != 4 {
		t.Fatalf("decoded %d pointers, want 4 (trailing -1s trimmed)", len(got))
	}
	for i := range ptrs {
		if got[i] != ptrs[i] {
			t.Errorf("ptr[%d] = %d, want %d", i, got[i], ptrs[i])
		}
	}
}

func TestIndirectRoundTripProperty(t *testing.T) {
	_, f := newFS(t)
	check := func(raw []uint16) bool {
		ptrs := make([]int64, len(raw)%f.ptrsPerBlk)
		for i := range ptrs {
			ptrs[i] = int64(raw[i%len(raw)])
		}
		// Ensure last pointer is not -1 so trimming is exact.
		if len(ptrs) > 0 {
			ptrs[len(ptrs)-1] = 7
		}
		got := f.decodeIndirect(f.encodeIndirect(ptrs))
		if len(got) != len(ptrs) {
			return false
		}
		for i := range ptrs {
			if got[i] != ptrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDirBlockRoundTrip(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/d")
	for _, n := range []string{"alpha", "beta", "gamma"} {
		mustCreate(t, r, f, "/d/"+n)
	}
	dirIno := f.inodes[RootIno].entries["d"]
	nd := f.inodes[dirIno]
	buf := f.encodeDirBlock(nd, 0)

	fresh := &inode{ino: dirIno, dir: true, entries: make(map[string]Ino)}
	f.decodeDirBlock(fresh, 0, buf, int(nd.size))
	if len(fresh.order) != 3 {
		t.Fatalf("decoded %d entries", len(fresh.order))
	}
	for name, ino := range nd.entries {
		if fresh.entries[name] != ino {
			t.Errorf("entry %q = %d, want %d", name, fresh.entries[name], ino)
		}
	}
	for i, name := range nd.order {
		if fresh.order[i] != name {
			t.Errorf("order[%d] = %q, want %q", i, fresh.order[i], name)
		}
	}
}

func TestDataPatternProperties(t *testing.T) {
	_, f := newFS(t)
	a := f.dataPattern(5, 3)
	b := f.dataPattern(5, 3)
	c := f.dataPattern(5, 4)
	d := f.dataPattern(6, 3)
	if !f.CheckPattern(a, 5, 3) {
		t.Error("pattern does not verify against itself")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pattern not deterministic")
		}
	}
	if f.CheckPattern(c, 5, 3) || f.CheckPattern(d, 5, 3) {
		t.Error("pattern collision across (ino, idx)")
	}
	if f.CheckPattern(a[:100], 5, 3) {
		t.Error("short buffer verified")
	}
}

func TestBitmapHelpers(t *testing.T) {
	bits := make([]bool, 37)
	bits[0], bits[7], bits[8], bits[36] = true, true, true, true
	buf := make([]byte, 64)
	end := putBitmap(buf, 3, bits)
	got := make([]bool, 37)
	end2, err := getBitmap(buf, 3, got)
	if err != nil {
		t.Fatal(err)
	}
	if end != end2 {
		t.Errorf("offsets differ: %d vs %d", end, end2)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Errorf("bit %d lost", i)
		}
	}
	// Wrong-size target rejected.
	if _, err := getBitmap(buf, 3, make([]bool, 12)); err == nil {
		t.Error("bitmap size mismatch accepted")
	}
	// Truncated buffer rejected.
	if _, err := getBitmap(buf[:4], 3, got); err == nil {
		t.Error("truncated bitmap accepted")
	}
}
