// Package fs implements an FFS-style UNIX file system over the adaptive
// driver — the substrate whose layout policies shape the disk workload
// in "Adaptive Block Rearrangement Under UNIX" (Section 3.1).
//
// Like the SunOS UFS the paper ran on, this file system:
//
//   - divides the partition into cylinder groups, each holding a group
//     descriptor block, an inode table, and data blocks;
//   - places a file's inode in its directory's cylinder group and the
//     file's data blocks near its inode;
//   - lays out successive blocks of a file with a rotational interleave
//     gap (the "interleaving factor" the interleaved placement policy
//     tries to preserve);
//   - routes all I/O through a buffer cache with delayed writes and a
//     periodic update policy; and
//   - generates bookkeeping writes (inode access-time updates) even for
//     read-only workloads, which is why the paper's read-only system
//     file system still sees write traffic.
//
// All metadata (superblock, group descriptors, inodes, directories,
// indirect blocks) is serialized to the simulated disk, so a file system
// can be unmounted and remounted from the on-disk image alone, and block
// rearrangement can be checked to preserve file contents byte for byte.
package fs

import (
	"errors"
	"fmt"

	"repro/internal/cache"
	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Ino is an inode number.
type Ino int32

// RootIno is the root directory's inode number.
const RootIno Ino = 0

// InodeSize is the on-disk size of one inode in bytes.
const InodeSize = 128

// NDirect is the number of direct block pointers per inode; larger files
// spill into a single indirect block.
const NDirect = 12

// DirEntrySize is the on-disk size of one directory entry: an inode
// number and a fixed-width name.
const DirEntrySize = 32

// MaxNameLen is the longest permitted file name.
const MaxNameLen = DirEntrySize - 8

// Params configures Newfs.
type Params struct {
	// CylsPerGroup sets the cylinder-group size; zero selects the FFS
	// default of 16 cylinders.
	CylsPerGroup int
	// InodeBlocksPerGroup sets the inode-table size per group; zero
	// selects 2 blocks.
	InodeBlocksPerGroup int
	// Stride is the physical distance, in blocks, between successive
	// blocks of a file (1 = contiguous; 2 = the classic one-block
	// rotational gap). Zero selects 2.
	Stride int
	// UpdateAtime controls whether reads dirty the file's inode block
	// (UNIX access-time bookkeeping). Defaults to true via Newfs.
	NoAtime bool
	// SyncData makes file data writes synchronous (write-through), as an
	// NFS2 server's are; metadata keeps the delayed update policy.
	SyncData bool
	// Cache configures the data buffer cache.
	Cache cache.Config
	// MetaCache configures the separate metadata cache (inode-table,
	// directory, indirect and descriptor blocks) — the analogue of the
	// in-core inode table UNIX keeps apart from the buffer cache. Its
	// delayed bookkeeping writes, flushed together by the update
	// policy, are what make UNIX write traffic arrive in concentrated
	// bursts. Zero values select a 512-block cache with the same sync
	// period as the data cache.
	MetaCache cache.Config
}

func (p Params) withDefaults() Params {
	if p.CylsPerGroup <= 0 {
		p.CylsPerGroup = 16
	}
	if p.InodeBlocksPerGroup <= 0 {
		p.InodeBlocksPerGroup = 2
	}
	if p.Stride <= 0 {
		p.Stride = 2
	}
	return p
}

// Errors returned by file system operations.
var (
	ErrNotFound   = errors.New("fs: no such file or directory")
	ErrExists     = errors.New("fs: file exists")
	ErrNotDir     = errors.New("fs: not a directory")
	ErrIsDir      = errors.New("fs: is a directory")
	ErrNoSpace    = errors.New("fs: no space left on device")
	ErrNoInodes   = errors.New("fs: out of inodes")
	ErrFileTooBig = errors.New("fs: file exceeds maximum size")
	ErrReadOnly   = errors.New("fs: read-only file system")
	ErrBadName    = errors.New("fs: invalid file name")
	ErrNotEmpty   = errors.New("fs: directory not empty")
	ErrBadRange   = errors.New("fs: block index out of range")
)

// inode is the in-memory (authoritative) form of an on-disk inode.
type inode struct {
	ino      Ino
	dir      bool
	size     int64 // size in blocks for regular files; entry count for dirs
	direct   [NDirect]int64
	indirect int64   // block number of the indirect block, or -1
	iblock   []int64 // in-memory copy of the indirect block pointers
	entries  map[string]Ino
	order    []string // directory entry order (on-disk slot order)
}

// group is the in-memory state of one cylinder group.
type group struct {
	base      int64 // first partition-relative block
	dataStart int64
	end       int64
	inodeUsed []bool
	dataUsed  []bool
	freeData  int
	freeIno   int
	rotor     int64 // next-fit pointer within the data region
}

// FS is a mounted file system instance.
type FS struct {
	eng   *sim.Engine
	drv   driver.BlockDevice
	part  int
	cache *cache.Cache // data blocks
	meta  *cache.Cache // inode, directory, indirect, descriptor blocks
	prm   Params

	blockBytes  int
	ptrsPerBlk  int
	inosPerBlk  int
	blocksPerGp int64
	totalBlocks int64

	groups   []*group
	inodes   map[Ino]*inode
	readOnly bool
	dirRotor uint64 // new-directory spread rotor (see allocInode)

	// freeRead heads the pool of ReadAt walk records (see readReq in
	// ops.go). Single-threaded like the rest of the file system.
	freeRead *readReq

	// mxRead/mxWrite are end-to-end file operation latency histograms,
	// nil until BindMetrics.
	mxRead  *metrics.Histogram
	mxWrite *metrics.Histogram
}

// Newfs formats the partition and returns a mounted file system with an
// empty root directory — the analogue of running newfs and mount. The
// format writes all metadata through the buffer cache; call Sync (or run
// the sync daemon) to push it to disk.
func Newfs(eng *sim.Engine, drv driver.BlockDevice, part int, prm Params) (*FS, error) {
	prm = prm.withDefaults()
	f, err := prepare(eng, drv, part, prm)
	if err != nil {
		return nil, err
	}
	// Mark metadata blocks used in every group.
	for _, g := range f.groups {
		g.freeData = len(g.dataUsed)
		g.freeIno = len(g.inodeUsed)
	}
	// Create the root directory in group 0.
	root := &inode{ino: RootIno, dir: true, indirect: -1, entries: make(map[string]Ino)}
	for i := range root.direct {
		root.direct[i] = -1
	}
	f.groups[0].inodeUsed[0] = true
	f.groups[0].freeIno--
	f.inodes[RootIno] = root

	// Write the initial metadata image: superblock+descriptors and the
	// root's inode block.
	var steps []step
	for gi := range f.groups {
		steps = append(steps, step{block: f.groups[gi].base, data: f.encodeDescriptor(gi), meta: true})
	}
	steps = append(steps, step{block: f.inodeBlockOf(RootIno), data: f.encodeInodeBlock(f.inodeBlockOf(RootIno)), meta: true})
	f.runSeq(steps, nil)
	return f, nil
}

// prepare builds the FS skeleton shared by Newfs and Mount.
func prepare(eng *sim.Engine, drv driver.BlockDevice, part int, prm Params) (*FS, error) {
	p, err := drv.Label().Partition(part)
	if err != nil {
		return nil, err
	}
	bs := drv.BlockSize()
	vg := drv.Label().VirtualGeom()
	blocksPerGp := int64(prm.CylsPerGroup) * int64(vg.SectorsPerCyl()) / int64(bs.Sectors())
	minGroup := int64(prm.InodeBlocksPerGroup) + 2 // descriptor + inodes + >=1 data block
	if blocksPerGp < minGroup {
		return nil, fmt.Errorf("fs: cylinder group of %d blocks too small", blocksPerGp)
	}
	total := p.Size / int64(bs.Sectors())
	ngroups := total / blocksPerGp
	if ngroups == 0 {
		return nil, fmt.Errorf("fs: partition of %d blocks smaller than one cylinder group (%d)", total, blocksPerGp)
	}
	metaCfg := prm.MetaCache
	if metaCfg.CapacityBlocks <= 0 {
		metaCfg.CapacityBlocks = 512
	}
	if metaCfg.SyncPeriodMS <= 0 {
		metaCfg.SyncPeriodMS = prm.Cache.SyncPeriodMS
	}
	f := &FS{
		eng:         eng,
		drv:         drv,
		part:        part,
		cache:       cache.New(eng, drv, part, prm.Cache),
		meta:        cache.New(eng, drv, part, metaCfg),
		prm:         prm,
		blockBytes:  bs.Bytes(),
		ptrsPerBlk:  bs.Bytes() / 8,
		inosPerBlk:  bs.Bytes() / InodeSize,
		blocksPerGp: blocksPerGp,
		totalBlocks: ngroups * blocksPerGp,
		inodes:      make(map[Ino]*inode),
	}
	for gi := int64(0); gi < ngroups; gi++ {
		base := gi * blocksPerGp
		dataStart := base + 1 + int64(prm.InodeBlocksPerGroup)
		end := base + blocksPerGp
		f.groups = append(f.groups, &group{
			base:      base,
			dataStart: dataStart,
			end:       end,
			inodeUsed: make([]bool, prm.InodeBlocksPerGroup*f.inosPerBlk),
			dataUsed:  make([]bool, end-dataStart),
		})
	}
	return f, nil
}

// Cache returns the file system's data buffer cache.
func (f *FS) Cache() *cache.Cache { return f.cache }

// MetaCache returns the file system's metadata cache.
func (f *FS) MetaCache() *cache.Cache { return f.meta }

// BindMetrics registers the file system's metrics in reg: end-to-end
// ReadAt/WriteAt latency histograms (recorded from the moment of
// binding, so bind after populate) and the two caches' hit/miss/
// writeback counters under cache="data" and cache="meta" labels.
func (f *FS) BindMetrics(reg *metrics.Registry) {
	f.mxRead = reg.Histogram("fs_read_ms", metrics.HistogramOpts{})
	f.mxWrite = reg.Histogram("fs_write_ms", metrics.HistogramOpts{})
	f.cache.BindMetrics(reg, "data")
	f.meta.BindMetrics(reg, "meta")
}

// StartSyncDaemon starts the periodic update policy on both caches.
func (f *FS) StartSyncDaemon() {
	f.cache.StartSyncDaemon()
	f.meta.StartSyncDaemon()
}

// StopSyncDaemon stops the update policy on both caches.
func (f *FS) StopSyncDaemon() {
	f.cache.StopSyncDaemon()
	f.meta.StopSyncDaemon()
}

// SetReadOnly switches the mount mode. On a read-only file system user
// writes fail, but the OS still performs bookkeeping writes (access-time
// updates), as the paper describes for the system file system.
func (f *FS) SetReadOnly(ro bool) { f.readOnly = ro }

// ReadOnly reports the mount mode.
func (f *FS) ReadOnly() bool { return f.readOnly }

// Groups returns the number of cylinder groups.
func (f *FS) Groups() int { return len(f.groups) }

// TotalBlocks returns the number of blocks managed by the file system.
func (f *FS) TotalBlocks() int64 { return f.totalBlocks }

// FreeBlocks returns the number of free data blocks.
func (f *FS) FreeBlocks() int64 {
	var n int64
	for _, g := range f.groups {
		n += int64(g.freeData)
	}
	return n
}

// MaxFileBlocks returns the largest supported file size in blocks.
func (f *FS) MaxFileBlocks() int64 { return NDirect + int64(f.ptrsPerBlk) }

// Sync flushes all dirty cached blocks (metadata first, then data) to
// disk.
func (f *FS) Sync(done func(error)) {
	f.meta.Sync(func(err error) {
		if err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		f.cache.Sync(done)
	})
}

// groupOf returns the index of the group containing partition block b.
func (f *FS) groupOf(b int64) int { return int(b / f.blocksPerGp) }

// inodeBlockOf returns the partition block holding ino's on-disk inode.
func (f *FS) inodeBlockOf(ino Ino) int64 {
	g := f.groups[int(ino)/len(f.groups[0].inodeUsed)]
	idx := int(ino) % len(f.groups[0].inodeUsed)
	return g.base + 1 + int64(idx/f.inosPerBlk)
}

// inoOf returns the inode number for slot idx of group gi.
func (f *FS) inoOf(gi, idx int) Ino {
	return Ino(gi*len(f.groups[0].inodeUsed) + idx)
}

// step is one cache operation of an I/O sequence: a read (data == nil)
// or a write of the given serialized content. meta routes the operation
// through the metadata cache.
type step struct {
	block int64
	data  []byte
	meta  bool
}

// cacheFor selects the cache a step goes through.
func (f *FS) cacheFor(meta bool) *cache.Cache {
	if meta {
		return f.meta
	}
	return f.cache
}

// runSeq performs the steps strictly in order through the buffer cache
// and calls done with the first error (if any). It gives every file
// system operation the same I/O ordering a real kernel implementation
// would produce: metadata reads before data, one block at a time.
func (f *FS) runSeq(steps []step, done func(error)) {
	var run func(i int)
	run = func(i int) {
		if i >= len(steps) {
			if done != nil {
				done(nil)
			}
			return
		}
		s := steps[i]
		c := f.cacheFor(s.meta)
		next := func(err error) {
			if err != nil {
				if done != nil {
					done(err)
				}
				return
			}
			run(i + 1)
		}
		switch {
		case s.data == nil:
			c.Read(s.block, func(_ []byte, err error) { next(err) })
		case !s.meta && f.prm.SyncData:
			// Step buffers are encoded fresh per operation and never
			// touched again, so the cache can take them as-is.
			c.WriteThroughOwned(s.block, s.data, next)
		default:
			c.WriteOwned(s.block, s.data, next)
		}
	}
	run(0)
}

func checkName(name string) error {
	if name == "" || len(name) > MaxNameLen {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return fmt.Errorf("%w: %q", ErrBadName, name)
		}
	}
	return nil
}
