package fs

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/sim"
)

// Mount rebuilds a file system from its on-disk image: it reads the
// superblock and group descriptors, the inode tables, every directory,
// and every indirect block — all through the driver, so blocks that have
// been rearranged into the reserved region are found via the block
// table, exactly as a reboot of the paper's system would find them.
//
// The image must have been flushed (Sync) before the previous instance
// was abandoned; like a real fixed-layout file system, Mount reads only
// what is on disk.
func Mount(eng *sim.Engine, drv driver.BlockDevice, part int, prm Params, done func(*FS, error)) {
	fail := func(err error) {
		eng.After(0, func() {
			if done != nil {
				done(nil, err)
			}
		})
	}
	// Read the group-0 descriptor to learn the format parameters.
	drv.ReadBlock(part, 0, func(buf []byte, err error) {
		if err != nil {
			fail(fmt.Errorf("fs mount: reading superblock: %w", err))
			return
		}
		blockBytes, diskPrm, _, err := decodeSuper(buf)
		if err != nil {
			fail(err)
			return
		}
		if blockBytes != drv.BlockSize().Bytes() {
			fail(fmt.Errorf("fs mount: file system block size %d, driver uses %d",
				blockBytes, drv.BlockSize().Bytes()))
			return
		}
		// Layout parameters come from disk; runtime parameters (cache,
		// atime) from the caller.
		diskPrm.NoAtime = prm.NoAtime
		diskPrm.Cache = prm.Cache
		diskPrm.MetaCache = prm.MetaCache
		f, err := prepare(eng, drv, part, diskPrm)
		if err != nil {
			fail(err)
			return
		}
		f.mountGroups(0, done)
	})
}

// mountGroups reads and decodes each group descriptor in turn.
func (f *FS) mountGroups(gi int, done func(*FS, error)) {
	if gi == len(f.groups) {
		f.mountInodes(done)
		return
	}
	f.meta.Read(f.groups[gi].base, func(buf []byte, err error) {
		if err != nil {
			f.mountFail(done, err)
			return
		}
		if err := f.decodeDescriptor(gi, buf); err != nil {
			f.mountFail(done, err)
			return
		}
		f.mountGroups(gi+1, done)
	})
}

// mountInodes reads every inode-table block that holds a used inode and
// decodes the inodes.
func (f *FS) mountInodes(done func(*FS, error)) {
	type blockJob struct {
		blk   int64
		gi    int
		first int // first inode slot index of the block within its group
	}
	var jobs []blockJob
	for gi, g := range f.groups {
		for ib := 0; ib < f.prm.InodeBlocksPerGroup; ib++ {
			used := false
			for slot := 0; slot < f.inosPerBlk; slot++ {
				idx := ib*f.inosPerBlk + slot
				if idx < len(g.inodeUsed) && g.inodeUsed[idx] {
					used = true
					break
				}
			}
			if used {
				jobs = append(jobs, blockJob{blk: g.base + 1 + int64(ib), gi: gi, first: ib * f.inosPerBlk})
			}
		}
	}
	var run func(i int)
	run = func(i int) {
		if i == len(jobs) {
			f.mountContents(done)
			return
		}
		j := jobs[i]
		f.meta.Read(j.blk, func(buf []byte, err error) {
			if err != nil {
				f.mountFail(done, err)
				return
			}
			for slot := 0; slot < f.inosPerBlk; slot++ {
				idx := j.first + slot
				if idx >= len(f.groups[j.gi].inodeUsed) || !f.groups[j.gi].inodeUsed[idx] {
					continue
				}
				ino := f.inoOf(j.gi, idx)
				nd, derr := decodeInodeSlot(buf, slot, ino)
				if derr != nil {
					f.mountFail(done, derr)
					return
				}
				if nd == nil {
					f.mountFail(done, fmt.Errorf("fs mount: inode %d marked used but slot empty", ino))
					return
				}
				f.inodes[ino] = nd
			}
			run(i + 1)
		})
	}
	run(0)
}

// mountContents reads indirect blocks and directory contents.
func (f *FS) mountContents(done func(*FS, error)) {
	if _, ok := f.inodes[RootIno]; !ok {
		f.mountFail(done, fmt.Errorf("fs mount: no root directory"))
		return
	}
	var nodes []*inode
	for _, nd := range f.inodes {
		nodes = append(nodes, nd)
	}
	// Deterministic order.
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].ino < nodes[j-1].ino; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
	var run func(i int)
	run = func(i int) {
		if i == len(nodes) {
			f.eng.After(0, func() {
				if done != nil {
					done(f, nil)
				}
			})
			return
		}
		nd := nodes[i]
		next := func() { run(i + 1) }
		if nd.indirect >= 0 {
			f.meta.Read(nd.indirect, func(buf []byte, err error) {
				if err != nil {
					f.mountFail(done, err)
					return
				}
				nd.iblock = f.decodeIndirect(buf)
				if nd.dir {
					f.mountDir(nd, done, next)
					return
				}
				next()
			})
			return
		}
		if nd.dir {
			f.mountDir(nd, done, next)
			return
		}
		next()
	}
	run(0)
}

// mountDir reads a directory's data blocks and decodes its entries.
func (f *FS) mountDir(nd *inode, done func(*FS, error), next func()) {
	n := int(nd.size)
	nblocks := f.nblocksOf(nd)
	var run func(b int64)
	run = func(b int64) {
		if b == nblocks {
			next()
			return
		}
		blk := f.blockOf(nd, b)
		if blk < 0 {
			f.mountFail(done, fmt.Errorf("fs mount: directory %d missing block %d", nd.ino, b))
			return
		}
		f.meta.Read(blk, func(buf []byte, err error) {
			if err != nil {
				f.mountFail(done, err)
				return
			}
			f.decodeDirBlock(nd, int(b), buf, n)
			run(b + 1)
		})
	}
	run(0)
}

func (f *FS) mountFail(done func(*FS, error), err error) {
	f.eng.After(0, func() {
		if done != nil {
			done(nil, err)
		}
	})
}
