package fs

import (
	"encoding/binary"
	"fmt"
)

// On-disk serialization. Every metadata structure is fully encoded so a
// file system can be remounted from the disk image alone.

// descriptor block layout (block 0 of each cylinder group):
//
//	magic u32 | group u32 | superblock section (24 bytes, meaningful in
//	group 0) | inode bitmap (len u32 + bytes) | data bitmap (len u32 +
//	bytes)
//
// superblock section: blockBytes u32 | cylsPerGroup u32 |
// inodeBlocksPerGroup u32 | stride u32 | totalBlocks u64.
const (
	descMagic  = 0x43475250 // "CGRP"
	inodeMagic = 0x494E4F44 // "INOD"
	dataMagic  = 0x44415441 // "DATA"
)

func (f *FS) encodeDescriptor(gi int) []byte {
	g := f.groups[gi]
	buf := make([]byte, f.blockBytes)
	be := binary.BigEndian
	be.PutUint32(buf[0:], descMagic)
	be.PutUint32(buf[4:], uint32(gi))
	be.PutUint32(buf[8:], uint32(f.blockBytes))
	be.PutUint32(buf[12:], uint32(f.prm.CylsPerGroup))
	be.PutUint32(buf[16:], uint32(f.prm.InodeBlocksPerGroup))
	be.PutUint32(buf[20:], uint32(f.prm.Stride))
	be.PutUint64(buf[24:], uint64(f.totalBlocks))
	off := 32
	off = putBitmap(buf, off, g.inodeUsed)
	putBitmap(buf, off, g.dataUsed)
	return buf
}

// decodeSuper extracts the format parameters from a group-0 descriptor
// block.
func decodeSuper(buf []byte) (blockBytes int, prm Params, totalBlocks int64, err error) {
	be := binary.BigEndian
	if len(buf) < 32 || be.Uint32(buf[0:]) != descMagic {
		return 0, Params{}, 0, fmt.Errorf("fs: bad descriptor magic")
	}
	blockBytes = int(be.Uint32(buf[8:]))
	prm.CylsPerGroup = int(be.Uint32(buf[12:]))
	prm.InodeBlocksPerGroup = int(be.Uint32(buf[16:]))
	prm.Stride = int(be.Uint32(buf[20:]))
	totalBlocks = int64(be.Uint64(buf[24:]))
	return blockBytes, prm, totalBlocks, nil
}

// decodeDescriptor restores a group's bitmaps from its descriptor block.
func (f *FS) decodeDescriptor(gi int, buf []byte) error {
	be := binary.BigEndian
	if be.Uint32(buf[0:]) != descMagic {
		return fmt.Errorf("fs: group %d: bad descriptor magic", gi)
	}
	if got := int(be.Uint32(buf[4:])); got != gi {
		return fmt.Errorf("fs: group %d: descriptor claims group %d", gi, got)
	}
	g := f.groups[gi]
	off, err := getBitmap(buf, 32, g.inodeUsed)
	if err != nil {
		return fmt.Errorf("fs: group %d: %w", gi, err)
	}
	if _, err := getBitmap(buf, off, g.dataUsed); err != nil {
		return fmt.Errorf("fs: group %d: %w", gi, err)
	}
	g.freeIno, g.freeData = 0, 0
	for _, u := range g.inodeUsed {
		if !u {
			g.freeIno++
		}
	}
	for _, u := range g.dataUsed {
		if !u {
			g.freeData++
		}
	}
	return nil
}

func putBitmap(buf []byte, off int, bits []bool) int {
	binary.BigEndian.PutUint32(buf[off:], uint32(len(bits)))
	off += 4
	for i, b := range bits {
		if b {
			buf[off+i/8] |= 1 << (i % 8)
		}
	}
	return off + (len(bits)+7)/8
}

func getBitmap(buf []byte, off int, bits []bool) (int, error) {
	if off+4 > len(buf) {
		return 0, fmt.Errorf("truncated bitmap header")
	}
	n := int(binary.BigEndian.Uint32(buf[off:]))
	if n != len(bits) {
		return 0, fmt.Errorf("bitmap of %d bits, want %d", n, len(bits))
	}
	off += 4
	if off+(n+7)/8 > len(buf) {
		return 0, fmt.Errorf("truncated bitmap body")
	}
	for i := range bits {
		bits[i] = buf[off+i/8]&(1<<(i%8)) != 0
	}
	return off + (n+7)/8, nil
}

// inode layout (InodeSize bytes per slot):
//
//	magic u32 | flags u16 (bit0 used, bit1 dir) | pad u16 | size u64 |
//	indirect i64 | NDirect × direct i64
const (
	inoFlagUsed = 1 << 0
	inoFlagDir  = 1 << 1
)

// encodeInodeBlock serializes all inode slots of the given inode-table
// block from the in-memory inode map.
func (f *FS) encodeInodeBlock(blk int64) []byte {
	buf := make([]byte, f.blockBytes)
	gi := f.groupOf(blk)
	g := f.groups[gi]
	blkIdx := int(blk - g.base - 1) // which inode block within the group
	be := binary.BigEndian
	for slot := 0; slot < f.inosPerBlk; slot++ {
		idx := blkIdx*f.inosPerBlk + slot
		if idx >= len(g.inodeUsed) || !g.inodeUsed[idx] {
			continue
		}
		ino := f.inoOf(gi, idx)
		nd, ok := f.inodes[ino]
		if !ok {
			continue
		}
		o := slot * InodeSize
		be.PutUint32(buf[o:], inodeMagic)
		flags := uint16(inoFlagUsed)
		if nd.dir {
			flags |= inoFlagDir
		}
		be.PutUint16(buf[o+4:], flags)
		be.PutUint64(buf[o+8:], uint64(nd.size))
		be.PutUint64(buf[o+16:], uint64(nd.indirect))
		for i, d := range nd.direct {
			be.PutUint64(buf[o+24+i*8:], uint64(d))
		}
	}
	return buf
}

// decodeInodeSlot restores one inode from an inode-table block. It
// returns nil if the slot is unused.
func decodeInodeSlot(buf []byte, slot int, ino Ino) (*inode, error) {
	o := slot * InodeSize
	be := binary.BigEndian
	if be.Uint32(buf[o:]) != inodeMagic {
		return nil, nil // unused slot
	}
	flags := be.Uint16(buf[o+4:])
	if flags&inoFlagUsed == 0 {
		return nil, nil
	}
	nd := &inode{
		ino:      ino,
		dir:      flags&inoFlagDir != 0,
		size:     int64(be.Uint64(buf[o+8:])),
		indirect: int64(be.Uint64(buf[o+16:])),
	}
	for i := range nd.direct {
		nd.direct[i] = int64(be.Uint64(buf[o+24+i*8:]))
	}
	if nd.dir {
		nd.entries = make(map[string]Ino)
	}
	return nd, nil
}

// encodeIndirect serializes an indirect block's pointer array.
func (f *FS) encodeIndirect(ptrs []int64) []byte {
	buf := make([]byte, f.blockBytes)
	be := binary.BigEndian
	for i := 0; i < f.ptrsPerBlk; i++ {
		v := int64(-1)
		if i < len(ptrs) {
			v = ptrs[i]
		}
		be.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

func (f *FS) decodeIndirect(buf []byte) []int64 {
	ptrs := make([]int64, f.ptrsPerBlk)
	be := binary.BigEndian
	for i := range ptrs {
		ptrs[i] = int64(be.Uint64(buf[i*8:]))
	}
	// Trim trailing unused slots.
	n := len(ptrs)
	for n > 0 && ptrs[n-1] == -1 {
		n--
	}
	return ptrs[:n]
}

// directory entry layout: ino i64 | name (MaxNameLen bytes, NUL padded).
func (f *FS) entriesPerBlock() int { return f.blockBytes / DirEntrySize }

// encodeDirBlock serializes one block of a directory's entry table.
func (f *FS) encodeDirBlock(nd *inode, blkIdx int) []byte {
	buf := make([]byte, f.blockBytes)
	be := binary.BigEndian
	per := f.entriesPerBlock()
	for slot := 0; slot < per; slot++ {
		i := blkIdx*per + slot
		if i >= len(nd.order) {
			break
		}
		name := nd.order[i]
		o := slot * DirEntrySize
		be.PutUint64(buf[o:], uint64(nd.entries[name]))
		copy(buf[o+8:o+8+MaxNameLen], name)
	}
	return buf
}

// decodeDirBlock restores directory entries from one block, appending
// them to the inode's entry table. n is the number of entries the
// directory holds in total (from its inode size field).
func (f *FS) decodeDirBlock(nd *inode, blkIdx int, buf []byte, n int) {
	be := binary.BigEndian
	per := f.entriesPerBlock()
	for slot := 0; slot < per; slot++ {
		i := blkIdx*per + slot
		if i >= n {
			break
		}
		o := slot * DirEntrySize
		ino := Ino(int64(be.Uint64(buf[o:])))
		name := trimNul(buf[o+8 : o+8+MaxNameLen])
		nd.entries[name] = ino
		nd.order = append(nd.order, name)
	}
}

func trimNul(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}

// dataPattern generates the deterministic content of a file data block.
// The pattern lets tests verify, byte for byte, that block rearrangement
// never corrupts file contents.
func (f *FS) dataPattern(ino Ino, idx int64) []byte {
	buf := make([]byte, f.blockBytes)
	be := binary.BigEndian
	be.PutUint32(buf[0:], dataMagic)
	be.PutUint32(buf[4:], uint32(ino))
	be.PutUint64(buf[8:], uint64(idx))
	seed := uint64(ino)*2654435761 + uint64(idx)*40503
	for i := 16; i < len(buf); i += 8 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		be.PutUint64(buf[i:], seed)
	}
	return buf
}

// CheckPattern reports whether data is the expected content of block idx
// of file ino.
func (f *FS) CheckPattern(data []byte, ino Ino, idx int64) bool {
	want := f.dataPattern(ino, idx)
	if len(data) != len(want) {
		return false
	}
	for i := range data {
		if data[i] != want[i] {
			return false
		}
	}
	return true
}
