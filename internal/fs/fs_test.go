package fs

import (
	"errors"
	"testing"

	"repro/internal/rig"
)

func newFS(t *testing.T) (*rig.Rig, *FS) {
	t.Helper()
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Newfs(r.Eng, r.Driver, 0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	return r, f
}

// mustCreate, mustMkdir, mustOpen, mustWrite are synchronous wrappers
// that drive the engine to completion.
func mustCreate(t *testing.T, r *rig.Rig, f *FS, path string) Ino {
	t.Helper()
	var ino Ino
	var cerr error
	f.Create(path, func(i Ino, err error) { ino, cerr = i, err })
	r.Eng.Run()
	if cerr != nil {
		t.Fatalf("create %s: %v", path, cerr)
	}
	return ino
}

func mustMkdir(t *testing.T, r *rig.Rig, f *FS, path string) Ino {
	t.Helper()
	var ino Ino
	var cerr error
	f.Mkdir(path, func(i Ino, err error) { ino, cerr = i, err })
	r.Eng.Run()
	if cerr != nil {
		t.Fatalf("mkdir %s: %v", path, cerr)
	}
	return ino
}

func mustOpen(t *testing.T, r *rig.Rig, f *FS, path string) *Handle {
	t.Helper()
	var h *Handle
	var oerr error
	f.Open(path, func(hh *Handle, err error) { h, oerr = hh, err })
	r.Eng.Run()
	if oerr != nil {
		t.Fatalf("open %s: %v", path, oerr)
	}
	return h
}

func mustWrite(t *testing.T, r *rig.Rig, h *Handle, idx, n int64) {
	t.Helper()
	var werr error
	h.WriteAt(idx, n, func(err error) { werr = err })
	r.Eng.Run()
	if werr != nil {
		t.Fatalf("write: %v", werr)
	}
}

func mustRead(t *testing.T, r *rig.Rig, h *Handle, idx, n int64) [][]byte {
	t.Helper()
	var data [][]byte
	var rerr error
	h.ReadAt(idx, n, func(d [][]byte, err error) { data, rerr = d, err })
	r.Eng.Run()
	if rerr != nil {
		t.Fatalf("read: %v", rerr)
	}
	return data
}

func TestNewfsLayout(t *testing.T) {
	_, f := newFS(t)
	if f.Groups() < 10 {
		t.Errorf("only %d cylinder groups", f.Groups())
	}
	if f.FreeBlocks() <= 0 {
		t.Error("no free blocks after format")
	}
	if f.TotalBlocks() <= f.FreeBlocks() {
		t.Error("metadata occupies no space")
	}
}

func TestCreateAndLookup(t *testing.T) {
	r, f := newFS(t)
	ino := mustCreate(t, r, f, "/hello")
	var got Ino
	var lerr error
	f.Lookup("/hello", func(i Ino, err error) { got, lerr = i, err })
	r.Eng.Run()
	if lerr != nil || got != ino {
		t.Fatalf("lookup = (%d, %v), want %d", got, lerr, ino)
	}
	f.Lookup("/missing", func(_ Ino, err error) { lerr = err })
	r.Eng.Run()
	if !errors.Is(lerr, ErrNotFound) {
		t.Errorf("missing file: %v", lerr)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/a")
	var cerr error
	f.Create("/a", func(_ Ino, err error) { cerr = err })
	r.Eng.Run()
	if !errors.Is(cerr, ErrExists) {
		t.Errorf("duplicate create: %v", cerr)
	}
}

func TestCreateBadNames(t *testing.T) {
	r, f := newFS(t)
	var cerr error
	f.Create("/"+string(make([]byte, 100)), func(_ Ino, err error) { cerr = err })
	r.Eng.Run()
	if cerr == nil {
		t.Error("oversized name accepted")
	}
}

func TestMkdirAndNesting(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/usr")
	mustMkdir(t, r, f, "/usr/bin")
	ino := mustCreate(t, r, f, "/usr/bin/ls")
	var got Ino
	f.Lookup("/usr/bin/ls", func(i Ino, err error) { got = i })
	r.Eng.Run()
	if got != ino {
		t.Errorf("nested lookup = %d, want %d", got, ino)
	}
	// Files cannot be used as directories.
	var cerr error
	f.Create("/usr/bin/ls/sub", func(_ Ino, err error) { cerr = err })
	r.Eng.Run()
	if !errors.Is(cerr, ErrNotDir) {
		t.Errorf("create under file: %v", cerr)
	}
}

func TestReadDir(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/d")
	for _, n := range []string{"x", "y", "z"} {
		mustCreate(t, r, f, "/d/"+n)
	}
	var names []string
	f.ReadDir("/d", func(ns []string, err error) {
		if err != nil {
			t.Errorf("readdir: %v", err)
		}
		names = ns
	})
	r.Eng.Run()
	if len(names) != 3 || names[0] != "x" || names[1] != "y" || names[2] != "z" {
		t.Errorf("names = %v", names)
	}
	var derr error
	f.ReadDir("/d/x", func(_ []string, err error) { derr = err })
	r.Eng.Run()
	if !errors.Is(derr, ErrNotDir) {
		t.Errorf("readdir of file: %v", derr)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/data")
	h := mustOpen(t, r, f, "/data")
	mustWrite(t, r, h, 0, 5)
	if h.SizeBlocks() != 5 {
		t.Fatalf("size = %d", h.SizeBlocks())
	}
	data := mustRead(t, r, h, 0, 5)
	if len(data) != 5 {
		t.Fatalf("read %d blocks", len(data))
	}
	for i, blk := range data {
		if !f.CheckPattern(blk, h.Ino(), int64(i)) {
			t.Errorf("block %d content wrong", i)
		}
	}
}

func TestWriteExtendsButNoHoles(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/a")
	h := mustOpen(t, r, f, "/a")
	mustWrite(t, r, h, 0, 2)
	mustWrite(t, r, h, 2, 3) // extend at exactly size
	mustWrite(t, r, h, 1, 1) // overwrite
	var werr error
	h.WriteAt(10, 1, func(err error) { werr = err }) // hole
	r.Eng.Run()
	if !errors.Is(werr, ErrBadRange) {
		t.Errorf("hole write: %v", werr)
	}
	if h.SizeBlocks() != 5 {
		t.Errorf("size = %d", h.SizeBlocks())
	}
}

func TestReadValidation(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/a")
	h := mustOpen(t, r, f, "/a")
	mustWrite(t, r, h, 0, 2)
	var rerr error
	h.ReadAt(0, 3, func(_ [][]byte, err error) { rerr = err })
	r.Eng.Run()
	if !errors.Is(rerr, ErrBadRange) {
		t.Errorf("read past EOF: %v", rerr)
	}
	h.ReadAt(-1, 1, func(_ [][]byte, err error) { rerr = err })
	r.Eng.Run()
	if !errors.Is(rerr, ErrBadRange) {
		t.Errorf("negative read: %v", rerr)
	}
}

func TestLargeFileUsesIndirect(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/big")
	h := mustOpen(t, r, f, "/big")
	mustWrite(t, r, h, 0, NDirect+20)
	data := mustRead(t, r, h, 0, NDirect+20)
	for i, blk := range data {
		if !f.CheckPattern(blk, h.Ino(), int64(i)) {
			t.Fatalf("block %d content wrong", i)
		}
	}
	nd := f.inodes[h.Ino()]
	if nd.indirect < 0 {
		t.Error("no indirect block allocated")
	}
	if len(nd.iblock) != 20 {
		t.Errorf("indirect holds %d pointers", len(nd.iblock))
	}
}

func TestFileTooBig(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/huge")
	h := mustOpen(t, r, f, "/huge")
	var werr error
	h.WriteAt(0, f.MaxFileBlocks()+1, func(err error) { werr = err })
	r.Eng.Run()
	if !errors.Is(werr, ErrFileTooBig) {
		t.Errorf("oversized write: %v", werr)
	}
}

func TestInterleavedAllocation(t *testing.T) {
	// Successive blocks of a freshly-written file should sit the
	// rotational stride apart (2 blocks by default).
	r, f := newFS(t)
	mustCreate(t, r, f, "/seq")
	h := mustOpen(t, r, f, "/seq")
	mustWrite(t, r, h, 0, 8)
	nd := f.inodes[h.Ino()]
	strided := 0
	for i := 1; i < 8; i++ {
		if nd.direct[i]-nd.direct[i-1] == int64(f.prm.Stride) {
			strided++
		}
	}
	if strided < 6 {
		t.Errorf("only %d of 7 gaps use the interleave stride", strided)
	}
}

func TestFileAllocatedNearDirectory(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/home")
	ino := mustCreate(t, r, f, "/home/file")
	perGroup := len(f.groups[0].inodeUsed)
	dirIno := f.inodes[RootIno].entries["home"]
	if int(ino)/perGroup != int(dirIno)/perGroup {
		t.Errorf("file in group %d, directory in group %d",
			int(ino)/perGroup, int(dirIno)/perGroup)
	}
	// The file's data lands in the same group too.
	h := mustOpen(t, r, f, "/home/file")
	mustWrite(t, r, h, 0, 3)
	nd := f.inodes[h.Ino()]
	for i := 0; i < 3; i++ {
		if f.groupOf(nd.direct[i]) != int(ino)/perGroup {
			t.Errorf("block %d in group %d, inode in group %d",
				i, f.groupOf(nd.direct[i]), int(ino)/perGroup)
		}
	}
}

func TestDirectoriesSpread(t *testing.T) {
	r, f := newFS(t)
	groups := map[int]bool{}
	perGroup := len(f.groups[0].inodeUsed)
	for _, n := range []string{"/a", "/b", "/c", "/d"} {
		ino := mustMkdir(t, r, f, n)
		groups[int(ino)/perGroup] = true
	}
	if len(groups) < 3 {
		t.Errorf("4 directories landed in only %d groups", len(groups))
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	r, f := newFS(t)
	// Anchor entry so the root directory's data block (which, like FFS,
	// is never shrunk away) is already allocated in the baseline.
	mustCreate(t, r, f, "/anchor")
	free0 := f.FreeBlocks()
	mustCreate(t, r, f, "/tmp")
	h := mustOpen(t, r, f, "/tmp")
	mustWrite(t, r, h, 0, 20) // uses indirect too
	if f.FreeBlocks() >= free0 {
		t.Fatal("write consumed no space")
	}
	var rerr error
	f.Remove("/tmp", func(err error) { rerr = err })
	r.Eng.Run()
	if rerr != nil {
		t.Fatal(rerr)
	}
	if f.FreeBlocks() != free0 {
		t.Errorf("free = %d after remove, want %d", f.FreeBlocks(), free0)
	}
	var lerr error
	f.Lookup("/tmp", func(_ Ino, err error) { lerr = err })
	r.Eng.Run()
	if !errors.Is(lerr, ErrNotFound) {
		t.Errorf("removed file still found: %v", lerr)
	}
}

func TestRemoveNonEmptyDirFails(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/d")
	mustCreate(t, r, f, "/d/x")
	var rerr error
	f.Remove("/d", func(err error) { rerr = err })
	r.Eng.Run()
	if !errors.Is(rerr, ErrNotEmpty) {
		t.Errorf("remove non-empty dir: %v", rerr)
	}
	// Empty it, then it works.
	f.Remove("/d/x", nil)
	r.Eng.Run()
	f.Remove("/d", func(err error) { rerr = err })
	r.Eng.Run()
	if rerr != nil {
		t.Errorf("remove emptied dir: %v", rerr)
	}
}

func TestRemoveMiddleEntryKeepsOthers(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/d")
	for _, n := range []string{"a", "b", "c"} {
		mustCreate(t, r, f, "/d/"+n)
	}
	f.Remove("/d/b", nil)
	r.Eng.Run()
	for _, n := range []string{"a", "c"} {
		var lerr error
		f.Lookup("/d/"+n, func(_ Ino, err error) { lerr = err })
		r.Eng.Run()
		if lerr != nil {
			t.Errorf("lookup %s after sibling removal: %v", n, lerr)
		}
	}
}

func TestReadOnlyMount(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/x")
	h := mustOpen(t, r, f, "/x")
	mustWrite(t, r, h, 0, 1)
	f.SetReadOnly(true)
	var errs []error
	f.Create("/y", func(_ Ino, err error) { errs = append(errs, err) })
	f.Remove("/x", func(err error) { errs = append(errs, err) })
	h.WriteAt(0, 1, func(err error) { errs = append(errs, err) })
	r.Eng.Run()
	for i, err := range errs {
		if !errors.Is(err, ErrReadOnly) {
			t.Errorf("op %d on read-only fs: %v", i, err)
		}
	}
	// Reads still work.
	if got := mustRead(t, r, h, 0, 1); len(got) != 1 {
		t.Error("read failed on read-only fs")
	}
}

func TestAtimeGeneratesWritesOnReadOnlyFS(t *testing.T) {
	// Section 3.1: even a read-only mount produces write requests —
	// inode bookkeeping flushed by the update policy.
	r, f := newFS(t)
	mustCreate(t, r, f, "/lib")
	h := mustOpen(t, r, f, "/lib")
	mustWrite(t, r, h, 0, 4)
	f.Sync(nil)
	r.Eng.Run()
	f.SetReadOnly(true)
	r.Driver.ReadStats() // clear

	mustRead(t, r, h, 0, 4)
	f.Sync(nil)
	r.Eng.Run()
	st := r.Driver.ReadStats()
	if st.WriteSide.Count() == 0 {
		t.Error("read-only workload produced no bookkeeping writes")
	}
}

func TestNoAtimeSuppressesBookkeeping(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Newfs(r.Eng, r.Driver, 0, Params{NoAtime: true})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	mustCreate(t, r, f, "/a")
	h := mustOpen(t, r, f, "/a")
	mustWrite(t, r, h, 0, 2)
	f.Sync(nil)
	r.Eng.Run()
	r.Driver.ReadStats()
	mustRead(t, r, h, 0, 2)
	f.Sync(nil)
	r.Eng.Run()
	if n := r.Driver.ReadStats().WriteSide.Count(); n != 0 {
		t.Errorf("noatime read produced %d writes", n)
	}
}

func TestOutOfSpace(t *testing.T) {
	// A one-group partition fills up quickly.
	r, err := rig.New(rig.Options{ReservedCyls: 48, PartitionBlocks: []int64{340}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Newfs(r.Eng, r.Driver, 0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	mustCreate(t, r, f, "/fill")
	h := mustOpen(t, r, f, "/fill")
	var werr error
	// Leave one block for the file's own indirect block.
	h.WriteAt(0, f.FreeBlocks()-1, func(err error) { werr = err })
	r.Eng.Run()
	if werr != nil && !errors.Is(werr, ErrFileTooBig) {
		t.Fatalf("filling write failed: %v", werr)
	}
	// Now allocate one more block somewhere.
	mustCreate(t, r, f, "/more")
	h2 := mustOpen(t, r, f, "/more")
	remaining := f.FreeBlocks()
	h2.WriteAt(0, remaining+1, func(err error) { werr = err })
	r.Eng.Run()
	if !errors.Is(werr, ErrNoSpace) && !errors.Is(werr, ErrFileTooBig) {
		t.Errorf("overfull write: %v", werr)
	}
}

func TestManyFilesDirectoryGrowth(t *testing.T) {
	// More entries than fit in one directory block (256 per 8K block).
	r, f := newFS(t)
	mustMkdir(t, r, f, "/big")
	for i := 0; i < 300; i++ {
		mustCreate(t, r, f, "/big/"+name3(i))
	}
	var names []string
	f.ReadDir("/big", func(ns []string, err error) { names = ns })
	r.Eng.Run()
	if len(names) != 300 {
		t.Fatalf("%d entries", len(names))
	}
	// Lookups of entries in the second block still work.
	var lerr error
	f.Lookup("/big/"+name3(299), func(_ Ino, err error) { lerr = err })
	r.Eng.Run()
	if lerr != nil {
		t.Errorf("lookup in grown directory: %v", lerr)
	}
}

func name3(i int) string {
	return string([]byte{'f', byte('0' + i/100), byte('0' + (i/10)%10), byte('0' + i%10)})
}

func TestSyncMountRoundTrip(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/home")
	mustMkdir(t, r, f, "/home/amy")
	ino := mustCreate(t, r, f, "/home/amy/notes")
	h := mustOpen(t, r, f, "/home/amy/notes")
	mustWrite(t, r, h, 0, NDirect+5) // exercise the indirect block
	f.Sync(nil)
	r.Eng.Run()

	var f2 *FS
	var merr error
	Mount(r.Eng, r.Driver, 0, Params{}, func(m *FS, err error) { f2, merr = m, err })
	r.Eng.Run()
	if merr != nil {
		t.Fatal(merr)
	}
	var got Ino
	f2.Lookup("/home/amy/notes", func(i Ino, err error) {
		if err != nil {
			t.Errorf("lookup after mount: %v", err)
		}
		got = i
	})
	r.Eng.Run()
	if got != ino {
		t.Fatalf("remounted inode = %d, want %d", got, ino)
	}
	h2, err := f2.OpenIno(got)
	if err != nil {
		t.Fatal(err)
	}
	if h2.SizeBlocks() != NDirect+5 {
		t.Fatalf("remounted size = %d", h2.SizeBlocks())
	}
	for i, blk := range mustRead(t, r, h2, 0, NDirect+5) {
		if !f2.CheckPattern(blk, got, int64(i)) {
			t.Fatalf("remounted block %d corrupt", i)
		}
	}
	if f2.FreeBlocks() != f.FreeBlocks() {
		t.Errorf("free blocks: remounted %d, original %d", f2.FreeBlocks(), f.FreeBlocks())
	}
}

func TestMountRequiresValidImage(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	var merr error
	Mount(r.Eng, r.Driver, 0, Params{}, func(_ *FS, err error) { merr = err })
	r.Eng.Run()
	if merr == nil {
		t.Fatal("mount of unformatted partition succeeded")
	}
}

func TestRearrangementPreservesFileContents(t *testing.T) {
	// The end-to-end integrity property: copy a file's hot blocks into
	// the reserved region via the driver, overwrite some through the fs,
	// clean, remount — contents must survive every step.
	r, f := newFS(t)
	mustCreate(t, r, f, "/hot")
	h := mustOpen(t, r, f, "/hot")
	mustWrite(t, r, h, 0, 8)
	f.Sync(nil)
	r.Eng.Run()

	// Rearrange the file's first four blocks (original physical addrs).
	p, _ := r.Label.Partition(0)
	nd := f.inodes[h.Ino()]
	slots := r.Driver.ReservedSlots()
	for i := 0; i < 4; i++ {
		orig := r.Label.MapVirtual(p.Start + nd.direct[i]*16)
		var cerr error
		r.Driver.BCopy(orig, slots[0][i], func(err error) { cerr = err })
		r.Eng.Run()
		if cerr != nil {
			t.Fatal(cerr)
		}
	}
	// Reads go through the redirect and verify.
	for i, blk := range mustRead(t, r, h, 0, 8) {
		if !f.CheckPattern(blk, h.Ino(), int64(i)) {
			t.Fatalf("block %d corrupt after rearrangement", i)
		}
	}
	// Overwrite block 1 (dirty in reserved region), then clean.
	mustWrite(t, r, h, 1, 1)
	f.Sync(nil)
	r.Eng.Run()
	var clerr error
	r.Driver.Clean(func(err error) { clerr = err })
	r.Eng.Run()
	if clerr != nil {
		t.Fatal(clerr)
	}
	// Remount from disk and verify everything.
	var f2 *FS
	Mount(r.Eng, r.Driver, 0, Params{}, func(m *FS, err error) {
		if err != nil {
			t.Fatalf("mount: %v", err)
		}
		f2 = m
	})
	r.Eng.Run()
	h2, err := f2.OpenIno(h.Ino())
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range mustRead(t, r, h2, 0, 8) {
		if !f2.CheckPattern(blk, h.Ino(), int64(i)) {
			t.Fatalf("block %d corrupt after clean+remount", i)
		}
	}
}

func TestCacheAbsorbsRepeatedReads(t *testing.T) {
	r, f := newFS(t)
	mustCreate(t, r, f, "/popular")
	h := mustOpen(t, r, f, "/popular")
	mustWrite(t, r, h, 0, 2)
	mustRead(t, r, h, 0, 2)
	hits0, misses0, _ := f.Cache().Stats()
	mustRead(t, r, h, 0, 2)
	hits1, misses1, _ := f.Cache().Stats()
	if misses1 != misses0 {
		t.Errorf("second read missed (%d -> %d)", misses0, misses1)
	}
	if hits1 <= hits0 {
		t.Error("second read did not hit the cache")
	}
}

func TestStrideOneAllocatesContiguously(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Newfs(r.Eng, r.Driver, 0, Params{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	mustCreate(t, r, f, "/seq")
	h := mustOpen(t, r, f, "/seq")
	mustWrite(t, r, h, 0, 6)
	nd := f.inodes[h.Ino()]
	for i := 1; i < 6; i++ {
		if nd.direct[i] != nd.direct[i-1]+1 {
			t.Errorf("stride 1: blocks %d and %d not contiguous (%d, %d)",
				i-1, i, nd.direct[i-1], nd.direct[i])
		}
	}
}

func TestSyncDataWritesThrough(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Newfs(r.Eng, r.Driver, 0, Params{SyncData: true})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	mustCreate(t, r, f, "/nfs")
	h := mustOpen(t, r, f, "/nfs")
	r.Driver.ReadStats()
	mustWrite(t, r, h, 0, 3)
	// The three data blocks hit the disk synchronously (metadata stays
	// delayed).
	if n := r.Driver.ReadStats().WriteSide.Count(); n != 3 {
		t.Errorf("%d synchronous writes, want 3 data blocks", n)
	}
	// Contents verify.
	for i, blk := range mustRead(t, r, h, 0, 3) {
		if !f.CheckPattern(blk, h.Ino(), int64(i)) {
			t.Errorf("block %d corrupt", i)
		}
	}
}

func TestTouchWalkDirtiesDirectoryInodes(t *testing.T) {
	r, f := newFS(t)
	mustMkdir(t, r, f, "/deep")
	mustMkdir(t, r, f, "/deep/er")
	mustCreate(t, r, f, "/deep/er/file")
	f.Sync(nil)
	r.Eng.Run()
	if n := f.MetaCache().DirtyLen(); n != 0 {
		t.Fatalf("%d dirty before lookup", n)
	}
	var lerr error
	f.Lookup("/deep/er/file", func(_ Ino, err error) { lerr = err })
	r.Eng.Run()
	if lerr != nil {
		t.Fatal(lerr)
	}
	// Root, /deep and /deep/er inode blocks dirtied (some may share an
	// inode block; at least one distinct block must be dirty).
	if n := f.MetaCache().DirtyLen(); n == 0 {
		t.Error("path walk dirtied no directory access times")
	}
}

func TestFreeBlocksNeverNegative(t *testing.T) {
	r, f := newFS(t)
	for i := 0; i < 30; i++ {
		path := "/churn" + name3(i)
		mustCreate(t, r, f, path)
		h := mustOpen(t, r, f, path)
		mustWrite(t, r, h, 0, 5)
		if i%2 == 0 {
			f.Remove(path, nil)
			r.Eng.Run()
		}
		if f.FreeBlocks() < 0 || f.FreeBlocks() > f.TotalBlocks() {
			t.Fatalf("free blocks = %d of %d", f.FreeBlocks(), f.TotalBlocks())
		}
	}
}

// A fully cached single-block read on a noatime mount must cost
// exactly one allocation: the result slice handed to done. The walk
// record and its callbacks are pooled (see readReq), and the cache's
// hit delivery is pooled one layer down — this is the floor that keeps
// read-heavy simulated workloads out of the garbage collector.
func TestReadAtWarmOneAlloc(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Newfs(r.Eng, r.Driver, 0, Params{NoAtime: true})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()
	mustCreate(t, r, f, "/warm")
	h := mustOpen(t, r, f, "/warm")
	mustWrite(t, r, h, 0, 1)
	done := func(out [][]byte, err error) {
		if err != nil || len(out) != 1 {
			t.Fatal("bad read completion")
		}
	}
	op := func() {
		h.ReadAt(0, 1, done)
		r.Eng.Run()
	}
	for i := 0; i < 16; i++ {
		op()
	}
	if n := testing.AllocsPerRun(200, op); n > 1 {
		t.Errorf("warm ReadAt round trip: %v allocs, want at most 1 (the result slice)", n)
	}
}
