package fs

import (
	"fmt"
	"strings"
)

// File system operations. Every operation issues the block I/O a real
// FFS implementation would — inode-table blocks, directory data blocks,
// indirect blocks, data blocks, cylinder-group descriptors — through the
// buffer cache, in kernel order (metadata lookups first), and completes
// asynchronously in simulated time.

// Handle is an open file or directory.
type Handle struct {
	f   *FS
	ino Ino
}

// Ino returns the handle's inode number.
func (h *Handle) Ino() Ino { return h.ino }

// IsDir reports whether the handle is a directory.
func (h *Handle) IsDir() bool {
	nd, ok := h.f.inodes[h.ino]
	return ok && nd.dir
}

// SizeBlocks returns the file's size in blocks (0 for directories).
func (h *Handle) SizeBlocks() int64 {
	nd, ok := h.f.inodes[h.ino]
	if !ok || nd.dir {
		return 0
	}
	return nd.size
}

// split parses a path into components.
func split(path string) []string {
	var out []string
	for _, c := range strings.Split(path, "/") {
		if c != "" && c != "." {
			out = append(out, c)
		}
	}
	return out
}

// resolve walks a path from the root, building the read steps of the
// walk (inode-table blocks and directory data blocks). It returns the
// parent directory and the target inode; target is nil when the final
// component does not exist (parent is still returned so callers can
// create it).
func (f *FS) resolve(path string) (parent *inode, name string, target *inode, rsteps []step, err error) {
	comps := split(path)
	cur := f.inodes[RootIno]
	rsteps = append(rsteps, step{block: f.inodeBlockOf(RootIno), meta: true})
	if len(comps) == 0 {
		return nil, "", cur, rsteps, nil
	}
	for i, comp := range comps {
		if !cur.dir {
			return nil, "", nil, rsteps, fmt.Errorf("%w: %q", ErrNotDir, path)
		}
		slot := indexOf(cur.order, comp)
		// A real lookup scans directory blocks until the entry (or the
		// end, for a miss).
		lastBlk := int(f.nblocksOf(cur)) - 1
		if slot >= 0 {
			lastBlk = slot / f.entriesPerBlock()
		}
		for b := 0; b <= lastBlk; b++ {
			if blk := f.blockOf(cur, int64(b)); blk >= 0 {
				rsteps = append(rsteps, step{block: blk, meta: true})
			}
		}
		if slot < 0 {
			if i == len(comps)-1 {
				return cur, comp, nil, rsteps, nil
			}
			return nil, "", nil, rsteps, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		next := f.inodes[cur.entries[comp]]
		if next == nil {
			return nil, "", nil, rsteps, fmt.Errorf("%w: %q (dangling entry)", ErrNotFound, path)
		}
		rsteps = append(rsteps, step{block: f.inodeBlockOf(next.ino), meta: true})
		parent, name, cur = cur, comp, next
	}
	return parent, name, cur, rsteps, nil
}

func indexOf(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}

// Lookup resolves a path to an inode number, performing the walk's I/O.
// Unless the file system was created with NoAtime, the walk dirties the
// access times of the directories it traverses — bookkeeping writes that
// occur even on read-only mounts (Section 3.1 of the paper).
func (f *FS) Lookup(path string, done func(Ino, error)) {
	_, _, target, rsteps, err := f.resolve(path)
	if err == nil && target == nil {
		err = fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if err != nil {
		f.fail2(done, err)
		return
	}
	f.runSeq(rsteps, func(serr error) {
		if serr == nil && !f.prm.NoAtime {
			f.touchWalk(path)
		}
		if done != nil {
			done(target.ino, serr)
		}
	})
}

// touchWalk dirties the inode blocks of the directories along a path
// (access-time updates); the update daemon flushes them later.
func (f *FS) touchWalk(path string) {
	cur := f.inodes[RootIno]
	ib := f.inodeBlockOf(RootIno)
	f.meta.WriteOwned(ib, f.encodeInodeBlock(ib), nil)
	for _, comp := range split(path) {
		next, ok := cur.entries[comp]
		if !ok {
			return
		}
		nd := f.inodes[next]
		if nd == nil || !nd.dir {
			return
		}
		ib := f.inodeBlockOf(nd.ino)
		f.meta.WriteOwned(ib, f.encodeInodeBlock(ib), nil)
		cur = nd
	}
}

// Open resolves a path and returns a handle.
func (f *FS) Open(path string, done func(*Handle, error)) {
	f.Lookup(path, func(ino Ino, err error) {
		if done == nil {
			return
		}
		if err != nil {
			done(nil, err)
			return
		}
		done(&Handle{f: f, ino: ino}, nil)
	})
}

// OpenIno returns a handle for a known inode number without any I/O
// (the analogue of holding an open file descriptor).
func (f *FS) OpenIno(ino Ino) (*Handle, error) {
	if _, ok := f.inodes[ino]; !ok {
		return nil, fmt.Errorf("%w: inode %d", ErrNotFound, ino)
	}
	return &Handle{f: f, ino: ino}, nil
}

// Create creates a regular file.
func (f *FS) Create(path string, done func(Ino, error)) { f.create(path, false, done) }

// Mkdir creates a directory.
func (f *FS) Mkdir(path string, done func(Ino, error)) { f.create(path, true, done) }

func (f *FS) create(path string, dir bool, done func(Ino, error)) {
	if f.readOnly {
		f.fail2(done, ErrReadOnly)
		return
	}
	parent, name, target, rsteps, err := f.resolve(path)
	if err != nil {
		f.fail2(done, err)
		return
	}
	if target != nil {
		f.fail2(done, fmt.Errorf("%w: %q", ErrExists, path))
		return
	}
	if err := checkName(name); err != nil {
		f.fail2(done, err)
		return
	}
	perGroup := len(f.groups[0].inodeUsed)
	ino, err := f.allocInode(int(parent.ino)/perGroup, dir)
	if err != nil {
		f.fail2(done, err)
		return
	}
	nd := &inode{ino: ino, dir: dir, indirect: -1}
	for i := range nd.direct {
		nd.direct[i] = -1
	}
	if dir {
		nd.entries = make(map[string]Ino)
	}
	f.inodes[ino] = nd

	dirty := map[int]bool{int(ino) / perGroup: true}
	wsteps, err := f.addEntry(parent, name, ino, dirty)
	if err != nil {
		f.freeInode(ino)
		f.fail2(done, err)
		return
	}
	wsteps = append(wsteps, step{block: f.inodeBlockOf(ino), data: f.encodeInodeBlock(f.inodeBlockOf(ino)), meta: true})
	wsteps = append(wsteps, f.descSteps(dirty)...)
	f.runSeq(append(rsteps, wsteps...), func(serr error) {
		if done != nil {
			done(ino, serr)
		}
	})
}

// addEntry appends a directory entry, allocating a new directory data
// block when the current last block is full. It returns the write steps.
func (f *FS) addEntry(parent *inode, name string, ino Ino, dirty map[int]bool) ([]step, error) {
	per := f.entriesPerBlock()
	slot := len(parent.order)
	blkIdx := slot / per
	if slot%per == 0 {
		// Need a fresh directory block.
		if int64(blkIdx) >= int64(NDirect) {
			return nil, fmt.Errorf("%w: directory %d", ErrFileTooBig, parent.ino)
		}
		prev := int64(-1)
		if blkIdx > 0 {
			prev = parent.direct[blkIdx-1]
		}
		perGroup := len(f.groups[0].inodeUsed)
		b, err := f.allocData(int(parent.ino)/perGroup, prev)
		if err != nil {
			return nil, err
		}
		parent.direct[blkIdx] = b
		dirty[f.groupOf(b)] = true
	}
	parent.entries[name] = ino
	parent.order = append(parent.order, name)
	parent.size = int64(len(parent.order))
	return []step{
		{block: parent.direct[blkIdx], data: f.encodeDirBlock(parent, blkIdx), meta: true},
		{block: f.inodeBlockOf(parent.ino), data: f.encodeInodeBlock(f.inodeBlockOf(parent.ino)), meta: true},
	}, nil
}

// descSteps produces descriptor write-back steps for groups whose
// bitmaps changed.
func (f *FS) descSteps(dirty map[int]bool) []step {
	var out []step
	for gi := range f.groups {
		if dirty[gi] {
			out = append(out, step{block: f.groups[gi].base, data: f.encodeDescriptor(gi), meta: true})
		}
	}
	return out
}

// ReadDir lists a directory's entries in on-disk order, reading the
// directory's blocks.
func (f *FS) ReadDir(path string, done func([]string, error)) {
	_, _, target, rsteps, err := f.resolve(path)
	if err == nil && target == nil {
		err = fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if err == nil && !target.dir {
		err = fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	if err != nil {
		f.eng.After(0, func() {
			if done != nil {
				done(nil, err)
			}
		})
		return
	}
	for b, n := int64(0), f.nblocksOf(target); b < n; b++ {
		if blk := f.blockOf(target, b); blk >= 0 {
			rsteps = append(rsteps, step{block: blk, meta: true})
		}
	}
	names := append([]string(nil), target.order...)
	f.runSeq(rsteps, func(serr error) {
		if done != nil {
			done(names, serr)
		}
	})
}

// WriteAt writes (or overwrites) n blocks of the file starting at file
// block idx. Writing may extend the file, but not leave holes: idx must
// not exceed the current size. Block contents are the deterministic
// per-block pattern, so later reads can be integrity-checked.
func (h *Handle) WriteAt(idx, n int64, done func(error)) {
	f := h.f
	if f.readOnly {
		f.fail1(done, ErrReadOnly)
		return
	}
	nd := f.inodes[h.ino]
	if nd == nil {
		f.fail1(done, fmt.Errorf("%w: inode %d", ErrNotFound, h.ino))
		return
	}
	if nd.dir {
		f.fail1(done, ErrIsDir)
		return
	}
	if idx < 0 || n <= 0 || idx > nd.size {
		f.fail1(done, fmt.Errorf("%w: write [%d,+%d) of %d-block file", ErrBadRange, idx, n, nd.size))
		return
	}
	if idx+n > f.MaxFileBlocks() {
		f.fail1(done, ErrFileTooBig)
		return
	}
	if f.mxWrite != nil {
		start := f.eng.Now()
		inner := done
		done = func(err error) {
			f.mxWrite.Record(f.eng.Now() - start)
			if inner != nil {
				inner(err)
			}
		}
	}

	perGroup := len(f.groups[0].inodeUsed)
	gi := int(h.ino) / perGroup
	dirty := map[int]bool{}
	steps := []step{{block: f.inodeBlockOf(h.ino), meta: true}} // read inode first
	indirectTouched := false
	indirectRead := false

	for b := idx; b < idx+n; b++ {
		if b >= NDirect && nd.indirect < 0 {
			ib, err := f.allocData(gi, -1)
			if err != nil {
				f.fail1(done, err)
				return
			}
			nd.indirect = ib
			dirty[f.groupOf(ib)] = true
			indirectTouched = true
		}
		if b >= NDirect && !indirectRead && !indirectTouched {
			steps = append(steps, step{block: nd.indirect, meta: true})
			indirectRead = true
		}
		blk := f.blockOf(nd, b)
		if blk < 0 {
			prev := int64(-1)
			if b > 0 {
				prev = f.blockOf(nd, b-1)
			}
			var err error
			blk, err = f.allocData(gi, prev)
			if err != nil {
				f.fail1(done, err)
				return
			}
			dirty[f.groupOf(blk)] = true
			if b < NDirect {
				nd.direct[b] = blk
			} else {
				for int64(len(nd.iblock)) <= b-NDirect {
					nd.iblock = append(nd.iblock, -1)
				}
				nd.iblock[b-NDirect] = blk
				indirectTouched = true
			}
		}
		steps = append(steps, step{block: blk, data: f.dataPattern(h.ino, b)})
	}
	if idx+n > nd.size {
		nd.size = idx + n
	}
	if indirectTouched {
		steps = append(steps, step{block: nd.indirect, data: f.encodeIndirect(nd.iblock), meta: true})
	}
	// Inode update (size, mtime).
	steps = append(steps, step{block: f.inodeBlockOf(h.ino), data: f.encodeInodeBlock(f.inodeBlockOf(h.ino)), meta: true})
	steps = append(steps, f.descSteps(dirty)...)
	f.runSeq(steps, done)
}

// Append extends the file by n blocks.
func (h *Handle) Append(n int64, done func(error)) {
	h.WriteAt(h.SizeBlocks(), n, done)
}

// ReadAt reads n blocks starting at file block idx, returning one byte
// slice per block. Unless the file system was created with NoAtime, the
// read dirties the file's inode block (the access-time bookkeeping that
// generates write traffic even on read-only mounts).
func (h *Handle) ReadAt(idx, n int64, done func([][]byte, error)) {
	f := h.f
	nd := f.inodes[h.ino]
	fail := func(err error) {
		f.eng.After(0, func() {
			if done != nil {
				done(nil, err)
			}
		})
	}
	if nd == nil {
		fail(fmt.Errorf("%w: inode %d", ErrNotFound, h.ino))
		return
	}
	if nd.dir {
		fail(ErrIsDir)
		return
	}
	if idx < 0 || n <= 0 || idx+n > nd.size {
		fail(fmt.Errorf("%w: read [%d,+%d) of %d-block file", ErrBadRange, idx, n, nd.size))
		return
	}
	r := f.getRead()
	if f.mxRead != nil {
		r.startMS = f.eng.Now()
	}
	r.nd, r.ino, r.idx, r.n, r.b = nd, h.ino, idx, n, idx
	r.done = done
	r.out = make([][]byte, 0, n)
	r.meta[0] = f.inodeBlockOf(h.ino)
	r.mn, r.mi = 1, 0
	if idx+n > NDirect {
		r.meta[1], r.mn = nd.indirect, 2
	}
	f.meta.Read(r.meta[0], r.metaCB)
}

// readReq is one ReadAt in flight. A file read walks up to two
// metadata blocks and then each data block strictly in sequence, one
// cache read per completion; building that walk from closures
// allocated a fresh chain per call — the hottest allocation site in
// the whole stack, per the volume-scale profile. The record carries
// the walk state with two prebuilt callbacks instead, so only the
// result slice (whose ownership transfers to done) is still allocated
// per read.
type readReq struct {
	f      *FS
	next   *readReq
	nd     *inode
	ino    Ino
	idx, n int64
	b      int64 // next file block to read
	// startMS is the walk's start time, set only while read-latency
	// metrics are bound.
	startMS float64
	out     [][]byte
	done    func([][]byte, error)
	meta    [2]int64 // metadata prelude: inode block, then indirect
	mi, mn  int
	metaCB  func([]byte, error)
	dataCB  func([]byte, error)
}

// getRead pops a walk record off the pool, building its callbacks on
// first use.
func (f *FS) getRead() *readReq {
	r := f.freeRead
	if r == nil {
		r = &readReq{f: f}
		r.metaCB = func(_ []byte, err error) {
			if err != nil {
				r.finish(nil, err)
				return
			}
			if r.mi++; r.mi < r.mn {
				r.f.meta.Read(r.meta[r.mi], r.metaCB)
				return
			}
			r.step()
		}
		r.dataCB = func(data []byte, err error) {
			if err != nil {
				r.finish(nil, err)
				return
			}
			r.out = append(r.out, data)
			r.b++
			r.step()
		}
	} else {
		f.freeRead = r.next
	}
	return r
}

// step issues the next data-block read, or finishes the walk — with
// the access-time inode write-back first, exactly as before pooling.
func (r *readReq) step() {
	if r.b == r.idx+r.n {
		f := r.f
		if !f.prm.NoAtime {
			ib := f.inodeBlockOf(r.ino)
			f.meta.WriteOwned(ib, f.encodeInodeBlock(ib), nil)
		}
		r.finish(r.out, nil)
		return
	}
	r.f.cache.Read(r.f.blockOf(r.nd, r.b), r.dataCB)
}

// finish recycles the record before the completion callback runs, so
// the callback can issue a new read that reuses it.
func (r *readReq) finish(out [][]byte, err error) {
	f, done := r.f, r.done
	if f.mxRead != nil {
		f.mxRead.Record(f.eng.Now() - r.startMS)
	}
	r.nd, r.done, r.out = nil, nil, nil
	r.next, f.freeRead = f.freeRead, r
	if done != nil {
		done(out, err)
	}
}

// Remove deletes a file or an empty directory, freeing its blocks.
func (f *FS) Remove(path string, done func(error)) {
	if f.readOnly {
		f.fail1(done, ErrReadOnly)
		return
	}
	parent, name, target, rsteps, err := f.resolve(path)
	if err == nil && target == nil {
		err = fmt.Errorf("%w: %q", ErrNotFound, path)
	}
	if err == nil && parent == nil {
		err = fmt.Errorf("fs: cannot remove the root directory")
	}
	if err == nil && target.dir && len(target.order) > 0 {
		err = fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	if err != nil {
		f.fail1(done, err)
		return
	}

	dirty := map[int]bool{}
	// Free the target's blocks.
	for _, b := range f.fileBlocks(target) {
		f.freeData(b)
		f.cache.Invalidate(b)
		dirty[f.groupOf(b)] = true
	}
	if target.indirect >= 0 {
		f.freeData(target.indirect)
		f.meta.Invalidate(target.indirect)
		dirty[f.groupOf(target.indirect)] = true
	}
	targetIno := target.ino
	targetIB := f.inodeBlockOf(targetIno)
	perGroup := len(f.groups[0].inodeUsed)
	dirty[int(targetIno)/perGroup] = true
	f.freeInode(targetIno)

	// Remove the directory entry with swap-from-last compaction.
	per := f.entriesPerBlock()
	slot := indexOf(parent.order, name)
	last := len(parent.order) - 1
	lastName := parent.order[last]
	parent.order[slot] = lastName
	parent.order = parent.order[:last]
	delete(parent.entries, name)
	parent.size = int64(len(parent.order))

	var wsteps []step
	wsteps = append(wsteps, step{block: parent.direct[slot/per], data: f.encodeDirBlock(parent, slot/per), meta: true})
	if last/per != slot/per {
		wsteps = append(wsteps, step{block: parent.direct[last/per], data: f.encodeDirBlock(parent, last/per), meta: true})
	}
	// Free the parent's last directory block if it emptied.
	if last%per == 0 && last/per > 0 {
		freed := parent.direct[last/per]
		parent.direct[last/per] = -1
		f.freeData(freed)
		f.meta.Invalidate(freed)
		dirty[f.groupOf(freed)] = true
	}
	wsteps = append(wsteps,
		step{block: f.inodeBlockOf(parent.ino), data: f.encodeInodeBlock(f.inodeBlockOf(parent.ino)), meta: true},
		step{block: targetIB, data: f.encodeInodeBlock(targetIB), meta: true},
	)
	wsteps = append(wsteps, f.descSteps(dirty)...)
	f.runSeq(append(rsteps, wsteps...), done)
}

func (f *FS) fail1(done func(error), err error) {
	f.eng.After(0, func() {
		if done != nil {
			done(err)
		}
	})
}

func (f *FS) fail2(done func(Ino, error), err error) {
	f.eng.After(0, func() {
		if done != nil {
			done(0, err)
		}
	})
}
