package fs

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/rig"
	"repro/internal/sim"
)

// TestModelCheckedRandomOps drives the file system with a long random
// operation sequence while mirroring the expected state in a simple
// in-memory model, then syncs, rearranges the hottest blocks through
// the driver, remounts from the disk image, and verifies every file —
// existence, size, and byte-for-byte contents — against the model.
func TestModelCheckedRandomOps(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Newfs(r.Eng, r.Driver, 0, Params{})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run()

	type modelFile struct {
		ino    Ino
		blocks int64
	}
	model := make(map[string]*modelFile) // path -> state
	var dirs []string
	rnd := sim.NewRand(20260706)

	// A few directories to work under.
	for i := 0; i < 4; i++ {
		path := fmt.Sprintf("/dir%d", i)
		mustMkdir(t, r, f, path)
		dirs = append(dirs, path)
	}

	pick := func() (string, *modelFile) {
		if len(model) == 0 {
			return "", nil
		}
		k := rnd.Intn(len(model))
		for path, mf := range model {
			if k == 0 {
				return path, mf
			}
			k--
		}
		return "", nil
	}

	created := 0
	for op := 0; op < 400; op++ {
		switch p := rnd.Float64(); {
		case p < 0.35: // create a new file with initial content
			created++
			path := fmt.Sprintf("%s/f%04d", dirs[rnd.Intn(len(dirs))], created)
			blocks := int64(rnd.Intn(20)) + 1
			ino := mustCreate(t, r, f, path)
			h, _ := f.OpenIno(ino)
			mustWrite(t, r, h, 0, blocks)
			model[path] = &modelFile{ino: ino, blocks: blocks}
		case p < 0.60: // extend or overwrite an existing file
			path, mf := pick()
			if mf == nil {
				continue
			}
			h, err := f.OpenIno(mf.ino)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			at := rnd.Int63n(mf.blocks + 1) // may extend at exactly size
			n := int64(rnd.Intn(8)) + 1
			if at+n > f.MaxFileBlocks() {
				continue
			}
			mustWrite(t, r, h, at, n)
			if at+n > mf.blocks {
				mf.blocks = at + n
			}
		case p < 0.80: // read and verify a random range
			_, mf := pick()
			if mf == nil {
				continue
			}
			h, _ := f.OpenIno(mf.ino)
			at := rnd.Int63n(mf.blocks)
			n := rnd.Int63n(mf.blocks-at) + 1
			data := mustRead(t, r, h, at, n)
			for i, blk := range data {
				if !f.CheckPattern(blk, mf.ino, at+int64(i)) {
					t.Fatalf("op %d: block %d of ino %d corrupt", op, at+int64(i), mf.ino)
				}
			}
		case p < 0.90: // delete a file
			path, mf := pick()
			if mf == nil {
				continue
			}
			var derr error
			f.Remove(path, func(err error) { derr = err })
			r.Eng.Run()
			if derr != nil {
				t.Fatalf("op %d: remove %s: %v", op, path, derr)
			}
			delete(model, path)
		default: // periodic sync, as the update daemon would
			f.Sync(nil)
			r.Eng.Run()
		}
	}

	// Flush everything, then rearrange the hottest blocks.
	f.Sync(nil)
	r.Eng.Run()
	rear, err := core.New(r.Eng, r.Driver, core.Config{MaxBlocks: 300})
	if err != nil {
		t.Fatal(err)
	}
	rear.Poll()
	var installed int
	rear.Rearrange(func(n int, err error) {
		if err != nil {
			t.Fatalf("rearrange: %v", err)
		}
		installed = n
	})
	r.Eng.Run()
	if installed == 0 {
		t.Fatal("rearrangement installed nothing")
	}

	// Every file must verify against the model through the redirects.
	verify := func(fsys *FS, label string) {
		for path, mf := range model {
			var got Ino
			var lerr error
			fsys.Lookup(path, func(i Ino, err error) { got, lerr = i, err })
			r.Eng.Run()
			if lerr != nil {
				t.Fatalf("%s: lookup %s: %v", label, path, lerr)
			}
			if got != mf.ino {
				t.Fatalf("%s: %s resolved to ino %d, want %d", label, path, got, mf.ino)
			}
			h, err := fsys.OpenIno(got)
			if err != nil {
				t.Fatal(err)
			}
			if h.SizeBlocks() != mf.blocks {
				t.Fatalf("%s: %s has %d blocks, want %d", label, path, h.SizeBlocks(), mf.blocks)
			}
			for i, blk := range mustRead(t, r, h, 0, mf.blocks) {
				if !fsys.CheckPattern(blk, mf.ino, int64(i)) {
					t.Fatalf("%s: %s block %d corrupt", label, path, i)
				}
			}
		}
	}
	verify(f, "rearranged")

	// Remount from the on-disk image (through the block-table redirects)
	// and verify everything again.
	f.Sync(nil)
	r.Eng.Run()
	var f2 *FS
	Mount(r.Eng, r.Driver, 0, Params{}, func(m *FS, err error) {
		if err != nil {
			t.Fatalf("mount: %v", err)
		}
		f2 = m
	})
	r.Eng.Run()
	verify(f2, "remounted")

	// And once more after cleaning the reserved region.
	var cerr error
	r.Driver.Clean(func(err error) { cerr = err })
	r.Eng.Run()
	if cerr != nil {
		t.Fatal(cerr)
	}
	verify(f2, "cleaned")
}
