package fs

// Block and inode allocation, following the FFS policies the paper's
// file system uses (Section 1.1, [McKusick 84]):
//
//   - a new directory's inode goes to a roomy cylinder group, spreading
//     directories across the disk;
//   - a new file's inode goes to its directory's group;
//   - a file's data blocks go to its inode's group, successive blocks
//     separated by the rotational interleave stride;
//   - when a group fills, allocation spills to other groups by a
//     quadratic rehash.

// allocInode allocates an inode. preferGroup anchors files near their
// directory; spread=true (for new directories) walks a golden-ratio
// rotor over the groups so that directories — and with them their
// files' data — are spread across the whole disk surface, as FFS's
// new-directory policy does. (Without this, a fresh file system packs
// everything into the first few cylinders and seek distances collapse.)
func (f *FS) allocInode(preferGroup int, spread bool) (Ino, error) {
	gi := preferGroup
	if spread {
		f.dirRotor = (f.dirRotor + uint64(len(f.groups))*618/1000 + 1) % uint64(len(f.groups))
		gi = int(f.dirRotor)
	}
	n := len(f.groups)
	for attempt := 0; attempt < n; attempt++ {
		g2 := (gi + attempt*attempt) % n
		g := f.groups[g2]
		if g.freeIno == 0 {
			continue
		}
		for idx, used := range g.inodeUsed {
			if !used {
				g.inodeUsed[idx] = true
				g.freeIno--
				return f.inoOf(g2, idx), nil
			}
		}
	}
	return 0, ErrNoInodes
}

// freeInode releases an inode slot.
func (f *FS) freeInode(ino Ino) {
	perGroup := len(f.groups[0].inodeUsed)
	g := f.groups[int(ino)/perGroup]
	idx := int(ino) % perGroup
	if g.inodeUsed[idx] {
		g.inodeUsed[idx] = false
		g.freeIno++
	}
	delete(f.inodes, ino)
}

// allocData allocates one data block. preferGroup anchors blocks near
// the file's inode; prev (the file's previous block, or -1) enables the
// rotational interleave: the preferred position is prev + stride.
func (f *FS) allocData(preferGroup int, prev int64) (int64, error) {
	// Rotational placement: prev + stride within the same group.
	if prev >= 0 {
		pg := f.groupOf(prev)
		cand := prev + int64(f.prm.Stride)
		if f.groupOf(cand) == pg && cand < f.groups[pg].end {
			g := f.groups[pg]
			if cand >= g.dataStart && !g.dataUsed[cand-g.dataStart] {
				g.dataUsed[cand-g.dataStart] = true
				g.freeData--
				return cand, nil
			}
		}
	}
	n := len(f.groups)
	for attempt := 0; attempt < n; attempt++ {
		gi := (preferGroup + attempt*attempt) % n
		g := f.groups[gi]
		if g.freeData == 0 {
			continue
		}
		// Next-fit from the group rotor.
		size := int64(len(g.dataUsed))
		for i := int64(0); i < size; i++ {
			pos := (g.rotor + i) % size
			if !g.dataUsed[pos] {
				g.dataUsed[pos] = true
				g.freeData--
				g.rotor = (pos + 1) % size
				return g.dataStart + pos, nil
			}
		}
	}
	return 0, ErrNoSpace
}

// freeData releases a data block.
func (f *FS) freeData(b int64) {
	g := f.groups[f.groupOf(b)]
	pos := b - g.dataStart
	if pos < 0 || pos >= int64(len(g.dataUsed)) {
		return // metadata block; never freed
	}
	if g.dataUsed[pos] {
		g.dataUsed[pos] = false
		g.freeData++
	}
}

// blockOf returns the partition block holding file block idx of nd, or
// -1 if the index is unallocated.
func (f *FS) blockOf(nd *inode, idx int64) int64 {
	if idx < NDirect {
		return nd.direct[idx]
	}
	i := idx - NDirect
	if nd.indirect < 0 || i >= int64(len(nd.iblock)) {
		return -1
	}
	return nd.iblock[i]
}

// nblocksOf returns the number of data blocks a file or directory
// occupies. A regular file's inode size field counts blocks; a
// directory's counts entries.
func (f *FS) nblocksOf(nd *inode) int64 {
	if nd.dir {
		per := int64(f.entriesPerBlock())
		return (nd.size + per - 1) / per
	}
	return nd.size
}

// fileBlocks returns all allocated data blocks of a file, in file order.
func (f *FS) fileBlocks(nd *inode) []int64 {
	var out []int64
	for i, n := int64(0), f.nblocksOf(nd); i < n; i++ {
		if b := f.blockOf(nd, i); b >= 0 {
			out = append(out, b)
		}
	}
	return out
}
