// Package telemetry is the simulation stack's observability layer: a
// deterministic, low-overhead event stream describing every request's
// lifecycle through the driver, plus a periodic sampler that turns live
// model state into a time series.
//
// The design mirrors the paper's own instrumentation (Section 4.1.5
// measured every request's seek, queue, and service time), but exposes
// it as data instead of end-of-run aggregates:
//
//   - The driver emits Events into a pluggable Sink: one KindRequest
//     event per file system block request (the generalisation of the
//     old driver tap) and one KindSpan event per completed device
//     operation, carrying the request's whole lifecycle — arrival,
//     queue exit (dispatch), seek, rotation, transfer, completion — in
//     simulated time.
//   - A Collector buffers one job's stream in memory as JSONL and its
//     sampler output as CSV rows. Jobs on the parallel runner each own
//     a private Collector; concatenating buffers in job order makes the
//     combined output byte-identical for any worker count.
//
// Determinism rules: all times are simulated time, all values derive
// from model state, and encoding uses strconv (shortest round-trip
// floats) — never maps, wall clocks, or pointer identities. A nil sink
// costs one pointer comparison per request; nothing is formatted or
// allocated unless a sink is attached.
package telemetry

import (
	"io"
	"strconv"
)

// Kind discriminates event stream entries.
type Kind uint8

const (
	// KindRequest is one file system block request as issued to the
	// driver, before any address translation: the event the old
	// driver tap reported.
	KindRequest Kind = iota + 1
	// KindSpan is one completed device operation with its full
	// lifecycle timings.
	KindSpan
	// KindFault is one fault-handling action taken by the driver: a
	// retry of a transient error, a bad-block remap, an unrecoverable
	// failure, or a simulated power loss.
	KindFault
)

// Event is one entry of the telemetry stream. The driver reuses a
// single Event value across emissions, so sinks must copy the fields
// they retain and must not hold the pointer past the call.
type Event struct {
	Kind Kind

	// Disk tags events of one member disk of a multi-disk volume,
	// stored 1-based so the zero value means "untagged" (single-disk
	// stacks). TagDisk sets it; the JSONL encoding emits the 0-based
	// disk index, and omits the key entirely when untagged so
	// single-disk streams are byte-identical to before the field
	// existed.
	Disk int

	// Write is the request direction (both kinds).
	Write bool

	// KindRequest fields: arrival time and the pre-translation
	// partition-relative address.
	TimeMS float64
	Part   int
	Block  int64

	// KindSpan fields.
	//
	// Internal marks driver-generated operations (block movement and
	// block table writes); Redirected marks requests the block table
	// sent to the reserved region; BufferHit marks reads served from
	// the drive's read-ahead buffer.
	Internal   bool
	Redirected bool
	BufferHit  bool
	// Orig is the original (pre-redirect) physical sector of the
	// containing block; Sector is the serviced physical sector.
	Orig   int64
	Sector int64
	// Count is the request size in sectors.
	Count int
	// QueueDepth is the number of operations ahead of this one
	// (queued plus in service) when it entered the device queue.
	QueueDepth int
	// SeekDist is the head movement in cylinders.
	SeekDist int
	// Lifecycle timestamps and service components, all in simulated
	// milliseconds: the request arrived at ArriveMS, left the queue at
	// DispatchMS, then spent SeekMS seeking, RotMS in rotational
	// latency, and TransferMS transferring, completing at CompleteMS.
	ArriveMS   float64
	DispatchMS float64
	SeekMS     float64
	RotMS      float64
	TransferMS float64
	CompleteMS float64

	// KindFault fields: the fault class reported by the device
	// ("transient", "media", "crash"), the driver's response ("retry",
	// "remap", "fail", "crash"), and which service attempt of the
	// operation this was (0 = first issue). Sector, Count, Write, and
	// TimeMS are shared with the other kinds.
	Class   string
	Action  string
	Attempt int
}

// Sink receives telemetry events. Implementations are called on the
// simulation goroutine and must not block; they must copy any data
// they retain (the *Event is reused by the emitter).
type Sink interface {
	Event(e *Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(e *Event)

// Event implements Sink.
func (f SinkFunc) Event(e *Event) { f(e) }

// Multi fans events out to several sinks in order. Nil sinks are
// skipped, so callers can compose optional consumers without checks.
func Multi(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiSink(live)
}

type multiSink []Sink

func (m multiSink) Event(e *Event) {
	for _, s := range m {
		s.Event(e)
	}
}

// Discard is a Sink that drops every event. It keeps the emission path
// fully exercised (encoding excluded) — useful for overhead tests.
var Discard Sink = SinkFunc(func(*Event) {})

// Ring is a fixed-capacity sink retaining the most recent events, for
// tests and interactive inspection.
type Ring struct {
	buf   []Event
	next  int
	total int64
}

// NewRing returns a ring sink holding the last n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Event implements Sink.
func (r *Ring) Event(e *Event) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, *e)
		return
	}
	r.buf[r.next] = *e
	r.next = (r.next + 1) % cap(r.buf)
}

// Total returns how many events were observed (including evicted ones).
func (r *Ring) Total() int64 { return r.total }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// AppendJSONL appends the one-line JSON encoding of e (with trailing
// newline) to b and returns the extended slice. The encoding is
// deterministic: fixed key order, shortest round-trip floats, booleans
// as 0/1.
func AppendJSONL(b []byte, e *Event) []byte {
	switch e.Kind {
	case KindRequest:
		b = append(b, `{"k":"req","t":`...)
		b = appendFloat(b, e.TimeMS)
		b = append(b, `,"w":`...)
		b = appendBool(b, e.Write)
		b = append(b, `,"part":`...)
		b = strconv.AppendInt(b, int64(e.Part), 10)
		b = append(b, `,"blk":`...)
		b = strconv.AppendInt(b, e.Block, 10)
	case KindSpan:
		b = append(b, `{"k":"span","w":`...)
		b = appendBool(b, e.Write)
		b = append(b, `,"int":`...)
		b = appendBool(b, e.Internal)
		b = append(b, `,"orig":`...)
		b = strconv.AppendInt(b, e.Orig, 10)
		b = append(b, `,"sec":`...)
		b = strconv.AppendInt(b, e.Sector, 10)
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.Count), 10)
		b = append(b, `,"qd":`...)
		b = strconv.AppendInt(b, int64(e.QueueDepth), 10)
		b = append(b, `,"arr":`...)
		b = appendFloat(b, e.ArriveMS)
		b = append(b, `,"disp":`...)
		b = appendFloat(b, e.DispatchMS)
		b = append(b, `,"seek":`...)
		b = appendFloat(b, e.SeekMS)
		b = append(b, `,"rot":`...)
		b = appendFloat(b, e.RotMS)
		b = append(b, `,"xfer":`...)
		b = appendFloat(b, e.TransferMS)
		b = append(b, `,"done":`...)
		b = appendFloat(b, e.CompleteMS)
		b = append(b, `,"dist":`...)
		b = strconv.AppendInt(b, int64(e.SeekDist), 10)
		b = append(b, `,"redir":`...)
		b = appendBool(b, e.Redirected)
		b = append(b, `,"bh":`...)
		b = appendBool(b, e.BufferHit)
	case KindFault:
		b = append(b, `{"k":"fault","t":`...)
		b = appendFloat(b, e.TimeMS)
		b = append(b, `,"w":`...)
		b = appendBool(b, e.Write)
		b = append(b, `,"sec":`...)
		b = strconv.AppendInt(b, e.Sector, 10)
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, int64(e.Count), 10)
		b = append(b, `,"class":"`...)
		b = append(b, e.Class...)
		b = append(b, `","act":"`...)
		b = append(b, e.Action...)
		b = append(b, `","try":`...)
		b = strconv.AppendInt(b, int64(e.Attempt), 10)
	default:
		b = append(b, `{"k":"unknown"`...)
	}
	if e.Disk > 0 {
		b = append(b, `,"disk":`...)
		b = strconv.AppendInt(b, int64(e.Disk-1), 10)
	}
	return append(b, '}', '\n')
}

// TagDisk wraps a sink so every event passing through carries the given
// 0-based disk index. A volume wraps its shared sink once per member so
// the merged stream stays attributable. The tag is restored to the
// event's prior value after the inner sink returns, because emitters
// reuse one Event value across sinks.
func TagDisk(disk int, s Sink) Sink {
	if s == nil {
		return nil
	}
	return SinkFunc(func(e *Event) {
		prev := e.Disk
		e.Disk = disk + 1
		s.Event(e)
		e.Disk = prev
	})
}

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, '1')
	}
	return append(b, '0')
}

// WriterSink encodes every event as JSONL into an io.Writer through an
// internal buffer. It is for streaming single-run capture; parallel
// harness jobs use Collectors instead so output stays deterministic.
type WriterSink struct {
	w   io.Writer
	buf []byte
	err error
}

// writerSinkFlushBytes is the buffered threshold before writing through.
const writerSinkFlushBytes = 32 * 1024

// NewWriterSink returns a sink writing JSONL to w.
func NewWriterSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Event implements Sink.
func (s *WriterSink) Event(e *Event) {
	if s.err != nil {
		return
	}
	s.buf = AppendJSONL(s.buf, e)
	if len(s.buf) >= writerSinkFlushBytes {
		s.flush()
	}
}

func (s *WriterSink) flush() {
	if len(s.buf) == 0 || s.err != nil {
		return
	}
	_, s.err = s.w.Write(s.buf)
	s.buf = s.buf[:0]
}

// Flush writes any buffered bytes through and reports the first write
// error encountered.
func (s *WriterSink) Flush() error {
	s.flush()
	return s.err
}

// Close flushes; it exists so the sink satisfies io.Closer in pipelines.
func (s *WriterSink) Close() error { return s.Flush() }
