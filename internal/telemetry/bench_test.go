package telemetry_test

import (
	"context"
	"testing"

	"repro/internal/experiment"
	"repro/internal/telemetry"
)

// The overhead benchmarks run the same one-day system-fs experiment
// with telemetry fully off (nil sink in the driver) and fully on
// (spans + hourly sampling), so
//
//	go test ./internal/telemetry -bench Execute -benchtime 3x
//
// compares the two directly. The disabled path is the default for every
// harness run, and the acceptance bar is that enabling spans costs only
// the encoding of its own output.
func benchExecute(b *testing.B, opts *telemetry.Options) {
	s := experiment.Setup{
		DiskName: "toshiba", FSName: "system",
		Days: 1, WindowMS: 5 * 60 * 1000,
	}
	for i := 0; i < b.N; i++ {
		ctx := context.Background()
		var col *telemetry.Collector
		if opts != nil {
			col = telemetry.NewCollector("bench", *opts)
			ctx = telemetry.NewContext(ctx, col)
		}
		run, err := experiment.Execute(ctx, s)
		if err != nil {
			b.Fatal(err)
		}
		if len(run.Days) != 1 {
			b.Fatalf("got %d days", len(run.Days))
		}
		if opts == nil {
			continue
		}
		// The enabled run must actually have captured telemetry —
		// otherwise the benchmark compares nothing.
		if opts.Spans && len(col.TraceJSONL()) == 0 {
			b.Fatal("no spans captured")
		}
		if opts.SamplePeriodMS > 0 && col.Samples() == 0 {
			b.Fatal("no samples captured")
		}
	}
}

func BenchmarkExecuteTelemetryOff(b *testing.B) {
	benchExecute(b, nil)
}

func BenchmarkExecuteTelemetryOn(b *testing.B) {
	benchExecute(b, &telemetry.Options{Spans: true, SamplePeriodMS: 60 * 1000})
}

func BenchmarkAppendJSONLSpan(b *testing.B) {
	e := &telemetry.Event{
		Kind: telemetry.KindSpan, Write: true, Orig: 146704, Sector: 16,
		Count: 16, QueueDepth: 2, SeekDist: 120, ArriveMS: 100.5,
		DispatchMS: 101.25, SeekMS: 7.5, RotMS: 8.3, TransferMS: 1.9,
		CompleteMS: 118.95,
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = telemetry.AppendJSONL(buf[:0], e)
	}
}
