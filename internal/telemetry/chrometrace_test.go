package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// buildSpanJSONL renders a small mixed stream through the real encoder,
// so the converter is tested against the actual JSONL schema.
func buildSpanJSONL(t *testing.T) []byte {
	t.Helper()
	var b []byte
	b = AppendJSONL(b, &Event{Kind: KindRequest, TimeMS: 1, Part: 0, Block: 9})
	b = AppendJSONL(b, &Event{
		Kind: KindSpan, Write: false, Orig: 100, Sector: 100, Count: 8,
		QueueDepth: 2, ArriveMS: 1, DispatchMS: 1.5, SeekMS: 4, RotMS: 5,
		TransferMS: 0.5, CompleteMS: 11, SeekDist: 40,
	})
	b = AppendJSONL(b, &Event{
		Kind: KindSpan, Write: true, Internal: true, Disk: 3, Sector: 7,
		Count: 1, ArriveMS: 12, DispatchMS: 12, CompleteMS: 13, Redirected: true,
	})
	b = AppendJSONL(b, &Event{
		Kind: KindFault, TimeMS: 20, Sector: 55, Count: 1, Write: true,
		Class: "transient", Action: "retry", Attempt: 1, Disk: 3,
	})
	return b
}

func TestWriteChromeTrace(t *testing.T) {
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, bytes.NewReader(buildSpanJSONL(t))); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(out.Bytes(), &events); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	byName := map[string][]map[string]any{}
	for _, e := range events {
		name, _ := e["name"].(string)
		byName[name] = append(byName[name], e)
	}
	read := byName["read"]
	if len(read) != 1 {
		t.Fatalf("want 1 read event, got %d", len(read))
	}
	// ts/dur are the service interval in microseconds.
	if read[0]["ts"].(float64) != 1500 || read[0]["dur"].(float64) != 9500 {
		t.Errorf("read ts/dur = %v/%v, want 1500/9500", read[0]["ts"], read[0]["dur"])
	}
	args := read[0]["args"].(map[string]any)
	if args["queue_ms"].(float64) != 0.5 || args["seek_ms"].(float64) != 4 {
		t.Errorf("read args = %v", args)
	}
	iw := byName["internal write"]
	if len(iw) != 1 || iw[0]["tid"].(float64) != 2 {
		t.Fatalf("internal write on wrong row: %v (disk tag is 1-based in Event, 0-based in output)", iw)
	}
	fault := byName["fault: transient retry"]
	if len(fault) != 1 || fault[0]["ph"].(string) != "i" || fault[0]["ts"].(float64) != 20000 {
		t.Fatalf("fault event = %v", fault)
	}
	// Metadata rows: process plus one thread_name per disk row seen.
	if n := len(byName["thread_name"]); n != 2 {
		t.Errorf("want 2 thread_name metadata events, got %d", n)
	}
	// The req line contributes nothing.
	for _, e := range events {
		if cat, _ := e["cat"].(string); cat == "" && e["ph"] != "M" {
			t.Errorf("unexpected uncategorized event %v", e)
		}
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	in := buildSpanJSONL(t)
	var a, c bytes.Buffer
	if err := WriteChromeTrace(&a, bytes.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&c, bytes.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("conversion is not deterministic")
	}
}

func TestWriteChromeTraceErrors(t *testing.T) {
	var out bytes.Buffer
	if err := WriteChromeTrace(&out, strings.NewReader("{broken\n")); err == nil {
		t.Error("malformed line did not error")
	}
	out.Reset()
	// Empty input still yields a valid (metadata-only) array.
	if err := WriteChromeTrace(&out, strings.NewReader("")); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(out.Bytes(), &events); err != nil {
		t.Errorf("empty conversion invalid: %v", err)
	}
}
