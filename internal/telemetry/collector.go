package telemetry

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Options selects what a Collector records. The zero value records
// only harness metrics (event counts); spans and sampling are opt-in.
type Options struct {
	// Spans enables capture of the request/span event stream.
	Spans bool
	// SamplePeriodMS, when positive, starts the periodic sampler at
	// this simulated-time interval.
	SamplePeriodMS float64
	// Metrics gives the collector a metrics.Registry, which the
	// experiment harness binds into the simulated stack (driver, sched,
	// cache, volume, fs, workload) once populate completes.
	Metrics bool
}

// Collector buffers one simulation job's telemetry: the JSONL event
// stream, the sampler's CSV rows, and end-of-run counters. A Collector
// belongs to a single job (a single simulation goroutine); the harness
// reads it only after the job completes, so no locking is needed —
// the runner's WaitGroup provides the happens-before edge.
type Collector struct {
	name string
	opts Options

	trace  []byte // encoded JSONL event stream
	events int64  // events observed (even when span capture is off)

	probes    []probe
	csvHeader []byte
	csv       []byte
	sampling  bool
	samples   int64

	engineEvents int64

	reg *metrics.Registry
}

type probe struct {
	name string
	fn   func() float64
}

// NewCollector returns a collector for the named job.
func NewCollector(name string, opts Options) *Collector {
	c := &Collector{name: name, opts: opts}
	if opts.Metrics {
		c.reg = metrics.NewRegistry()
	}
	return c
}

// Metrics returns the job's metric registry, nil unless Options.Metrics
// was set.
func (c *Collector) Metrics() *metrics.Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// MetricsEnabled reports whether the collector carries a registry. Safe
// on a nil collector, like FromContext's result.
func (c *Collector) MetricsEnabled() bool { return c != nil && c.reg != nil }

// Name returns the owning job's name.
func (c *Collector) Name() string { return c.name }

// SpansEnabled reports whether the event stream is being captured.
func (c *Collector) SpansEnabled() bool { return c.opts.Spans }

// SamplePeriodMS returns the sampler period (0 = sampling disabled).
func (c *Collector) SamplePeriodMS() float64 { return c.opts.SamplePeriodMS }

// Event implements Sink: it counts the event and, when span capture is
// enabled, appends its JSONL encoding to the trace buffer.
func (c *Collector) Event(e *Event) {
	c.events++
	if c.opts.Spans {
		c.trace = AppendJSONL(c.trace, e)
	}
}

// Events returns how many events the collector observed.
func (c *Collector) Events() int64 { return c.events }

// TraceJSONL returns the buffered event stream (empty unless Spans).
func (c *Collector) TraceJSONL() []byte { return c.trace }

// AddProbe registers a named probe sampled on every sampler tick.
// Probes must be registered before StartSampler and in a deterministic
// order — the CSV column order is the registration order.
func (c *Collector) AddProbe(name string, fn func() float64) {
	c.probes = append(c.probes, probe{name: name, fn: fn})
}

// StartSampler begins periodic sampling on the engine, one row per
// SamplePeriodMS of simulated time. It is a no-op when sampling is
// disabled or no probes are registered. Call it only once the engine's
// event loop is driven by bounded RunUntil horizons (a self-scheduling
// sampler would keep a bare Run() alive forever).
func (c *Collector) StartSampler(eng *sim.Engine) {
	if c.opts.SamplePeriodMS <= 0 || c.sampling || len(c.probes) == 0 {
		return
	}
	c.sampling = true
	c.csvHeader = append(c.csvHeader, "job,t_ms"...)
	for _, p := range c.probes {
		c.csvHeader = append(c.csvHeader, ',')
		c.csvHeader = append(c.csvHeader, p.name...)
	}
	c.csvHeader = append(c.csvHeader, '\n')
	eng.Every(c.opts.SamplePeriodMS, func() { c.sample(eng.Now()) })
}

// sample appends one CSV row of probe values at simulated time nowMS.
func (c *Collector) sample(nowMS float64) {
	c.samples++
	c.csv = append(c.csv, c.name...)
	c.csv = append(c.csv, ',')
	c.csv = appendFloat(c.csv, nowMS)
	for _, p := range c.probes {
		c.csv = append(c.csv, ',')
		c.csv = appendFloat(c.csv, p.fn())
	}
	c.csv = append(c.csv, '\n')
}

// Samples returns the number of sampler rows recorded.
func (c *Collector) Samples() int64 { return c.samples }

// CSVHeader returns the sampler's header line ("" until sampling
// started).
func (c *Collector) CSVHeader() string { return string(c.csvHeader) }

// SamplesCSV returns the sampler's data rows (no header).
func (c *Collector) SamplesCSV() []byte { return c.csv }

// SetEngineEvents records the simulation engine's dispatched-event
// count at the end of the job.
func (c *Collector) SetEngineEvents(n int64) { c.engineEvents = n }

// EngineEvents returns the recorded engine event count.
func (c *Collector) EngineEvents() int64 { return c.engineEvents }

// ctxKey keys the collector in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the collector. The experiment
// harness injects a per-job collector this way so job bodies need no
// new parameters.
func NewContext(ctx context.Context, c *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the collector carried by ctx, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}

// WriteTrace concatenates the collectors' event streams in order. With
// one collector per runner job in job order, the result is
// byte-identical for any worker count.
func WriteTrace(w io.Writer, cols []*Collector) error {
	for _, c := range cols {
		if c == nil {
			continue
		}
		if _, err := w.Write(c.TraceJSONL()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV concatenates the collectors' sampler output in order,
// emitting a header line whenever it differs from the previous
// collector's (jobs with identical probe sets share one header).
func WriteCSV(w io.Writer, cols []*Collector) error {
	prevHeader := ""
	for _, c := range cols {
		if c == nil || c.Samples() == 0 {
			continue
		}
		if h := c.CSVHeader(); h != prevHeader {
			if _, err := io.WriteString(w, h); err != nil {
				return err
			}
			prevHeader = h
		}
		if _, err := w.Write(c.SamplesCSV()); err != nil {
			return err
		}
	}
	return nil
}

// MetricsSnapshots renders each collector's registry in job order —
// the metrics analogue of WriteTrace/WriteCSV concatenation, and
// byte-identical for any worker or shard count for the same reason.
// Snapshot resolves func-backed metrics against live model state, so
// call this only after every job has completed. Collectors without a
// registry are skipped.
func MetricsSnapshots(cols []*Collector) []metrics.JobSnapshot {
	var out []metrics.JobSnapshot
	for _, c := range cols {
		if c == nil || c.reg == nil {
			continue
		}
		out = append(out, metrics.JobSnapshot{Job: c.name, Metrics: c.reg.Snapshot().Metrics})
	}
	return out
}

// SampleRow is one parsed sampler row.
type SampleRow struct {
	// Job names the simulation job the row belongs to.
	Job string
	// TimeMS is the sample's simulated time.
	TimeMS float64
	// Values maps probe name to sampled value.
	Values map[string]float64
}

// ReadCSV parses a sampler time series produced by WriteCSV. Header
// lines (starting "job,t_ms") may appear anywhere and switch the
// column set for subsequent rows. It returns an error — never panics —
// on malformed input, naming the offending line.
func ReadCSV(r io.Reader) ([]SampleRow, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var cols []string // probe names of the current section
	var rows []SampleRow
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if fields[0] == "job" {
			if len(fields) < 2 || fields[1] != "t_ms" {
				return nil, fmt.Errorf("telemetry: line %d: malformed header %q", line, text)
			}
			cols = fields[2:]
			continue
		}
		if cols == nil {
			return nil, fmt.Errorf("telemetry: line %d: data row before any header", line)
		}
		if len(fields) != len(cols)+2 {
			return nil, fmt.Errorf("telemetry: line %d: %d fields, want %d", line, len(fields), len(cols)+2)
		}
		t, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: line %d: bad time %q", line, fields[1])
		}
		row := SampleRow{Job: fields[0], TimeMS: t, Values: make(map[string]float64, len(cols))}
		for i, name := range cols {
			v, err := strconv.ParseFloat(fields[i+2], 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: line %d: bad value %q for %s", line, fields[i+2], name)
			}
			row.Values[name] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading CSV: %w", err)
	}
	return rows, nil
}
