package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/sim"
)

func reqEvent() *Event {
	return &Event{Kind: KindRequest, Write: true, TimeMS: 1234.5, Part: 1, Block: 77}
}

func spanEvent() *Event {
	return &Event{
		Kind: KindSpan, Write: false, Internal: true, Redirected: true, BufferHit: false,
		Orig: 4096, Sector: 16, Count: 16, QueueDepth: 3, SeekDist: 120,
		ArriveMS: 100, DispatchMS: 101.25, SeekMS: 7.5, RotMS: 8.3,
		TransferMS: 1.9, CompleteMS: 118.95,
	}
}

// Every JSONL line must be valid JSON with the documented keys.
func TestAppendJSONLParseable(t *testing.T) {
	b := AppendJSONL(nil, reqEvent())
	b = AppendJSONL(b, spanEvent())
	lines := strings.Split(strings.TrimSuffix(string(b), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}

	var req map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &req); err != nil {
		t.Fatalf("request line is not JSON: %v\n%s", err, lines[0])
	}
	if req["k"] != "req" || req["t"] != 1234.5 || req["w"] != 1.0 ||
		req["part"] != 1.0 || req["blk"] != 77.0 {
		t.Errorf("request fields wrong: %v", req)
	}

	var span map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &span); err != nil {
		t.Fatalf("span line is not JSON: %v\n%s", err, lines[1])
	}
	want := map[string]float64{
		"w": 0, "int": 1, "orig": 4096, "sec": 16, "n": 16, "qd": 3,
		"arr": 100, "disp": 101.25, "seek": 7.5, "rot": 8.3,
		"xfer": 1.9, "done": 118.95, "dist": 120, "redir": 1, "bh": 0,
	}
	if span["k"] != "span" {
		t.Errorf("span kind = %v", span["k"])
	}
	for k, v := range want {
		if span[k] != v {
			t.Errorf("span[%q] = %v, want %v", k, span[k], v)
		}
	}
}

func TestRing(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Event(&Event{Kind: KindRequest, Block: i})
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("retained %d events, want 3", len(got))
	}
	for i, e := range got {
		if want := int64(i + 2); e.Block != want {
			t.Errorf("event %d: Block = %d, want %d (oldest first)", i, e.Block, want)
		}
	}
}

func TestMulti(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi of no live sinks should be nil")
	}
	var a, b int
	sa := SinkFunc(func(*Event) { a++ })
	if s := Multi(nil, sa); s == nil {
		t.Error("Multi(nil, sink) should be the sink")
	} else {
		s.Event(&Event{})
	}
	if a != 1 {
		t.Errorf("single sink saw %d events, want 1", a)
	}
	m := Multi(sa, nil, SinkFunc(func(*Event) { b++ }))
	m.Event(&Event{})
	if a != 2 || b != 1 {
		t.Errorf("fan-out counts a=%d b=%d, want 2, 1", a, b)
	}
}

func TestWriterSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewWriterSink(&buf)
	for i := 0; i < 4; i++ {
		s.Event(spanEvent())
	}
	if buf.Len() != 0 {
		t.Error("events written through before flush threshold")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 4 {
		t.Errorf("flushed %d lines, want 4", lines)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestWriterSinkError(t *testing.T) {
	s := NewWriterSink(failWriter{})
	s.Event(spanEvent())
	if err := s.Flush(); err == nil {
		t.Error("Flush should report the write error")
	}
	// Subsequent events are dropped, not accumulated.
	s.Event(spanEvent())
	if len(s.buf) != 0 {
		t.Error("sink kept buffering after a write error")
	}
}

// With spans off the collector still counts events but buffers nothing.
func TestCollectorSpansOff(t *testing.T) {
	c := NewCollector("job", Options{})
	c.Event(reqEvent())
	c.Event(spanEvent())
	if c.Events() != 2 {
		t.Errorf("Events = %d, want 2", c.Events())
	}
	if len(c.TraceJSONL()) != 0 {
		t.Errorf("trace buffered %d bytes with spans off", len(c.TraceJSONL()))
	}
}

func TestCollectorSampler(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCollector("j1", Options{SamplePeriodMS: 10})
	n := 0.0
	c.AddProbe("n", func() float64 { n++; return n })
	c.AddProbe("t", eng.Now)
	c.StartSampler(eng)
	eng.RunUntil(35)
	if c.Samples() != 3 {
		t.Fatalf("Samples = %d, want 3 (ticks at 10, 20, 30)", c.Samples())
	}
	if got, want := c.CSVHeader(), "job,t_ms,n,t\n"; got != want {
		t.Errorf("header %q, want %q", got, want)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Collector{c}); err != nil {
		t.Fatal(err)
	}
	rows, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3", len(rows))
	}
	for i, r := range rows {
		wantT := float64(10 * (i + 1))
		if r.Job != "j1" || r.TimeMS != wantT ||
			r.Values["n"] != float64(i+1) || r.Values["t"] != wantT {
			t.Errorf("row %d = %+v, want t=%g n=%d", i, r, wantT, i+1)
		}
	}
}

// WriteCSV re-emits the header only when the probe set changes.
func TestWriteCSVHeaderPerSection(t *testing.T) {
	eng := sim.NewEngine()
	mk := func(name string, probes ...string) *Collector {
		c := NewCollector(name, Options{SamplePeriodMS: 10})
		for _, p := range probes {
			p := p
			c.AddProbe(p, func() float64 { return float64(len(p)) })
		}
		c.StartSampler(eng)
		return c
	}
	a := mk("a", "x")
	b := mk("b", "x")
	d := mk("d", "x", "y")
	eng.RunUntil(15)

	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Collector{a, nil, b, d}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "job,t_ms"); got != 2 {
		t.Errorf("emitted %d headers, want 2 (shared then changed):\n%s", got, out)
	}
	rows, err := ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("parsed %d rows, want 3", len(rows))
	}
	if v, ok := rows[2].Values["y"]; !ok || v != 1 {
		t.Errorf("section switch lost column y: %+v", rows[2])
	}
}

func TestReadCSVMalformed(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"data before header", "j,10,1\n", "before any header"},
		{"bad header", "job,nope,x\n", "malformed header"},
		{"field count", "job,t_ms,x\nj,10\n", "fields"},
		{"bad time", "job,t_ms,x\nj,zebra,1\n", "bad time"},
		{"bad value", "job,t_ms,x\nj,10,zebra\n", "bad value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestContext(t *testing.T) {
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Error("FromContext without a collector should be nil")
	}
	c := NewCollector("x", Options{})
	if FromContext(NewContext(context.Background(), c)) != c {
		t.Error("FromContext did not return the injected collector")
	}
}

// TagDisk stamps the member index into events passing through it (the
// volume layer wraps each member's sink this way), restores the event
// afterwards (emitters reuse one Event struct), and the "disk" JSONL
// key appears only on tagged events so single-disk traces are
// byte-identical to before the field existed.
func TestTagDiskJSONL(t *testing.T) {
	if TagDisk(3, nil) != nil {
		t.Error("TagDisk of a nil sink should be nil")
	}
	e := reqEvent()
	var tagged []byte
	sink := TagDisk(3, SinkFunc(func(e *Event) { tagged = AppendJSONL(nil, e) }))
	sink.Event(e)
	if e.Disk != 0 {
		t.Errorf("event not restored after tagging: Disk = %d", e.Disk)
	}
	var m map[string]any
	if err := json.Unmarshal(bytes.TrimSuffix(tagged, []byte("\n")), &m); err != nil {
		t.Fatalf("tagged line is not JSON: %v\n%s", err, tagged)
	}
	if m["disk"] != 3.0 {
		t.Errorf(`tagged line "disk" = %v, want 3`, m["disk"])
	}
	untagged := AppendJSONL(nil, e)
	if bytes.Contains(untagged, []byte("disk")) {
		t.Errorf("untagged line carries a disk key: %s", untagged)
	}
}
