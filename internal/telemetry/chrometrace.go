package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// chromeLine mirrors the JSONL span/fault keys written by AppendJSONL.
// Booleans arrive as 0/1 integers.
type chromeLine struct {
	K     string  `json:"k"`
	T     float64 `json:"t"`
	W     int     `json:"w"`
	Int   int     `json:"int"`
	Orig  int64   `json:"orig"`
	Sec   int64   `json:"sec"`
	N     int64   `json:"n"`
	QD    int     `json:"qd"`
	Arr   float64 `json:"arr"`
	Disp  float64 `json:"disp"`
	Seek  float64 `json:"seek"`
	Rot   float64 `json:"rot"`
	Xfer  float64 `json:"xfer"`
	Done  float64 `json:"done"`
	Dist  int     `json:"dist"`
	Redir int     `json:"redir"`
	BH    int     `json:"bh"`
	Class string  `json:"class"`
	Act   string  `json:"act"`
	Try   int     `json:"try"`
	Disk  *int    `json:"disk"` // pointer: absent means untagged
}

// WriteChromeTrace converts a JSONL span stream (as written by
// abrsim -trace) into the Chrome trace-event JSON array format, loadable
// in about://tracing or https://ui.perfetto.dev.
//
// Each member disk becomes one timeline row (tid). A span renders as a
// complete ("X") event over its service interval [disp, done) — device
// service is serialized per disk, so rows never overlap — with queueing
// and the seek/rotation/transfer breakdown in args. Fault actions render
// as instant ("i") events on the same row. Timestamps convert from
// simulated milliseconds to trace microseconds. Request ("req") lines
// are skipped: they describe pre-translation arrivals already visible as
// span args. The conversion is streaming and deterministic.
func WriteChromeTrace(w io.Writer, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	b := []byte("[{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"abrsim\"}}")
	named := map[int]bool{}
	line := 0
	flush := func() error {
		if len(b) < 32*1024 {
			return nil
		}
		_, err := w.Write(b)
		b = b[:0]
		return err
	}
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var e chromeLine
		if err := json.Unmarshal(text, &e); err != nil {
			return fmt.Errorf("telemetry: chrome trace: line %d: %w", line, err)
		}
		disk := 0
		if e.Disk != nil {
			disk = *e.Disk
		}
		if !named[disk] && (e.K == "span" || e.K == "fault") {
			named[disk] = true
			b = append(b, `,{"name":"thread_name","ph":"M","pid":0,"tid":`...)
			b = strconv.AppendInt(b, int64(disk), 10)
			b = append(b, `,"args":{"name":"disk `...)
			b = strconv.AppendInt(b, int64(disk), 10)
			b = append(b, `"}}`...)
		}
		switch e.K {
		case "span":
			b = append(b, `,{"name":"`...)
			if e.Int == 1 {
				b = append(b, "internal "...)
			}
			if e.W == 1 {
				b = append(b, "write"...)
			} else {
				b = append(b, "read"...)
			}
			b = append(b, `","cat":"io","ph":"X","pid":0,"tid":`...)
			b = strconv.AppendInt(b, int64(disk), 10)
			b = append(b, `,"ts":`...)
			b = appendFloat(b, e.Disp*1000)
			b = append(b, `,"dur":`...)
			b = appendFloat(b, (e.Done-e.Disp)*1000)
			b = append(b, `,"args":{"sector":`...)
			b = strconv.AppendInt(b, e.Sec, 10)
			b = append(b, `,"sectors":`...)
			b = strconv.AppendInt(b, e.N, 10)
			b = append(b, `,"queue_depth":`...)
			b = strconv.AppendInt(b, int64(e.QD), 10)
			b = append(b, `,"queue_ms":`...)
			b = appendFloat(b, e.Disp-e.Arr)
			b = append(b, `,"seek_ms":`...)
			b = appendFloat(b, e.Seek)
			b = append(b, `,"rot_ms":`...)
			b = appendFloat(b, e.Rot)
			b = append(b, `,"xfer_ms":`...)
			b = appendFloat(b, e.Xfer)
			b = append(b, `,"seek_cylinders":`...)
			b = strconv.AppendInt(b, int64(e.Dist), 10)
			b = append(b, `,"redirected":`...)
			b = strconv.AppendInt(b, int64(e.Redir), 10)
			b = append(b, `,"buffer_hit":`...)
			b = strconv.AppendInt(b, int64(e.BH), 10)
			b = append(b, `}}`...)
		case "fault":
			b = append(b, `,{"name":"fault: `...)
			b = append(b, e.Class...)
			b = append(b, ' ')
			b = append(b, e.Act...)
			b = append(b, `","cat":"fault","ph":"i","s":"t","pid":0,"tid":`...)
			b = strconv.AppendInt(b, int64(disk), 10)
			b = append(b, `,"ts":`...)
			b = appendFloat(b, e.T*1000)
			b = append(b, `,"args":{"sector":`...)
			b = strconv.AppendInt(b, e.Sec, 10)
			b = append(b, `,"attempt":`...)
			b = strconv.AppendInt(b, int64(e.Try), 10)
			b = append(b, `}}`...)
		default:
			// req lines and future kinds: no timeline representation.
			continue
		}
		if err := flush(); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	b = append(b, ']', '\n')
	_, err := w.Write(b)
	return err
}
