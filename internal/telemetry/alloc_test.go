package telemetry

import (
	"testing"

	"repro/internal/metrics"
)

// TestSamplerSteadyStateAllocs locks the sampler's steady state: a
// sample appends CSV bytes to a growing buffer, so after warmup the
// amortized allocation rate must be essentially zero (the buffer may
// still double capacity occasionally, hence the epsilon rather than an
// exact 0). Mirrors internal/sim/alloc_test.go.
func TestSamplerSteadyStateAllocs(t *testing.T) {
	c := NewCollector("job", Options{SamplePeriodMS: 1})
	v := 0.0
	c.AddProbe("qd", func() float64 { return v })
	c.AddProbe("hits", func() float64 { return 2 * v })
	// Warm the CSV buffer well past the measured window.
	now := 0.0
	for i := 0; i < 20000; i++ {
		now++
		c.sample(now)
	}
	n := testing.AllocsPerRun(1000, func() {
		now++
		v += 0.5
		c.sample(now)
	})
	if n > 0.05 {
		t.Errorf("sampler steady state allocates %.3f/op, want ~0", n)
	}
}

// TestCollectorMetricsRecordAllocs locks the full metrics hot path as
// the stack uses it: histograms resolved from a collector's registry
// record with zero allocations.
func TestCollectorMetricsRecordAllocs(t *testing.T) {
	c := NewCollector("job", Options{Metrics: true})
	if !c.MetricsEnabled() {
		t.Fatal("Options.Metrics did not enable the registry")
	}
	h := c.Metrics().Histogram("driver_service_ms", metrics.HistogramOpts{})
	cnt := c.Metrics().Counter("driver_requests")
	v := 0.3
	if n := testing.AllocsPerRun(2000, func() {
		h.Record(v)
		cnt.Inc()
		v *= 1.01
	}); n != 0 {
		t.Errorf("metrics record via collector allocates %.2f/op, want 0", n)
	}
}

// TestSpanCaptureSteadyStateAllocs keeps the span encoder's steady
// state amortized-zero too: AppendJSONL reuses the trace buffer.
func TestSpanCaptureSteadyStateAllocs(t *testing.T) {
	c := NewCollector("job", Options{Spans: true})
	e := &Event{Kind: KindSpan, Sector: 10, Count: 8, ArriveMS: 1, DispatchMS: 2, CompleteMS: 3}
	for i := 0; i < 50000; i++ {
		c.Event(e)
	}
	n := testing.AllocsPerRun(1000, func() {
		e.ArriveMS++
		c.Event(e)
	})
	if n > 0.05 {
		t.Errorf("span capture steady state allocates %.3f/op, want ~0", n)
	}
}
