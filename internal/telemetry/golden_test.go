package telemetry_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rig"
	"repro/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden telemetry fixtures")

// TestGoldenFixtures drives a fixed request schedule through the full
// rig and compares the resulting JSONL trace and sampler CSV against
// checked-in fixtures, byte for byte. The workload covers reads,
// writes, a block move into the reserved region, and redirected
// requests, so every span field is exercised. On mismatch the observed
// bytes are written next to the golden file with a .got suffix (CI
// uploads them as an artifact).
func TestGoldenFixtures(t *testing.T) {
	col := telemetry.NewCollector("golden", telemetry.Options{
		Spans:          true,
		SamplePeriodMS: 250,
	})
	r := rig.MustNew(rig.Options{ReservedCyls: 48, Telemetry: col})
	drv, eng := r.Driver, r.Eng

	col.AddProbe("queue_depth", func() float64 { return float64(drv.QueueLen()) })
	col.AddProbe("outstanding", func() float64 { return float64(drv.Outstanding()) })
	col.AddProbe("completed", func() float64 { return float64(drv.Counters().Requests) })
	col.AddProbe("redirected", func() float64 { return float64(drv.Counters().Redirected) })
	col.StartSampler(eng)

	fail := func(data []byte, err error) {
		if err != nil {
			t.Errorf("request failed: %v", err)
		}
	}
	blockBytes := drv.BlockSize().Bytes()
	data := make([]byte, blockBytes)
	for i := range data {
		data[i] = byte(i)
	}

	// A fixed pseudo-random schedule from a hand-rolled LCG: 32
	// requests over the first two simulated seconds, mixing reads and
	// writes across the partition.
	seed := uint64(42)
	next := func(mod uint64) uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) % mod
	}
	blocks := r.PartitionBlocks(0)
	var hot int64 // most requested block, moved later
	for i := 0; i < 32; i++ {
		at := float64(i)*60 + float64(next(50))
		blk := int64(next(uint64(blocks)))
		if i%4 == 0 {
			blk = blocks / 2 // repeated hot block
			hot = blk
		}
		write := i%3 == 0
		eng.At(at, func() {
			if write {
				drv.WriteBlock(0, blk, data, fail)
			} else {
				drv.ReadBlock(0, blk, fail)
			}
		})
	}
	eng.RunUntil(2500)

	// Move the hot block into the reserved region, then read it again:
	// the move emits internal spans and the re-reads redirected ones.
	bsec := int64(drv.BlockSize().Sectors())
	p0, err := r.Label.Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	orig := r.Label.MapVirtual(p0.Start + hot*bsec)
	slot := drv.ReservedSlots()[0][0]
	moved := false
	eng.At(2600, func() {
		drv.BCopy(orig, slot, func(err error) {
			if err != nil {
				t.Errorf("BCopy failed: %v", err)
			}
			moved = true
		})
	})
	for i := 0; i < 4; i++ {
		eng.At(3000+float64(i)*40, func() { drv.ReadBlock(0, hot, fail) })
	}
	eng.RunUntil(3500)
	if !moved {
		t.Fatal("block move did not complete")
	}
	col.SetEngineEvents(eng.Dispatched())

	var trace, csv bytes.Buffer
	if err := telemetry.WriteTrace(&trace, []*telemetry.Collector{col}); err != nil {
		t.Fatal(err)
	}
	if err := telemetry.WriteCSV(&csv, []*telemetry.Collector{col}); err != nil {
		t.Fatal(err)
	}
	if col.Events() == 0 || col.Samples() == 0 {
		t.Fatalf("no telemetry captured: %d events, %d samples", col.Events(), col.Samples())
	}

	compareGolden(t, filepath.Join("testdata", "golden.jsonl"), trace.Bytes())
	compareGolden(t, filepath.Join("testdata", "golden.csv"), csv.Bytes())
}

func compareGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create fixtures)", err)
	}
	if !bytes.Equal(got, want) {
		gotPath := path + ".got"
		if werr := os.WriteFile(gotPath, got, 0o644); werr != nil {
			t.Logf("could not write %s: %v", gotPath, werr)
		}
		t.Errorf("%s: output differs from golden fixture (%d vs %d bytes); observed bytes written to %s",
			path, len(got), len(want), gotPath)
	}
}
