package rig

import (
	"context"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/geom"
)

func TestDefaults(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Disk.Model().Name != "Toshiba MK156F" {
		t.Errorf("default disk = %q", r.Disk.Model().Name)
	}
	if r.Driver.Rearranged() {
		t.Error("default rig should not be rearranged")
	}
	if r.PartitionBlocks(0) == 0 {
		t.Error("no default partition")
	}
}

func TestRearrangedRig(t *testing.T) {
	r, err := New(Options{Disk: disk.Fujitsu(), ReservedCyls: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Driver.Rearranged() {
		t.Fatal("driver not rearranged")
	}
	first, count := r.Label.ReservedCyls()
	if count != 80 {
		t.Errorf("reserved count = %d", count)
	}
	// 784 is the largest block-aligned first cylinder at or below the
	// exact center (789) on the Fujitsu geometry.
	if first != 784 {
		t.Errorf("reserved first = %d, want 784 (aligned near-center)", first)
	}
}

func TestReservedFirstCylOverride(t *testing.T) {
	r, err := New(Options{ReservedCyls: 48, ReservedFirstCyl: 4})
	if err != nil {
		t.Fatal(err)
	}
	first, count := r.Label.ReservedCyls()
	if first != 4 || count != 48 {
		t.Errorf("reserved = (%d, %d), want (4, 48)", first, count)
	}
	// Cylinder 0 holds the label; an edge request that only aligns there
	// is rejected rather than silently clobbering it.
	if _, err := New(Options{ReservedCyls: 48, ReservedFirstCyl: 3}); err == nil {
		t.Error("reserved region over the label cylinder accepted")
	}
}

func TestMultiplePartitions(t *testing.T) {
	r, err := New(Options{ReservedCyls: 48, PartitionBlocks: []int64{1000, 2000}})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.PartitionBlocks(0); got != 1000 {
		t.Errorf("partition 0 = %d blocks", got)
	}
	if got := r.PartitionBlocks(1); got != 2000 {
		t.Errorf("partition 1 = %d blocks", got)
	}
	if got := r.PartitionBlocks(5); got != 0 {
		t.Errorf("missing partition = %d blocks", got)
	}
}

func TestOversizedPartitionRejected(t *testing.T) {
	if _, err := New(Options{PartitionBlocks: []int64{1 << 40}}); err == nil {
		t.Error("oversized partition accepted")
	}
}

func TestLongDiskNameTruncated(t *testing.T) {
	m := disk.Toshiba()
	m.Name = "An Extremely Long Disk Model Name That Exceeds The Label Field"
	if _, err := New(Options{Disk: m}); err != nil {
		t.Fatalf("long name not handled: %v", err)
	}
}

func TestBlockSizePassedThrough(t *testing.T) {
	r, err := New(Options{BlockSize: geom.Block4K})
	if err != nil {
		t.Fatal(err)
	}
	if r.Driver.BlockSize() != geom.Block4K {
		t.Errorf("block size = %d", r.Driver.BlockSize())
	}
}

func TestCancelledContextRejected(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New(Options{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("New on a dead context: err = %v, want context.Canceled", err)
	}
}

func TestErrReportsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	r, err := New(Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if r.Err() != nil {
		t.Errorf("live rig Err = %v", r.Err())
	}
	cancel()
	if !errors.Is(r.Err(), context.Canceled) {
		t.Errorf("cancelled rig Err = %v", r.Err())
	}
	// A rig built without a context can never be cancelled.
	r2, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Err() != nil {
		t.Errorf("context-free rig Err = %v", r2.Err())
	}
}

func TestCancelInterruptsEngine(t *testing.T) {
	// Cancelling the rig's context halts a long engine run at the next
	// interrupt poll instead of draining the whole queue.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, err := New(Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	r.Eng.Run() // settle formatting I/O first
	const n = 20000
	count := 0
	for i := 0; i < n; i++ {
		r.Eng.At(float64(i), func() {
			count++
			if count == 100 {
				cancel()
			}
		})
	}
	r.Eng.Run()
	if count >= n {
		t.Fatal("cancel did not interrupt the engine")
	}
	if r.Err() == nil {
		t.Error("Err() nil after cancellation")
	}
}

func TestMustNewPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew(Options{PartitionBlocks: []int64{1 << 40}})
}
