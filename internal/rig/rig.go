// Package rig assembles the standard simulation stack — engine, disk
// model, disk label, and attached driver — used by tests, examples, and
// the experiment harness. It performs the setup that the paper does with
// format/newfs and a reboot: write a (possibly rearranged) label, carve
// partitions, and attach the adaptive driver.
package rig

import (
	"context"
	"fmt"

	"repro/internal/disk"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Options configures a Rig.
type Options struct {
	// Ctx, when non-nil, cancels the rig: the engine's event loop is
	// interrupted once the context is done, so a long RunUntil inside a
	// cancelled job winds down promptly instead of simulating to the
	// horizon. nil means the rig cannot be cancelled.
	Ctx context.Context
	// Eng, when non-nil, builds the rig on an existing engine instead of
	// creating a private one. A multi-disk volume builds one rig per
	// member on a caller-provided engine: either one engine shared by
	// every member, or — when the volume shards — a private engine per
	// member whose event stream the sim.Coordinator merges back into
	// one deterministic timeline. The caller owns the engine's
	// interrupt hook; Ctx still gates construction but is not wired
	// into a provided engine.
	Eng *sim.Engine
	// Disk selects the drive model; the zero value selects the Toshiba
	// MK156F.
	Disk disk.Model
	// ReservedCyls hides this many middle cylinders as the reserved
	// region; 0 builds a conventional (non-rearranged) disk.
	ReservedCyls int
	// ReservedFirstCyl places the reserved region at this first cylinder
	// instead of the center (-1 or 0 with a centered default selects the
	// center). Used by the reserved-location ablation.
	ReservedFirstCyl int
	// BlockSize is the file system block size; zero selects 8 KB.
	BlockSize geom.BlockSize
	// Sched is the head-scheduling policy; nil selects SCAN.
	Sched sched.Scheduler
	// PartitionBlocks lists partition sizes in blocks. Empty creates a
	// single partition covering the whole virtual disk.
	PartitionBlocks []int64
	// RequestTableSize overrides the driver's monitoring table size.
	RequestTableSize int
	// Telemetry, when non-nil and capturing spans, is attached as the
	// driver's event sink so every request lifecycle of this rig is
	// recorded. Callers needing extra consumers compose their own sink
	// with telemetry.Multi and SetSink afterwards.
	Telemetry *telemetry.Collector
	// Fault, when non-nil and active, builds a fault injector from the
	// plan and wires it into both the disk and the driver, enabling
	// retries, bad-block remapping, and crash-safe table writes.
	Fault *fault.Plan
}

// Rig is an assembled simulation stack.
type Rig struct {
	Eng    *sim.Engine
	Disk   *disk.Disk
	Label  *label.Label
	Driver *driver.Driver
	// Faults is the fault injector wired into the stack, nil unless
	// Options.Fault was set.
	Faults *fault.Injector
	ctx    context.Context
}

// Err returns the rig's cancellation cause: the context error if the
// rig was built with one and it is done, nil otherwise. Run loops call
// this after driving the engine to tell an interrupted simulation from
// a completed one.
func (r *Rig) Err() error {
	if r.ctx == nil {
		return nil
	}
	return r.ctx.Err()
}

// New builds a rig: it creates the disk, writes the label and an empty
// block table, and attaches the driver.
func New(opts Options) (*Rig, error) {
	if opts.Disk.Name == "" {
		opts.Disk = disk.Toshiba()
	}
	if opts.BlockSize == 0 {
		opts.BlockSize = geom.Block8K
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	eng := opts.Eng
	if eng == nil {
		eng = sim.NewEngine()
		if ctx := opts.Ctx; ctx != nil {
			eng.SetInterrupt(func() bool { return ctx.Err() != nil })
		}
	}
	dsk, err := disk.New(opts.Disk)
	if err != nil {
		return nil, err
	}

	var lbl *label.Label
	if opts.ReservedCyls > 0 {
		preferred := (opts.Disk.Geom.Cylinders - opts.ReservedCyls) / 2
		if opts.ReservedFirstCyl > 0 {
			preferred = opts.ReservedFirstCyl
		}
		// The region must start on a block boundary or the virtual-disk
		// mapping would let a file system block straddle it.
		firstCyl, aerr := label.AlignedFirstCyl(opts.Disk.Geom, opts.BlockSize.Sectors(), preferred)
		if aerr != nil {
			return nil, aerr
		}
		lbl, err = label.NewRearrangedAt(diskName(opts.Disk), opts.Disk.Geom,
			firstCyl, opts.ReservedCyls)
		if err != nil {
			return nil, err
		}
	} else {
		lbl = label.New(diskName(opts.Disk), opts.Disk.Geom)
	}

	bsec := int64(opts.BlockSize.Sectors())
	// The first block is kept clear of partitions: it holds the label.
	start := bsec
	if len(opts.PartitionBlocks) == 0 {
		size := (lbl.VirtualSectors() - start) / bsec * bsec
		if _, err := lbl.AddPartition(start, size, label.TagFS); err != nil {
			return nil, err
		}
	} else {
		for i, blocks := range opts.PartitionBlocks {
			size := blocks * bsec
			if _, err := lbl.AddPartition(start, size, label.TagFS); err != nil {
				return nil, fmt.Errorf("rig: partition %d: %w", i, err)
			}
			start += size
		}
	}

	if err := driver.InitDisk(dsk, lbl, opts.BlockSize); err != nil {
		return nil, err
	}
	var inj *fault.Injector
	if opts.Fault != nil && opts.Fault.Active() {
		inj = fault.NewInjector(*opts.Fault)
		dsk.SetFaults(inj)
	}
	drv, err := driver.Attach(eng, dsk, driver.Config{
		Sched:            opts.Sched,
		BlockSize:        opts.BlockSize,
		RequestTableSize: opts.RequestTableSize,
		Faults:           inj,
	}, false)
	if err != nil {
		return nil, err
	}
	if opts.Telemetry != nil && opts.Telemetry.SpansEnabled() {
		drv.SetSink(opts.Telemetry)
	}
	return &Rig{Eng: eng, Disk: dsk, Label: lbl, Driver: drv, Faults: inj, ctx: opts.Ctx}, nil
}

// MustNew is New, panicking on error; for tests and examples whose
// options are known to be valid.
func MustNew(opts Options) *Rig {
	r, err := New(opts)
	if err != nil {
		panic(err)
	}
	return r
}

// PartitionBlocks returns the size of partition part in blocks.
func (r *Rig) PartitionBlocks(part int) int64 {
	p, err := r.Label.Partition(part)
	if err != nil {
		return 0
	}
	return p.Size / int64(r.Driver.BlockSize().Sectors())
}

func diskName(m disk.Model) string {
	if len(m.Name) > 24 {
		return m.Name[:24]
	}
	return m.Name
}
