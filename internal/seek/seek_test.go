package seek

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZeroDistanceIsFree(t *testing.T) {
	for _, c := range []Curve{ToshibaMK156F, FujitsuM2266, Linear{StartupMS: 2, PerCylMS: 0.01}} {
		if got := c.SeekMS(0); got != 0 {
			t.Errorf("%T: SeekMS(0) = %v, want 0", c, got)
		}
	}
}

func TestNegativeDistanceUsesAbs(t *testing.T) {
	for _, d := range []int{1, 17, 315, 800} {
		if a, b := ToshibaMK156F.SeekMS(d), ToshibaMK156F.SeekMS(-d); a != b {
			t.Errorf("SeekMS(%d)=%v != SeekMS(%d)=%v", d, a, -d, b)
		}
	}
}

func TestToshibaCurveValues(t *testing.T) {
	// Spot-check Table 1's short form: 6.248 + 1.393√d − 0.99∛d + 0.813 ln d.
	cases := []struct {
		d    int
		want float64
	}{
		{1, 6.248 + 1.393 - 0.99},
		{100, 6.248 + 1.393*10 - 0.99*math.Cbrt(100) + 0.813*math.Log(100)},
		{314, 6.248 + 1.393*math.Sqrt(314) - 0.99*math.Cbrt(314) + 0.813*math.Log(314)},
		{315, 17.503 + 0.03*315}, // long form at the knee (d >= 315)
		{814, 17.503 + 0.03*814},
	}
	for _, c := range cases {
		if got := ToshibaMK156F.SeekMS(c.d); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Toshiba SeekMS(%d) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestFujitsuCurveValues(t *testing.T) {
	cases := []struct {
		d    int
		want float64
	}{
		{1, 1.205 + 0.65 - 0.734},
		{225, 1.205 + 0.65*15 - 0.734*math.Cbrt(225) + 0.659*math.Log(225)}, // short form includes 225
		{226, 7.44 + 0.0114*226},
		{1657, 7.44 + 0.0114*1657},
	}
	for _, c := range cases {
		if got := FujitsuM2266.SeekMS(c.d); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Fujitsu SeekMS(%d) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestCurvesMonotonicWithinPieces(t *testing.T) {
	// The published Table 1 curves are mildly discontinuous exactly at
	// the knee (the fitted short form overshoots the long form there),
	// so monotonicity is only guaranteed within each piece.
	for _, tc := range []struct {
		name string
		c    Piecewise
		max  int
	}{
		{"toshiba", ToshibaMK156F, 815},
		{"fujitsu", FujitsuM2266, 1658},
	} {
		prev := 0.0
		for d := 1; d < tc.max; d++ {
			got := tc.c.SeekMS(d)
			atKnee := d == tc.max || (tc.c.KneeInclusive && d == tc.c.Knee) ||
				(!tc.c.KneeInclusive && d == tc.c.Knee+1)
			if got < prev && !atKnee {
				t.Errorf("%s: SeekMS(%d)=%v < SeekMS(%d)=%v", tc.name, d, got, d-1, prev)
				break
			}
			prev = got
		}
	}
}

func TestFullStrokeTimesPlausible(t *testing.T) {
	// A full-stroke seek on drives of this era is tens of milliseconds.
	if got := ToshibaMK156F.SeekMS(814); got < 25 || got > 60 {
		t.Errorf("Toshiba full stroke = %v ms, implausible", got)
	}
	if got := FujitsuM2266.SeekMS(1657); got < 15 || got > 40 {
		t.Errorf("Fujitsu full stroke = %v ms, implausible", got)
	}
}

func TestLinearCurve(t *testing.T) {
	l := Linear{StartupMS: 3, PerCylMS: 0.02}
	if got := l.SeekMS(100); math.Abs(got-5) > 1e-12 {
		t.Errorf("Linear SeekMS(100) = %v, want 5", got)
	}
}

func TestMeanMS(t *testing.T) {
	l := Linear{StartupMS: 1, PerCylMS: 1}
	hist := map[int]int64{0: 2, 1: 1, 3: 1} // times: 0,0,2,4 -> mean 1.5
	if got := MeanMS(l, hist); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("MeanMS = %v, want 1.5", got)
	}
}

func TestMeanMSEmpty(t *testing.T) {
	if got := MeanMS(ToshibaMK156F, nil); got != 0 {
		t.Errorf("MeanMS(empty) = %v, want 0", got)
	}
	if got := MeanMS(ToshibaMK156F, map[int]int64{5: 0, 7: -2}); got != 0 {
		t.Errorf("MeanMS(non-positive counts) = %v, want 0", got)
	}
}

func TestMeanMSProperty(t *testing.T) {
	// The mean over any distribution lies between min and max curve
	// values over the support.
	f := func(ds [8]uint16, counts [8]uint8) bool {
		hist := map[int]int64{}
		for i, d := range ds {
			if counts[i] == 0 {
				continue
			}
			hist[int(d%815)] += int64(counts[i])
		}
		if len(hist) == 0 {
			return MeanMS(ToshibaMK156F, hist) == 0
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for d := range hist {
			v := ToshibaMK156F.SeekMS(d)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		m := MeanMS(ToshibaMK156F, hist)
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPiecewiseString(t *testing.T) {
	if s := ToshibaMK156F.String(); s == "" {
		t.Error("String() returned empty")
	}
}
