package seek

import "testing"

// TestTableBitIdentical is the contract that lets the disk model swap a
// Table in for the analytic curve: every distance a real geometry can
// produce must return the exact same float64, including past the table
// (fallback) and for negative distances.
func TestTableBitIdentical(t *testing.T) {
	curves := []struct {
		name string
		c    Curve
	}{
		{"toshiba", ToshibaMK156F},
		{"fujitsu", FujitsuM2266},
		{"linear", Linear{StartupMS: 2, PerCylMS: 0.01}},
	}
	for _, tc := range curves {
		tab := NewTable(tc.c, 1657)
		for d := -1700; d <= 1700; d++ {
			if got, want := tab.SeekMS(d), tc.c.SeekMS(d); got != want {
				t.Fatalf("%s: Table.SeekMS(%d) = %v, curve gives %v", tc.name, d, got, want)
			}
		}
		// Past the table end: fallback to the wrapped curve.
		if got, want := tab.SeekMS(5000), tc.c.SeekMS(5000); got != want {
			t.Errorf("%s: fallback SeekMS(5000) = %v, want %v", tc.name, got, want)
		}
	}
}

func TestTableZeroAndTinySizes(t *testing.T) {
	tab := NewTable(ToshibaMK156F, 0)
	if tab.SeekMS(0) != 0 {
		t.Errorf("SeekMS(0) = %v, want 0", tab.SeekMS(0))
	}
	if got, want := tab.SeekMS(1), ToshibaMK156F.SeekMS(1); got != want {
		t.Errorf("SeekMS(1) past a size-0 table = %v, want %v", got, want)
	}
	neg := NewTable(ToshibaMK156F, -5)
	if neg.SeekMS(0) != 0 {
		t.Errorf("negative-size table: SeekMS(0) = %v, want 0", neg.SeekMS(0))
	}
}

func BenchmarkCurveDirect(b *testing.B) {
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += FujitsuM2266.SeekMS(i & 1023)
	}
	_ = sum
}

func BenchmarkCurveTable(b *testing.B) {
	tab := NewTable(FujitsuM2266, 1657)
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += tab.SeekMS(i & 1023)
	}
	_ = sum
}
