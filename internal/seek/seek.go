// Package seek implements disk seek-time models.
//
// Table 1 of "Adaptive Block Rearrangement Under UNIX" gives measured
// seek-time functions for the two disks used in the paper's experiments,
// each a piecewise curve of the form
//
//	seektime(d) = 0                                   if d == 0
//	seektime(d) = a + b·√d + c·∛d + e·ln d            if d < knee
//	seektime(d) = f + g·d                             if d ≥ knee
//
// where d is the seek distance in cylinders and the result is in
// milliseconds. The short-seek curve captures the acceleration phase of
// the disk arm; the long-seek curve is the linear coast phase.
package seek

import (
	"fmt"
	"math"
	"sort"
)

// Curve computes seek time in milliseconds from a distance in cylinders.
// Implementations must return 0 for d == 0 and a non-negative,
// monotonically non-decreasing value otherwise.
type Curve interface {
	// SeekMS returns the seek time in milliseconds for a head movement
	// of d cylinders. d may be negative; only |d| matters.
	SeekMS(d int) float64
}

// Piecewise is the two-part seek curve used in Table 1 of the paper.
type Piecewise struct {
	// Knee is the distance (in cylinders) at which the curve switches
	// from the short-seek to the long-seek form.
	Knee int
	// KneeInclusive selects whether a seek of exactly Knee cylinders
	// uses the long form (true, "d >= knee") or the short form
	// (false, "d <= knee" uses short up to and including Knee).
	KneeInclusive bool
	// A, B, C, E are the short-seek coefficients:
	// A + B·√d + C·∛d + E·ln d.
	A, B, C, E float64
	// F, G are the long-seek coefficients: F + G·d.
	F, G float64
}

// SeekMS implements Curve.
func (p Piecewise) SeekMS(d int) float64 {
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	fd := float64(d)
	long := d > p.Knee || (p.KneeInclusive && d == p.Knee)
	if long {
		return p.F + p.G*fd
	}
	return p.A + p.B*math.Sqrt(fd) + p.C*math.Cbrt(fd) + p.E*math.Log(fd)
}

// String renders the curve in the notation of Table 1.
func (p Piecewise) String() string {
	cmp := "<="
	if p.KneeInclusive {
		cmp = "<"
	}
	return fmt.Sprintf("0 if d=0; %.3f%+.3f√d%+.3f∛d%+.3f·ln d if d%s%d; %.3f%+.4f·d otherwise",
		p.A, p.B, p.C, p.E, cmp, p.Knee, p.F, p.G)
}

// ToshibaMK156F is the measured seek-time function for the Toshiba
// MK156F 135 MB SCSI disk (Table 1, borrowed by the paper from Jobalia's
// thesis):
//
//	seektime(d) = 6.248 + 1.393√d − 0.99∛d + 0.813·ln d   if d < 315
//	seektime(d) = 17.503 + 0.03d                           if d ≥ 315
var ToshibaMK156F = Piecewise{
	Knee: 315, KneeInclusive: true,
	A: 6.248, B: 1.393, C: -0.99, E: 0.813,
	F: 17.503, G: 0.03,
}

// FujitsuM2266 is the seek-time function the authors derived for the
// Fujitsu M2266 1 GB SCSI disk (Table 1):
//
//	seektime(d) = 1.205 + 0.65√d − 0.734∛d + 0.659·ln d   if d ≤ 225
//	seektime(d) = 7.44 + 0.0114d                           if d > 225
var FujitsuM2266 = Piecewise{
	Knee: 225, KneeInclusive: false,
	A: 1.205, B: 0.65, C: -0.734, E: 0.659,
	F: 7.44, G: 0.0114,
}

// Linear is a simple affine seek curve useful for synthetic disks in
// tests: startup + perCyl·d, and 0 when d == 0.
type Linear struct {
	// StartupMS is the fixed arm start/settle cost in milliseconds.
	StartupMS float64
	// PerCylMS is the incremental cost per cylinder in milliseconds.
	PerCylMS float64
}

// SeekMS implements Curve.
func (l Linear) SeekMS(d int) float64 {
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	return l.StartupMS + l.PerCylMS*float64(d)
}

// MeanMS returns the mean seek time of the curve over a distance
// distribution given as a histogram: hist[d] is the number of seeks of
// distance d. It returns 0 if the histogram is empty. The paper computes
// its reported seek times exactly this way, from measured seek-distance
// distributions and the Table 1 curves.
func MeanMS(c Curve, hist map[int]int64) float64 {
	// Sum in sorted key order so the floating-point result is exactly
	// reproducible (simulations promise bit-for-bit determinism).
	keys := make([]int, 0, len(hist))
	for d := range hist {
		keys = append(keys, d)
	}
	sort.Ints(keys)
	var n int64
	var sum float64
	for _, d := range keys {
		cnt := hist[d]
		if cnt <= 0 {
			continue
		}
		n += cnt
		sum += float64(cnt) * c.SeekMS(d)
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
