package seek

// Table is a Curve memoized into a dense per-distance lookup array.
// The paper's curves cost a √, a ∛ and a ln per evaluation, and the
// disk model evaluates one per request on its hottest path; a disk has
// at most a few thousand cylinders, so the entire curve fits in a few
// KB precomputed at disk construction. Values are the exact float64s
// the wrapped curve returns — a Table is bit-for-bit equivalent to its
// source, so swapping one in cannot perturb simulation results.
type Table struct {
	ms  []float64 // ms[d] for d in [0, len(ms))
	src Curve     // fallback for distances past the table
}

// NewTable precomputes c over distances [0, maxDist]. maxDist is
// typically cylinders−1, the longest seek the geometry allows; larger
// distances (none occur in practice) fall back to the wrapped curve.
func NewTable(c Curve, maxDist int) *Table {
	if maxDist < 0 {
		maxDist = 0
	}
	t := &Table{ms: make([]float64, maxDist+1), src: c}
	for d := 1; d <= maxDist; d++ {
		t.ms[d] = c.SeekMS(d)
	}
	return t
}

// SeekMS implements Curve by table lookup.
func (t *Table) SeekMS(d int) float64 {
	if d < 0 {
		d = -d
	}
	if d < len(t.ms) {
		return t.ms[d]
	}
	return t.src.SeekMS(d)
}
