// Package runner is the harness's parallel job engine: it fans a set of
// independent simulation jobs out across a worker pool, recovers
// per-job panics into errors, honours context cancellation and
// timeouts, and returns results in job order so parallel execution is
// observationally identical to sequential execution.
//
// Jobs must be self-contained: each owns its own sim.Engine and model
// stack and shares no mutable state with other jobs. Under that
// contract the pool's scheduling order cannot affect any job's result,
// and the ordered result slice makes downstream reporting byte-stable
// for any worker count.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one independent unit of simulation work.
type Job struct {
	// Name identifies the job in errors and progress output.
	Name string
	// Units is the job's size in abstract work units (the experiment
	// harness uses simulated days); it only feeds progress reporting.
	Units float64
	// Run executes the job. It must not share mutable state with other
	// jobs and should return promptly once ctx is cancelled.
	Run func(ctx context.Context) (any, error)
}

// Progress is a snapshot of a pool run, delivered after each job
// completes.
type Progress struct {
	// Done and Total count jobs.
	Done, Total int
	// Units is the sum of completed jobs' Units.
	Units float64
	// TotalUnits is the sum over all jobs.
	TotalUnits float64
	// Elapsed is the wall-clock time since Run started.
	Elapsed time.Duration
}

// Rate returns completed units per second, or 0 before any time has
// elapsed.
func (p Progress) Rate() float64 {
	if p.Elapsed <= 0 {
		return 0
	}
	return p.Units / p.Elapsed.Seconds()
}

// Config tunes a pool run.
type Config struct {
	// Workers is the number of concurrent jobs; values < 1 select
	// GOMAXPROCS(0).
	Workers int
	// Timeout bounds the whole run; 0 means no bound. On expiry the
	// shared context is cancelled, running jobs wind down, and Run
	// returns an error wrapping context.DeadlineExceeded.
	Timeout time.Duration
	// OnProgress, when non-nil, is called after each job completes. It
	// is called from worker goroutines under the pool's lock: keep it
	// fast, and do not call back into the pool.
	OnProgress func(Progress)
}

// Metric is one job's harness-level measurements, recorded for every
// job whatever its outcome.
type Metric struct {
	// Name is the job's name.
	Name string
	// Wall is the job's wall-clock execution time (zero for jobs that
	// were skipped after a cancellation).
	Wall time.Duration
	// Units is the job's declared size (the experiment harness uses
	// simulated days).
	Units float64
	// Failed reports whether the job returned an error.
	Failed bool
}

// Rate returns the job's units per wall-clock second — sim-days/sec in
// the experiment harness — or 0 when no time was measured.
func (m Metric) Rate() float64 {
	if m.Wall <= 0 {
		return 0
	}
	return m.Units / m.Wall.Seconds()
}

// Run executes jobs on a worker pool and returns their results in job
// order (results[i] belongs to jobs[i], whatever order they finished
// in). A job that panics fails with an error carrying the panic value
// and stack instead of crashing the process. The first failure cancels
// the shared context; workers drain the remaining queue without
// starting new jobs, and Run reports the failed job with the lowest
// index so the returned error does not depend on scheduling.
func Run(ctx context.Context, jobs []Job, cfg Config) ([]any, error) {
	results, _, err := RunWithMetrics(ctx, jobs, cfg)
	return results, err
}

// RunWithMetrics is Run, additionally returning per-job metrics in job
// order. Metrics are recorded even when the run fails.
func RunWithMetrics(ctx context.Context, jobs []Job, cfg Config) ([]any, []Metric, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil, ctx.Err()
	}
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var totalUnits float64
	for _, j := range jobs {
		totalUnits += j.Units
	}

	results := make([]any, len(jobs))
	errs := make([]error, len(jobs))
	skipped := make([]bool, len(jobs))
	metrics := make([]Metric, len(jobs))
	for i, j := range jobs {
		metrics[i] = Metric{Name: j.Name, Units: j.Units}
	}
	indexes := make(chan int)
	start := time.Now()

	var (
		mu        sync.Mutex
		done      int
		doneUnits float64
	)
	finish := func(i int, v any, err error) {
		results[i], errs[i] = v, err
		if err != nil {
			cancel()
		}
		mu.Lock()
		defer mu.Unlock()
		done++
		doneUnits += jobs[i].Units
		if cfg.OnProgress != nil {
			cfg.OnProgress(Progress{
				Done: done, Total: len(jobs),
				Units: doneUnits, TotalUnits: totalUnits,
				Elapsed: time.Since(start),
			})
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				if err := ctx.Err(); err != nil {
					skipped[i] = true
					metrics[i].Failed = true
					finish(i, nil, fmt.Errorf("not started: %w", err))
					continue
				}
				jobStart := time.Now()
				v, err := runJob(ctx, jobs[i])
				metrics[i].Wall = time.Since(jobStart)
				metrics[i].Failed = err != nil
				finish(i, v, err)
			}
		}()
	}
	for i := range jobs {
		indexes <- i
	}
	close(indexes)
	wg.Wait()

	// Prefer the lowest-index job that genuinely failed over jobs that
	// were merely skipped after cancellation, so the reported error does
	// not depend on which queued jobs the cancel happened to catch.
	for i, err := range errs {
		if err != nil && !skipped[i] {
			return results, metrics, fmt.Errorf("runner: job %q: %w", jobs[i].Name, err)
		}
	}
	for i, err := range errs {
		if err != nil {
			return results, metrics, fmt.Errorf("runner: job %q: %w", jobs[i].Name, err)
		}
	}
	return results, metrics, nil
}

// runJob invokes one job, converting a panic into an error so a single
// bad configuration fails its job rather than the whole process.
func runJob(ctx context.Context, job Job) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v\n%s", p, debug.Stack())
		}
	}()
	return job.Run(ctx)
}
