package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func job(name string, fn func(ctx context.Context) (any, error)) Job {
	return Job{Name: name, Units: 1, Run: fn}
}

func TestResultsInJobOrder(t *testing.T) {
	// Jobs finish in reverse submission order (later jobs sleep less),
	// yet results must come back in job order.
	var jobs []Job
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, job(fmt.Sprint(i), func(context.Context) (any, error) {
			time.Sleep(time.Duration(8-i) * time.Millisecond)
			return i, nil
		}))
	}
	results, err := Run(context.Background(), jobs, Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range results {
		if v.(int) != i {
			t.Fatalf("results out of order: %v", results)
		}
	}
}

func TestWorkerCountIndependence(t *testing.T) {
	mk := func() []Job {
		var jobs []Job
		for i := 0; i < 10; i++ {
			i := i
			jobs = append(jobs, job(fmt.Sprint(i), func(context.Context) (any, error) {
				return i * i, nil
			}))
		}
		return jobs
	}
	seq, err := Run(context.Background(), mk(), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), mk(), Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("worker count changed results: %v vs %v", seq, par)
		}
	}
}

func TestPanicBecomesError(t *testing.T) {
	jobs := []Job{
		job("ok", func(context.Context) (any, error) { return "fine", nil }),
		job("boom", func(context.Context) (any, error) { panic("kapow") }),
	}
	_, err := Run(context.Background(), jobs, Config{Workers: 2})
	if err == nil {
		t.Fatal("panicking job did not fail the run")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kapow") {
		t.Errorf("error lacks job name or panic value: %v", err)
	}
}

func TestFirstErrorCancelsRemaining(t *testing.T) {
	// One worker: job 1 fails, jobs 2..9 must be skipped without
	// running, and the reported error must be job 1's real failure, not
	// a skipped job's cancellation.
	boom := errors.New("boom")
	var ran atomic.Int32
	jobs := []Job{
		job("ok", func(context.Context) (any, error) { ran.Add(1); return nil, nil }),
		job("bad", func(context.Context) (any, error) { ran.Add(1); return nil, boom }),
	}
	for i := 2; i < 10; i++ {
		jobs = append(jobs, job(fmt.Sprint(i), func(context.Context) (any, error) {
			ran.Add(1)
			return nil, nil
		}))
	}
	_, err := Run(context.Background(), jobs, Config{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real failure", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error does not name the failed job: %v", err)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("%d jobs ran after failure, want 2", got)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	jobs := []Job{
		job("waits", func(ctx context.Context) (any, error) {
			close(started)
			<-ctx.Done()
			return nil, ctx.Err()
		}),
		job("never", func(context.Context) (any, error) { return nil, nil }),
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := Run(ctx, jobs, Config{Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestTimeout(t *testing.T) {
	jobs := []Job{job("slow", func(ctx context.Context) (any, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(10 * time.Second):
			return nil, nil
		}
	})}
	start := time.Now()
	_, err := Run(context.Background(), jobs, Config{Workers: 1, Timeout: 20 * time.Millisecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("timeout did not cut the run short")
	}
}

func TestProgressReporting(t *testing.T) {
	var snaps []Progress
	jobs := []Job{
		{Name: "a", Units: 2, Run: func(context.Context) (any, error) { return nil, nil }},
		{Name: "b", Units: 3, Run: func(context.Context) (any, error) { return nil, nil }},
	}
	_, err := Run(context.Background(), jobs, Config{
		Workers:    1,
		OnProgress: func(p Progress) { snaps = append(snaps, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("%d progress snapshots, want 2", len(snaps))
	}
	last := snaps[1]
	if last.Done != 2 || last.Total != 2 || last.Units != 5 || last.TotalUnits != 5 {
		t.Errorf("final snapshot = %+v", last)
	}
	for _, p := range snaps {
		if p.TotalUnits != 5 {
			t.Errorf("TotalUnits = %v, want 5", p.TotalUnits)
		}
	}
}

func TestProgressRate(t *testing.T) {
	if (Progress{}).Rate() != 0 {
		t.Error("zero-elapsed rate not 0")
	}
	p := Progress{Units: 10, Elapsed: 2 * time.Second}
	if got := p.Rate(); got != 5 {
		t.Errorf("Rate = %v, want 5", got)
	}
}

func TestEmptyJobs(t *testing.T) {
	results, err := Run(context.Background(), nil, Config{})
	if err != nil || len(results) != 0 {
		t.Fatalf("empty run: results=%v err=%v", results, err)
	}
}

func TestNilContext(t *testing.T) {
	results, err := Run(nil, []Job{job("x", func(context.Context) (any, error) { return 7, nil })}, Config{})
	if err != nil || results[0].(int) != 7 {
		t.Fatalf("nil ctx run: results=%v err=%v", results, err)
	}
}

func TestManyJobsFewWorkers(t *testing.T) {
	var peak, cur atomic.Int32
	var jobs []Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, job(fmt.Sprint(i), func(context.Context) (any, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}))
	}
	if _, err := Run(context.Background(), jobs, Config{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 4 {
		t.Errorf("concurrency peaked at %d, want <= 4", p)
	}
}

func TestRunWithMetrics(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		{Name: "ok", Units: 3, Run: func(context.Context) (any, error) {
			time.Sleep(2 * time.Millisecond)
			return 1, nil
		}},
		{Name: "bad", Units: 2, Run: func(context.Context) (any, error) {
			return nil, boom
		}},
	}
	_, metrics, err := RunWithMetrics(context.Background(), jobs, Config{Workers: 2})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if len(metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(metrics))
	}
	ok, bad := metrics[0], metrics[1]
	if ok.Name != "ok" || ok.Units != 3 || ok.Failed || ok.Wall <= 0 {
		t.Errorf("ok metric = %+v", ok)
	}
	if ok.Rate() <= 0 {
		t.Errorf("ok rate = %v, want > 0", ok.Rate())
	}
	if bad.Name != "bad" || !bad.Failed {
		t.Errorf("bad metric = %+v", bad)
	}
	if (Metric{}).Rate() != 0 {
		t.Error("zero metric should have zero rate")
	}
}

func TestMetricsOnSkippedJobs(t *testing.T) {
	boom := errors.New("boom")
	var jobs []Job
	jobs = append(jobs, job("fail", func(context.Context) (any, error) { return nil, boom }))
	for i := 0; i < 20; i++ {
		jobs = append(jobs, job(fmt.Sprint(i), func(ctx context.Context) (any, error) {
			time.Sleep(time.Millisecond)
			return nil, ctx.Err()
		}))
	}
	_, metrics, err := RunWithMetrics(context.Background(), jobs, Config{Workers: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	skipped := 0
	for _, m := range metrics[1:] {
		if m.Failed && m.Wall == 0 {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("cancellation skipped no jobs, expected Failed metrics with zero wall time")
	}
}
