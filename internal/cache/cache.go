// Package cache implements the main-memory buffer cache that sits
// between the file system and the disk driver (Section 3.1 of "Adaptive
// Block Rearrangement Under UNIX").
//
// All file I/O goes through the buffer cache. Read requests reach the
// disk only on a miss. Updated blocks are not written back immediately:
// they stay dirty in the cache and are flushed in bulk by the periodic
// update (sync) policy — the mechanism that makes UNIX write traffic
// arrive at the disk in bursts, which in turn is what makes the paper's
// waiting-time reductions large. The cache is an LRU over whole file
// system blocks; evicting a dirty block writes it back first.
package cache

import (
	"container/list"
	"fmt"

	"repro/internal/driver"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// pressure defaults.
const defaultPressureFrac = 0.1

// DefaultSyncPeriodMS is the update daemon's period: the traditional
// UNIX 30 seconds.
const DefaultSyncPeriodMS = 30 * 1000

// Config carries cache tunables.
type Config struct {
	// CapacityBlocks is the cache size in blocks; zero selects 1024
	// (8 MB of 8 KB blocks — a modest slice of Sakarya's 32 MB).
	CapacityBlocks int
	// SyncPeriodMS is the update policy period; zero selects 30 s.
	SyncPeriodMS float64
	// PressurePeriodMS, when positive, models external memory pressure:
	// every period the cache drops PressureFrac of its clean blocks at
	// random (the VM system stealing pages for other processes), so
	// even very hot blocks periodically re-miss — which is why real
	// disks still see skewed read streams under a large cache. The
	// pressure daemon runs with the sync daemon.
	PressurePeriodMS float64
	// PressureFrac is the fraction dropped per period; zero with
	// pressure enabled selects 0.1.
	PressureFrac float64
	// Seed seeds the pressure daemon's random choices.
	Seed uint64
}

// Cache is a buffer cache bound to one partition of one block device —
// a single driver or a multi-disk volume. Like the rest of the stack it
// is event-driven and single-threaded.
type Cache struct {
	eng  *sim.Engine
	drv  driver.BlockDevice
	part int
	cfg  Config

	entries map[int64]*list.Element // block number -> *entry element
	lru     *list.List              // front = most recently used

	// In-flight block reads, so concurrent misses on one block issue a
	// single disk request.
	inflight map[int64][]func([]byte, error)

	syncing bool
	syncSeq int
	rnd     *sim.Rand

	// free heads the pool of zero-delay completion records (see
	// delivery). Single-threaded like the rest of the cache.
	free *delivery

	hits, misses, writebacks int64
}

// delivery is a pooled zero-delay completion event. Cache hits and
// write acknowledgements outnumber every other event in the stack, and
// each used to allocate a fresh closure for its After(0); finished
// records go back on the cache's free list and are rescheduled through
// sim.AfterCall instead. At most one of read and write is set.
type delivery struct {
	c     *Cache
	next  *delivery
	data  []byte
	read  func([]byte, error)
	write func(error)
}

// Call fires the deferred completion. The record returns to the pool
// before the callback runs, so the callback can issue new cache
// operations that reuse it.
func (d *delivery) Call() {
	c, data, read, write := d.c, d.data, d.read, d.write
	d.data, d.read, d.write = nil, nil, nil
	d.next, c.free = c.free, d
	switch {
	case read != nil:
		read(data, nil)
	case write != nil:
		write(nil)
	}
}

// deliverRead schedules done(data, nil) as a zero-delay event without
// allocating. A nil done still fires an (empty) event, keeping the
// engine's event and sequence streams identical either way.
func (c *Cache) deliverRead(data []byte, done func([]byte, error)) {
	d := c.free
	if d == nil {
		d = &delivery{c: c}
	} else {
		c.free = d.next
	}
	d.data, d.read = data, done
	c.eng.AfterCall(0, d)
}

// deliverWrite schedules done(nil) as a zero-delay event without
// allocating.
func (c *Cache) deliverWrite(done func(error)) {
	d := c.free
	if d == nil {
		d = &delivery{c: c}
	} else {
		c.free = d.next
	}
	d.write = done
	c.eng.AfterCall(0, d)
}

type entry struct {
	block int64
	data  []byte
	dirty bool
}

// New returns a cache over the given partition.
func New(eng *sim.Engine, drv driver.BlockDevice, part int, cfg Config) *Cache {
	if cfg.CapacityBlocks <= 0 {
		cfg.CapacityBlocks = 1024
	}
	if cfg.SyncPeriodMS <= 0 {
		cfg.SyncPeriodMS = DefaultSyncPeriodMS
	}
	if cfg.PressurePeriodMS > 0 && cfg.PressureFrac <= 0 {
		cfg.PressureFrac = defaultPressureFrac
	}
	return &Cache{
		eng:      eng,
		drv:      drv,
		part:     part,
		cfg:      cfg,
		rnd:      sim.NewRand(cfg.Seed ^ 0xCAC4E),
		entries:  make(map[int64]*list.Element),
		lru:      list.New(),
		inflight: make(map[int64][]func([]byte, error)),
	}
}

// applyPressure drops a random fraction of the clean cached blocks.
func (c *Cache) applyPressure() {
	var victims []int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if !e.dirty && c.rnd.Bool(c.cfg.PressureFrac) {
			victims = append(victims, e.block)
		}
	}
	for _, b := range victims {
		c.Invalidate(b)
	}
}

// Stats returns cumulative hit, miss and write-back counts.
func (c *Cache) Stats() (hits, misses, writebacks int64) {
	return c.hits, c.misses, c.writebacks
}

// BindMetrics registers the cache's lifetime counters in reg under a
// cache="name" label, as func-backed metrics resolved at snapshot time
// — the hot path is untouched.
func (c *Cache) BindMetrics(reg *metrics.Registry, name string) {
	lbl := metrics.Label{Key: "cache", Value: name}
	reg.CounterFunc("cache_hits", func() int64 { return c.hits }, lbl)
	reg.CounterFunc("cache_misses", func() int64 { return c.misses }, lbl)
	reg.CounterFunc("cache_writebacks", func() int64 { return c.writebacks }, lbl)
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int { return c.lru.Len() }

// DirtyLen returns the number of dirty cached blocks.
func (c *Cache) DirtyLen() int {
	var n int
	for e := c.lru.Front(); e != nil; e = e.Next() {
		if e.Value.(*entry).dirty {
			n++
		}
	}
	return n
}

// Read returns the block's contents, from the cache if present,
// otherwise from disk. The returned slice is the cache's copy; callers
// must not modify it (use Write).
func (c *Cache) Read(block int64, done func(data []byte, err error)) {
	if el, ok := c.entries[block]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		c.deliverRead(el.Value.(*entry).data, done)
		return
	}
	if waiters, ok := c.inflight[block]; ok {
		c.misses++
		c.inflight[block] = append(waiters, done)
		return
	}
	c.misses++
	c.inflight[block] = append([]func([]byte, error){}, done)
	c.drv.ReadBlock(c.part, block, func(data []byte, err error) {
		waiters := c.inflight[block]
		delete(c.inflight, block)
		if err == nil {
			c.insert(block, data, false)
		}
		for _, w := range waiters {
			if w != nil {
				w(data, err)
			}
		}
	})
}

// Write updates the block in the cache and marks it dirty; the disk
// write is deferred to the update policy (or eviction). done fires once
// the block is in the cache — not when it reaches disk. The cache takes
// a private copy of data; callers that can hand their buffer over
// should use WriteOwned instead.
func (c *Cache) Write(block int64, data []byte, done func(err error)) {
	if len(data) != c.drv.BlockSize().Bytes() {
		c.eng.After(0, func() {
			if done != nil {
				done(fmt.Errorf("cache: write of %d bytes, block size is %d",
					len(data), c.drv.BlockSize().Bytes()))
			}
		})
		return
	}
	c.WriteOwned(block, append([]byte(nil), data...), done)
}

// WriteOwned is Write with ownership transfer: the cache installs data
// directly as its copy of the block, so the caller must not read or
// modify the buffer after the call. The file system's serialization
// paths encode every block into a fresh buffer; handing that buffer
// over skips Write's defensive copy of every written block.
func (c *Cache) WriteOwned(block int64, data []byte, done func(err error)) {
	if len(data) != c.drv.BlockSize().Bytes() {
		c.eng.After(0, func() {
			if done != nil {
				done(fmt.Errorf("cache: write of %d bytes, block size is %d",
					len(data), c.drv.BlockSize().Bytes()))
			}
		})
		return
	}
	if el, ok := c.entries[block]; ok {
		e := el.Value.(*entry)
		e.data = data
		e.dirty = true
		c.lru.MoveToFront(el)
	} else {
		c.insert(block, data, true)
	}
	c.deliverWrite(done)
}

// WriteThrough updates the block in the cache (kept clean) and writes it
// to disk immediately; done fires when the disk write completes. NFS2
// servers wrote client data synchronously, so the users-workload
// experiments use this path for file data. The cache takes a private
// copy of data; see WriteThroughOwned for the ownership-transfer
// variant.
func (c *Cache) WriteThrough(block int64, data []byte, done func(err error)) {
	if len(data) != c.drv.BlockSize().Bytes() {
		c.eng.After(0, func() {
			if done != nil {
				done(fmt.Errorf("cache: write of %d bytes, block size is %d",
					len(data), c.drv.BlockSize().Bytes()))
			}
		})
		return
	}
	c.WriteThroughOwned(block, append([]byte(nil), data...), done)
}

// WriteThroughOwned is WriteThrough with ownership transfer: data
// becomes the cache's copy of the block (and is handed to the driver
// for the synchronous disk write), so the caller must not read or
// modify the buffer after the call.
func (c *Cache) WriteThroughOwned(block int64, data []byte, done func(err error)) {
	if len(data) != c.drv.BlockSize().Bytes() {
		c.eng.After(0, func() {
			if done != nil {
				done(fmt.Errorf("cache: write of %d bytes, block size is %d",
					len(data), c.drv.BlockSize().Bytes()))
			}
		})
		return
	}
	if el, ok := c.entries[block]; ok {
		e := el.Value.(*entry)
		e.data = data
		e.dirty = false
		c.lru.MoveToFront(el)
	} else {
		c.insert(block, data, false)
	}
	c.writebacks++
	c.drv.WriteBlock(c.part, block, data, func(_ []byte, err error) {
		if done != nil {
			done(err)
		}
	})
}

// insert adds a block to the cache, evicting (and writing back) as
// needed.
func (c *Cache) insert(block int64, data []byte, dirty bool) {
	if el, ok := c.entries[block]; ok {
		e := el.Value.(*entry)
		e.data = data
		e.dirty = e.dirty || dirty
		c.lru.MoveToFront(el)
		return
	}
	for c.lru.Len() >= c.cfg.CapacityBlocks {
		c.evictOne()
	}
	el := c.lru.PushFront(&entry{block: block, data: data, dirty: dirty})
	c.entries[block] = el
}

// evictOne removes the least recently used block, writing it back first
// if dirty. The write-back is asynchronous; the cache slot is released
// immediately (the data lives on in the driver's request).
func (c *Cache) evictOne() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.lru.Remove(el)
	delete(c.entries, e.block)
	if e.dirty {
		c.writebacks++
		c.drv.WriteBlock(c.part, e.block, e.data, nil)
	}
}

// Sync writes every dirty block to disk, as the update daemon does. done
// fires when all write-backs have completed.
func (c *Cache) Sync(done func(err error)) {
	var dirty []*entry
	for el := c.lru.Front(); el != nil; el = el.Next() {
		if e := el.Value.(*entry); e.dirty {
			dirty = append(dirty, e)
		}
	}
	if len(dirty) == 0 {
		c.deliverWrite(done)
		return
	}
	remaining := len(dirty)
	var firstErr error
	for _, e := range dirty {
		e := e
		e.dirty = false
		c.writebacks++
		c.drv.WriteBlock(c.part, e.block, e.data, func(_ []byte, err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(firstErr)
			}
		})
	}
}

// StartSyncDaemon begins the periodic update policy.
func (c *Cache) StartSyncDaemon() {
	if c.syncing {
		return
	}
	c.syncing = true
	c.syncSeq++
	seq := c.syncSeq
	var tick func()
	tick = func() {
		if !c.syncing || seq != c.syncSeq {
			return
		}
		c.Sync(nil)
		c.eng.After(c.cfg.SyncPeriodMS, tick)
	}
	c.eng.After(c.cfg.SyncPeriodMS, tick)
	if c.cfg.PressurePeriodMS > 0 {
		var ptick func()
		ptick = func() {
			if !c.syncing || seq != c.syncSeq {
				return
			}
			c.applyPressure()
			c.eng.After(c.cfg.PressurePeriodMS, ptick)
		}
		c.eng.After(c.cfg.PressurePeriodMS, ptick)
	}
}

// StopSyncDaemon stops the periodic update policy (dirty blocks remain
// cached until Sync or eviction).
func (c *Cache) StopSyncDaemon() {
	c.syncing = false
	c.syncSeq++
}

// Invalidate drops a block from the cache without writing it back. The
// file system uses it when freeing blocks.
func (c *Cache) Invalidate(block int64) {
	if el, ok := c.entries[block]; ok {
		c.lru.Remove(el)
		delete(c.entries, block)
	}
}
