package cache

import (
	"bytes"
	"testing"

	"repro/internal/rig"
)

func newRig(t *testing.T) (*rig.Rig, *Cache) {
	t.Helper()
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	c := New(r.Eng, r.Driver, 0, Config{CapacityBlocks: 8, SyncPeriodMS: 1000})
	return r, c
}

func block(r *rig.Rig, b byte) []byte {
	return bytes.Repeat([]byte{b}, r.Driver.BlockSize().Bytes())
}

func TestReadMissThenHit(t *testing.T) {
	r, c := newRig(t)
	var first, second []byte
	c.Read(10, func(data []byte, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		first = data
	})
	r.Eng.Run()
	c.Read(10, func(data []byte, err error) { second = data })
	r.Eng.Run()
	if first == nil || second == nil {
		t.Fatal("reads did not complete")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestHitIsFasterThanMiss(t *testing.T) {
	r, c := newRig(t)
	start := r.Eng.Now()
	var missTime float64
	c.Read(10, func(_ []byte, _ error) { missTime = r.Eng.Now() - start })
	r.Eng.Run()
	start2 := r.Eng.Now()
	var hitTime float64
	c.Read(10, func(_ []byte, _ error) { hitTime = r.Eng.Now() - start2 })
	r.Eng.Run()
	if missTime <= 0 {
		t.Error("miss took no time")
	}
	if hitTime != 0 {
		t.Errorf("hit took %v ms, want 0 (no disk I/O)", hitTime)
	}
}

func TestWriteIsDeferred(t *testing.T) {
	r, c := newRig(t)
	data := block(r, 0xAB)
	c.Write(5, data, nil)
	r.Eng.Run()
	// Nothing on disk yet.
	st := r.Driver.PeekStats()
	if n := st.WriteSide.Count(); n != 0 {
		t.Errorf("%d disk writes before sync", n)
	}
	if c.DirtyLen() != 1 {
		t.Errorf("DirtyLen = %d", c.DirtyLen())
	}
	var serr error
	c.Sync(func(err error) { serr = err })
	r.Eng.Run()
	if serr != nil {
		t.Fatal(serr)
	}
	if n := r.Driver.PeekStats().WriteSide.Count(); n != 1 {
		t.Errorf("%d disk writes after sync, want 1", n)
	}
	if c.DirtyLen() != 0 {
		t.Error("block still dirty after sync")
	}
	// The data actually reached the disk: a fresh read after
	// invalidation returns it.
	c.Invalidate(5)
	var got []byte
	c.Read(5, func(d []byte, err error) { got = d })
	r.Eng.Run()
	if !bytes.Equal(got, data) {
		t.Error("synced data not on disk")
	}
}

func TestWriteThenReadFromCache(t *testing.T) {
	r, c := newRig(t)
	data := block(r, 0x31)
	c.Write(7, data, nil)
	var got []byte
	c.Read(7, func(d []byte, err error) { got = d })
	r.Eng.Run()
	if !bytes.Equal(got, data) {
		t.Error("read did not see cached write")
	}
}

func TestWriteSizeValidation(t *testing.T) {
	r, c := newRig(t)
	var got error
	c.Write(1, []byte{1, 2, 3}, func(err error) { got = err })
	r.Eng.Run()
	if got == nil {
		t.Error("short write accepted")
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	r, c := newRig(t) // capacity 8
	data := block(r, 0x66)
	c.Write(0, data, nil)
	r.Eng.Run()
	// Fill the cache well past capacity with reads.
	for i := int64(100); i < 120; i++ {
		c.Read(i, nil)
		r.Eng.Run()
	}
	if c.Len() > 8 {
		t.Errorf("cache grew to %d blocks", c.Len())
	}
	_, _, wb := c.Stats()
	if wb != 1 {
		t.Errorf("writebacks = %d, want 1", wb)
	}
	r.Eng.Run()
	// Evicted dirty block must be readable from disk.
	var got []byte
	c.Read(0, func(d []byte, err error) { got = d })
	r.Eng.Run()
	if !bytes.Equal(got, data) {
		t.Error("evicted dirty block lost")
	}
}

func TestConcurrentMissesShareOneDiskRead(t *testing.T) {
	r, c := newRig(t)
	var done int
	for i := 0; i < 5; i++ {
		c.Read(42, func(_ []byte, err error) {
			if err != nil {
				t.Errorf("read: %v", err)
			}
			done++
		})
	}
	r.Eng.Run()
	if done != 5 {
		t.Fatalf("%d of 5 reads completed", done)
	}
	if n := r.Driver.PeekStats().ReadSide.Count(); n != 1 {
		t.Errorf("%d disk reads for 5 concurrent misses", n)
	}
}

func TestSyncDaemonFlushesPeriodically(t *testing.T) {
	r, c := newRig(t) // sync period 1000 ms
	c.StartSyncDaemon()
	c.Write(3, block(r, 1), nil)
	r.Eng.RunUntil(500)
	if n := r.Driver.PeekStats().WriteSide.Count(); n != 0 {
		t.Errorf("flushed before the period elapsed (%d writes)", n)
	}
	r.Eng.RunUntil(1500)
	if n := r.Driver.PeekStats().WriteSide.Count(); n != 1 {
		t.Errorf("daemon flushed %d writes, want 1", n)
	}
	// Dirty again; daemon keeps running.
	c.Write(4, block(r, 2), nil)
	r.Eng.RunUntil(2500)
	if n := r.Driver.PeekStats().WriteSide.Count(); n != 2 {
		t.Errorf("second flush: %d writes", n)
	}
	c.StopSyncDaemon()
	c.Write(5, block(r, 3), nil)
	r.Eng.RunUntil(10000)
	if n := r.Driver.PeekStats().WriteSide.Count(); n != 2 {
		t.Errorf("daemon still flushing after stop (%d writes)", n)
	}
}

func TestSyncProducesWriteBurst(t *testing.T) {
	// Many dirty blocks flushed together arrive at the driver as one
	// burst — the arrival pattern the paper attributes write queueing to.
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	c := New(r.Eng, r.Driver, 0, Config{CapacityBlocks: 64, SyncPeriodMS: 60000})
	for i := int64(0); i < 40; i++ {
		c.Write(i*50, block(r, byte(i)), nil)
	}
	r.Eng.Run()
	c.Sync(nil)
	r.Eng.Run()
	st := r.Driver.ReadStats()
	if st.WriteSide.Count() != 40 {
		t.Fatalf("%d writes", st.WriteSide.Count())
	}
	if st.WriteSide.MeanQueueingMS() <= 0 {
		t.Error("burst produced no write queueing")
	}
}

func TestSyncEmptyCache(t *testing.T) {
	r, c := newRig(t)
	var called bool
	c.Sync(func(err error) {
		if err != nil {
			t.Errorf("sync: %v", err)
		}
		called = true
	})
	r.Eng.Run()
	if !called {
		t.Error("sync of empty cache never completed")
	}
}

func TestInvalidate(t *testing.T) {
	r, c := newRig(t)
	c.Read(9, nil)
	r.Eng.Run()
	c.Invalidate(9)
	c.Read(9, nil)
	r.Eng.Run()
	_, misses, _ := c.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 after invalidation", misses)
	}
}

func TestWriteThrough(t *testing.T) {
	r, c := newRig(t)
	data := block(r, 0x77)
	var werr error
	c.WriteThrough(9, data, func(err error) { werr = err })
	r.Eng.Run()
	if werr != nil {
		t.Fatal(werr)
	}
	// The write reached the disk immediately.
	if n := r.Driver.PeekStats().WriteSide.Count(); n != 1 {
		t.Errorf("%d disk writes after write-through, want 1", n)
	}
	// The block is cached clean: sync produces nothing further.
	if c.DirtyLen() != 0 {
		t.Error("write-through left the block dirty")
	}
	var got []byte
	c.Read(9, func(d []byte, err error) { got = d })
	r.Eng.Run()
	if !bytes.Equal(got, data) {
		t.Error("write-through data not visible in cache")
	}
}

func TestWriteThroughSizeValidation(t *testing.T) {
	r, c := newRig(t)
	var werr error
	c.WriteThrough(1, []byte{1}, func(err error) { werr = err })
	r.Eng.Run()
	if werr == nil {
		t.Error("short write-through accepted")
	}
}

func TestPressureDropsCleanBlocks(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	c := New(r.Eng, r.Driver, 0, Config{
		CapacityBlocks:   64,
		SyncPeriodMS:     1000,
		PressurePeriodMS: 1000,
		PressureFrac:     1.0, // drop everything each period
		Seed:             7,
	})
	for i := int64(0); i < 20; i++ {
		c.Read(i*10, nil)
	}
	r.Eng.Run()
	if c.Len() != 20 {
		t.Fatalf("cache holds %d blocks", c.Len())
	}
	c.StartSyncDaemon()
	r.Eng.RunUntil(r.Eng.Now() + 1500)
	if c.Len() != 0 {
		t.Errorf("pressure left %d blocks cached", c.Len())
	}
	c.StopSyncDaemon()
}

func TestPressureSparesDirtyBlocks(t *testing.T) {
	r, err := rig.New(rig.Options{ReservedCyls: 48})
	if err != nil {
		t.Fatal(err)
	}
	c := New(r.Eng, r.Driver, 0, Config{
		CapacityBlocks:   64,
		SyncPeriodMS:     1e9, // effectively never sync
		PressurePeriodMS: 1000,
		PressureFrac:     1.0,
		Seed:             7,
	})
	blockData := make([]byte, r.Driver.BlockSize().Bytes())
	c.Write(5, blockData, nil)
	r.Eng.Run()
	c.StartSyncDaemon()
	r.Eng.RunUntil(r.Eng.Now() + 2500)
	if c.DirtyLen() != 1 {
		t.Errorf("pressure evicted a dirty block (dirty=%d)", c.DirtyLen())
	}
	c.StopSyncDaemon()
}

// The hit and deferred-write paths are the hottest events in the whole
// stack — one zero-delay delivery each — and their completion records
// are pooled (see delivery). Steady state must stay allocation-free;
// a regression here multiplies across every simulated file operation.

func TestReadHitZeroAllocs(t *testing.T) {
	r, c := newRig(t)
	c.Read(10, nil) // prime: miss brings the block in
	r.Eng.Run()
	op := func() {
		c.Read(10, func([]byte, error) {})
		r.Eng.Run()
	}
	for i := 0; i < 16; i++ {
		op()
	}
	if n := testing.AllocsPerRun(200, op); n != 0 {
		t.Errorf("cached read round trip: %v allocs, want 0", n)
	}
}

func TestDeferredWriteZeroAllocs(t *testing.T) {
	r, c := newRig(t)
	data := block(r, 0xCD)
	op := func() {
		c.WriteOwned(5, data, func(error) {})
		r.Eng.Run()
	}
	for i := 0; i < 16; i++ {
		op()
	}
	if n := testing.AllocsPerRun(200, op); n != 0 {
		t.Errorf("deferred write round trip: %v allocs, want 0", n)
	}
}
