package metrics

import "fmt"

// metricEntry is one registered metric. Counters and gauges are either
// instance-backed (Counter/Gauge) or func-backed (resolved lazily at
// snapshot time); acc accumulates values folded in by Merge.
type metricEntry struct {
	name string
	kind Kind

	counter   *Counter
	counterFn func() int64
	accC      int64

	gauge   *Gauge
	gaugeFn func() float64
	accG    float64

	hist *Histogram
}

func (e *metricEntry) counterValue() int64 {
	v := e.accC
	if e.counterFn != nil {
		v += e.counterFn()
	} else if e.counter != nil {
		v += e.counter.v
	}
	return v
}

func (e *metricEntry) gaugeValue() float64 {
	v := e.accG
	if e.gaugeFn != nil {
		v += e.gaugeFn()
	} else if e.gauge != nil {
		v += e.gauge.v
	}
	return v
}

// Registry holds a set of named metrics in registration order, which is
// also snapshot and export order — a deterministic order for free,
// because registration happens at fixed points in every run.
type Registry struct {
	order  []*metricEntry
	byName map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metricEntry{}}
}

// entry returns the metric for the canonical name, creating it if new.
// A kind clash with an existing name is a programming error and panics,
// like prometheus.MustRegister.
func (r *Registry) entry(name string, kind Kind) (*metricEntry, bool) {
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, e.kind, kind))
		}
		return e, true
	}
	e := &metricEntry{name: name, kind: kind}
	r.order = append(r.order, e)
	r.byName[name] = e
	return e, false
}

// Counter returns the counter with the given name and labels, creating
// it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	e, ok := r.entry(Name(name, labels...), KindCounter)
	if !ok {
		e.counter = &Counter{}
	} else if e.counter == nil {
		panic("metrics: " + e.name + " is func-backed, cannot be requested as a Counter instance")
	}
	return e.counter
}

// Gauge returns the gauge with the given name and labels, creating it
// on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	e, ok := r.entry(Name(name, labels...), KindGauge)
	if !ok {
		e.gauge = &Gauge{}
	} else if e.gauge == nil {
		panic("metrics: " + e.name + " is func-backed, cannot be requested as a Gauge instance")
	}
	return e.gauge
}

// Histogram returns the histogram with the given name and labels,
// creating it with opts on first use (opts are ignored on later calls).
func (r *Registry) Histogram(name string, opts HistogramOpts, labels ...Label) *Histogram {
	e, ok := r.entry(Name(name, labels...), KindHistogram)
	if !ok {
		e.hist = NewHistogram(opts)
	}
	return e.hist
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — the natural fit for layers that already keep lifetime
// counters (driver.Counters, cache.Stats) without touching their hot
// paths. The name must be unused.
func (r *Registry) CounterFunc(name string, fn func() int64, labels ...Label) {
	e, ok := r.entry(Name(name, labels...), KindCounter)
	if ok {
		panic("metrics: CounterFunc re-registers " + e.name)
	}
	e.counterFn = fn
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot
// time. The name must be unused.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...Label) {
	e, ok := r.entry(Name(name, labels...), KindGauge)
	if ok {
		panic("metrics: GaugeFunc re-registers " + e.name)
	}
	e.gaugeFn = fn
}

// Merge folds other's current values into r — the metrics mirror of the
// engine's member fan-in. Counters and gauges add; histograms merge
// bucket-wise; metrics unknown to r are appended in other's
// registration order. Func-backed metrics in other are resolved to
// plain values at merge time, so merging per-shard-member registries in
// member-index order at the end of a run is deterministic.
func (r *Registry) Merge(other *Registry) error {
	for _, o := range other.order {
		e, ok := r.byName[o.name]
		if !ok {
			e = &metricEntry{name: o.name, kind: o.kind}
			if o.kind == KindHistogram {
				e.hist = NewHistogram(HistogramOpts{
					SubBits: o.hist.subBits, MinExp: o.hist.minExp, MaxExp: o.hist.maxExp,
				})
			}
			r.order = append(r.order, e)
			r.byName[o.name] = e
		}
		if e.kind != o.kind {
			return fmt.Errorf("metrics: merge: %s is a %s here, a %s there", o.name, e.kind, o.kind)
		}
		switch o.kind {
		case KindCounter:
			e.accC += o.counterValue()
		case KindGauge:
			e.accG += o.gaugeValue()
		case KindHistogram:
			if err := e.hist.Merge(o.hist); err != nil {
				return fmt.Errorf("%s: %w", o.name, err)
			}
		}
	}
	return nil
}

// Snapshot renders every metric to pure data, in registration order.
// Func-backed metrics are evaluated now, so take the snapshot at a
// deterministic point — the end of a run.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Metrics: make([]MetricSnap, 0, len(r.order))}
	for _, e := range r.order {
		m := MetricSnap{Name: e.name, Kind: e.kind.String()}
		switch e.kind {
		case KindCounter:
			m.Value = float64(e.counterValue())
		case KindGauge:
			m.Value = e.gaugeValue()
		case KindHistogram:
			m.Hist = e.hist.snapshot()
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s
}
