// Package metrics is the simulator's deterministic metrics core:
// monotonic counters, gauges, and log-linear bucketed histograms with
// quantile estimation, organized in labeled registries with mergeable
// snapshots.
//
// The package is built around two contracts the rest of the repository
// already honours:
//
//   - Determinism. Bucket boundaries are exact powers of two split into
//     2^SubBits equal mantissa steps, assembled directly from float64
//     bits (never through a log), so a histogram's state is a pure
//     function of the multiset *and order* of recorded values. Because
//     the simulation replays the same event sequence for any -jobs or
//     -shard value, snapshots are byte-identical across those settings.
//   - Allocation-free recording. Counter.Inc, Gauge.Set and
//     Histogram.Record never allocate: the bucket array is sized at
//     construction. All allocation happens at registration or snapshot
//     time, off the simulation hot path.
//
// Metrics are single-goroutine by design, like the engines they
// instrument: each metric must be recorded from one goroutine at a
// time, and cross-goroutine fan-in happens through Registry.Merge at a
// synchronization point, exactly as the shard coordinator merges member
// engines.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies a metric's type.
type Kind int

// The three metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Label is one name/value dimension of a metric, rendered into the
// canonical metric name as name{key="value"}.
type Label struct {
	Key, Value string
}

// Name renders the canonical full name of a metric: the base name, and
// if labels are present, {k="v",...} with keys sorted so the same label
// set always produces the same string.
func Name(base string, labels ...Label) string {
	if len(labels) == 0 {
		return base
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value for the name{k="v"} syntax (shared
// with the Prometheus text format).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonic event count. Not safe for concurrent use; see
// the package comment for the single-goroutine contract.
type Counter struct{ v int64 }

// Inc adds one. It never allocates.
func (c *Counter) Inc() { c.v++ }

// Add adds n, which must be non-negative.
func (c *Counter) Add(n int64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous value. Not safe for concurrent use.
type Gauge struct{ v float64 }

// Set replaces the value. It never allocates.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }
