package metrics

import (
	"fmt"
	"math"
)

// bias is the IEEE 754 float64 exponent bias.
const bias = 1023

// HistogramOpts parameterizes a log-linear histogram.
type HistogramOpts struct {
	// SubBits is the number of mantissa bits used for sub-bucketing:
	// every power-of-two range is split into 2^SubBits equal-width
	// buckets, bounding the relative quantile error at 2^-SubBits.
	// Zero selects 5 (32 sub-buckets per octave, ≤ 3.2% error);
	// clamped to [1, 8].
	SubBits int
	// MinExp and MaxExp bound the tracked range [2^MinExp, 2^MaxExp):
	// smaller values (including zero and negatives) land in the
	// underflow bucket and report as ≤ 2^MinExp, larger values in the
	// overflow bucket and report as the exact observed max. Both zero
	// selects [-10, 30] — for millisecond latencies, ~1 µs to ~12
	// simulated days.
	MinExp, MaxExp int
}

func (o HistogramOpts) withDefaults() HistogramOpts {
	if o.SubBits == 0 {
		o.SubBits = 5
	}
	if o.SubBits < 1 {
		o.SubBits = 1
	}
	if o.SubBits > 8 {
		o.SubBits = 8
	}
	if o.MinExp == 0 && o.MaxExp == 0 {
		o.MinExp, o.MaxExp = -10, 30
	}
	// Keep 2^MinExp a normal float and 2^MaxExp finite.
	if o.MinExp < -1022 {
		o.MinExp = -1022
	}
	if o.MaxExp > 1023 {
		o.MaxExp = 1023
	}
	if o.MaxExp <= o.MinExp {
		o.MaxExp = o.MinExp + 1
	}
	return o
}

// Histogram is a log-linear (HDR-style) histogram over positive
// float64 values. Bucket index is computed from the raw float64 bits —
// biased exponent plus the top SubBits mantissa bits — so boundaries
// are exact and reconstruction is bit-identical on every platform.
// Record never allocates. Not safe for concurrent use.
type Histogram struct {
	subBits        int
	subCount       int
	minExp, maxExp int
	expLo          int // biased exponent of minVal
	minVal, maxVal float64

	count    int64
	sum      float64
	min, max float64
	buckets  []int64 // [underflow, octaves × subCount, overflow]
}

// NewHistogram returns a histogram with the given bucket layout. All
// buckets are allocated up front so Record is allocation-free.
func NewHistogram(o HistogramOpts) *Histogram {
	o = o.withDefaults()
	h := &Histogram{
		subBits:  o.SubBits,
		subCount: 1 << o.SubBits,
		minExp:   o.MinExp,
		maxExp:   o.MaxExp,
		expLo:    bias + o.MinExp,
		minVal:   math.Ldexp(1, o.MinExp),
		maxVal:   math.Ldexp(1, o.MaxExp),
	}
	h.buckets = make([]int64, 2+(o.MaxExp-o.MinExp)<<o.SubBits)
	return h
}

// Record adds one observation. It never allocates.
func (h *Histogram) Record(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[h.index(v)]++
}

// index maps a value to its bucket. The negated comparison routes NaN,
// zero and negatives to the underflow bucket.
func (h *Histogram) index(v float64) int {
	if !(v >= h.minVal) {
		return 0
	}
	if v >= h.maxVal {
		return len(h.buckets) - 1
	}
	bits := math.Float64bits(v)
	exp := int(bits >> 52)
	sub := int(bits>>(52-uint(h.subBits))) & (h.subCount - 1)
	return 1 + (exp-h.expLo)<<uint(h.subBits) + sub
}

// upperBound returns the exclusive upper boundary of bucket i.
func (h *Histogram) upperBound(i int) float64 {
	return bucketUpper(h.subBits, h.minExp, h.maxExp, i)
}

// bucketUpper reconstructs the exclusive upper boundary of bucket i for
// the given layout. The boundary's bits are assembled directly — the
// integer add carries a full sub-bucket wrap into the exponent field —
// so the result is exact by construction.
func bucketUpper(subBits, minExp, maxExp, i int) float64 {
	last := 1 + (maxExp-minExp)<<uint(subBits)
	switch {
	case i <= 0:
		return math.Ldexp(1, minExp)
	case i >= last:
		return math.Inf(1)
	}
	k := i - 1
	exp := uint64(bias+minExp) + uint64(k>>uint(subBits))
	sub := uint64(k & (1<<uint(subBits) - 1))
	return math.Float64frombits(exp<<52 + (sub+1)<<uint(52-subBits))
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact running sum of recorded values. Because every
// run replays the same record order, the floating-point sum is itself
// deterministic.
func (h *Histogram) Sum() float64 { return h.sum }

// Min returns the smallest recorded value, 0 if none.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, 0 if none.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean, 0 if empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1): the
// boundary of the bucket holding the ceil(q·count)-th smallest value,
// clamped to the exact observed max. The estimate is within 2^-SubBits
// relative error of the true order statistic.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	need := quantileRank(q, h.count)
	var cum int64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum >= need {
			if ub := h.upperBound(i); ub < h.max {
				return ub
			}
			return h.max
		}
	}
	return h.max
}

// quantileRank converts a quantile to a 1-based rank among count
// observations.
func quantileRank(q float64, count int64) int64 {
	need := int64(math.Ceil(q * float64(count)))
	if need < 1 {
		need = 1
	}
	if need > count {
		need = count
	}
	return need
}

// Merge folds other into h bucket-wise. The two histograms must share a
// bucket layout. Merging in a fixed order (job order, member index
// order) keeps the merged sum deterministic.
func (h *Histogram) Merge(other *Histogram) error {
	if other.subBits != h.subBits || other.minExp != h.minExp || other.maxExp != h.maxExp {
		return fmt.Errorf("metrics: merging incompatible histograms: sub_bits %d/%d exp [%d,%d]/[%d,%d]",
			h.subBits, other.subBits, h.minExp, h.maxExp, other.minExp, other.maxExp)
	}
	if other.count == 0 {
		return nil
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.sum += other.sum
	for i, n := range other.buckets {
		if n != 0 {
			h.buckets[i] += n
		}
	}
	return nil
}

// snapshot renders the histogram as pure data with sparse buckets.
func (h *Histogram) snapshot() *HistSnap {
	s := &HistSnap{
		SubBits: h.subBits,
		MinExp:  h.minExp,
		MaxExp:  h.maxExp,
		Count:   h.count,
		Sum:     h.sum,
	}
	if h.count > 0 {
		s.Min, s.Max = h.min, h.max
	}
	for i, n := range h.buckets {
		if n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Index: i, Count: n})
		}
	}
	return s
}
