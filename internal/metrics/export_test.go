package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func sampleJobs() []JobSnapshot {
	r := NewRegistry()
	r.Counter("driver_requests").Add(1234)
	r.Gauge("volume_dead_members").Set(1)
	h := r.Histogram("driver_service_ms", HistogramOpts{}, Label{"disk", "0"})
	for _, v := range []float64{1.5, 2.5, 40} {
		h.Record(v)
	}
	r2 := NewRegistry()
	r2.Counter("driver_requests").Add(99)
	return []JobSnapshot{
		{Job: "volume/disks-1", Metrics: r.Snapshot().Metrics},
		{Job: "volume/disks-4", Metrics: r2.Snapshot().Metrics},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	jobs := sampleJobs()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Job != "volume/disks-1" || got[1].Job != "volume/disks-4" {
		t.Fatalf("round trip jobs = %+v", got)
	}
	if got[0].Metrics[0].Value != 1234 {
		t.Errorf("round trip counter = %g", got[0].Metrics[0].Value)
	}
	h := got[0].Metrics[2].Hist
	if h == nil || h.Count != 3 || h.Max != 40 {
		t.Fatalf("round trip histogram = %+v", h)
	}
	if q := h.Quantile(0.99); q != 40 {
		t.Errorf("round trip p99 = %g, want 40", q)
	}
	// Writing the parsed snapshot again reproduces the bytes — the
	// determinism contract the equivalence tests rely on.
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("JSON snapshot is not byte-stable across a read/write cycle")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("malformed JSON did not error")
	}
	if _, err := ReadJSON(strings.NewReader(`{"schema":9,"jobs":[]}`)); err == nil {
		t.Error("unknown schema did not error")
	}
}

func TestWritePrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, sampleJobs()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE driver_requests counter\n",
		`driver_requests{job="volume/disks-1"} 1234`,
		`driver_requests{job="volume/disks-4"} 99`,
		"# TYPE volume_dead_members gauge\n",
		"# TYPE driver_service_ms summary\n",
		`driver_service_ms{job="volume/disks-1",disk="0",quantile="0.99"}`,
		`driver_service_ms{job="volume/disks-1",disk="0",quantile="0.999"}`,
		`driver_service_ms_sum{job="volume/disks-1",disk="0"} 44`,
		`driver_service_ms_count{job="volume/disks-1",disk="0"} 3`,
		"# TYPE driver_service_ms_max gauge\n",
		`driver_service_ms_max{job="volume/disks-1",disk="0"} 40`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Family grouping: both jobs' driver_requests samples follow one
	// TYPE line, with no second TYPE for the family.
	if strings.Count(out, "# TYPE driver_requests counter") != 1 {
		t.Error("driver_requests family has duplicate TYPE lines")
	}
	i1 := strings.Index(out, `driver_requests{job="volume/disks-1"}`)
	i2 := strings.Index(out, `driver_requests{job="volume/disks-4"}`)
	it := strings.Index(out, "# TYPE volume_dead_members")
	if !(i1 < i2 && i2 < it) {
		t.Error("family samples are not grouped contiguously across jobs")
	}
}
