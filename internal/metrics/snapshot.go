package metrics

// Snapshot is a registry rendered to pure data: no funcs, no live
// state, safe to serialize and compare byte-for-byte.
type Snapshot struct {
	Metrics []MetricSnap `json:"metrics"`
}

// MetricSnap is one metric's snapshot. Value carries counter and gauge
// readings; Hist is set for histograms.
type MetricSnap struct {
	Name  string    `json:"name"`
	Kind  string    `json:"kind"`
	Value float64   `json:"value,omitempty"`
	Hist  *HistSnap `json:"hist,omitempty"`
}

// HistSnap is a histogram snapshot: the bucket layout, the exact
// count/sum/min/max, and the non-empty buckets in ascending index
// order. Quantiles are computed on demand so the snapshot stays small
// and the estimator can evolve without re-recording.
type HistSnap struct {
	SubBits int      `json:"sub_bits"`
	MinExp  int      `json:"min_exp"`
	MaxExp  int      `json:"max_exp"`
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min,omitempty"`
	Max     float64  `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one non-empty histogram bucket.
type Bucket struct {
	Index int   `json:"i"`
	Count int64 `json:"n"`
}

// Mean returns the arithmetic mean, 0 if empty.
func (s *HistSnap) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile mirrors Histogram.Quantile over the sparse bucket list.
func (s *HistSnap) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	need := quantileRank(q, s.Count)
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= need {
			if ub := bucketUpper(s.SubBits, s.MinExp, s.MaxExp, b.Index); ub < s.Max {
				return ub
			}
			return s.Max
		}
	}
	return s.Max
}
