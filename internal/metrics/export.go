package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JobSnapshot pairs one job's metrics with the job's name. A run's
// snapshot file holds one JobSnapshot per experiment job, in job order
// — the same order the trace and CSV exporters use, so the file is
// byte-identical for any -jobs or -shard value.
type JobSnapshot struct {
	Job     string       `json:"job"`
	Metrics []MetricSnap `json:"metrics"`
}

// jsonDoc is the on-disk JSON snapshot format.
type jsonDoc struct {
	Schema int           `json:"schema"`
	Jobs   []JobSnapshot `json:"jobs"`
}

// WriteJSON writes the snapshot document. encoding/json renders struct
// fields in declaration order and floats in shortest round-trip form,
// so the output is deterministic.
func WriteJSON(w io.Writer, jobs []JobSnapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonDoc{Schema: 1, Jobs: jobs})
}

// ReadJSON reads a snapshot document written by WriteJSON.
func ReadJSON(r io.Reader) ([]JobSnapshot, error) {
	var doc jsonDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("metrics: reading snapshot: %w", err)
	}
	if doc.Schema != 1 {
		return nil, fmt.Errorf("metrics: unsupported snapshot schema %d", doc.Schema)
	}
	return doc.Jobs, nil
}

// ExportQuantiles are the quantiles rendered by the Prometheus exporter
// and the abrreport percentile table.
var ExportQuantiles = []struct {
	Label string
	Q     float64
}{
	{"0.5", 0.5},
	{"0.9", 0.9},
	{"0.99", 0.99},
	{"0.999", 0.999},
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Each job's metrics gain a job="..." label; histograms are
// rendered as summaries (quantile samples plus _sum/_count) with a
// companion _max gauge. Samples of one metric family are grouped
// together across jobs, as the format requires.
func WritePrometheus(w io.Writer, jobs []JobSnapshot) error {
	type sample struct {
		job string
		m   MetricSnap
	}
	type family struct {
		kind    string
		samples []sample
	}
	var order []string
	fams := map[string]*family{}
	for _, j := range jobs {
		for _, m := range j.Metrics {
			base := m.Name
			if i := strings.IndexByte(base, '{'); i >= 0 {
				base = base[:i]
			}
			f := fams[base]
			if f == nil {
				f = &family{kind: m.Kind}
				fams[base] = f
				order = append(order, base)
			}
			f.samples = append(f.samples, sample{j.Job, m})
		}
	}
	var b []byte
	for _, base := range order {
		f := fams[base]
		switch f.kind {
		case "histogram":
			b = append(b, "# TYPE "+base+" summary\n"...)
			for _, s := range f.samples {
				ls := promLabels(s.job, s.m.Name)
				for _, eq := range ExportQuantiles {
					b = append(b, base...)
					b = append(b, '{')
					b = append(b, ls...)
					b = append(b, `,quantile="`+eq.Label+`"} `...)
					b = appendNum(b, s.m.Hist.Quantile(eq.Q))
					b = append(b, '\n')
				}
				b = append(b, base+"_sum{"+ls+"} "...)
				b = appendNum(b, s.m.Hist.Sum)
				b = append(b, '\n')
				b = append(b, base+"_count{"+ls+"} "...)
				b = strconv.AppendInt(b, s.m.Hist.Count, 10)
				b = append(b, '\n')
			}
			b = append(b, "# TYPE "+base+"_max gauge\n"...)
			for _, s := range f.samples {
				b = append(b, base+"_max{"+promLabels(s.job, s.m.Name)+"} "...)
				b = appendNum(b, s.m.Hist.Max)
				b = append(b, '\n')
			}
		default:
			b = append(b, "# TYPE "+base+" "+f.kind+"\n"...)
			for _, s := range f.samples {
				b = append(b, base+"{"+promLabels(s.job, s.m.Name)+"} "...)
				b = appendNum(b, s.m.Value)
				b = append(b, '\n')
			}
		}
	}
	_, err := w.Write(b)
	return err
}

// promLabels renders the label pairs for one sample: the job label
// first, then any labels already embedded in the canonical name.
func promLabels(job, name string) string {
	inner := ""
	if i := strings.IndexByte(name, '{'); i >= 0 {
		inner = "," + name[i+1:len(name)-1]
	}
	return `job="` + escapeLabel(job) + `"` + inner
}

// appendNum formats a float in shortest round-trip form (integers print
// without a decimal point).
func appendNum(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
