package metrics

import "testing"

// TestRecordAllocs locks the hot-path contract: recording into a
// counter, gauge or histogram allocates nothing, so the instrumented
// simulation keeps its allocs/event budget. Mirrors
// internal/sim/alloc_test.go.
func TestRecordAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", HistogramOpts{})
	v := 0.0007 // walks under/normal/overflow ranges as it grows
	if n := testing.AllocsPerRun(2000, func() {
		c.Inc()
		c.Add(2)
		g.Set(v)
		g.Add(1)
		h.Record(v)
		v *= 1.09
	}); n != 0 {
		t.Errorf("metric record paths allocate %.2f/op, want 0", n)
	}
}

// TestMergeQuantileAllocs keeps end-of-run fan-in cheap too: merging a
// histogram and reading quantiles allocates nothing.
func TestMergeQuantileAllocs(t *testing.T) {
	a := NewHistogram(HistogramOpts{})
	b := NewHistogram(HistogramOpts{})
	for v := 0.001; v < 1000; v *= 1.1 {
		a.Record(v)
		b.Record(v * 3)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		_ = a.Quantile(0.99)
	}); n != 0 {
		t.Errorf("merge+quantile allocates %.2f/op, want 0", n)
	}
}
