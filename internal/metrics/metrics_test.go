package metrics

import (
	"math"
	"sort"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCounter:   "counter",
		KindGauge:     "gauge",
		KindHistogram: "histogram",
		Kind(42):      "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestName(t *testing.T) {
	if got := Name("requests"); got != "requests" {
		t.Errorf("unlabeled name = %q", got)
	}
	got := Name("resp_ms", Label{"policy", "rr"}, Label{"disk", "3"})
	want := `resp_ms{disk="3",policy="rr"}`
	if got != want {
		t.Errorf("labeled name = %q, want %q (keys must sort)", got, want)
	}
	got = Name("m", Label{"v", "a\"b\\c\nd"})
	want = `m{v="a\"b\\c\nd"}`
	if got != want {
		t.Errorf("escaped name = %q, want %q", got, want)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(HistogramOpts{})
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		h.Record(v)
	}
	if h.Count() != 4 || h.Sum() != 10 || h.Min() != 1 || h.Max() != 4 {
		t.Fatalf("count/sum/min/max = %d/%g/%g/%g", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	if h.Mean() != 2.5 {
		t.Errorf("mean = %g, want 2.5", h.Mean())
	}
}

// TestHistogramQuantileAccuracy checks the relative-error bound of the
// bucket estimator against exact order statistics.
func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram(HistogramOpts{SubBits: 5})
	var vals []float64
	v := 0.001
	for i := 0; i < 5000; i++ {
		vals = append(vals, v)
		h.Record(v)
		v *= 1.0037 // spans many octaves
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		exact := vals[int(math.Ceil(q*float64(len(vals))))-1]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%g: estimate %g below exact %g", q, got, exact)
		}
		if got > exact*(1+1.0/32)+1e-12 {
			t.Errorf("q=%g: estimate %g exceeds error bound over exact %g", q, got, exact)
		}
	}
}

func TestHistogramQuantileClampsToMax(t *testing.T) {
	h := NewHistogram(HistogramOpts{})
	h.Record(7)
	for _, q := range []float64{0.5, 1, 2} {
		if got := h.Quantile(q); got != 7 {
			t.Errorf("q=%g over single value = %g, want exact max 7", q, got)
		}
	}
}

func TestHistogramUnderOverflow(t *testing.T) {
	h := NewHistogram(HistogramOpts{SubBits: 2, MinExp: 0, MaxExp: 4})
	h.Record(0)     // underflow
	h.Record(-3)    // underflow
	h.Record(0.001) // underflow
	h.Record(100)   // overflow (≥ 2^4)
	h.Record(math.Inf(1))
	if h.buckets[0] != 3 {
		t.Errorf("underflow bucket = %d, want 3", h.buckets[0])
	}
	if h.buckets[len(h.buckets)-1] != 2 {
		t.Errorf("overflow bucket = %d, want 2", h.buckets[len(h.buckets)-1])
	}
	// The 0.5 quantile lands in the underflow bucket: reported as its
	// upper bound 2^0.
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("underflow quantile = %g, want 1", got)
	}
	// The top quantile lands in the overflow bucket: reported as max.
	if got := h.Quantile(1); !math.IsInf(got, 1) {
		t.Errorf("overflow quantile = %g, want +Inf (observed max)", got)
	}
}

// TestBucketBoundariesExact verifies that every recorded value falls
// strictly below its bucket's reconstructed upper boundary and at or
// above the previous one — the exactness contract.
func TestBucketBoundariesExact(t *testing.T) {
	h := NewHistogram(HistogramOpts{SubBits: 3, MinExp: -4, MaxExp: 6})
	vals := []float64{0.0625, 0.1, 0.99, 1, 1.125, 1.1250001, 33.3, 63.999}
	for _, v := range vals {
		i := h.index(v)
		if i == 0 || i == len(h.buckets)-1 {
			t.Fatalf("value %g unexpectedly out of range (bucket %d)", v, i)
		}
		lo := h.upperBound(i - 1)
		hi := h.upperBound(i)
		if !(lo <= v && v < hi) {
			t.Errorf("value %g not in bucket %d boundaries [%g, %g)", v, i, lo, hi)
		}
		if hi <= lo {
			t.Errorf("bucket %d boundaries not increasing: [%g, %g)", i, lo, hi)
		}
	}
	// Exact powers of two are bucket lower boundaries.
	if got := h.upperBound(h.index(1) - 1); got != 1 {
		t.Errorf("lower boundary of 1.0's bucket = %g, want exactly 1", got)
	}
}

func TestHistogramOptsClamping(t *testing.T) {
	cases := []struct {
		in   HistogramOpts
		want HistogramOpts
	}{
		{HistogramOpts{}, HistogramOpts{SubBits: 5, MinExp: -10, MaxExp: 30}},
		{HistogramOpts{SubBits: -1, MinExp: 1, MaxExp: 2}, HistogramOpts{SubBits: 1, MinExp: 1, MaxExp: 2}},
		{HistogramOpts{SubBits: 99, MinExp: -2000, MaxExp: 2000}, HistogramOpts{SubBits: 8, MinExp: -1022, MaxExp: 1023}},
		{HistogramOpts{SubBits: 4, MinExp: 5, MaxExp: 5}, HistogramOpts{SubBits: 4, MinExp: 5, MaxExp: 6}},
	}
	for _, c := range cases {
		if got := c.in.withDefaults(); got != c.want {
			t.Errorf("withDefaults(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(HistogramOpts{})
	b := NewHistogram(HistogramOpts{})
	for _, v := range []float64{1, 2, 3} {
		a.Record(v)
	}
	for _, v := range []float64{0.5, 10} {
		b.Record(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 5 || a.Sum() != 16.5 || a.Min() != 0.5 || a.Max() != 10 {
		t.Errorf("merged count/sum/min/max = %d/%g/%g/%g", a.Count(), a.Sum(), a.Min(), a.Max())
	}
	// Merging an empty histogram is a no-op.
	if err := a.Merge(NewHistogram(HistogramOpts{})); err != nil || a.Count() != 5 {
		t.Errorf("empty merge changed state (err %v, count %d)", err, a.Count())
	}
	// Merging into an empty histogram adopts min/max.
	c := NewHistogram(HistogramOpts{})
	if err := c.Merge(a); err != nil || c.Min() != 0.5 || c.Max() != 10 {
		t.Errorf("merge into empty: err %v min %g max %g", err, c.Min(), c.Max())
	}
	// Layout mismatch is an error.
	if err := a.Merge(NewHistogram(HistogramOpts{SubBits: 2, MinExp: 0, MaxExp: 4})); err == nil {
		t.Error("incompatible merge did not error")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	if r.Counter("reqs") != c {
		t.Error("re-registering a counter should return the same instance")
	}
	g := r.Gauge("depth")
	g.Set(3)
	if r.Gauge("depth") != g {
		t.Error("re-registering a gauge should return the same instance")
	}
	h := r.Histogram("lat", HistogramOpts{})
	h.Record(1)
	if r.Histogram("lat", HistogramOpts{SubBits: 2}) != h {
		t.Error("re-registering a histogram should return the same instance")
	}
	lifetime := int64(7)
	r.CounterFunc("fn_count", func() int64 { return lifetime })
	r.GaugeFunc("fn_gauge", func() float64 { return 0.25 })

	s := r.Snapshot()
	wantNames := []string{"reqs", "depth", "lat", "fn_count", "fn_gauge"}
	if len(s.Metrics) != len(wantNames) {
		t.Fatalf("snapshot has %d metrics, want %d", len(s.Metrics), len(wantNames))
	}
	for i, m := range s.Metrics {
		if m.Name != wantNames[i] {
			t.Errorf("metric %d = %s, want %s (registration order)", i, m.Name, wantNames[i])
		}
	}
	if s.Metrics[0].Value != 1 || s.Metrics[1].Value != 3 || s.Metrics[3].Value != 7 || s.Metrics[4].Value != 0.25 {
		t.Errorf("snapshot values = %v", s.Metrics)
	}
	if s.Metrics[2].Hist == nil || s.Metrics[2].Hist.Count != 1 {
		t.Errorf("histogram snapshot = %+v", s.Metrics[2].Hist)
	}
}

func TestRegistryLabels(t *testing.T) {
	r := NewRegistry()
	c0 := r.Counter("faults", Label{"disk", "0"})
	c1 := r.Counter("faults", Label{"disk", "1"})
	if c0 == c1 {
		t.Fatal("differently labeled metrics must be distinct")
	}
	c0.Inc()
	s := r.Snapshot()
	if s.Metrics[0].Name != `faults{disk="0"}` || s.Metrics[1].Name != `faults{disk="1"}` {
		t.Errorf("labeled names = %s, %s", s.Metrics[0].Name, s.Metrics[1].Name)
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("c")
	expectPanic("kind clash", func() { r.Gauge("c") })
	r.CounterFunc("cf", func() int64 { return 0 })
	expectPanic("counter over func", func() { r.Counter("cf") })
	expectPanic("CounterFunc re-register", func() { r.CounterFunc("cf", func() int64 { return 0 }) })
	r.GaugeFunc("gf", func() float64 { return 0 })
	expectPanic("gauge over func", func() { r.Gauge("gf") })
	expectPanic("GaugeFunc re-register", func() { r.GaugeFunc("gf", func() float64 { return 0 }) })
}

func TestRegistryMerge(t *testing.T) {
	main := NewRegistry()
	main.Counter("reqs").Add(10)
	main.Gauge("depth").Set(1)
	main.Histogram("lat", HistogramOpts{}).Record(1)

	member := NewRegistry()
	member.Counter("reqs").Add(5)
	member.Gauge("depth").Set(2)
	member.Histogram("lat", HistogramOpts{}).Record(3)
	member.Counter("only_member", Label{"disk", "0"}).Add(2)
	member.CounterFunc("member_fn", func() int64 { return 11 })
	mh := member.Histogram("member_lat", HistogramOpts{})
	mh.Record(4)

	if err := main.Merge(member); err != nil {
		t.Fatal(err)
	}
	s := main.Snapshot()
	byName := map[string]MetricSnap{}
	for _, m := range s.Metrics {
		byName[m.Name] = m
	}
	if v := byName["reqs"].Value; v != 15 {
		t.Errorf("merged counter = %g, want 15", v)
	}
	if v := byName["depth"].Value; v != 3 {
		t.Errorf("merged gauge = %g, want 3", v)
	}
	if h := byName["lat"].Hist; h.Count != 2 || h.Sum != 4 {
		t.Errorf("merged histogram = %+v", h)
	}
	if v := byName[`only_member{disk="0"}`].Value; v != 2 {
		t.Errorf("appended counter = %g, want 2", v)
	}
	if v := byName["member_fn"].Value; v != 11 {
		t.Errorf("func-backed merge = %g, want 11", v)
	}
	if h := byName["member_lat"].Hist; h.Count != 1 || h.Max != 4 {
		t.Errorf("appended histogram = %+v", h)
	}
	// Merge order is preserved: appended metrics follow main's.
	if s.Metrics[len(s.Metrics)-1].Name != "member_lat" {
		t.Errorf("last metric = %s, want member_lat", s.Metrics[len(s.Metrics)-1].Name)
	}
	// Kind clash across registries is an error, not a panic.
	bad := NewRegistry()
	bad.Gauge("reqs")
	if err := main.Merge(bad); err == nil {
		t.Error("kind clash merge did not error")
	}
	badHist := NewRegistry()
	badHist.Histogram("lat", HistogramOpts{SubBits: 1, MinExp: 0, MaxExp: 2})
	if err := main.Merge(badHist); err == nil {
		t.Error("histogram layout clash merge did not error")
	}
}

func TestSnapshotQuantileMatchesLive(t *testing.T) {
	h := NewHistogram(HistogramOpts{})
	v := 0.01
	for i := 0; i < 1000; i++ {
		h.Record(v)
		v *= 1.013
	}
	s := h.snapshot()
	if s.Mean() != h.Mean() {
		t.Errorf("snapshot mean %g != live mean %g", s.Mean(), h.Mean())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
		if s.Quantile(q) != h.Quantile(q) {
			t.Errorf("q=%g: snapshot %g != live %g", q, s.Quantile(q), h.Quantile(q))
		}
	}
	empty := &HistSnap{}
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot should report zeros")
	}
}
