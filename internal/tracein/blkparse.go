package tracein

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"
)

// blkparse renders blktrace events one per line:
//
//	maj,min cpu seq timestamp pid action rwbs sector + sectors [proc]
//
// e.g. "8,0 1 1 0.000000000 1234 Q R 7077888 + 16 [fio]". The parser
// keeps only queue events (action "Q" — the moment the request entered
// the block layer, which is what a replay re-issues), identifies the
// direction from the RWBS field, converts 512-byte sectors to
// Options.BlockBytes blocks, and skips blkparse's non-event output
// (per-CPU summaries, blank lines, totals) by requiring the "maj,min"
// device field shape.

// sectorBytes is the fixed sector size blkparse reports addresses in.
const sectorBytes = 512

// ParseBlkparse streams blkparse-style text, emitting one record per
// covered block for each queue ("Q") event. Lines that do not start
// with a "maj,min" device field are skipped as summary output; events
// whose RWBS has neither R nor W (pure barriers/flushes) are skipped
// too. Timestamps are seconds; a queue timestamp earlier than its
// predecessor fails with ErrNonMonotonic.
func ParseBlkparse(r io.Reader, o Options, emit EmitFunc) error {
	o = o.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	first := true
	var baseSec, prevSec float64
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || !isDevField(fields[0]) {
			continue // blkparse summary/noise, not an event line
		}
		if len(fields) < 7 {
			return parseErr(FormatBlkparse, lineNo, ErrTruncated, "want at least 7 fields, got %d", len(fields))
		}
		if fields[5] != "Q" {
			continue // only queue events are replayed
		}
		sec, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return parseErr(FormatBlkparse, lineNo, ErrBadField, "timestamp %q", fields[3])
		}
		if sec < 0 {
			return parseErr(FormatBlkparse, lineNo, ErrOutOfRange, "timestamp %v", sec)
		}
		var write bool
		switch rwbs := fields[6]; {
		case strings.ContainsRune(rwbs, 'R'):
		case strings.ContainsRune(rwbs, 'W'):
			write = true
		default:
			continue // barrier/flush-only event, nothing to replay
		}
		if len(fields) < 10 {
			return parseErr(FormatBlkparse, lineNo, ErrTruncated, "queue event needs sector fields, got %d fields", len(fields))
		}
		sector, err := strconv.ParseInt(fields[7], 10, 64)
		if err != nil {
			return parseErr(FormatBlkparse, lineNo, ErrBadField, "sector %q", fields[7])
		}
		if sector < 0 || sector > math.MaxInt64/sectorBytes-maxRequestBlocks {
			return parseErr(FormatBlkparse, lineNo, ErrOutOfRange, "sector %d", sector)
		}
		if fields[8] != "+" {
			return parseErr(FormatBlkparse, lineNo, ErrBadField, "expected \"+\" before sector count, got %q", fields[8])
		}
		count, err := strconv.ParseInt(fields[9], 10, 64)
		if err != nil {
			return parseErr(FormatBlkparse, lineNo, ErrBadField, "sector count %q", fields[9])
		}
		limit := int64(maxRequestBlocks) * (int64(o.BlockBytes) / sectorBytes)
		if limit < maxRequestBlocks {
			limit = maxRequestBlocks
		}
		if count < 0 || count > limit {
			return parseErr(FormatBlkparse, lineNo, ErrOutOfRange, "sector count %d", count)
		}
		if first {
			baseSec, prevSec = sec, sec
			first = false
		}
		if sec < prevSec {
			return parseErr(FormatBlkparse, lineNo, ErrNonMonotonic, "timestamp %v after %v", sec, prevSec)
		}
		prevSec = sec
		timeMS := (sec - baseSec) * 1000
		if err := emitRange(timeMS, write, 0, sector*sectorBytes, count*sectorBytes, o.BlockBytes, emit); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return parseErr(FormatBlkparse, lineNo+1, ErrTruncated, "%v", err)
	}
	return nil
}

// isDevField reports whether s has the "maj,min" shape that opens every
// blkparse event line ("8,0", "259,2").
func isDevField(s string) bool {
	i := strings.IndexByte(s, ',')
	if i <= 0 || i == len(s)-1 {
		return false
	}
	return allDigits(s[:i]) && allDigits(s[i+1:])
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// looksBlkparse reports whether a line has the blkparse event shape: a
// maj,min device field followed by numeric cpu/seq fields.
func looksBlkparse(line string) bool {
	fields := strings.Fields(line)
	return len(fields) >= 7 && isDevField(fields[0]) &&
		allDigits(fields[1]) && allDigits(fields[2])
}
