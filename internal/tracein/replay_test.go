package tracein

import (
	"errors"
	"testing"

	"repro/internal/metrics"
	"repro/internal/rig"
	"repro/internal/trace"
)

// testTrace builds a deterministic trace over the rig's partition 0:
// n requests 5 ms apart walking a strided pattern, every third a write.
func testTrace(n int, blocks int64) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			TimeMS: float64(i) * 5,
			Write:  i%3 == 2,
			Block:  (int64(i) * 977) % blocks,
		}
	}
	return recs
}

func TestOpenLoopReplay(t *testing.T) {
	r := rig.MustNew(rig.Options{})
	recs := testTrace(200, r.PartitionBlocks(0))
	rep, err := NewReplayer(r.Eng, r.Driver, recs, ReplayOptions{Mode: OpenLoop})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	fired := false
	rep.Start(func(got Result) { res, fired = got, true })
	r.Eng.Run()
	if !fired {
		t.Fatal("done callback never fired")
	}
	if res.Completed != len(recs) || res.Errors != 0 {
		t.Fatalf("completed %d, errors %d; want %d, 0", res.Completed, res.Errors, len(recs))
	}
	// Open loop is timestamp-faithful: the last arrival is at 995 ms,
	// so the replay cannot finish before it.
	if res.ElapsedMS < recs[len(recs)-1].TimeMS {
		t.Errorf("elapsed %.1f ms, want >= %.1f", res.ElapsedMS, recs[len(recs)-1].TimeMS)
	}
	st := r.Driver.ReadStats()
	if got := st.ReadSide.Count() + st.WriteSide.Count(); got != int64(len(recs)) {
		t.Errorf("driver saw %d requests, want %d", got, len(recs))
	}
}

func TestClosedLoopReplay(t *testing.T) {
	r := rig.MustNew(rig.Options{})
	recs := testTrace(200, r.PartitionBlocks(0))
	rep, err := NewReplayer(r.Eng, r.Driver, recs, ReplayOptions{
		Mode: ClosedLoop, Clients: 4, ThinkMS: 2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	fired := false
	rep.Start(func(got Result) { res, fired = got, true })
	r.Eng.Run()
	if !fired {
		t.Fatal("done callback never fired")
	}
	if res.Completed != len(recs) || res.Errors != 0 {
		t.Fatalf("completed %d, errors %d; want %d, 0", res.Completed, res.Errors, len(recs))
	}
	if res.ElapsedMS <= 0 {
		t.Errorf("elapsed %.1f ms, want > 0", res.ElapsedMS)
	}
}

// TestClosedLoopMoreClientsThanRecords pins the population clamp: a
// 3-record trace with 8 requested clients must still complete exactly
// once per record and fire done.
func TestClosedLoopMoreClientsThanRecords(t *testing.T) {
	r := rig.MustNew(rig.Options{})
	recs := testTrace(3, r.PartitionBlocks(0))
	rep, err := NewReplayer(r.Eng, r.Driver, recs, ReplayOptions{Mode: ClosedLoop, Clients: 8})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	rep.Start(func(got Result) { res = got })
	r.Eng.Run()
	if res.Completed != 3 {
		t.Fatalf("completed %d, want 3", res.Completed)
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	r := rig.MustNew(rig.Options{})
	rep, err := NewReplayer(r.Eng, r.Driver, nil, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	rep.Start(func(got Result) { fired = got.Completed == 0 && got.Errors == 0 })
	r.Eng.Run()
	if !fired {
		t.Fatal("done callback never fired for the empty trace")
	}
}

// TestValidate pins the fail-fast contract: a trace that doesn't fit
// the device is rejected at construction with ErrOutOfRange, before a
// single event is scheduled.
func TestValidate(t *testing.T) {
	r := rig.MustNew(rig.Options{})
	blocks := r.PartitionBlocks(0)
	for _, tc := range []struct {
		name string
		rec  trace.Record
	}{
		{"negative-part", trace.Record{Part: -1}},
		{"part-beyond-table", trace.Record{Part: 200}},
		{"unused-partition", trace.Record{Part: 5}},
		{"negative-block", trace.Record{Block: -1}},
		{"block-beyond-partition", trace.Record{Block: blocks}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReplayer(r.Eng, r.Driver, []trace.Record{tc.rec}, ReplayOptions{})
			if !errors.Is(err, ErrOutOfRange) {
				t.Fatalf("got %v, want ErrOutOfRange", err)
			}
		})
	}
	// The last valid block is accepted.
	if _, err := NewReplayer(r.Eng, r.Driver, []trace.Record{{Block: blocks - 1}}, ReplayOptions{}); err != nil {
		t.Fatalf("last block rejected: %v", err)
	}
}

// TestReplayMetrics checks the metrics binding: the latency histogram
// sees every request and the lifetime counter matches.
func TestReplayMetrics(t *testing.T) {
	r := rig.MustNew(rig.Options{})
	recs := testTrace(100, r.PartitionBlocks(0))
	rep, err := NewReplayer(r.Eng, r.Driver, recs, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	rep.BindMetrics(reg)
	rep.Start(nil)
	r.Eng.Run()
	h := rep.Latency()
	if h == nil {
		t.Fatal("no latency histogram after BindMetrics")
	}
	if h.Count() != int64(len(recs)) {
		t.Errorf("histogram count %d, want %d", h.Count(), len(recs))
	}
	if p99 := h.Quantile(0.99); p99 <= 0 {
		t.Errorf("p99 latency %.3f ms, want > 0", p99)
	}
}

// TestReplayScaledDeterminism locks the property the experiment golden
// depends on: replaying the same scaled, multiplexed trace twice on
// fresh rigs yields identical results and identical driver seek
// statistics.
func TestReplayScaledDeterminism(t *testing.T) {
	run := func() (Result, float64) {
		r := rig.MustNew(rig.Options{})
		blocks := r.PartitionBlocks(0)
		base := testTrace(100, blocks/8)
		scaled := Scale{Compress: 2, Copies: 4, ShiftBlocks: blocks / 8, WrapBlocks: blocks, PhaseMS: 1}.Apply(base)
		rep, err := NewReplayer(r.Eng, r.Driver, scaled, ReplayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		var res Result
		rep.Start(func(got Result) { res = got })
		r.Eng.Run()
		st := r.Driver.ReadStats()
		return res, st.ReadSide.SeekMS + st.WriteSide.SeekMS
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 {
		t.Errorf("results differ across identical runs: %+v vs %+v", r1, r2)
	}
	if s1 != s2 {
		t.Errorf("seek sums differ across identical runs: %v vs %v", s1, s2)
	}
	if r1.Completed != 400 {
		t.Errorf("completed %d, want 400 (100 records x 4 copies)", r1.Completed)
	}
}
