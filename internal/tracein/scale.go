package tracein

import (
	"fmt"
	"sort"

	"repro/internal/trace"
)

// Scale turns one captured trace into a heavier one: Compress divides
// every timestamp (2 = the same requests in half the wall time) and
// Copies multiplexes N address-shifted replicas of the stream, emulating
// N clients with similar but non-overlapping working sets hammering the
// same device. The zero value is the identity scale.
type Scale struct {
	// Compress divides every timestamp; values <= 0 or 1 leave time
	// unchanged.
	Compress float64
	// Copies is the number of multiplexed copies of the trace; values
	// <= 1 mean the single original stream.
	Copies int
	// ShiftBlocks offsets copy i's block addresses by i*ShiftBlocks,
	// so the copies cover disjoint regions instead of magnifying the
	// original hot set in place. Zero keeps all copies at the original
	// addresses (pure intensity scaling).
	ShiftBlocks int64
	// WrapBlocks, when > 0, wraps shifted addresses modulo WrapBlocks
	// so every copy stays inside the target partition. Set it to the
	// partition's block count.
	WrapBlocks int64
	// PhaseMS offsets copy i's timestamps by i*PhaseMS, desynchronizing
	// the copies. Zero starts all copies together; their records
	// interleave in copy order at each timestamp.
	PhaseMS float64
}

// identity reports whether the scale changes nothing.
func (s Scale) identity() bool {
	return (s.Compress <= 0 || s.Compress == 1) && s.Copies <= 1
}

// String renders the scale for report rows ("4x@2.0" = 4 copies, 2x
// time compression).
func (s Scale) String() string {
	c := s.Compress
	if c <= 0 {
		c = 1
	}
	n := s.Copies
	if n < 1 {
		n = 1
	}
	return fmt.Sprintf("%dx@%.1f", n, c)
}

// Apply produces the scaled trace. The result is deterministic: with
// PhaseMS zero the copies interleave record by record in copy order
// (timestamps already agree), otherwise the merged stream is stably
// sorted by time so equal timestamps keep copy order. The input is not
// modified.
func (s Scale) Apply(recs []trace.Record) []trace.Record {
	if s.identity() && len(recs) > 0 {
		out := make([]trace.Record, len(recs))
		copy(out, recs)
		return out
	}
	compress := s.Compress
	if compress <= 0 {
		compress = 1
	}
	copies := s.Copies
	if copies < 1 {
		copies = 1
	}
	out := make([]trace.Record, 0, len(recs)*copies)
	for _, r := range recs {
		t := r.TimeMS / compress
		for c := 0; c < copies; c++ {
			rc := r
			rc.TimeMS = t + float64(c)*s.PhaseMS
			if s.ShiftBlocks != 0 {
				rc.Block += int64(c) * s.ShiftBlocks
				if s.WrapBlocks > 0 {
					rc.Block %= s.WrapBlocks
					if rc.Block < 0 {
						rc.Block += s.WrapBlocks
					}
				}
			}
			out = append(out, rc)
		}
	}
	if s.PhaseMS != 0 {
		sort.SliceStable(out, func(i, j int) bool {
			return out[i].TimeMS < out[j].TimeMS
		})
	}
	return out
}
