package tracein

import (
	"fmt"

	"repro/internal/driver"
	"repro/internal/label"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Mode selects how the replayer paces arrivals.
type Mode int

const (
	// OpenLoop replays each record at its recorded timestamp,
	// regardless of how the device is keeping up — the trace is the
	// arrival process, so overload shows up as queueing, exactly as it
	// did on the traced machine.
	OpenLoop Mode = iota
	// ClosedLoop replays records in order through a fixed population of
	// clients, each issuing its next request a think time after the
	// previous one completes — the device's speed sets the pace, as
	// with interactive users.
	ClosedLoop
)

// String names the mode for flags and report rows.
func (m Mode) String() string {
	if m == ClosedLoop {
		return "closed"
	}
	return "open"
}

// ParseMode maps a replay-mode flag value to its Mode.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "open":
		return OpenLoop, nil
	case "closed":
		return ClosedLoop, nil
	}
	return OpenLoop, fmt.Errorf("tracein: unknown replay mode %q (want open or closed)", name)
}

// ReplayOptions configures a Replayer.
type ReplayOptions struct {
	// Mode selects open- or closed-loop pacing.
	Mode Mode
	// Clients is the closed-loop population size; zero selects 8.
	// Ignored in open loop.
	Clients int
	// ThinkMS is the closed-loop mean think time between a completion
	// and the client's next request; zero selects 10 ms. Ignored in
	// open loop.
	ThinkMS float64
	// Seed seeds the closed-loop think-time stream.
	Seed int64
}

// Result summarizes a finished replay.
type Result struct {
	// Completed and Errors count finished requests by outcome.
	Completed int
	// Errors counts requests that failed (device faults).
	Errors int
	// ElapsedMS is the simulated time from replay start to the last
	// completion.
	ElapsedMS float64
}

// inflight tracks one outstanding request. Instances are pooled and
// each carries its DoneFunc closure, built once at allocation, so the
// steady-state replay path schedules and completes requests without
// allocating.
type inflight struct {
	r       *Replayer
	issueMS float64
	done    driver.DoneFunc
}

// Replayer drives a block device with a parsed (and possibly scaled)
// trace in simulated time. It validates every record against the
// device's label before starting, so a trace that doesn't fit the
// device fails fast with a typed error instead of mid-replay.
type Replayer struct {
	eng  *sim.Engine
	dev  driver.BlockDevice
	recs []trace.Record
	o    ReplayOptions

	zero    []byte
	free    []*inflight
	baseMS  float64
	startMS float64
	next    int // next record index (both modes)
	out     int // outstanding requests
	clients int // live closed-loop clients
	res     Result
	onDone  func(Result)
	hist    *metrics.Histogram // optional latency histogram
	reqs    int64              // lifetime issued requests (for metrics)
}

// NewReplayer builds a replayer for the given records over the device.
// The record slice is read, never modified; it must stay unchanged for
// the replayer's lifetime.
func NewReplayer(eng *sim.Engine, dev driver.BlockDevice, recs []trace.Record, o ReplayOptions) (*Replayer, error) {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.ThinkMS <= 0 {
		o.ThinkMS = 10
	}
	if err := Validate(dev, recs); err != nil {
		return nil, err
	}
	return &Replayer{
		eng:  eng,
		dev:  dev,
		recs: recs,
		o:    o,
		zero: make([]byte, dev.BlockSize().Bytes()),
	}, nil
}

// Validate checks that every record addresses a partition and block
// that exist on the device, returning ErrOutOfRange (wrapped with the
// record index) on the first violation.
func Validate(dev driver.BlockDevice, recs []trace.Record) error {
	lbl := dev.Label()
	bsec := int64(dev.BlockSize().Sectors())
	var blocks [label.MaxPartitions]int64
	for i := range blocks {
		blocks[i] = -1 // unprobed
	}
	for i, rec := range recs {
		if rec.Part < 0 || rec.Part >= len(blocks) {
			return fmt.Errorf("record %d: partition %d: %w", i, rec.Part, ErrOutOfRange)
		}
		if blocks[rec.Part] < 0 {
			p, err := lbl.Partition(rec.Part)
			if err != nil {
				return fmt.Errorf("record %d: partition %d: %w (%v)", i, rec.Part, ErrOutOfRange, err)
			}
			blocks[rec.Part] = p.Size / bsec
		}
		if rec.Block < 0 || rec.Block >= blocks[rec.Part] {
			return fmt.Errorf("record %d: block %d of partition %d (size %d blocks): %w",
				i, rec.Block, rec.Part, blocks[rec.Part], ErrOutOfRange)
		}
	}
	return nil
}

// BindMetrics registers the replayer's instruments on a metrics
// registry: the per-request latency histogram (which also feeds P99 in
// the experiment report) and a lifetime request counter.
func (r *Replayer) BindMetrics(reg *metrics.Registry) {
	r.hist = reg.Histogram("replay_latency_ms", metrics.HistogramOpts{})
	reg.CounterFunc("replay_requests", func() int64 { return r.reqs })
}

// Latency returns the bound latency histogram, nil before BindMetrics.
func (r *Replayer) Latency() *metrics.Histogram { return r.hist }

// Start schedules the replay beginning at the engine's current time;
// done (optional) fires when the last request completes. Run the engine
// to drive it. A replayer replays once; build a new one for another
// pass.
func (r *Replayer) Start(done func(Result)) {
	r.onDone = done
	r.startMS = r.eng.Now()
	if len(r.recs) == 0 {
		r.eng.After(0, r.finish)
		return
	}
	if r.o.Mode == ClosedLoop {
		rnd := sim.NewRand(uint64(r.o.Seed))
		n := r.o.Clients
		if n > len(r.recs) {
			n = len(r.recs)
		}
		r.clients = n
		for i := 0; i < n; i++ {
			c := &clClient{r: r, rnd: rnd.Split()}
			c.inf.r = r
			c.inf.done = func(_ []byte, err error) { c.complete(err) }
			// Stagger client starts by one think time draw each, so the
			// population doesn't arrive as a single burst.
			r.eng.AfterCall(c.rnd.Exp(r.o.ThinkMS), c)
		}
		return
	}
	r.baseMS = r.eng.Now() - r.recs[0].TimeMS
	cur := &openCursor{r: r}
	r.eng.AtCall(r.baseMS+r.recs[0].TimeMS, cur)
}

// issue sends one record to the device, charging it to a pooled
// inflight slot.
func (r *Replayer) issue(rec trace.Record, inf *inflight) {
	inf.issueMS = r.eng.Now()
	r.out++
	r.reqs++
	if rec.Write {
		r.dev.WriteBlock(rec.Part, rec.Block, r.zero, inf.done)
	} else {
		r.dev.ReadBlock(rec.Part, rec.Block, inf.done)
	}
}

// getInflight pops a pooled slot, growing the pool when the open-loop
// in-flight population outruns it.
func (r *Replayer) getInflight() *inflight {
	if n := len(r.free); n > 0 {
		inf := r.free[n-1]
		r.free = r.free[:n-1]
		return inf
	}
	inf := &inflight{r: r}
	inf.done = func(_ []byte, err error) { inf.r.complete(inf, err) }
	return inf
}

// complete is the shared completion path: record the latency, recycle
// the slot, and finish the replay when the last request lands.
func (r *Replayer) complete(inf *inflight, err error) {
	if r.hist != nil {
		r.hist.Record(r.eng.Now() - inf.issueMS)
	}
	if err != nil {
		r.res.Errors++
	} else {
		r.res.Completed++
	}
	r.out--
	r.free = append(r.free, inf)
	if r.out == 0 && r.next >= len(r.recs) && r.clients == 0 {
		r.finish()
	}
}

func (r *Replayer) finish() {
	r.res.ElapsedMS = r.eng.Now() - r.startMS
	if r.onDone != nil {
		r.onDone(r.res)
	}
}

// openCursor walks the trace in open loop: each firing issues the
// record whose arrival time has come and schedules itself for the next
// one, so at most one arrival event is ever queued no matter how long
// the trace is.
type openCursor struct {
	r *Replayer
}

// Call issues every record due now, then reschedules for the next
// arrival.
func (c *openCursor) Call() {
	r := c.r
	now := r.eng.Now()
	for r.next < len(r.recs) && r.baseMS+r.recs[r.next].TimeMS <= now {
		rec := r.recs[r.next]
		r.next++
		r.issue(rec, r.getInflight())
	}
	if r.next < len(r.recs) {
		r.eng.AtCall(r.baseMS+r.recs[r.next].TimeMS, c)
	}
}

// clClient is one closed-loop client: issue, wait for completion, think,
// repeat. Its inflight slot and DoneFunc are built once at start, so
// the per-request loop does not allocate.
type clClient struct {
	r   *Replayer
	rnd *sim.Rand
	inf inflight
}

// Call pulls the next record off the shared cursor and issues it, or
// retires the client when the trace is exhausted.
func (c *clClient) Call() {
	r := c.r
	if r.next >= len(r.recs) {
		r.clients--
		if r.out == 0 && r.clients == 0 {
			r.finish()
		}
		return
	}
	rec := r.recs[r.next]
	r.next++
	r.issue(rec, &c.inf)
}

// complete finishes the client's outstanding request and schedules its
// next pull after a think time.
func (c *clClient) complete(err error) {
	r := c.r
	if r.hist != nil {
		r.hist.Record(r.eng.Now() - c.inf.issueMS)
	}
	if err != nil {
		r.res.Errors++
	} else {
		r.res.Completed++
	}
	r.out--
	r.eng.AfterCall(c.rnd.Exp(r.o.ThinkMS), c)
}
