package tracein

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/trace"
)

// Fuzz targets for the trace parsers: arbitrary input must either
// parse or fail with this package's typed errors — never panic, never
// loop, and never emit unbounded output from a bounded input. CI runs
// these alongside FuzzParsePlan/FuzzParseConfig.

// fuzzEmit caps the records a fuzz input may produce, so a short input
// claiming a huge span can't turn the fuzzer into a memory test.
func fuzzEmit(count *int) EmitFunc {
	return func(trace.Record) error {
		*count++
		if *count > 1<<16 {
			return errors.New("fuzz: emit cap")
		}
		return nil
	}
}

// checkFuzzErr verifies a parse failure is one of the typed errors (or
// the emit cap), not an arbitrary failure mode.
func checkFuzzErr(t *testing.T, f Format, err error) {
	t.Helper()
	if err == nil {
		return
	}
	for _, want := range []error{ErrUnknownFormat, ErrTruncated, ErrBadField, ErrOutOfRange, ErrNonMonotonic} {
		if errors.Is(err, want) {
			return
		}
	}
	if err.Error() == "fuzz: emit cap" {
		return
	}
	t.Fatalf("%v parse failed with an untyped error: %v", f, err)
}

// FuzzParseTrace drives the auto-detecting entry point across all four
// formats.
func FuzzParseTrace(f *testing.F) {
	var bin, txt bytes.Buffer
	recs := []trace.Record{{TimeMS: 1.5, Write: true, Part: 0, Block: 42}}
	_ = trace.WriteBinary(&bin, recs)
	_ = trace.WriteText(&txt, recs)
	f.Add(bin.Bytes())
	f.Add(txt.Bytes())
	f.Add([]byte("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n128166372003061629,usr,0,Read,16384,8192,100\n"))
	f.Add([]byte("8,0 1 1 0.000000000 1234 Q R 7077888 + 16 [fio]\n"))
	f.Add([]byte("garbage\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		err := Parse(bytes.NewReader(data), FormatUnknown, Options{}, fuzzEmit(&n))
		checkFuzzErr(t, FormatUnknown, err)
	})
}

// FuzzParseMSR hammers the MSR-Cambridge CSV parser directly.
func FuzzParseMSR(f *testing.F) {
	f.Add([]byte("128166372003061629,usr,0,Read,16384,8192,100\n"))
	f.Add([]byte("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n1,h,0,Write,0,4096,1\n"))
	f.Add([]byte("1,h,0,Read,-1,4096,1\n"))
	f.Add([]byte("2,h,0,Read,0,4096,1\n1,h,0,Read,0,4096,1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		err := ParseMSR(bytes.NewReader(data), Options{}, fuzzEmit(&n))
		checkFuzzErr(t, FormatMSR, err)
	})
}

// FuzzParseBlkparse hammers the blkparse text parser directly.
func FuzzParseBlkparse(f *testing.F) {
	f.Add([]byte("8,0 1 1 0.000000000 1234 Q R 7077888 + 16 [fio]\n"))
	f.Add([]byte("CPU0 (8,0):\n8,0 0 3 0.25 77 Q WS 64 + 32 [app]\n"))
	f.Add([]byte("8,0 1 1 0.5 99 Q FN 0 + 0 [x]\n"))
	f.Add([]byte("8,0 1 1 2.0 99 Q R 32 + 16 [x]\n8,0 1 2 1.0 99 Q R 64 + 16 [x]\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		err := ParseBlkparse(bytes.NewReader(data), Options{}, fuzzEmit(&n))
		checkFuzzErr(t, FormatBlkparse, err)
	})
}
