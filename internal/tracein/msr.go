package tracein

import (
	"bufio"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// SNIA MSR-Cambridge block traces are CSV with seven fields per line:
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// Timestamp is a Windows FILETIME (100 ns ticks since 1601), Type is
// "Read" or "Write", Offset and Size are bytes, ResponseTime is the
// traced machine's own service time (ignored here — the simulated disk
// supplies its own timing). The parser is streaming, rebases the first
// record to t=0, quantizes byte ranges to Options.BlockBytes blocks,
// and maps DiskNumber to the record's partition.

// filetimeTicksPerMS converts FILETIME 100 ns ticks to milliseconds.
const filetimeTicksPerMS = 10_000

// maxRequestBlocks bounds how many blocks one traced request may span
// (1 Mi blocks = 8 GiB at the default block size). A size field beyond
// it is treated as corrupt rather than expanded — a single line must
// not be able to make the parser emit unbounded output.
const maxRequestBlocks = 1 << 20

// msrFields is the column count of an MSR-Cambridge CSV line.
const msrFields = 7

// ParseMSR streams an MSR-Cambridge CSV trace, emitting one record per
// covered block. A leading header line (non-numeric first field) is
// skipped. Timestamps are rebased so the first event is at 0 ms;
// a timestamp earlier than its predecessor fails with ErrNonMonotonic
// (equal timestamps are fine — MSR traces batch events at tick
// granularity).
func ParseMSR(r io.Reader, o Options, emit EmitFunc) error {
	o = o.withDefaults()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	first := true
	var baseTicks, prevTicks int64
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var f [msrFields]string
		if !splitFields(line, ',', f[:]) {
			return parseErr(FormatMSR, lineNo, ErrTruncated, "want %d comma-separated fields, got %q", msrFields, line)
		}
		ticks, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
		if err != nil {
			if lineNo == 1 {
				continue // header line
			}
			return parseErr(FormatMSR, lineNo, ErrBadField, "timestamp %q", f[0])
		}
		disk, err := strconv.Atoi(strings.TrimSpace(f[2]))
		if err != nil {
			return parseErr(FormatMSR, lineNo, ErrBadField, "disk number %q", f[2])
		}
		if disk < 0 || disk > 255 {
			return parseErr(FormatMSR, lineNo, ErrOutOfRange, "disk number %d", disk)
		}
		var write bool
		switch typ := strings.TrimSpace(f[3]); {
		case strings.EqualFold(typ, "Read"):
		case strings.EqualFold(typ, "Write"):
			write = true
		default:
			return parseErr(FormatMSR, lineNo, ErrBadField, "request type %q", typ)
		}
		offset, err := strconv.ParseInt(strings.TrimSpace(f[4]), 10, 64)
		if err != nil {
			return parseErr(FormatMSR, lineNo, ErrBadField, "offset %q", f[4])
		}
		if offset < 0 {
			return parseErr(FormatMSR, lineNo, ErrOutOfRange, "offset %d", offset)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(f[5]), 10, 64)
		if err != nil {
			return parseErr(FormatMSR, lineNo, ErrBadField, "size %q", f[5])
		}
		if size < 0 || size/int64(o.BlockBytes) > maxRequestBlocks {
			return parseErr(FormatMSR, lineNo, ErrOutOfRange, "size %d", size)
		}
		if offset > math.MaxInt64-size {
			return parseErr(FormatMSR, lineNo, ErrOutOfRange, "offset %d + size %d overflows", offset, size)
		}
		if first {
			baseTicks, prevTicks = ticks, ticks
			first = false
		}
		if ticks < prevTicks {
			return parseErr(FormatMSR, lineNo, ErrNonMonotonic, "timestamp %d after %d", ticks, prevTicks)
		}
		prevTicks = ticks
		timeMS := float64(ticks-baseTicks) / filetimeTicksPerMS
		if err := emitRange(timeMS, write, disk, offset, size, o.BlockBytes, emit); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return parseErr(FormatMSR, lineNo+1, ErrTruncated, "%v", err)
	}
	return nil
}

// emitRange quantizes a byte range to blocks, emitting one record per
// covered block. A zero-size request still touches the block at its
// offset (how the traced kernel would issue a probe).
func emitRange(timeMS float64, write bool, part int, offset, size int64, blockBytes int, emit EmitFunc) error {
	bb := int64(blockBytes)
	first := offset / bb
	last := first
	if size > 0 {
		last = (offset + size - 1) / bb
	}
	for b := first; b <= last; b++ {
		if err := emit(trace.Record{TimeMS: timeMS, Write: write, Part: part, Block: b}); err != nil {
			return err
		}
	}
	return nil
}

// splitFields splits line on sep into exactly len(out) fields without
// allocating; it reports false when the field count differs.
func splitFields(line string, sep byte, out []string) bool {
	n := 0
	for {
		i := strings.IndexByte(line, sep)
		if i < 0 {
			break
		}
		if n >= len(out)-1 {
			return false // too many fields
		}
		out[n] = line[:i]
		n++
		line = line[i+1:]
	}
	out[n] = line
	return n == len(out)-1
}

// looksMSR reports whether a line parses as an MSR CSV event or header:
// seven comma-separated fields whose fourth is Read/Write (events) or
// whose first is non-numeric (header — "Timestamp,Hostname,...").
func looksMSR(line string) bool {
	var f [msrFields]string
	if !splitFields(strings.TrimSpace(line), ',', f[:]) {
		return false
	}
	typ := strings.TrimSpace(f[3])
	if strings.EqualFold(typ, "Read") || strings.EqualFold(typ, "Write") {
		return true
	}
	_, err := strconv.ParseInt(strings.TrimSpace(f[0]), 10, 64)
	return err != nil // seven fields with a non-numeric timestamp: header
}
