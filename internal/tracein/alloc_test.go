package tracein

import (
	"testing"

	"repro/internal/rig"
	"repro/internal/trace"
)

// Allocation regression tests for the steady-state replay path. The
// budget is at most 1 allocation per replayed request, and the
// replayer's own machinery must contribute (amortized) none of it: the
// arrival cursor and closed-loop clients are sim.Caller values, the
// completion DoneFuncs live on pooled inflight slots, and writes reuse
// one shared zero block. What remains is the device's own budget — 1
// alloc per read (the returned data buffer, an ownership transfer) and
// 0 per write — plus the replayer's fixed per-pass setup, amortized
// across the trace.

// replayAllocs measures allocations per replayed request for one full
// pass over n requests.
func replayAllocs(t *testing.T, n int, write bool, mode Mode) float64 {
	t.Helper()
	r := rig.MustNew(rig.Options{})
	blocks := r.PartitionBlocks(0)
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			// 30 ms apart: slower than the device's service time, so the
			// open-loop in-flight population (and the inflight pool) stays
			// at one.
			TimeMS: float64(i) * 30,
			Write:  write,
			Block:  (int64(i) * 977) % blocks,
		}
	}
	// Warm-up pass: grows the driver's pools and histogram buckets.
	rep, err := NewReplayer(r.Eng, r.Driver, recs, ReplayOptions{Mode: mode, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start(nil)
	r.Eng.Run()
	per := testing.AllocsPerRun(3, func() {
		rep, err := NewReplayer(r.Eng, r.Driver, recs, ReplayOptions{Mode: mode, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rep.Start(nil)
		r.Eng.Run()
	}) / float64(n)
	return per
}

func TestOpenLoopWriteAllocs(t *testing.T) {
	// Writes have a zero device budget, so this pins the replayer's own
	// path: everything measured is per-pass setup amortized over 512
	// requests, far under the 1 alloc/request floor.
	if per := replayAllocs(t, 512, true, OpenLoop); per > 0.25 {
		t.Errorf("open-loop write replay: %.3f allocs/request, want <= 0.25", per)
	}
}

func TestOpenLoopReadAllocs(t *testing.T) {
	// Reads add the device's 1-alloc data buffer.
	if per := replayAllocs(t, 512, false, OpenLoop); per > 1.25 {
		t.Errorf("open-loop read replay: %.3f allocs/request, want <= 1.25", per)
	}
}

func TestClosedLoopWriteAllocs(t *testing.T) {
	if per := replayAllocs(t, 512, true, ClosedLoop); per > 0.25 {
		t.Errorf("closed-loop write replay: %.3f allocs/request, want <= 0.25", per)
	}
}
