package tracein

import (
	"testing"

	"repro/internal/trace"
)

func TestScaleIdentity(t *testing.T) {
	in := sampleRecords()
	got := Scale{}.Apply(in)
	if len(got) != len(in) {
		t.Fatalf("%d records, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], in[i])
		}
	}
	// The identity scale still copies: mutating the output must not
	// touch the input.
	got[0].Block = -1
	if in[0].Block == -1 {
		t.Error("Apply aliased its input")
	}
	if s := (Scale{}).String(); s != "1x@1.0" {
		t.Errorf("identity String() = %q", s)
	}
}

func TestScaleCompress(t *testing.T) {
	in := []trace.Record{{TimeMS: 0}, {TimeMS: 100}, {TimeMS: 250}}
	got := Scale{Compress: 2}.Apply(in)
	want := []float64{0, 50, 125}
	for i, w := range want {
		if got[i].TimeMS != w {
			t.Errorf("record %d at %v ms, want %v", i, got[i].TimeMS, w)
		}
	}
}

// TestScaleMultiplex locks the deterministic interleave: with no phase
// offset, each input record expands to its copies in copy order at the
// same timestamp, with addresses shifted per copy.
func TestScaleMultiplex(t *testing.T) {
	in := []trace.Record{
		{TimeMS: 10, Block: 5},
		{TimeMS: 20, Block: 7, Write: true},
	}
	got := Scale{Copies: 3, ShiftBlocks: 100}.Apply(in)
	want := []trace.Record{
		{TimeMS: 10, Block: 5},
		{TimeMS: 10, Block: 105},
		{TimeMS: 10, Block: 205},
		{TimeMS: 20, Block: 7, Write: true},
		{TimeMS: 20, Block: 107, Write: true},
		{TimeMS: 20, Block: 207, Write: true},
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if s := (Scale{Copies: 3, Compress: 2}).String(); s != "3x@2.0" {
		t.Errorf("String() = %q", s)
	}
}

func TestScaleWrap(t *testing.T) {
	in := []trace.Record{{Block: 90}}
	got := Scale{Copies: 3, ShiftBlocks: 50, WrapBlocks: 100}.Apply(in)
	want := []int64{90, 40, 90} // 90, 140%100, 190%100
	for i, w := range want {
		if got[i].Block != w {
			t.Errorf("copy %d at block %d, want %d", i, got[i].Block, w)
		}
	}
}

// TestScalePhase locks the phase-offset merge: copies start PhaseMS
// apart and the merged stream is time-sorted with ties kept in copy
// order (stable sort), so the result is reproducible byte for byte.
func TestScalePhase(t *testing.T) {
	in := []trace.Record{{TimeMS: 0, Block: 1}, {TimeMS: 10, Block: 2}}
	got := Scale{Copies: 2, ShiftBlocks: 100, PhaseMS: 10}.Apply(in)
	want := []trace.Record{
		{TimeMS: 0, Block: 1},
		{TimeMS: 10, Block: 101}, // copy 1 of record 0
		{TimeMS: 10, Block: 2},   // copy 0 of record 1
		{TimeMS: 20, Block: 102},
	}
	// Stable sort preserves the pre-sort order of equal timestamps: the
	// pre-sort stream is (r0c0, r0c1, r1c0, r1c1) = times (0, 10, 10, 20),
	// so the two t=10 entries keep that order: r0c1 then r1c0.
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Applying the same scale twice gives the identical stream.
	again := Scale{Copies: 2, ShiftBlocks: 100, PhaseMS: 10}.Apply(in)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("record %d differs between applications", i)
		}
	}
}

func TestScaleEmpty(t *testing.T) {
	if got := (Scale{}).Apply(nil); len(got) != 0 {
		t.Errorf("identity of empty = %d records", len(got))
	}
	if got := (Scale{Copies: 4}).Apply(nil); len(got) != 0 {
		t.Errorf("multiplex of empty = %d records", len(got))
	}
}
