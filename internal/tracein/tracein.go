// Package tracein ingests block-request traces from external and native
// formats and turns them into simulated load: streaming parsers for
// SNIA MSR-Cambridge CSV and blkparse-style text plus the native trace
// formats (closing the loop with cmd/tracegen and internal/trace), a
// scaler that time-compresses and multiplexes address-shifted copies to
// emulate heavy traffic, and a replayer that drives any
// driver.BlockDevice with the result in open-loop (timestamp-faithful)
// or closed-loop (think-time) mode.
//
// The source paper's evaluation is trace-driven; TraceTracker frames
// the reconstruction problem this package solves — turning captured
// block traces back into faithful simulated load. Every parser is
// streaming (constant memory for arbitrarily long inputs) and fails
// with typed errors that identify the offending line, so malformed
// real-world captures are diagnosed rather than silently mangled.
package tracein

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

// Format identifies a trace encoding.
type Format int

const (
	// FormatUnknown is returned by Detect when no parser claims the
	// input.
	FormatUnknown Format = iota
	// FormatBinary is the native compact binary encoding
	// (trace.WriteBinary, tracegen -format binary).
	FormatBinary
	// FormatText is the native line encoding (trace.WriteText,
	// tracegen -format text): "<timeMS> <R|W> <part> <block>".
	FormatText
	// FormatMSR is SNIA MSR-Cambridge CSV:
	// "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime"
	// with the timestamp in Windows 100 ns ticks and offset/size in
	// bytes.
	FormatMSR
	// FormatBlkparse is blkparse-style text: one event per line,
	// "maj,min cpu seq time pid action rwbs sector + sectors [proc]".
	FormatBlkparse
)

// String names the format for errors and flags.
func (f Format) String() string {
	switch f {
	case FormatBinary:
		return "binary"
	case FormatText:
		return "text"
	case FormatMSR:
		return "msr"
	case FormatBlkparse:
		return "blkparse"
	}
	return "unknown"
}

// ParseFormat maps a format name ("binary", "text", "msr", "blkparse",
// or "auto"/"" for detection) to its Format.
func ParseFormat(name string) (Format, error) {
	switch name {
	case "", "auto":
		return FormatUnknown, nil
	case "binary":
		return FormatBinary, nil
	case "text":
		return FormatText, nil
	case "msr":
		return FormatMSR, nil
	case "blkparse":
		return FormatBlkparse, nil
	}
	return FormatUnknown, fmt.Errorf("tracein: unknown trace format %q (want binary, text, msr, blkparse, or auto)", name)
}

// Typed parse failures, matchable with errors.Is through the wrapping
// *ParseError.
var (
	// ErrUnknownFormat means Detect could not attribute the input to
	// any parser.
	ErrUnknownFormat = errors.New("tracein: unrecognized trace format")
	// ErrTruncated means the input ended mid-record or a line is
	// missing fields.
	ErrTruncated = errors.New("tracein: truncated input")
	// ErrBadField means a field failed to parse (non-numeric offset,
	// unknown request type, ...).
	ErrBadField = errors.New("tracein: malformed field")
	// ErrOutOfRange means a numeric field is outside its valid range
	// (negative offset or size, partition beyond the format's limit).
	ErrOutOfRange = errors.New("tracein: value out of range")
	// ErrNonMonotonic means a record's timestamp went backwards; the
	// replayer needs arrivals in time order.
	ErrNonMonotonic = errors.New("tracein: non-monotonic timestamp")
)

// ParseError locates a parse failure: the format being parsed, the
// 1-based line (or record) number, and the underlying typed error.
type ParseError struct {
	Format Format
	Line   int
	Detail string
	Err    error
}

// Error renders the failure with its location.
func (e *ParseError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("tracein: %s line %d: %v", e.Format, e.Line, e.Err)
	}
	return fmt.Sprintf("tracein: %s line %d: %s: %v", e.Format, e.Line, e.Detail, e.Err)
}

// Unwrap exposes the typed cause for errors.Is.
func (e *ParseError) Unwrap() error { return e.Err }

func parseErr(f Format, line int, err error, detail string, args ...any) *ParseError {
	return &ParseError{Format: f, Line: line, Err: err, Detail: fmt.Sprintf(detail, args...)}
}

// Options configures parsing.
type Options struct {
	// BlockBytes is the file system block size the byte- and
	// sector-addressed formats (MSR, blkparse) are quantized to; zero
	// selects 8192, the simulated stack's block size. A request
	// spanning several blocks emits one record per covered block at
	// the request's timestamp, which is how the simulated driver
	// would see it (physio splits raw requests the same way).
	BlockBytes int
}

func (o Options) withDefaults() Options {
	if o.BlockBytes <= 0 {
		o.BlockBytes = 8192
	}
	return o
}

// EmitFunc receives one parsed record; returning an error aborts the
// parse with that error.
type EmitFunc func(trace.Record) error

// Detect sniffs the format from the first bytes of the input. It needs
// at most the first line (or the 4-byte binary magic).
func Detect(prefix []byte) Format {
	if len(prefix) >= 4 &&
		uint32(prefix[0])<<24|uint32(prefix[1])<<16|uint32(prefix[2])<<8|uint32(prefix[3]) == trace.Magic {
		return FormatBinary
	}
	// Take the first non-empty line.
	line := prefix
	for len(line) > 0 && (line[0] == '\n' || line[0] == '\r') {
		line = line[1:]
	}
	for i, b := range line {
		if b == '\n' {
			line = line[:i]
			break
		}
	}
	if len(line) == 0 {
		return FormatUnknown
	}
	if looksMSR(string(line)) {
		return FormatMSR
	}
	if looksBlkparse(string(line)) {
		return FormatBlkparse
	}
	if looksNativeText(string(line)) {
		return FormatText
	}
	return FormatUnknown
}

// Parse streams the input through the parser for the given format.
// FormatUnknown auto-detects from the stream's first bytes.
func Parse(r io.Reader, f Format, o Options, emit EmitFunc) error {
	if f == FormatUnknown {
		br := bufio.NewReader(r)
		prefix, _ := br.Peek(512)
		f = Detect(prefix)
		if f == FormatUnknown {
			return ErrUnknownFormat
		}
		r = br
	}
	switch f {
	case FormatBinary:
		return parseNativeBinary(r, emit)
	case FormatText:
		return parseNativeText(r, emit)
	case FormatMSR:
		return ParseMSR(r, o, emit)
	case FormatBlkparse:
		return ParseBlkparse(r, o, emit)
	}
	return ErrUnknownFormat
}

// ReadAll parses the whole input into memory.
func ReadAll(r io.Reader, f Format, o Options) ([]trace.Record, error) {
	var out []trace.Record
	if err := Parse(r, f, o, func(rec trace.Record) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFile parses a trace file, auto-detecting the format when f is
// FormatUnknown, and reports which format was read.
func ReadFile(path string, f Format, o Options) ([]trace.Record, Format, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, FormatUnknown, err
	}
	defer file.Close()
	if f == FormatUnknown {
		br := bufio.NewReader(file)
		prefix, _ := br.Peek(512)
		f = Detect(prefix)
		if f == FormatUnknown {
			return nil, FormatUnknown, fmt.Errorf("%w: %s", ErrUnknownFormat, path)
		}
		recs, err := ReadAll(br, f, o)
		return recs, f, err
	}
	recs, err := ReadAll(file, f, o)
	return recs, f, err
}

// parseNativeBinary wraps the trace package's streaming binary decoder
// with this package's error taxonomy.
func parseNativeBinary(r io.Reader, emit EmitFunc) error {
	n := 0
	var emitErr error
	err := trace.ScanBinary(r, func(rec trace.Record) error {
		n++
		emitErr = emit(rec)
		return emitErr
	})
	if err == nil {
		return nil
	}
	if emitErr != nil {
		return emitErr // the callback's own error passes through unchanged
	}
	if errors.Is(err, trace.ErrBadHeader) {
		return parseErr(FormatBinary, 0, ErrBadField, "%v", err)
	}
	return parseErr(FormatBinary, n+1, ErrTruncated, "%v", err)
}

// parseNativeText wraps the trace package's streaming text decoder.
func parseNativeText(r io.Reader, emit EmitFunc) error {
	n := 0
	var emitErr error
	err := trace.ScanText(r, func(rec trace.Record) error {
		n++
		emitErr = emit(rec)
		return emitErr
	})
	if err == nil {
		return nil
	}
	if emitErr != nil {
		return emitErr
	}
	return parseErr(FormatText, n+1, ErrBadField, "%v", err)
}

// looksNativeText reports whether a line matches the native text
// format: "<float> <R|W> <int> <int>".
func looksNativeText(line string) bool {
	var t float64
	var dir string
	var part int
	var blk int64
	n, err := fmt.Sscanf(line, "%f %s %d %d", &t, &dir, &part, &blk)
	return err == nil && n == 4 && (dir == "R" || dir == "W")
}
