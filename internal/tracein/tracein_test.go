package tracein

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// sampleRecords is a small native trace with awkward values: fractional
// sub-millisecond times, both directions, a second partition.
func sampleRecords() []trace.Record {
	return []trace.Record{
		{TimeMS: 0, Write: false, Part: 0, Block: 10},
		{TimeMS: 0.125, Write: true, Part: 0, Block: 11},
		{TimeMS: 3.0000001, Write: false, Part: 1, Block: 0},
		{TimeMS: 1000.5, Write: true, Part: 0, Block: 999999},
		{TimeMS: 86_400_000.25, Write: false, Part: 0, Block: 1},
	}
}

func TestParseFormatNames(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Format
	}{
		{"", FormatUnknown}, {"auto", FormatUnknown},
		{"binary", FormatBinary}, {"text", FormatText},
		{"msr", FormatMSR}, {"blkparse", FormatBlkparse},
	} {
		got, err := ParseFormat(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
		if tc.want != FormatUnknown && tc.want.String() != tc.name {
			t.Errorf("Format %v String() = %q, want %q", tc.want, tc.want.String(), tc.name)
		}
	}
	if _, err := ParseFormat("csv"); err == nil {
		t.Error("ParseFormat(csv) should fail")
	}
	if got := FormatUnknown.String(); got != "unknown" {
		t.Errorf("FormatUnknown.String() = %q", got)
	}
}

func TestParseModeNames(t *testing.T) {
	for _, tc := range []struct {
		name string
		want Mode
	}{
		{"", OpenLoop}, {"open", OpenLoop}, {"closed", ClosedLoop},
	} {
		got, err := ParseMode(tc.name)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", tc.name, got, err, tc.want)
		}
	}
	if _, err := ParseMode("batch"); err == nil {
		t.Error("ParseMode(batch) should fail")
	}
	if OpenLoop.String() != "open" || ClosedLoop.String() != "closed" {
		t.Error("Mode String() names changed")
	}
}

func TestDetect(t *testing.T) {
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := trace.WriteText(&txt, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		input []byte
		want  Format
	}{
		{"binary", bin.Bytes(), FormatBinary},
		{"native-text", txt.Bytes(), FormatText},
		{"msr-header", []byte("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"), FormatMSR},
		{"msr-event", []byte("128166372003061629,hm,0,Read,383496192,32768,58\n"), FormatMSR},
		{"blkparse", []byte("8,0 1 1 0.000000000 1234 Q R 7077888 + 16 [fio]\n"), FormatBlkparse},
		{"blkparse-leading-blank", []byte("\n8,0 3 7 1.5 99 Q WS 1024 + 8 [app]\n"), FormatBlkparse},
		{"garbage", []byte("hello world\n"), FormatUnknown},
		{"empty", nil, FormatUnknown},
	} {
		if got := Detect(tc.input); got != tc.want {
			t.Errorf("Detect(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestNativeRoundTrip locks the tracegen→tracein loop: records written
// by the trace package's binary and text encoders must parse back
// identically — every field, including sub-millisecond times — with the
// format auto-detected.
func TestNativeRoundTrip(t *testing.T) {
	want := sampleRecords()
	for _, tc := range []struct {
		name   string
		encode func(*bytes.Buffer) error
		format Format
	}{
		{"binary", func(b *bytes.Buffer) error { return trace.WriteBinary(b, want) }, FormatBinary},
		{"text", func(b *bytes.Buffer) error { return trace.WriteText(b, want) }, FormatText},
	} {
		var buf bytes.Buffer
		if err := tc.encode(&buf); err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()), FormatUnknown, Options{})
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d records, want %d", tc.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: record %d = %+v, want %+v", tc.name, i, got[i], want[i])
			}
		}
	}
}

func TestParseMSR(t *testing.T) {
	input := strings.Join([]string{
		"Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime",
		"128166372003061629,usr,0,Read,16384,8192,100",   // block 2 exactly
		"128166372003061629,usr,0,Write,24576,16384,100", // blocks 3-4, same tick
		"128166372003071629,usr,1,read,4096,8192,100",    // straddles blocks 0-1, 1 ms later
		"128166372003071629,usr,0,Read,81920,0,100",      // zero size: probe of block 10
	}, "\n")
	got, err := ReadAll(strings.NewReader(input), FormatMSR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Record{
		{TimeMS: 0, Write: false, Part: 0, Block: 2},
		{TimeMS: 0, Write: true, Part: 0, Block: 3},
		{TimeMS: 0, Write: true, Part: 0, Block: 4},
		{TimeMS: 1, Write: false, Part: 1, Block: 0},
		{TimeMS: 1, Write: false, Part: 1, Block: 1},
		{TimeMS: 1, Write: false, Part: 0, Block: 10},
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseMSRNoHeader(t *testing.T) {
	got, err := ReadAll(strings.NewReader("5000000,h,0,Write,0,4096,1\n"), FormatMSR, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (trace.Record{TimeMS: 0, Write: true, Part: 0, Block: 0}) {
		t.Fatalf("got %+v", got)
	}
}

func TestParseMSRBlockBytes(t *testing.T) {
	// A 4 KB block size halves the addresses an 8 KB one would produce.
	got, err := ReadAll(strings.NewReader("1,h,0,Read,8192,4096,1\n"), FormatMSR, Options{BlockBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Block != 2 {
		t.Fatalf("got %+v, want one record at block 2", got)
	}
}

func TestParseBlkparse(t *testing.T) {
	input := strings.Join([]string{
		"8,0 1 1 0.000000000 1234 Q R 32 + 16 [fio]", // sectors 32..47 = bytes 16384..24575: block 2
		"CPU0 (8,0):",                                // summary noise
		" Reads Queued:      1,        8KiB",         // more noise
		"8,0 1 2 0.001000000 1234 C R 32 + 16 [fio]", // completion: skipped
		"8,0 0 3 0.250000000 77 Q WS 64 + 32 [app]",  // write, blocks 4-5
		"8,0 0 4 0.300000000 77 Q FN 0 + 0 [app]",    // flush, no R/W: skipped
		"",
	}, "\n")
	got, err := ReadAll(strings.NewReader(input), FormatBlkparse, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Record{
		{TimeMS: 0, Write: false, Part: 0, Block: 2},
		{TimeMS: 250, Write: true, Part: 0, Block: 4},
		{TimeMS: 250, Write: true, Part: 0, Block: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("%d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMalformedInputs is the typed-error table: every corrupt input
// fails with the right sentinel through errors.Is, and line numbers
// point at the offending line.
func TestMalformedInputs(t *testing.T) {
	truncBin := func() []byte {
		var b bytes.Buffer
		if err := trace.WriteBinary(&b, sampleRecords()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()[:b.Len()-7] // cut into the last record
	}()
	badVersion := func() []byte {
		var b bytes.Buffer
		if err := trace.WriteBinary(&b, nil); err != nil {
			t.Fatal(err)
		}
		buf := b.Bytes()
		buf[5] = 99 // version
		return buf
	}()
	for _, tc := range []struct {
		name   string
		format Format
		input  []byte
		want   error
		line   int // 0 = don't check
	}{
		{"binary-truncated-record", FormatBinary, truncBin, ErrTruncated, 5},
		{"binary-truncated-header", FormatBinary, []byte{0x41, 0x42}, ErrBadField, 0},
		{"binary-bad-version", FormatBinary, badVersion, ErrBadField, 0},
		{"text-bad-direction", FormatText, []byte("1.5 X 0 100\n"), ErrBadField, 1},
		{"text-missing-fields", FormatText, []byte("0 R 0 1\n2.5 W 0\n"), ErrBadField, 2},
		{"text-garbage", FormatText, []byte("0 R 0 1\nnot a record\n"), ErrBadField, 2},
		{"msr-missing-fields", FormatMSR, []byte("1,h,0,Read,0\n"), ErrTruncated, 1},
		{"msr-bad-type", FormatMSR, []byte("1,h,0,Trim,0,4096,1\n"), ErrBadField, 1},
		{"msr-bad-timestamp", FormatMSR, []byte("1,h,0,Read,0,4096,1\nxx,h,0,Read,0,4096,1\n"), ErrBadField, 2},
		{"msr-bad-offset", FormatMSR, []byte("1,h,0,Read,zz,4096,1\n"), ErrBadField, 1},
		{"msr-negative-offset", FormatMSR, []byte("1,h,0,Read,-8192,4096,1\n"), ErrOutOfRange, 1},
		{"msr-negative-size", FormatMSR, []byte("1,h,0,Read,0,-1,1\n"), ErrOutOfRange, 1},
		{"msr-huge-size", FormatMSR, []byte("1,h,0,Read,0,9000000000000000000,1\n"), ErrOutOfRange, 1},
		{"msr-bad-disk", FormatMSR, []byte("1,h,x,Read,0,4096,1\n"), ErrBadField, 1},
		{"msr-disk-out-of-range", FormatMSR, []byte("1,h,300,Read,0,4096,1\n"), ErrOutOfRange, 1},
		{"msr-non-monotonic", FormatMSR, []byte("20000,h,0,Read,0,4096,1\n10000,h,0,Read,0,4096,1\n"), ErrNonMonotonic, 2},
		{"blkparse-short-line", FormatBlkparse, []byte("8,0 1 1 0.5\n"), ErrTruncated, 1},
		{"blkparse-bad-time", FormatBlkparse, []byte("8,0 1 1 zz 99 Q R 32 + 16 [x]\n"), ErrBadField, 1},
		{"blkparse-negative-time", FormatBlkparse, []byte("8,0 1 1 -0.5 99 Q R 32 + 16 [x]\n"), ErrOutOfRange, 1},
		{"blkparse-no-sector", FormatBlkparse, []byte("8,0 1 1 0.5 99 Q R\n"), ErrTruncated, 1},
		{"blkparse-bad-sector", FormatBlkparse, []byte("8,0 1 1 0.5 99 Q R zz + 16 [x]\n"), ErrBadField, 1},
		{"blkparse-negative-sector", FormatBlkparse, []byte("8,0 1 1 0.5 99 Q R -32 + 16 [x]\n"), ErrOutOfRange, 1},
		{"blkparse-no-plus", FormatBlkparse, []byte("8,0 1 1 0.5 99 Q R 32 * 16 [x]\n"), ErrBadField, 1},
		{"blkparse-bad-count", FormatBlkparse, []byte("8,0 1 1 0.5 99 Q R 32 + zz [x]\n"), ErrBadField, 1},
		{"blkparse-huge-count", FormatBlkparse, []byte("8,0 1 1 0.5 99 Q R 32 + 9000000000000000000 [x]\n"), ErrOutOfRange, 1},
		{"blkparse-non-monotonic", FormatBlkparse, []byte("8,0 1 1 2.0 99 Q R 32 + 16 [x]\n8,0 1 2 1.0 99 Q R 64 + 16 [x]\n"), ErrNonMonotonic, 2},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadAll(bytes.NewReader(tc.input), tc.format, Options{})
			if err == nil {
				t.Fatal("parse succeeded on corrupt input")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError", err)
			}
			if pe.Format != tc.format {
				t.Errorf("ParseError.Format = %v, want %v", pe.Format, tc.format)
			}
			if tc.line > 0 && pe.Line != tc.line {
				t.Errorf("ParseError.Line = %d, want %d (%v)", pe.Line, tc.line, err)
			}
			if pe.Error() == "" {
				t.Error("empty error string")
			}
		})
	}
}

func TestParseUnknownFormat(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("what is this\n"), FormatUnknown, Options{}); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("got %v, want ErrUnknownFormat", err)
	}
}

// TestEmitAbort checks that an emit callback's error aborts the parse
// and surfaces unchanged, for every format.
func TestEmitAbort(t *testing.T) {
	sentinel := errors.New("stop")
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	var txt bytes.Buffer
	if err := trace.WriteText(&txt, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		format Format
		input  []byte
	}{
		{FormatBinary, bin.Bytes()},
		{FormatText, txt.Bytes()},
		{FormatMSR, []byte("1,h,0,Read,0,4096,1\n")},
		{FormatBlkparse, []byte("8,0 1 1 0.5 99 Q R 32 + 16 [x]\n")},
	} {
		err := Parse(bytes.NewReader(tc.input), tc.format, Options{}, func(trace.Record) error {
			return sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("%v: emit error %v, want the sentinel unchanged", tc.format, err)
		}
	}
}

func TestReadFile(t *testing.T) {
	dir := t.TempDir()
	want := sampleRecords()
	binPath := filepath.Join(dir, "t.trace")
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, want); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, f, err := ReadFile(binPath, FormatUnknown, Options{})
	if err != nil || f != FormatBinary || len(recs) != len(want) {
		t.Fatalf("ReadFile auto: %v records, format %v, err %v", len(recs), f, err)
	}
	// Explicit format too.
	recs, f, err = ReadFile(binPath, FormatBinary, Options{})
	if err != nil || f != FormatBinary || len(recs) != len(want) {
		t.Fatalf("ReadFile explicit: %v records, format %v, err %v", len(recs), f, err)
	}
	if _, _, err := ReadFile(filepath.Join(dir, "missing"), FormatUnknown, Options{}); err == nil {
		t.Error("ReadFile on a missing path should fail")
	}
	garbled := filepath.Join(dir, "garbled")
	if err := os.WriteFile(garbled, []byte("no format at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(garbled, FormatUnknown, Options{}); !errors.Is(err, ErrUnknownFormat) {
		t.Errorf("ReadFile on garbage: %v, want ErrUnknownFormat", err)
	}
}
