package sched

import (
	"testing"
	"testing/quick"
)

type req int

func (r req) Cylinder() int { return int(r) }

func cyls(cs ...int) []Cylindered {
	out := make([]Cylindered, len(cs))
	for i, c := range cs {
		out[i] = req(c)
	}
	return out
}

func TestNew(t *testing.T) {
	for _, name := range []string{"fcfs", "scan", "cscan", "sstf"} {
		s, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("elevator9000"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestFCFS(t *testing.T) {
	s := FCFS{}
	if got := s.Pick(400, cyls(700, 10, 401)); got != 0 {
		t.Errorf("FCFS picked %d, want 0", got)
	}
}

func TestSSTF(t *testing.T) {
	s := SSTF{}
	if got := s.Pick(400, cyls(700, 390, 405)); got != 2 {
		t.Errorf("SSTF picked %d, want 2 (cyl 405)", got)
	}
	// Tie goes to arrival order.
	if got := s.Pick(400, cyls(410, 390)); got != 0 {
		t.Errorf("SSTF tie picked %d, want 0", got)
	}
}

func TestSCANSweepsUpThenDown(t *testing.T) {
	s := NewSCAN()
	pending := cyls(500, 300, 450, 600)
	// Head at 400 moving up: nearest above is 450.
	if got := s.Pick(400, pending); got != 2 {
		t.Fatalf("picked %d, want 2 (cyl 450)", got)
	}
	// Still moving up from 450: nearest above is 500.
	if got := s.Pick(450, cyls(500, 300, 600)); got != 0 {
		t.Fatalf("picked %d, want 0 (cyl 500)", got)
	}
	if got := s.Pick(500, cyls(300, 600)); got != 1 {
		t.Fatalf("picked %d, want 1 (cyl 600)", got)
	}
	// Nothing above 600: reverse, nearest below is 300.
	if got := s.Pick(600, cyls(300)); got != 0 {
		t.Fatalf("picked %d, want 0 (cyl 300)", got)
	}
}

func TestSCANServicesCurrentCylinderFirst(t *testing.T) {
	// Zero-distance requests are "ahead" in either direction: the
	// synergy the paper describes requires same-cylinder requests to be
	// drained before the head moves on.
	s := NewSCAN()
	if got := s.Pick(400, cyls(500, 400, 390)); got != 1 {
		t.Errorf("picked %d, want 1 (cyl 400)", got)
	}
	s2 := &SCAN{up: false}
	if got := s2.Pick(400, cyls(390, 400, 500)); got != 1 {
		t.Errorf("downward: picked %d, want 1 (cyl 400)", got)
	}
}

func TestSCANReversesWhenNothingAhead(t *testing.T) {
	s := NewSCAN() // moving up
	if got := s.Pick(800, cyls(100, 200)); got != 1 {
		t.Errorf("picked %d, want 1 (cyl 200, nearest below)", got)
	}
	if s.up {
		t.Error("direction did not flip")
	}
}

func TestCSCAN(t *testing.T) {
	s := CSCAN{}
	if got := s.Pick(400, cyls(300, 450, 800)); got != 1 {
		t.Errorf("picked %d, want 1 (cyl 450)", got)
	}
	// Nothing ahead: wrap to the lowest.
	if got := s.Pick(900, cyls(300, 450, 100)); got != 2 {
		t.Errorf("picked %d, want 2 (cyl 100)", got)
	}
}

func TestPickAlwaysValidIndex(t *testing.T) {
	policies := []func() Scheduler{
		func() Scheduler { return FCFS{} },
		func() Scheduler { return SSTF{} },
		func() Scheduler { return NewSCAN() },
		func() Scheduler { return CSCAN{} },
	}
	for _, mk := range policies {
		s := mk()
		f := func(head uint16, raw []uint16) bool {
			if len(raw) == 0 {
				return true
			}
			pending := make([]Cylindered, len(raw))
			for i, r := range raw {
				pending[i] = req(int(r) % 1658)
			}
			got := s.Pick(int(head)%1658, pending)
			return got >= 0 && got < len(pending)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestSCANDrainsAllRequests(t *testing.T) {
	// Property: repeatedly picking from a queue drains it without
	// skipping, and total head travel is at most 2x the cylinder span.
	s := NewSCAN()
	pending := cyls(10, 900, 450, 455, 455, 20, 1500, 3)
	head := 450
	travel := 0
	remaining := append([]Cylindered(nil), pending...)
	for len(remaining) > 0 {
		i := s.Pick(head, remaining)
		c := remaining[i].Cylinder()
		d := c - head
		if d < 0 {
			d = -d
		}
		travel += d
		head = c
		remaining = append(remaining[:i], remaining[i+1:]...)
	}
	if travel > 2*1500 {
		t.Errorf("SCAN travel = %d cylinders, want <= %d", travel, 2*1500)
	}
}

func TestCounting(t *testing.T) {
	c := NewCounting(FCFS{})
	if c.Name() != "fcfs" {
		t.Errorf("Name = %q, want the wrapped policy's", c.Name())
	}
	if c.Picks() != 0 || c.MeanQueue() != 0 {
		t.Error("fresh counter should read zero")
	}
	if i := c.Pick(0, cyls(5, 9)); i != 0 {
		t.Errorf("Pick = %d, want the wrapped FCFS choice 0", i)
	}
	c.Pick(5, cyls(9, 2, 7, 1))
	if c.Picks() != 2 {
		t.Errorf("Picks = %d, want 2", c.Picks())
	}
	if got, want := c.MeanQueue(), 3.0; got != want {
		t.Errorf("MeanQueue = %v, want %v (2 then 4 pending)", got, want)
	}
}
