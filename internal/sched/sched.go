// Package sched implements disk request scheduling (head scheduling)
// policies.
//
// The SunOS driver modified in the paper maintains a queue of
// outstanding requests per physical device and services them with a
// SCAN (elevator) policy; the paper's FCFS numbers are what the seek
// distances would have been had requests been served in arrival order
// (Section 5.2, Table 3). Both policies are implemented here, together
// with SSTF and C-SCAN for the scheduling-ablation benchmarks. Section
// 5.2 attributes part of the rearranged zero-seek rate to synergy
// between SCAN and the clustering of hot blocks; the ablation
// benchmarks quantify that claim.
package sched

import (
	"fmt"

	"repro/internal/metrics"
)

// Cylindered is anything with a target cylinder — the only property a
// head scheduler needs.
type Cylindered interface {
	Cylinder() int
}

// Scheduler picks the next request to service from a pending queue.
// Implementations may keep state across calls (e.g. SCAN's sweep
// direction); a Scheduler instance must be used with a single queue.
type Scheduler interface {
	// Name returns the policy name (e.g. "scan").
	Name() string
	// Pick returns the index within pending of the request to service
	// next, given the current head cylinder. pending is in arrival
	// order and is never empty.
	Pick(headCyl int, pending []Cylindered) int
}

// New returns a scheduler by policy name: "fcfs", "scan", "cscan" or
// "sstf".
func New(name string) (Scheduler, error) {
	switch name {
	case "fcfs":
		return FCFS{}, nil
	case "scan":
		return NewSCAN(), nil
	case "cscan":
		return CSCAN{}, nil
	case "sstf":
		return SSTF{}, nil
	default:
		return nil, fmt.Errorf("sched: unknown policy %q", name)
	}
}

// FCFS services requests strictly in arrival order.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// Pick implements Scheduler.
func (FCFS) Pick(_ int, _ []Cylindered) int { return 0 }

// SSTF services the request with the shortest seek distance from the
// current head position, breaking ties in arrival order.
type SSTF struct{}

// Name implements Scheduler.
func (SSTF) Name() string { return "sstf" }

// Pick implements Scheduler.
func (SSTF) Pick(headCyl int, pending []Cylindered) int {
	best, bestDist := 0, abs(pending[0].Cylinder()-headCyl)
	for i := 1; i < len(pending); i++ {
		if d := abs(pending[i].Cylinder() - headCyl); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// SCAN is the elevator policy: the head sweeps in one direction,
// servicing the nearest request ahead of it, and reverses when no
// requests remain in the direction of travel. This matches the SunOS
// driver's disksort behaviour described in the paper.
type SCAN struct {
	up bool
}

// NewSCAN returns a SCAN scheduler initially sweeping toward higher
// cylinders.
func NewSCAN() *SCAN { return &SCAN{up: true} }

// Name implements Scheduler.
func (s *SCAN) Name() string { return "scan" }

// Pick implements Scheduler.
func (s *SCAN) Pick(headCyl int, pending []Cylindered) int {
	if i := s.pickDir(headCyl, pending, s.up); i >= 0 {
		return i
	}
	s.up = !s.up
	if i := s.pickDir(headCyl, pending, s.up); i >= 0 {
		return i
	}
	return 0 // unreachable when pending is non-empty
}

// pickDir returns the nearest request at or beyond headCyl in the given
// direction, ties broken in arrival order, or -1 if none exists.
func (s *SCAN) pickDir(headCyl int, pending []Cylindered, up bool) int {
	best, bestDist := -1, 0
	for i, r := range pending {
		c := r.Cylinder()
		var d int
		if up {
			d = c - headCyl
		} else {
			d = headCyl - c
		}
		if d < 0 {
			continue
		}
		if best == -1 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// CSCAN is the circular SCAN policy: the head sweeps only toward higher
// cylinders and jumps back to the lowest pending request when nothing
// remains ahead.
type CSCAN struct{}

// Name implements Scheduler.
func (CSCAN) Name() string { return "cscan" }

// Pick implements Scheduler.
func (CSCAN) Pick(headCyl int, pending []Cylindered) int {
	best, bestCyl := -1, 0
	lowest, lowestCyl := 0, pending[0].Cylinder()
	for i, r := range pending {
		c := r.Cylinder()
		if c < lowestCyl {
			lowest, lowestCyl = i, c
		}
		if c >= headCyl && (best == -1 || c < bestCyl) {
			best, bestCyl = i, c
		}
	}
	if best >= 0 {
		return best
	}
	return lowest
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Counting wraps a Scheduler and counts its dispatch decisions — how
// many picks it made and how long the pending queue was at each pick.
// The wrapped policy's choices are unchanged, so instrumenting a run
// cannot perturb it. Telemetry probes read the counters.
type Counting struct {
	inner  Scheduler
	picks  int64
	queued int64 // sum of pending-queue lengths at pick time
	hist   *metrics.Histogram
}

// NewCounting returns a counting wrapper around inner.
func NewCounting(inner Scheduler) *Counting { return &Counting{inner: inner} }

// Name implements Scheduler, passing the wrapped policy's name through.
func (c *Counting) Name() string { return c.inner.Name() }

// Pick implements Scheduler.
func (c *Counting) Pick(headCyl int, pending []Cylindered) int {
	c.picks++
	c.queued += int64(len(pending))
	if c.hist != nil {
		c.hist.Record(float64(len(pending)))
	}
	return c.inner.Pick(headCyl, pending)
}

// BindMetrics registers the pending-queue-length distribution in reg:
// one observation per dispatch decision from the moment of binding.
// Queue lengths are small integers, so the histogram uses single-unit
// precision at the bottom of its range.
func (c *Counting) BindMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	c.hist = reg.Histogram("sched_queue_len", metrics.HistogramOpts{MinExp: -1, MaxExp: 20}, labels...)
}

// Picks returns the number of dispatch decisions made.
func (c *Counting) Picks() int64 { return c.picks }

// MeanQueue returns the mean pending-queue length over all picks.
func (c *Counting) MeanQueue() float64 {
	if c.picks == 0 {
		return 0
	}
	return float64(c.queued) / float64(c.picks)
}
