package volume

import "testing"

// Allocation regression tests for the volume request round trip,
// extending the driver's battery one layer up. The budget:
//
//   - writes: 0 allocations — the vreq comes from the volume's pool
//     with its fan-in callbacks prebuilt, the mirror fan-out target
//     list reuses volume-level scratch, and the member drivers are
//     already allocation-free on writes;
//   - reads: 1 allocation — the member disk materializes the returned
//     data as a fresh buffer (ownership transfer to the caller), same
//     as a single-disk read.
//
// These floors are what lets a sharded volume-scale run spend its
// wall-clock on events rather than garbage; the closures the volume
// used to build per request (finish wrapper, mirror failover chain,
// per-member write fan-in) dominated its allocation profile.

// steadyState measures allocations per op after a warm-up that grows
// the pools, queues, heaps and disk pages the access pattern touches.
func steadyState(t *testing.T, v *Volume, op func()) float64 {
	t.Helper()
	for i := 0; i < 64; i++ {
		op()
	}
	return testing.AllocsPerRun(500, op)
}

func TestStripeWriteRoundTripZeroAllocs(t *testing.T) {
	v := mustNew(t, Options{Layout: Stripe, Disks: 4})
	data := blockOf(0x5a)
	done := func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	blk := int64(0)
	if n := steadyState(t, v, func() {
		v.WriteBlock(0, blk%64, data, done)
		blk++
		v.Run()
	}); n != 0 {
		t.Errorf("stripe write round trip: %v allocs, want 0", n)
	}
}

func TestStripeReadRoundTripOneAlloc(t *testing.T) {
	v := mustNew(t, Options{Layout: Stripe, Disks: 4})
	data := blockOf(0x5a)
	for k := int64(0); k < 64; k++ {
		if err := write(t, v, k, data); err != nil {
			t.Fatal(err)
		}
	}
	done := func(got []byte, err error) {
		if err != nil || len(got) == 0 {
			t.Fatal("bad read completion")
		}
	}
	blk := int64(0)
	if n := steadyState(t, v, func() {
		v.ReadBlock(0, blk%64, done)
		blk++
		v.Run()
	}); n > 1 {
		t.Errorf("stripe read round trip: %v allocs, want at most 1 (the data buffer)", n)
	}
}

func TestMirrorWriteRoundTripZeroAllocs(t *testing.T) {
	v := mustNew(t, Options{Layout: Mirror, Disks: 2})
	data := blockOf(0x5a)
	done := func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	blk := int64(0)
	if n := steadyState(t, v, func() {
		v.WriteBlock(0, blk%64, data, done)
		blk++
		v.Run()
	}); n != 0 {
		t.Errorf("mirror write round trip: %v allocs, want 0 (fan-out shares one pooled record)", n)
	}
}

// RAID parity budgets are looser than the mirror's: the read-modify-
// write cycle pulls old data, P (and Q) off the member disks, and each
// member read materializes a fresh buffer (the same ownership transfer
// as the plain read path) before the deltas fold into pooled scratch.
// Everything else — the request record, per-slot callbacks, row locks,
// parity buffers — is pooled and must not allocate.
func TestRAID5WriteRoundTripAllocFloor(t *testing.T) {
	v := mustNew(t, Options{Layout: RAID5, Disks: 4, StripeUnit: 4})
	data := blockOf(0x5a)
	done := func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	blk := int64(0)
	if n := steadyState(t, v, func() {
		v.WriteBlock(0, blk%64, data, done)
		blk++
		v.Run()
	}); n > 2 {
		t.Errorf("raid5 write round trip: %v allocs, want at most 2 (old data + old parity reads)", n)
	}
}

func TestRAID6WriteRoundTripAllocFloor(t *testing.T) {
	v := mustNew(t, Options{Layout: RAID6, Disks: 5, StripeUnit: 4})
	data := blockOf(0x5a)
	done := func(_ []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	blk := int64(0)
	if n := steadyState(t, v, func() {
		v.WriteBlock(0, blk%64, data, done)
		blk++
		v.Run()
	}); n > 3 {
		t.Errorf("raid6 write round trip: %v allocs, want at most 3 (old data + old P + old Q reads)", n)
	}
}

func TestRAID5ReadRoundTripOneAlloc(t *testing.T) {
	// A healthy parity read is a plain single-member read: one
	// allocation for the returned buffer, nothing for parity.
	v := mustNew(t, Options{Layout: RAID5, Disks: 4, StripeUnit: 4})
	data := blockOf(0x5a)
	for k := int64(0); k < 64; k++ {
		if err := write(t, v, k, data); err != nil {
			t.Fatal(err)
		}
	}
	done := func(got []byte, err error) {
		if err != nil || len(got) == 0 {
			t.Fatal("bad read completion")
		}
	}
	blk := int64(0)
	if n := steadyState(t, v, func() {
		v.ReadBlock(0, blk%64, done)
		blk++
		v.Run()
	}); n > 1 {
		t.Errorf("raid5 read round trip: %v allocs, want at most 1 (the data buffer)", n)
	}
}

func TestMirrorReadRoundTripOneAlloc(t *testing.T) {
	// Shortest-queue exercises the policy sort as well; it must stay
	// allocation-free too.
	v := mustNew(t, Options{Layout: Mirror, Disks: 2, ReadPolicy: ShortestQueue})
	data := blockOf(0x5a)
	for k := int64(0); k < 64; k++ {
		if err := write(t, v, k, data); err != nil {
			t.Fatal(err)
		}
	}
	done := func(got []byte, err error) {
		if err != nil || len(got) == 0 {
			t.Fatal("bad read completion")
		}
	}
	blk := int64(0)
	if n := steadyState(t, v, func() {
		v.ReadBlock(0, blk%64, done)
		blk++
		v.Run()
	}); n > 1 {
		t.Errorf("mirror read round trip: %v allocs, want at most 1 (the data buffer)", n)
	}
}
