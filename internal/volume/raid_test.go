package volume

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/disk"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/rig"
	"repro/internal/seek"
)

// tinyDisk is a deliberately small drive model (~340 member blocks)
// so whole-device sweeps — rebuild onto a spare, scrub passes — stay
// cheap enough to run to completion in unit tests.
func tinyDisk() disk.Model {
	return disk.Model{
		Name: "tiny",
		Geom: geom.Geometry{
			Cylinders: 40, TracksPerCyl: 4, SectorsPerTrack: 34, RPM: 3600,
		},
		Seek:         seek.ToshibaMK156F,
		OverheadMS:   2.0,
		HeadSwitchMS: 1.0,
	}
}

func TestRAIDAddressing(t *testing.T) {
	for _, opts := range []Options{
		{Layout: RAID5, Disks: 4, StripeUnit: 2, Disk: tinyDisk()},
		{Layout: RAID6, Disks: 5, StripeUnit: 3, Disk: tinyDisk()},
	} {
		v := mustNew(t, opts)
		ra := v.ra
		if ra == nil {
			t.Fatalf("%s: no parity machinery", opts.Layout)
		}
		if want := ra.per * int64(ra.ndata); v.Blocks() != want {
			t.Errorf("%s: Blocks() = %d, want per(%d)*ndata(%d)", opts.Layout, v.Blocks(), ra.per, ra.ndata)
		}
		// Parity rotates over every slot; data slots fill the rest.
		seenP := make(map[int]bool)
		for row := int64(0); row < int64(2*ra.nslots); row++ {
			p := ra.pslot(row)
			seenP[p] = true
			q := -1
			if ra.dbl {
				q = ra.qslot(row)
				if q == p {
					t.Fatalf("%s row %d: q slot collides with p", opts.Layout, row)
				}
			}
			for c := 0; c < ra.ndata; c++ {
				s := ra.dataSlot(row, c)
				if s < 0 || s == p || s == q {
					t.Fatalf("%s row %d col %d: bad data slot %d", opts.Layout, row, c, s)
				}
				if got := ra.colOfSlot(row, s); got != c {
					t.Fatalf("%s row %d: colOfSlot(dataSlot(%d)) = %d", opts.Layout, row, c, got)
				}
			}
			if ra.colOfSlot(row, p) != -1 || (q >= 0 && ra.colOfSlot(row, q) != -1) {
				t.Fatalf("%s row %d: parity slot claims a column", opts.Layout, row)
			}
		}
		if len(seenP) != ra.nslots {
			t.Errorf("%s: parity visited %d of %d slots", opts.Layout, len(seenP), ra.nslots)
		}
		// addr is a bijection back onto the logical space.
		for _, blk := range []int64{0, 1, v.unit - 1, v.unit, 7 * v.unit, v.Blocks() - 1} {
			row, col, mb := ra.addr(blk)
			back := (row*int64(ra.ndata)+int64(col))*ra.unit + (mb - row*ra.unit)
			if back != blk {
				t.Errorf("%s: addr(%d) = (%d,%d,%d) maps back to %d", opts.Layout, blk, row, col, mb, back)
			}
		}
	}
}

func TestGFField(t *testing.T) {
	// g must generate the multiplicative group: 255 distinct powers.
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[gfPow(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator cycle covers %d elements, want 255", len(seen))
	}
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfDiv(1, byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
	}
	// Spot-check distributivity over addition (XOR).
	for _, tr := range [][3]byte{{3, 7, 250}, {0x53, 0xCA, 1}, {255, 2, 128}} {
		a, b, c := tr[0], tr[1], tr[2]
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %v", tr)
		}
	}
}

func TestSolveRowAllErasures(t *testing.T) {
	v := mustNew(t, Options{Layout: RAID6, Disks: 5, Disk: tinyDisk()})
	ra := v.ra
	n := v.bs.Bytes()
	data := make([][]byte, ra.ndata)
	for c := range data {
		data[c] = make([]byte, n)
		for i := range data[c] {
			data[c][i] = byte((i*7 + c*131 + 13) % 256)
		}
	}
	p := make([]byte, n)
	q := make([]byte, n)
	for c := range data {
		xorInto(p, data[c])
		gfMulAddInto(q, gfPow(c), data[c])
	}
	check := func(label string, colv [][]byte, pp, qq []byte, want int) {
		t.Helper()
		var pool [][]byte
		if got := ra.solveRow(colv, pp, qq, &pool); got != want {
			t.Fatalf("%s: %d unsolved, want %d", label, got, want)
		}
		if want == 0 {
			for c := range colv {
				if !bytes.Equal(colv[c][:n], data[c]) {
					t.Fatalf("%s: column %d reconstructed wrong", label, c)
				}
			}
		}
		for _, b := range pool {
			v.putBuf(b)
		}
	}
	cols := func(erase ...int) [][]byte {
		colv := make([][]byte, ra.ndata)
		copy(colv, data)
		for _, x := range erase {
			colv[x] = nil
		}
		return colv
	}
	for x := 0; x < ra.ndata; x++ {
		check("single via P", cols(x), p, nil, 0)
		check("single via Q", cols(x), nil, q, 0)
		for y := x + 1; y < ra.ndata; y++ {
			check("double via P+Q", cols(x, y), p, q, 0)
			check("double, Q missing", cols(x, y), p, nil, 2)
		}
	}
	check("single, no parity", cols(1), nil, nil, 1)
}

func TestRAIDRoundTrip(t *testing.T) {
	for _, opts := range []Options{
		{Layout: RAID5, Disks: 3, StripeUnit: 1, Disk: tinyDisk()},
		{Layout: RAID5, Disks: 5, StripeUnit: 4, Disk: tinyDisk()},
		{Layout: RAID6, Disks: 4, StripeUnit: 2, Disk: tinyDisk()},
		{Layout: RAID6, Disks: 6, StripeUnit: 16, Disk: tinyDisk()},
	} {
		v := mustNew(t, opts)
		blks := []int64{0, 1, 3, 4, 15, 16, 17, v.Blocks() / 2, v.Blocks() - 1}
		for k, blk := range blks {
			want := blockOf(byte(0x20 + k))
			if err := write(t, v, blk, want); err != nil {
				t.Fatalf("%s/%d disks: write block %d: %v", opts.Layout, opts.Disks, blk, err)
			}
			got, err := read(t, v, blk)
			if err != nil {
				t.Fatalf("%s/%d disks: read block %d: %v", opts.Layout, opts.Disks, blk, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s/%d disks: block %d round-trip mismatch", opts.Layout, opts.Disks, blk)
			}
		}
		// Overwrites must fold the delta into parity, not double it.
		want := blockOf(0x77)
		if err := write(t, v, 16, want); err != nil {
			t.Fatal(err)
		}
		if got, _ := read(t, v, 16); !bytes.Equal(got, want) {
			t.Fatalf("%s: overwrite lost", opts.Layout)
		}
		if v.RAID().ParityRecomputes == 0 {
			t.Errorf("%s: no parity recomputes counted", opts.Layout)
		}
	}
}

// The acceptance scenario: a fault.Plan kills a member, and RAID-5
// keeps returning byte-identical data by reconstructing from the
// survivors and parity.
func TestRAID5DegradedReadReconstructs(t *testing.T) {
	v := mustNew(t, Options{
		Layout: RAID5, Disks: 3, StripeUnit: 1, Disk: tinyDisk(),
		Faults: []*fault.Plan{nil, {CrashAfterOps: 20}},
	})
	nblk := int64(40)
	for k := int64(0); k < nblk; k++ {
		if err := write(t, v, k, blockOf(byte(k+1))); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	if n := v.DeadMembers(); n != 1 {
		t.Fatalf("DeadMembers = %d, want 1", n)
	}
	for k := int64(0); k < nblk; k++ {
		got, err := read(t, v, k)
		if err != nil {
			t.Fatalf("degraded read %d: %v", k, err)
		}
		if !bytes.Equal(got, blockOf(byte(k+1))) {
			t.Fatalf("degraded read %d: wrong data", k)
		}
	}
	if v.RAID().DegradedReads == 0 {
		t.Error("no degraded reads counted")
	}
	if v.Stats().Degraded == 0 {
		t.Error("no degraded requests counted")
	}
}

func TestRAID6SurvivesDoubleFault(t *testing.T) {
	v := mustNew(t, Options{
		Layout: RAID6, Disks: 4, StripeUnit: 2, Disk: tinyDisk(),
		Faults: []*fault.Plan{nil, {CrashAfterOps: 15}, {CrashAfterOps: 25}},
	})
	nblk := int64(60)
	for k := int64(0); k < nblk; k++ {
		if err := write(t, v, k, blockOf(byte(k+3))); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	if n := v.DeadMembers(); n != 2 {
		t.Fatalf("DeadMembers = %d, want 2", n)
	}
	for k := int64(0); k < nblk; k++ {
		got, err := read(t, v, k)
		if err != nil {
			t.Fatalf("double-degraded read %d: %v", k, err)
		}
		if !bytes.Equal(got, blockOf(byte(k+3))) {
			t.Fatalf("double-degraded read %d: wrong data", k)
		}
	}
	// Writes keep working with two members down, and read back.
	if err := write(t, v, 5, blockOf(0xEE)); err != nil {
		t.Fatalf("double-degraded write: %v", err)
	}
	if got, _ := read(t, v, 5); !bytes.Equal(got, blockOf(0xEE)) {
		t.Fatal("double-degraded write lost")
	}
}

// Losses beyond the parity budget surface the driver's ErrDead
// taxonomy: the volume error unwraps to both driver.ErrDead and
// fault.ErrCrash.
func TestRAIDBeyondParityFailsWithErrDead(t *testing.T) {
	v := mustNew(t, Options{
		Layout: RAID5, Disks: 3, StripeUnit: 1, Disk: tinyDisk(),
		Faults: []*fault.Plan{{CrashAfterOps: 8}, {CrashAfterOps: 8}},
	})
	for k := int64(0); k < 20; k++ {
		write(t, v, k, blockOf(byte(k))) // errors expected once dead
	}
	if n := v.DeadMembers(); n != 2 {
		t.Fatalf("DeadMembers = %d, want 2", n)
	}
	_, err := read(t, v, 0)
	if !errors.Is(err, driver.ErrDead) || !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("read beyond parity: err = %v, want ErrDead wrapping ErrCrash", err)
	}
	if err := write(t, v, 0, blockOf(1)); !errors.Is(err, driver.ErrDead) {
		t.Fatalf("write beyond parity: err = %v, want ErrDead", err)
	}
	if v.RAID().Unrecoverable == 0 {
		t.Error("no unrecoverable requests counted")
	}
}

func TestRAID5RebuildOntoSpare(t *testing.T) {
	v := mustNew(t, Options{
		Layout: RAID5, Disks: 3, Spare: 1, StripeUnit: 1, Disk: tinyDisk(),
		RebuildRate: 2000,
		Faults:      []*fault.Plan{nil, {CrashAfterOps: 30}},
	})
	nblk := int64(50)
	for k := int64(0); k < nblk; k++ {
		if err := write(t, v, k, blockOf(byte(k+9))); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	// The write helpers run the engine to quiescence, which includes the
	// whole rebuild chain once the member death is observed.
	st := v.RAID()
	if st.RebuildsStarted != 1 || st.RebuildsDone != 1 {
		t.Fatalf("rebuild counters: %+v", st)
	}
	if st.RebuiltBlocks != v.ra.per {
		t.Errorf("RebuiltBlocks = %d, want the full member (%d)", st.RebuiltBlocks, v.ra.per)
	}
	if st.RebuildMS <= 0 {
		t.Error("no rebuild time accumulated")
	}
	if v.Spares() != 0 || v.Rebuilding() {
		t.Errorf("spare not consumed cleanly: spares=%d rebuilding=%v", v.Spares(), v.Rebuilding())
	}
	if v.ra.slotRig[1] != 3 {
		t.Errorf("slot 1 maps to rig %d, want the spare (3)", v.ra.slotRig[1])
	}
	// With the spare spliced in, reads are healthy again — correct data,
	// nothing reconstructed.
	before := v.RAID().DegradedReads
	for k := int64(0); k < nblk; k++ {
		got, err := read(t, v, k)
		if err != nil {
			t.Fatalf("post-rebuild read %d: %v", k, err)
		}
		if !bytes.Equal(got, blockOf(byte(k+9))) {
			t.Fatalf("post-rebuild read %d: wrong data", k)
		}
	}
	if after := v.RAID().DegradedReads; after != before {
		t.Errorf("post-rebuild reads still degraded: %d -> %d", before, after)
	}
}

func TestRebuildAbortsWhenSpareDies(t *testing.T) {
	v := mustNew(t, Options{
		Layout: RAID5, Disks: 3, Spare: 1, StripeUnit: 1, Disk: tinyDisk(),
		RebuildRate: 2000,
		Faults:      []*fault.Plan{nil, {CrashAfterOps: 20}, nil, {CrashAfterOps: 40}},
	})
	nblk := int64(40)
	for k := int64(0); k < nblk; k++ {
		if err := write(t, v, k, blockOf(byte(k+1))); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	st := v.RAID()
	if st.RebuildsStarted != 1 || st.RebuildsDone != 0 {
		t.Fatalf("rebuild counters after spare death: %+v", st)
	}
	if v.Spares() != 0 {
		t.Errorf("dead spare still pooled")
	}
	// Still degraded, still serving.
	for k := int64(0); k < nblk; k++ {
		got, err := read(t, v, k)
		if err != nil || !bytes.Equal(got, blockOf(byte(k+1))) {
			t.Fatalf("degraded read %d after aborted rebuild: %v", k, err)
		}
	}
}

// The rebuild throttle: the idle pace is 1000/rate ms per block, and
// foreground queue depth stretches it.
func TestRebuildStepDelayYieldsToLoad(t *testing.T) {
	v := mustNew(t, Options{Layout: RAID5, Disks: 3, Disk: tinyDisk(), RebuildRate: 500})
	base := v.ra.stepDelay()
	if base != 2 {
		t.Fatalf("idle step delay = %v ms, want 2", base)
	}
	// Queue raw traffic on a member without running the engine.
	for k := int64(0); k < 6; k++ {
		v.Members[0].Driver.ReadBlock(0, k*10, nil)
	}
	if loaded := v.ra.stepDelay(); loaded <= base {
		t.Errorf("loaded step delay %v not above idle %v", loaded, base)
	}
	v.Eng.Run()
}

// A rebuild racing foreground traffic takes longer than an idle one
// (the throttle yields) but still completes onto the spare with the
// foreground writes folded in — the acceptance "throttled rebuild
// under foreground load".
func TestRebuildUnderForegroundLoad(t *testing.T) {
	build := func() *Volume {
		return mustNew(t, Options{
			Layout: RAID5, Disks: 3, Spare: 1, StripeUnit: 1, Disk: tinyDisk(),
			RebuildRate: 1000,
			Faults:      []*fault.Plan{nil, {CrashAfterOps: 25}},
		})
	}
	// Idle: kill the member, let the rebuild run uncontended.
	idle := build()
	for k := int64(0); k < 30; k++ {
		if err := write(t, idle, k, blockOf(byte(k))); err != nil {
			t.Fatalf("idle write %d: %v", k, err)
		}
	}
	if st := idle.RAID(); st.RebuildsDone != 1 {
		t.Fatalf("idle rebuild: %+v", st)
	}

	// Loaded: keep issuing writes in small time slices so the rebuild
	// overlaps a busy foreground.
	busy := build()
	kills := int64(0)
	for k := int64(0); k < 30; k++ {
		busy.WriteBlock(0, k, blockOf(byte(k)), nil)
		kills++
		if kills%3 == 0 {
			busy.RunUntil(busy.Now() + 5)
		}
	}
	blk := int64(0)
	for !busy.Rebuilding() && busy.DeadMembers() == 0 {
		busy.RunUntil(busy.Now() + 5)
	}
	for i := 0; i < 4000 && (busy.Rebuilding() || busy.RAID().RebuildsDone == 0); i++ {
		busy.WriteBlock(0, blk%30, blockOf(byte(blk)), nil)
		blk++
		busy.RunUntil(busy.Now() + 5)
	}
	busy.Run()
	bst := busy.RAID()
	if bst.RebuildsDone != 1 {
		t.Fatalf("loaded rebuild never finished: %+v", bst)
	}
	if bst.RebuildMS <= idle.RAID().RebuildMS {
		t.Errorf("loaded rebuild (%v ms) not slower than idle (%v ms)",
			bst.RebuildMS, idle.RAID().RebuildMS)
	}
	// The foreground writes that landed behind the cursor were written
	// through: every block reads back as its last write.
	last := make(map[int64]byte)
	for b := int64(0); b < 30; b++ {
		last[b] = byte(b)
	}
	for w := int64(0); w < blk; w++ {
		last[w%30] = byte(w)
	}
	for b := int64(0); b < 30; b++ {
		got, err := read(t, busy, b)
		if err != nil {
			t.Fatalf("read %d after loaded rebuild: %v", b, err)
		}
		if !bytes.Equal(got, blockOf(last[b])) {
			t.Fatalf("block %d lost its latest write during rebuild", b)
		}
	}
}

// memberPhysSector maps a member block to the physical sector a
// fault.Plan bad range needs, through the member's label.
func memberPhysSector(t *testing.T, m *rig.Rig, mb int64) int64 {
	t.Helper()
	p, err := m.Driver.Label().Partition(0)
	if err != nil {
		t.Fatal(err)
	}
	return m.Driver.Label().MapVirtual(p.Start + mb*int64(geom.Block8K.Sectors()))
}

// The acceptance scenario: a planted latent sector error (a bad range
// never touched by foreground writes) is found by a scrub pass,
// reconstructed from parity, and repaired via the driver's remap path.
func TestScrubRepairsLatentSectorError(t *testing.T) {
	// 8 reserved cylinders: enough for the on-disk block table plus the
	// spare slots the media-error remap path allocates from.
	opts := Options{
		Layout: RAID5, Disks: 3, StripeUnit: 1, Disk: tinyDisk(),
		ReservedCyls: 8, RebuildRate: 2000, ScrubIntervalMS: 60_000,
	}
	// Member block 9 sits in row 9 (unit 1), whose parity is on slot 2;
	// member 0 holds data column 0 there — logical block 18, which the
	// test never writes, so the bad range stays latent.
	scout := mustNew(t, opts)
	bad := memberPhysSector(t, scout.Members[0], 9)
	bsec := int64(geom.Block8K.Sectors())
	opts.Faults = []*fault.Plan{{Bad: []fault.SectorRange{{Start: bad, End: bad + bsec}}}}
	v := mustNew(t, opts)
	for k := int64(0); k < 16; k++ {
		if err := write(t, v, k, blockOf(byte(k+5))); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	// Before the scrub: reading the latent block forces a degraded
	// reconstruction every time — the error is still on the media.
	got, err := read(t, v, 18)
	if err != nil || !bytes.Equal(got, make([]byte, v.bs.Bytes())) {
		t.Fatalf("pre-scrub read of latent block: %v", err)
	}
	if v.RAID().DegradedReads != 1 {
		t.Fatalf("latent read did not reconstruct: %+v", v.RAID())
	}
	if !v.StartScrub() {
		t.Fatal("StartScrub refused")
	}
	if v.StartScrub() {
		t.Fatal("StartScrub armed twice")
	}
	// One interval to the first tick, then the pass itself.
	v.RunUntil(v.Now() + 120_000)
	st := v.RAID()
	if st.ScrubPasses == 0 {
		t.Fatal("no scrub pass ran")
	}
	if st.ScrubRepairs != 1 {
		t.Fatalf("ScrubRepairs = %d, want exactly the planted error", st.ScrubRepairs)
	}
	// The repair went through the remap path: the block now reads clean
	// directly from member 0, no reconstruction.
	before := st.DegradedReads
	var data []byte
	var rerr error
	fired := false
	v.ReadBlock(0, 18, func(d []byte, err error) { data, rerr, fired = d, err, true })
	v.RunUntil(v.Now() + 30_000)
	if !fired || rerr != nil {
		t.Fatalf("post-scrub read: fired=%v err=%v", fired, rerr)
	}
	if !bytes.Equal(data, make([]byte, v.bs.Bytes())) {
		t.Fatal("post-scrub read returned wrong data")
	}
	if v.RAID().DegradedReads != before {
		t.Error("post-scrub read still reconstructing")
	}
	v.Close()
}

func TestRAIDValidation(t *testing.T) {
	cases := []Options{
		{Layout: RAID5, Disks: 2},
		{Layout: RAID6, Disks: 3},
		{Layout: Stripe, Disks: 2, Spare: 1},
		{Layout: Mirror, Disks: 2, ScrubIntervalMS: 1000},
		{Layout: RAID5, Disks: 3, Spare: -1},
		{Layout: RAID5, Disks: 3, RebuildRate: -5},
		{Layout: RAID5, Disks: 3, StripeUnit: 1 << 30},
	}
	for i, opts := range cases {
		if _, err := New(opts); err == nil {
			t.Errorf("case %d (%+v): accepted", i, opts)
		}
	}
	// Non-parity layouts report zero RAID stats and refuse to scrub.
	v := mustNew(t, Options{Layout: Mirror, Disks: 2})
	if v.RAID() != (RAIDStats{}) || v.Spares() != 0 || v.Rebuilding() {
		t.Error("mirror reports parity state")
	}
	if v.StartScrub() {
		t.Error("mirror armed a scrub")
	}
}

// Sharded and shared engines must produce identical results for the
// same parity-volume program, including a mid-run member death.
func TestRAIDShardedMatchesShared(t *testing.T) {
	run := func(shards int) (data [][]byte, stats Stats, raidStats RAIDStats) {
		v := mustNew(t, Options{
			Layout: RAID6, Disks: 4, StripeUnit: 2, Disk: tinyDisk(),
			Shards: shards,
			Faults: []*fault.Plan{nil, nil, {CrashAfterOps: 30}},
		})
		defer v.Close()
		for k := int64(0); k < 40; k++ {
			v.WriteBlock(0, k%32, blockOf(byte(k)), nil)
			if k%4 == 3 {
				v.Run()
			}
		}
		v.Run()
		for k := int64(0); k < 32; k++ {
			v.ReadBlock(0, k, func(d []byte, err error) {
				if err != nil {
					t.Errorf("shards=%d: read %d: %v", shards, k, err)
				}
				data = append(data, d)
			})
			v.Run()
		}
		return data, v.Stats(), v.RAID()
	}
	d1, s1, r1 := run(1)
	d4, s4, r4 := run(4)
	if len(d1) != len(d4) {
		t.Fatalf("read counts differ: %d vs %d", len(d1), len(d4))
	}
	for i := range d1 {
		if !bytes.Equal(d1[i], d4[i]) {
			t.Fatalf("block %d differs between shared and sharded", i)
		}
	}
	if s1.Requests != s4.Requests || s1.Errors != s4.Errors || s1.Degraded != s4.Degraded {
		t.Errorf("stats differ: %+v vs %+v", s1, s4)
	}
	if r1 != r4 {
		t.Errorf("raid stats differ: %+v vs %+v", r1, r4)
	}
}

func TestParseConfigRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"concat", Config{Layout: Concat}},
		{"stripe:disks=4,unit=16", Config{Layout: Stripe, Disks: 4, StripeUnit: 16}},
		{"mirror:disks=2,policy=shortest-queue", Config{Layout: Mirror, Disks: 2, ReadPolicy: ShortestQueue}},
		{"raid5:disks=4,spare=1,rebuild-rate=400,scrub-interval=600000",
			Config{Layout: RAID5, Disks: 4, Spare: 1, RebuildRate: 400, ScrubIntervalMS: 600000}},
		{"raid6:disks=6;unit=8", Config{Layout: RAID6, Disks: 6, StripeUnit: 8}},
		{" raid5 : disks=3 , unit=1 ", Config{Layout: RAID5, Disks: 3, StripeUnit: 1}},
	}
	for _, c := range cases {
		got, err := ParseConfig(c.spec)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("ParseConfig(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		back, err := ParseConfig(got.String())
		if err != nil || back != got {
			t.Fatalf("round-trip of %q via %q: %+v, %v", c.spec, got.String(), back, err)
		}
		// The expanded options must construct (sizing aside).
		o := got.Options()
		o.Disk = tinyDisk()
		if o.Disks == 0 {
			continue
		}
		v, err := New(o)
		if err != nil {
			t.Fatalf("New(ParseConfig(%q).Options()): %v", c.spec, err)
		}
		v.Close()
	}
	for _, bad := range []string{
		"", "raid7", "raid5:disks=2", "raid6:disks=65", "stripe:spare=1",
		"mirror:scrub-interval=5", "concat:rebuild-rate=7", "raid5:unit=9999",
		"raid5:disks", "raid5:what=ever", "raid5:rebuild-rate=nan",
		"raid5:spare=9", "stripe:disks=-1",
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted", bad)
		}
	}
}
