package volume

// GF(2^8) arithmetic for the RAID-6 Q parity, in the standard
// Linux-md/Anvin construction: the field is GF(2)[x] modulo the
// primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d), the generator is
// g = 2, and the Q syndrome of a stripe row is
//
//	Q = Σ_c g^c · D_c
//
// over the row's data columns c. P is the plain XOR of the same
// columns. With both syndromes any two erasures are solvable; with
// only one, a single erasure is.
//
// The tables are tiny (768 bytes) and built once at init; the hot
// helpers below work block-at-a-time over []byte so the parity of an
// 8 KB block is two table lookups plus an XOR per byte, with no
// allocation.

var (
	gfExp [512]byte // g^i, doubled so products index without a mod
	gfLog [256]byte // log_g, gfLog[0] unused
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = byte(i)
		// x *= g (g = 2): shift, reduce by 0x11d on overflow.
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= 0x1d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b (b must be nonzero).
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns g^e for a column exponent e >= 0.
func gfPow(e int) byte { return gfExp[e%255] }

// xorInto accumulates src into dst: dst ^= src, byte-wise.
func xorInto(dst, src []byte) {
	_ = dst[len(src)-1]
	for i, s := range src {
		dst[i] ^= s
	}
}

// gfMulAddInto accumulates a scaled block: dst ^= coef·src.
func gfMulAddInto(dst []byte, coef byte, src []byte) {
	if coef == 0 {
		return
	}
	if coef == 1 {
		xorInto(dst, src)
		return
	}
	lc := int(gfLog[coef])
	_ = dst[len(src)-1]
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[s])]
		}
	}
}

// gfMulInto scales a block in place: dst = coef·dst.
func gfMulInto(dst []byte, coef byte) {
	if coef == 1 {
		return
	}
	if coef == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	lc := int(gfLog[coef])
	for i, d := range dst {
		if d != 0 {
			dst[i] = gfExp[lc+int(gfLog[d])]
		}
	}
}
