package volume

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// snapVal reads one metric's rendered value out of a registry snapshot.
func snapVal(t *testing.T, reg *metrics.Registry, name string) float64 {
	t.Helper()
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == name {
			return m.Value
		}
	}
	t.Fatalf("snapshot has no metric %q", name)
	return 0
}

// TestBindMetricsParity covers the volume-level instrument bindings on
// a parity layout: the RAID counters and the rebuild-progress gauge
// must render the same numbers RAID() reports, and the gauge must read
// a mid-rebuild fraction in (0, 1] while the spare copy is running and
// 0 once it is done.
func TestBindMetricsParity(t *testing.T) {
	v := mustNew(t, Options{
		Layout: RAID5, Disks: 3, StripeUnit: 1, Spare: 1, Disk: tinyDisk(),
		// Slow the copy to 2 blocks/s so the bounded time windows below
		// catch it mid-device: Run() drains to quiescence, which would
		// complete the whole rebuild inside the call that kills the
		// member, so this test drives time with RunUntil only.
		RebuildRate: 2,
		Faults:      []*fault.Plan{nil, {Seed: 3, CrashAfterOps: 30}},
	})
	reg := metrics.NewRegistry()
	v.BindMetrics(reg)

	if got := v.Layout(); got != RAID5 {
		t.Fatalf("Layout() = %v, want %v", got, RAID5)
	}
	if err := v.Err(); err != nil {
		t.Fatalf("Err() = %v on a live volume", err)
	}

	for k := int64(0); k < 40; k++ {
		v.WriteBlock(0, k%16, blockOf(byte(k)), nil)
		v.RunUntil(v.Now() + 100)
	}
	if v.DeadMembers() != 1 {
		t.Fatalf("DeadMembers() = %d after the kill plan, want 1", v.DeadMembers())
	}
	if !v.Rebuilding() {
		t.Fatalf("rebuild did not start after the member death")
	}
	if p := snapVal(t, reg, "volume_rebuild_progress"); p <= 0 || p > 1 {
		t.Errorf("mid-rebuild volume_rebuild_progress = %v, want in (0, 1]", p)
	}
	v.Run() // drain: no armed scrub, so quiescence completes the rebuild
	if v.Rebuilding() {
		t.Fatalf("rebuild still in progress after drain")
	}
	if p := snapVal(t, reg, "volume_rebuild_progress"); p != 0 {
		t.Errorf("idle volume_rebuild_progress = %v, want 0", p)
	}

	st := v.RAID()
	checks := []struct {
		name string
		want float64
	}{
		{"volume_parity_recomputes", float64(st.ParityRecomputes)},
		{"volume_degraded_reads", float64(st.DegradedReads)},
		{"volume_rebuilt_blocks", float64(st.RebuiltBlocks)},
		{"volume_scrub_repairs", float64(st.ScrubRepairs)},
		{"volume_dead_members", float64(v.DeadMembers())},
	}
	for _, c := range checks {
		if got := snapVal(t, reg, c.name); got != c.want {
			t.Errorf("%s = %v, want %v", c.name, got, c.want)
		}
	}
	if st.ParityRecomputes == 0 {
		t.Errorf("ParityRecomputes = 0 after 40 writes")
	}
	if st.RebuiltBlocks == 0 {
		t.Errorf("RebuiltBlocks = 0 after a completed rebuild")
	}
}

// TestDispatched covers the event-count accessor on both execution
// modes: the sharded and shared-engine runs of the same program must
// report the same total, and both must move when work runs.
func TestDispatched(t *testing.T) {
	counts := make([]int64, 2)
	for i, shards := range []int{0, 2} {
		v := mustNew(t, Options{
			Layout: RAID5, Disks: 3, StripeUnit: 1, Shards: shards, Disk: tinyDisk(),
		})
		for k := int64(0); k < 10; k++ {
			v.WriteBlock(0, k, blockOf(byte(k)), nil)
			v.Run() // the volume's Run drives the coordinator when sharded
		}
		counts[i] = v.Dispatched()
		v.Close()
		if counts[i] == 0 {
			t.Fatalf("shards=%d: Dispatched() = 0 after 10 writes", shards)
		}
	}
	if counts[0] != counts[1] {
		t.Errorf("Dispatched() differs: shared %d vs sharded %d", counts[0], counts[1])
	}
}
