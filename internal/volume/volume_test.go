package volume

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/geom"
)

func blockOf(b byte) []byte { return bytes.Repeat([]byte{b}, geom.Block8K.Bytes()) }

func mustNew(t *testing.T, opts Options) *Volume {
	t.Helper()
	v, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// write and read are synchronous test helpers: they issue one volume
// request and drive the engine to completion.
func write(t *testing.T, v *Volume, blk int64, data []byte) error {
	t.Helper()
	var got error
	fired := false
	v.WriteBlock(0, blk, data, func(_ []byte, err error) { got, fired = err, true })
	v.Eng.Run()
	if !fired {
		t.Fatalf("write of block %d never completed", blk)
	}
	return got
}

func read(t *testing.T, v *Volume, blk int64) ([]byte, error) {
	t.Helper()
	var data []byte
	var got error
	fired := false
	v.ReadBlock(0, blk, func(d []byte, err error) { data, got, fired = d, err, true })
	v.Eng.Run()
	if !fired {
		t.Fatalf("read of block %d never completed", blk)
	}
	return data, got
}

func TestLocateStripe(t *testing.T) {
	v := mustNew(t, Options{Layout: Stripe, Disks: 4, StripeUnit: 8})
	cases := []struct {
		blk   int64
		disk  int
		mblk  int64
		label string
	}{
		{0, 0, 0, "first block"},
		{7, 0, 7, "last block of first unit"},
		{8, 1, 0, "first block of second unit"},
		{31, 3, 7, "last block of first round"},
		{32, 0, 8, "second round wraps to disk 0"},
		{100, 0, 28, "unit 12 -> disk 0, local unit 3"},
	}
	for _, c := range cases {
		i, mblk := v.locate(c.blk)
		if i != c.disk || mblk != c.mblk {
			t.Errorf("%s: locate(%d) = (%d, %d), want (%d, %d)",
				c.label, c.blk, i, mblk, c.disk, c.mblk)
		}
	}
}

func TestLocateConcat(t *testing.T) {
	v := mustNew(t, Options{Layout: Concat, Disks: 3})
	per := v.sizes[0]
	for _, c := range []struct {
		blk  int64
		disk int
		mblk int64
	}{
		{0, 0, 0},
		{per - 1, 0, per - 1},
		{per, 1, 0},
		{2*per + 5, 2, 5},
	} {
		i, mblk := v.locate(c.blk)
		if i != c.disk || mblk != c.mblk {
			t.Errorf("locate(%d) = (%d, %d), want (%d, %d)", c.blk, i, mblk, c.disk, c.mblk)
		}
	}
}

func TestRoundTripAllLayouts(t *testing.T) {
	for _, opts := range []Options{
		{Layout: Concat, Disks: 3},
		{Layout: Stripe, Disks: 4, StripeUnit: 4},
		{Layout: Mirror, Disks: 2},
		{Layout: Mirror, Disks: 3, ReadPolicy: ShortestQueue},
	} {
		v := mustNew(t, opts)
		// A spread of logical blocks including layout boundaries.
		blks := []int64{0, 1, 3, 4, 15, 16, 17, v.Blocks() / 2, v.Blocks() - 1}
		for k, blk := range blks {
			want := blockOf(byte(0x10 + k))
			if err := write(t, v, blk, want); err != nil {
				t.Fatalf("%s: write block %d: %v", opts.Layout, blk, err)
			}
			got, err := read(t, v, blk)
			if err != nil {
				t.Fatalf("%s: read block %d: %v", opts.Layout, blk, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: block %d round-trip mismatch", opts.Layout, blk)
			}
		}
		s := v.Stats()
		if s.Requests != int64(2*len(blks)) || s.Reads != int64(len(blks)) {
			t.Errorf("%s: stats = %+v, want %d requests", opts.Layout, s, 2*len(blks))
		}
		if s.RespMSSum <= 0 {
			t.Errorf("%s: no response time accumulated", opts.Layout)
		}
	}
}

// A striped volume must place consecutive stripe units on consecutive
// disks: writing one unit each lands exactly one unit of traffic per
// member.
func TestStripeDistributesUnits(t *testing.T) {
	v := mustNew(t, Options{Layout: Stripe, Disks: 4, StripeUnit: 2})
	for u := int64(0); u < 4; u++ {
		if err := write(t, v, u*2, blockOf(byte(u))); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range v.Stats().PerDisk {
		if n != 1 {
			t.Errorf("disk %d saw %d requests, want 1", i, n)
		}
	}
}

func TestMirrorWritesFanOut(t *testing.T) {
	v := mustNew(t, Options{Layout: Mirror, Disks: 3})
	if err := write(t, v, 7, blockOf(0xAB)); err != nil {
		t.Fatal(err)
	}
	for i, n := range v.Stats().PerDisk {
		if n != 1 {
			t.Errorf("member %d saw %d writes, want 1", i, n)
		}
	}
	// Every replica holds the block: read it back through each member's
	// driver directly.
	for i, m := range v.Members {
		var got []byte
		m.Driver.ReadBlock(0, 7, func(d []byte, err error) {
			if err != nil {
				t.Errorf("member %d: %v", i, err)
			}
			got = d
		})
		v.Eng.Run()
		if !bytes.Equal(got, blockOf(0xAB)) {
			t.Errorf("member %d replica differs", i)
		}
	}
}

func TestMirrorRoundRobinAlternates(t *testing.T) {
	v := mustNew(t, Options{Layout: Mirror, Disks: 2})
	if err := write(t, v, 0, blockOf(1)); err != nil {
		t.Fatal(err)
	}
	v.ResetStats()
	for k := 0; k < 6; k++ {
		if _, err := read(t, v, 0); err != nil {
			t.Fatal(err)
		}
	}
	per := v.Stats().PerDisk
	if per[0] != 3 || per[1] != 3 {
		t.Errorf("round-robin reads split %v, want [3 3]", per)
	}
}

func TestMirrorShortestQueuePrefersIdle(t *testing.T) {
	v := mustNew(t, Options{Layout: Mirror, Disks: 2, ReadPolicy: ShortestQueue})
	if err := write(t, v, 0, blockOf(1)); err != nil {
		t.Fatal(err)
	}
	v.ResetStats()
	// Load member 0 with raw traffic, then issue volume reads without
	// draining: they must all pick the idle member 1.
	for k := 0; k < 8; k++ {
		v.Members[0].Driver.ReadBlock(0, int64(k)*100, nil)
	}
	for k := 0; k < 4; k++ {
		v.ReadBlock(0, 0, nil)
	}
	per := v.Stats().PerDisk
	v.Eng.Run()
	if per[0] != 0 || per[1] != 4 {
		t.Errorf("shortest-queue reads split %v, want [0 4]", per)
	}
}

func TestMirrorSurvivesDeadMember(t *testing.T) {
	// Member 1 dies on its 10th device operation; the 2-way mirror must
	// keep serving reads and writes from member 0.
	v := mustNew(t, Options{
		Layout: Mirror,
		Disks:  2,
		Faults: []*fault.Plan{nil, {CrashAfterOps: 10}},
	})
	want := blockOf(0x5A)
	for k := int64(0); k < 30; k++ {
		if err := write(t, v, k, want); err != nil {
			t.Fatalf("write %d: %v", k, err)
		}
	}
	if n := v.DeadMembers(); n != 1 {
		t.Fatalf("DeadMembers = %d, want 1", n)
	}
	if !v.Members[1].Driver.Dead() {
		t.Fatal("member 1 should be the dead one")
	}
	for k := int64(0); k < 30; k++ {
		got, err := read(t, v, k)
		if err != nil {
			t.Fatalf("degraded read %d: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("degraded read %d: wrong data", k)
		}
	}
	if v.Stats().Degraded == 0 {
		t.Error("no degraded operations counted")
	}
}

func TestStripeDeadMemberFailsRequest(t *testing.T) {
	v := mustNew(t, Options{
		Layout:     Stripe,
		Disks:      2,
		StripeUnit: 1,
		Faults:     []*fault.Plan{nil, {CrashAfterOps: 1}},
	})
	// Block 1 lives on member 1, which dies on its first operation.
	if err := write(t, v, 1, blockOf(1)); err == nil {
		t.Fatal("first write to crashing member reported success")
	}
	if _, err := read(t, v, 1); !errors.Is(err, fault.ErrCrash) {
		t.Fatalf("read from dead member: err = %v, want ErrCrash", err)
	}
	// The surviving member still works: no redundancy, but no spread.
	if err := write(t, v, 0, blockOf(2)); err != nil {
		t.Fatalf("healthy member write: %v", err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Options{Layout: "raid7"}); err == nil {
		t.Error("unknown layout accepted")
	}
	if _, err := New(Options{Layout: Mirror, Disks: 1}); err == nil {
		t.Error("1-disk mirror accepted")
	}
	if _, err := New(Options{Layout: Stripe, Disks: 2, StripeUnit: 1 << 30}); err == nil {
		t.Error("stripe unit larger than member accepted")
	}
	if _, err := New(Options{ReadPolicy: "random"}); err == nil {
		t.Error("unknown read policy accepted")
	}
	v := mustNew(t, Options{Layout: Stripe, Disks: 2})
	var errs []error
	collect := func(_ []byte, err error) { errs = append(errs, err) }
	v.ReadBlock(3, 0, collect)             // no such partition
	v.ReadBlock(0, -1, collect)            // negative block
	v.ReadBlock(0, v.Blocks(), collect)    // beyond volume
	v.WriteBlock(0, 0, []byte{1}, collect) // short data
	v.Eng.Run()
	if len(errs) != 4 {
		t.Fatalf("got %d completions, want 4", len(errs))
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestLabelCoversVolume(t *testing.T) {
	for _, opts := range []Options{
		{Layout: Concat, Disks: 2},
		{Layout: Stripe, Disks: 4, StripeUnit: 16},
		{Layout: Mirror, Disks: 2},
	} {
		v := mustNew(t, opts)
		p, err := v.Label().Partition(0)
		if err != nil {
			t.Fatalf("%s: %v", opts.Layout, err)
		}
		bsec := int64(v.BlockSize().Sectors())
		if p.Size != v.Blocks()*bsec {
			t.Errorf("%s: partition %d sectors, volume %d blocks", opts.Layout, p.Size, v.Blocks())
		}
		if got := v.Label().VirtualSectors(); got < p.Start+p.Size {
			t.Errorf("%s: label %d sectors cannot hold partition", opts.Layout, got)
		}
	}
}
