package volume

import (
	"testing"
)

// FuzzParseConfig checks two properties over the -layout grammar:
// ParseConfig never panics on arbitrary input, and any spec it
// accepts round-trips — rendering the parsed config with String and
// parsing that again yields an identical config.
func FuzzParseConfig(f *testing.F) {
	for _, seed := range []string{
		"",
		"concat",
		"stripe:disks=4,unit=16",
		"mirror:disks=2,policy=shortest-queue",
		"mirror:policy=round-robin",
		"raid5:disks=4,spare=1,rebuild-rate=400,scrub-interval=600000",
		"raid6:disks=6,unit=8",
		"raid5:disks=3;unit=1;spare=2",
		"raid6 : disks=5 , unit=2",
		"raid5:rebuild-rate=0.5",
		"raid6:scrub-interval=1e6",
		"raid5:disks=4,disks=5",
		"stripe:unit=0",
		"raid5:disks=2",
		"raid6:disks=64,spare=8",
		"concat:spare=1",
		"stripe:scrub-interval=100",
		"mirror:rebuild-rate=10",
		"raid5:rebuild-rate=nan",
		"raid5:rebuild-rate=-1",
		"raid7:disks=4",
		"stripe:disks=65",
		"raid5:unit=4097",
		"stripe:disks",
		"what=ever",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		c, err := ParseConfig(spec)
		if err != nil {
			return // rejected input: no panic is the whole property
		}
		s := c.String()
		c2, err := ParseConfig(s)
		if err != nil {
			t.Fatalf("ParseConfig(%q) accepted, but its rendering %q does not re-parse: %v", spec, s, err)
		}
		if c != c2 {
			t.Fatalf("round-trip mismatch for %q:\n first: %+v (%q)\nsecond: %+v", spec, c, s, c2)
		}
	})
}
