package volume

import (
	"errors"
	"fmt"

	"repro/internal/driver"
	"repro/internal/fault"
)

// This file is the parity placement: rotating-parity RAID-5 (one XOR
// parity block per stripe row) and double-parity RAID-6 (P = XOR,
// Q = the GF(2^8) syndrome from gf.go). The address space is carved
// into stripe rows of Options.StripeUnit blocks; row r keeps its P
// block on slot nslots-1-(r mod nslots) and, on RAID-6, Q on the next
// slot around the ring, so parity traffic rotates over every member
// the way the classic left-symmetric layouts do. "Slot" is a logical
// member position; slotRig maps slots to rig indices so a completed
// rebuild can splice the hot spare in without renumbering rows.
//
// Write paths:
//
//   - read-modify-write, when the target and every parity slot are
//     alive: read old data + old parity, fold the data delta into each
//     parity (the classic 4-I/O small write, 6 on RAID-6);
//   - reconstruct-write otherwise: read the surviving row, solve for
//     any unreadable columns, substitute the new data, recompute the
//     surviving parities. A write succeeds while the row's failures
//     stay within the parity budget and at least one member accepted
//     its block.
//
// Reads go straight to the data slot; on a dead member or a latent
// sector error they fall back to a row-locked reconstruction. Every
// row-mutating path (either write form, reconstruction reads, rebuild
// copies, scrub steps) serializes on a per-row lock so no request can
// observe a torn data/parity pair.
type raid struct {
	v            *Volume
	dbl          bool // RAID-6: maintain the Q syndrome too
	npar         int  // parity blocks per row: 1 or 2
	nslots       int  // row width: every non-spare member
	ndata        int  // data columns per row: nslots - npar
	unit         int64
	per          int64 // usable blocks per member
	rate         float64
	scrubEveryMS float64

	// slotRig maps row slots to rig indices (identity until a rebuild
	// completes); spareRigs lists unassigned hot-spare rigs.
	slotRig   []int
	spareRigs []int

	freeReq *rreq
	locks   map[int64]*rowLock
	rowFree *rowLock

	rebuild     *rebuildState
	copyFn      func()
	scrubCancel func()
	scrubbing   bool

	cum RAIDStats
}

// RAIDStats are the parity layout's lifetime counters, unaffected by
// ResetStats (rebuild and scrub span measurement windows).
type RAIDStats struct {
	// DegradedReads counts reads served by reconstructing the block
	// from survivors + parity; ParityRecomputes counts foreground
	// writes that computed fresh parity.
	DegradedReads    int64
	ParityRecomputes int64
	// RebuildsStarted/Done count spare rebuilds; RebuiltBlocks is the
	// total member blocks written onto spares; RebuildMS accumulates
	// completed rebuilds' durations in simulated milliseconds.
	RebuildsStarted int64
	RebuildsDone    int64
	RebuiltBlocks   int64
	RebuildMS       float64
	// ScrubPasses counts whole-volume scrub sweeps started;
	// ScrubRepairs counts blocks a scrub rewrote (latent sector errors
	// reconstructed, stale parity recomputed).
	ScrubPasses  int64
	ScrubRepairs int64
	// Unrecoverable counts requests and rebuild copies that found a
	// stripe row missing more members than parity covers.
	Unrecoverable int64
}

// request modes: which state the row machinery is in when member
// completions fan back in.
const (
	mDirect   = iota + 1 // healthy read, no lock
	mRecon               // read via row reconstruction (locked)
	mRMW                 // small-write: old data + parity reads in flight
	mRowWrite            // reconstruct-write: row reads in flight
)

// rowLock serializes the mutating paths of one stripe row; waiters
// run FIFO, preserving issue order. Lock records are pooled and the
// map entry exists only while the row is held, so an idle volume
// carries no per-row state.
type rowLock struct {
	waiters []func()
	next    *rowLock
}

func (ra *raid) lock(row int64, fn func()) {
	if l, ok := ra.locks[row]; ok {
		l.waiters = append(l.waiters, fn)
		return
	}
	l := ra.rowFree
	if l == nil {
		l = &rowLock{}
	} else {
		ra.rowFree = l.next
		l.next = nil
	}
	ra.locks[row] = l
	fn()
}

func (ra *raid) unlock(row int64) {
	l := ra.locks[row]
	if l == nil {
		return
	}
	if len(l.waiters) > 0 {
		fn := l.waiters[0]
		copy(l.waiters, l.waiters[1:])
		l.waiters[len(l.waiters)-1] = nil
		l.waiters = l.waiters[:len(l.waiters)-1]
		fn()
		return
	}
	delete(ra.locks, row)
	l.next = ra.rowFree
	ra.rowFree = l
}

// addr splits a logical block into (stripe row, data column, member
// block): consecutive stripe units walk the data columns of a row,
// then the rows.
func (ra *raid) addr(blk int64) (row int64, col int, mb int64) {
	u := blk / ra.unit
	row = u / int64(ra.ndata)
	col = int(u % int64(ra.ndata))
	mb = row*ra.unit + blk%ra.unit
	return
}

// pslot and qslot are row r's parity positions on the slot ring.
func (ra *raid) pslot(row int64) int { return ra.nslots - 1 - int(row%int64(ra.nslots)) }
func (ra *raid) qslot(row int64) int { return (ra.pslot(row) + 1) % ra.nslots }

// dataSlot maps a data column to its slot: the columns occupy the
// non-parity slots of the row in index order.
func (ra *raid) dataSlot(row int64, col int) int {
	p := ra.pslot(row)
	q := -1
	if ra.dbl {
		q = ra.qslot(row)
	}
	c := 0
	for s := 0; s < ra.nslots; s++ {
		if s == p || s == q {
			continue
		}
		if c == col {
			return s
		}
		c++
	}
	return -1
}

// colOfSlot inverts dataSlot; parity slots map to -1.
func (ra *raid) colOfSlot(row int64, slot int) int {
	p := ra.pslot(row)
	q := -1
	if ra.dbl {
		q = ra.qslot(row)
	}
	if slot == p || slot == q {
		return -1
	}
	c := 0
	for s := 0; s < slot; s++ {
		if s != p && s != q {
			c++
		}
	}
	return c
}

// alive reports whether a row slot's current rig (member or spliced-in
// spare) is serving requests.
func (ra *raid) alive(slot int) bool { return !ra.v.devs[ra.slotRig[slot]].Dead() }

// noteErr watches member completions for deaths so a hot spare is
// drafted as soon as any request observes the failure — detection is
// I/O-driven, so an idle volume stays quiescent.
func (ra *raid) noteErr(err error) {
	if errors.Is(err, fault.ErrCrash) {
		ra.checkRebuild()
	}
}

func (ra *raid) errLost(blk int64, missing int) error {
	return fmt.Errorf("volume: block %d unrecoverable: stripe row lost %d members, parity covers %d: %w",
		blk, missing, ra.npar, driver.ErrDead)
}

// solveRow fills the nil (unreadable) entries of colv — the row's
// data columns — from whichever parity blocks are available (nil =
// unreadable). Solved columns land in buffers drawn from the volume
// pool and appended to *pool for release at request end. Returns how
// many columns remain unsolved.
func (ra *raid) solveRow(colv [][]byte, p, q []byte, pool *[][]byte) int {
	x, y, unknown := -1, -1, 0
	for c, b := range colv {
		if b == nil {
			unknown++
			if x < 0 {
				x = c
			} else if y < 0 {
				y = c
			}
		}
	}
	switch {
	case unknown == 0:
		return 0
	case unknown == 1 && p != nil:
		// D_x = P ⊕ ⊕_{c≠x} D_c
		buf := ra.v.getBuf()
		*pool = append(*pool, buf)
		copy(buf, p)
		for c, b := range colv {
			if c != x {
				xorInto(buf, b)
			}
		}
		colv[x] = buf
		return 0
	case unknown == 1 && q != nil:
		// D_x = g^{-x} (Q ⊕ Σ_{c≠x} g^c D_c)
		buf := ra.v.getBuf()
		*pool = append(*pool, buf)
		copy(buf, q)
		for c, b := range colv {
			if c != x {
				gfMulAddInto(buf, gfPow(c), b)
			}
		}
		gfMulInto(buf, gfDiv(1, gfPow(x)))
		colv[x] = buf
		return 0
	case unknown == 2 && p != nil && q != nil:
		// Two erasures: with P_xy and Q_xy the syndromes restricted to
		// the two unknown columns,
		//   D_x = [g^y P_xy ⊕ Q_xy] / (g^x ⊕ g^y),  D_y = D_x ⊕ P_xy.
		pxy := ra.v.getBuf()
		qxy := ra.v.getBuf()
		*pool = append(*pool, pxy, qxy)
		copy(pxy, p)
		copy(qxy, q)
		for c, b := range colv {
			if c != x && c != y {
				xorInto(pxy, b)
				gfMulAddInto(qxy, gfPow(c), b)
			}
		}
		t := gfPow(x) ^ gfPow(y)
		a, b := gfDiv(gfPow(y), t), gfDiv(1, t)
		for i := range pxy {
			dx := gfMul(a, pxy[i]) ^ gfMul(b, qxy[i])
			pxy[i], qxy[i] = dx, dx^pxy[i]
		}
		colv[x], colv[y] = pxy, qxy
		return 0
	}
	return unknown
}

// rreq is the parity layout's pooled request record: one per
// foreground read or write, holding the row-read fan-in buffers and
// the completion callbacks handed to member drivers, prebuilt once
// per record so the steady-state hot paths (healthy direct read,
// healthy read-modify-write) allocate nothing at the volume layer.
type rreq struct {
	ra   *raid
	next *rreq

	write bool
	mode  int
	blk   int64
	data  []byte
	done  driver.DoneFunc
	start float64

	row                 int64
	col                 int
	mb                  int64
	dslot, pslot, qslot int

	pending    int
	okW, failW int
	wErr       error
	degraded   bool
	lockHeld   bool

	bufs [][]byte // row-read results, by slot (buffers owned here)
	errs []error  // row-read errors, by slot
	colv [][]byte // per-column data values for parity math
	pool [][]byte // buffers borrowed from the volume pool

	newP, newQ []byte

	readCBs  []driver.DoneFunc
	writeCB  driver.DoneFunc
	lockedFn func()
}

func (ra *raid) getReq() *rreq {
	r := ra.freeReq
	if r == nil {
		return ra.newReq()
	}
	ra.freeReq = r.next
	r.next = nil
	return r
}

// newReq builds a fresh record with its callbacks prebuilt. Kept out
// of getReq so the closures there don't force a heap cell for the
// popped record on the (allocation-free) pool-hit path.
func (ra *raid) newReq() *rreq {
	r := &rreq{ra: ra}
	r.bufs = make([][]byte, ra.nslots)
	r.errs = make([]error, ra.nslots)
	r.colv = make([][]byte, ra.ndata)
	r.readCBs = make([]driver.DoneFunc, ra.nslots)
	for i := range r.readCBs {
		i := i
		r.readCBs[i] = func(data []byte, err error) { r.readDone(i, data, err) }
	}
	r.writeCB = func(_ []byte, err error) { r.writeDone(err) }
	r.lockedFn = func() { r.locked() }
	return r
}

func (ra *raid) putReq(r *rreq) {
	for i := range r.bufs {
		r.bufs[i], r.errs[i] = nil, nil
	}
	for i := range r.colv {
		r.colv[i] = nil
	}
	for _, b := range r.pool {
		ra.v.putBuf(b)
	}
	r.pool = r.pool[:0]
	r.newP, r.newQ = nil, nil
	r.data, r.done, r.wErr = nil, nil, nil
	r.write, r.degraded, r.lockHeld = false, false, false
	r.mode, r.pending, r.okW, r.failW = 0, 0, 0, 0
	r.blk, r.start = 0, 0
	r.next = ra.freeReq
	ra.freeReq = r
}

// setup fills the request's row coordinates.
func (r *rreq) setup(blk int64) {
	ra := r.ra
	r.blk = blk
	r.start = ra.v.Eng.Now()
	r.row, r.col, r.mb = ra.addr(blk)
	r.dslot = ra.dataSlot(r.row, r.col)
	r.pslot = ra.pslot(r.row)
	r.qslot = -1
	if ra.dbl {
		r.qslot = ra.qslot(r.row)
	}
}

// read implements placement: healthy reads go straight to the data
// slot with no row lock; anything else reconstructs under the lock.
func (ra *raid) read(blk int64, done driver.DoneFunc) {
	r := ra.getReq()
	r.done = done
	r.write = false
	r.setup(blk)
	if ra.alive(r.dslot) {
		r.mode = mDirect
		ra.issueRead(r, r.dslot)
		return
	}
	ra.checkRebuild()
	r.markDegraded()
	r.mode = mRecon
	ra.lock(r.row, r.lockedFn)
}

// write implements placement: every write serializes on its row lock,
// then picks read-modify-write or reconstruct-write by row health.
func (ra *raid) write(blk int64, data []byte, done driver.DoneFunc) {
	r := ra.getReq()
	r.done = done
	r.write = true
	r.data = data
	r.setup(blk)
	if !ra.alive(r.dslot) || !ra.alive(r.pslot) || (ra.dbl && !ra.alive(r.qslot)) {
		ra.checkRebuild()
	}
	ra.lock(r.row, r.lockedFn)
}

func (ra *raid) issueRead(r *rreq, slot int) {
	rig := ra.slotRig[slot]
	ra.v.stats.PerDisk[rig]++
	r.pending++
	ra.v.devs[rig].ReadBlock(0, r.mb, r.readCBs[slot])
}

func (ra *raid) issueWrite(r *rreq, slot int, data []byte) {
	rig := ra.slotRig[slot]
	ra.v.stats.PerDisk[rig]++
	r.pending++
	ra.v.devs[rig].WriteBlock(0, r.mb, data, r.writeCB)
}

func (r *rreq) markDegraded() {
	if r.degraded {
		return
	}
	r.degraded = true
	r.ra.v.stats.Degraded++
	r.ra.v.cumDegraded++
}

// locked runs once the row lock is held.
func (r *rreq) locked() {
	r.lockHeld = true
	if r.write {
		r.startWrite()
		return
	}
	r.beginRowReads(false)
	if r.pending == 0 {
		r.ra.v.Eng.After(0, func() { r.rowDone() })
	}
}

// beginRowReads issues reads for every live, not-yet-attempted slot of
// the row; the target data slot joins only on write paths (its old
// value can be needed to solve another missing column).
func (r *rreq) beginRowReads(includeTarget bool) {
	ra := r.ra
	for s := 0; s < ra.nslots; s++ {
		if !includeTarget && s == r.dslot {
			continue
		}
		if s == r.qslot && !ra.dbl {
			continue
		}
		if r.bufs[s] != nil || r.errs[s] != nil || !ra.alive(s) {
			continue
		}
		ra.issueRead(r, s)
	}
}

func (r *rreq) startWrite() {
	ra := r.ra
	if ra.alive(r.dslot) && ra.alive(r.pslot) && (!ra.dbl || ra.alive(r.qslot)) {
		r.mode = mRMW
		ra.issueRead(r, r.dslot)
		ra.issueRead(r, r.pslot)
		if ra.dbl {
			ra.issueRead(r, r.qslot)
		}
		return
	}
	r.markDegraded()
	pAlive := ra.alive(r.pslot)
	qAlive := ra.dbl && ra.alive(r.qslot)
	if !pAlive && !qAlive {
		if !ra.alive(r.dslot) {
			ra.cum.Unrecoverable++
			r.failAsync(ra.errLost(r.blk, ra.npar+1))
			return
		}
		// No surviving parity to maintain: degenerate to a plain data
		// write — unless a dead parity slot's spare already holds this
		// block, in which case the row reads below let us keep the
		// rebuilt copy coherent.
		rb := ra.rebuild
		if rb == nil || r.mb >= rb.cursor || (rb.slot != r.pslot && rb.slot != r.qslot) {
			r.mode = mRowWrite
			r.beginWrites()
			return
		}
	}
	r.mode = mRowWrite
	r.beginRowReads(true)
	if r.pending == 0 {
		ra.v.Eng.After(0, func() { r.rowDone() })
	}
}

func (r *rreq) readDone(slot int, data []byte, err error) {
	ra := r.ra
	if err != nil {
		ra.noteErr(err)
	}
	if r.mode == mDirect {
		if err == nil {
			r.finish(data, nil)
			return
		}
		// Dead member or latent sector error: reconstruct from the rest
		// of the row.
		r.errs[slot] = err
		r.pending = 0
		r.markDegraded()
		r.mode = mRecon
		ra.lock(r.row, r.lockedFn)
		return
	}
	r.bufs[slot], r.errs[slot] = data, err
	r.pending--
	if r.pending == 0 {
		r.rowDone()
	}
}

func (r *rreq) rowDone() {
	switch r.mode {
	case mRecon:
		r.finishRecon()
	case mRMW:
		r.rmwDone()
	case mRowWrite:
		r.rowWriteDone()
	}
}

func (r *rreq) rmwDone() {
	ra := r.ra
	if r.errs[r.dslot] != nil || r.errs[r.pslot] != nil || (ra.dbl && r.errs[r.qslot] != nil) {
		// A small-write read failed (media error, or the member died
		// mid-request): fall back to the reconstruct-write, reusing
		// whatever read cleanly.
		r.markDegraded()
		r.mode = mRowWrite
		r.beginRowReads(true)
		if r.pending == 0 {
			ra.v.Eng.After(0, func() { r.rowDone() })
		}
		return
	}
	// The 4-I/O small write: both new parities follow from the data
	// delta, computed in place in the buffers the reads handed over.
	oldD, oldP := r.bufs[r.dslot], r.bufs[r.pslot]
	xorInto(oldD, r.data) // oldD becomes the delta
	xorInto(oldP, oldD)   // oldP becomes the new P
	r.newP = oldP
	if ra.dbl {
		oldQ := r.bufs[r.qslot]
		gfMulAddInto(oldQ, gfPow(r.col), oldD)
		r.newQ = oldQ
	}
	ra.cum.ParityRecomputes++
	r.beginWrites()
}

func (r *rreq) rowWriteDone() {
	ra := r.ra
	for c := 0; c < ra.ndata; c++ {
		s := ra.dataSlot(r.row, c)
		if r.errs[s] == nil && r.bufs[s] != nil {
			r.colv[c] = r.bufs[s]
		} else {
			r.colv[c] = nil
		}
	}
	var p, q []byte
	if r.errs[r.pslot] == nil {
		p = r.bufs[r.pslot]
	}
	if ra.dbl && r.errs[r.qslot] == nil {
		q = r.bufs[r.qslot]
	}
	if left := ra.solveRow(r.colv, p, q, &r.pool); left > 0 {
		// Unsolved old values are fatal only off the target column:
		// the column being overwritten never needs its old data.
		for c := 0; c < ra.ndata; c++ {
			if r.colv[c] == nil && c != r.col {
				ra.cum.Unrecoverable++
				r.finishUnlock(nil, ra.errLost(r.blk, left))
				return
			}
		}
	}
	r.colv[r.col] = r.data
	rb := ra.rebuild
	if ra.alive(r.pslot) || (rb != nil && rb.slot == r.pslot && r.mb < rb.cursor) {
		pb := ra.v.getBuf()
		r.pool = append(r.pool, pb)
		copy(pb, r.colv[0])
		for c := 1; c < ra.ndata; c++ {
			xorInto(pb, r.colv[c])
		}
		r.newP = pb
	}
	if ra.dbl && (ra.alive(r.qslot) || (rb != nil && rb.slot == r.qslot && r.mb < rb.cursor)) {
		qb := ra.v.getBuf()
		r.pool = append(r.pool, qb)
		copy(qb, r.colv[0]) // g^0 = 1
		for c := 1; c < ra.ndata; c++ {
			gfMulAddInto(qb, gfPow(c), r.colv[c])
		}
		r.newQ = qb
	}
	ra.cum.ParityRecomputes++
	r.beginWrites()
}

// beginWrites fans the new data and parity out to the row's live
// slots, plus a write-through to the spare when the rebuilt region
// already covers this block.
func (r *rreq) beginWrites() {
	ra := r.ra
	r.okW, r.failW, r.wErr = 0, 0, nil
	r.pending = 0
	if ra.alive(r.dslot) {
		ra.issueWrite(r, r.dslot, r.data)
	}
	if r.newP != nil && ra.alive(r.pslot) {
		ra.issueWrite(r, r.pslot, r.newP)
	}
	if r.newQ != nil && ra.alive(r.qslot) {
		ra.issueWrite(r, r.qslot, r.newQ)
	}
	if rb := ra.rebuild; rb != nil && r.mb < rb.cursor && !ra.v.devs[rb.rig].Dead() {
		var val []byte
		switch rb.slot {
		case r.dslot:
			val = r.data
		case r.pslot:
			val = r.newP
		case r.qslot:
			val = r.newQ
		}
		if val != nil {
			ra.v.stats.PerDisk[rb.rig]++
			r.pending++
			ra.v.devs[rb.rig].WriteBlock(0, r.mb, val, r.writeCB)
		}
	}
	if r.pending == 0 {
		// Defensive: every writable slot vanished between the health
		// check and the fan-out.
		ra.cum.Unrecoverable++
		r.failAsync(ra.errLost(r.blk, ra.npar+1))
	}
}

func (r *rreq) writeDone(err error) {
	if err != nil {
		r.ra.noteErr(err)
		r.failW++
		if r.wErr == nil {
			r.wErr = err
		}
	} else {
		r.okW++
	}
	r.pending--
	if r.pending > 0 {
		return
	}
	// A write survives failures within the parity budget as long as
	// some member accepted its block: the row stays reconstructable.
	var ferr error
	if r.failW > 0 && (r.okW == 0 || r.failW > r.ra.npar) {
		ferr = r.wErr
	}
	r.finishUnlock(nil, ferr)
}

func (r *rreq) finishRecon() {
	ra := r.ra
	for c := 0; c < ra.ndata; c++ {
		s := ra.dataSlot(r.row, c)
		if r.errs[s] == nil && r.bufs[s] != nil {
			r.colv[c] = r.bufs[s]
		} else {
			r.colv[c] = nil
		}
	}
	var p, q []byte
	if r.errs[r.pslot] == nil {
		p = r.bufs[r.pslot]
	}
	if ra.dbl && r.errs[r.qslot] == nil {
		q = r.bufs[r.qslot]
	}
	if left := ra.solveRow(r.colv, p, q, &r.pool); left > 0 || r.colv[r.col] == nil {
		ra.cum.Unrecoverable++
		r.finishUnlock(nil, ra.errLost(r.blk, left))
		return
	}
	out := make([]byte, len(r.colv[r.col])) // ownership transfers to the caller
	copy(out, r.colv[r.col])
	ra.cum.DegradedReads++
	r.finishUnlock(out, nil)
}

// failAsync defers a failure so no completion runs inside the issuing
// call even when nothing could be issued.
func (r *rreq) failAsync(err error) {
	r.ra.v.Eng.After(0, func() { r.finishUnlock(nil, err) })
}

func (r *rreq) finishUnlock(data []byte, err error) {
	if r.lockHeld {
		r.lockHeld = false
		r.ra.unlock(r.row)
	}
	r.finish(data, err)
}

func (r *rreq) finish(data []byte, err error) {
	ra := r.ra
	v := ra.v
	resp := v.Eng.Now() - r.start
	v.stats.RespMSSum += resp
	if v.mxResp != nil {
		v.mxResp.Record(resp)
	}
	if err != nil {
		v.stats.Errors++
	}
	done := r.done
	ra.putReq(r)
	if done != nil {
		done(data, err)
	}
}
