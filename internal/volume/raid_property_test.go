package volume

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/fault"
)

// TestParityPropertyPrograms is the randomized parity battery: each
// seed builds a RAID-5 or RAID-6 volume with randomized geometry,
// spares, scrub, sharding, and planned member deaths within the
// parity budget, runs a random interleaved write/read program across
// the failures (including mid-rebuild spare death and mid-scrub
// member death), and asserts every acknowledged write reads back
// byte-identical after the dust settles. Seeds and their derived
// configurations are logged so a failure is reproducible verbatim.
func TestParityPropertyPrograms(t *testing.T) {
	seeds := 28
	if testing.Short() {
		seeds = 10
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			layout, npar := RAID5, 1
			if seed%2 == 0 {
				layout, npar = RAID6, 2
			}
			disks := 2 + npar + rng.Intn(3) // raid5: 3..5, raid6: 4..6
			unit := []int{1, 2, 4}[rng.Intn(3)]
			spare := rng.Intn(2)
			kills := rng.Intn(npar + 1)
			scrub := rng.Intn(3) == 0
			shards := 0
			if rng.Intn(3) == 0 {
				shards = 2 + rng.Intn(3)
			}
			faults := make([]*fault.Plan, disks+spare)
			for k := 0; k < kills; k++ {
				m := rng.Intn(disks)
				for faults[m] != nil {
					m = (m + 1) % disks
				}
				faults[m] = &fault.Plan{CrashAfterOps: int64(5 + rng.Intn(400))}
			}
			spareDies := false
			if spare == 1 && kills > 0 && rng.Intn(3) == 0 {
				// Mid-rebuild spare death: the copy starts, then the
				// target disappears under it.
				faults[disks] = &fault.Plan{CrashAfterOps: int64(10 + rng.Intn(150))}
				spareDies = true
			}
			opts := Options{
				Layout: layout, Disks: disks, Spare: spare, StripeUnit: unit,
				Disk: tinyDisk(), RebuildRate: 500 + float64(rng.Intn(1500)),
				Faults: faults, Shards: shards,
			}
			if scrub {
				opts.ScrubIntervalMS = 50_000
			}
			v := mustNew(t, opts)
			defer v.Close()
			if scrub && !v.StartScrub() {
				t.Fatal("StartScrub refused")
			}
			t.Logf("seed=%d layout=%s disks=%d unit=%d spare=%d kills=%d scrub=%v shards=%d spareDies=%v rate=%g",
				seed, layout, disks, unit, spare, kills, scrub, shards, spareDies, opts.RebuildRate)

			shadow := make(map[int64][]byte)
			var wErrs, rErrs []error
			nops := 150 + rng.Intn(150)
			for op := 0; op < nops; op++ {
				if rng.Intn(10) < 7 {
					blk := rng.Int63n(v.Blocks())
					data := blockOf(byte(rng.Intn(256)))
					v.WriteBlock(0, blk, data, func(_ []byte, err error) {
						if err != nil {
							wErrs = append(wErrs, err)
							return
						}
						shadow[blk] = data
					})
				} else {
					v.ReadBlock(0, rng.Int63n(v.Blocks()), func(_ []byte, err error) {
						if err != nil {
							rErrs = append(rErrs, err)
						}
					})
				}
				if rng.Intn(4) == 0 {
					v.RunUntil(v.Now() + float64(rng.Intn(40)))
				}
			}
			// Drain everything, including any rebuild in flight. With the
			// scrub ticker armed the engine is never quiescent, so advance
			// far enough for foreground + rebuild + a full pass instead.
			if scrub {
				v.RunUntil(v.Now() + 600_000)
			} else {
				v.Run()
			}

			// Deaths stayed within the parity budget, so no request may
			// have failed.
			if len(wErrs) > 0 || len(rErrs) > 0 {
				t.Fatalf("requests failed within parity budget: writes=%v reads=%v", wErrs, rErrs)
			}
			// A healthy spare must have rebuilt the first death.
			if st := v.RAID(); spare == 1 && !spareDies && kills > 0 && v.DeadMembers() > 0 {
				if st.RebuildsStarted == 0 || st.RebuildsDone == 0 {
					t.Fatalf("dead member with healthy spare, but rebuild counters %+v", st)
				}
			}
			// Every acknowledged write reads back byte-identical.
			blks := make([]int64, 0, len(shadow))
			for blk := range shadow {
				blks = append(blks, blk)
			}
			sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
			for _, blk := range blks {
				var got []byte
				var gerr error
				fired := false
				v.ReadBlock(0, blk, func(d []byte, err error) { got, gerr, fired = d, err, true })
				if scrub {
					v.RunUntil(v.Now() + 30_000)
				} else {
					v.Run()
				}
				if !fired {
					t.Fatalf("verify read of block %d never completed", blk)
				}
				if gerr != nil {
					t.Fatalf("verify read of block %d: %v", blk, gerr)
				}
				if !bytes.Equal(got, shadow[blk]) {
					t.Fatalf("block %d: reconstructed data differs from last acknowledged write", blk)
				}
			}
		})
	}
}
