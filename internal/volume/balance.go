package volume

import (
	"fmt"

	"repro/internal/driver"
)

// Device is the member seam: everything the volume needs from one
// member besides the raw BlockDevice I/O entry points — liveness for
// degraded-mode routing and queue depth for read balancing. A rig's
// *driver.Driver satisfies it; so does any future device model
// (ROADMAP item 4) that wants to sit under a volume layout.
type Device interface {
	driver.BlockDevice
	// Dead reports whether the member has failed permanently.
	Dead() bool
	// Outstanding is the number of requests queued or in service.
	Outstanding() int
}

// A Balancer orders the live members a redundant read should try.
// The built-in policies are selected by Options.ReadPolicy;
// Options.Balancer installs a custom implementation. Order is called
// on the fan-in goroutine once per balanced read and must be
// deterministic: any state it keeps (cursors, histories) may only
// depend on the sequence of Order calls.
type Balancer interface {
	// Order appends the member indices to try, best candidate first,
	// to order and returns it. Only live members may appear. The
	// caller passes a reused backing slice, so implementations should
	// append rather than allocate.
	Order(v *Volume, order []int) []int
}

// roundRobin rotates reads across live members in index order,
// starting one past the previous read's starting point.
type roundRobin struct {
	cursor int
}

func (b *roundRobin) Order(v *Volume, order []int) []int {
	n := len(v.Members)
	first := b.cursor % n
	b.cursor++
	for j := 0; j < n; j++ {
		i := (first + j) % n
		if !v.devs[i].Dead() {
			order = append(order, i)
		}
	}
	return order
}

// shortestQueue sends each read to the live member with the fewest
// requests queued or in service, breaking ties by member index.
type shortestQueue struct{}

func (shortestQueue) Order(v *Volume, order []int) []int {
	for i := range v.Members {
		if !v.devs[i].Dead() {
			order = append(order, i)
		}
	}
	// Sort by (outstanding requests, index): an insertion sort over
	// a handful of members, in place of sort.SliceStable and its
	// per-call closure allocation. The key is total, so the result
	// is the same.
	for a := 1; a < len(order); a++ {
		for b := a; b > 0; b-- {
			qa := v.devs[order[b-1]].Outstanding()
			qb := v.devs[order[b]].Outstanding()
			if qa < qb || (qa == qb && order[b-1] < order[b]) {
				break
			}
			order[b-1], order[b] = order[b], order[b-1]
		}
	}
	return order
}

// newBalancer maps a ReadPolicy onto its built-in Balancer.
func newBalancer(p ReadPolicy) (Balancer, error) {
	switch p {
	case RoundRobin:
		return &roundRobin{}, nil
	case ShortestQueue:
		return shortestQueue{}, nil
	}
	return nil, fmt.Errorf("volume: unknown read policy %q", p)
}

// placement routes one logical-block request for a layout family. The
// three built-in families — linear (concat/stripe), mirrored, and
// parity (raid5/raid6) — all speak this interface, so a layout
// composes with any Device and the volume's entry points stay
// layout-blind. Implementations run on the fan-in goroutine and must
// never invoke done inside the routing call itself.
type placement interface {
	read(blk int64, done driver.DoneFunc)
	write(blk int64, data []byte, done driver.DoneFunc)
}

// linear is concat and stripe: every logical block lives on exactly
// one member, located by Volume.locate; there is no redundancy.
type linear struct{ v *Volume }

func (l linear) read(blk int64, done driver.DoneFunc) {
	v := l.v
	r := v.getReq()
	r.start = v.Eng.Now()
	r.done = done
	i, mblk := v.locate(blk)
	v.stats.PerDisk[i]++
	v.devs[i].ReadBlock(0, mblk, r.finishCB)
}

func (l linear) write(blk int64, data []byte, done driver.DoneFunc) {
	v := l.v
	r := v.getReq()
	r.start = v.Eng.Now()
	r.done = done
	i, mblk := v.locate(blk)
	v.stats.PerDisk[i]++
	v.devs[i].WriteBlock(0, mblk, data, r.finishCB)
}

// mirrored replicates every block on every member: reads pick one
// live member by the balancing policy and fail over on error, writes
// fan out to every live member and succeed if any replica does.
type mirrored struct{ v *Volume }

func (m mirrored) read(blk int64, done driver.DoneFunc) {
	v := m.v
	r := v.getReq()
	r.start = v.Eng.Now()
	r.done = done
	r.order = v.appendReadOrder(r.order[:0])
	if len(r.order) == 0 {
		v.putReq(r)
		v.fail(done, fmt.Errorf("volume: every mirror member is dead: %w", driver.ErrDead))
		return
	}
	if len(r.order) < len(v.Members) {
		v.stats.Degraded++
		v.cumDegraded++
	}
	r.blk = blk
	i := r.order[0]
	v.stats.PerDisk[i]++
	v.devs[i].ReadBlock(0, blk, r.readCB)
}

func (m mirrored) write(blk int64, data []byte, done driver.DoneFunc) {
	v := m.v
	r := v.getReq()
	r.start = v.Eng.Now()
	r.done = done
	// targets is issue-time scratch only (no callback runs inside the
	// fan-out loop — completions are simulated-time events), so the
	// volume-level backing array is reused across requests.
	targets := v.targets[:0]
	for i := range v.Members {
		if !v.devs[i].Dead() {
			targets = append(targets, i)
		}
	}
	v.targets = targets
	if len(targets) == 0 {
		v.putReq(r)
		v.fail(done, fmt.Errorf("volume: every mirror member is dead: %w", driver.ErrDead))
		return
	}
	if len(targets) < len(v.Members) {
		v.stats.Degraded++
		v.cumDegraded++
	}
	r.pending = len(targets)
	for _, i := range targets {
		v.stats.PerDisk[i]++
		// Members may not mutate or retain the buffer (the cache hands
		// its own copy to WriteThroughOwned under the same contract),
		// so all replicas share one data slice.
		v.devs[i].WriteBlock(0, blk, data, r.writeCB)
	}
}
