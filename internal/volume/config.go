package volume

import (
	"fmt"
	"strconv"
	"strings"
)

// Config is the textual volume-layout grammar, the volume-side
// counterpart of fault.ParsePlan's plan grammar: a layout name,
// optionally followed by key=value directives,
//
//	layout[:key=value[,key=value...]]
//
// for example
//
//	stripe:disks=4,unit=16
//	mirror:disks=2,policy=shortest-queue
//	raid5:disks=4,spare=1,rebuild-rate=400,scrub-interval=600000
//	raid6:disks=6,unit=8
//
// Directives may be separated by ',' or ';'; later directives
// override earlier ones; unset fields stay zero and take the package
// defaults at New. ParseConfig and String round-trip: any accepted
// spec renders to a canonical form that re-parses to the same Config.
type Config struct {
	Layout          Layout
	Disks           int
	StripeUnit      int
	ReadPolicy      ReadPolicy
	Spare           int
	RebuildRate     float64
	ScrubIntervalMS float64
}

// ParseConfig parses the layout grammar above, rejecting unknown
// layouts, unknown keys, and out-of-range values (member counts below
// the layout's floor, spares or scrub on non-parity layouts, and so
// on), so an accepted Config is always constructible modulo sizing.
func ParseConfig(spec string) (Config, error) {
	var c Config
	name, rest, _ := strings.Cut(spec, ":")
	switch c.Layout = Layout(strings.TrimSpace(name)); c.Layout {
	case Concat, Stripe, Mirror, RAID5, RAID6:
	default:
		return Config{}, fmt.Errorf("volume: unknown layout %q", name)
	}
	for _, tok := range strings.FieldsFunc(rest, func(r rune) bool { return r == ';' || r == ',' }) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return Config{}, fmt.Errorf("volume: directive %q is not key=value", tok)
		}
		switch key {
		case "disks":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > 64 {
				return Config{}, fmt.Errorf("volume: disk count %q outside [0, 64]", val)
			}
			c.Disks = n
		case "unit":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > 4096 {
				return Config{}, fmt.Errorf("volume: stripe unit %q outside [0, 4096]", val)
			}
			c.StripeUnit = n
		case "policy":
			switch p := ReadPolicy(val); p {
			case RoundRobin, ShortestQueue:
				c.ReadPolicy = p
			default:
				return Config{}, fmt.Errorf("volume: unknown read policy %q", val)
			}
		case "spare":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 || n > 8 {
				return Config{}, fmt.Errorf("volume: spare count %q outside [0, 8]", val)
			}
			c.Spare = n
		case "rebuild-rate":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || !(f >= 0) || f > 1e9 {
				return Config{}, fmt.Errorf("volume: rebuild rate %q outside [0, 1e9]", val)
			}
			c.RebuildRate = f
		case "scrub-interval":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || !(f >= 0) || f > 1e15 {
				return Config{}, fmt.Errorf("volume: scrub interval %q outside [0, 1e15] ms", val)
			}
			c.ScrubIntervalMS = f
		default:
			return Config{}, fmt.Errorf("volume: unknown directive %q", key)
		}
	}
	// Cross-field rules, matching New's validation for explicit values
	// (zero means "unset" and defaults later).
	min := 1
	switch c.Layout {
	case Mirror:
		min = 2
	case RAID5:
		min = 3
	case RAID6:
		min = 4
	}
	if c.Disks != 0 && c.Disks < min {
		return Config{}, fmt.Errorf("volume: %s needs at least %d disks, got %d", c.Layout, min, c.Disks)
	}
	parity := c.Layout == RAID5 || c.Layout == RAID6
	if c.Spare > 0 && !parity {
		return Config{}, fmt.Errorf("volume: layout %q takes no hot spares", c.Layout)
	}
	if c.ScrubIntervalMS > 0 && !parity {
		return Config{}, fmt.Errorf("volume: layout %q has no parity to scrub", c.Layout)
	}
	if c.RebuildRate > 0 && !parity {
		return Config{}, fmt.Errorf("volume: layout %q has no rebuild to throttle", c.Layout)
	}
	return c, nil
}

// String renders the canonical form: fixed key order, zero fields
// omitted. ParseConfig(c.String()) reproduces c exactly.
func (c Config) String() string {
	var b strings.Builder
	b.WriteString(string(c.Layout))
	sep := byte(':')
	add := func(key, val string) {
		b.WriteByte(sep)
		sep = ','
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	if c.Disks != 0 {
		add("disks", strconv.Itoa(c.Disks))
	}
	if c.StripeUnit != 0 {
		add("unit", strconv.Itoa(c.StripeUnit))
	}
	if c.ReadPolicy != "" {
		add("policy", string(c.ReadPolicy))
	}
	if c.Spare != 0 {
		add("spare", strconv.Itoa(c.Spare))
	}
	if c.RebuildRate != 0 {
		add("rebuild-rate", strconv.FormatFloat(c.RebuildRate, 'g', -1, 64))
	}
	if c.ScrubIntervalMS != 0 {
		add("scrub-interval", strconv.FormatFloat(c.ScrubIntervalMS, 'g', -1, 64))
	}
	return b.String()
}

// Options expands the config into construction options; unset fields
// keep their zero values and default inside New.
func (c Config) Options() Options {
	return Options{
		Layout:          c.Layout,
		Disks:           c.Disks,
		StripeUnit:      c.StripeUnit,
		ReadPolicy:      c.ReadPolicy,
		Spare:           c.Spare,
		RebuildRate:     c.RebuildRate,
		ScrubIntervalMS: c.ScrubIntervalMS,
	}
}
