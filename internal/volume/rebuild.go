package volume

import (
	"bytes"

	"repro/internal/driver"
)

// Background repair for the parity layouts: rebuild copies a dead
// member's contents onto a hot spare one block at a time, scrub
// sweeps the volume re-deriving every stripe row and rewriting
// whatever disagrees. Both run as chains of simulated-time events —
// there is no daemon goroutine and no timer while the volume is
// healthy and scrub is unarmed, so Run() still quiesces exactly when
// the foreground work drains.
//
// Failure detection is I/O-driven: every completion that reports a
// member crash calls checkRebuild, so the spare is drafted the moment
// any request (foreground, rebuild, or scrub) observes the death.
// Each copied block holds its stripe row's lock, which serializes it
// against foreground writes; writes landing below the rebuild cursor
// are written through to the spare (parity.go), so a completed
// rebuild is exact, not approximate.

type rebuildState struct {
	slot    int   // row slot being regenerated
	rig     int   // spare rig receiving the copy
	cursor  int64 // next member block to copy; blocks below are done
	startMS float64
}

// checkRebuild drafts a healthy spare for the first dead slot, if a
// rebuild is not already running. Spares are consumed in rig order;
// a spare that itself died is skipped (and dropped once drafted —
// a half-written spare is never returned to the pool).
func (ra *raid) checkRebuild() {
	if ra.rebuild != nil || len(ra.spareRigs) == 0 {
		return
	}
	slot := -1
	for s := 0; s < ra.nslots; s++ {
		if !ra.alive(s) {
			slot = s
			break
		}
	}
	if slot < 0 {
		return
	}
	for i, rig := range ra.spareRigs {
		if ra.v.devs[rig].Dead() {
			continue
		}
		ra.spareRigs = append(ra.spareRigs[:i], ra.spareRigs[i+1:]...)
		ra.rebuild = &rebuildState{slot: slot, rig: rig, startMS: ra.v.Eng.Now()}
		ra.cum.RebuildsStarted++
		ra.v.Eng.After(ra.stepDelay(), ra.copyFn)
		return
	}
}

// stepDelay is the rebuild/scrub throttle: the base pace is
// 1000/rate ms per block, stretched by the members' current queue
// depth so background repair yields to foreground traffic (an idle
// array rebuilds at full rate; a busy one backs off up to 9×).
func (ra *raid) stepDelay() float64 {
	load := 0
	for s := 0; s < ra.nslots; s++ {
		d := ra.v.devs[ra.slotRig[s]]
		if !d.Dead() {
			load += d.Outstanding()
		}
	}
	if load > 8 {
		load = 8
	}
	return (1000 / ra.rate) * float64(1+load)
}

// copyStep advances the rebuild by one member block.
func (ra *raid) copyStep() {
	rb := ra.rebuild
	if rb == nil {
		return
	}
	if ra.v.devs[rb.rig].Dead() {
		ra.abortRebuild()
		return
	}
	if rb.cursor >= ra.per {
		ra.finishRebuild()
		return
	}
	mb := rb.cursor
	row := mb / ra.unit
	ra.lock(row, func() { ra.copyBlock(rb, mb, row) })
}

// copyBlock regenerates member block mb of the rebuilt slot from the
// row's survivors and writes it to the spare, all under the row lock.
func (ra *raid) copyBlock(rb *rebuildState, mb, row int64) {
	bufs := make([][]byte, ra.nslots)
	errs := make([]error, ra.nslots)
	pending := 0
	var fanIn func()
	rd := func(s int) driver.DoneFunc {
		return func(data []byte, err error) {
			if err != nil {
				ra.noteErr(err)
			}
			bufs[s], errs[s] = data, err
			pending--
			if pending == 0 {
				fanIn()
			}
		}
	}
	for s := 0; s < ra.nslots; s++ {
		if s == rb.slot || !ra.alive(s) {
			continue
		}
		rig := ra.slotRig[s]
		ra.v.stats.PerDisk[rig]++
		pending++
		ra.v.devs[rig].ReadBlock(0, mb, rd(s))
	}
	if pending == 0 {
		// No live sources at all: the row is beyond parity, and so is
		// every other row. Stand down.
		ra.unlock(row)
		ra.abortRebuild()
		return
	}
	fanIn = func() {
		ps, qs := ra.pslot(row), -1
		if ra.dbl {
			qs = ra.qslot(row)
		}
		colv := make([][]byte, ra.ndata)
		for c := 0; c < ra.ndata; c++ {
			if s := ra.dataSlot(row, c); s != rb.slot && errs[s] == nil && bufs[s] != nil {
				colv[c] = bufs[s]
			}
		}
		var p, q []byte
		if ps != rb.slot && errs[ps] == nil {
			p = bufs[ps]
		}
		if qs >= 0 && qs != rb.slot && errs[qs] == nil {
			q = bufs[qs]
		}
		var pool [][]byte
		var val []byte
		if ra.solveRow(colv, p, q, &pool) == 0 {
			switch rb.slot {
			case ps:
				buf := ra.v.getBuf()
				pool = append(pool, buf)
				copy(buf, colv[0])
				for c := 1; c < ra.ndata; c++ {
					xorInto(buf, colv[c])
				}
				val = buf
			case qs:
				buf := ra.v.getBuf()
				pool = append(pool, buf)
				copy(buf, colv[0]) // g^0 = 1
				for c := 1; c < ra.ndata; c++ {
					gfMulAddInto(buf, gfPow(c), colv[c])
				}
				val = buf
			default:
				val = colv[ra.colOfSlot(row, rb.slot)]
			}
		}
		release := func() {
			for _, b := range pool {
				ra.v.putBuf(b)
			}
		}
		if val == nil {
			// This row lost more than parity covers; its data is gone
			// regardless, so skip the block and keep rebuilding the rest.
			ra.cum.Unrecoverable++
			release()
			ra.unlock(row)
			rb.cursor++
			ra.v.Eng.After(ra.stepDelay(), ra.copyFn)
			return
		}
		ra.v.stats.PerDisk[rb.rig]++
		ra.v.devs[rb.rig].WriteBlock(0, mb, val, func(_ []byte, err error) {
			release()
			ra.unlock(row)
			if err != nil {
				ra.noteErr(err)
				ra.abortRebuild()
				return
			}
			ra.cum.RebuiltBlocks++
			rb.cursor++
			ra.v.Eng.After(ra.stepDelay(), ra.copyFn)
		})
	}
}

// finishRebuild splices the spare into the dead member's row slot;
// from here it serves reads and takes writes like any member.
func (ra *raid) finishRebuild() {
	rb := ra.rebuild
	ra.rebuild = nil
	ra.slotRig[rb.slot] = rb.rig
	ra.cum.RebuildsDone++
	ra.cum.RebuildMS += ra.v.Eng.Now() - rb.startMS
	ra.checkRebuild() // another slot may already be waiting
}

// abortRebuild stands down after the spare (or every source) died.
// The half-written spare is abandoned; a remaining healthy spare, if
// any, starts over from block zero.
func (ra *raid) abortRebuild() {
	if ra.rebuild == nil {
		return
	}
	ra.rebuild = nil
	ra.checkRebuild()
}

// rebuildProgress is the metrics gauge: fraction of the spare copied,
// 0 outside a rebuild.
func (ra *raid) rebuildProgress() float64 {
	if ra.rebuild == nil || ra.per == 0 {
		return 0
	}
	return float64(ra.rebuild.cursor) / float64(ra.per)
}

// StartScrub arms the periodic scrub pass on a parity volume with a
// configured ScrubIntervalMS and reports whether it did. It is
// separate from New so format-style setup can still use Run()'s
// run-to-quiescence; once armed, the engine always has a future event
// and callers must advance time with RunUntil. Close disarms it.
func (v *Volume) StartScrub() bool {
	ra := v.ra
	if ra == nil || ra.scrubEveryMS <= 0 || ra.scrubCancel != nil {
		return false
	}
	ra.scrubCancel = v.Eng.Every(ra.scrubEveryMS, ra.scrubTick)
	return true
}

// scrubTick starts a sweep unless one is already running or a rebuild
// owns the background-I/O budget.
func (ra *raid) scrubTick() {
	if ra.scrubbing || ra.rebuild != nil {
		return
	}
	ra.scrubbing = true
	ra.cum.ScrubPasses++
	ra.scrubStep(0)
}

func (ra *raid) scrubStep(mb int64) {
	if mb >= ra.per {
		ra.scrubbing = false
		return
	}
	row := mb / ra.unit
	ra.lock(row, func() { ra.scrubBlock(mb, row) })
}

// scrubBlock reads every live copy of member block mb, re-derives the
// row, and rewrites what disagrees: a latent sector error on a data
// slot is reconstructed from parity, an unreadable or stale parity
// block is recomputed from data. Read-back data is ground truth —
// only unreadable blocks and derived (parity) blocks are rewritten.
func (ra *raid) scrubBlock(mb, row int64) {
	bufs := make([][]byte, ra.nslots)
	errs := make([]error, ra.nslots)
	pending := 0
	var fanIn func()
	rd := func(s int) driver.DoneFunc {
		return func(data []byte, err error) {
			if err != nil {
				ra.noteErr(err)
			}
			bufs[s], errs[s] = data, err
			pending--
			if pending == 0 {
				fanIn()
			}
		}
	}
	for s := 0; s < ra.nslots; s++ {
		if !ra.alive(s) {
			continue
		}
		rig := ra.slotRig[s]
		ra.v.stats.PerDisk[rig]++
		pending++
		ra.v.devs[rig].ReadBlock(0, mb, rd(s))
	}
	if pending == 0 {
		ra.unlock(row)
		ra.scrubbing = false
		return
	}
	fanIn = func() {
		ps, qs := ra.pslot(row), -1
		if ra.dbl {
			qs = ra.qslot(row)
		}
		colv := make([][]byte, ra.ndata)
		for c := 0; c < ra.ndata; c++ {
			if s := ra.dataSlot(row, c); ra.alive(s) && errs[s] == nil {
				colv[c] = bufs[s]
			}
		}
		var p, q []byte
		if ra.alive(ps) && errs[ps] == nil {
			p = bufs[ps]
		}
		if qs >= 0 && ra.alive(qs) && errs[qs] == nil {
			q = bufs[qs]
		}
		var pool [][]byte
		finish := func() {
			for _, b := range pool {
				ra.v.putBuf(b)
			}
			ra.unlock(row)
			ra.v.Eng.After(ra.stepDelay(), func() { ra.scrubStep(mb + 1) })
		}
		if ra.solveRow(colv, p, q, &pool) != 0 {
			// Can't re-derive the row; if that hid a latent error the
			// data is already beyond parity.
			for s := range errs {
				if errs[s] != nil {
					ra.cum.Unrecoverable++
					break
				}
			}
			finish()
			return
		}
		expP := ra.v.getBuf()
		pool = append(pool, expP)
		copy(expP, colv[0])
		for c := 1; c < ra.ndata; c++ {
			xorInto(expP, colv[c])
		}
		var expQ []byte
		if ra.dbl {
			expQ = ra.v.getBuf()
			pool = append(pool, expQ)
			copy(expQ, colv[0])
			for c := 1; c < ra.ndata; c++ {
				gfMulAddInto(expQ, gfPow(c), colv[c])
			}
		}
		type repair struct {
			slot int
			val  []byte
		}
		var reps []repair
		for c := 0; c < ra.ndata; c++ {
			if s := ra.dataSlot(row, c); ra.alive(s) && errs[s] != nil {
				reps = append(reps, repair{s, colv[c]})
			}
		}
		if ra.alive(ps) && (errs[ps] != nil || !bytes.Equal(bufs[ps], expP)) {
			reps = append(reps, repair{ps, expP})
		}
		if qs >= 0 && ra.alive(qs) && (errs[qs] != nil || !bytes.Equal(bufs[qs], expQ)) {
			reps = append(reps, repair{qs, expQ})
		}
		if len(reps) == 0 {
			finish()
			return
		}
		wpending := len(reps)
		for _, rp := range reps {
			rig := ra.slotRig[rp.slot]
			ra.v.stats.PerDisk[rig]++
			ra.v.devs[rig].WriteBlock(0, mb, rp.val, func(_ []byte, err error) {
				if err != nil {
					ra.noteErr(err)
				} else {
					ra.cum.ScrubRepairs++
				}
				wpending--
				if wpending == 0 {
					finish()
				}
			})
		}
	}
}
