// Package volume implements a logical volume manager over N simulated
// disks. Each member is a full single-disk stack — its own disk model,
// SCAN queue, block table, fault injector, and (optionally) adaptive
// rearrangement — and the volume composes them behind the same
// driver.BlockDevice interface a single driver presents, so the file
// system, buffer cache, and workloads run unchanged on one spindle or
// eight.
//
// Three layouts are supported:
//
//   - concat: members are appended; logical block b lives on the first
//     member whose cumulative size exceeds b.
//   - stripe: logical blocks are distributed round-robin in stripe
//     units of a fixed number of blocks, RAID-0 style.
//   - mirror: every member holds a full replica, RAID-1 style. Writes
//     fan out to all live members; reads pick one live member by the
//     configured balancing policy and fail over to the others on error.
//
// All members share one event engine, so a volume advances in a single
// simulated timeline and the fan-out/fan-in of mirror requests is fully
// deterministic: member completions are ordered by simulated time, and
// tie-breaks follow the engine's fixed event ordering. Running the same
// volume under any number of harness jobs yields byte-identical output.
//
// Degraded operation: a member whose driver has died (fault plan crash)
// is skipped by mirror reads and writes; the volume request succeeds as
// long as one replica remains. On concat and stripe there is no
// redundancy, so a dead member fails the volume request with the
// member's ErrDead.
package volume

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/disk"
	"repro/internal/driver"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/label"
	"repro/internal/rig"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Layout selects how logical blocks map onto the members.
type Layout string

const (
	// Concat appends the members into one address space.
	Concat Layout = "concat"
	// Stripe distributes stripe units round-robin across the members.
	Stripe Layout = "stripe"
	// Mirror replicates every block on every member.
	Mirror Layout = "mirror"
)

// ReadPolicy selects how a mirror balances reads across live members.
type ReadPolicy string

const (
	// RoundRobin rotates reads across live members in index order.
	RoundRobin ReadPolicy = "round-robin"
	// ShortestQueue sends each read to the live member with the fewest
	// requests queued or in service, breaking ties by member index.
	ShortestQueue ReadPolicy = "shortest-queue"
)

// DefaultStripeUnit is the stripe unit, in file system blocks, when
// Options.StripeUnit is zero: 16 blocks (128 KB of 8 KB blocks).
const DefaultStripeUnit = 16

// Options configures a volume.
type Options struct {
	// Ctx, when non-nil, cancels the shared engine once done.
	Ctx context.Context
	// Layout selects concat, stripe, or mirror; the zero value selects
	// concat.
	Layout Layout
	// Disks is the member count; zero selects 1. Mirror needs at least 2.
	Disks int
	// StripeUnit is the stripe unit in blocks (stripe layout only);
	// zero selects DefaultStripeUnit.
	StripeUnit int
	// ReadPolicy balances mirror reads; the zero value selects
	// round-robin.
	ReadPolicy ReadPolicy
	// Disk selects the member drive model; the zero value selects the
	// Toshiba MK156F. All members use the same model.
	Disk disk.Model
	// ReservedCyls hides this many middle cylinders of every member as
	// its reserved region, enabling per-member adaptive rearrangement.
	ReservedCyls int
	// BlockSize is the file system block size; zero selects 8 KB.
	BlockSize geom.BlockSize
	// Sched is the per-member head-scheduling policy; nil selects SCAN.
	Sched sched.Scheduler
	// RequestTableSize overrides each member driver's monitoring table.
	RequestTableSize int
	// Faults lists per-member fault plans by member index; a short list
	// (or nil entries) leaves the remaining members fault-free.
	Faults []*fault.Plan
	// Telemetry, when non-nil and capturing spans, receives every
	// member's request lifecycle stream, tagged with the member's disk
	// index via telemetry.TagDisk.
	Telemetry *telemetry.Collector
}

// Stats are volume-level request statistics, accumulated since the last
// ResetStats.
type Stats struct {
	// Requests, Reads and Writes count volume-level block requests.
	Requests int64
	Reads    int64
	Writes   int64
	// RespMSSum accumulates volume-level response times (request entry
	// to fan-in completion) in simulated milliseconds; RespMSSum /
	// Requests is the mean response time.
	RespMSSum float64
	// Errors counts volume requests that completed with an error.
	Errors int64
	// Degraded counts mirror requests served with at least one member
	// dead.
	Degraded int64
	// PerDisk counts member operations issued, by member index. A
	// mirror write increments every live member's slot.
	PerDisk []int64
}

// Volume is a logical volume over member rigs. Like the rest of the
// stack it is event-driven and single-threaded on its engine.
type Volume struct {
	// Eng is the engine shared by every member.
	Eng *sim.Engine
	// Members are the per-disk stacks, in disk-index order. Callers
	// may attach rearrangers or read per-member counters, but must not
	// issue raw I/O that bypasses the volume's address map.
	Members []*rig.Rig

	layout Layout
	unit   int64
	policy ReadPolicy
	bs     geom.BlockSize
	lbl    *label.Label
	ctx    context.Context

	blocks int64   // logical volume size in blocks
	sizes  []int64 // usable blocks per member under this layout
	cum    []int64 // concat: cumulative start block per member
	rr     int     // round-robin read cursor

	stats Stats
}

// Volume is a BlockDevice: fs and cache mount it like a single disk.
var _ driver.BlockDevice = (*Volume)(nil)

// New builds a volume: one rig per member on a shared engine, plus the
// logical address map and a synthetic label describing the volume's
// single partition.
func New(opts Options) (*Volume, error) {
	if opts.Disks <= 0 {
		opts.Disks = 1
	}
	if opts.Layout == "" {
		opts.Layout = Concat
	}
	switch opts.Layout {
	case Concat, Stripe, Mirror:
	default:
		return nil, fmt.Errorf("volume: unknown layout %q", opts.Layout)
	}
	if opts.Layout == Mirror && opts.Disks < 2 {
		return nil, fmt.Errorf("volume: mirror needs at least 2 disks, got %d", opts.Disks)
	}
	if opts.StripeUnit <= 0 {
		opts.StripeUnit = DefaultStripeUnit
	}
	if opts.ReadPolicy == "" {
		opts.ReadPolicy = RoundRobin
	}
	switch opts.ReadPolicy {
	case RoundRobin, ShortestQueue:
	default:
		return nil, fmt.Errorf("volume: unknown read policy %q", opts.ReadPolicy)
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return nil, err
		}
	}

	eng := sim.NewEngine()
	if ctx := opts.Ctx; ctx != nil {
		eng.SetInterrupt(func() bool { return ctx.Err() != nil })
	}

	v := &Volume{
		Eng:    eng,
		layout: opts.Layout,
		unit:   int64(opts.StripeUnit),
		policy: opts.ReadPolicy,
		ctx:    opts.Ctx,
	}
	v.stats.PerDisk = make([]int64, opts.Disks)
	for i := 0; i < opts.Disks; i++ {
		var plan *fault.Plan
		if i < len(opts.Faults) {
			plan = opts.Faults[i]
		}
		m, err := rig.New(rig.Options{
			Eng:              eng,
			Disk:             opts.Disk,
			ReservedCyls:     opts.ReservedCyls,
			BlockSize:        opts.BlockSize,
			Sched:            opts.Sched,
			RequestTableSize: opts.RequestTableSize,
			Fault:            plan,
		})
		if err != nil {
			return nil, fmt.Errorf("volume: member %d: %w", i, err)
		}
		if opts.Telemetry != nil && opts.Telemetry.SpansEnabled() {
			m.Driver.SetSink(telemetry.TagDisk(i, opts.Telemetry))
		}
		v.Members = append(v.Members, m)
	}
	v.bs = v.Members[0].Driver.BlockSize()

	// The usable size per member and the logical size follow from the
	// layout. Members are identical models, but sizing from the actual
	// partitions keeps the map correct if that ever changes.
	min := v.Members[0].PartitionBlocks(0)
	for _, m := range v.Members[1:] {
		if n := m.PartitionBlocks(0); n < min {
			min = n
		}
	}
	switch v.layout {
	case Concat:
		var total int64
		for _, m := range v.Members {
			n := m.PartitionBlocks(0)
			v.cum = append(v.cum, total)
			v.sizes = append(v.sizes, n)
			total += n
		}
		v.blocks = total
	case Stripe:
		per := min / v.unit * v.unit
		if per == 0 {
			return nil, fmt.Errorf("volume: stripe unit %d larger than member (%d blocks)", v.unit, min)
		}
		for range v.Members {
			v.sizes = append(v.sizes, per)
		}
		v.blocks = per * int64(len(v.Members))
	case Mirror:
		for range v.Members {
			v.sizes = append(v.sizes, min)
		}
		v.blocks = min
	}

	lbl, err := v.makeLabel()
	if err != nil {
		return nil, err
	}
	v.lbl = lbl
	return v, nil
}

// makeLabel builds the synthetic in-memory label presented to the file
// system: the member geometry widened (or narrowed) to as many
// cylinders as the logical space needs, with one partition covering
// every logical block. It is never written to any disk — each member
// keeps its own on-disk label — it only tells the file system how big
// the device is and how long a "cylinder" is for allocation locality.
func (v *Volume) makeLabel() (*label.Label, error) {
	g := v.Members[0].Label.VirtualGeom()
	bsec := int64(v.bs.Sectors())
	sectors := v.blocks * bsec
	spc := int64(g.SectorsPerCyl())
	cyls := (sectors + spc - 1) / spc
	g.Cylinders = int(cyls)
	lbl := label.New(fmt.Sprintf("vol-%s-%d", v.layout, len(v.Members)), g)
	if _, err := lbl.AddPartition(0, sectors, label.TagFS); err != nil {
		return nil, err
	}
	return lbl, nil
}

// BlockSize implements driver.BlockDevice.
func (v *Volume) BlockSize() geom.BlockSize { return v.bs }

// Label implements driver.BlockDevice.
func (v *Volume) Label() *label.Label { return v.lbl }

// Blocks returns the logical volume size in blocks.
func (v *Volume) Blocks() int64 { return v.blocks }

// Layout returns the volume's layout.
func (v *Volume) Layout() Layout { return v.layout }

// DeadMembers returns how many members have died.
func (v *Volume) DeadMembers() int {
	var n int
	for _, m := range v.Members {
		if m.Driver.Dead() {
			n++
		}
	}
	return n
}

// Err returns the volume's cancellation cause, as rig.Err does.
func (v *Volume) Err() error {
	if v.ctx == nil {
		return nil
	}
	return v.ctx.Err()
}

// Stats returns a snapshot of the volume-level statistics.
func (v *Volume) Stats() Stats {
	s := v.stats
	s.PerDisk = append([]int64(nil), v.stats.PerDisk...)
	return s
}

// ResetStats clears the volume-level statistics (member drivers keep
// their own counters).
func (v *Volume) ResetStats() {
	per := v.stats.PerDisk
	for i := range per {
		per[i] = 0
	}
	v.stats = Stats{PerDisk: per}
}

// locate maps a logical block to (member index, member-relative block)
// for the concat and stripe layouts.
func (v *Volume) locate(blk int64) (int, int64) {
	switch v.layout {
	case Stripe:
		su := blk / v.unit
		n := int64(len(v.Members))
		return int(su % n), (su/n)*v.unit + blk%v.unit
	default: // Concat
		i := len(v.cum) - 1
		for i > 0 && blk < v.cum[i] {
			i--
		}
		return i, blk - v.cum[i]
	}
}

// check validates the partition and block of a volume request.
func (v *Volume) check(part int, blk int64) error {
	if part != 0 {
		_, err := v.lbl.Partition(part)
		if err == nil {
			err = fmt.Errorf("volume: no partition %d", part)
		}
		return err
	}
	if blk < 0 || blk >= v.blocks {
		return fmt.Errorf("%w: block %d of volume (%d blocks)", driver.ErrBadBlock, blk, v.blocks)
	}
	return nil
}

// fail reports an error asynchronously, preserving the rule that
// completion callbacks never run inside the issuing call.
func (v *Volume) fail(done driver.DoneFunc, err error) {
	v.stats.Errors++
	v.Eng.After(0, func() {
		if done != nil {
			done(nil, err)
		}
	})
}

// finish wraps a request's done callback with response-time accounting.
func (v *Volume) finish(start float64, done driver.DoneFunc) driver.DoneFunc {
	return func(data []byte, err error) {
		v.stats.RespMSSum += v.Eng.Now() - start
		if err != nil {
			v.stats.Errors++
		}
		if done != nil {
			done(data, err)
		}
	}
}

// ReadBlock implements driver.BlockDevice: it reads one logical block
// of the volume. done fires at fan-in completion in simulated time.
func (v *Volume) ReadBlock(part int, blk int64, done driver.DoneFunc) {
	if err := v.check(part, blk); err != nil {
		v.fail(done, err)
		return
	}
	v.stats.Requests++
	v.stats.Reads++
	start := v.Eng.Now()
	if v.layout != Mirror {
		i, mblk := v.locate(blk)
		v.stats.PerDisk[i]++
		v.Members[i].Driver.ReadBlock(0, mblk, v.finish(start, done))
		return
	}
	order := v.readOrder()
	if len(order) == 0 {
		v.fail(done, fmt.Errorf("volume: every mirror member is dead: %w", driver.ErrDead))
		return
	}
	if len(order) < len(v.Members) {
		v.stats.Degraded++
	}
	fin := v.finish(start, done)
	var try func(k int)
	try = func(k int) {
		i := order[k]
		v.stats.PerDisk[i]++
		v.Members[i].Driver.ReadBlock(0, blk, func(data []byte, err error) {
			if err != nil && k+1 < len(order) {
				// Fail over to the next replica; the dead or erroring
				// member is out of rotation once Dead() reports it.
				v.stats.Degraded++
				try(k + 1)
				return
			}
			fin(data, err)
		})
	}
	try(0)
}

// readOrder returns the member indices a mirror read should try, best
// candidate first, per the balancing policy. Only live members appear.
func (v *Volume) readOrder() []int {
	n := len(v.Members)
	order := make([]int, 0, n)
	switch v.policy {
	case ShortestQueue:
		for i, m := range v.Members {
			if !m.Driver.Dead() {
				order = append(order, i)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			qa := v.Members[order[a]].Driver.Outstanding()
			qb := v.Members[order[b]].Driver.Outstanding()
			if qa != qb {
				return qa < qb
			}
			return order[a] < order[b]
		})
	default: // RoundRobin
		first := v.rr % n
		v.rr++
		for j := 0; j < n; j++ {
			i := (first + j) % n
			if !v.Members[i].Driver.Dead() {
				order = append(order, i)
			}
		}
	}
	return order
}

// WriteBlock implements driver.BlockDevice: it writes one logical block
// of the volume. On a mirror the write fans out to every live member
// and done fires when the last member completes; the volume write
// succeeds if at least one replica was written.
func (v *Volume) WriteBlock(part int, blk int64, data []byte, done driver.DoneFunc) {
	if err := v.check(part, blk); err != nil {
		v.fail(done, err)
		return
	}
	if len(data) != v.bs.Bytes() {
		v.fail(done, fmt.Errorf("volume: write of %d bytes, block size is %d", len(data), v.bs.Bytes()))
		return
	}
	v.stats.Requests++
	v.stats.Writes++
	start := v.Eng.Now()
	if v.layout != Mirror {
		i, mblk := v.locate(blk)
		v.stats.PerDisk[i]++
		v.Members[i].Driver.WriteBlock(0, mblk, data, v.finish(start, done))
		return
	}
	var targets []int
	for i, m := range v.Members {
		if !m.Driver.Dead() {
			targets = append(targets, i)
		}
	}
	if len(targets) == 0 {
		v.fail(done, fmt.Errorf("volume: every mirror member is dead: %w", driver.ErrDead))
		return
	}
	if len(targets) < len(v.Members) {
		v.stats.Degraded++
	}
	fin := v.finish(start, done)
	pending := len(targets)
	var wrote int
	var firstErr error
	for _, i := range targets {
		v.stats.PerDisk[i]++
		// Members may not mutate or retain the buffer (the cache hands
		// its own copy to WriteThroughOwned under the same contract),
		// so all replicas share one data slice.
		v.Members[i].Driver.WriteBlock(0, blk, data, func(_ []byte, err error) {
			if err == nil {
				wrote++
			} else if firstErr == nil {
				firstErr = err
			}
			pending--
			if pending > 0 {
				return
			}
			if wrote > 0 {
				fin(nil, nil)
			} else {
				fin(nil, firstErr)
			}
		})
	}
}
